// wolf — command-line front end to the WOLF pipeline.
//
//   wolf record   --workload=HashMap --seed=7 --out=trace.txt [--format=v3]
//   wolf detect   --workload=HashMap --trace=trace.txt [--magic-prune]
//   wolf analyze  --workload=HashMap [--trace=trace.txt] [--rank]
//   wolf replay   --workload=HashMap --cycle=2 --attempts=10 [--rt]
//   wolf convert  trace.txt trace.bin [--format=v1|v2|v3]
//   wolf serve    --socket=/tmp/wolf.sock [--max-sessions=N] [...]
//   wolf emit     --socket=/tmp/wolf.sock --trace=trace.bin [--name=n]
//   wolf status   --socket=/tmp/wolf.sock [--stop]
//   wolf list
//
// Workloads are the built-in benchmark suite plus the paper's figure
// programs; `record` serializes a trace to disk (text v1/v2 or binary v3),
// `detect`/`analyze` consume a recorded trace (or record one on the fly) —
// `analyze --trace` streams the file through detection block-by-block —
// `replay` reproduces one detected cycle, optionally on real OS threads
// (--rt), and `convert` rewrites a trace in another format, preserving the
// checksum.
//
// Every subcommand parses its own flag set: the shared surface
// (register_common_flags: --seed, --jobs, --engine, --deadline-ms, plus the
// observability flags) and only the extras that subcommand understands, so
// a misplaced flag is an error naming the subcommand that rejected it.
//
// Observability: --metrics-out=<file> writes a versioned JSON run report
// (span tree + counter deltas + per-cycle funnel verdicts; '-' = stdout);
// --metrics-stable emits the byte-stable variant, identical at every --jobs
// level; --progress prints throttled heartbeats to stderr. All three are
// off by default and none of them changes detection output.
//
// Robustness flags: --deadline-ms arms a per-trial wall-clock watchdog,
// --retry sets recording retry attempts, --salvage loads damaged traces by
// recovering the longest valid prefix, and --fault injects faults (see
// robust/fault.hpp for the spec grammar) for degradation drills.
//
// Resource governance (analyze only): --memory-budget-mb bounds the tuple
// store, --window-events sets the detection window, --window-deadline-ms
// arms the per-window deadline that drives the degradation ladder
// (core/governor.hpp), and --live prints each cycle the moment a window
// first finds it (mid-run, before finish()) without changing the final
// report. Any degradation is reported on stderr and in the markdown report. `record` and `convert` write output atomically (temp
// file + rename), so a crash — or an injected tear=<bytes> fault — never
// clobbers an existing trace.
//
// --jobs N classifies detected cycles N-way parallel (default 0 = hardware
// concurrency); reports are identical at every N, and --jobs 1 runs the
// historical serial pipeline. The same flag parallelizes cycle enumeration,
// indexed v3 block decode, and — on the governed path — the whole ingestion
// pipeline: decode overlaps detection through a bounded ring
// (--pipeline-depth bounds how far it runs ahead), and suspicious windows
// fan their dirty SCCs out as parallel enumeration tasks. Every output,
// including governed verdicts and live-cycle order, is identical at every
// --jobs level.
//
// Detector flags: --engine=scc|reference selects the cycle enumeration
// engine (both emit the identical canonical cycle sequence), --max-cycles
// caps enumeration (a warning is printed when the cap is hit), and
// --clock-prune folds the Pruner's vector-clock test into the search so
// provably-infeasible branches are never explored.
//
// The sidecar trio (DESIGN.md §18): `serve` runs the always-on detection
// server on a unix-domain socket, one governed wolf::Session per client;
// `emit` streams a recorded trace (or records one on the fly) into a serve
// session and prints the live cycles + verdict in the same format `analyze
// --live` uses, so the two are diffable byte-for-byte; `status` dumps the
// server's newline-JSON session registry (and --stop asks it to drain).
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>

#include "core/magic_prune.hpp"
#include "core/metrics.hpp"
#include "core/ranking.hpp"
#include "obs/progress.hpp"
#include "obs/report.hpp"
#include "robust/fault.hpp"
#include "rt/replay_rt.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/flags.hpp"
#include "support/io.hpp"
#include "trace/serialize.hpp"
#include "trace/trace_reader.hpp"
#include "trace/wire.hpp"
#include "wolf.hpp"
#include "workloads/paper_examples.hpp"
#include "workloads/suite.hpp"

using namespace wolf;

namespace {

std::optional<sim::Program> find_workload(const std::string& name) {
  for (workloads::Benchmark& b : workloads::standard_suite())
    if (b.name == name) return std::move(b.program);
  if (name == "figure1") return workloads::make_figure1().program;
  if (name == "figure2") return workloads::make_figure2().program;
  if (name == "figure4") return workloads::make_figure4().program;
  if (name == "figure9") return workloads::make_figure9().program;
  if (name == "philosophers") return workloads::make_philosophers(4).program;
  return std::nullopt;
}

void list_workloads() {
  std::cout << "built-in workloads:\n";
  for (const workloads::Benchmark& b : workloads::standard_suite())
    std::cout << "  " << b.name << '\n';
  for (const char* f :
       {"figure1", "figure2", "figure4", "figure9", "philosophers"})
    std::cout << "  " << f << '\n';
}

// ---- per-subcommand flag registration -------------------------------------

// Flags shared by the subcommands that take a workload and (optionally) a
// recorded trace.
void register_workload_flags(Flags& flags) {
  flags.define_string("workload", "", "built-in workload name (see `list`)");
  flags.define_string("trace", "", "path to a recorded trace (optional)");
  flags.define_int("retry", 60, "recording retry attempts");
  flags.define_bool("salvage", false,
                    "recover the longest valid prefix of a damaged trace");
  flags.define_string("fault", "",
                      "fault-injection spec (robust/fault.hpp grammar)");
}

void register_detector_flags(Flags& flags) {
  flags.define_bool("magic-prune", false, "MagicFuzzer tuple reduction");
  flags.define_int("max-cycles", 100000,
                   "cap on enumerated cycles (a warning is printed when hit)");
  flags.define_bool("clock-prune", false,
                    "fold the Pruner's clock test into the search (scc "
                    "engine); enumerates only cycles the Pruner would keep");
}

// ---- observability wiring -------------------------------------------------

// Arms the obs layer from the common flags and, after the run, writes the
// --metrics-out report with the counter delta spanning this scope. One
// instance per subcommand, constructed before the pipeline runs.
class MetricsScope {
 public:
  explicit MetricsScope(const Flags& flags)
      : path_(flags.get_string("metrics-out")),
        stable_(flags.get_bool("metrics-stable")) {
    if (flags.get_bool("progress")) obs::set_progress_enabled(true);
    if (path_.empty()) return;
    obs::set_counters_enabled(true);
    before_ = obs::CounterRegistry::instance().snapshot();
  }

  bool active() const { return !path_.empty(); }

  // Fills metrics.counters with the delta since construction and writes the
  // report. Returns false (after a diagnostic) when the file cannot be
  // written. No-op when --metrics-out was not given.
  bool write(obs::RunMetrics metrics) {
    if (!active()) return true;
    metrics.counters =
        obs::delta(obs::CounterRegistry::instance().snapshot(), before_);
    std::string error;
    if (!obs::write_metrics_file(metrics, path_, stable_, &error)) {
      std::cerr << error << '\n';
      return false;
    }
    if (path_ != "-") std::cerr << "metrics written to " << path_ << '\n';
    return true;
  }

  // Counters-only report for subcommands that do not run the full pipeline
  // (record/detect/replay): no spans, no funnel.
  bool write_counters(int jobs) {
    obs::RunMetrics metrics;
    metrics.jobs = jobs;
    return write(std::move(metrics));
  }

 private:
  std::string path_;
  bool stable_;
  obs::CounterSnapshot before_;
};

// ---- shared flag decoding -------------------------------------------------

// Parses --fault; returns false (with a message) on a malformed spec. An
// empty spec leaves `plan` empty.
bool fault_from_flags(const Flags& flags,
                      std::optional<robust::FaultPlan>& plan) {
  const std::string spec = flags.get_string("fault");
  if (spec.empty()) return true;
  std::string error;
  plan = robust::parse_fault_plan(spec, &error);
  if (!plan) {
    std::cerr << "bad --fault spec: " << error << '\n';
    return false;
  }
  return true;
}

robust::RetryPolicy retry_from_flags(const Flags& flags) {
  robust::RetryPolicy retry;
  retry.max_attempts = static_cast<int>(flags.get_int("retry"));
  retry.attempt_deadline_ms = flags.get_int("deadline-ms");
  return retry;
}

std::optional<Trace> load_or_record(const sim::Program& program,
                                    const std::string& trace_path,
                                    std::uint64_t seed, const Flags& flags) {
  if (!trace_path.empty()) {
    // The path readers mmap v3 files and decode indexed blocks on --jobs
    // threads; the decoded trace is byte-identical to a buffered read.
    const int jobs = static_cast<int>(flags.get_int("jobs"));
    if (flags.get_bool("salvage")) {
      SalvageReport salvaged = read_trace_salvage(trace_path, jobs);
      std::cout << salvaged.summary() << '\n';
      for (const std::string& d : salvaged.diagnostics)
        std::cerr << "  " << d << '\n';
      if (salvaged.trace.empty()) {
        std::cerr << "nothing salvageable in " << trace_path << '\n';
        return std::nullopt;
      }
      return std::move(salvaged.trace);
    }
    std::string error;
    auto trace = read_trace(trace_path, &error, jobs);
    if (!trace)
      std::cerr << "bad trace: " << error << " (try --salvage)" << '\n';
    return trace;
  }
  auto trace = sim::record_trace(program, seed, retry_from_flags(flags));
  if (!trace) std::cerr << "every recording run deadlocked\n";
  return trace;
}

// Shared by detect/analyze: detector knobs from flags. Returns false (with a
// message) on a bad --engine.
bool detector_from_flags(const Flags& flags, DetectorOptions& options) {
  options.magic_prune = flags.get_bool("magic-prune");
  options.max_cycles = static_cast<std::size_t>(flags.get_int("max-cycles"));
  options.clock_prune_during_search = flags.get_bool("clock-prune");
  options.jobs = static_cast<int>(flags.get_int("jobs"));
  const std::string engine = flags.get_string("engine");
  if (engine == "scc") {
    options.engine = CycleEngine::kScc;
  } else if (engine == "arena") {
    options.engine = CycleEngine::kArenaScc;
  } else if (engine == "reference") {
    options.engine = CycleEngine::kReference;
  } else {
    std::cerr << "bad --engine '" << engine
              << "' (want scc|arena|reference)\n";
    return false;
  }
  return true;
}

void warn_if_truncated(const Detection& det) {
  if (det.truncated)
    std::cerr << "warning: " << truncation_message(det) << '\n';
}

// Prints validate() findings; returns false when any is fatal.
bool report_config_issues(const Config& config) {
  bool ok = true;
  for (const ConfigIssue& issue : config.validate()) {
    std::cerr << (issue.fatal ? "error: " : "warning: ") << issue.message
              << '\n';
    if (issue.fatal) ok = false;
  }
  return ok;
}

// ---- subcommands ----------------------------------------------------------

int cmd_record(const sim::Program& program, const Flags& flags) {
  std::optional<robust::FaultPlan> fault;
  if (!fault_from_flags(flags, fault)) return 1;
  MetricsScope metrics(flags);
  auto trace = sim::record_trace(
      program, static_cast<std::uint64_t>(flags.get_int("seed")),
      retry_from_flags(flags));
  if (!trace) {
    std::cerr << "every recording run deadlocked\n";
    return 1;
  }
  auto format = trace_format_from_string(flags.get_string("format"));
  if (!format) {
    std::cerr << "bad --format '" << flags.get_string("format")
              << "' (want v1|v2|v3)\n";
    return 1;
  }
  const std::string out = flags.get_string("out");
  std::string text = trace_to_string(*trace, *format);
  // Content corruptions (garble/truncate/bitflip) produce a damaged-but-
  // complete write — the salvage reader's diet. A tear is different: it
  // models the writer dying mid-write, so it becomes the atomic-write kill
  // point below — the write fails and any previous file is left intact.
  std::size_t fail_after = std::numeric_limits<std::size_t>::max();
  if (fault.has_value()) {
    if (fault->truncate_fraction >= 0.0 || fault->garble_line >= 0)
      text = robust::corrupt_trace_text(std::move(text), *fault);
    if (fault->bitflip_count > 0) {
      robust::FaultPlan flips;
      flips.bitflip_count = fault->bitflip_count;
      text = robust::corrupt_trace_bytes(
          std::move(text), flips,
          static_cast<std::uint64_t>(flags.get_int("seed")));
    }
    if (fault->corrupts_trace() && fault->io_tear_after < 0)
      std::cout << "fault injection: wrote corrupted trace\n";
    if (fault->io_tear_after >= 0)
      fail_after = static_cast<std::size_t>(fault->io_tear_after);
  }
  std::string error;
  if (!support::atomic_write_file(out, text, &error, fail_after)) {
    std::cerr << "cannot write " << out << ": " << error << '\n';
    return 1;
  }
  std::cout << "recorded " << trace->size() << " events -> " << out << " ("
            << to_string(*format) << ")\n";
  return metrics.write_counters(/*jobs=*/1) ? 0 : 1;
}

// wolf convert <in> <out> [--format=v1|v2|v3] [--jobs=N] — rewrites a trace
// in another format. The input format is auto-detected; the event checksum
// (carried by v2 and v3 footers) is a function of the events alone, so it
// survives every conversion and is echoed for scripts to compare.
//
// The conversion is a block pipeline, not a load-then-dump: the streaming
// reader hands blocks straight to a StreamTraceWriter on the atomic temp
// file, so peak memory is O(block), independent of trace length — a 10^8-
// event file converts in a few hundred KB of heap. Indexed v3 input decodes
// on --jobs threads; the output is byte-identical at every jobs level.
int cmd_convert(int argc, char** argv) {
  if (argc < 2 || std::string_view(argv[0]).substr(0, 2) == "--" ||
      std::string_view(argv[1]).substr(0, 2) == "--") {
    std::cerr << "usage: wolf convert <in> <out> [--format=v1|v2|v3]"
                 " [--jobs=N]\n";
    return 1;
  }
  const std::string in_path = argv[0];
  const std::string out_path = argv[1];
  Flags flags;
  flags.set_context("wolf convert");
  flags.define_string("format", "v3", "output trace format (v1|v2|v3)");
  flags.define_int("jobs", 1, "decode threads for indexed v3 input");
  // parse() treats its argv[0] as the program name, so hand it the slot
  // before the first flag.
  if (!flags.parse(argc - 1, argv + 1)) return 1;
  auto format = trace_format_from_string(flags.get_string("format"));
  if (!format) {
    std::cerr << "bad --format '" << flags.get_string("format")
              << "' (want v1|v2|v3)\n";
    return 1;
  }

  StreamTraceReader::Options read_options;
  read_options.jobs = static_cast<int>(flags.get_int("jobs"));
  StreamTraceReader reader(in_path, StreamTraceReader::Mode::kStrict,
                           read_options);
  support::AtomicFileWriter writer(out_path);
  if (!writer.ok()) {
    std::cerr << "cannot write " << out_path << ": cannot open temp file\n";
    return 1;
  }
  std::uint64_t checksum = wire::kChecksumSeed;
  {
    StreamTraceWriter out(writer.stream(), *format);
    std::vector<Event> block;
    while (reader.next_block(block)) {
      for (const Event& e : block)
        checksum = wire::checksum_event(checksum, e);
      out.write(block);
    }
    if (!reader.ok()) {
      std::cerr << "bad trace: " << reader.error() << '\n';
      writer.abort();
      return 1;
    }
    out.finish();
  }
  std::string write_error;
  if (!writer.commit(&write_error)) {
    std::cerr << "cannot write " << out_path << ": " << write_error << '\n';
    return 1;
  }
  std::cout << "converted " << reader.events_read() << " events -> "
            << out_path << " (" << to_string(*format) << ", checksum "
            << wire::to_hex(checksum) << ")\n";
  return 0;
}

int cmd_detect(const sim::Program& program, const Flags& flags) {
  MetricsScope metrics(flags);
  auto trace =
      load_or_record(program, flags.get_string("trace"),
                     static_cast<std::uint64_t>(flags.get_int("seed")), flags);
  if (!trace) return 1;

  DetectorOptions options;
  if (!detector_from_flags(flags, options)) return 1;
  Detection det = detect(*trace, options);
  warn_if_truncated(det);
  auto verdicts = prune(det);
  const DependencyIndex dep_index = DependencyIndex::build(det.dep);

  std::cout << det.dep.tuples.size() << " tuples ("
            << det.dep.unique.size() << " canonical), "
            << det.cycles.size() << " cycles, " << det.defects.size()
            << " defects\n";
  for (std::size_t c = 0; c < det.cycles.size(); ++c) {
    std::cout << "cycle " << c << ": "
              << det.cycles[c].to_string(det.dep) << "\n  sites:";
    for (SiteId s : signature_of(det.cycles[c], det.dep))
      std::cout << ' ' << program.sites().name(s);
    std::cout << "\n  pruner: " << to_string(verdicts[c]);
    if (!is_false(verdicts[c])) {
      GeneratorResult gen = generate(det.cycles[c], det.dep, dep_index);
      std::cout << ", Gs: " << gen.gs.vertex_count() << " vertices, "
                << (gen.feasible ? "acyclic" : "CYCLIC (false positive)");
    }
    std::cout << '\n';
  }
  return metrics.write_counters(options.jobs) ? 0 : 1;
}

int cmd_analyze(const sim::Program& program, const Flags& flags) {
  std::optional<robust::FaultPlan> fault;
  if (!fault_from_flags(flags, fault)) return 1;

  // The facade path: fold the flag surface into a wolf::Config, surface
  // validate() findings, then explode into the per-stage structs.
  Config config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.jobs = static_cast<int>(flags.get_int("jobs"));
  config.deadline_ms = flags.get_int("deadline-ms");
  if (!detector_from_flags(flags, config.detector)) return 1;
  config.replay.attempts = static_cast<int>(flags.get_int("attempts"));
  config.record_attempts = static_cast<int>(flags.get_int("retry"));
  config.memory_budget_mb =
      static_cast<std::size_t>(flags.get_int("memory-budget-mb"));
  config.window_events =
      static_cast<std::size_t>(flags.get_int("window-events"));
  config.window_deadline_ms = flags.get_int("window-deadline-ms");
  config.pipeline_depth =
      static_cast<std::size_t>(flags.get_int("pipeline-depth"));
  if (flags.get_bool("live")) {
    // Surface each cycle the moment a window first finds it. Observation
    // only: the final report below is identical with or without --live.
    config.on_cycle = [](const LiveCycle& lc) {
      std::cout << "live: window " << lc.window << " cycle #" << lc.sequence
                << ": " << lc.cycle->to_string(*lc.dep) << '\n';
    };
  }
  if (fault.has_value()) config.fault = &*fault;
  if (!report_config_issues(config)) return 1;
  WolfOptions options = config.wolf_options();

  MetricsScope metrics(flags);
  WolfReport report;
  const std::string trace_path = flags.get_string("trace");
  if (!trace_path.empty() && !flags.get_bool("salvage")) {
    // Stream the file through detection block-by-block; the full event
    // vector is never materialized. The path constructor mmaps v3 files and
    // decodes indexed blocks on --jobs threads.
    StreamTraceReader::Options read_options;
    read_options.jobs = config.jobs;
    StreamTraceReader reader(trace_path, StreamTraceReader::Mode::kStrict,
                             read_options);
    // One facade for both modes: Session::open picks governed vs plain
    // streaming from the config, and analyze_session drives ingest/finish.
    Session session = Session::open(config);
    report = analyze_session(program, session, reader, options);
    if (!reader.ok()) {
      std::cerr << "bad trace: " << reader.error() << " (try --salvage)"
                << '\n';
      return 1;
    }
  } else if (!trace_path.empty()) {
    auto trace = load_or_record(program, trace_path, options.seed, flags);
    if (!trace) return 1;
    if (config.governed()) {
      VectorTraceReader reader(*trace);
      Session session = Session::open(config);
      report = analyze_session(program, session, reader, options);
    } else {
      report = analyze_trace(program, *trace, options);
    }
  } else {
    if (config.governed())
      std::cerr << "warning: --memory-budget-mb/--window-deadline-ms/--live "
                   "govern trace analysis; ignored without --trace\n";
    report = run_wolf(program, options);
    if (!report.trace_recorded) {
      std::cerr << "every recording run deadlocked\n";
      return 1;
    }
  }

  warn_if_truncated(report.detection);
  if (report.governed) {
    const std::string degraded = degradation_message(report.governor);
    if (!degraded.empty()) std::cerr << "warning: " << degraded << '\n';
    std::cout << "governed: " << report.governor.summary() << '\n';
  }
  const std::string report_path = flags.get_string("report");
  if (!report_path.empty()) {
    std::ofstream os(report_path);
    if (!os) {
      std::cerr << "cannot write " << report_path << '\n';
      return 1;
    }
    os << write_markdown_report(report, program.sites());
    std::cout << "report written to " << report_path << '\n';
  }
  std::cout << "parallelism: " << report.jobs_used << " job(s)\n"
            << report.summary(program.sites());
  if (flags.get_bool("rank"))
    std::cout << "\nranking (most actionable first):\n"
              << format_ranking(report, program.sites());
  return metrics.write(collect_metrics(report)) ? 0 : 1;
}

int cmd_replay(const sim::Program& program, const Flags& flags) {
  std::optional<robust::FaultPlan> fault;
  if (!fault_from_flags(flags, fault)) return 1;
  MetricsScope metrics(flags);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed"));
  auto trace = load_or_record(program, flags.get_string("trace"), seed, flags);
  if (!trace) return 1;
  Detection det = detect(*trace);
  const auto cycle_index =
      static_cast<std::size_t>(flags.get_int("cycle"));
  if (cycle_index >= det.cycles.size()) {
    std::cerr << "cycle " << cycle_index << " out of range (have "
              << det.cycles.size() << ")\n";
    return 1;
  }
  GeneratorResult gen = generate(det.cycles[cycle_index], det.dep);
  if (!gen.feasible) {
    std::cout << "Gs is cyclic: this cycle is a false positive; nothing to "
                 "replay\n";
    return 0;
  }
  ReplayOptions options;
  options.attempts = static_cast<int>(flags.get_int("attempts"));
  options.seed = seed + 1;
  options.retry.attempt_deadline_ms = flags.get_int("deadline-ms");
  if (fault.has_value()) options.fault = &*fault;
  ReplayStats stats =
      flags.get_bool("rt")
          ? rt::replay_rt(program, det.cycles[cycle_index], det.dep, gen.gs,
                          options)
          : replay(program, det.cycles[cycle_index], det.dep, gen.gs,
                   options);
  std::cout << (stats.reproduced() ? "REPRODUCED" : "not reproduced")
            << " after " << stats.attempts << " attempt(s) [hits "
            << stats.hits << ", other-deadlocks " << stats.other_deadlocks
            << ", clean " << stats.no_deadlocks << ", timeouts "
            << stats.timeouts << "]\n";
  if (!metrics.write_counters(/*jobs=*/1)) return 1;
  return stats.reproduced() ? 0 : 2;
}

// ---- the sidecar trio (DESIGN.md §18) -------------------------------------

// SIGINT/SIGTERM latch for `wolf serve`'s drain loop. A handler may only
// touch sig_atomic_t, so the poll loop below does the actual stop().
volatile std::sig_atomic_t g_serve_signal = 0;
extern "C" void serve_signal_handler(int sig) { g_serve_signal = sig; }

// wolf serve --socket=PATH [...] — runs the always-on sidecar until SIGTERM/
// SIGINT or a client's `stop` hello, then drains gracefully and exits 0.
int cmd_serve(int argc, char** argv) {
  Flags flags;
  flags.set_context("wolf serve");
  flags.define_string("socket", "", "unix-domain socket path to listen on");
  flags.define_int("max-sessions", 16,
                   "concurrent session cap; extra connections are rejected");
  flags.define_int("idle-timeout-ms", 30000,
                   "evict a connection idle this long (0 = never)");
  flags.define_int("session-deadline-ms", 0,
                   "wall-clock cap on one session's ingest (0 = none)");
  flags.define_int("drain-deadline-ms", 5000,
                   "grace period for live sessions on shutdown");
  flags.define_int("pipeline-depth", 4,
                   "per-session decode ring depth in blocks (<2 = inline)");
  flags.define_int("window-events", 65536,
                   "default events per governed detection window");
  flags.define_int("memory-budget-mb", 0,
                   "default per-session tuple-store budget (MiB, 0 = none)");
  flags.define_int("window-deadline-ms", 0,
                   "default per-window detection deadline (0 = none)");
  flags.define_int("jobs", 1, "default per-session enumeration parallelism");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.get_string("socket").empty()) {
    std::cerr << "wolf serve: --socket is required\n";
    return 1;
  }

  serve::ServeOptions options;
  options.socket_path = flags.get_string("socket");
  options.max_sessions = static_cast<int>(flags.get_int("max-sessions"));
  options.idle_timeout_ms = flags.get_int("idle-timeout-ms");
  options.session_deadline_ms = flags.get_int("session-deadline-ms");
  options.drain_deadline_ms = flags.get_int("drain-deadline-ms");
  options.pipeline_depth =
      static_cast<std::size_t>(flags.get_int("pipeline-depth"));
  options.session.window_events =
      static_cast<std::size_t>(flags.get_int("window-events"));
  options.session.memory_budget_mb =
      static_cast<std::size_t>(flags.get_int("memory-budget-mb"));
  options.session.window_deadline_ms = flags.get_int("window-deadline-ms");
  options.session.jobs = static_cast<int>(flags.get_int("jobs"));

  serve::Server server(options);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "wolf serve: " << error << '\n';
    return 1;
  }
  std::cout << "serving on " << options.socket_path << " (max "
            << options.max_sessions << " sessions)\n";

  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  while (g_serve_signal == 0 && !server.stop_requested())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::cout << (g_serve_signal != 0 ? "signal received" : "stop requested")
            << ", draining\n";
  server.stop();

  const serve::ServerStats stats = server.stats();
  std::cout << "served " << stats.sessions_started << " session(s): "
            << stats.sessions_done << " done, " << stats.sessions_torn
            << " torn, " << stats.sessions_evicted << " evicted, "
            << stats.sessions_failed << " failed, " << stats.rejected
            << " rejected\n";
  return 0;
}

// wolf emit --socket=PATH --trace=FILE | --workload=W — streams a trace into
// one serve session and prints the server's live cycles and verdict in the
// exact format `wolf analyze --live` prints its own, so the two transcripts
// diff clean. Exits 0 on a complete verdict, 2 on an honest incomplete one,
// 1 on transport/protocol failure.
int cmd_emit(int argc, char** argv) {
  Flags flags;
  flags.set_context("wolf emit");
  flags.define_string("socket", "", "serve socket to stream into");
  flags.define_string("name", "emit", "session name shown in status");
  flags.define_string("trace", "", "recorded trace file to stream");
  flags.define_string("workload", "",
                      "record this workload on the fly instead of --trace");
  flags.define_int("seed", 1, "recording seed for --workload");
  flags.define_int("window", 0, "override the server's window-events");
  flags.define_int("budget-mb", -1, "override the server's memory budget");
  flags.define_int("deadline-ms", -1,
                   "override the server's window deadline");
  flags.define_int("jobs", 0, "override the server's per-session jobs");
  flags.define_int("chunk-bytes", 64 * 1024, "upload chunk size");
  flags.define_int("throttle-ms", 0, "sleep between chunks (slow consumer)");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.get_string("socket").empty()) {
    std::cerr << "wolf emit: --socket is required\n";
    return 1;
  }

  std::string bytes;
  if (!flags.get_string("trace").empty()) {
    std::ifstream in(flags.get_string("trace"), std::ios::binary);
    if (!in) {
      std::cerr << "cannot read " << flags.get_string("trace") << '\n';
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = std::move(buf).str();
  } else if (!flags.get_string("workload").empty()) {
    auto program = find_workload(flags.get_string("workload"));
    if (!program) {
      std::cerr << "unknown workload '" << flags.get_string("workload")
                << "'; try `wolf list`\n";
      return 1;
    }
    auto trace = sim::record_trace(
        *program, static_cast<std::uint64_t>(flags.get_int("seed")),
        robust::RetryPolicy{});
    if (!trace) {
      std::cerr << "every recording run deadlocked\n";
      return 1;
    }
    bytes = trace_to_string(*trace, TraceFormat::kV3);
  } else {
    std::cerr << "wolf emit: need --trace or --workload\n";
    return 1;
  }

  serve::EmitOptions options;
  options.socket_path = flags.get_string("socket");
  options.name = flags.get_string("name");
  options.chunk_bytes = static_cast<std::size_t>(flags.get_int("chunk-bytes"));
  options.throttle_ms = flags.get_int("throttle-ms");
  if (flags.get_int("window") > 0)
    options.params["window"] = std::to_string(flags.get_int("window"));
  if (flags.get_int("budget-mb") >= 0)
    options.params["budget-mb"] = std::to_string(flags.get_int("budget-mb"));
  if (flags.get_int("deadline-ms") >= 0)
    options.params["deadline-ms"] =
        std::to_string(flags.get_int("deadline-ms"));
  if (flags.get_int("jobs") > 0)
    options.params["jobs"] = std::to_string(flags.get_int("jobs"));
  // Print live cycles as they arrive, in `analyze --live` format.
  options.on_line = [](const std::string& line) {
    SessionCycle cycle;
    if (serve::parse_live_line(line, cycle))
      std::cout << "live: window " << cycle.window << " cycle #"
                << cycle.sequence << ": " << cycle.description << '\n';
  };

  serve::EmitResult result = serve::emit_trace_bytes(options, bytes);
  if (!result.error.empty()) {
    std::cerr << "wolf emit: " << result.error << '\n';
    return 1;
  }
  std::cout << "governed: " << result.verdict.summary << '\n';
  if (!result.verdict.stream_note.empty())
    std::cerr << "warning: " << result.verdict.stream_note << '\n';
  std::cout << "streamed " << result.bytes_sent << " bytes, "
            << result.verdict.events << " events, " << result.verdict.windows
            << " window(s), " << result.verdict.cycles.size()
            << " cycle(s), " << (result.complete ? "complete" : "INCOMPLETE")
            << '\n';
  return result.complete ? 0 : 2;
}

// wolf status --socket=PATH [--stop] — dumps the server's newline-JSON
// session registry verbatim (one line per session + the roll-up), and with
// --stop asks the server to drain and exit.
int cmd_status(int argc, char** argv) {
  Flags flags;
  flags.set_context("wolf status");
  flags.define_string("socket", "", "serve socket to query");
  flags.define_bool("stop", false, "ask the server to drain and exit");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.get_string("socket").empty()) {
    std::cerr << "wolf status: --socket is required\n";
    return 1;
  }
  std::string error;
  if (flags.get_bool("stop")) {
    if (!serve::send_stop(flags.get_string("socket"), &error)) {
      std::cerr << "wolf status: " << error << '\n';
      return 1;
    }
    std::cout << "stop acknowledged\n";
    return 0;
  }
  std::vector<std::string> lines;
  if (!serve::fetch_status(flags.get_string("socket"), lines, &error)) {
    std::cerr << "wolf status: " << error << '\n';
    return 1;
  }
  for (const std::string& line : lines) std::cout << line << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: wolf <record|detect|analyze|replay|convert|serve|"
                 "emit|status|list> [flags]\n";
    return 1;
  }
  const std::string command = argv[1];
  if (command == "list") {
    list_workloads();
    return 0;
  }
  if (command == "convert") return cmd_convert(argc - 2, argv + 2);
  // The sidecar trio parses its own flag set and (for emit) resolves its
  // own workload, so it dispatches before the --workload lookup below.
  if (command == "serve") return cmd_serve(argc - 1, argv + 1);
  if (command == "emit") return cmd_emit(argc - 1, argv + 1);
  if (command == "status") return cmd_status(argc - 1, argv + 1);

  // Each subcommand owns its flag set: the shared surface plus its extras.
  // A flag given to the wrong subcommand is an unknown-flag error naming
  // that subcommand.
  Flags flags;
  flags.set_context("wolf " + command);
  register_common_flags(flags);
  register_workload_flags(flags);
  if (command == "record") {
    flags.define_string("out", "trace.txt", "output path for `record`");
    flags.define_string("format", "v2",
                        "trace format written by `record` (v1|v2|v3)");
  } else if (command == "detect") {
    register_detector_flags(flags);
  } else if (command == "analyze") {
    register_detector_flags(flags);
    flags.define_int("attempts", 10, "replay attempts");
    flags.define_bool("rank", false, "print the defect ranking");
    flags.define_string("report", "", "write a markdown report to this path");
    flags.define_int("memory-budget-mb", 0,
                     "tuple-store budget for governed streaming analysis "
                     "(MiB, 0 = unbounded)");
    flags.define_int("window-events", 65536,
                     "events per governed detection window");
    flags.define_int("window-deadline-ms", 0,
                     "per-window detection deadline driving the degradation "
                     "ladder (0 = none)");
    flags.define_bool("live", false,
                      "print each cycle when a window first finds it "
                      "(switches onto the governed streaming path)");
    flags.define_int("pipeline-depth", 0,
                     "blocks the governed decode ring may run ahead of "
                     "ingestion when --jobs > 1 (0 = auto)");
  } else if (command == "replay") {
    flags.define_int("attempts", 10, "replay attempts");
    flags.define_int("cycle", 0, "cycle index for `replay`");
    flags.define_bool("rt", false, "replay on real OS threads");
  } else {
    std::cerr << "unknown command '" << command << "'\n";
    return 1;
  }
  if (!flags.parse(argc - 1, argv + 1)) return 1;

  auto program = find_workload(flags.get_string("workload"));
  if (!program) {
    std::cerr << "unknown workload '" << flags.get_string("workload")
              << "'; try `wolf list`\n";
    return 1;
  }

  if (command == "record") return cmd_record(*program, flags);
  if (command == "detect") return cmd_detect(*program, flags);
  if (command == "analyze") return cmd_analyze(*program, flags);
  return cmd_replay(*program, flags);
}
