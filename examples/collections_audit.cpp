// Audits the synchronized-Collections benchmark family — the paper's
// motivating workload — and prints a per-defect classification report,
// including the θ4-style false positive that the Generator eliminates with
// a cyclic Gs witness (Fig. 2 / Fig. 7(b)).
//
// Build & run:  ./build/examples/collections_audit [--kind=HashMap]
#include <iostream>

#include "core/pipeline.hpp"
#include "support/flags.hpp"
#include "workloads/collections.hpp"

using namespace wolf;

int main(int argc, char** argv) {
  Flags flags;
  flags.define_string("kind", "HashMap",
                      "ArrayList|Stack|LinkedList|HashMap|TreeMap|...");
  flags.define_int("attempts", 8, "replay attempts per cycle");
  if (!flags.parse(argc, argv)) return 1;
  const std::string kind = flags.get_string("kind");

  const bool is_list =
      kind == "ArrayList" || kind == "Stack" || kind == "LinkedList";
  workloads::CollectionsWorkload w =
      is_list ? workloads::make_collections_list(kind)
              : workloads::make_collections_map(kind);

  WolfOptions options;
  options.seed = 99;
  options.replay.attempts = static_cast<int>(flags.get_int("attempts"));
  WolfReport report = run_wolf(w.program, options);

  const SiteTable& sites = w.program.sites();
  std::cout << "=== WOLF audit of Collections." << kind << " ===\n";
  std::cout << report.detection.cycles.size() << " cycles, "
            << report.defects.size() << " source-location defects\n\n";

  for (const DefectReport& defect : report.defects) {
    std::cout << "defect at [";
    for (std::size_t i = 0; i < defect.signature.size(); ++i) {
      if (i != 0) std::cout << " / ";
      std::cout << sites.name(defect.signature[i]);
    }
    std::cout << "] -> " << to_string(defect.classification) << '\n';

    for (std::size_t c : defect.cycle_indices) {
      const CycleReport& cycle = report.cycles[c];
      std::cout << "    cycle " << c << ": "
                << to_string(cycle.classification);
      if (cycle.classification == Classification::kFalseByGenerator) {
        GeneratorResult gen =
            generate(report.detection.cycles[c], report.detection.dep);
        std::cout << "  — Gs cycle witness:";
        for (const ExecIndex& idx : gen.witness)
          std::cout << ' ' << "t" << idx.thread << '@'
                    << sites.name(idx.site);
      }
      if (cycle.replay_stats.attempts > 0)
        std::cout << "  (hits " << cycle.replay_stats.hits << '/'
                  << cycle.replay_stats.attempts << ')';
      std::cout << '\n';
    }
  }

  std::cout << "\nphase times: detect "
            << report.timings.detect_seconds * 1e3 << " ms, prune "
            << report.timings.prune_seconds * 1e3 << " ms, generate "
            << report.timings.generate_seconds * 1e3 << " ms, replay "
            << report.timings.replay_seconds * 1e3 << " ms\n";
  return 0;
}
