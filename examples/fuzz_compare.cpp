// The paper's Fig. 9 story, executable: a real Collections deadlock that
// WOLF reproduces reliably while DeadlockFuzzer never does, because the two
// worker threads share a creation-site abstraction and the second worker
// walks the same code path once before the deadlocking call.
//
// Build & run:  ./build/examples/fuzz_compare [--runs=100]
#include <algorithm>
#include <iostream>

#include "baseline/deadlock_fuzzer.hpp"
#include "core/generator.hpp"
#include "core/replayer.hpp"
#include "support/flags.hpp"
#include "workloads/paper_examples.hpp"

using namespace wolf;

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("runs", 100, "replay runs per tool");
  if (!flags.parse(argc, argv)) return 1;
  const int runs = static_cast<int>(flags.get_int("runs"));

  workloads::Figure9 fig = workloads::make_figure9();
  auto trace = sim::record_trace(fig.program, 17);
  if (!trace.has_value()) {
    std::cerr << "recording deadlocked repeatedly\n";
    return 1;
  }
  Detection detection = detect(*trace);

  // The Fig. 9 deadlock: addAll's toArray (1570) against removeAll's
  // contains (1567).
  std::vector<SiteId> wanted{fig.s1570, fig.s1567};
  std::sort(wanted.begin(), wanted.end());
  const PotentialDeadlock* target = nullptr;
  for (const PotentialDeadlock& cycle : detection.cycles)
    if (signature_of(cycle, detection.dep) == wanted) target = &cycle;
  if (target == nullptr) {
    std::cerr << "target cycle not detected\n";
    return 1;
  }

  GeneratorResult gen = generate(*target, detection.dep);
  std::cout << "target deadlock: "
            << fig.program.sites().name(fig.s1570) << " vs "
            << fig.program.sites().name(fig.s1567) << "\n"
            << "Gs: " << gen.gs.vertex_count() << " vertices, "
            << (gen.feasible ? "acyclic (feasible)" : "cyclic") << "\n\n";

  ReplayOptions options;
  options.attempts = runs;
  options.stop_on_first_hit = false;
  options.seed = 5;

  ReplayStats wolf_stats =
      replay(fig.program, *target, detection.dep, gen.gs, options);
  ReplayStats df_stats =
      baseline::fuzz(fig.program, *target, detection.dep, options);

  auto show = [&](const char* name, const ReplayStats& stats) {
    std::cout << name << ": " << stats.hits << '/' << stats.attempts
              << " hits (rate " << stats.hit_rate() << "), "
              << stats.other_deadlocks << " wrong-site deadlocks, "
              << stats.no_deadlocks << " clean runs\n";
  };
  show("WOLF          ", wolf_stats);
  show("DeadlockFuzzer", df_stats);

  std::cout << "\nDeadlockFuzzer traps worker-2 at its first pass through "
               "toArray:1570\n(same thread abstraction, same lock "
               "allocation site) and either wedges\nor reproduces the wrong "
               "(1570, 1570) deadlock — the paper's §4.2 account.\n";
  return 0;
}
