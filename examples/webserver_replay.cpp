// Reproduces a genuine OS-thread deadlock. The Jigsaw-style web-server
// workload runs on real std::threads (src/rt); WOLF records the OS-thread
// trace, detects potential deadlocks, and then drives a *real-thread*
// re-execution with the Replayer until the process demonstrably deadlocks —
// the runtime's wait-for graph confirms the cycle and aborts the trial so
// the process survives to print the report.
//
// Build & run:  ./build/examples/webserver_replay
#include <iostream>

#include "core/detector.hpp"
#include "core/generator.hpp"
#include "core/pruner.hpp"
#include "rt/executor.hpp"
#include "rt/replay_rt.hpp"
#include "workloads/jigsaw.hpp"

using namespace wolf;

int main() {
  workloads::JigsawWorkload w = workloads::make_jigsaw();
  const SiteTable& sites = w.program.sites();

  std::cout << "recording an OS-thread execution of the web server ("
            << w.program.thread_count() << " threads, "
            << w.program.lock_count() << " locks)...\n";
  auto trace = rt::record_trace_rt(w.program, /*seed=*/2014, 60);
  if (!trace.has_value()) {
    std::cerr << "every recording run deadlocked; try another seed\n";
    return 1;
  }
  std::cout << "trace: " << trace->size() << " events\n";

  Detection detection = detect(*trace);
  auto verdicts = prune(detection);
  std::cout << "detected " << detection.cycles.size() << " cycles ("
            << detection.defects.size() << " defects)\n";

  // Pick the first cycle that survives the Pruner and the Generator.
  for (std::size_t c = 0; c < detection.cycles.size(); ++c) {
    if (is_false(verdicts[c])) continue;
    GeneratorResult gen = generate(detection.cycles[c], detection.dep);
    if (!gen.feasible) continue;

    std::cout << "\nreplaying cycle " << c << " on real threads: "
              << detection.cycles[c].to_string(detection.dep) << '\n';
    for (int attempt = 0; attempt < 10; ++attempt) {
      ReplayTrial trial = rt::replay_once_rt(
          w.program, detection.cycles[c], detection.dep, gen.gs,
          /*seed=*/1000 + static_cast<std::uint64_t>(attempt));
      std::cout << "  attempt " << attempt << ": "
                << to_string(trial.outcome) << '\n';
      if (trial.outcome == ReplayOutcome::kReproduced) {
        std::cout << "  OS threads deadlocked at:\n";
        for (const sim::BlockedAt& b : trial.run.deadlock_cycle)
          std::cout << "    thread " << b.thread << " blocked at "
                    << sites.name(b.index.site) << " waiting for lock "
                    << w.program.lock_decl(b.lock).name << '\n';
        std::cout << "  (runtime broke the deadlock and recovered)\n";
        return 0;
      }
    }
  }
  std::cout << "no cycle reproduced in this session\n";
  return 0;
}
