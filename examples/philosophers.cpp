// Dining philosophers: detection, exhaustive verification, and reproduction
// of a deadlock cycle involving more than two threads — the k-way case of
// the cycle enumerator, Generator and Replayer.
//
// Build & run:  ./build/examples/philosophers [--n=4]
#include <iostream>

#include "core/pipeline.hpp"
#include "explore/explorer.hpp"
#include "support/flags.hpp"
#include "workloads/paper_examples.hpp"

using namespace wolf;

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("n", 4, "number of philosophers (cycle length)");
  if (!flags.parse(argc, argv)) return 1;
  const int n = static_cast<int>(flags.get_int("n"));

  workloads::Philosophers w = workloads::make_philosophers(n);

  WolfOptions options;
  options.seed = 3;
  options.detector.max_cycle_length = n;
  options.replay.attempts = 20;
  WolfReport report = run_wolf(w.program, options);
  if (!report.trace_recorded) {
    std::cerr << "all recording runs deadlocked — that is philosophers for "
                 "you; rerun with another --n\n";
    return 1;
  }

  std::cout << n << " philosophers: " << report.detection.cycles.size()
            << " cycle(s) detected\n";
  for (const CycleReport& cycle : report.cycles) {
    const PotentialDeadlock& theta =
        report.detection.cycles[cycle.cycle_index];
    std::cout << "  " << theta.tuple_idx.size() << "-thread cycle -> "
              << to_string(cycle.classification) << " (|Vs| = "
              << cycle.gs_vertices << ")\n";
  }

  if (n <= 4) {
    // Small tables can be exhausted: confirm the full-ring deadlock is the
    // only reachable one.
    explore::ExploreResult result = explore::explore(w.program);
    std::cout << "\nexhaustive exploration: " << result.states
              << " states, " << result.deadlock_signatures.size()
              << " distinct deadlock signature(s), exhausted="
              << (result.exhausted ? "yes" : "no") << '\n';
  }
  return 0;
}
