// Quickstart: the WOLF pipeline end to end on a minimal two-thread,
// two-lock program.
//
//   1. describe the program (or attach the instrumentation to your own),
//   2. record an execution trace,
//   3. detect potential deadlock cycles (extended iGoodLock),
//   4. prune infeasible cycles with the (S, J) vector clocks,
//   5. build the synchronization dependency graph Gs,
//   6. replay under Gs until the execution provably deadlocks.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/pipeline.hpp"
#include "sim/scheduler.hpp"

using namespace wolf;

int main() {
  // --- 1. A tiny program: main starts two workers that nest two mutexes in
  // opposite orders (the classic AB/BA deadlock).
  sim::Program program;
  program.name = "quickstart";
  LockId a = program.add_lock("A", program.site("Account.ctor", 1));
  LockId b = program.add_lock("B", program.site("Account.ctor", 2));
  ThreadId main_thread = program.add_thread("main");
  ThreadId alice = program.add_thread("alice");
  ThreadId bob = program.add_thread("bob");

  SiteId s_transfer_out = program.site("transfer(from)", 10);
  SiteId s_transfer_in = program.site("transfer(to)", 11);
  SiteId s_exit1 = program.site("transfer(release-to)", 12);
  SiteId s_exit2 = program.site("transfer(release-from)", 13);

  auto transfer = [&](ThreadId t, LockId from, LockId to) {
    program.lock(t, from, s_transfer_out);
    program.lock(t, to, s_transfer_in);
    program.unlock(t, to, s_exit1);
    program.unlock(t, from, s_exit2);
  };
  transfer(alice, a, b);  // alice: A then B
  transfer(bob, b, a);    // bob:   B then A

  SiteId s_spawn = program.site("main.spawn", 20);
  SiteId s_join = program.site("main.join", 21);
  program.start(main_thread, alice, s_spawn);
  program.start(main_thread, bob, s_spawn);
  program.join(main_thread, alice, s_join);
  program.join(main_thread, bob, s_join);
  program.finalize();

  // --- 2-6. One call runs record → detect → prune → generate → replay.
  WolfOptions options;
  options.seed = 42;
  options.replay.attempts = 10;
  WolfReport report = run_wolf(program, options);

  std::cout << "recorded trace with " << report.detection.dep.tuples.size()
            << " lock-dependency tuples\n";
  std::cout << "detected " << report.detection.cycles.size()
            << " potential deadlock cycle(s), "
            << report.detection.defects.size() << " defect(s)\n\n";

  for (const CycleReport& cycle : report.cycles) {
    const PotentialDeadlock& theta =
        report.detection.cycles[cycle.cycle_index];
    std::cout << "cycle " << cycle.cycle_index << ": "
              << theta.to_string(report.detection.dep) << '\n';
    std::cout << "  verdict: " << to_string(cycle.classification);
    if (cycle.classification == Classification::kReproduced)
      std::cout << " (deadlocked after "
                << cycle.replay_stats.attempts << " replay attempt(s))";
    std::cout << '\n';
  }

  std::cout << '\n' << report.summary(program.sites());

  // Show the synchronization dependency graph of the first cycle as DOT —
  // paste into GraphViz to see the Fig. 7-style structure.
  if (!report.detection.cycles.empty()) {
    GeneratorResult gen =
        generate(report.detection.cycles[0], report.detection.dep);
    std::cout << "\nGs for cycle 0 (" << gen.gs.vertex_count()
              << " vertices, " << (gen.feasible ? "acyclic" : "CYCLIC")
              << "):\n"
              << gen.gs.to_dot(program.sites());
  }
  return 0;
}
