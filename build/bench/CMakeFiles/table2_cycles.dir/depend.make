# Empty dependencies file for table2_cycles.
# This may be replaced when dependencies are built.
