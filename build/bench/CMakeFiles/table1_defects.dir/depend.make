# Empty dependencies file for table1_defects.
# This may be replaced when dependencies are built.
