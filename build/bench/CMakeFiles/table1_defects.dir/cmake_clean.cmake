file(REMOVE_RECURSE
  "CMakeFiles/table1_defects.dir/table1_defects.cpp.o"
  "CMakeFiles/table1_defects.dir/table1_defects.cpp.o.d"
  "table1_defects"
  "table1_defects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_defects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
