file(REMOVE_RECURSE
  "CMakeFiles/fig8_hitrate.dir/fig8_hitrate.cpp.o"
  "CMakeFiles/fig8_hitrate.dir/fig8_hitrate.cpp.o.d"
  "fig8_hitrate"
  "fig8_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
