# Empty dependencies file for fig8_hitrate.
# This may be replaced when dependencies are built.
