file(REMOVE_RECURSE
  "CMakeFiles/ablation_edges.dir/ablation_edges.cpp.o"
  "CMakeFiles/ablation_edges.dir/ablation_edges.cpp.o.d"
  "ablation_edges"
  "ablation_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
