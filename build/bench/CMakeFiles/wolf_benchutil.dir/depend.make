# Empty dependencies file for wolf_benchutil.
# This may be replaced when dependencies are built.
