file(REMOVE_RECURSE
  "CMakeFiles/wolf_benchutil.dir/suite_runner.cpp.o"
  "CMakeFiles/wolf_benchutil.dir/suite_runner.cpp.o.d"
  "libwolf_benchutil.a"
  "libwolf_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wolf_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
