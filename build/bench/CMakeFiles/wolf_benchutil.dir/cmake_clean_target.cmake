file(REMOVE_RECURSE
  "libwolf_benchutil.a"
)
