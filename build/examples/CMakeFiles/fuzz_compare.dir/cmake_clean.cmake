file(REMOVE_RECURSE
  "CMakeFiles/fuzz_compare.dir/fuzz_compare.cpp.o"
  "CMakeFiles/fuzz_compare.dir/fuzz_compare.cpp.o.d"
  "fuzz_compare"
  "fuzz_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
