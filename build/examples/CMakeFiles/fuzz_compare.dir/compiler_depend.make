# Empty compiler generated dependencies file for fuzz_compare.
# This may be replaced when dependencies are built.
