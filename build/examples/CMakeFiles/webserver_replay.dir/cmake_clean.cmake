file(REMOVE_RECURSE
  "CMakeFiles/webserver_replay.dir/webserver_replay.cpp.o"
  "CMakeFiles/webserver_replay.dir/webserver_replay.cpp.o.d"
  "webserver_replay"
  "webserver_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
