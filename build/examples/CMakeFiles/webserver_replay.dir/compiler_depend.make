# Empty compiler generated dependencies file for webserver_replay.
# This may be replaced when dependencies are built.
