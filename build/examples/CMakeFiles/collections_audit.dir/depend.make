# Empty dependencies file for collections_audit.
# This may be replaced when dependencies are built.
