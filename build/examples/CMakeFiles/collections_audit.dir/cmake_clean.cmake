file(REMOVE_RECURSE
  "CMakeFiles/collections_audit.dir/collections_audit.cpp.o"
  "CMakeFiles/collections_audit.dir/collections_audit.cpp.o.d"
  "collections_audit"
  "collections_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collections_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
