# Empty compiler generated dependencies file for wolf_cli.
# This may be replaced when dependencies are built.
