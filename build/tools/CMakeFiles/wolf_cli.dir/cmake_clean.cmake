file(REMOVE_RECURSE
  "CMakeFiles/wolf_cli.dir/wolf_cli.cpp.o"
  "CMakeFiles/wolf_cli.dir/wolf_cli.cpp.o.d"
  "wolf"
  "wolf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wolf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
