# Empty dependencies file for wolf_clock.
# This may be replaced when dependencies are built.
