file(REMOVE_RECURSE
  "CMakeFiles/wolf_clock.dir/clock_tracker.cpp.o"
  "CMakeFiles/wolf_clock.dir/clock_tracker.cpp.o.d"
  "libwolf_clock.a"
  "libwolf_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wolf_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
