file(REMOVE_RECURSE
  "libwolf_clock.a"
)
