file(REMOVE_RECURSE
  "CMakeFiles/wolf_graph.dir/digraph.cpp.o"
  "CMakeFiles/wolf_graph.dir/digraph.cpp.o.d"
  "libwolf_graph.a"
  "libwolf_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wolf_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
