file(REMOVE_RECURSE
  "libwolf_graph.a"
)
