# Empty compiler generated dependencies file for wolf_graph.
# This may be replaced when dependencies are built.
