file(REMOVE_RECURSE
  "libwolf_baseline.a"
)
