# Empty compiler generated dependencies file for wolf_baseline.
# This may be replaced when dependencies are built.
