file(REMOVE_RECURSE
  "CMakeFiles/wolf_baseline.dir/deadlock_fuzzer.cpp.o"
  "CMakeFiles/wolf_baseline.dir/deadlock_fuzzer.cpp.o.d"
  "CMakeFiles/wolf_baseline.dir/df_pipeline.cpp.o"
  "CMakeFiles/wolf_baseline.dir/df_pipeline.cpp.o.d"
  "libwolf_baseline.a"
  "libwolf_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wolf_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
