file(REMOVE_RECURSE
  "CMakeFiles/wolf_explore.dir/explorer.cpp.o"
  "CMakeFiles/wolf_explore.dir/explorer.cpp.o.d"
  "libwolf_explore.a"
  "libwolf_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wolf_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
