file(REMOVE_RECURSE
  "libwolf_explore.a"
)
