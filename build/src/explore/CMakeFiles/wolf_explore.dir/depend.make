# Empty dependencies file for wolf_explore.
# This may be replaced when dependencies are built.
