# Empty dependencies file for wolf_rt.
# This may be replaced when dependencies are built.
