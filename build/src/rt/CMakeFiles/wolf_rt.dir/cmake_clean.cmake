file(REMOVE_RECURSE
  "CMakeFiles/wolf_rt.dir/executor.cpp.o"
  "CMakeFiles/wolf_rt.dir/executor.cpp.o.d"
  "CMakeFiles/wolf_rt.dir/replay_rt.cpp.o"
  "CMakeFiles/wolf_rt.dir/replay_rt.cpp.o.d"
  "libwolf_rt.a"
  "libwolf_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wolf_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
