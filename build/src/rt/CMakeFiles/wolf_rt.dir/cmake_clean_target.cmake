file(REMOVE_RECURSE
  "libwolf_rt.a"
)
