file(REMOVE_RECURSE
  "libwolf_trace.a"
)
