# Empty dependencies file for wolf_trace.
# This may be replaced when dependencies are built.
