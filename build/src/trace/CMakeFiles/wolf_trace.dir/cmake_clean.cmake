file(REMOVE_RECURSE
  "CMakeFiles/wolf_trace.dir/event.cpp.o"
  "CMakeFiles/wolf_trace.dir/event.cpp.o.d"
  "CMakeFiles/wolf_trace.dir/serialize.cpp.o"
  "CMakeFiles/wolf_trace.dir/serialize.cpp.o.d"
  "libwolf_trace.a"
  "libwolf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wolf_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
