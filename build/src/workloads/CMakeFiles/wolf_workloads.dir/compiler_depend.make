# Empty compiler generated dependencies file for wolf_workloads.
# This may be replaced when dependencies are built.
