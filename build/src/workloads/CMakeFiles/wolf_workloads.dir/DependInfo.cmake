
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cache4j.cpp" "src/workloads/CMakeFiles/wolf_workloads.dir/cache4j.cpp.o" "gcc" "src/workloads/CMakeFiles/wolf_workloads.dir/cache4j.cpp.o.d"
  "/root/repo/src/workloads/collections.cpp" "src/workloads/CMakeFiles/wolf_workloads.dir/collections.cpp.o" "gcc" "src/workloads/CMakeFiles/wolf_workloads.dir/collections.cpp.o.d"
  "/root/repo/src/workloads/jigsaw.cpp" "src/workloads/CMakeFiles/wolf_workloads.dir/jigsaw.cpp.o" "gcc" "src/workloads/CMakeFiles/wolf_workloads.dir/jigsaw.cpp.o.d"
  "/root/repo/src/workloads/logging.cpp" "src/workloads/CMakeFiles/wolf_workloads.dir/logging.cpp.o" "gcc" "src/workloads/CMakeFiles/wolf_workloads.dir/logging.cpp.o.d"
  "/root/repo/src/workloads/paper_examples.cpp" "src/workloads/CMakeFiles/wolf_workloads.dir/paper_examples.cpp.o" "gcc" "src/workloads/CMakeFiles/wolf_workloads.dir/paper_examples.cpp.o.d"
  "/root/repo/src/workloads/slowdown.cpp" "src/workloads/CMakeFiles/wolf_workloads.dir/slowdown.cpp.o" "gcc" "src/workloads/CMakeFiles/wolf_workloads.dir/slowdown.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/workloads/CMakeFiles/wolf_workloads.dir/suite.cpp.o" "gcc" "src/workloads/CMakeFiles/wolf_workloads.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wolf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wolf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/wolf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
