file(REMOVE_RECURSE
  "libwolf_workloads.a"
)
