file(REMOVE_RECURSE
  "CMakeFiles/wolf_workloads.dir/cache4j.cpp.o"
  "CMakeFiles/wolf_workloads.dir/cache4j.cpp.o.d"
  "CMakeFiles/wolf_workloads.dir/collections.cpp.o"
  "CMakeFiles/wolf_workloads.dir/collections.cpp.o.d"
  "CMakeFiles/wolf_workloads.dir/jigsaw.cpp.o"
  "CMakeFiles/wolf_workloads.dir/jigsaw.cpp.o.d"
  "CMakeFiles/wolf_workloads.dir/logging.cpp.o"
  "CMakeFiles/wolf_workloads.dir/logging.cpp.o.d"
  "CMakeFiles/wolf_workloads.dir/paper_examples.cpp.o"
  "CMakeFiles/wolf_workloads.dir/paper_examples.cpp.o.d"
  "CMakeFiles/wolf_workloads.dir/slowdown.cpp.o"
  "CMakeFiles/wolf_workloads.dir/slowdown.cpp.o.d"
  "CMakeFiles/wolf_workloads.dir/suite.cpp.o"
  "CMakeFiles/wolf_workloads.dir/suite.cpp.o.d"
  "libwolf_workloads.a"
  "libwolf_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wolf_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
