# Empty dependencies file for wolf_core.
# This may be replaced when dependencies are built.
