file(REMOVE_RECURSE
  "CMakeFiles/wolf_core.dir/detector.cpp.o"
  "CMakeFiles/wolf_core.dir/detector.cpp.o.d"
  "CMakeFiles/wolf_core.dir/generator.cpp.o"
  "CMakeFiles/wolf_core.dir/generator.cpp.o.d"
  "CMakeFiles/wolf_core.dir/lock_dependency.cpp.o"
  "CMakeFiles/wolf_core.dir/lock_dependency.cpp.o.d"
  "CMakeFiles/wolf_core.dir/magic_prune.cpp.o"
  "CMakeFiles/wolf_core.dir/magic_prune.cpp.o.d"
  "CMakeFiles/wolf_core.dir/multi.cpp.o"
  "CMakeFiles/wolf_core.dir/multi.cpp.o.d"
  "CMakeFiles/wolf_core.dir/online_sink.cpp.o"
  "CMakeFiles/wolf_core.dir/online_sink.cpp.o.d"
  "CMakeFiles/wolf_core.dir/pipeline.cpp.o"
  "CMakeFiles/wolf_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/wolf_core.dir/pruner.cpp.o"
  "CMakeFiles/wolf_core.dir/pruner.cpp.o.d"
  "CMakeFiles/wolf_core.dir/ranking.cpp.o"
  "CMakeFiles/wolf_core.dir/ranking.cpp.o.d"
  "CMakeFiles/wolf_core.dir/replayer.cpp.o"
  "CMakeFiles/wolf_core.dir/replayer.cpp.o.d"
  "CMakeFiles/wolf_core.dir/report_writer.cpp.o"
  "CMakeFiles/wolf_core.dir/report_writer.cpp.o.d"
  "libwolf_core.a"
  "libwolf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wolf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
