
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/wolf_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/wolf_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/generator.cpp" "src/core/CMakeFiles/wolf_core.dir/generator.cpp.o" "gcc" "src/core/CMakeFiles/wolf_core.dir/generator.cpp.o.d"
  "/root/repo/src/core/lock_dependency.cpp" "src/core/CMakeFiles/wolf_core.dir/lock_dependency.cpp.o" "gcc" "src/core/CMakeFiles/wolf_core.dir/lock_dependency.cpp.o.d"
  "/root/repo/src/core/magic_prune.cpp" "src/core/CMakeFiles/wolf_core.dir/magic_prune.cpp.o" "gcc" "src/core/CMakeFiles/wolf_core.dir/magic_prune.cpp.o.d"
  "/root/repo/src/core/multi.cpp" "src/core/CMakeFiles/wolf_core.dir/multi.cpp.o" "gcc" "src/core/CMakeFiles/wolf_core.dir/multi.cpp.o.d"
  "/root/repo/src/core/online_sink.cpp" "src/core/CMakeFiles/wolf_core.dir/online_sink.cpp.o" "gcc" "src/core/CMakeFiles/wolf_core.dir/online_sink.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/wolf_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/wolf_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/pruner.cpp" "src/core/CMakeFiles/wolf_core.dir/pruner.cpp.o" "gcc" "src/core/CMakeFiles/wolf_core.dir/pruner.cpp.o.d"
  "/root/repo/src/core/ranking.cpp" "src/core/CMakeFiles/wolf_core.dir/ranking.cpp.o" "gcc" "src/core/CMakeFiles/wolf_core.dir/ranking.cpp.o.d"
  "/root/repo/src/core/replayer.cpp" "src/core/CMakeFiles/wolf_core.dir/replayer.cpp.o" "gcc" "src/core/CMakeFiles/wolf_core.dir/replayer.cpp.o.d"
  "/root/repo/src/core/report_writer.cpp" "src/core/CMakeFiles/wolf_core.dir/report_writer.cpp.o" "gcc" "src/core/CMakeFiles/wolf_core.dir/report_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/wolf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/wolf_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/wolf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wolf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/wolf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
