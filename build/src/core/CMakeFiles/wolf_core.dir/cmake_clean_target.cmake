file(REMOVE_RECURSE
  "libwolf_core.a"
)
