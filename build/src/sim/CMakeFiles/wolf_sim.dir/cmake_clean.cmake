file(REMOVE_RECURSE
  "CMakeFiles/wolf_sim.dir/program.cpp.o"
  "CMakeFiles/wolf_sim.dir/program.cpp.o.d"
  "CMakeFiles/wolf_sim.dir/scheduler.cpp.o"
  "CMakeFiles/wolf_sim.dir/scheduler.cpp.o.d"
  "libwolf_sim.a"
  "libwolf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wolf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
