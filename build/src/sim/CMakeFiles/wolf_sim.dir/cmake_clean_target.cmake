file(REMOVE_RECURSE
  "libwolf_sim.a"
)
