# Empty compiler generated dependencies file for wolf_sim.
# This may be replaced when dependencies are built.
