file(REMOVE_RECURSE
  "libwolf_support.a"
)
