# Empty compiler generated dependencies file for wolf_support.
# This may be replaced when dependencies are built.
