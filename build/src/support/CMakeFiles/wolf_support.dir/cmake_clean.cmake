file(REMOVE_RECURSE
  "CMakeFiles/wolf_support.dir/flags.cpp.o"
  "CMakeFiles/wolf_support.dir/flags.cpp.o.d"
  "CMakeFiles/wolf_support.dir/stats.cpp.o"
  "CMakeFiles/wolf_support.dir/stats.cpp.o.d"
  "CMakeFiles/wolf_support.dir/str.cpp.o"
  "CMakeFiles/wolf_support.dir/str.cpp.o.d"
  "CMakeFiles/wolf_support.dir/table.cpp.o"
  "CMakeFiles/wolf_support.dir/table.cpp.o.d"
  "libwolf_support.a"
  "libwolf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wolf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
