# Empty compiler generated dependencies file for pruner_test.
# This may be replaced when dependencies are built.
