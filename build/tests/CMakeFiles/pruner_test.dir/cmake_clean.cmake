file(REMOVE_RECURSE
  "CMakeFiles/pruner_test.dir/pruner_test.cpp.o"
  "CMakeFiles/pruner_test.dir/pruner_test.cpp.o.d"
  "pruner_test"
  "pruner_test.pdb"
  "pruner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pruner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
