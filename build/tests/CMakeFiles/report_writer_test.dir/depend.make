# Empty dependencies file for report_writer_test.
# This may be replaced when dependencies are built.
