# Empty compiler generated dependencies file for wolf_testutil.
# This may be replaced when dependencies are built.
