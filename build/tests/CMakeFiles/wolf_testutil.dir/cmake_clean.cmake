file(REMOVE_RECURSE
  "CMakeFiles/wolf_testutil.dir/testutil.cpp.o"
  "CMakeFiles/wolf_testutil.dir/testutil.cpp.o.d"
  "libwolf_testutil.a"
  "libwolf_testutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wolf_testutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
