file(REMOVE_RECURSE
  "libwolf_testutil.a"
)
