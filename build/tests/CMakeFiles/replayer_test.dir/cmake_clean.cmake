file(REMOVE_RECURSE
  "CMakeFiles/replayer_test.dir/replayer_test.cpp.o"
  "CMakeFiles/replayer_test.dir/replayer_test.cpp.o.d"
  "replayer_test"
  "replayer_test.pdb"
  "replayer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replayer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
