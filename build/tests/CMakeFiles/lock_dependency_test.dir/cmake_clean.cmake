file(REMOVE_RECURSE
  "CMakeFiles/lock_dependency_test.dir/lock_dependency_test.cpp.o"
  "CMakeFiles/lock_dependency_test.dir/lock_dependency_test.cpp.o.d"
  "lock_dependency_test"
  "lock_dependency_test.pdb"
  "lock_dependency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_dependency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
