# Empty compiler generated dependencies file for lock_dependency_test.
# This may be replaced when dependencies are built.
