// Deterministic pseudo-random number generation.
//
// Every randomized component in WOLF (schedulers, fuzzers, workload
// generators, property tests) takes an explicit seed so that any run can be
// replayed bit-for-bit. We use xoshiro256** seeded through splitmix64, the
// standard recipe, rather than std::mt19937 because it is faster, has a
// trivially copyable 32-byte state, and gives identical streams on every
// platform.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "support/check.hpp"

namespace wolf {

// splitmix64 step; used to expand seeds and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless hash of a 64-bit value; handy for state fingerprints.
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

// xoshiro256** 1.0
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be positive. Uses Lemire's
  // multiply-shift rejection method to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) {
    WOLF_DCHECK(bound > 0);
    while (true) {
      std::uint64_t x = (*this)();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= static_cast<std::uint64_t>(-bound) % bound)
        return static_cast<std::uint64_t>(m >> 64);
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    WOLF_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  // Pick a uniformly random element index of a non-empty container.
  template <typename Container>
  std::size_t index(const Container& c) {
    WOLF_DCHECK(!c.empty());
    return static_cast<std::size_t>(below(c.size()));
  }

  template <typename Container>
  auto& pick(Container& c) {
    return c[index(c)];
  }

  // Derive an independent child stream; used to give each replay trial or
  // subcomponent its own reproducible randomness.
  Rng fork() { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace wolf
