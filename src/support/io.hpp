// Crash-consistent file output.
//
// A recorder that dies mid-write must not leave a half-written trace where
// a good one used to be — the salvage reader can recover a torn *stream*,
// but a torn *overwrite* of a previously valid file destroys data the user
// already had. atomic_write_file gives the standard guarantee: write the
// full contents to a sibling temp file, then std::rename it over the
// target. rename(2) is atomic on POSIX, so at every instant the target
// path holds either the complete old contents or the complete new ones.
//
// fail_after_bytes is the built-in kill point for fault injection
// (FaultPlan::io_tear_after): the write "crashes" after that many bytes,
// the temp file is removed, the rename never happens, and the target is
// untouched — which is exactly what tests assert.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <string_view>

namespace wolf::support {

// Writes `contents` to `path` atomically (temp file + rename). Returns
// false and fills *error (when non-null) on failure; the target file is
// never left partially written. fail_after_bytes < contents.size()
// simulates a crash after that many bytes reach the temp file.
bool atomic_write_file(
    const std::string& path, std::string_view contents,
    std::string* error = nullptr,
    std::size_t fail_after_bytes = std::numeric_limits<std::size_t>::max());

}  // namespace wolf::support
