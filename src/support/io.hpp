// Crash-consistent file output.
//
// A recorder that dies mid-write must not leave a half-written trace where
// a good one used to be — the salvage reader can recover a torn *stream*,
// but a torn *overwrite* of a previously valid file destroys data the user
// already had. atomic_write_file gives the standard guarantee: write the
// full contents to a sibling temp file, then std::rename it over the
// target. rename(2) is atomic on POSIX, so at every instant the target
// path holds either the complete old contents or the complete new ones.
//
// fail_after_bytes is the built-in kill point for fault injection
// (FaultPlan::io_tear_after): the write "crashes" after that many bytes,
// the temp file is removed, the rename never happens, and the target is
// untouched — which is exactly what tests assert.
#pragma once

#include <cstddef>
#include <fstream>
#include <limits>
#include <string>
#include <string_view>

namespace wolf::support {

// Writes `contents` to `path` atomically (temp file + rename). Returns
// false and fills *error (when non-null) on failure; the target file is
// never left partially written. fail_after_bytes < contents.size()
// simulates a crash after that many bytes reach the temp file.
bool atomic_write_file(
    const std::string& path, std::string_view contents,
    std::string* error = nullptr,
    std::size_t fail_after_bytes = std::numeric_limits<std::size_t>::max());

// Streaming variant of atomic_write_file for producers that cannot (or
// should not) materialize the whole output — `wolf convert` rewriting a
// 10^8-event trace stays in O(block) memory by pushing blocks through
// this writer. Same contract: everything goes to a sibling temp file and
// the target only changes at commit() via rename(2); destruction without
// commit (including via exceptions) removes the temp file and leaves the
// target untouched.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();  // aborts unless commit() succeeded

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  // False when the temp file could not be opened or a write failed.
  bool ok() const { return out_.good(); }
  // The temp-file stream; write output here (binary mode).
  std::ostream& stream() { return out_; }

  // Flushes and renames the temp file over the target. Returns false and
  // fills *error on any failure (the temp file is removed, the target is
  // untouched). No further writes are valid after commit.
  bool commit(std::string* error = nullptr);
  // Removes the temp file without touching the target.
  void abort();

 private:
  std::string path_;
  std::string tmp_;
  std::ofstream out_;
  bool done_ = false;
};

}  // namespace wolf::support
