#include "support/mmap_file.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define WOLF_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define WOLF_HAVE_MMAP 0
#endif

namespace wolf::support {

#if WOLF_HAVE_MMAP

std::optional<MmapFile> MmapFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return std::nullopt;
  }
  MmapFile f;
  f.size_ = static_cast<std::size_t>(st.st_size);
  if (f.size_ != 0) {
    void* addr = ::mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      return std::nullopt;
    }
    f.addr_ = addr;
  }
  ::close(fd);  // the mapping keeps the file contents live
  return f;
}

void MmapFile::unmap() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
  addr_ = nullptr;
  size_ = 0;
}

#else  // !WOLF_HAVE_MMAP

std::optional<MmapFile> MmapFile::open(const std::string&) {
  return std::nullopt;
}

void MmapFile::unmap() {
  addr_ = nullptr;
  size_ = 0;
}

#endif

}  // namespace wolf::support
