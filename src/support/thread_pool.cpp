#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.hpp"

namespace wolf {

namespace {

// pool.tasks counts fn invocations (serial path included) and pool.batches
// counts parallel_for_each calls; both depend on the jobs level (the cycle
// engine bypasses the pool entirely at jobs=1), and pool.parks — a worker
// finding the queue momentarily empty — depends on raw scheduling, so all
// three are registered non-stable and excluded from byte-stable reports.
const obs::Counter kTasks("pool.tasks", /*stable=*/false);
const obs::Counter kBatches("pool.batches", /*stable=*/false);
const obs::Counter kParks("pool.parks", /*stable=*/false);

// Injected task fault (ThreadPool::inject_task_fault): the index whose task
// throws, or SIZE_MAX when unset.
std::atomic<std::size_t> g_fault_index{std::numeric_limits<std::size_t>::max()};

void maybe_throw_task_fault(std::size_t index) {
  if (index == g_fault_index.load(std::memory_order_relaxed))
    throw std::runtime_error("injected pool task fault (index " +
                             std::to_string(index) + ")");
}

// Shared state of one parallel_for_each call. Owned via shared_ptr by the
// caller and by every queued drain task, so a worker that finishes last can
// still touch the batch after the caller has returned from its wait.
struct Batch {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};

  std::mutex mu;
  std::condition_variable cv;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  void record_error(std::size_t index) {
    std::lock_guard<std::mutex> lock(mu);
    if (index < error_index) {
      error_index = index;
      error = std::current_exception();
    }
  }

  // Runs indices until the cursor is exhausted. Called from workers and from
  // the caller's own thread.
  void drain() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      kTasks.add();
      try {
        maybe_throw_task_fault(i);
        (*fn)(i);
      } catch (...) {
        record_error(i);
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::shared_ptr<Batch>> queue;
  bool stopping = false;
  std::vector<std::thread> workers;

  void worker_loop() {
    while (true) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lock(mu);
        if (!stopping && queue.empty()) kParks.add();
        cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (stopping && queue.empty()) return;
        batch = std::move(queue.front());
        queue.pop_front();
      }
      batch->drain();
    }
  }
};

ThreadPool::ThreadPool(int jobs) {
  jobs_ = jobs <= 0 ? hardware_jobs() : jobs;
  if (jobs_ == 1) return;  // pure inline mode: no threads, no Impl
  impl_ = new Impl;
  impl_->workers.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int i = 0; i < jobs_ - 1; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

void ThreadPool::inject_task_fault(std::size_t index) {
  g_fault_index.store(index, std::memory_order_relaxed);
}

void ThreadPool::clear_task_fault() {
  g_fault_index.store(std::numeric_limits<std::size_t>::max(),
                      std::memory_order_relaxed);
}

int ThreadPool::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::parallel_for_each(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  kBatches.add();
  if (impl_ == nullptr || count == 1) {
    // Serial path: identical contract — run everything, then rethrow the
    // lowest-index exception.
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
    for (std::size_t i = 0; i < count; ++i) {
      kTasks.add();
      try {
        maybe_throw_task_fault(i);
        fn(i);
      } catch (...) {
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->count = count;

  // One queued drain per background worker that could usefully help; the
  // cursor makes surplus drains exit immediately anyway.
  const std::size_t helpers =
      std::min(count, static_cast<std::size_t>(jobs_ - 1));
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (std::size_t i = 0; i < helpers; ++i) impl_->queue.push_back(batch);
  }
  impl_->cv.notify_all();

  batch->drain();

  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&] {
    return batch->done.load(std::memory_order_acquire) == batch->count;
  });
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace wolf
