// Streaming descriptive statistics for benchmark reporting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wolf {

// Accumulates samples and answers summary queries. Keeps all samples so that
// exact percentiles can be reported (benchmark sample counts are small).
class Stats {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const;
  double mean() const;
  // Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  double min() const;
  double max() const;
  // Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

  // "mean ± stddev [min, max]" convenience for logs.
  std::string summary() const;

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // lazily maintained sorted copy
  mutable bool sorted_valid_ = false;

  const std::vector<double>& sorted() const;
};

}  // namespace wolf
