// Tiny command-line flag parser for the CLI, example and bench executables.
//
// Supports "--name=value", "--name value" and boolean "--name" forms.
// Unknown flags are an error so that typos in experiment scripts fail
// loudly; set_context() names the subcommand in those diagnostics.
// register_common_flags() defines the flag surface every wolf subcommand
// shares (mirroring wolf::Config in wolf.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wolf {

class Flags {
 public:
  // Registration: call before parse(). Each flag has a help string rendered
  // by usage().
  void define_int(const std::string& name, std::int64_t default_value,
                  const std::string& help);
  void define_bool(const std::string& name, bool default_value,
                   const std::string& help);
  void define_string(const std::string& name, const std::string& default_value,
                     const std::string& help);

  // Names the command in diagnostics and usage (e.g. "wolf analyze"), so
  // an unknown flag reports which subcommand rejected it. Empty (default)
  // falls back to argv[0].
  void set_context(const std::string& context) { context_ = context; }

  // True when a flag of this name has been defined (any kind).
  bool defined(const std::string& name) const {
    return flags_.count(name) != 0;
  }

  // Returns false (after printing a diagnostic to stderr) on malformed or
  // unknown arguments, or when --help is requested.
  bool parse(int argc, char** argv);

  std::int64_t get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  std::string usage(const std::string& program) const;

 private:
  enum class Kind { kInt, kBool, kString };
  struct Flag {
    Kind kind;
    std::string help;
    std::int64_t int_value = 0;
    bool bool_value = false;
    std::string string_value;
  };

  bool set_from_string(Flag& flag, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::string context_;
};

// Defines the shared flag surface of every wolf subcommand, mirroring the
// top-level scalars of wolf::Config: --seed, --jobs, --engine,
// --deadline-ms, plus the observability flags --metrics-out,
// --metrics-stable and --progress.
void register_common_flags(Flags& flags);

}  // namespace wolf
