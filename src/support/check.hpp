// Lightweight invariant-checking macros used throughout WOLF.
//
// WOLF_CHECK is always on (cheap, used for API contract violations and
// internal invariants whose failure would make later results meaningless).
// WOLF_DCHECK compiles out in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace wolf {

// Thrown by WOLF_CHECK failures so that harnesses and tests can observe the
// failure instead of the process dying. Carries the failing expression and
// location.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "WOLF_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace detail
}  // namespace wolf

#define WOLF_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr))                                                        \
      ::wolf::detail::check_failed(#expr, __FILE__, __LINE__, "");      \
  } while (false)

#define WOLF_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream os_;                                           \
      os_ << msg;                                                       \
      ::wolf::detail::check_failed(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                   \
  } while (false)

#ifdef NDEBUG
#define WOLF_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define WOLF_DCHECK(expr) WOLF_CHECK(expr)
#endif
