// Bounded SPSC ring queue — the decode→ingest handoff of the pipelined
// governed path (DESIGN.md §17).
//
// One producer thread pushes decoded event blocks, one consumer thread pops
// them; capacity is fixed (rounded up to a power of two), and a full queue
// *blocks the producer* — that is the backpressure that keeps decode from
// racing arbitrarily far ahead of ingestion and re-inflating the memory
// the governor just bounded. Both stall directions are counted (stalls and
// stalled seconds) so benchmarks can attribute where pipeline time went:
// push stalls mean ingestion is the bottleneck, pop stalls mean decode is.
//
// Layout and discipline:
//   * head_ (producer-owned) and tail_ (consumer-owned) are cache-line-
//     padded atomics, so the two sides never false-share a line through
//     their hot indices; slot transfer itself is index-ordered (release
//     store of the index publishes the slot write).
//   * The uncontended path is lock-free: one seq_cst index load, a slot
//     move, one index store. The mutex+condvar pair exists only to sleep
//     and wake across the empty/full boundary — and a side that goes to
//     sleep advertises it in sleepers_ first, so the other side only takes
//     the lock to notify when someone is actually waiting.
//   * The empty/full handshake (index stores, index re-reads, sleepers_)
//     is seq_cst: the waiter's "still empty?" check and the producer's
//     "anyone sleeping?" check form a classic store/load race that weaker
//     orders do not serialize. Items are whole event blocks (hundreds of
//     events), so the queue runs at kHz, not MHz — correctness is worth
//     the fence.
//
// close() ends the stream from either side: a blocked push unblocks and
// returns false (producer stops), and pop drains what was already queued
// before returning false (consumer sees every pushed block exactly once).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

#include "support/stopwatch.hpp"

namespace wolf {

template <typename T>
class RingQueue {
 public:
  struct Stats {
    std::uint64_t push_stalls = 0;  // times the producer found the ring full
    std::uint64_t pop_stalls = 0;   // times the consumer found it empty
    double push_stall_seconds = 0;  // total time the producer slept
    double pop_stall_seconds = 0;   // total time the consumer slept
  };

  // Capacity is rounded up to a power of two, minimum 2.
  explicit RingQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return slots_.size(); }

  // Producer side. Blocks while the ring is full; returns false — without
  // enqueueing — once close() has been called.
  bool push(T item) {
    const std::size_t head = head_.v.load(std::memory_order_relaxed);
    if (head - tail_.v.load(std::memory_order_seq_cst) == slots_.size()) {
      if (!wait_not_full(head)) return false;
    }
    if (closed_.load(std::memory_order_seq_cst)) return false;
    slots_[head & mask_] = std::move(item);
    head_.v.store(head + 1, std::memory_order_seq_cst);
    wake(kConsumer);
    return true;
  }

  // Consumer side. Blocks while the ring is empty; returns false only once
  // the queue is closed *and* drained — every pushed item is delivered.
  bool pop(T& out) {
    const std::size_t tail = tail_.v.load(std::memory_order_relaxed);
    if (tail == head_.v.load(std::memory_order_seq_cst)) {
      if (!wait_not_empty(tail)) return false;
    }
    out = std::move(slots_[tail & mask_]);
    tail_.v.store(tail + 1, std::memory_order_seq_cst);
    wake(kProducer);
    return true;
  }

  // Idempotent; callable from either side (or a third thread). Wakes every
  // sleeper so a blocked push/pop observes the close immediately.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_.store(true, std::memory_order_seq_cst);
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_seq_cst); }

  // Exact on the side that owns each counter; safe to read concurrently
  // (each field is written by exactly one thread, via relaxed atomics).
  Stats stats() const {
    Stats s;
    s.push_stalls = push_stalls_.load(std::memory_order_relaxed);
    s.pop_stalls = pop_stalls_.load(std::memory_order_relaxed);
    s.push_stall_seconds =
        1e-9 * static_cast<double>(
                   push_stall_nanos_.load(std::memory_order_relaxed));
    s.pop_stall_seconds =
        1e-9 * static_cast<double>(
                   pop_stall_nanos_.load(std::memory_order_relaxed));
    return s;
  }

 private:
  enum Side { kProducer = 0, kConsumer = 1 };

  struct alignas(64) PaddedIndex {
    std::atomic<std::size_t> v{0};
  };

  // Returns false when the queue closed while (or before) waiting.
  bool wait_not_full(std::size_t head) {
    push_stalls_.fetch_add(1, std::memory_order_relaxed);
    Stopwatch stalled;
    std::unique_lock<std::mutex> lock(mutex_);
    sleepers_[kProducer].store(1, std::memory_order_seq_cst);
    not_full_.wait(lock, [&] {
      return closed_.load(std::memory_order_seq_cst) ||
             head - tail_.v.load(std::memory_order_seq_cst) < slots_.size();
    });
    sleepers_[kProducer].store(0, std::memory_order_seq_cst);
    push_stall_nanos_.fetch_add(
        static_cast<std::uint64_t>(stalled.seconds() * 1e9),
        std::memory_order_relaxed);
    return !closed_.load(std::memory_order_seq_cst);
  }

  bool wait_not_empty(std::size_t tail) {
    // Fast close-check: a closed empty queue is terminal, not a stall.
    if (closed_.load(std::memory_order_seq_cst) &&
        tail == head_.v.load(std::memory_order_seq_cst))
      return false;
    pop_stalls_.fetch_add(1, std::memory_order_relaxed);
    Stopwatch stalled;
    std::unique_lock<std::mutex> lock(mutex_);
    sleepers_[kConsumer].store(1, std::memory_order_seq_cst);
    not_empty_.wait(lock, [&] {
      return closed_.load(std::memory_order_seq_cst) ||
             tail != head_.v.load(std::memory_order_seq_cst);
    });
    sleepers_[kConsumer].store(0, std::memory_order_seq_cst);
    pop_stall_nanos_.fetch_add(
        static_cast<std::uint64_t>(stalled.seconds() * 1e9),
        std::memory_order_relaxed);
    return tail != head_.v.load(std::memory_order_seq_cst);
  }

  void wake(Side side) {
    if (sleepers_[side].load(std::memory_order_seq_cst) == 0) return;
    // Empty critical section: serializes the notify after the sleeper's
    // predicate check, so the wakeup cannot land in the check→block window.
    { std::lock_guard<std::mutex> lock(mutex_); }
    (side == kConsumer ? not_empty_ : not_full_).notify_one();
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  PaddedIndex head_;  // producer-owned; next slot to fill
  PaddedIndex tail_;  // consumer-owned; next slot to drain

  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::atomic<bool> closed_{false};
  std::atomic<int> sleepers_[2] = {{0}, {0}};

  std::atomic<std::uint64_t> push_stalls_{0};
  std::atomic<std::uint64_t> pop_stalls_{0};
  std::atomic<std::uint64_t> push_stall_nanos_{0};
  std::atomic<std::uint64_t> pop_stall_nanos_{0};
};

}  // namespace wolf
