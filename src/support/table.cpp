#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace wolf {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WOLF_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  WOLF_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, expected "
                            << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    os << '\n';
  };
  auto print_sep = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

}  // namespace wolf
