#include "support/flags.hpp"

#include <cstdio>
#include <sstream>

#include "support/check.hpp"
#include "support/str.hpp"

namespace wolf {

void Flags::define_int(const std::string& name, std::int64_t default_value,
                       const std::string& help) {
  Flag f;
  f.kind = Kind::kInt;
  f.help = help;
  f.int_value = default_value;
  flags_[name] = std::move(f);
}

void Flags::define_bool(const std::string& name, bool default_value,
                        const std::string& help) {
  Flag f;
  f.kind = Kind::kBool;
  f.help = help;
  f.bool_value = default_value;
  flags_[name] = std::move(f);
}

void Flags::define_string(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  Flag f;
  f.kind = Kind::kString;
  f.help = help;
  f.string_value = default_value;
  flags_[name] = std::move(f);
}

bool Flags::set_from_string(Flag& flag, const std::string& value) {
  switch (flag.kind) {
    case Kind::kInt: {
      long long v = 0;
      if (!parse_int(value, v)) return false;
      flag.int_value = v;
      return true;
    }
    case Kind::kBool:
      if (value == "true" || value == "1") {
        flag.bool_value = true;
        return true;
      }
      if (value == "false" || value == "0") {
        flag.bool_value = false;
        return true;
      }
      return false;
    case Kind::kString:
      flag.string_value = value;
      return true;
  }
  return false;
}

bool Flags::parse(int argc, char** argv) {
  const std::string who = context_.empty() ? std::string(argv[0]) : context_;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "%s", usage(who).c_str());
      return false;
    }
    if (!starts_with(arg, "--")) {
      std::fprintf(stderr, "%s: unexpected positional argument: %s\n%s",
                   who.c_str(), arg.c_str(), usage(who).c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "%s: unknown flag: --%s\n%s", who.c_str(),
                   name.c_str(), usage(who).c_str());
      return false;
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.kind == Kind::kBool) {
        flag.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag --%s expects a value\n", who.c_str(),
                     name.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!set_from_string(flag, value)) {
      std::fprintf(stderr, "%s: bad value for --%s: %s\n", who.c_str(),
                   name.c_str(), value.c_str());
      return false;
    }
  }
  return true;
}

std::int64_t Flags::get_int(const std::string& name) const {
  auto it = flags_.find(name);
  WOLF_CHECK_MSG(it != flags_.end() && it->second.kind == Kind::kInt,
                 "no int flag " << name);
  return it->second.int_value;
}

bool Flags::get_bool(const std::string& name) const {
  auto it = flags_.find(name);
  WOLF_CHECK_MSG(it != flags_.end() && it->second.kind == Kind::kBool,
                 "no bool flag " << name);
  return it->second.bool_value;
}

const std::string& Flags::get_string(const std::string& name) const {
  auto it = flags_.find(name);
  WOLF_CHECK_MSG(it != flags_.end() && it->second.kind == Kind::kString,
                 "no string flag " << name);
  return it->second.string_value;
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    switch (flag.kind) {
      case Kind::kInt:
        os << "=<int> (default " << flag.int_value << ")";
        break;
      case Kind::kBool:
        os << " (default " << (flag.bool_value ? "true" : "false") << ")";
        break;
      case Kind::kString:
        os << "=<string> (default \"" << flag.string_value << "\")";
        break;
    }
    os << "\n      " << flag.help << '\n';
  }
  return os.str();
}

void register_common_flags(Flags& flags) {
  flags.define_int("seed", 2014, "seed");
  flags.define_int("jobs", 0,
                   "classification parallelism (0 = hardware concurrency; "
                   "1 reproduces the serial pipeline exactly)");
  flags.define_string("engine", "scc",
                      "cycle enumeration engine (scc|arena|reference)");
  flags.define_int("deadline-ms", 0,
                   "wall-clock budget per trial (0 = unlimited; rt watchdog)");
  flags.define_string("metrics-out", "",
                      "write a JSON metrics report (spans + counters + "
                      "funnel) to this path ('-' for stdout)");
  flags.define_bool("metrics-stable", false,
                    "emit the byte-stable metrics variant (no timings or "
                    "ids; identical at every --jobs level)");
  flags.define_bool("progress", false,
                    "print throttled progress heartbeats to stderr");
}

}  // namespace wolf
