// Minimal ASCII table rendering for the table/figure reproduction harnesses.
//
// The paper's evaluation is presented as two tables and two bar charts; the
// bench binaries print them as aligned text tables so output diffs cleanly.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace wolf {

class TextTable {
 public:
  // Column headers define the width of the table; every subsequent row must
  // have the same number of cells.
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Numeric convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  void render(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wolf
