#include "support/str.hpp"

#include <cctype>
#include <charconv>

namespace wolf {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool parse_int(std::string_view s, long long& out) {
  s = trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace wolf
