// Fixed-size thread pool for the parallel analysis engine (DESIGN.md §10).
//
// Deliberately work-stealing-free: a batch is an index range [0, count)
// drained through one shared atomic cursor, so the only scheduling decision
// is "who grabs the next index". That is enough for the pipeline's fan-out
// (independent cycles, independent runs) and keeps the pool small enough to
// reason about under TSan.
//
// Semantics of parallel_for_each:
//   * every index in [0, count) is invoked exactly once;
//   * the call blocks until all invocations have finished — the calling
//     thread participates as a worker, so a pool of `jobs` threads means
//     `jobs - 1` background workers and `jobs(1)` degenerates to a plain
//     serial loop with no threads at all;
//   * exceptions thrown by `fn` are captured per index; after the batch
//     completes, the exception with the *lowest* index is rethrown (the
//     others are dropped). This is deterministic regardless of thread
//     interleaving. The serial path implements the identical contract —
//     every index still runs even when an earlier one threw.
#pragma once

#include <cstddef>
#include <functional>

namespace wolf {

class ThreadPool {
 public:
  // `jobs` is the total parallelism including the calling thread; <= 0 means
  // hardware_jobs().
  explicit ThreadPool(int jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int jobs() const { return jobs_; }

  // std::thread::hardware_concurrency(), clamped to at least 1.
  static int hardware_jobs();

  // Invokes fn(0) … fn(count - 1), distributing indices over the pool.
  // Blocks until every invocation has finished; rethrows the lowest-index
  // captured exception, if any.
  void parallel_for_each(std::size_t count,
                         const std::function<void(std::size_t)>& fn);

  // Fault injection (tests, chaos campaign): task `index` of every batch —
  // serial path included — throws before fn runs, until cleared. The hook
  // is a single relaxed atomic index, so it is TSan-clean and free when
  // unset. Exercises exactly the exception contract documented above.
  static void inject_task_fault(std::size_t index);
  static void clear_task_fault();

 private:
  struct Impl;
  Impl* impl_ = nullptr;  // null when jobs_ == 1 (no worker threads)
  int jobs_ = 1;
};

}  // namespace wolf
