// Small string helpers shared by serialization and reporting code.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace wolf {

std::vector<std::string> split(std::string_view s, char sep);
std::string_view trim(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);

template <typename Range>
std::string join(const Range& parts, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) os << sep;
    os << p;
    first = false;
  }
  return os.str();
}

// Parses a signed integer; returns false on malformed input instead of
// throwing so trace deserialization can report the offending line.
bool parse_int(std::string_view s, long long& out);

}  // namespace wolf
