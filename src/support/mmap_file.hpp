// Read-only memory-mapped file view.
//
// The v3 trace reader wants the whole file addressable at once: the block
// index gives byte offsets, and decoding straight out of the page cache
// skips one full copy per block (the std::istream path reads each payload
// into a scratch string first). MmapFile is the thin, failure-tolerant
// wrapper that makes this optional: open() returns nullopt on any platform
// or filesystem where mapping is unavailable (non-POSIX builds, pipes,
// /proc files, exotic mounts), and every caller falls back to buffered
// reads — mapping is an optimization, never a requirement.
//
// The mapping is private and read-only; bytes() stays valid until the
// object is destroyed or moved-from. Empty files map to an empty view
// without touching mmap(2) (a zero-length mmap is an error on POSIX).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace wolf::support {

class MmapFile {
 public:
  // Maps `path` read-only. nullopt when the file cannot be opened, stat'd,
  // or mapped — callers treat that as "use buffered I/O instead".
  static std::optional<MmapFile> open(const std::string& path);

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      unmap();
      addr_ = other.addr_;
      size_ = other.size_;
      other.addr_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile() { unmap(); }

  std::string_view bytes() const {
    if (addr_ == nullptr) return {};
    return {static_cast<const char*>(addr_), size_};
  }
  std::size_t size() const { return size_; }

 private:
  MmapFile() = default;
  void unmap();

  void* addr_ = nullptr;  // null for empty files and moved-from objects
  std::size_t size_ = 0;
};

}  // namespace wolf::support
