// Bump-pointer arena for detector hot state (DESIGN.md §15).
//
// The cycle engines and the dependency index build large, same-lifetime
// graphs out of many small arrays: per-node locksets, holder lists, DFS
// chain stacks. Allocating each through the global heap costs an
// allocation per node and scatters the arrays across the address space —
// exactly the pattern the InnoDB deadlock checker avoids with its
// preallocated stack. An Arena carves all of them out of a few large
// chunks instead: allocation is a pointer bump, locality follows
// construction order, and teardown is freeing a handful of chunks.
//
// Rules:
//   * only trivially-destructible element types (enforced at compile
//     time) — the arena never runs destructors;
//   * alloc_array value-initializes (arrays come back zeroed);
//   * pointers stay valid until reset() or destruction — the arena grows
//     by adding chunks, never by moving old ones;
//   * single-threaded: one arena per engine instance, confined to the
//     thread that owns it (parallel DFS gives each worker its own
//     scratch, see cycle_engine.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace wolf::support {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = std::size_t{1} << 20)
      : chunk_bytes_(chunk_bytes < kMinChunk ? kMinChunk : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Allocates a zeroed array of `n` T. n == 0 returns a non-null aligned
  // pointer (so empty slices need no special case).
  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destructed");
    const std::size_t bytes = n * sizeof(T);
    void* p = raw_alloc(bytes, alignof(T));
    if (bytes != 0) std::memset(p, 0, bytes);
    return static_cast<T*>(p);
  }

  template <typename T>
  T* alloc() {
    return alloc_array<T>(1);
  }

  // Releases every chunk. All pointers handed out become dangling.
  void reset() {
    chunks_.clear();
    cur_ = nullptr;
    cur_end_ = nullptr;
    allocated_ = 0;
    reserved_ = 0;
  }

  std::size_t bytes_allocated() const { return allocated_; }
  std::size_t bytes_reserved() const { return reserved_; }

 private:
  static constexpr std::size_t kMinChunk = 4096;

  void* raw_alloc(std::size_t bytes, std::size_t align) {
    std::uintptr_t p = reinterpret_cast<std::uintptr_t>(cur_);
    std::uintptr_t aligned = (p + (align - 1)) & ~std::uintptr_t(align - 1);
    if (cur_ == nullptr || aligned + bytes >
                               reinterpret_cast<std::uintptr_t>(cur_end_)) {
      // An oversized request gets a dedicated chunk; the current bump chunk
      // (if any) stays live for subsequent small allocations.
      const std::size_t want = bytes + align;
      const std::size_t size = want > chunk_bytes_ ? want : chunk_bytes_;
      // new char[size] (not make_unique) deliberately skips value-init:
      // alloc_array zeroes exactly the bytes handed out, so zero-filling
      // the whole chunk up front would pay for the slack twice.
      chunks_.push_back(std::unique_ptr<char[]>(new char[size]));
      reserved_ += size;
      char* base = chunks_.back().get();
      if (size == chunk_bytes_) {
        cur_ = base;
        cur_end_ = base + size;
        p = reinterpret_cast<std::uintptr_t>(cur_);
        aligned = (p + (align - 1)) & ~std::uintptr_t(align - 1);
      } else {
        // Dedicated chunk: align inside it and leave the bump state alone.
        std::uintptr_t b = reinterpret_cast<std::uintptr_t>(base);
        std::uintptr_t a = (b + (align - 1)) & ~std::uintptr_t(align - 1);
        allocated_ += bytes;
        return reinterpret_cast<void*>(a);
      }
    }
    cur_ = reinterpret_cast<char*>(aligned + bytes);
    allocated_ += bytes;
    return reinterpret_cast<void*>(aligned);
  }

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  char* cur_ = nullptr;
  char* cur_end_ = nullptr;
  std::size_t allocated_ = 0;
  std::size_t reserved_ = 0;
};

// Offset+length view into an arena-allocated slab — the SoA replacement
// for a std::vector member. Plain struct so it can itself live in arena
// arrays.
template <typename T>
struct Slice {
  const T* data = nullptr;
  std::uint32_t size = 0;

  const T* begin() const { return data; }
  const T* end() const { return data + size; }
  const T& operator[](std::size_t i) const { return data[i]; }
  bool empty() const { return size == 0; }
};

}  // namespace wolf::support
