#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace wolf {

void Stats::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void Stats::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

double Stats::sum() const {
  double s = 0;
  for (double x : samples_) s += x;
  return s;
}

double Stats::mean() const {
  if (samples_.empty()) return 0;
  return sum() / static_cast<double>(samples_.size());
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0;
  const double m = mean();
  double acc = 0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Stats::min() const {
  WOLF_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  WOLF_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

const std::vector<double>& Stats::sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double Stats::percentile(double p) const {
  WOLF_CHECK(!samples_.empty());
  WOLF_CHECK(p >= 0.0 && p <= 100.0);
  const auto& s = sorted();
  if (s.size() == 1) return s.front();
  const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

std::string Stats::summary() const {
  std::ostringstream os;
  if (samples_.empty()) {
    os << "(no samples)";
    return os.str();
  }
  os << mean() << " ± " << stddev() << " [" << min() << ", " << max() << "] n="
     << samples_.size();
  return os.str();
}

}  // namespace wolf
