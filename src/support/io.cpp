#include "support/io.hpp"

#include <cstdio>
#include <fstream>

namespace wolf::support {

namespace {

void fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

bool atomic_write_file(const std::string& path, std::string_view contents,
                       std::string* error, std::size_t fail_after_bytes) {
  // Same directory as the target so the rename cannot cross filesystems.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      fail(error, "cannot open temp file '" + tmp + "' for writing");
      return false;
    }
    const std::size_t n = std::min(fail_after_bytes, contents.size());
    out.write(contents.data(), static_cast<std::streamsize>(n));
    out.flush();
    if (!out || n < contents.size()) {
      out.close();
      std::remove(tmp.c_str());
      fail(error, n < contents.size()
                      ? "write torn after " + std::to_string(n) +
                            " bytes (injected fault); '" + path +
                            "' left untouched"
                      : "short write to temp file '" + tmp + "'");
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail(error, "rename '" + tmp + "' -> '" + path + "' failed");
    return false;
  }
  return true;
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)),
      tmp_(path_ + ".tmp"),
      out_(tmp_, std::ios::binary | std::ios::trunc) {}

AtomicFileWriter::~AtomicFileWriter() {
  if (!done_) abort();
}

bool AtomicFileWriter::commit(std::string* error) {
  if (done_) {
    fail(error, "atomic writer for '" + path_ + "' already finished");
    return false;
  }
  if (!out_) {
    abort();
    fail(error, "write to temp file '" + tmp_ + "' failed");
    return false;
  }
  out_.flush();
  out_.close();
  if (!out_) {
    done_ = true;
    std::remove(tmp_.c_str());
    fail(error, "short write to temp file '" + tmp_ + "'");
    return false;
  }
  done_ = true;
  if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_.c_str());
    fail(error, "rename '" + tmp_ + "' -> '" + path_ + "' failed");
    return false;
  }
  return true;
}

void AtomicFileWriter::abort() {
  if (done_) return;
  done_ = true;
  out_.close();
  std::remove(tmp_.c_str());
}

}  // namespace wolf::support
