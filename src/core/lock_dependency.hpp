// The lock dependency relation D_σ (paper §3.1–3.2).
//
// During execution σ, when thread t acquires lock ℓ while holding the locks
// L_t (acquired at the execution indices C_t) at timestamp τ_t, the tuple
// η = (t, L_t, ℓ, C_t, τ_t) is added to D_σ. This module rebuilds D_σ
// offline from a recorded trace, running a ClockTracker alongside to stamp
// each tuple with the acquiring thread's timestamp — i.e. the "Extended
// Dynamic Cycle Detector" data of Algorithm 1 without re-executing anything.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "clock/clock_tracker.hpp"
#include "trace/event.hpp"
#include "trace/exec_index.hpp"
#include "trace/ids.hpp"

namespace wolf {

struct LockTuple {
  ThreadId thread = kInvalidThread;
  // Locks held at the acquisition, in acquisition order (the paper's L_t).
  std::vector<LockId> lockset;
  LockId lock = kInvalidLock;  // the lock being acquired
  // Execution indices of the lockset acquisitions, in the same order as
  // `lockset`, followed by the index of this acquisition itself (the paper's
  // C_t; cf. Fig. 5 where η1 = (1,{},ℓ1,{11})).
  std::vector<ExecIndex> context;
  Timestamp tau = kTsBottom;   // τ_t at the acquisition (§3.2)
  std::size_t trace_pos = 0;   // position of the acquire event in the trace

  // µ (paper §3.1): maps each lock in the lockset — and the acquired lock
  // itself — to its execution index.
  ExecIndex mu(LockId l) const;

  bool holds(LockId l) const;
  const ExecIndex& acquire_index() const { return context.back(); }

  std::string to_string() const;
};

struct LockDependency {
  // Every top-level acquisition of the trace, in trace order.
  std::vector<LockTuple> tuples;
  // Indices into `tuples` of the canonical (first-occurrence) tuples after
  // deduplication by (thread, lock, context sites): repeated executions of
  // the same code path produce one representative, exactly as iGoodLock's
  // set-based D_σ collapses them. Cycle enumeration runs over this view;
  // the Generator walks the full sequence.
  std::vector<std::size_t> unique;

  static LockDependency from_trace(const Trace& trace);

  // Tuples of `thread` up to and including position `last_pos` in trace
  // order — the paper's D'_σ restricted to one thread.
  std::vector<std::size_t> thread_prefix(ThreadId thread,
                                         std::size_t last_pos) const;
};

}  // namespace wolf
