// The lock dependency relation D_σ (paper §3.1–3.2).
//
// During execution σ, when thread t acquires lock ℓ while holding the locks
// L_t (acquired at the execution indices C_t) at timestamp τ_t, the tuple
// η = (t, L_t, ℓ, C_t, τ_t) is added to D_σ. This module rebuilds D_σ
// offline from a recorded trace, running a ClockTracker alongside to stamp
// each tuple with the acquiring thread's timestamp — i.e. the "Extended
// Dynamic Cycle Detector" data of Algorithm 1 without re-executing anything.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "clock/clock_tracker.hpp"
#include "support/arena.hpp"
#include "trace/event.hpp"
#include "trace/exec_index.hpp"
#include "trace/ids.hpp"

namespace wolf {

struct LockTuple {
  ThreadId thread = kInvalidThread;
  // Locks held at the acquisition, in acquisition order (the paper's L_t).
  std::vector<LockId> lockset;
  LockId lock = kInvalidLock;  // the lock being acquired
  // Execution indices of the lockset acquisitions, in the same order as
  // `lockset`, followed by the index of this acquisition itself (the paper's
  // C_t; cf. Fig. 5 where η1 = (1,{},ℓ1,{11})).
  std::vector<ExecIndex> context;
  Timestamp tau = kTsBottom;   // τ_t at the acquisition (§3.2)
  std::size_t trace_pos = 0;   // position of the acquire event in the trace

  // µ (paper §3.1): maps each lock in the lockset — and the acquired lock
  // itself — to its execution index.
  ExecIndex mu(LockId l) const;

  bool holds(LockId l) const;
  const ExecIndex& acquire_index() const { return context.back(); }

  std::string to_string() const;
};

struct LockDependency {
  // Every top-level acquisition of the trace, in trace order.
  std::vector<LockTuple> tuples;
  // Indices into `tuples` of the canonical (first-occurrence) tuples after
  // deduplication by (thread, lock, context sites): repeated executions of
  // the same code path produce one representative, exactly as iGoodLock's
  // set-based D_σ collapses them. Cycle enumeration runs over this view;
  // the Generator walks the full sequence.
  std::vector<std::size_t> unique;

  static LockDependency from_trace(const Trace& trace);

  // Tuples of `thread` up to and including position `last_pos` in trace
  // order — the paper's D'_σ restricted to one thread.
  std::vector<std::size_t> thread_prefix(ThreadId thread,
                                         std::size_t last_pos) const;
};

// Incremental construction of D_σ plus the τ/V clock state, one event at a
// time. This is the single build path behind LockDependency::from_trace
// (offline), OnlineAnalysisSink (during execution) and StreamingDetector
// (block-by-block off a TraceReader) — because all three feed the same
// builder, batch and streaming detection cannot diverge.
class LockDependencyBuilder {
 public:
  // Feeds the next event in trace order. Clocks are applied before any tuple
  // is constructed (Algorithm 1 order); the tuple's trace_pos is the running
  // event position — the vector index for a materialized trace, equivalently
  // the dense sequence number of a recorder-produced stream.
  void add(const Event& e);

  std::size_t tuple_count() const { return dep_.tuples.size(); }
  std::size_t events_seen() const { return pos_; }
  const ClockTracker& clocks() const { return clocks_; }

  // Finalizes the relation: computes the deduplicated `unique` view and
  // moves it out. The clock state and held-lock stacks stay in place, so
  // callers can still read clocks() afterwards; clear() resets everything.
  LockDependency take_dependency();
  void clear();

  // ---- governed-store surface (core/governor.hpp) -----------------------
  // The accumulating relation, read-only (`unique` is not yet computed).
  const LockDependency& pending() const { return dep_; }

  // Copy of the relation so far with `unique` computed, without consuming
  // the builder — what per-window cycle enumeration runs on.
  LockDependency snapshot_dependency() const;

  // Copy of just the tuples at `indices` (ascending positions into
  // pending().tuples), with `unique` computed over that subset. The
  // incremental governor path enumerates dirty-SCC tuple subsets through
  // this instead of snapshotting the whole store.
  LockDependency snapshot_subset(const std::vector<std::size_t>& indices) const;

  // Notification hook for the compaction/eviction overloads below: invoked
  // once per dropped tuple, before the store forgets it. The incremental
  // pre-filter uses it to refcount lock-graph edges down.
  using RemovalHook = std::function<void(const LockTuple&)>;

  // Site-table compaction: drops every non-canonical duplicate tuple (same
  // thread, lock and context-site signature as an earlier one), keeping the
  // first occurrence. Cycle enumeration runs over the canonical view only,
  // so the cycle set is unchanged; returns the number of tuples removed.
  std::size_t compact() { return compact(RemovalHook{}); }
  std::size_t compact(const RemovalHook& on_remove);

  // Aging: drops the *oldest* tuples until at most `max_tuples` remain.
  // Lossy — evicted tuples can carry cycles — so callers must surface the
  // returned count as lost coverage. Clock and held-lock state are
  // untouched (they are O(threads + locks), not O(trace)).
  std::size_t evict_oldest(std::size_t max_tuples) {
    return evict_oldest(max_tuples, RemovalHook{});
  }
  std::size_t evict_oldest(std::size_t max_tuples, const RemovalHook& on_remove);

 private:
  // Per-thread held-lock state: (lock, acquisition index), acquisition order.
  using HeldStack = std::vector<std::pair<LockId, ExecIndex>>;
  HeldStack& held_stack(ThreadId thread);

  LockDependency dep_;
  ClockTracker clocks_;
  // Recorder thread ids are dense from 0, so the hot lookup is a vector
  // index; anything else (defensive: a hand-built trace with odd ids) falls
  // back to the ordered map.
  std::vector<HeldStack> held_;
  std::map<ThreadId, HeldStack> held_other_;
  std::size_t pos_ = 0;
};

// Trace-level scaffolding shared by every Gs the Generator builds for one
// Detection (DESIGN.md §10). The per-thread and per-(thread, lock)
// acquisition orders depend only on the trace, not on the cycle under
// classification, so they are computed once and every generate() call
// slices them by the cycle's cutoff positions instead of rescanning the
// whole tuple sequence. Read-only after build(): safe to share across the
// parallel classification workers.
//
// Storage is one arena-backed pool (DESIGN.md §15): every per-key sequence
// is an offset+length range into a single contiguous slab instead of its
// own heap vector, so build() does O(1) large allocations rather than
// O(threads + thread·lock pairs) small ones. Move-only (the spans handed
// out point into the arena, which the index owns).
class DependencyIndex {
 public:
  static DependencyIndex build(const LockDependency& dep);

  DependencyIndex(DependencyIndex&&) = default;
  DependencyIndex& operator=(DependencyIndex&&) = default;

  // Indices of `thread`'s tuples with trace_pos <= last_pos, in trace order —
  // the same sequence LockDependency::thread_prefix returns, as a view.
  std::span<const std::size_t> thread_prefix(ThreadId thread,
                                             std::size_t last_pos) const;

  // Indices of `thread`'s acquisitions *of* `lock` (tuple.lock == lock) with
  // trace_pos <= last_pos, in trace order. Powers the Generator's type-C
  // source enumeration.
  std::span<const std::size_t> thread_lock_prefix(ThreadId thread, LockId lock,
                                                  std::size_t last_pos) const;

 private:
  DependencyIndex() = default;

  // One per-key sequence: pool_[offset, offset + length). `filled` is
  // build()'s write cursor and equals length afterwards.
  struct Range {
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
    std::uint32_t filled = 0;
    bool assigned = false;
  };

  std::span<const std::size_t> prefix_of(const Range* range,
                                         std::size_t last_pos) const;

  const LockDependency* dep_ = nullptr;  // not owned; must outlive the index
  std::unique_ptr<support::Arena> arena_;
  const std::size_t* pool_ = nullptr;  // all sequences, concatenated
  std::unordered_map<ThreadId, Range> by_thread_;
  std::unordered_map<std::uint64_t, Range>
      by_thread_lock_;  // key: (thread, lock) packed

  static std::uint64_t key(ThreadId thread, LockId lock) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(thread))
            << 32) |
           static_cast<std::uint32_t>(lock);
  }
};

}  // namespace wolf
