// Multi-input / multi-schedule analysis — the mitigation §4.4 proposes for
// the incomplete-trace limitation: "Integrate WOLF with … automatic test
// input generators and effective schedule explorers."
//
// Runs the full pipeline over several recorded executions (different seeds
// standing in for different test inputs / schedules) and merges the per-run
// classifications per source-location defect. Merging takes the *most
// alarming* verdict: a defect reproduced on any run is real; a defect that
// is false on one path may still be unknown or real on another (the Fig. 4
// caveat about eliminating θ1 when t3 could be started differently), so
// false verdicts never override.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pipeline.hpp"

namespace wolf {

// Deprecated as a public entry type: prefer wolf::Config (wolf.hpp), whose
// multi_options() produces this struct. Kept for one release as the
// underlying section type.
struct MultiRunOptions {
  int runs = 5;
  std::uint64_t seed = 1;  // run i uses a seed derived from this
  // Total parallelism budget (0 = hardware concurrency). Whole-pipeline runs
  // execute concurrently, up to min(jobs, runs) at a time; any leftover
  // budget is spent inside each run's classification phases (wolf.jobs is
  // overridden accordingly). Results are identical at every jobs level:
  // per-run seeds depend only on the run index, and runs are merged in run
  // order after all have finished.
  int jobs = 1;
  WolfOptions wolf;
};

struct MergedDefect {
  DefectSignature signature;
  Classification classification = Classification::kUnknown;
  int runs_detected = 0;   // in how many runs the defect was detected
  int first_seen_run = 0;  // index of the first run that detected it
};

struct MultiRunReport {
  std::vector<WolfReport> runs;
  std::vector<MergedDefect> defects;  // union over runs, first-seen order

  int count(Classification c) const;
};

// True iff `a` should override `b` when merging (more alarming verdict).
bool overrides(Classification a, Classification b);

MultiRunReport run_wolf_multi(const sim::Program& program,
                              const MultiRunOptions& options);

}  // namespace wolf
