// Generator — Algorithm 3.
//
// For a potential deadlock θ that survives the Pruner, builds the
// synchronization dependency graph Gs over the execution indices of the lock
// acquisitions leading up to θ's deadlocking acquisitions (D'_σ). An edge
// (u, v) means "the acquisition at u must execute before the acquisition at
// v" in any re-execution that reproduces θ. Three edge types:
//
//   type-D — the deadlock condition itself: for ηi, ηj ∈ θ with
//            lock(ηi) ∈ lockset(ηj), the holder ηj's acquisition precedes
//            ηi's (blocking) request of the same lock.
//   type-C — per-lock trace order: every D'_σ acquisition of a lock that θ's
//            thread ti needs (its lockset and its requested lock) by another
//            cycle thread must precede ti's acquisition of it, so the
//            deadlocking context is set up as observed. Sources exclude θ's
//            own deadlocking tuples (they are ordered by type-D).
//   type-P — program order between consecutive acquisitions of each cycle
//            thread.
//
// A cyclic Gs proves the deadlock cannot manifest on any schedule of this
// trace (paper Fig. 7(b): the Collections θ4 false positive); an acyclic Gs
// is handed to the Replayer.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/detector.hpp"
#include "graph/digraph.hpp"

namespace wolf {

enum class GsEdgeKind : std::uint8_t { kTypeD, kTypeC, kTypeP };

const char* to_string(GsEdgeKind kind);

struct GsVertex {
  ThreadId thread = kInvalidThread;
  ExecIndex index;             // the acquisition's execution index
  LockId lock = kInvalidLock;  // the lock acquired there

  friend bool operator==(const GsVertex&, const GsVertex&) = default;
};

struct GsEdge {
  ExecIndex from;
  ExecIndex to;
  GsEdgeKind kind;

  friend bool operator==(const GsEdge&, const GsEdge&) = default;
};

class SyncDependencyGraph {
 public:
  // Adds (or finds) the vertex for an acquisition.
  Digraph::Node intern(const GsVertex& v);
  // Adds an edge; the first kind recorded for a (from, to) pair wins
  // (Algorithm 3 adds type-D, then type-C, then type-P).
  void add_edge(Digraph::Node u, Digraph::Node v, GsEdgeKind kind);

  bool has_vertex(const ExecIndex& idx) const;
  std::optional<Digraph::Node> find(const ExecIndex& idx) const;
  const GsVertex& vertex(Digraph::Node n) const;

  Digraph& graph() { return graph_; }
  const Digraph& graph() const { return graph_; }

  int vertex_count() const { return graph_.node_count(); }
  bool cyclic() const { return graph_.has_cycle(); }

  // All edges with kinds, for tests and reports (alive endpoints only).
  std::vector<GsEdge> edges() const;

  // True iff vertex v has an incoming edge from a different thread —
  // Algorithm 4's pause condition.
  bool has_cross_thread_in_edge(Digraph::Node v) const;

  // Retires a vertex (dependencies satisfied or instruction skipped).
  void remove_vertex(Digraph::Node v);

  std::string to_dot(const SiteTable& sites) const;

 private:
  Digraph graph_;
  std::vector<GsVertex> vertices_;  // node id → vertex
  std::unordered_map<ExecIndex, Digraph::Node, ExecIndexHash> by_index_;
  std::unordered_map<std::uint64_t, GsEdgeKind> edge_kinds_;

  static std::uint64_t edge_key(Digraph::Node u, Digraph::Node v) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
           static_cast<std::uint32_t>(v);
  }
};

struct GeneratorResult {
  SyncDependencyGraph gs;
  bool feasible = false;  // false when Gs is cyclic → false positive
  // A witness cycle in Gs (execution indices) when infeasible.
  std::vector<ExecIndex> witness;
};

// Builds Gs for `cycle` from the full tuple sequence (Algorithm 3), using a
// prebuilt DependencyIndex for the trace-level scaffolding (D'_σ prefixes and
// per-lock acquisition order). The index depends only on the trace, so one
// index serves every cycle of a Detection; only the per-cycle type-D overlay
// and the cutoff slicing differ between calls. Edge and vertex insertion
// order is identical to the unindexed path, so the resulting Gs (including
// node numbering) is bit-identical.
GeneratorResult generate(const PotentialDeadlock& cycle,
                         const LockDependency& dep,
                         const DependencyIndex& index);

// Convenience overload that builds a throwaway index; prefer the indexed
// form when classifying several cycles of the same trace.
GeneratorResult generate(const PotentialDeadlock& cycle,
                         const LockDependency& dep);

// Rebuilds a graph keeping only the given edge kinds (same vertex set).
// Used by the ablation benches to quantify what each edge type buys.
SyncDependencyGraph filter_edges(const SyncDependencyGraph& gs,
                                 bool keep_d, bool keep_c, bool keep_p);

}  // namespace wolf
