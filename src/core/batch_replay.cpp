#include "core/batch_replay.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "obs/counters.hpp"
#include "sim/policy.hpp"
#include "sim/scheduler.hpp"
#include "support/rng.hpp"

namespace wolf {

namespace {

const obs::Counter kBatches("batch_replay.batches");
const obs::Counter kDivergences("batch_replay.divergences");
const obs::Counter kSharedSteps("batch_replay.shared_steps");
const obs::Counter kForkedSteps("batch_replay.forked_steps");

struct LiveMember {
  std::size_t index;  // into members / report.stats
  ReplayController controller;
};

// Fans one shared execution out to every live member's ReplayController and
// reports divergence the moment their steering decisions disagree. Once
// diverged it goes inert: it pauses the contested thread (if any), consumes
// nothing, and leaves every member controller in its pre-decision state so a
// forked scheduler can hand the decision to the member itself.
class MultiplexController final : public sim::ScheduleController {
 public:
  explicit MultiplexController(std::vector<LiveMember>* live) : live_(live) {}

  bool before_lock(ThreadId t, const ExecIndex& idx, LockId lock) override {
    if (diverged_) return true;  // inert: hold everything for the forks
    const bool pause = (*live_)[0].controller.would_pause(t, idx);
    for (std::size_t i = 1; i < live_->size(); ++i) {
      if ((*live_)[i].controller.would_pause(t, idx) != pause) {
        diverged_ = true;
        diverged_thread_ = t;
        return true;  // park t; each fork re-attempts under its own member
      }
    }
    for (LiveMember& m : *live_) m.controller.before_lock(t, idx, lock);
    return pause;
  }

  void on_event(const Event& e) override {
    if (diverged_) return;
    for (LiveMember& m : *live_) m.controller.on_event(e);
  }

  std::vector<ThreadId> take_released() override {
    if (diverged_) return {};
    auto canon = [](std::vector<ThreadId> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    std::vector<ThreadId> first =
        canon((*live_)[0].controller.pending_released());
    for (std::size_t i = 1; i < live_->size(); ++i) {
      if (canon((*live_)[i].controller.pending_released()) != first) {
        diverged_ = true;  // consume nothing; forks drain their own queues
        return {};
      }
    }
    for (LiveMember& m : *live_) m.controller.take_released();
    return first;
  }

  ThreadId force_release(const std::vector<ThreadId>& paused,
                         Rng& rng) override {
    // Any paused thread is a valid Algorithm-4 victim for every member, so
    // one choice serves all: no divergence possible here.
    ThreadId victim = paused[rng.index(paused)];
    for (LiveMember& m : *live_) m.controller.forget_blocked(victim);
    return victim;
  }

  bool diverged() const { return diverged_; }
  ThreadId diverged_thread() const { return diverged_thread_; }

 private:
  std::vector<LiveMember>* live_;
  bool diverged_ = false;
  // The thread whose acquisition split the members; kInvalidThread when the
  // split happened over pending releases instead.
  ThreadId diverged_thread_ = kInvalidThread;
};

}  // namespace

BatchReplayReport replay_batch(const sim::Program& program,
                               const LockDependency& dep,
                               const std::vector<BatchReplayMember>& members,
                               const ReplayOptions& options) {
  BatchReplayReport report;
  report.stats.resize(members.size());
  if (members.empty()) return report;
  kBatches.add();

  // Attempt-invariant per-member data.
  std::vector<std::set<ThreadId>> monitored(members.size());
  std::vector<std::vector<SiteId>> expected(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j : members[i].cycle->tuple_idx)
      monitored[i].insert(dep.tuples[j].thread);
    expected[i] = expected_sites(*members[i].cycle, dep);
  }

  Rng seeds(options.seed);
  for (int attempt = 0; attempt < options.attempts; ++attempt) {
    const std::uint64_t attempt_seed = seeds();
    std::vector<LiveMember> live;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (options.stop_on_first_hit && report.stats[i].hits > 0) continue;
      live.push_back(
          LiveMember{i, ReplayController(*members[i].gs, monitored[i])});
    }
    if (live.empty()) break;
    ++report.attempts;

    Rng rng(attempt_seed);
    MultiplexController mux(&live);
    sim::SchedulerOptions sched_options;
    sched_options.controller = &mux;
    sched_options.max_steps = options.max_steps;
    sched_options.fault = options.fault;
    sim::Scheduler shared(program, sched_options);
    sim::RandomPolicy policy;

    // Shared phase: sim::run()'s loop with a divergence exit. Divergence can
    // surface mid-step (the scheduler drains releases right after pausing or
    // completing an acquisition), so it is re-checked after step() too.
    bool fault_stalled = false;
    while (!shared.finished() &&
           shared.steps_executed() < shared.max_steps()) {
      shared.drain_releases();
      if (mux.diverged()) break;
      auto enabled = shared.enabled_threads();
      if (enabled.empty()) {
        auto paused = shared.paused_threads();
        if (paused.empty()) break;
        if (shared.fault_drops_force_releases()) {
          fault_stalled = true;
          break;
        }
        ThreadId victim = mux.force_release(paused, rng);
        shared.release_paused(victim, /*bypass_controller=*/true);
        continue;
      }
      ThreadId t = policy.pick(enabled, rng);
      shared.step(t);
      if (mux.diverged()) break;
    }

    const std::uint64_t prefix = shared.steps_executed();
    if (live.size() >= 2) {
      report.shared_steps += prefix;
      kSharedSteps.add(prefix);
    }

    if (!mux.diverged()) {
      // One execution served every live member end to end.
      sim::RunResult run = shared.result();
      if (fault_stalled) run.outcome = sim::RunOutcome::kTimeout;
      report.replayed_steps += run.steps;
      for (LiveMember& m : live) {
        record_outcome(report.stats[m.index],
                       classify_run(run, expected[m.index]));
        report.naive_steps += run.steps;
      }
      continue;
    }

    // Members disagreed: fork a scheduler copy per member and finish each
    // trial privately. Every fork continues from the identical mid-run state
    // and rng, so each member sees exactly the schedule its private replay
    // would have seen from here under these coin flips.
    kDivergences.add();
    report.replayed_steps += prefix;
    for (LiveMember& m : live) {
      sim::Scheduler forked(shared);
      forked.set_controller(&m.controller);
      if (mux.diverged_thread() != kInvalidThread) {
        // Re-attempt the contested acquisition under this member: the
        // scheduler keeps occurrence bookkeeping stable across repeated
        // attempts, so the member's before_lock sees the same ExecIndex the
        // multiplexer compared.
        forked.release_paused(mux.diverged_thread(),
                              /*bypass_controller=*/false);
      }
      Rng fork_rng = rng;
      sim::RunResult run = sim::run(forked, policy, fork_rng);
      record_outcome(report.stats[m.index],
                     classify_run(run, expected[m.index]));
      report.replayed_steps += run.steps - prefix;
      report.naive_steps += run.steps;
      kForkedSteps.add(run.steps - prefix);
    }
  }
  return report;
}

}  // namespace wolf
