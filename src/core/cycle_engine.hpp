// Scalable cycle enumeration over D_σ (DESIGN.md §12).
//
// Three engines produce the canonical cycle sequence of detector.hpp:
//
//   * kReference — the original iGoodLock-style DFS over every canonical
//     tuple, kept verbatim as the executable specification of the cycle
//     order and as the differential-testing baseline.
//   * kScc — the scalable engine. The tuple-level holds→requests digraph is
//     Tarjan-SCC-partitioned (graph/digraph), and DFS runs only from tuples
//     in nontrivial SCCs, never leaving the start tuple's component: a cycle
//     through η is itself a digraph cycle, hence confined to SCC(η), so
//     acyclic regions of D_σ cost nothing. Chain state is dense-id bitsets
//     (thread word-mask, lockset word-mask per tuple) instead of hash sets,
//     and the Pruner's pairwise clock data (ClockPairMatrix) can optionally
//     cut never-overlapping branches during the search.
//   * kArenaScc — kScc's algorithm, with every per-node array (scalars,
//     lockset bitsets, the per-lock inverted holder index as a CSR of
//     offset+length slices) carved out of one support/arena bump allocator
//     instead of per-node heap vectors (DESIGN.md §15). Same partition,
//     same candidate order, same cuts — only the memory layout differs.
//
// All engines emit cycles in the identical canonical order — the SCC
// restriction and the clock cut only skip subtrees that emit nothing — so a
// Detection is bit-identical across engines and, because per-start-tuple
// enumerations are independent and merged in canonical order, across every
// DetectorOptions::jobs level too.
#pragma once

#include <cstddef>
#include <vector>

#include "clock/clock_tracker.hpp"
#include "core/detector.hpp"

namespace wolf {

struct EnumerationResult {
  std::vector<PotentialDeadlock> cycles;
  // True when enumeration stopped at DetectorOptions::max_cycles; more
  // cycles may exist beyond the ones returned.
  bool truncated = false;
};

// The reference engine: DetectorOptions::engine/jobs/clock_prune_during_search
// are ignored (it is the serial, unpruned baseline).
EnumerationResult enumerate_cycles_reference(const LockDependency& dep,
                                             const DetectorOptions& options);

// The SCC-partitioned engine. `clocks` is only consulted when
// options.clock_prune_during_search is set; passing nullptr disables the
// in-search cut (the enumeration is then bit-identical to the reference).
EnumerationResult enumerate_cycles_scc(const LockDependency& dep,
                                       const DetectorOptions& options,
                                       const ClockTracker* clocks = nullptr);

// The arena/SoA variant of the SCC engine; bit-identical output, node state
// in one bump-allocated slab.
EnumerationResult enumerate_cycles_arena_scc(const LockDependency& dep,
                                             const DetectorOptions& options,
                                             const ClockTracker* clocks
                                             = nullptr);

// Dispatch on options.engine; what detect()/StreamingDetector call.
EnumerationResult enumerate_cycles_ex(const LockDependency& dep,
                                      const DetectorOptions& options,
                                      const ClockTracker* clocks = nullptr);

}  // namespace wolf
