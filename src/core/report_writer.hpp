// Markdown report generation: turns a WolfReport into the kind of artifact
// a CI job would attach — a classification summary, the ranked defect list,
// per-cycle detail with Gs statistics and replay evidence, and phase
// timings.
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace wolf {

struct ReportWriterOptions {
  std::string title = "WOLF deadlock analysis";
  bool include_ranking = true;
  bool include_cycles = true;   // per-cycle detail section
  bool include_timings = true;
};

std::string write_markdown_report(const WolfReport& report,
                                  const SiteTable& sites,
                                  const ReportWriterOptions& options = {});

}  // namespace wolf
