// Markdown report generation: turns a WolfReport into the kind of artifact
// a CI job would attach — a classification summary, the ranked defect list,
// per-cycle detail with Gs statistics and replay evidence, and phase
// timings.
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace wolf {

// Deprecated as a public entry type: prefer wolf::Config::report
// (wolf.hpp). Kept for one release as the underlying section type.
struct ReportWriterOptions {
  std::string title = "WOLF deadlock analysis";
  bool include_ranking = true;
  bool include_cycles = true;   // per-cycle detail section
  bool include_timings = true;
};

std::string write_markdown_report(const WolfReport& report,
                                  const SiteTable& sites,
                                  const ReportWriterOptions& options = {});

// One sentence describing a truncated enumeration ("cycle enumeration
// stopped at --max-cycles=N; more potential deadlocks may exist"), shared
// by the CLI stderr warning and the markdown report so the texts cannot
// drift. Empty when the detection was not truncated.
std::string truncation_message(const Detection& detection);

// One sentence describing a degraded governed run (evictions, detection
// faults, ladder demotions) — the governed analogue of truncation_message,
// shared by the CLI stderr warning and the markdown report. Empty when the
// verdict is clean.
std::string degradation_message(const GovernorVerdict& verdict);

}  // namespace wolf
