#include "core/cycle_engine.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "core/pruner.hpp"
#include "graph/digraph.hpp"
#include "obs/counters.hpp"
#include "obs/progress.hpp"
#include "support/arena.hpp"
#include "support/thread_pool.hpp"

namespace wolf {

namespace {

// Funnel statistics. All are jobs-invariant on non-truncated runs; when the
// max-cycles cap bites, chains/cycles depend on where each enumeration
// stopped, which differs between the serial early-exit and the per-start
// parallel caps.
const obs::Counter kChains("detector.chains");
const obs::Counter kSccsVisited("detector.sccs_nontrivial");
const obs::Counter kClockCuts("detector.clock_cuts");
const obs::Counter kCyclesFound("detector.cycles");

// ------------------------------------------------------------- reference
// The original DFS enumerator, kept verbatim as the executable
// specification of the canonical cycle order (detector.hpp):
//   * holders_of_ — lock ℓ → canonical tuples holding ℓ in their lockset, in
//     dep.unique order;
//   * chain_threads_/chain_locks_ — running thread set and lockset union of
//     the current chain, so the pairwise-disjointness test is O(|lockset|)
//     per candidate.
class ReferenceEnumerator {
 public:
  ReferenceEnumerator(const LockDependency& dep, const DetectorOptions& options)
      : dep_(dep), options_(options) {
    for (std::size_t u : dep_.unique)
      for (LockId l : dep_.tuples[u].lockset) holders_of_[l].push_back(u);
  }

  std::vector<PotentialDeadlock> run() {
    std::size_t done = 0;
    for (std::size_t u : dep_.unique) {
      if (exhausted()) break;
      push_member(u);
      extend();
      pop_member(u);
      obs::progress_tick("detect", ++done, dep_.unique.size());
    }
    return std::move(cycles_);
  }

 private:
  bool exhausted() const { return cycles_.size() >= options_.max_cycles; }

  void push_member(std::size_t idx) {
    kChains.add();
    chain_.push_back(idx);
    const LockTuple& tuple = dep_.tuples[idx];
    chain_threads_.push_back(tuple.thread);
    for (LockId l : tuple.lockset) chain_locks_.insert(l);
  }

  void pop_member(std::size_t idx) {
    const LockTuple& tuple = dep_.tuples[idx];
    for (LockId l : tuple.lockset) chain_locks_.erase(l);
    chain_threads_.pop_back();
    chain_.pop_back();
  }

  // True when `candidate` can legally extend the current chain: distinct
  // thread and pairwise-disjoint lockset with every chain member.
  bool compatible(const LockTuple& candidate) const {
    for (ThreadId t : chain_threads_)
      if (t == candidate.thread) return false;
    for (LockId l : candidate.lockset)
      if (chain_locks_.count(l) != 0) return false;
    return true;
  }

  void extend() {
    if (exhausted()) return;
    const LockTuple& first = dep_.tuples[chain_.front()];
    const LockTuple& last = dep_.tuples[chain_.back()];

    // Close the cycle? Requires length >= 2 and lock(last) ∈ lockset(first).
    if (chain_.size() >= 2 && first.holds(last.lock)) {
      kCyclesFound.add();
      PotentialDeadlock cycle;
      cycle.tuple_idx = chain_;
      cycles_.push_back(std::move(cycle));
    }
    if (static_cast<int>(chain_.size()) >= options_.max_cycle_length) return;

    auto holders = holders_of_.find(last.lock);
    if (holders == holders_of_.end()) return;
    for (std::size_t u : holders->second) {
      if (exhausted()) return;
      const LockTuple& next = dep_.tuples[u];
      // Canonical rotation: the first tuple's thread is the cycle minimum.
      if (next.thread <= first.thread) continue;
      if (!compatible(next)) continue;
      push_member(u);
      extend();
      pop_member(u);
    }
  }

  const LockDependency& dep_;
  const DetectorOptions& options_;
  std::unordered_map<LockId, std::vector<std::size_t>> holders_of_;
  std::vector<std::size_t> chain_;
  std::vector<ThreadId> chain_threads_;
  std::unordered_set<LockId> chain_locks_;
  std::vector<PotentialDeadlock> cycles_;
};

// ------------------------------------------------------------------- scc
using Word = std::uint64_t;
constexpr std::size_t kWordBits = 64;

inline std::size_t words_for(std::size_t bits) {
  return bits / kWordBits + 1;
}
inline bool test_bit(const Word* w, std::size_t i) {
  return (w[i / kWordBits] >> (i % kWordBits)) & 1u;
}
inline void flip_bit(Word* w, std::size_t i) {
  w[i / kWordBits] ^= Word{1} << (i % kWordBits);
}

template <class Engine>
EnumerationResult run_partitioned(const Engine& e);

// Dense model of the canonical tuple view: node i ↔ dep.unique[i], with the
// per-node thread/lock/τ scalars hoisted into flat arrays, each lockset as a
// word-mask over dense LockIds, and the per-lock inverted holder index in
// node (= dep.unique) order so the DFS candidate order matches the
// reference enumerator exactly.
//
// Data members are public: ChainSearch / run_partitioned below run the
// identical search over this engine and its arena twin (ArenaSccEngine),
// which is what makes their outputs bit-identical by construction.
class SccEngine {
 public:
  SccEngine(const LockDependency& dep, const DetectorOptions& options,
            const ClockTracker* clocks)
      : dep_(dep), options_(options) {
    const std::size_t n = dep.unique.size();
    LockId max_lock = -1;
    ThreadId max_thread = -1;
    for (std::size_t u : dep.unique) {
      const LockTuple& t = dep.tuples[u];
      max_lock = std::max(max_lock, t.lock);
      for (LockId l : t.lockset) max_lock = std::max(max_lock, l);
      max_thread = std::max(max_thread, t.thread);
    }
    lock_words_ = words_for(static_cast<std::size_t>(max_lock + 1));
    thread_words_ = words_for(static_cast<std::size_t>(max_thread + 1));

    tuple_of_.reserve(n);
    thread_.reserve(n);
    lock_.reserve(n);
    tau_.reserve(n);
    lockset_.assign(n * lock_words_, 0);
    holders_of_.assign(static_cast<std::size_t>(max_lock) + 1, {});
    for (std::size_t i = 0; i < n; ++i) {
      const LockTuple& t = dep.tuples[dep.unique[i]];
      tuple_of_.push_back(dep.unique[i]);
      thread_.push_back(t.thread);
      lock_.push_back(t.lock);
      tau_.push_back(t.tau);
      Word* mask = &lockset_[i * lock_words_];
      for (LockId l : t.lockset) {
        flip_bit(mask, static_cast<std::size_t>(l));
        holders_of_[static_cast<std::size_t>(l)].push_back(
            static_cast<std::uint32_t>(i));
      }
    }

    partition();

    if (options.clock_prune_during_search && clocks != nullptr)
      matrix_.emplace(*clocks, dep);
  }

  EnumerationResult run() { return run_partitioned(*this); }

  // Tarjan-partitions the tuple digraph (η → η' iff η' holds lock(η) and the
  // threads differ — every edge a deadlock chain can take). A cycle through
  // a tuple is a digraph cycle, hence confined to the tuple's SCC; only
  // components with ≥ 2 nodes can carry one (self loops are impossible:
  // a thread is never its own neighbor).
  void partition() {
    const std::size_t n = tuple_of_.size();
    Digraph graph(static_cast<int>(n));
    for (std::size_t u = 0; u < n; ++u)
      for (std::uint32_t v : holders_of_[static_cast<std::size_t>(lock_[u])])
        if (thread_[v] != thread_[u])
          graph.add_edge_fast(static_cast<Digraph::Node>(u),
                              static_cast<Digraph::Node>(v));
    comp_.assign(n, 0);
    comp_nontrivial_.clear();
    const auto components = graph.strongly_connected_components();
    std::uint64_t nontrivial = 0;
    for (std::size_t c = 0; c < components.size(); ++c) {
      for (Digraph::Node node : components[c])
        comp_[static_cast<std::size_t>(node)] = static_cast<std::uint32_t>(c);
      const bool big = components[c].size() >= 2;
      comp_nontrivial_.push_back(big);
      if (big) ++nontrivial;
    }
    kSccsVisited.add(nontrivial);
  }

  std::size_t size() const { return tuple_of_.size(); }

  bool in_nontrivial_scc(std::size_t node) const {
    return comp_nontrivial_[comp_[node]];
  }

  const Word* lockset(std::size_t node) const {
    return &lockset_[node * lock_words_];
  }

  const std::vector<std::uint32_t>& holders(std::size_t lock) const {
    return holders_of_[lock];
  }

  const LockDependency& dep_;
  const DetectorOptions& options_;
  std::size_t lock_words_ = 1;
  std::size_t thread_words_ = 1;
  std::vector<std::size_t> tuple_of_;  // node → index into dep.tuples
  std::vector<ThreadId> thread_;
  std::vector<LockId> lock_;
  std::vector<Timestamp> tau_;
  std::vector<Word> lockset_;  // node-major, lock_words_ words per node
  std::vector<std::vector<std::uint32_t>> holders_of_;  // lock → nodes
  std::vector<std::uint32_t> comp_;  // node → SCC id
  std::vector<bool> comp_nontrivial_;
  std::optional<ClockPairMatrix> matrix_;
};

// --------------------------------------------------------------- arena-scc
// SccEngine's partition and search over arena-allocated SoA state
// (DESIGN.md §15): node scalars, node-major lockset words, and the per-lock
// inverted holder index as one CSR (offsets + data) all live in a single
// support::Arena owned by the engine — allocation is a handful of pointer
// bumps instead of O(locks + nodes) heap vectors, and the arrays are laid
// out in the order the DFS touches them. The arena outlives every worker
// (run_partitioned joins its pool before the engine dies) and workers only
// read, so no synchronization is needed on the slab.
class ArenaSccEngine {
 public:
  ArenaSccEngine(const LockDependency& dep, const DetectorOptions& options,
                 const ClockTracker* clocks)
      : dep_(dep), options_(options) {
    const std::size_t n = dep.unique.size();
    LockId max_lock = -1;
    ThreadId max_thread = -1;
    std::size_t holds_total = 0;
    for (std::size_t u : dep.unique) {
      const LockTuple& t = dep.tuples[u];
      max_lock = std::max(max_lock, t.lock);
      for (LockId l : t.lockset) max_lock = std::max(max_lock, l);
      max_thread = std::max(max_thread, t.thread);
      holds_total += t.lockset.size();
    }
    lock_count_ = static_cast<std::size_t>(max_lock + 1);
    lock_words_ = words_for(lock_count_);
    thread_words_ = words_for(static_cast<std::size_t>(max_thread + 1));

    n_ = n;
    tuple_of_ = arena_.alloc_array<std::size_t>(n);
    thread_ = arena_.alloc_array<ThreadId>(n);
    lock_ = arena_.alloc_array<LockId>(n);
    tau_ = arena_.alloc_array<Timestamp>(n);
    lockset_ = arena_.alloc_array<Word>(n * lock_words_);
    holder_offsets_ = arena_.alloc_array<std::uint32_t>(lock_count_ + 1);
    holder_data_ = arena_.alloc_array<std::uint32_t>(holds_total);
    comp_ = arena_.alloc_array<std::uint32_t>(n);

    // CSR fill: per-lock counts, prefix sums, then nodes in increasing node
    // order — the identical per-lock candidate order of the heap engines.
    for (std::size_t i = 0; i < n; ++i) {
      const LockTuple& t = dep.tuples[dep.unique[i]];
      tuple_of_[i] = dep.unique[i];
      thread_[i] = t.thread;
      lock_[i] = t.lock;
      tau_[i] = t.tau;
      for (LockId l : t.lockset)
        ++holder_offsets_[static_cast<std::size_t>(l) + 1];
    }
    for (std::size_t l = 0; l < lock_count_; ++l)
      holder_offsets_[l + 1] += holder_offsets_[l];
    std::uint32_t* cursor = arena_.alloc_array<std::uint32_t>(lock_count_);
    for (std::size_t i = 0; i < n; ++i) {
      const LockTuple& t = dep.tuples[tuple_of_[i]];
      Word* mask = &lockset_[i * lock_words_];
      for (LockId l : t.lockset) {
        const std::size_t li = static_cast<std::size_t>(l);
        flip_bit(mask, li);
        holder_data_[holder_offsets_[li] + cursor[li]++] =
            static_cast<std::uint32_t>(i);
      }
    }

    partition();

    if (options.clock_prune_during_search && clocks != nullptr)
      matrix_.emplace(*clocks, dep);
  }

  EnumerationResult run() { return run_partitioned(*this); }

  // Same digraph, same Tarjan partition as SccEngine::partition — the edge
  // source is the CSR instead of the vector-of-vectors.
  void partition() {
    Digraph graph(static_cast<int>(n_));
    for (std::size_t u = 0; u < n_; ++u)
      for (std::uint32_t v : holders(static_cast<std::size_t>(lock_[u])))
        if (thread_[v] != thread_[u])
          graph.add_edge_fast(static_cast<Digraph::Node>(u),
                              static_cast<Digraph::Node>(v));
    const auto components = graph.strongly_connected_components();
    comp_nontrivial_ = arena_.alloc_array<std::uint8_t>(components.size());
    std::uint64_t nontrivial = 0;
    for (std::size_t c = 0; c < components.size(); ++c) {
      for (Digraph::Node node : components[c])
        comp_[static_cast<std::size_t>(node)] = static_cast<std::uint32_t>(c);
      const bool big = components[c].size() >= 2;
      comp_nontrivial_[c] = big ? 1 : 0;
      if (big) ++nontrivial;
    }
    kSccsVisited.add(nontrivial);
  }

  std::size_t size() const { return n_; }

  bool in_nontrivial_scc(std::size_t node) const {
    return comp_nontrivial_[comp_[node]] != 0;
  }

  const Word* lockset(std::size_t node) const {
    return &lockset_[node * lock_words_];
  }

  support::Slice<std::uint32_t> holders(std::size_t lock) const {
    return {holder_data_ + holder_offsets_[lock],
            holder_offsets_[lock + 1] - holder_offsets_[lock]};
  }

  const LockDependency& dep_;
  const DetectorOptions& options_;
  support::Arena arena_;
  std::size_t n_ = 0;
  std::size_t lock_count_ = 0;
  std::size_t lock_words_ = 1;
  std::size_t thread_words_ = 1;
  std::size_t* tuple_of_ = nullptr;  // node → index into dep.tuples
  ThreadId* thread_ = nullptr;
  LockId* lock_ = nullptr;
  Timestamp* tau_ = nullptr;
  Word* lockset_ = nullptr;  // node-major, lock_words_ words per node
  std::uint32_t* holder_offsets_ = nullptr;  // CSR: lock → [start, end)
  std::uint32_t* holder_data_ = nullptr;     // CSR: nodes holding each lock
  std::uint32_t* comp_ = nullptr;            // node → SCC id
  std::uint8_t* comp_nontrivial_ = nullptr;  // SCC id → carries cycles?
  std::optional<ClockPairMatrix> matrix_;
};

// One DFS worker: bitset chain state sized once, reused across starts. The
// same search runs over both SCC engines (heap or arena layout) — the
// engine only supplies node scalars, lockset words, the per-lock holder
// range, the partition, and the options/clock surface.
template <class Engine>
struct ChainSearch {
  explicit ChainSearch(const Engine& engine)
      : e(engine),
        chain_threads(engine.thread_words_, 0),
        chain_locks(engine.lock_words_, 0) {}

  void run_from(std::uint32_t start) {
    first_thread = e.thread_[start];
    start_comp = e.comp_[start];
    push(start);
    extend(start);
    pop(start);
  }

  void push(std::uint32_t node) {
    kChains.add();
    chain.push_back(node);
    flip_bit(chain_threads.data(),
             static_cast<std::size_t>(e.thread_[node]));
    const Word* mask = e.lockset(node);
    for (std::size_t w = 0; w < e.lock_words_; ++w) chain_locks[w] ^= mask[w];
  }

  void pop(std::uint32_t node) {
    const Word* mask = e.lockset(node);
    for (std::size_t w = 0; w < e.lock_words_; ++w) chain_locks[w] ^= mask[w];
    flip_bit(chain_threads.data(),
             static_cast<std::size_t>(e.thread_[node]));
    chain.pop_back();
  }

  // The in-search clock cut: true when `node` forms a provably
  // non-overlapping pair with any chain member. Every cycle containing
  // such a pair is pruned by Algorithm 2, so the whole branch is dead.
  bool clock_cut(std::uint32_t node) const {
    const ClockPairMatrix& m = *e.matrix_;
    for (std::uint32_t member : chain) {
      const ThreadId tm = e.thread_[member];
      const ThreadId tn = e.thread_[node];
      if (m.never_overlaps(tm, tn) || m.never_overlaps(tn, tm)) return true;
      if (is_false(m.pair_verdict(tm, e.tau_[member], tn, e.tau_[node])) ||
          is_false(m.pair_verdict(tn, e.tau_[node], tm, e.tau_[member])))
        return true;
    }
    return false;
  }

  void extend(std::uint32_t last) {
    if (out.size() >= e.options_.max_cycles) return;
    const std::uint32_t first = chain.front();

    if (chain.size() >= 2 &&
        test_bit(e.lockset(first), static_cast<std::size_t>(e.lock_[last]))) {
      kCyclesFound.add();
      PotentialDeadlock cycle;
      cycle.tuple_idx.reserve(chain.size());
      for (std::uint32_t node : chain)
        cycle.tuple_idx.push_back(e.tuple_of_[node]);
      out.push_back(std::move(cycle));
    }
    if (static_cast<int>(chain.size()) >= e.options_.max_cycle_length)
      return;

    for (std::uint32_t next :
         e.holders(static_cast<std::size_t>(e.lock_[last]))) {
      if (out.size() >= e.options_.max_cycles) return;
      if (e.thread_[next] <= first_thread) continue;
      if (e.comp_[next] != start_comp) continue;
      if (test_bit(chain_threads.data(),
                   static_cast<std::size_t>(e.thread_[next])))
        continue;
      const Word* mask = e.lockset(next);
      bool overlap = false;
      for (std::size_t w = 0; w < e.lock_words_; ++w)
        overlap |= (chain_locks[w] & mask[w]) != 0;
      if (overlap) continue;
      if (e.matrix_.has_value() && clock_cut(next)) {
        kClockCuts.add();
        continue;
      }
      push(next);
      extend(next);
      pop(next);
    }
  }

  const Engine& e;
  ThreadId first_thread = kInvalidThread;
  std::uint32_t start_comp = 0;
  std::vector<std::uint32_t> chain;
  std::vector<Word> chain_threads;
  std::vector<Word> chain_locks;
  std::vector<PotentialDeadlock> out;
};

// The serial / per-start-parallel driver both SCC engines run under.
template <class Engine>
EnumerationResult run_partitioned(const Engine& e) {
  const std::size_t n = e.size();
  std::size_t nontrivial_starts = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (e.in_nontrivial_scc(i)) ++nontrivial_starts;

  int jobs = e.options_.jobs <= 0 ? ThreadPool::hardware_jobs()
                                  : e.options_.jobs;
  if (nontrivial_starts <= 1) jobs = 1;

  EnumerationResult result;
  if (jobs == 1) {
    ChainSearch<Engine> search(e);
    for (std::size_t i = 0; i < n; ++i) {
      if (search.out.size() >= e.options_.max_cycles) break;
      if (!e.in_nontrivial_scc(i)) continue;
      search.run_from(static_cast<std::uint32_t>(i));
      obs::progress_tick("detect", i + 1, n);
    }
    result.cycles = std::move(search.out);
  } else {
    // Per-start enumerations share only read-only state; each task caps
    // itself at max_cycles (the merged prefix can use at most that many
    // from any single start) and the canonical-order merge + truncate
    // reproduces the serial sequence exactly.
    std::vector<std::vector<PotentialDeadlock>> per_start(n);
    ThreadPool pool(jobs);
    std::atomic<std::size_t> starts_done{0};
    pool.parallel_for_each(n, [&](std::size_t i) {
      if (!e.in_nontrivial_scc(i)) return;
      ChainSearch<Engine> search(e);
      search.run_from(static_cast<std::uint32_t>(i));
      per_start[i] = std::move(search.out);
      obs::progress_tick(
          "detect", starts_done.fetch_add(1, std::memory_order_relaxed) + 1,
          nontrivial_starts);
    });
    for (std::size_t i = 0; i < n; ++i) {
      for (PotentialDeadlock& cycle : per_start[i]) {
        if (result.cycles.size() >= e.options_.max_cycles) break;
        result.cycles.push_back(std::move(cycle));
      }
    }
  }
  result.truncated = result.cycles.size() >= e.options_.max_cycles;
  return result;
}

}  // namespace

EnumerationResult enumerate_cycles_reference(const LockDependency& dep,
                                             const DetectorOptions& options) {
  EnumerationResult result;
  result.cycles = ReferenceEnumerator(dep, options).run();
  result.truncated = result.cycles.size() >= options.max_cycles;
  return result;
}

EnumerationResult enumerate_cycles_scc(const LockDependency& dep,
                                       const DetectorOptions& options,
                                       const ClockTracker* clocks) {
  return SccEngine(dep, options, clocks).run();
}

EnumerationResult enumerate_cycles_arena_scc(const LockDependency& dep,
                                             const DetectorOptions& options,
                                             const ClockTracker* clocks) {
  return ArenaSccEngine(dep, options, clocks).run();
}

EnumerationResult enumerate_cycles_ex(const LockDependency& dep,
                                      const DetectorOptions& options,
                                      const ClockTracker* clocks) {
  if (options.engine == CycleEngine::kReference)
    return enumerate_cycles_reference(dep, options);
  if (options.engine == CycleEngine::kArenaScc)
    return enumerate_cycles_arena_scc(dep, options, clocks);
  return enumerate_cycles_scc(dep, options, clocks);
}

}  // namespace wolf
