#include "core/governor.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/counters.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "trace/trace_reader.hpp"

namespace wolf {

namespace {

const obs::Counter kWindowsCounter("governor.windows");
const obs::Counter kSuspiciousCounter("governor.windows_suspicious");
const obs::Counter kCompactionsCounter("governor.compactions");
const obs::Counter kEvictedCounter("governor.tuples_evicted");
const obs::Counter kFaultsCounter("governor.detection_faults");
// Rung changes depend on wall-clock latency, so this one is excluded from
// the byte-stable metrics report.
const obs::Counter kDegradedCounter("governor.windows_degraded",
                                    /*stable=*/false);

// Keep at most this many notes in the verdict; chaos schedules can fault
// every window and the verdict must stay O(1)-readable.
constexpr std::size_t kMaxNotes = 16;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

std::uint64_t cycle_key(const PotentialDeadlock& cycle,
                        const LockDependency& dep) {
  DefectSignature sig = signature_of(cycle, dep);
  std::uint64_t h = 0x90be17a9c0bef5ULL ^ sig.size();
  for (SiteId s : sig)
    h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(s)));
  // Fold in the thread multiset so distinct cycles over the same sites
  // still count separately.
  std::vector<ThreadId> threads;
  threads.reserve(cycle.tuple_idx.size());
  for (std::size_t idx : cycle.tuple_idx)
    threads.push_back(dep.tuples[idx].thread);
  std::sort(threads.begin(), threads.end());
  for (ThreadId t : threads)
    h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(t)) +
                   0x9e3779b97f4a7c15ULL));
  return h;
}

}  // namespace

const char* to_string(DetectionLevel level) {
  switch (level) {
    case DetectionLevel::kFullScc:
      return "full-scc";
    case DetectionLevel::kClockPruned:
      return "clock-pruned";
    case DetectionLevel::kPrefilterOnly:
      return "prefilter-only";
    case DetectionLevel::kShedding:
      return "shedding";
  }
  return "?";
}

std::string GovernorVerdict::summary() const {
  std::ostringstream os;
  if (coverage_complete && degraded_windows == 0) {
    os << "coverage complete: " << windows << " windows, "
       << suspicious_windows << " suspicious, level " << to_string(final_level);
  } else {
    os << (coverage_complete ? "DEGRADED" : "DEGRADED (coverage incomplete)")
       << ": " << windows << " windows, " << degraded_windows << " degraded, "
       << suspicious_windows << " suspicious";
    if (tuples_evicted > 0) os << ", " << tuples_evicted << " tuples evicted";
    if (detection_faults > 0) os << ", " << detection_faults << " detection faults";
    os << ", final level " << to_string(final_level);
  }
  return os.str();
}

DetectionLevel next_rung(DetectionLevel current, double detect_seconds,
                         std::int64_t deadline_ms, int& fast_streak) {
  if (deadline_ms <= 0) return current;
  // kShedding is a window marker, not a deadline rung; treat it as the
  // cheapest real rung if a caller ever passes it in.
  if (current == DetectionLevel::kShedding)
    current = DetectionLevel::kPrefilterOnly;
  const double deadline = static_cast<double>(deadline_ms) / 1000.0;
  if (detect_seconds > deadline) {
    fast_streak = 0;
    if (current == DetectionLevel::kPrefilterOnly) return current;
    return static_cast<DetectionLevel>(static_cast<int>(current) + 1);
  }
  if (detect_seconds < deadline / 2.0) {
    if (++fast_streak >= 2 && current != DetectionLevel::kFullScc) {
      fast_streak = 0;
      return static_cast<DetectionLevel>(static_cast<int>(current) - 1);
    }
  } else {
    fast_streak = 0;
  }
  return current;
}

std::size_t tuple_bytes(const LockTuple& tuple) {
  return sizeof(LockTuple) + tuple.lockset.capacity() * sizeof(LockId) +
         tuple.context.capacity() * sizeof(ExecIndex);
}

GovernedStreamingDetector::GovernedStreamingDetector(
    const GovernorOptions& options)
    : options_(options) {
  if (options_.window_events == 0) options_.window_events = 65536;
}

GovernedStreamingDetector::~GovernedStreamingDetector() = default;

int GovernedStreamingDetector::resolved_jobs() const {
  return options_.jobs <= 0 ? ThreadPool::hardware_jobs() : options_.jobs;
}

ThreadPool& GovernedStreamingDetector::pool() {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(resolved_jobs());
  return *pool_;
}

void GovernedStreamingDetector::add(const Event& e) {
  // Malformed input containment: a semantically inconsistent event (e.g. a
  // release of a lock the thread does not hold, from a corrupted live feed)
  // fires an invariant check inside the builder. The builder commits its
  // tuple before mutating held-lock state, so its store is still consistent
  // after the throw — stop ingesting, keep what was built, and report the
  // run as incomplete rather than crashing or silently analyzing garbage.
  if (poisoned_) return;
  try {
    builder_.add(e);
  } catch (const std::exception& ex) {
    poisoned_ = true;
    if (verdict_.coverage_complete) {
      verdict_.coverage_complete = false;
      note_event(verdict_,
                 std::string("malformed event rejected, later input ignored: ") +
                     ex.what());
    }
    return;
  }
  const auto& tuples = builder_.pending().tuples;
  for (std::size_t i = tuples_fed_; i < tuples.size(); ++i) {
    prefilter_.on_tuple(tuples[i]);
    store_bytes_ += tuple_bytes(tuples[i]);
    if (options_.incremental_scc)
      tuples_by_lock_[tuples[i].lock].push_back(i);
  }
  tuples_fed_ = tuples.size();
  if (++window_events_ >= options_.window_events) close_window();
}

void GovernedStreamingDetector::add_block(const std::vector<Event>& events) {
  for (const Event& e : events) add(e);
}

void GovernedStreamingDetector::note_event(GovernorVerdict& v,
                                           std::string note) const {
  if (v.notes.size() < kMaxNotes) {
    v.notes.push_back(std::move(note));
  } else if (v.notes.size() == kMaxNotes) {
    v.notes.push_back("(further notes suppressed)");
  }
}

void GovernedStreamingDetector::surface_cycle(const PotentialDeadlock& cycle,
                                              const LockDependency& dep,
                                              WindowReport& w) {
  const std::uint64_t key = cycle_key(cycle, dep);
  if (std::find(seen_cycle_keys_.begin(), seen_cycle_keys_.end(), key) !=
      seen_cycle_keys_.end())
    return;
  seen_cycle_keys_.push_back(key);
  ++w.new_cycles;
  ++live_cycles_;
  if (options_.on_cycle) {
    LiveCycle lc;
    lc.window = w.index;
    lc.sequence = live_cycles_;
    lc.cycle = &cycle;
    lc.dep = &dep;
    options_.on_cycle(lc);
  }
}

void GovernedStreamingDetector::surface_new_cycles(const Detection& det,
                                                   WindowReport& w) {
  for (const PotentialDeadlock& cycle : det.cycles)
    surface_cycle(cycle, det.dep, w);
}

void GovernedStreamingDetector::run_window_detection(WindowReport& w) {
  if (options_.fault != nullptr &&
      options_.fault->detect_throw_window == static_cast<int>(w.index)) {
    throw std::runtime_error("injected detection fault (window " +
                             std::to_string(w.index) + ")");
  }

  DetectorOptions opt = options_.detector;
  if (w.level == DetectionLevel::kClockPruned) {
    opt.engine = CycleEngine::kScc;  // the clock cut is SCC-engine only
    opt.clock_prune_during_search = true;
  }

  if (!options_.incremental_scc) {
    // Historical recompute path: full-store enumeration per suspicious
    // window, gated on the pre-filter generation counter. No edge change
    // since the last boundary ⇒ the verdict — and the cycle set — cannot
    // have changed; skip even the SCC pass.
    const std::uint64_t gen = prefilter_.generation();
    const bool changed = gen != prefilter_generation_;
    prefilter_generation_ = gen;
    if (!changed) return;
    w.suspicious = prefilter_.suspicious();
    if (!w.suspicious) return;
    if (w.level >= DetectionLevel::kPrefilterOnly) return;
    Detection det = finish_detection(builder_.snapshot_dependency(),
                                     builder_.clocks(), opt);
    surface_new_cycles(det, w);
    return;
  }

  // Incremental path: nothing marked dirty since the last boundary ⇒
  // nothing to re-examine.
  if (!prefilter_.has_dirty()) return;
  w.suspicious = prefilter_.suspicious();
  if (!w.suspicious) {
    // All dirty components are benign; consume their marks (any change that
    // could flip a verdict later will re-mark).
    prefilter_.drain_dirty_suspicious_locks();
    return;
  }
  // At a non-enumerating rung keep the marks queued: a later promoted
  // window drains the accumulated dirt and catches up — unlike the
  // generation gate, which consumed the delta before the rung check.
  if (w.level >= DetectionLevel::kPrefilterOnly) return;

  const std::vector<std::vector<LockId>> dirty_comps =
      prefilter_.drain_dirty_suspicious_components();
  if (dirty_comps.empty()) return;  // the suspicious SCCs are all unchanged
  // A cycle's requested locks all lie in one lock-graph SCC, so the tuples
  // whose request lock belongs to a dirty suspicious SCC form a complete
  // enumeration domain for every cycle that SCC could newly carry — and
  // since components partition the locks, each dirty component is an
  // *independent* domain: no cycle crosses two subsets, and canonical dedup
  // (keyed on thread, request lock, and context) never merges tuples across
  // them. That makes components the unit of parallel fan-out.
  std::vector<std::vector<std::size_t>> subsets;
  subsets.reserve(dirty_comps.size());
  for (const std::vector<LockId>& locks : dirty_comps) {
    std::vector<std::size_t> subset;
    for (LockId lock : locks) {
      auto it = tuples_by_lock_.find(lock);
      if (it == tuples_by_lock_.end()) continue;
      subset.insert(subset.end(), it->second.begin(), it->second.end());
    }
    if (subset.empty()) continue;
    std::sort(subset.begin(), subset.end());  // canonical trace order
    subsets.push_back(std::move(subset));
  }
  if (subsets.empty()) return;

  // Fan the components out as independent enumeration tasks. ThreadPool(1)
  // degenerates to a plain serial loop, so jobs=1 runs the *same* code path
  // — jobs-invariance is structural, not tested-for. Each task enumerates
  // serially inside (fan-out parallelism, not nested DFS), over its own
  // snapshot and clock copy; the shared builder is only read.
  DetectorOptions task_opt = opt;
  task_opt.jobs = 1;
  std::vector<Detection> dets(subsets.size());
  pool().parallel_for_each(subsets.size(), [&](std::size_t i) {
    dets[i] = finish_detection(builder_.snapshot_subset(subsets[i]),
                               builder_.clocks(), task_opt);
  });

  // Deterministic canonical-order merge. The combined-subset enumeration
  // emits cycles grouped by ascending global store index of each cycle's
  // start tuple (dep.unique ascends in snapshot order, and a sorted subset's
  // local order *is* global order); a start tuple's request lock lives in
  // exactly one component, so the per-component streams tie only within a
  // component, where stable sort preserves emission order. Cross-component
  // DFS branches in a combined run are dead ends — they can never close a
  // cycle — so they change no emission. The merged stream is therefore
  // byte-identical to what one combined enumeration would surface.
  bool truncated = false;
  std::size_t total = 0;
  for (const Detection& d : dets) {
    truncated = truncated || d.truncated;
    total += d.cycles.size();
  }
  if (truncated || total >= opt.max_cycles) {
    // Truncation is defined over the combined stream; per-component caps
    // compose differently. Rare (the cap is huge) — re-enumerate the
    // combined subset serially rather than approximate the cut.
    std::vector<std::size_t> combined;
    for (const std::vector<std::size_t>& s : subsets)
      combined.insert(combined.end(), s.begin(), s.end());
    std::sort(combined.begin(), combined.end());
    Detection det = finish_detection(builder_.snapshot_subset(combined),
                                     builder_.clocks(), opt);
    surface_new_cycles(det, w);
    return;
  }
  struct MergeRef {
    std::size_t global_start;  // store index of the cycle's start tuple
    std::uint32_t det;
    std::uint32_t idx;
  };
  std::vector<MergeRef> merged;
  merged.reserve(total);
  for (std::size_t d = 0; d < dets.size(); ++d)
    for (std::size_t c = 0; c < dets[d].cycles.size(); ++c)
      merged.push_back({subsets[d][dets[d].cycles[c].tuple_idx[0]],
                        static_cast<std::uint32_t>(d),
                        static_cast<std::uint32_t>(c)});
  std::stable_sort(merged.begin(), merged.end(),
                   [](const MergeRef& a, const MergeRef& b) {
                     return a.global_start < b.global_start;
                   });
  for (const MergeRef& m : merged)
    surface_cycle(dets[m.det].cycles[m.idx], dets[m.det].dep, w);
}

void GovernedStreamingDetector::recompute_store_bytes() {
  store_bytes_ = 0;
  for (const LockTuple& t : builder_.pending().tuples)
    store_bytes_ += tuple_bytes(t);
}

void GovernedStreamingDetector::rebuild_lock_index() {
  tuples_by_lock_.clear();
  const auto& tuples = builder_.pending().tuples;
  for (std::size_t i = 0; i < tuples.size(); ++i)
    tuples_by_lock_[tuples[i].lock].push_back(i);
}

void GovernedStreamingDetector::govern_memory(WindowReport& w) {
  if (options_.memory_budget_mb == 0) return;
  const std::size_t budget = options_.memory_budget_mb << 20;
  if (store_bytes_ <= budget) return;

  // In incremental mode every dropped tuple is reported to the pre-filter so
  // its lock-graph edge refcounts (and hence SCCs) track the live store.
  LockDependencyBuilder::RemovalHook expire;
  if (options_.incremental_scc)
    expire = [this](const LockTuple& t) { prefilter_.on_tuple_removed(t); };

  // Rung 1: compaction — lossless for the cycle set (enumeration runs over
  // the canonical view), so it is always tried first.
  w.tuples_compacted = builder_.compact(expire);
  recompute_store_bytes();
  tuples_fed_ = builder_.pending().tuples.size();
  if (w.tuples_compacted > 0) kCompactionsCounter.add();
  if (store_bytes_ > budget) {
    // Rung 2: aging — evict the oldest tuples down to ~90% of the budget so
    // the next window has headroom. Lossy; the report must say so.
    const std::size_t live = builder_.pending().tuples.size();
    const std::size_t avg =
        live == 0 ? 1 : std::max<std::size_t>(1, store_bytes_ / live);
    const std::size_t max_tuples = (budget - budget / 10) / avg;
    w.tuples_evicted = builder_.evict_oldest(max_tuples, expire);
    recompute_store_bytes();
    tuples_fed_ = builder_.pending().tuples.size();
    if (w.tuples_evicted > 0) {
      w.level = DetectionLevel::kShedding;
      kEvictedCounter.add(w.tuples_evicted);
    }
  }
  if (options_.incremental_scc &&
      w.tuples_compacted + w.tuples_evicted > 0)
    rebuild_lock_index();
}

void GovernedStreamingDetector::close_window() {
  WindowReport w;
  w.index = windows_.size();
  w.events = window_events_;
  w.level = rung_;
  const double t0 = now_seconds();
  try {
    run_window_detection(w);
  } catch (const std::exception& ex) {
    // Containment: a per-window enumeration fault loses only this window's
    // early surfacing — finish() re-enumerates over everything retained —
    // so coverage stays complete. It is still a degraded window.
    w.note = ex.what();
    ++verdict_.detection_faults;
    kFaultsCounter.add();
    note_event(verdict_, "window " + std::to_string(w.index) +
                             " detection fault: " + w.note);
  }
  w.detect_seconds = now_seconds() - t0;
  govern_memory(w);
  w.tuples_live = builder_.pending().tuples.size();
  w.store_bytes = store_bytes_;

  rung_ = next_rung(rung_, w.detect_seconds, options_.window_deadline_ms,
                    fast_streak_);

  ++verdict_.windows;
  kWindowsCounter.add();
  if (w.suspicious) {
    ++verdict_.suspicious_windows;
    kSuspiciousCounter.add();
  }
  verdict_.tuples_compacted += w.tuples_compacted;
  if (w.tuples_evicted > 0) {
    verdict_.tuples_evicted += w.tuples_evicted;
    if (verdict_.coverage_complete) {
      verdict_.coverage_complete = false;
      note_event(verdict_, "window " + std::to_string(w.index) +
                               ": memory budget forced eviction of " +
                               std::to_string(w.tuples_evicted) +
                               " tuples; coverage is incomplete from here");
    }
  }
  if (w.degraded()) {
    ++verdict_.degraded_windows;
    kDegradedCounter.add();
  }
  windows_.push_back(std::move(w));
  window_events_ = 0;
}

Detection GovernedStreamingDetector::finish() {
  if (window_events_ > 0) close_window();
  finished_ = true;
  verdict_.final_level = rung_;
  Detection det;
  try {
    LockDependency dep = builder_.take_dependency();
    ClockTracker clocks = builder_.clocks();
    builder_.clear();
    tuples_by_lock_.clear();
    det = finish_detection(std::move(dep), std::move(clocks),
                           options_.detector);
  } catch (const std::exception& ex) {
    // The authoritative enumeration failed: the empty cycle set below is
    // NOT a clean bill of health, and the verdict says so.
    ++verdict_.detection_faults;
    kFaultsCounter.add();
    verdict_.coverage_complete = false;
    note_event(verdict_,
               std::string("final detection fault: ") + ex.what());
    det = Detection{};
  }
  return det;
}

GovernorVerdict GovernedStreamingDetector::verdict() const {
  GovernorVerdict v = verdict_;
  if (!finished_) v.final_level = rung_;
  return v;
}

// detect_reader_governed lives in core/session.cpp now: it is a deprecated
// shim over wolf::Session, which absorbed the drain/pipeline loop that used
// to sit here.

}  // namespace wolf
