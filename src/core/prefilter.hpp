// Linear-time sound deadlock pre-filter (PAPERS.md: Tunç, Mathur,
// Pavlogiannis, Viswanathan — "Sound Dynamic Deadlock Prediction in Linear
// Time"), adapted to D_σ tuples.
//
// The expensive part of online detection is tuple-level cycle enumeration.
// This module maintains a much coarser abstraction incrementally — a
// lock-level holds→requests digraph: when a tuple (t, L, ℓ, …) is added,
// every held lock h ∈ L gains an edge h → ℓ. Any potential deadlock
// θ = {η1 … ηn} of the detector induces a directed cycle
// lock(η1) → lock(η2) → … → lock(ηn) → lock(η1) here (ηi+1 holds lock(ηi)
// while requesting lock(ηi+1)), so:
//
//     lock graph has no "suspicious" SCC  ⇒  D_σ has no potential deadlock.
//
// The converse does not hold — the pre-filter may flag windows with no
// cycle — which is exactly the right direction for a *sound* cheap pass:
// enumeration is only skipped when skipping provably loses nothing.
//
// Two refinements sharpen "suspicious" while preserving soundness:
//   * threads — each edge records which threads contributed it; a cycle
//     needs pairwise-distinct threads, so an SCC whose edges all come from
//     one single thread cannot contain one;
//   * guards — each edge records the intersection of the contributing
//     tuples' locksets (as a fixed 256-lock bitmask; locks beyond the mask
//     are conservatively ignored). If every edge of an SCC shares a common
//     held lock g, any cycle through the SCC would need two tuples both
//     holding g, violating lockset disjointness — the classic gate-lock
//     idiom is discharged without enumerating anything.
//
// Maintenance is O(|lockset|) amortized per tuple; the verdict is one
// Tarjan pass over the lock graph (O(locks + edges)), recomputed lazily
// only when an edge changed since the last query. Both are linear in the
// trace — this is the pass the degradation ladder falls back to when
// budgets bite (DESIGN.md §14).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/lock_dependency.hpp"
#include "trace/ids.hpp"

namespace wolf {

// Fixed-block lockset bitmask over the first kBits (= 256) lock ids. Locks
// with larger ids are dropped from the mask — conservative: a dropped guard
// can only make the filter *more* suspicious, never less sound. The old
// single-word mask saturated at 64 locks, which real traces exceed; four
// words cover every workload in this repo while keeping the per-edge AND
// branch-free.
struct GuardMask {
  static constexpr std::size_t kWords = 4;
  static constexpr std::size_t kBits = kWords * 64;

  std::array<std::uint64_t, kWords> w{};

  static GuardMask all() {
    GuardMask m;
    m.w.fill(~0ULL);
    return m;
  }

  void set(std::size_t bit) {
    if (bit < kBits) w[bit / 64] |= 1ULL << (bit % 64);
  }

  GuardMask& operator&=(const GuardMask& o) {
    for (std::size_t i = 0; i < kWords; ++i) w[i] &= o.w[i];
    return *this;
  }

  bool any() const {
    std::uint64_t acc = 0;
    for (std::uint64_t word : w) acc |= word;
    return acc != 0;
  }

  friend bool operator==(const GuardMask&, const GuardMask&) = default;
};

class LockGraph {
 public:
  // Folds one D_σ tuple into the graph.
  void on_tuple(const LockTuple& tuple);

  // Sound verdict over everything added so far: false guarantees that the
  // tuples seen so far admit no potential-deadlock cycle. Lazily recomputes
  // the SCC decomposition when the graph changed since the last call.
  bool suspicious() const;

  // Locks participating in some suspicious SCC (dense node ids — see
  // lock_of()); empty iff !suspicious(). Useful for diagnostics.
  std::size_t suspicious_scc_count() const;

  std::size_t lock_count() const { return locks_.size(); }
  std::size_t edge_count() const { return edge_count_; }
  // True when on_tuple() changed an edge since the given generation; the
  // governor uses generation() deltas to skip windows that added nothing.
  std::uint64_t generation() const { return generation_; }

  void clear();

 private:
  struct Edge {
    int to = -1;
    ThreadId first_thread = kInvalidThread;
    bool multi_thread = false;  // contributed by >= 2 distinct threads
    GuardMask guard_mask = GuardMask::all();  // AND of contributors' masks
  };

  int intern(LockId lock);
  void touch() const {}  // documentation aid; mutation bumps generation_

  std::unordered_map<LockId, int> lock_ids_;  // LockId -> dense node
  std::vector<LockId> locks_;                 // dense node -> LockId
  // Adjacency: per node, edges keyed by target node (small vectors; lock
  // graphs are tiny compared to D_σ).
  std::vector<std::vector<Edge>> out_;
  std::size_t edge_count_ = 0;
  std::uint64_t generation_ = 0;

  // Lazy verdict cache.
  mutable std::uint64_t verdict_generation_ = 0;
  mutable bool verdict_ = false;
  mutable std::size_t verdict_scc_count_ = 0;
  void recompute() const;
};

// Lockset bitmask over the first GuardMask::kBits lock ids; see GuardMask
// for the conservative-drop argument.
GuardMask lockset_mask(const std::vector<LockId>& lockset);

}  // namespace wolf
