// Linear-time sound deadlock pre-filter (PAPERS.md: Tunç, Mathur,
// Pavlogiannis, Viswanathan — "Sound Dynamic Deadlock Prediction in Linear
// Time"), adapted to D_σ tuples.
//
// The expensive part of online detection is tuple-level cycle enumeration.
// This module maintains a much coarser abstraction incrementally — a
// lock-level holds→requests digraph: when a tuple (t, L, ℓ, …) is added,
// every held lock h ∈ L gains an edge h → ℓ. Any potential deadlock
// θ = {η1 … ηn} of the detector induces a directed cycle
// lock(η1) → lock(η2) → … → lock(ηn) → lock(η1) here (ηi+1 holds lock(ηi)
// while requesting lock(ηi+1)), so:
//
//     lock graph has no "suspicious" SCC  ⇒  D_σ has no potential deadlock.
//
// The converse does not hold — the pre-filter may flag windows with no
// cycle — which is exactly the right direction for a *sound* cheap pass:
// enumeration is only skipped when skipping provably loses nothing.
//
// Two refinements sharpen "suspicious" while preserving soundness:
//   * threads — each edge records which threads contributed it; a cycle
//     needs pairwise-distinct threads, so an SCC whose edges all come from
//     one single thread cannot contain one;
//   * guards — each edge records the intersection of the contributing
//     tuples' locksets (as a fixed 256-lock bitmask; locks beyond the mask
//     are conservatively ignored). If every edge of an SCC shares a common
//     held lock g, any cycle through the SCC would need two tuples both
//     holding g, violating lockset disjointness — the classic gate-lock
//     idiom is discharged without enumerating anything.
//
// Since ROADMAP item 2 landed, the SCC decomposition is maintained
// *incrementally* (graph/dynamic_scc.hpp) instead of recomputed per query:
// edge insertions run Pearce–Kelly order maintenance with cycle collapse,
// contributor expiry refcounts edges down and lazily rebuilds only the
// component an erased edge lived in, and per-component verdicts are cached
// and re-evaluated only for components whose membership or edges changed.
// `drain_dirty_suspicious_locks()` hands the governor exactly the locks
// whose component changed since the last drain — the dirty-SCC set that
// bounds per-window enumeration to tuples that could be involved in a new
// cycle.
//
// Expiry keeps the refinements conservative rather than exact: removing a
// contributor never re-widens an edge's guard intersection and never
// retracts multi_thread. Both errors only make an SCC *more* suspicious, so
// soundness (no-cycle verdicts stay trustworthy) is preserved.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/lock_dependency.hpp"
#include "graph/dynamic_scc.hpp"
#include "trace/ids.hpp"

namespace wolf {

// Fixed-block lockset bitmask over the first kBits (= 256) lock ids. Locks
// with larger ids are dropped from the mask — conservative: a dropped guard
// can only make the filter *more* suspicious, never less sound. The old
// single-word mask saturated at 64 locks, which real traces exceed; four
// words cover every workload in this repo while keeping the per-edge AND
// branch-free.
struct GuardMask {
  static constexpr std::size_t kWords = 4;
  static constexpr std::size_t kBits = kWords * 64;

  std::array<std::uint64_t, kWords> w{};

  static GuardMask all() {
    GuardMask m;
    m.w.fill(~0ULL);
    return m;
  }

  void set(std::size_t bit) {
    if (bit < kBits) w[bit / 64] |= 1ULL << (bit % 64);
  }

  GuardMask& operator&=(const GuardMask& o) {
    for (std::size_t i = 0; i < kWords; ++i) w[i] &= o.w[i];
    return *this;
  }

  bool any() const {
    std::uint64_t acc = 0;
    for (std::uint64_t word : w) acc |= word;
    return acc != 0;
  }

  friend bool operator==(const GuardMask&, const GuardMask&) = default;
};

class LockGraph {
 public:
  // Folds one D_σ tuple into the graph. Also marks the tuple's locks dirty:
  // a re-fed canonical shape can still be a *new* tuple whose cycle has not
  // been enumerated, so the consumer must revisit its component.
  void on_tuple(const LockTuple& tuple);

  // Retracts one tuple's contribution (compaction/eviction expiry). Each
  // held→request edge is refcounted; the edge leaves the graph — possibly
  // splitting its SCC — only when its last contributor expires. Thread and
  // guard refinements are left stale-but-conservative (see header comment).
  void on_tuple_removed(const LockTuple& tuple);

  // Sound verdict over everything added so far: false guarantees that the
  // live tuples admit no potential-deadlock cycle. Re-evaluates only the
  // components marked dirty since the last query.
  bool suspicious() const;

  // Number of components currently flagged suspicious.
  std::size_t suspicious_scc_count() const;

  // Dirty-SCC drain for the governor: the locks of every *suspicious*
  // component that changed (membership, edges, or a fed tuple) since the
  // last drain. Clears the dirty set — benign components' marks are
  // consumed too, so a drain with an empty result still means "caught up".
  std::vector<LockId> drain_dirty_suspicious_locks();
  // Component-grained twin: one lock list per dirty suspicious component, in
  // drain order. Components partition the lock graph, so the lists are
  // disjoint and each is an independent enumeration domain — the unit of the
  // governor's per-SCC detection fan-out (DESIGN.md §17). Flattening them
  // yields exactly what drain_dirty_suspicious_locks() would have returned.
  std::vector<std::vector<LockId>> drain_dirty_suspicious_components();
  // True when a drain would observe any change since the last one.
  bool has_dirty() const;

  std::size_t lock_count() const { return locks_.size(); }
  std::size_t edge_count() const { return edge_count_; }
  // Bumped only on verdict-relevant mutations: a new edge, a single→multi
  // thread widening, a guard-mask narrowing, or an edge expiring. Identical
  // re-feeds leave it unchanged. The legacy (non-incremental) governor path
  // still uses generation() deltas to skip windows that added nothing; the
  // incremental path uses the finer-grained dirty set instead.
  std::uint64_t generation() const { return generation_; }

  // The incremental decomposition, exposed read-only for the differential
  // fuzz tests (compare against its own tarjan_components() oracle).
  const DynamicScc& scc() const { return scc_; }
  LockId lock_of(int node) const {
    return locks_[static_cast<std::size_t>(node)];
  }

  void clear();

 private:
  struct Edge {
    int to = -1;
    int refcount = 0;  // contributing live tuples (held,request) pairs
    ThreadId first_thread = kInvalidThread;
    bool multi_thread = false;  // contributed by >= 2 distinct threads
    GuardMask guard_mask = GuardMask::all();  // AND of contributors' masks
  };

  int intern(LockId lock);
  // Refinement verdict for one live component over its internal edges.
  bool evaluate(int comp) const;
  // Re-evaluates every dirty component's cached verdict (without consuming
  // the dirty set — the governor still needs to drain it) and refreshes the
  // aggregate verdict/count.
  void refresh_verdicts() const;

  std::unordered_map<LockId, int> lock_ids_;  // LockId -> dense node
  std::vector<LockId> locks_;                 // dense node -> LockId
  // Adjacency: per node, edges keyed by target node (small vectors; lock
  // graphs are tiny compared to D_σ). Node ids coincide with scc_ node ids —
  // both are assigned densely at intern time.
  std::vector<std::vector<Edge>> out_;
  std::size_t edge_count_ = 0;
  std::uint64_t generation_ = 0;

  DynamicScc scc_;

  // Per-component cached verdicts (label -> suspicious?) plus the cached
  // aggregate; refreshed lazily for dirty components only.
  mutable std::vector<char> comp_suspicious_;
  mutable bool verdict_ = false;
  mutable std::size_t verdict_scc_count_ = 0;
};

// Lockset bitmask over the first GuardMask::kBits lock ids; see GuardMask
// for the conservative-drop argument.
GuardMask lockset_mask(const std::vector<LockId>& lockset);

}  // namespace wolf
