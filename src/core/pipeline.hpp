// The WOLF pipeline (paper Fig. 3): instrumented execution → extended cycle
// detection → Pruner → Generator → Replayer, with per-phase timings and the
// two defect-counting views of §4.3 (source-location defects and raw
// cycles).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/generator.hpp"
#include "core/governor.hpp"
#include "core/pruner.hpp"
#include "core/replayer.hpp"
#include "obs/span.hpp"
#include "sim/program.hpp"

namespace wolf {

enum class Classification : std::uint8_t {
  kFalseByPruner,     // Algorithm 2 proved the cycle infeasible
  kFalseByGenerator,  // cyclic Gs (Algorithm 3)
  kReproduced,        // a replay trial deadlocked at the exact locations
  kUnknown,           // left for manual comprehension
};

const char* to_string(Classification c);

struct CycleReport {
  std::size_t cycle_index = 0;  // into Detection::cycles
  Classification classification = Classification::kUnknown;
  PruneVerdict prune_verdict = PruneVerdict::kUnknown;
  int gs_vertices = 0;  // |Vs| (0 when pruned before generation)
  ReplayStats replay_stats;
  // Non-empty when this cycle's classification was degraded to kUnknown
  // because its prune/generate/replay stages threw or every replay trial
  // timed out. Other cycles are unaffected (per-cycle error isolation).
  std::string failure_reason;

  bool degraded() const { return !failure_reason.empty(); }
};

struct DefectReport {
  DefectSignature signature;
  Classification classification = Classification::kUnknown;
  std::vector<std::size_t> cycle_indices;  // into WolfReport::cycles
};

// Per-phase cost of one pipeline run. The record and detect phases are
// single-threaded, so their fields are plain wall clock. The three
// classification stages run on the parallel engine: their per-stage fields
// are *aggregate CPU seconds* (summed over cycles in index order — at
// jobs=1 that equals wall clock, under concurrency it exceeds it), and the
// wall clock of the two parallel phases is reported separately so neither
// view silently lies about the other.
//
// Since the observability layer landed this is a *view*: the pipeline
// records obs spans ("phase/record", "phase/detect", "phase/feasibility",
// "phase/replay" and per-cycle "cycle/prune|generate|replay" tagged with
// the cycle index) and from_spans() folds them into these fields, so all
// existing timing output is unchanged.
struct PhaseTimings {
  double record_seconds = 0;
  double detect_seconds = 0;
  // Aggregate CPU seconds across cycles, per classification stage.
  double prune_seconds = 0;
  double generate_seconds = 0;
  double replay_seconds = 0;
  // Wall-clock seconds of the two parallel classification phases:
  // feasibility (prune + generate) and replay.
  double feasibility_wall_seconds = 0;
  double replay_wall_seconds = 0;

  double classify_cpu_seconds() const {
    return prune_seconds + generate_seconds + replay_seconds;
  }
  double classify_wall_seconds() const {
    return feasibility_wall_seconds + replay_wall_seconds;
  }

  double detection_total() const {
    return record_seconds + detect_seconds + prune_seconds + generate_seconds;
  }

  // Folds a run's span tree into phase timings. Per-cycle stage durations
  // are summed in tag (= cycle-index) order, so the aggregates do not
  // depend on which worker thread recorded which span first.
  static PhaseTimings from_spans(const std::vector<obs::SpanRecord>& spans);
};

// Deprecated as a public entry type: prefer wolf::Config (wolf.hpp), whose
// wolf_options() produces this struct with the shared scalars folded in.
// Kept for one release as the underlying section type.
struct WolfOptions {
  std::uint64_t seed = 1;
  DetectorOptions detector;
  ReplayOptions replay;
  // Attempts at recording a completed (non-deadlocking) execution.
  int record_attempts = 20;
  std::uint64_t max_steps = 2'000'000;
  // Ablation switches (DESIGN.md §7): with the Pruner disabled, infeasible
  // start/join-ordered cycles fall through to replay; with the Generator's
  // cyclicity check disabled, cyclic-Gs cycles are replayed too (the graph
  // is still used to steer, so its contradictory constraints get force-
  // released at random).
  bool enable_pruner = true;
  bool enable_generator_check = true;
  // Injected faults, forwarded to the replay substrate and consulted by the
  // classification loop (robust/fault.hpp). nullptr = no faults. Not owned.
  const robust::FaultPlan* fault = nullptr;
  // Parallelism of the classification phases: 1 = serial (bit-identical to
  // the historical serial pipeline), 0 = hardware concurrency, N = N-way.
  // Any value produces identical reports — replay seeds are derived from the
  // serial seed chain regardless of how cycles are scheduled (DESIGN.md §10).
  int jobs = 1;
};

struct WolfReport {
  bool trace_recorded = false;  // false if every recording run deadlocked
  Detection detection;
  std::vector<CycleReport> cycles;
  std::vector<DefectReport> defects;
  PhaseTimings timings;
  // The raw span tree timings were computed from; feeds obs::RunMetrics
  // (core/metrics.hpp) and the --metrics-out report.
  std::vector<obs::SpanRecord> spans;
  double avg_gs_vertices = 0;  // over generated (non-pruned) cycles
  int jobs_used = 1;           // effective classification parallelism

  // Resource-governed streaming extras (core/governor.hpp), populated only
  // by analyze_reader_governed: per-window reports plus the run-level
  // verdict. When governor.coverage_complete is false the detection —
  // and therefore everything classified from it — may be missing defects,
  // and report writers must say so (the same honesty contract as
  // Detection::truncated).
  bool governed = false;
  std::vector<WindowReport> windows;
  GovernorVerdict governor;

  int count_cycles(Classification c) const;
  int count_defects(Classification c) const;
  int false_positive_cycles() const;
  int false_positive_defects() const;

  std::string summary(const SiteTable& sites) const;
};

// Records a trace of `program` and runs the full pipeline on it.
WolfReport run_wolf(const sim::Program& program, const WolfOptions& options);

// Runs the pipeline on a pre-recorded trace (the record phase is skipped).
WolfReport analyze_trace(const sim::Program& program, const Trace& trace,
                         const WolfOptions& options);

class Session;  // wolf.hpp — the unified online-analysis facade

// Runs the pipeline on a trace streamed from `reader` through an open
// wolf::Session: the session ingests (pipelined when its jobs say so) and
// finishes inside the "phase/detect" span, then classification runs over
// the resulting detection. Governed sessions land their window reports and
// verdict in the report. This is the one streaming entry point — the CLI
// and both deprecated wrappers below route through it.
WolfReport analyze_session(const sim::Program& program, Session& session,
                           TraceReader& reader, const WolfOptions& options);

// DEPRECATED: thin wrapper — opens an ungoverned Session over
// options.detector and calls analyze_session. Removal note in DESIGN.md
// §18. Produces the same report as analyze_trace over the equivalent
// materialized trace; a mid-stream reader failure (reader.ok() false
// afterwards) analyzes the prefix delivered.
WolfReport analyze_reader(const sim::Program& program, TraceReader& reader,
                          const WolfOptions& options);

// DEPRECATED: thin wrapper — opens a governed Session (governor.detector
// and governor.fault overridden from `options`, the pipeline's one source
// of truth) and calls analyze_session. Removal note in DESIGN.md §18. With
// no budget, no deadline and no faults the detection is bit-identical to
// analyze_reader's.
WolfReport analyze_reader_governed(const sim::Program& program,
                                   TraceReader& reader,
                                   const WolfOptions& options,
                                   const GovernorOptions& governor);

// Classifies one detected cycle (prune → generate → replay); exposed for
// targeted tests and the comparison harnesses.
CycleReport classify_cycle(const sim::Program& program,
                           const Detection& detection, std::size_t cycle_index,
                           const WolfOptions& options);

}  // namespace wolf
