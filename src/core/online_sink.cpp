#include "core/online_sink.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace wolf {

void OnlineAnalysisSink::on_event(Event e) {
  e.seq = next_seq_++;
  clocks_.apply(e);
  switch (e.kind) {
    case EventKind::kLockAcquire: {
      auto& stack = held_[e.thread];
      LockTuple tuple;
      tuple.thread = e.thread;
      tuple.lock = e.lock;
      tuple.tau = clocks_.timestamp(e.thread);
      tuple.trace_pos = e.seq;
      for (const auto& [l, idx] : stack) {
        tuple.lockset.push_back(l);
        tuple.context.push_back(idx);
      }
      tuple.context.push_back(e.index());
      dep_.tuples.push_back(std::move(tuple));
      stack.emplace_back(e.lock, e.index());
      break;
    }
    case EventKind::kLockRelease: {
      auto& stack = held_[e.thread];
      auto it =
          std::find_if(stack.rbegin(), stack.rend(),
                       [&](const auto& h) { return h.first == e.lock; });
      WOLF_CHECK_MSG(it != stack.rend(), "online sink: release of lock "
                                             << e.lock << " not held by t"
                                             << e.thread);
      stack.erase(std::next(it).base());
      break;
    }
    default:
      break;
  }
}

LockDependency OnlineAnalysisSink::take_dependency() {
  // Deduplicate exactly as LockDependency::from_trace does.
  std::map<std::tuple<ThreadId, LockId, std::vector<SiteId>>, std::size_t>
      seen;
  dep_.unique.clear();
  for (std::size_t i = 0; i < dep_.tuples.size(); ++i) {
    const LockTuple& t = dep_.tuples[i];
    std::vector<SiteId> sites;
    sites.reserve(t.context.size());
    for (const ExecIndex& idx : t.context) sites.push_back(idx.site);
    auto key = std::make_tuple(t.thread, t.lock, std::move(sites));
    if (seen.emplace(std::move(key), i).second) dep_.unique.push_back(i);
  }
  LockDependency out = std::move(dep_);
  dep_ = LockDependency{};
  return out;
}

void OnlineAnalysisSink::clear() {
  dep_ = LockDependency{};
  clocks_ = ClockTracker{};
  held_.clear();
  next_seq_ = 0;
}

}  // namespace wolf
