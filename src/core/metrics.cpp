#include "core/metrics.hpp"

#include <algorithm>

namespace wolf {

const char* funnel_outcome(const CycleReport& cycle) {
  if (cycle.degraded()) return "error";
  switch (cycle.classification) {
    case Classification::kFalseByPruner:
      return "pruned";
    case Classification::kFalseByGenerator:
      return "infeasible";
    case Classification::kReproduced:
      return "confirmed";
    case Classification::kUnknown:
      return "unconfirmed";
  }
  return "unconfirmed";
}

namespace {

void append_funnel(obs::RunMetrics& m, const WolfReport& report,
                   std::uint64_t run) {
  for (const CycleReport& cycle : report.cycles) {
    obs::FunnelEntry entry;
    entry.run = run;
    entry.cycle = cycle.cycle_index;
    entry.outcome = funnel_outcome(cycle);
    entry.degraded = cycle.degraded();
    m.funnel.push_back(std::move(entry));
  }
}

}  // namespace

obs::RunMetrics collect_metrics(const WolfReport& report) {
  obs::RunMetrics m;
  m.tool = "wolf";
  m.jobs = report.jobs_used;
  m.spans = report.spans;
  append_funnel(m, report, 0);
  return m;
}

obs::RunMetrics collect_metrics(const MultiRunReport& report) {
  obs::RunMetrics m;
  m.tool = "wolf-multi";
  obs::SpanId next_id = 0;
  for (std::size_t r = 0; r < report.runs.size(); ++r) {
    const WolfReport& run = report.runs[r];
    m.jobs = std::max(m.jobs, run.jobs_used);

    // Synthetic per-run root; the run's own spans hang off it with their
    // ids shifted into the merged space.
    obs::SpanRecord root;
    root.id = next_id;
    root.parent = obs::kNoSpan;
    root.name = "run";
    root.tag = r;
    const obs::SpanId base = next_id + 1;
    double start = 0, end = 0;
    bool any = false;
    m.spans.push_back(root);
    const std::size_t root_slot = m.spans.size() - 1;
    for (const obs::SpanRecord& s : run.spans) {
      obs::SpanRecord shifted = s;
      shifted.id = base + s.id;
      shifted.parent =
          s.parent == obs::kNoSpan ? root.id : base + s.parent;
      if (!any || shifted.start_seconds < start) start = shifted.start_seconds;
      end = std::max(end, shifted.start_seconds + shifted.duration_seconds);
      any = true;
      m.spans.push_back(std::move(shifted));
    }
    if (any) {
      m.spans[root_slot].start_seconds = start;
      m.spans[root_slot].duration_seconds = end - start;
    }
    next_id = base + static_cast<obs::SpanId>(run.spans.size());

    append_funnel(m, run, r);
  }
  return m;
}

}  // namespace wolf
