#include "core/report_writer.hpp"

#include <sstream>

#include "core/ranking.hpp"

namespace wolf {

namespace {

std::string signature_text(const DefectSignature& signature,
                           const SiteTable& sites) {
  std::ostringstream os;
  for (std::size_t i = 0; i < signature.size(); ++i) {
    if (i != 0) os << " / ";
    os << '`' << sites.name(signature[i]) << '`';
  }
  return os.str();
}

}  // namespace

std::string truncation_message(const Detection& detection) {
  if (!detection.truncated) return std::string();
  std::ostringstream os;
  os << "cycle enumeration stopped at --max-cycles=" << detection.cycle_cap
     << "; more potential deadlocks may exist";
  return os.str();
}

std::string degradation_message(const GovernorVerdict& verdict) {
  if (!verdict.degraded()) return std::string();
  std::ostringstream os;
  if (!verdict.coverage_complete) {
    os << "governed detection is INCOMPLETE — ";
    if (verdict.tuples_evicted > 0)
      os << verdict.tuples_evicted
         << " dependency tuples were evicted under the memory budget";
    if (verdict.tuples_evicted > 0 && verdict.detection_faults > 0) os << " and ";
    if (verdict.detection_faults > 0)
      os << verdict.detection_faults << " detection fault(s) occurred";
    os << "; absence of a defect below is not evidence of absence";
  } else {
    os << "governed detection degraded in " << verdict.degraded_windows
       << " of " << verdict.windows
       << " window(s) (final level " << to_string(verdict.final_level)
       << ") but retained full coverage";
  }
  return os.str();
}

std::string write_markdown_report(const WolfReport& report,
                                  const SiteTable& sites,
                                  const ReportWriterOptions& options) {
  std::ostringstream os;
  os << "# " << options.title << "\n\n";

  if (!report.trace_recorded) {
    os << "**No completed execution could be recorded** — every recording "
          "run deadlocked. The program deadlocks almost deterministically; "
          "run it under the runtime's wait-for-graph detector instead.\n";
    return os.str();
  }

  os << "## Summary\n\n";
  os << "| Metric | Count |\n|---|---|\n";
  os << "| Potential deadlock cycles | " << report.cycles.size() << " |\n";
  os << "| Source-location defects | " << report.defects.size() << " |\n";
  os << "| Confirmed real (reproduced) | "
     << report.count_defects(Classification::kReproduced) << " |\n";
  os << "| False positives (Pruner) | "
     << report.count_defects(Classification::kFalseByPruner) << " |\n";
  os << "| False positives (Generator) | "
     << report.count_defects(Classification::kFalseByGenerator) << " |\n";
  os << "| Left for manual analysis | "
     << report.count_defects(Classification::kUnknown) << " |\n\n";

  if (report.detection.truncated) {
    os << "> **Warning:** " << truncation_message(report.detection)
       << ". Re-run with a larger `--max-cycles` for exhaustive "
          "enumeration.\n\n";
  }

  if (report.governed) {
    const std::string degraded = degradation_message(report.governor);
    if (!degraded.empty()) os << "> **Warning:** " << degraded << ".\n\n";
    os << "## Governed streaming\n\n";
    os << report.governor.summary() << "\n\n";
    if (!report.governor.notes.empty()) {
      for (const std::string& note : report.governor.notes)
        os << "- " << note << "\n";
      os << '\n';
    }
  }

  if (options.include_ranking && !report.defects.empty()) {
    os << "## Defects, most actionable first\n\n";
    int position = 1;
    for (const RankedDefect& r : rank_defects(report)) {
      const DefectReport& d = report.defects[r.defect_index];
      os << position++ << ". " << signature_text(d.signature, sites)
         << " — **" << to_string(d.classification) << "** ("
         << d.cycle_indices.size() << " dynamic cycle(s))\n";
    }
    os << '\n';
  }

  if (options.include_cycles && !report.cycles.empty()) {
    os << "## Cycle detail\n\n";
    os << "| # | Classification | |Vs| | Replay attempts | Hits | "
          "Wrong-site deadlocks |\n|---|---|---|---|---|---|\n";
    for (const CycleReport& c : report.cycles) {
      os << "| " << c.cycle_index << " | " << to_string(c.classification)
         << " | " << c.gs_vertices << " | " << c.replay_stats.attempts
         << " | " << c.replay_stats.hits << " | "
         << c.replay_stats.other_deadlocks << " |\n";
    }
    os << '\n';
  }

  if (options.include_timings) {
    os << "## Phase timings\n\n";
    auto ms = [](double seconds) {
      std::ostringstream o;
      o << seconds * 1e3 << " ms";
      return o.str();
    };
    os << "| Phase | Time |\n|---|---|\n";
    os << "| Record | " << ms(report.timings.record_seconds) << " |\n";
    os << "| Detect (D_σ + cycles) | " << ms(report.timings.detect_seconds)
       << " |\n";
    os << "| Prune | " << ms(report.timings.prune_seconds) << " |\n";
    os << "| Generate Gs | " << ms(report.timings.generate_seconds) << " |\n";
    os << "| Replay | " << ms(report.timings.replay_seconds) << " |\n";
  }
  return os.str();
}

}  // namespace wolf
