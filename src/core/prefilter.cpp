#include "core/prefilter.hpp"

#include <algorithm>

#include "obs/counters.hpp"
#include "support/check.hpp"

namespace wolf {

namespace {
const obs::Counter kEdgesCounter("prefilter.edges");
const obs::Counter kChecksCounter("prefilter.checks");
const obs::Counter kExpiriesCounter("prefilter.edge_expiries");
}  // namespace

GuardMask lockset_mask(const std::vector<LockId>& lockset) {
  GuardMask mask;
  for (LockId l : lockset)
    mask.set(static_cast<std::size_t>(static_cast<std::uint32_t>(l)));
  return mask;
}

int LockGraph::intern(LockId lock) {
  auto [it, inserted] = lock_ids_.emplace(lock, static_cast<int>(locks_.size()));
  if (inserted) {
    locks_.push_back(lock);
    out_.emplace_back();
    scc_.add_node();  // dense node ids stay aligned with locks_
  }
  return it->second;
}

void LockGraph::on_tuple(const LockTuple& tuple) {
  if (tuple.lockset.empty()) return;  // top-of-stack acquisitions add no edge
  const int to = intern(tuple.lock);
  const GuardMask guards = lockset_mask(tuple.lockset);
  scc_.mark_dirty(to);
  for (LockId held : tuple.lockset) {
    const int from = intern(held);
    scc_.mark_dirty(from);
    std::vector<Edge>& edges = out_[static_cast<std::size_t>(from)];
    auto it = std::find_if(edges.begin(), edges.end(),
                           [&](const Edge& e) { return e.to == to; });
    if (it == edges.end()) {
      Edge e;
      e.to = to;
      e.refcount = 1;
      e.first_thread = tuple.thread;
      e.guard_mask = guards;
      edges.push_back(e);
      ++edge_count_;
      ++generation_;
      kEdgesCounter.add();
      scc_.add_edge(from, to);
      continue;
    }
    // Existing edge: count the contributor, widen the thread set, narrow the
    // guard intersection. Only changes that could flip the verdict bump the
    // generation; the dirty marks above are unconditional because a re-fed
    // edge can still carry a brand-new canonical tuple.
    ++it->refcount;
    if (!it->multi_thread && it->first_thread != tuple.thread) {
      it->multi_thread = true;
      ++generation_;
    }
    GuardMask narrowed = it->guard_mask;
    narrowed &= guards;
    if (narrowed != it->guard_mask) {
      it->guard_mask = narrowed;
      ++generation_;
    }
  }
}

void LockGraph::on_tuple_removed(const LockTuple& tuple) {
  if (tuple.lockset.empty()) return;
  auto to_it = lock_ids_.find(tuple.lock);
  WOLF_CHECK_MSG(to_it != lock_ids_.end(),
                 "on_tuple_removed: unknown request lock " << tuple.lock);
  const int to = to_it->second;
  for (LockId held : tuple.lockset) {
    auto from_it = lock_ids_.find(held);
    WOLF_CHECK_MSG(from_it != lock_ids_.end(),
                   "on_tuple_removed: unknown held lock " << held);
    const int from = from_it->second;
    std::vector<Edge>& edges = out_[static_cast<std::size_t>(from)];
    auto it = std::find_if(edges.begin(), edges.end(),
                           [&](const Edge& e) { return e.to == to; });
    WOLF_CHECK_MSG(it != edges.end() && it->refcount > 0,
                   "on_tuple_removed: edge " << held << "->" << tuple.lock
                                             << " has no live contributor");
    if (--it->refcount > 0) continue;  // survivors keep (stale, sound) masks
    edges.erase(it);
    --edge_count_;
    ++generation_;
    kExpiriesCounter.add();
    scc_.remove_edge(from, to);
    // An expiry can only shrink the component's cycle set, but the cached
    // verdict may now be stale-suspicious; mark so it gets re-evaluated.
    scc_.mark_dirty(from);
    scc_.mark_dirty(to);
  }
}

bool LockGraph::evaluate(int comp) const {
  const std::vector<DynamicScc::Node>& mem = scc_.members(comp);
  // A suspicious SCC spans >= 2 locks, its edges come from >= 2 distinct
  // threads, and no lock is held by every contributing tuple of every
  // internal edge (see header for why each test is sound).
  if (mem.size() < 2) return false;
  ThreadId first_thread = kInvalidThread;
  bool multi_thread = false;
  GuardMask common = GuardMask::all();
  for (DynamicScc::Node v : mem) {
    for (const Edge& e : out_[static_cast<std::size_t>(v)]) {
      if (scc_.component_of(e.to) != comp) continue;
      common &= e.guard_mask;
      if (e.multi_thread) {
        multi_thread = true;
      } else if (first_thread == kInvalidThread) {
        first_thread = e.first_thread;
      } else if (first_thread != e.first_thread) {
        multi_thread = true;
      }
    }
  }
  return multi_thread && !common.any();
}

void LockGraph::refresh_verdicts() const {
  if (!scc_.has_dirty()) return;
  kChecksCounter.add();
  // Force pending lazy splits to apply (they append their own dirty marks)
  // before walking the mark list.
  const std::size_t capacity = scc_.component_capacity();
  comp_suspicious_.resize(capacity, 0);
  std::vector<int> done;
  for (DynamicScc::Node v : scc_.dirty_nodes()) {
    const int c = scc_.component_of(v);
    if (std::find(done.begin(), done.end(), c) != done.end()) continue;
    done.push_back(c);
    comp_suspicious_[static_cast<std::size_t>(c)] = evaluate(c) ? 1 : 0;
  }
  verdict_ = false;
  verdict_scc_count_ = 0;
  for (std::size_t c = 0; c < capacity; ++c) {
    if (!comp_suspicious_[c]) continue;
    if (!scc_.component_alive(static_cast<int>(c))) continue;
    verdict_ = true;
    ++verdict_scc_count_;
  }
}

bool LockGraph::suspicious() const {
  refresh_verdicts();
  return verdict_;
}

std::size_t LockGraph::suspicious_scc_count() const {
  refresh_verdicts();
  return verdict_scc_count_;
}

std::vector<std::vector<LockId>> LockGraph::drain_dirty_suspicious_components() {
  refresh_verdicts();
  std::vector<std::vector<LockId>> result;
  for (int comp : scc_.drain_dirty()) {
    if (!comp_suspicious_[static_cast<std::size_t>(comp)]) continue;
    std::vector<LockId> locks;
    const auto& members = scc_.members(comp);
    locks.reserve(members.size());
    for (DynamicScc::Node v : members)
      locks.push_back(locks_[static_cast<std::size_t>(v)]);
    result.push_back(std::move(locks));
  }
  return result;
}

std::vector<LockId> LockGraph::drain_dirty_suspicious_locks() {
  std::vector<LockId> result;
  for (std::vector<LockId>& comp : drain_dirty_suspicious_components())
    result.insert(result.end(), comp.begin(), comp.end());
  return result;
}

bool LockGraph::has_dirty() const { return scc_.has_dirty(); }

void LockGraph::clear() {
  lock_ids_.clear();
  locks_.clear();
  out_.clear();
  edge_count_ = 0;
  generation_ = 0;
  scc_.clear();
  comp_suspicious_.clear();
  verdict_ = false;
  verdict_scc_count_ = 0;
}

}  // namespace wolf
