#include "core/prefilter.hpp"

#include <algorithm>

#include "obs/counters.hpp"

namespace wolf {

namespace {
const obs::Counter kEdgesCounter("prefilter.edges");
const obs::Counter kChecksCounter("prefilter.checks");
}  // namespace

GuardMask lockset_mask(const std::vector<LockId>& lockset) {
  GuardMask mask;
  for (LockId l : lockset)
    mask.set(static_cast<std::size_t>(static_cast<std::uint32_t>(l)));
  return mask;
}

int LockGraph::intern(LockId lock) {
  auto [it, inserted] = lock_ids_.emplace(lock, static_cast<int>(locks_.size()));
  if (inserted) {
    locks_.push_back(lock);
    out_.emplace_back();
  }
  return it->second;
}

void LockGraph::on_tuple(const LockTuple& tuple) {
  if (tuple.lockset.empty()) return;  // top-of-stack acquisitions add no edge
  const int to = intern(tuple.lock);
  const GuardMask guards = lockset_mask(tuple.lockset);
  for (LockId held : tuple.lockset) {
    const int from = intern(held);
    std::vector<Edge>& edges = out_[static_cast<std::size_t>(from)];
    auto it = std::find_if(edges.begin(), edges.end(),
                           [&](const Edge& e) { return e.to == to; });
    if (it == edges.end()) {
      Edge e;
      e.to = to;
      e.first_thread = tuple.thread;
      e.guard_mask = guards;
      edges.push_back(e);
      ++edge_count_;
      ++generation_;
      kEdgesCounter.add();
      continue;
    }
    // Existing edge: widen the thread set, narrow the guard intersection.
    // Only changes that could flip the verdict bump the generation.
    if (!it->multi_thread && it->first_thread != tuple.thread) {
      it->multi_thread = true;
      ++generation_;
    }
    GuardMask narrowed = it->guard_mask;
    narrowed &= guards;
    if (narrowed != it->guard_mask) {
      it->guard_mask = narrowed;
      ++generation_;
    }
  }
}

// Tarjan over the lock graph; an SCC is suspicious when it spans >= 2 locks,
// its edges come from >= 2 distinct threads, and no lock is held by every
// contributing tuple of every internal edge (see header for why each test is
// sound).
void LockGraph::recompute() const {
  kChecksCounter.add();
  verdict_generation_ = generation_;
  verdict_ = false;
  verdict_scc_count_ = 0;

  const int n = static_cast<int>(locks_.size());
  if (n == 0) return;
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  int next_index = 0;
  int comp_count = 0;

  // Iterative Tarjan: (node, next-edge-cursor) frames.
  std::vector<std::pair<int, std::size_t>> frames;
  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    frames.emplace_back(root, 0);
    while (!frames.empty()) {
      auto& [v, cursor] = frames.back();
      const auto vi = static_cast<std::size_t>(v);
      if (cursor == 0) {
        index[vi] = low[vi] = next_index++;
        stack.push_back(v);
        on_stack[vi] = true;
      }
      if (cursor < out_[vi].size()) {
        const int w = out_[vi][cursor++].to;
        const auto wi = static_cast<std::size_t>(w);
        if (index[wi] == -1) {
          frames.emplace_back(w, 0);
        } else if (on_stack[wi]) {
          low[vi] = std::min(low[vi], index[wi]);
        }
        continue;
      }
      if (low[vi] == index[vi]) {
        for (;;) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          comp[static_cast<std::size_t>(w)] = comp_count;
          if (w == v) break;
        }
        ++comp_count;
      }
      frames.pop_back();
      if (!frames.empty()) {
        const auto& [parent, unused] = frames.back();
        const auto pi = static_cast<std::size_t>(parent);
        low[pi] = std::min(low[pi], low[vi]);
      }
    }
  }

  // Per-SCC refinement over the internal edges.
  std::vector<int> scc_size(static_cast<std::size_t>(comp_count), 0);
  for (int v = 0; v < n; ++v)
    ++scc_size[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])];
  struct SccInfo {
    ThreadId first_thread = kInvalidThread;
    bool multi_thread = false;
    GuardMask common_guards = GuardMask::all();
  };
  std::vector<SccInfo> info(static_cast<std::size_t>(comp_count));
  for (int v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const int c = comp[vi];
    if (scc_size[static_cast<std::size_t>(c)] < 2) continue;
    for (const Edge& e : out_[vi]) {
      if (comp[static_cast<std::size_t>(e.to)] != c) continue;
      SccInfo& s = info[static_cast<std::size_t>(c)];
      s.common_guards &= e.guard_mask;
      if (e.multi_thread) {
        s.multi_thread = true;
      } else if (s.first_thread == kInvalidThread) {
        s.first_thread = e.first_thread;
      } else if (s.first_thread != e.first_thread) {
        s.multi_thread = true;
      }
    }
  }
  for (int c = 0; c < comp_count; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    if (scc_size[ci] < 2) continue;
    if (!info[ci].multi_thread) continue;
    if (info[ci].common_guards.any()) continue;
    verdict_ = true;
    ++verdict_scc_count_;
  }
}

bool LockGraph::suspicious() const {
  if (verdict_generation_ != generation_ || generation_ == 0) recompute();
  return verdict_;
}

std::size_t LockGraph::suspicious_scc_count() const {
  if (verdict_generation_ != generation_ || generation_ == 0) recompute();
  return verdict_scc_count_;
}

void LockGraph::clear() {
  lock_ids_.clear();
  locks_.clear();
  out_.clear();
  edge_count_ = 0;
  generation_ = 0;
  verdict_generation_ = 0;
  verdict_ = false;
  verdict_scc_count_ = 0;
}

}  // namespace wolf
