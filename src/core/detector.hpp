// Potential-deadlock cycle detection over D_σ — the iGoodLock-style base
// detector (§3.1) extended with the clock data of §3.2.
//
// A potential deadlock θ = {η1 … ηn} satisfies:
//   * lock(ηi) ∈ lockset(ηi+1) cyclically — each thread requests a lock held
//     by the next;
//   * lockset(ηi) ∩ lockset(ηj) = ∅ for i ≠ j — no guard lock protects the
//     cycle; and
//   * thread(ηi) pairwise distinct — each thread contributes one edge.
//
// Enumeration runs over the deduplicated tuple view; cycles are emitted in a
// canonical rotation (minimal thread id first) so each cycle appears once.
// Defects group cycles by the unordered multiset of deadlocking-acquisition
// source sites — the paper's §4.3 counting, under which a programmer fixes
// one source location once.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "clock/clock_tracker.hpp"
#include "core/lock_dependency.hpp"
#include "trace/event.hpp"
#include "trace/trace_reader.hpp"

namespace wolf {

struct PotentialDeadlock {
  // Indices into LockDependency::tuples, in cycle order: tuple i requests the
  // lock held by tuple (i+1) mod n.
  std::vector<std::size_t> tuple_idx;

  std::string to_string(const LockDependency& dep) const;
};

// Unordered source-location signature of a cycle's deadlocking acquisitions.
using DefectSignature = std::vector<SiteId>;  // sorted

DefectSignature signature_of(const PotentialDeadlock& cycle,
                             const LockDependency& dep);

struct Defect {
  DefectSignature signature;
  std::vector<std::size_t> cycle_idx;  // indices into Detection::cycles
};

// Which cycle-enumeration engine runs (core/cycle_engine.hpp). Both produce
// bit-identical Detections; the reference engine exists for differential
// testing and as the executable specification of the canonical cycle order.
enum class CycleEngine : std::uint8_t {
  kReference,  // the original iGoodLock-style DFS over all canonical tuples
  kScc,        // SCC-partitioned bitset DFS, optionally parallel (default)
  kArenaScc,   // kScc's algorithm over arena-allocated SoA/CSR node state
               // (support/arena.hpp) — fewer allocations, better locality
};

// Deprecated as a public entry type: prefer wolf::Config::detector
// (wolf.hpp). Kept for one release as the underlying section type.
struct DetectorOptions {
  int max_cycle_length = 5;  // threads per cycle
  // Safety valve for pathological traces; enumeration stops after this many
  // cycles (never hit by the workloads in this repo) and the Detection is
  // flagged truncated.
  std::size_t max_cycles = 100000;
  // MagicFuzzer-style fixpoint reduction of the tuple set before cycle
  // enumeration (core/magic_prune.hpp). Cycle-set preserving.
  bool magic_prune = false;
  // Enumeration engine; see CycleEngine.
  CycleEngine engine = CycleEngine::kScc;
  // Enumeration parallelism across canonical start tuples (SCC engine only):
  // 1 = serial, 0 = hardware concurrency, N = N-way. Cycles merge in
  // canonical start-tuple order, so the Detection is bit-identical at every
  // level.
  int jobs = 1;
  // Folds the Pruner's (S,J) overlap test (Algorithm 2) into the DFS as a
  // branch cut: a chain containing a thread pair that provably cannot
  // overlap is abandoned before it spawns cycles, so the emitted cycle set
  // equals the post-prune() survivors instead of the full enumeration.
  // SCC engine only; changes Detection::cycles by design (default off).
  bool clock_prune_during_search = false;
};

struct Detection {
  LockDependency dep;
  ClockTracker clocks;  // final τ/V state of the recorded execution
  std::vector<PotentialDeadlock> cycles;
  std::vector<Defect> defects;
  // True when enumeration stopped at DetectorOptions::max_cycles — the
  // cycle and defect lists may be incomplete. cycle_cap records the cap
  // that was hit (0 when not truncated).
  bool truncated = false;
  std::size_t cycle_cap = 0;
};

// Full detection pass over a recorded trace: rebuilds D_σ + clocks,
// enumerates cycles, groups defects. Delegates to detect_reader over a
// VectorTraceReader, so the materialized and streaming paths are the same
// code and produce bit-identical Detections.
Detection detect(const Trace& trace, const DetectorOptions& options = {});

// Detection fed block-by-block from a TraceReader — e.g. a
// StreamTraceReader over a trace file — without ever materializing the
// whole event vector. On a defective stream (reader.ok() false afterwards)
// the Detection reflects the events delivered before the failure; callers
// that need strictness must check the reader.
Detection detect_reader(TraceReader& reader,
                        const DetectorOptions& options = {});

// The incremental core of detect_reader: feed blocks (or single events) as
// they arrive, then finish() once. D_σ and the clocks advance online
// (Algorithm 1 order); cycle enumeration and defect grouping — which need
// the complete relation — run at finish().
class StreamingDetector {
 public:
  explicit StreamingDetector(const DetectorOptions& options = {})
      : options_(options) {}

  void add(const Event& e) { builder_.add(e); }
  void add_block(const std::vector<Event>& events) {
    for (const Event& e : events) builder_.add(e);
  }

  std::size_t events_seen() const { return builder_.events_seen(); }

  // Enumerates cycles and groups defects over everything added so far, and
  // returns the completed Detection. Leaves the detector cleared.
  Detection finish();

 private:
  DetectorOptions options_;
  LockDependencyBuilder builder_;
};

// Shared back half of StreamingDetector::finish and the governed detector
// (core/governor.hpp): enumerates cycles and groups defects over an
// already-built relation (`unique` must be computed, e.g. by
// LockDependencyBuilder::take_dependency or snapshot_dependency).
Detection finish_detection(LockDependency dep, ClockTracker clocks,
                           const DetectorOptions& options);

// Cycle enumeration only (used by tests that build D_σ by hand). Dispatches
// on options.engine; truncation and clock-aware variants live in
// core/cycle_engine.hpp.
std::vector<PotentialDeadlock> enumerate_cycles(
    const LockDependency& dep, const DetectorOptions& options = {});

// Groups cycles into defects by signature, preserving first-seen order.
std::vector<Defect> group_defects(const std::vector<PotentialDeadlock>& cycles,
                                  const LockDependency& dep);

}  // namespace wolf
