// wolf::Session — the unified online-analysis facade (wolf.hpp).
//
// The implementation is deliberately thin: governed sessions delegate to
// GovernedStreamingDetector, ungoverned ones to StreamingDetector, and
// ingest() owns the decode→ingest pipelining that detect_reader_governed
// and analyze_reader used to duplicate. The deprecated shims at the bottom
// route through a Session so the historical entry points and the new facade
// cannot drift apart — they *are* the same code now.

#include <cassert>
#include <memory>
#include <stdexcept>
#include <utility>

#include "support/thread_pool.hpp"
#include "trace/trace_reader.hpp"
#include "wolf.hpp"

namespace wolf {

namespace {

// Live-cycle collection state shared between the Session and the subscriber
// closure handed to the governor (which copies its options, so the closure
// must reference stable storage — hence the shared_ptr).
struct LiveCollector {
  CycleSubscriber user;  // chained push-mode subscriber (may be empty)
  std::vector<SessionCycle> pending;
};

}  // namespace

struct Session::Impl {
  bool governed = false;
  bool finished = false;
  int jobs = 1;
  std::size_t pipeline_depth = 0;

  // Governed mode.
  std::unique_ptr<GovernedStreamingDetector> gov;
  std::shared_ptr<LiveCollector> live;  // non-null iff collecting for poll()

  // Ungoverned mode. Poisoning is handled here (the governor has its own):
  // the builder commits its tuple before mutating held-lock state, so after
  // a throw the store is consistent and finish() analyzes the prefix.
  std::unique_ptr<StreamingDetector> stream;
  bool poisoned = false;
  std::string poison_note;

  GovernedPipelineStats pipeline;
};

Session::Session() : impl_(std::make_unique<Impl>()) {}
Session::Session(Session&& other) noexcept = default;
Session& Session::operator=(Session&& other) noexcept = default;
Session::~Session() = default;

Session Session::open(const Config& config) {
  std::string fatal;
  for (const ConfigIssue& issue : config.validate()) {
    if (!issue.fatal) continue;
    if (!fatal.empty()) fatal += "; ";
    fatal += issue.message;
  }
  if (!fatal.empty())
    throw std::invalid_argument("wolf::Session::open: " + fatal);
  if (config.governed())
    return open_governed(config.governor_options(), config.live);
  const WolfOptions o = config.wolf_options();
  return open_streaming(o.detector, o.jobs, config.pipeline_depth);
}

Session Session::open_streaming(const DetectorOptions& detector, int jobs,
                                std::size_t pipeline_depth) {
  Session s;
  s.impl_->governed = false;
  s.impl_->jobs = jobs;
  s.impl_->pipeline_depth = pipeline_depth;
  s.impl_->stream = std::make_unique<StreamingDetector>(detector);
  return s;
}

Session Session::open_governed(const GovernorOptions& options,
                               bool collect_live) {
  Session s;
  s.impl_->governed = true;
  s.impl_->jobs = options.jobs;
  s.impl_->pipeline_depth = options.pipeline_depth;
  GovernorOptions opts = options;
  if (collect_live) {
    auto live = std::make_shared<LiveCollector>();
    live->user = options.on_cycle;
    s.impl_->live = live;
    // Collect a copy for poll(), then chain the push-mode subscriber. A
    // throwing user callback still propagates to the governor's containment
    // exactly as it would unwrapped, so verdicts are unchanged.
    opts.on_cycle = [live](const LiveCycle& lc) {
      live->pending.push_back(
          SessionCycle{lc.window, lc.sequence, lc.cycle->to_string(*lc.dep)});
      if (live->user) live->user(lc);
    };
  }
  s.impl_->gov = std::make_unique<GovernedStreamingDetector>(opts);
  return s;
}

bool Session::feed(const Event& e) {
  assert(!impl_->finished && "feed() after finish()");
  if (impl_->finished) return false;
  if (impl_->governed) {
    impl_->gov->add(e);
    return !impl_->gov->poisoned();
  }
  if (impl_->poisoned) return false;
  try {
    impl_->stream->add(e);
  } catch (const std::exception& ex) {
    impl_->poisoned = true;
    impl_->poison_note = ex.what();
    return false;
  }
  return true;
}

bool Session::feed(const std::vector<Event>& events) {
  assert(!impl_->finished && "feed() after finish()");
  if (impl_->finished) return false;
  if (impl_->governed) {
    // Delegate whole blocks: identical to the historical add_block drain.
    impl_->gov->add_block(events);
    return !impl_->gov->poisoned();
  }
  for (const Event& e : events)
    if (!feed(e)) return false;
  return true;
}

void Session::ingest(TraceReader& reader) {
  const int jobs =
      impl_->jobs <= 0 ? ThreadPool::hardware_jobs() : impl_->jobs;
  std::vector<Event> block;
  if (jobs > 1) {
    // Stage pipelining (DESIGN.md §17): decode on a producer thread, ingest
    // here. The bounded ring preserves block order and contents — identical
    // event delivery to the serial drain — and its backpressure is what
    // keeps per-session memory flat when the producer outruns detection.
    const std::size_t depth =
        impl_->pipeline_depth != 0
            ? impl_->pipeline_depth
            : std::max<std::size_t>(4, 2 * static_cast<std::size_t>(jobs));
    PipelinedTraceReader piped(reader, depth);
    while (piped.next_block(block)) feed(block);
    const PipelinedTraceReader::Stats stats = piped.stats();
    impl_->pipeline.used = true;
    impl_->pipeline.push_stalls += stats.push_stalls;
    impl_->pipeline.pop_stalls += stats.pop_stalls;
    impl_->pipeline.push_stall_seconds += stats.push_stall_seconds;
    impl_->pipeline.pop_stall_seconds += stats.pop_stall_seconds;
    impl_->pipeline.decode_seconds += stats.decode_seconds;
  } else {
    while (reader.next_block(block)) feed(block);
  }
}

std::vector<SessionCycle> Session::poll() {
  std::vector<SessionCycle> out;
  if (impl_->live) out.swap(impl_->live->pending);
  return out;
}

bool Session::governed() const { return impl_->governed; }

bool Session::poisoned() const {
  return impl_->governed ? impl_->gov->poisoned() : impl_->poisoned;
}

std::size_t Session::events_seen() const {
  return impl_->governed ? impl_->gov->events_seen()
                         : impl_->stream->events_seen();
}

std::size_t Session::windows_closed() const {
  return impl_->governed ? impl_->gov->windows().size() : 0;
}

DetectionLevel Session::level() const {
  return impl_->governed ? impl_->gov->level() : DetectionLevel::kFullScc;
}

std::size_t Session::cycles_surfaced_live() const {
  return impl_->governed ? impl_->gov->cycles_surfaced_live() : 0;
}

Session::Verdict Session::finish() {
  assert(!impl_->finished && "finish() called twice");
  Verdict v;
  v.governed = impl_->governed;
  v.pipeline = impl_->pipeline;
  if (impl_->governed) {
    v.detection = impl_->gov->finish();
    v.windows = impl_->gov->windows();
    v.governor = impl_->gov->verdict();
  } else {
    // StreamingDetector::finish semantics preserved: a detection fault
    // propagates (analyze_reader never swallowed one). Poisoned prefixes
    // still finish — over the consistent prefix — with an honest verdict.
    v.detection = impl_->stream->finish();
    if (impl_->poisoned) {
      v.governor.coverage_complete = false;
      v.governor.notes.push_back(
          "malformed event rejected, later input ignored: " +
          impl_->poison_note);
    }
  }
  impl_->finished = true;
  return v;
}

// ---- deprecated shim (DESIGN.md §18) --------------------------------------

GovernedDetection detect_reader_governed(TraceReader& reader,
                                         const GovernorOptions& options) {
  Session session = Session::open_governed(options);
  session.ingest(reader);
  Session::Verdict v = session.finish();
  GovernedDetection out;
  out.detection = std::move(v.detection);
  out.windows = std::move(v.windows);
  out.verdict = std::move(v.governor);
  out.pipeline = v.pipeline;
  return out;
}

}  // namespace wolf
