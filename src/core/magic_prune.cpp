#include "core/magic_prune.hpp"

#include <set>

namespace wolf {

std::vector<std::size_t> magic_prune(const LockDependency& dep,
                                     MagicPruneStats* stats) {
  std::vector<std::size_t> alive = dep.unique;
  MagicPruneStats local;
  local.before = alive.size();

  bool changed = true;
  while (changed) {
    changed = false;
    ++local.iterations;

    // Locks held / requested by each thread's surviving tuples.
    std::set<std::pair<ThreadId, LockId>> held_by, requested_by;
    for (std::size_t i : alive) {
      const LockTuple& t = dep.tuples[i];
      requested_by.emplace(t.thread, t.lock);
      for (LockId l : t.lockset) held_by.emplace(t.thread, l);
    }
    auto held_by_other = [&](ThreadId t, LockId l) {
      for (const auto& [thread, lock] : held_by)
        if (lock == l && thread != t) return true;
      return false;
    };
    auto requested_by_other = [&](ThreadId t, LockId l) {
      for (const auto& [thread, lock] : requested_by)
        if (lock == l && thread != t) return true;
      return false;
    };

    std::vector<std::size_t> next;
    next.reserve(alive.size());
    for (std::size_t i : alive) {
      const LockTuple& t = dep.tuples[i];
      // Cycle membership needs: someone else holds what we request, and
      // someone else requests something we hold.
      bool outgoing = held_by_other(t.thread, t.lock);
      bool incoming = false;
      for (LockId l : t.lockset)
        incoming = incoming || requested_by_other(t.thread, l);
      if (outgoing && incoming) {
        next.push_back(i);
      } else {
        changed = true;
      }
    }
    alive.swap(next);
  }

  local.after = alive.size();
  if (stats != nullptr) *stats = local;
  return alive;
}

LockDependency with_magic_prune(LockDependency dep, MagicPruneStats* stats) {
  dep.unique = magic_prune(dep, stats);
  return dep;
}

}  // namespace wolf
