#include "core/multi.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "support/thread_pool.hpp"

namespace wolf {

namespace {

int alarm_level(Classification c) {
  switch (c) {
    case Classification::kReproduced:
      return 3;
    case Classification::kUnknown:
      return 2;
    case Classification::kFalseByGenerator:
      return 1;  // false on the observed path only
    case Classification::kFalseByPruner:
      return 0;  // false for every schedule of the observed start structure
  }
  return 0;
}

}  // namespace

bool overrides(Classification a, Classification b) {
  return alarm_level(a) > alarm_level(b);
}

int MultiRunReport::count(Classification c) const {
  int n = 0;
  for (const MergedDefect& d : defects)
    if (d.classification == c) ++n;
  return n;
}

MultiRunReport run_wolf_multi(const sim::Program& program,
                              const MultiRunOptions& options) {
  MultiRunReport report;
  if (options.runs <= 0) return report;

  // Split the parallelism budget: whole-pipeline runs fan out first, and
  // whatever is left over parallelizes each run's own classification.
  const int jobs =
      options.jobs <= 0 ? ThreadPool::hardware_jobs() : options.jobs;
  const int outer = std::min(jobs, options.runs);
  const int inner = std::max(1, jobs / outer);

  // Every run's seed depends only on the run index, so concurrent runs are
  // fully independent; finished reports land in their own slot.
  std::vector<WolfReport> run_reports(static_cast<std::size_t>(options.runs));
  ThreadPool pool(outer);
  pool.parallel_for_each(
      static_cast<std::size_t>(options.runs), [&](std::size_t run) {
        WolfOptions wolf_options = options.wolf;
        wolf_options.jobs = inner;
        wolf_options.seed =
            mix64(options.seed + static_cast<std::uint64_t>(run) * 0x9e37ULL);
        run_reports[run] = run_wolf(program, wolf_options);
      });

  // Deterministic merge in run order — identical to the serial loop this
  // replaces, regardless of which run finished first.
  std::map<DefectSignature, std::size_t> index;
  for (int run = 0; run < options.runs; ++run) {
    WolfReport& wolf_report = run_reports[static_cast<std::size_t>(run)];
    if (!wolf_report.trace_recorded) {
      report.runs.push_back(std::move(wolf_report));
      continue;
    }
    for (const DefectReport& d : wolf_report.defects) {
      auto [it, inserted] = index.emplace(d.signature, report.defects.size());
      if (inserted) {
        MergedDefect merged;
        merged.signature = d.signature;
        merged.classification = d.classification;
        merged.first_seen_run = run;
        merged.runs_detected = 1;
        report.defects.push_back(std::move(merged));
      } else {
        MergedDefect& merged = report.defects[it->second];
        ++merged.runs_detected;
        if (overrides(d.classification, merged.classification))
          merged.classification = d.classification;
      }
    }
    report.runs.push_back(std::move(wolf_report));
  }
  return report;
}

}  // namespace wolf
