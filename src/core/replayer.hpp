// Replayer — Algorithm 4.
//
// Re-executes the program on the same input, steering only the cycle's
// threads so that every dependency of the synchronization dependency graph
// Gs is satisfied. Implemented as a sim::ScheduleController so the identical
// logic drives both the virtual-thread scheduler and the OS-thread runtime:
//
//   * before a monitored thread's acquisition at execution index v: if v is
//     a Gs vertex with a cross-thread in-edge, the thread is paused;
//   * when an acquisition at v completes: every vertex that reaches v is
//     retired (this also handles instructions skipped by divergent control
//     flow) and then v itself, after which paused threads whose vertices
//     lost their last cross-thread in-edge are released;
//   * if nothing is runnable but paused threads remain, the substrate
//     force-releases one at random (Algorithm 4 lines 5–7).
//
// A trial is a *hit* when the re-execution deadlocks with acquisitions
// blocked at the same source locations as the potential deadlock (§4.2's hit
// definition).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/detector.hpp"
#include "core/generator.hpp"
#include "robust/retry.hpp"
#include "sim/controller.hpp"
#include "sim/scheduler.hpp"

namespace wolf {

class ReplayController final : public sim::ScheduleController {
 public:
  // `gs` is copied: each trial consumes its own graph.
  ReplayController(SyncDependencyGraph gs, std::set<ThreadId> monitored);

  bool before_lock(ThreadId t, const ExecIndex& idx, LockId lock) override;
  void on_event(const Event& e) override;
  std::vector<ThreadId> take_released() override;
  ThreadId force_release(const std::vector<ThreadId>& paused,
                         Rng& rng) override;

  // --- batch-replay introspection (core/batch_replay.hpp) ---

  // The pause decision before_lock would take, without mutating anything.
  // before_lock's answer depends only on monitored membership and the live
  // Gs in-edges of idx's vertex, so this predicts it exactly; the batch
  // multiplexer uses it to detect member divergence before committing.
  bool would_pause(ThreadId t, const ExecIndex& idx) const;
  // What take_released() would hand out, without consuming it.
  const std::vector<ThreadId>& pending_released() const { return released_; }
  // Drops a force-released thread's bookkeeping without choosing a victim —
  // the batch multiplexer picks one victim for all members and applies it
  // to each member via this hook.
  void forget_blocked(ThreadId t) { blocked_instr_.erase(t); }

  const SyncDependencyGraph& gs() const { return gs_; }

 private:
  void retire_ancestors(Digraph::Node v);
  void retire_vertex(Digraph::Node v);
  void scan_blocked();

  SyncDependencyGraph gs_;
  std::set<ThreadId> monitored_;
  // Algorithm 4's BlockedInstr: paused thread → the Gs vertex it waits on.
  std::map<ThreadId, Digraph::Node> blocked_instr_;
  std::vector<ThreadId> released_;
};

enum class ReplayOutcome : std::uint8_t {
  kReproduced,     // deadlocked at the exact source locations
  kOtherDeadlock,  // deadlocked, but elsewhere
  kNoDeadlock,     // ran to completion
  kStepLimit,      // aborted (step budget)
  kTimeout,        // aborted (wall-clock watchdog or injected stall)
};

const char* to_string(ReplayOutcome outcome);

struct ReplayTrial {
  ReplayOutcome outcome = ReplayOutcome::kNoDeadlock;
  sim::RunResult run;
};

// The source-location multiset a reproduction must block at.
std::vector<SiteId> expected_sites(const PotentialDeadlock& cycle,
                                   const LockDependency& dep);

// Classifies a finished run against the expected sites.
ReplayOutcome classify_run(const sim::RunResult& run,
                           const std::vector<SiteId>& expected);

// One replay trial of `cycle` on `program` under seed `seed`.
ReplayTrial replay_once(const sim::Program& program,
                        const PotentialDeadlock& cycle,
                        const LockDependency& dep,
                        const SyncDependencyGraph& gs, std::uint64_t seed,
                        std::uint64_t max_steps = 2'000'000,
                        const robust::FaultPlan* fault = nullptr);

// Deprecated as a public entry type: prefer wolf::Config::replay
// (wolf.hpp). Kept for one release as the underlying section type.
struct ReplayOptions {
  int attempts = 5;              // the paper's "pre-determined number"
  bool stop_on_first_hit = true;  // false for hit-rate measurements
  std::uint64_t seed = 1;
  std::uint64_t max_steps = 2'000'000;
  // Inter-trial backoff and per-trial wall-clock deadline (consumed by the
  // rt substrate's watchdog); retry.max_attempts is overridden by `attempts`.
  robust::RetryPolicy retry;
  // Injected faults forwarded to the substrate (drills and tests). Not owned.
  const robust::FaultPlan* fault = nullptr;
};

struct ReplayStats {
  int attempts = 0;
  int hits = 0;
  int other_deadlocks = 0;
  int no_deadlocks = 0;
  int step_limits = 0;
  int timeouts = 0;

  bool reproduced() const { return hits > 0; }
  double hit_rate() const {
    return attempts == 0 ? 0.0
                         : static_cast<double>(hits) / attempts;
  }
};

// Folds one finished trial into the stats (incrementing `attempts`); shared
// by every trial series (sim replay, rt replay, the fuzzer baseline).
void record_outcome(ReplayStats& stats, ReplayOutcome outcome);

ReplayStats replay(const sim::Program& program, const PotentialDeadlock& cycle,
                   const LockDependency& dep, const SyncDependencyGraph& gs,
                   const ReplayOptions& options);

}  // namespace wolf
