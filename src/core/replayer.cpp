#include "core/replayer.hpp"

#include <algorithm>

#include "obs/counters.hpp"
#include "robust/fault.hpp"
#include "support/check.hpp"

namespace wolf {

namespace {
const obs::Counter kPauses("replayer.pauses");
const obs::Counter kEnables("replayer.enables");
const obs::Counter kForcedReleases("replayer.forced_releases");
const obs::Counter kTrials("replayer.trials");
const obs::Counter kTimeouts("replayer.timeouts");
const obs::Counter kConfirmations("replayer.confirmations");
}  // namespace

ReplayController::ReplayController(SyncDependencyGraph gs,
                                   std::set<ThreadId> monitored)
    : gs_(std::move(gs)), monitored_(std::move(monitored)) {}

bool ReplayController::before_lock(ThreadId t, const ExecIndex& idx,
                                   LockId lock) {
  (void)lock;
  if (monitored_.count(t) == 0) return false;
  auto v = gs_.find(idx);
  if (!v.has_value()) return false;
  if (gs_.has_cross_thread_in_edge(*v)) {
    kPauses.add();
    blocked_instr_[t] = *v;
    return true;  // pause until the dependency is discharged
  }
  // Acquisition permitted: everything ordered before v has either executed
  // or been skipped (Algorithm 4 lines 22–23).
  retire_ancestors(*v);
  scan_blocked();
  return false;
}

bool ReplayController::would_pause(ThreadId t, const ExecIndex& idx) const {
  if (monitored_.count(t) == 0) return false;
  auto v = gs_.find(idx);
  if (!v.has_value()) return false;
  return gs_.has_cross_thread_in_edge(*v);
}

void ReplayController::retire_ancestors(Digraph::Node v) {
  if (!gs_.graph().alive(v)) return;
  for (Digraph::Node u : gs_.graph().ancestors(v)) gs_.remove_vertex(u);
}

void ReplayController::retire_vertex(Digraph::Node v) {
  gs_.remove_vertex(v);
}

void ReplayController::scan_blocked() {
  for (auto it = blocked_instr_.begin(); it != blocked_instr_.end();) {
    Digraph::Node a = it->second;
    if (!gs_.graph().alive(a) || !gs_.has_cross_thread_in_edge(a)) {
      released_.push_back(it->first);
      it = blocked_instr_.erase(it);
    } else {
      ++it;
    }
  }
}

void ReplayController::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::kLockAcquire: {
      if (monitored_.count(e.thread) == 0) break;
      auto v = gs_.find(e.index());
      if (!v.has_value()) break;
      // Bypassed (force-released) threads skip before_lock, so ancestors may
      // still be present; retire them along with v.
      retire_ancestors(*v);
      retire_vertex(*v);
      scan_blocked();
      break;
    }
    case EventKind::kThreadEnd: {
      if (monitored_.count(e.thread) == 0) break;
      // The thread terminated without reaching some of its Gs vertices
      // (divergent control flow): those acquisitions will never happen, so
      // drop them to let the remaining threads make progress.
      std::vector<Digraph::Node> stale;
      for (Digraph::Node n : gs_.graph().nodes())
        if (gs_.vertex(n).thread == e.thread) stale.push_back(n);
      for (Digraph::Node n : stale) gs_.remove_vertex(n);
      if (!stale.empty()) scan_blocked();
      break;
    }
    default:
      break;
  }
}

std::vector<ThreadId> ReplayController::take_released() {
  std::vector<ThreadId> out;
  out.swap(released_);
  kEnables.add(out.size());
  return out;
}

ThreadId ReplayController::force_release(const std::vector<ThreadId>& paused,
                                         Rng& rng) {
  kForcedReleases.add();
  ThreadId victim = paused[rng.index(paused)];
  blocked_instr_.erase(victim);
  return victim;
}

const char* to_string(ReplayOutcome outcome) {
  switch (outcome) {
    case ReplayOutcome::kReproduced:
      return "reproduced";
    case ReplayOutcome::kOtherDeadlock:
      return "other-deadlock";
    case ReplayOutcome::kNoDeadlock:
      return "no-deadlock";
    case ReplayOutcome::kStepLimit:
      return "step-limit";
    case ReplayOutcome::kTimeout:
      return "timeout";
  }
  return "?";
}

std::vector<SiteId> expected_sites(const PotentialDeadlock& cycle,
                                   const LockDependency& dep) {
  std::vector<SiteId> sites;
  sites.reserve(cycle.tuple_idx.size());
  for (std::size_t i : cycle.tuple_idx)
    sites.push_back(dep.tuples[i].acquire_index().site);
  std::sort(sites.begin(), sites.end());
  return sites;
}

ReplayOutcome classify_run(const sim::RunResult& run,
                           const std::vector<SiteId>& expected) {
  switch (run.outcome) {
    case sim::RunOutcome::kCompleted:
      return ReplayOutcome::kNoDeadlock;
    case sim::RunOutcome::kStepLimit:
      return ReplayOutcome::kStepLimit;
    case sim::RunOutcome::kTimeout:
      return ReplayOutcome::kTimeout;
    case sim::RunOutcome::kDeadlock:
      break;
  }
  // Hit: the blocked acquisitions of the diagnosed cycle sit at the same
  // source locations as the potential deadlock (§4.2).
  std::vector<SiteId> observed;
  observed.reserve(run.deadlock_cycle.size());
  for (const sim::BlockedAt& b : run.deadlock_cycle)
    observed.push_back(b.index.site);
  std::sort(observed.begin(), observed.end());
  return observed == expected ? ReplayOutcome::kReproduced
                              : ReplayOutcome::kOtherDeadlock;
}

ReplayTrial replay_once(const sim::Program& program,
                        const PotentialDeadlock& cycle,
                        const LockDependency& dep,
                        const SyncDependencyGraph& gs, std::uint64_t seed,
                        std::uint64_t max_steps,
                        const robust::FaultPlan* fault) {
  std::set<ThreadId> monitored;
  for (std::size_t i : cycle.tuple_idx)
    monitored.insert(dep.tuples[i].thread);

  ReplayController controller(gs, std::move(monitored));
  sim::SchedulerOptions options;
  options.controller = &controller;
  options.max_steps = max_steps;
  options.fault = fault;

  sim::RandomPolicy policy;
  Rng rng(seed);
  ReplayTrial trial;
  trial.run = sim::run_program(program, policy, rng, options);
  trial.outcome = classify_run(trial.run, expected_sites(cycle, dep));
  return trial;
}

void record_outcome(ReplayStats& stats, ReplayOutcome outcome) {
  ++stats.attempts;
  kTrials.add();
  if (outcome == ReplayOutcome::kTimeout) kTimeouts.add();
  if (outcome == ReplayOutcome::kReproduced) kConfirmations.add();
  switch (outcome) {
    case ReplayOutcome::kReproduced:
      ++stats.hits;
      break;
    case ReplayOutcome::kOtherDeadlock:
      ++stats.other_deadlocks;
      break;
    case ReplayOutcome::kNoDeadlock:
      ++stats.no_deadlocks;
      break;
    case ReplayOutcome::kStepLimit:
      ++stats.step_limits;
      break;
    case ReplayOutcome::kTimeout:
      ++stats.timeouts;
      break;
  }
}

ReplayStats replay(const sim::Program& program, const PotentialDeadlock& cycle,
                   const LockDependency& dep, const SyncDependencyGraph& gs,
                   const ReplayOptions& options) {
  ReplayStats stats;
  Rng seeds(options.seed);
  robust::RetryPolicy policy = options.retry;
  policy.max_attempts = options.attempts;
  robust::RetryState attempts(policy, options.seed);
  while (attempts.next_attempt()) {
    ReplayTrial trial = replay_once(program, cycle, dep, gs, seeds(),
                                    options.max_steps, options.fault);
    record_outcome(stats, trial.outcome);
    if (stats.hits > 0 && options.stop_on_first_hit) break;
  }
  return stats;
}

}  // namespace wolf
