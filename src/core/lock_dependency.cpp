#include "core/lock_dependency.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "support/check.hpp"

namespace wolf {

ExecIndex LockTuple::mu(LockId l) const {
  if (l == lock) return context.back();
  for (std::size_t i = 0; i < lockset.size(); ++i)
    if (lockset[i] == l) return context[i];
  WOLF_CHECK_MSG(false, "µ: lock " << l << " not in tuple " << to_string());
  return {};
}

bool LockTuple::holds(LockId l) const {
  return std::find(lockset.begin(), lockset.end(), l) != lockset.end();
}

std::string LockTuple::to_string() const {
  std::ostringstream os;
  os << "(t" << thread << ", {";
  for (std::size_t i = 0; i < lockset.size(); ++i) {
    if (i != 0) os << ",";
    os << "l" << lockset[i];
  }
  os << "}, l" << lock << ", {";
  for (std::size_t i = 0; i < context.size(); ++i) {
    if (i != 0) os << ",";
    os << context[i].to_string();
  }
  os << "}, " << tau << ")";
  return os.str();
}

LockDependency LockDependency::from_trace(const Trace& trace) {
  LockDependency dep;
  ClockTracker clocks;

  // Per-thread held-lock state: (lock, acquisition index), acquisition order.
  std::map<ThreadId, std::vector<std::pair<LockId, ExecIndex>>> held;

  for (std::size_t pos = 0; pos < trace.events.size(); ++pos) {
    const Event& e = trace.events[pos];
    clocks.apply(e);
    switch (e.kind) {
      case EventKind::kLockAcquire: {
        auto& stack = held[e.thread];
        LockTuple tuple;
        tuple.thread = e.thread;
        tuple.lock = e.lock;
        tuple.tau = clocks.timestamp(e.thread);
        tuple.trace_pos = pos;
        for (const auto& [l, idx] : stack) {
          tuple.lockset.push_back(l);
          tuple.context.push_back(idx);
        }
        tuple.context.push_back(e.index());
        dep.tuples.push_back(std::move(tuple));
        stack.emplace_back(e.lock, e.index());
        break;
      }
      case EventKind::kLockRelease: {
        auto& stack = held[e.thread];
        auto it = std::find_if(
            stack.rbegin(), stack.rend(),
            [&](const auto& h) { return h.first == e.lock; });
        WOLF_CHECK_MSG(it != stack.rend(),
                       "trace releases lock " << e.lock << " not held by t"
                                              << e.thread);
        stack.erase(std::next(it).base());
        break;
      }
      default:
        break;
    }
  }

  // Deduplicate by (thread, lock, context site signature): the canonical
  // representative is the first occurrence.
  std::map<std::tuple<ThreadId, LockId, std::vector<SiteId>>, std::size_t>
      seen;
  for (std::size_t i = 0; i < dep.tuples.size(); ++i) {
    const LockTuple& t = dep.tuples[i];
    std::vector<SiteId> sites;
    sites.reserve(t.context.size());
    for (const ExecIndex& idx : t.context) sites.push_back(idx.site);
    auto key = std::make_tuple(t.thread, t.lock, std::move(sites));
    if (seen.emplace(std::move(key), i).second) dep.unique.push_back(i);
  }
  return dep;
}

std::vector<std::size_t> LockDependency::thread_prefix(
    ThreadId thread, std::size_t last_pos) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    if (tuples[i].thread != thread) continue;
    if (tuples[i].trace_pos > last_pos) break;
    out.push_back(i);
  }
  return out;
}

}  // namespace wolf
