#include "core/lock_dependency.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>
#include <unordered_map>

#include "obs/counters.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace wolf {

namespace {
const obs::Counter kTuplesCounter("detector.tuples");
}  // namespace

namespace {

// Dedup key of a tuple: its thread, acquired lock, and context site
// signature. Equality is exact, so the hash index collapses precisely the
// same tuples as the ordered map it replaces.
struct TupleKey {
  ThreadId thread = kInvalidThread;
  LockId lock = kInvalidLock;
  std::vector<SiteId> sites;

  friend bool operator==(const TupleKey&, const TupleKey&) = default;
};

struct TupleKeyHash {
  std::size_t operator()(const TupleKey& k) const {
    std::uint64_t h =
        mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.thread))
               << 32) ^
              static_cast<std::uint32_t>(k.lock));
    for (SiteId s : k.sites)
      h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s)) +
                     0x9e3779b97f4a7c15ULL));
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

ExecIndex LockTuple::mu(LockId l) const {
  if (l == lock) return context.back();
  for (std::size_t i = 0; i < lockset.size(); ++i)
    if (lockset[i] == l) return context[i];
  WOLF_CHECK_MSG(false, "µ: lock " << l << " not in tuple " << to_string());
  return {};
}

bool LockTuple::holds(LockId l) const {
  return std::find(lockset.begin(), lockset.end(), l) != lockset.end();
}

std::string LockTuple::to_string() const {
  std::ostringstream os;
  os << "(t" << thread << ", {";
  for (std::size_t i = 0; i < lockset.size(); ++i) {
    if (i != 0) os << ",";
    os << "l" << lockset[i];
  }
  os << "}, l" << lock << ", {";
  for (std::size_t i = 0; i < context.size(); ++i) {
    if (i != 0) os << ",";
    os << context[i].to_string();
  }
  os << "}, " << tau << ")";
  return os.str();
}

LockDependencyBuilder::HeldStack& LockDependencyBuilder::held_stack(
    ThreadId thread) {
  if (thread >= 0) {
    const std::size_t i = static_cast<std::size_t>(thread);
    if (i >= held_.size()) held_.resize(i + 1);
    return held_[i];
  }
  return held_other_[thread];
}

void LockDependencyBuilder::add(const Event& e) {
  const std::size_t pos = pos_++;
  clocks_.apply(e);
  switch (e.kind) {
    case EventKind::kLockAcquire: {
      auto& stack = held_stack(e.thread);
      LockTuple tuple;
      tuple.thread = e.thread;
      tuple.lock = e.lock;
      tuple.tau = clocks_.timestamp(e.thread);
      tuple.trace_pos = pos;
      for (const auto& [l, idx] : stack) {
        tuple.lockset.push_back(l);
        tuple.context.push_back(idx);
      }
      tuple.context.push_back(e.index());
      kTuplesCounter.add();
      dep_.tuples.push_back(std::move(tuple));
      stack.emplace_back(e.lock, e.index());
      break;
    }
    case EventKind::kLockRelease: {
      auto& stack = held_stack(e.thread);
      auto it = std::find_if(stack.rbegin(), stack.rend(),
                             [&](const auto& h) { return h.first == e.lock; });
      WOLF_CHECK_MSG(it != stack.rend(),
                     "trace releases lock " << e.lock << " not held by t"
                                            << e.thread);
      stack.erase(std::next(it).base());
      break;
    }
    default:
      break;
  }
}

namespace {

TupleKey key_of(const LockTuple& t) {
  TupleKey key;
  key.thread = t.thread;
  key.lock = t.lock;
  key.sites.reserve(t.context.size());
  for (const ExecIndex& idx : t.context) key.sites.push_back(idx.site);
  return key;
}

// Deduplicate by (thread, lock, context site signature): the canonical
// representative is the first occurrence. Hash-indexed — the ordered map
// this replaces paid an O(|context|) lexicographic compare per tree level
// on every lookup, which dominated D_σ construction on long traces.
void compute_unique(LockDependency& dep) {
  std::unordered_map<TupleKey, std::size_t, TupleKeyHash> seen;
  seen.reserve(dep.tuples.size());
  dep.unique.clear();
  for (std::size_t i = 0; i < dep.tuples.size(); ++i) {
    if (seen.emplace(key_of(dep.tuples[i]), i).second) dep.unique.push_back(i);
  }
}

}  // namespace

LockDependency LockDependencyBuilder::take_dependency() {
  compute_unique(dep_);
  LockDependency out = std::move(dep_);
  dep_ = LockDependency{};
  return out;
}

LockDependency LockDependencyBuilder::snapshot_dependency() const {
  LockDependency copy = dep_;
  compute_unique(copy);
  return copy;
}

LockDependency LockDependencyBuilder::snapshot_subset(
    const std::vector<std::size_t>& indices) const {
  LockDependency sub;
  sub.tuples.reserve(indices.size());
  for (std::size_t i : indices) sub.tuples.push_back(dep_.tuples[i]);
  compute_unique(sub);
  return sub;
}

std::size_t LockDependencyBuilder::compact(const RemovalHook& on_remove) {
  std::unordered_map<TupleKey, std::size_t, TupleKeyHash> seen;
  seen.reserve(dep_.tuples.size());
  std::size_t kept = 0;
  for (std::size_t i = 0; i < dep_.tuples.size(); ++i) {
    if (!seen.emplace(key_of(dep_.tuples[i]), i).second) {
      if (on_remove) on_remove(dep_.tuples[i]);
      continue;
    }
    if (kept != i) dep_.tuples[kept] = std::move(dep_.tuples[i]);
    ++kept;
  }
  const std::size_t removed = dep_.tuples.size() - kept;
  dep_.tuples.resize(kept);
  dep_.tuples.shrink_to_fit();
  return removed;
}

std::size_t LockDependencyBuilder::evict_oldest(std::size_t max_tuples,
                                                const RemovalHook& on_remove) {
  if (dep_.tuples.size() <= max_tuples) return 0;
  const std::size_t evicted = dep_.tuples.size() - max_tuples;
  // Tuples are in trace order, so the oldest are the front.
  if (on_remove)
    for (std::size_t i = 0; i < evicted; ++i) on_remove(dep_.tuples[i]);
  dep_.tuples.erase(dep_.tuples.begin(),
                    dep_.tuples.begin() + static_cast<std::ptrdiff_t>(evicted));
  dep_.tuples.shrink_to_fit();
  return evicted;
}

void LockDependencyBuilder::clear() {
  dep_ = LockDependency{};
  clocks_ = ClockTracker{};
  held_.clear();
  held_other_.clear();
  pos_ = 0;
}

LockDependency LockDependency::from_trace(const Trace& trace) {
  LockDependencyBuilder builder;
  for (const Event& e : trace.events) builder.add(e);
  return builder.take_dependency();
}

std::vector<std::size_t> LockDependency::thread_prefix(
    ThreadId thread, std::size_t last_pos) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    if (tuples[i].thread != thread) continue;
    if (tuples[i].trace_pos > last_pos) break;
    out.push_back(i);
  }
  return out;
}

DependencyIndex DependencyIndex::build(const LockDependency& dep) {
  DependencyIndex index;
  index.dep_ = &dep;
  index.arena_ = std::make_unique<support::Arena>();
  const std::size_t n = dep.tuples.size();

  // Count pass: each tuple lands once in its thread's sequence and once in
  // its (thread, lock) sequence, so the pool is exactly 2n entries.
  for (const LockTuple& t : dep.tuples) {
    ++index.by_thread_[t.thread].length;
    ++index.by_thread_lock_[key(t.thread, t.lock)].length;
  }
  std::size_t* pool = index.arena_->alloc_array<std::size_t>(2 * n);
  index.pool_ = pool;

  // Offsets in first-appearance (trace) order, then the fill. Tuples are in
  // trace order, so each sequence comes out sorted by trace_pos for free.
  std::uint32_t next = 0;
  auto place = [&](Range& r, std::size_t i) {
    if (!r.assigned) {
      r.offset = next;
      next += r.length;
      r.assigned = true;
    }
    pool[r.offset + r.filled++] = i;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const LockTuple& t = dep.tuples[i];
    place(index.by_thread_[t.thread], i);
    place(index.by_thread_lock_[key(t.thread, t.lock)], i);
  }
  return index;
}

std::span<const std::size_t> DependencyIndex::prefix_of(
    const Range* range, std::size_t last_pos) const {
  if (range == nullptr) return {};
  const std::size_t* first = pool_ + range->offset;
  const std::size_t* last = first + range->length;
  auto end = std::upper_bound(
      first, last, last_pos,
      [&](std::size_t pos, std::size_t i) { return pos < dep_->tuples[i].trace_pos; });
  return {first, static_cast<std::size_t>(end - first)};
}

std::span<const std::size_t> DependencyIndex::thread_prefix(
    ThreadId thread, std::size_t last_pos) const {
  auto it = by_thread_.find(thread);
  return prefix_of(it == by_thread_.end() ? nullptr : &it->second, last_pos);
}

std::span<const std::size_t> DependencyIndex::thread_lock_prefix(
    ThreadId thread, LockId lock, std::size_t last_pos) const {
  auto it = by_thread_lock_.find(key(thread, lock));
  return prefix_of(it == by_thread_lock_.end() ? nullptr : &it->second,
                   last_pos);
}

}  // namespace wolf
