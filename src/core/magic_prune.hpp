// MagicFuzzer-style lock-dependency pruning (Cai & Chan, ICSE 2012) — the
// scalability extension §5 of the paper says "can be easily incorporated in
// WOLF". Before cycle enumeration, iteratively discard tuples that cannot
// possibly be part of any cycle:
//
//   * a tuple whose requested lock is never *held* by a tuple of another
//     thread can never have its type-D successor;
//   * a tuple none of whose held locks is ever *requested* by a tuple of
//     another thread can never have a type-D predecessor;
//
// Removing a tuple can strand others, so the filter runs to a fixpoint —
// exactly MagicFuzzer's iterative reduction. The surviving tuple set yields
// the identical cycle set (the dropped tuples are provably cycle-free), at a
// fraction of the enumeration cost on lock-heavy traces.
#pragma once

#include <cstddef>
#include <vector>

#include "core/lock_dependency.hpp"

namespace wolf {

struct MagicPruneStats {
  std::size_t before = 0;      // canonical tuples before pruning
  std::size_t after = 0;       // canonical tuples surviving
  int iterations = 0;          // fixpoint rounds

  double reduction() const {
    return before == 0
               ? 0.0
               : 1.0 - static_cast<double>(after) / static_cast<double>(before);
  }
};

// Returns the subset of `dep.unique` that may participate in a cycle, in the
// original order. `stats`, when non-null, receives reduction counters.
std::vector<std::size_t> magic_prune(const LockDependency& dep,
                                     MagicPruneStats* stats = nullptr);

// Convenience: a copy of `dep` with `unique` replaced by the pruned set.
LockDependency with_magic_prune(LockDependency dep,
                                MagicPruneStats* stats = nullptr);

}  // namespace wolf
