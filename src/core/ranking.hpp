// Defect ranking — the alternative reporting mode sketched in §4.4: rather
// than dropping Pruner/Generator-eliminated defects outright (which is
// unsound under incomplete traces), rank every detected defect so that
// automatically confirmed deadlocks surface first and detected false
// positives sink to the bottom:
//
//   1. reproduced defects, ordered by reproduction reliability (hit rate,
//      then fewer attempts to the first hit);
//   2. unknown defects, ordered by how close replay came (wrong-site
//      deadlocks suggest a real but mis-targeted defect) and by smaller Gs
//      (fewer dependencies to satisfy — more likely real on another input);
//   3. Generator-eliminated defects (false on this trace's path only);
//   4. Pruner-eliminated defects (false for every schedule consistent with
//      the observed start/join structure — the strongest negative evidence).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace wolf {

struct RankedDefect {
  std::size_t defect_index = 0;  // into WolfReport::defects
  // Higher is more deserving of programmer attention; the classification
  // tier dominates, the fraction encodes the within-tier ordering.
  double score = 0.0;
};

// Ranks every defect of a report, best first. Deterministic: ties break by
// defect index.
std::vector<RankedDefect> rank_defects(const WolfReport& report);

// Human-readable ranking table.
std::string format_ranking(const WolfReport& report, const SiteTable& sites);

}  // namespace wolf
