#include "core/detector.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "core/magic_prune.hpp"
#include "support/check.hpp"

namespace wolf {

std::string PotentialDeadlock::to_string(const LockDependency& dep) const {
  std::ostringstream os;
  os << "θ{";
  for (std::size_t i = 0; i < tuple_idx.size(); ++i) {
    if (i != 0) os << ", ";
    os << dep.tuples[tuple_idx[i]].to_string();
  }
  os << "}";
  return os.str();
}

DefectSignature signature_of(const PotentialDeadlock& cycle,
                             const LockDependency& dep) {
  DefectSignature sig;
  sig.reserve(cycle.tuple_idx.size());
  for (std::size_t idx : cycle.tuple_idx)
    sig.push_back(dep.tuples[idx].acquire_index().site);
  std::sort(sig.begin(), sig.end());
  return sig;
}

namespace {

// DFS state for cycle enumeration.
class CycleEnumerator {
 public:
  CycleEnumerator(const LockDependency& dep, const DetectorOptions& options)
      : dep_(dep), options_(options) {}

  std::vector<PotentialDeadlock> run() {
    for (std::size_t u : dep_.unique) {
      if (exhausted()) break;
      chain_.push_back(u);
      extend();
      chain_.pop_back();
    }
    return std::move(cycles_);
  }

 private:
  bool exhausted() const { return cycles_.size() >= options_.max_cycles; }

  // True when `candidate` can legally extend the current chain: distinct
  // thread and pairwise-disjoint lockset with every chain member.
  bool compatible(const LockTuple& candidate) const {
    for (std::size_t idx : chain_) {
      const LockTuple& member = dep_.tuples[idx];
      if (member.thread == candidate.thread) return false;
      for (LockId l : candidate.lockset)
        if (member.holds(l)) return false;
    }
    return true;
  }

  void extend() {
    if (exhausted()) return;
    const LockTuple& first = dep_.tuples[chain_.front()];
    const LockTuple& last = dep_.tuples[chain_.back()];

    // Close the cycle? Requires length >= 2 and lock(last) ∈ lockset(first).
    if (chain_.size() >= 2 && first.holds(last.lock)) {
      PotentialDeadlock cycle;
      cycle.tuple_idx = chain_;
      cycles_.push_back(std::move(cycle));
    }
    if (static_cast<int>(chain_.size()) >= options_.max_cycle_length) return;

    for (std::size_t u : dep_.unique) {
      if (exhausted()) return;
      const LockTuple& next = dep_.tuples[u];
      // Canonical rotation: the first tuple's thread is the cycle minimum.
      if (next.thread <= first.thread) continue;
      if (!next.holds(last.lock)) continue;
      if (!compatible(next)) continue;
      chain_.push_back(u);
      extend();
      chain_.pop_back();
    }
  }

  const LockDependency& dep_;
  const DetectorOptions& options_;
  std::vector<std::size_t> chain_;
  std::vector<PotentialDeadlock> cycles_;
};

}  // namespace

std::vector<PotentialDeadlock> enumerate_cycles(
    const LockDependency& dep, const DetectorOptions& options) {
  return CycleEnumerator(dep, options).run();
}

std::vector<Defect> group_defects(const std::vector<PotentialDeadlock>& cycles,
                                  const LockDependency& dep) {
  std::vector<Defect> defects;
  std::map<DefectSignature, std::size_t> by_signature;
  for (std::size_t c = 0; c < cycles.size(); ++c) {
    DefectSignature sig = signature_of(cycles[c], dep);
    auto [it, inserted] = by_signature.emplace(sig, defects.size());
    if (inserted) {
      Defect d;
      d.signature = std::move(sig);
      defects.push_back(std::move(d));
    }
    defects[it->second].cycle_idx.push_back(c);
  }
  return defects;
}

Detection detect(const Trace& trace, const DetectorOptions& options) {
  Detection det;
  det.dep = LockDependency::from_trace(trace);
  det.clocks = ClockTracker::from_trace(trace);
  if (options.magic_prune) {
    LockDependency reduced = det.dep;
    reduced.unique = magic_prune(det.dep);
    det.cycles = enumerate_cycles(reduced, options);
  } else {
    det.cycles = enumerate_cycles(det.dep, options);
  }
  det.defects = group_defects(det.cycles, det.dep);
  return det;
}

}  // namespace wolf
