#include "core/detector.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/magic_prune.hpp"
#include "support/check.hpp"

namespace wolf {

std::string PotentialDeadlock::to_string(const LockDependency& dep) const {
  std::ostringstream os;
  os << "θ{";
  for (std::size_t i = 0; i < tuple_idx.size(); ++i) {
    if (i != 0) os << ", ";
    os << dep.tuples[tuple_idx[i]].to_string();
  }
  os << "}";
  return os.str();
}

DefectSignature signature_of(const PotentialDeadlock& cycle,
                             const LockDependency& dep) {
  DefectSignature sig;
  sig.reserve(cycle.tuple_idx.size());
  for (std::size_t idx : cycle.tuple_idx)
    sig.push_back(dep.tuples[idx].acquire_index().site);
  std::sort(sig.begin(), sig.end());
  return sig;
}

namespace {

// DFS state for cycle enumeration.
//
// Two indexes replace the original per-candidate linear scans without
// changing the visit order (and hence the canonical cycle order):
//   * holders_of_ — lock ℓ → canonical tuples holding ℓ in their lockset, in
//     dep.unique order. extend() walks holders_of_[lock(last)] instead of
//     filtering every canonical tuple by holds(lock(last)).
//   * chain_threads_/chain_locks_ — running thread set and lockset union of
//     the current chain, so the pairwise-disjointness test is O(|lockset|)
//     per candidate instead of O(chain · lockset²). Chain locksets are
//     pairwise disjoint by construction, so a plain set suffices.
class CycleEnumerator {
 public:
  CycleEnumerator(const LockDependency& dep, const DetectorOptions& options)
      : dep_(dep), options_(options) {
    for (std::size_t u : dep_.unique)
      for (LockId l : dep_.tuples[u].lockset) holders_of_[l].push_back(u);
  }

  std::vector<PotentialDeadlock> run() {
    for (std::size_t u : dep_.unique) {
      if (exhausted()) break;
      push_member(u);
      extend();
      pop_member(u);
    }
    return std::move(cycles_);
  }

 private:
  bool exhausted() const { return cycles_.size() >= options_.max_cycles; }

  void push_member(std::size_t idx) {
    chain_.push_back(idx);
    const LockTuple& tuple = dep_.tuples[idx];
    chain_threads_.push_back(tuple.thread);
    for (LockId l : tuple.lockset) chain_locks_.insert(l);
  }

  void pop_member(std::size_t idx) {
    const LockTuple& tuple = dep_.tuples[idx];
    for (LockId l : tuple.lockset) chain_locks_.erase(l);
    chain_threads_.pop_back();
    chain_.pop_back();
  }

  // True when `candidate` can legally extend the current chain: distinct
  // thread and pairwise-disjoint lockset with every chain member.
  bool compatible(const LockTuple& candidate) const {
    for (ThreadId t : chain_threads_)
      if (t == candidate.thread) return false;
    for (LockId l : candidate.lockset)
      if (chain_locks_.count(l) != 0) return false;
    return true;
  }

  void extend() {
    if (exhausted()) return;
    const LockTuple& first = dep_.tuples[chain_.front()];
    const LockTuple& last = dep_.tuples[chain_.back()];

    // Close the cycle? Requires length >= 2 and lock(last) ∈ lockset(first).
    if (chain_.size() >= 2 && first.holds(last.lock)) {
      PotentialDeadlock cycle;
      cycle.tuple_idx = chain_;
      cycles_.push_back(std::move(cycle));
    }
    if (static_cast<int>(chain_.size()) >= options_.max_cycle_length) return;

    auto holders = holders_of_.find(last.lock);
    if (holders == holders_of_.end()) return;
    for (std::size_t u : holders->second) {
      if (exhausted()) return;
      const LockTuple& next = dep_.tuples[u];
      // Canonical rotation: the first tuple's thread is the cycle minimum.
      if (next.thread <= first.thread) continue;
      if (!compatible(next)) continue;
      push_member(u);
      extend();
      pop_member(u);
    }
  }

  const LockDependency& dep_;
  const DetectorOptions& options_;
  std::unordered_map<LockId, std::vector<std::size_t>> holders_of_;
  std::vector<std::size_t> chain_;
  std::vector<ThreadId> chain_threads_;
  std::unordered_set<LockId> chain_locks_;
  std::vector<PotentialDeadlock> cycles_;
};

}  // namespace

std::vector<PotentialDeadlock> enumerate_cycles(
    const LockDependency& dep, const DetectorOptions& options) {
  return CycleEnumerator(dep, options).run();
}

std::vector<Defect> group_defects(const std::vector<PotentialDeadlock>& cycles,
                                  const LockDependency& dep) {
  std::vector<Defect> defects;
  std::map<DefectSignature, std::size_t> by_signature;
  for (std::size_t c = 0; c < cycles.size(); ++c) {
    DefectSignature sig = signature_of(cycles[c], dep);
    auto [it, inserted] = by_signature.emplace(sig, defects.size());
    if (inserted) {
      Defect d;
      d.signature = std::move(sig);
      defects.push_back(std::move(d));
    }
    defects[it->second].cycle_idx.push_back(c);
  }
  return defects;
}

Detection StreamingDetector::finish() {
  Detection det;
  det.dep = builder_.take_dependency();
  det.clocks = builder_.clocks();
  builder_.clear();
  if (options_.magic_prune) {
    LockDependency reduced = det.dep;
    reduced.unique = magic_prune(det.dep);
    det.cycles = enumerate_cycles(reduced, options_);
  } else {
    det.cycles = enumerate_cycles(det.dep, options_);
  }
  det.defects = group_defects(det.cycles, det.dep);
  return det;
}

Detection detect_reader(TraceReader& reader, const DetectorOptions& options) {
  StreamingDetector detector(options);
  std::vector<Event> block;
  while (reader.next_block(block)) detector.add_block(block);
  return detector.finish();
}

Detection detect(const Trace& trace, const DetectorOptions& options) {
  VectorTraceReader reader(trace);
  return detect_reader(reader, options);
}

}  // namespace wolf
