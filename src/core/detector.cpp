#include "core/detector.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "core/cycle_engine.hpp"
#include "core/magic_prune.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace wolf {

std::string PotentialDeadlock::to_string(const LockDependency& dep) const {
  std::ostringstream os;
  os << "θ{";
  for (std::size_t i = 0; i < tuple_idx.size(); ++i) {
    if (i != 0) os << ", ";
    os << dep.tuples[tuple_idx[i]].to_string();
  }
  os << "}";
  return os.str();
}

DefectSignature signature_of(const PotentialDeadlock& cycle,
                             const LockDependency& dep) {
  DefectSignature sig;
  sig.reserve(cycle.tuple_idx.size());
  for (std::size_t idx : cycle.tuple_idx)
    sig.push_back(dep.tuples[idx].acquire_index().site);
  std::sort(sig.begin(), sig.end());
  return sig;
}

std::vector<PotentialDeadlock> enumerate_cycles(
    const LockDependency& dep, const DetectorOptions& options) {
  return enumerate_cycles_ex(dep, options).cycles;
}

namespace {

// Signatures are short sorted SiteId vectors; hash them the same way
// LockDependencyBuilder keys tuples (mix64 chaining).
struct DefectSignatureHash {
  std::size_t operator()(const DefectSignature& sig) const {
    std::uint64_t h = 0x5157ea7de7ec70ULL;
    for (SiteId s : sig)
      h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(s)));
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

std::vector<Defect> group_defects(const std::vector<PotentialDeadlock>& cycles,
                                  const LockDependency& dep) {
  // First-seen order: defects[k] is keyed by the k-th distinct signature in
  // cycle order, so the grouping is independent of the hash function.
  std::vector<Defect> defects;
  std::unordered_map<DefectSignature, std::size_t, DefectSignatureHash>
      by_signature;
  by_signature.reserve(cycles.size());
  for (std::size_t c = 0; c < cycles.size(); ++c) {
    DefectSignature sig = signature_of(cycles[c], dep);
    auto [it, inserted] = by_signature.emplace(sig, defects.size());
    if (inserted) {
      Defect d;
      d.signature = std::move(sig);
      defects.push_back(std::move(d));
    }
    defects[it->second].cycle_idx.push_back(c);
  }
  return defects;
}

Detection finish_detection(LockDependency dep, ClockTracker clocks,
                           const DetectorOptions& options) {
  Detection det;
  det.dep = std::move(dep);
  det.clocks = std::move(clocks);
  EnumerationResult res;
  if (options.magic_prune) {
    LockDependency reduced = det.dep;
    reduced.unique = magic_prune(det.dep);
    res = enumerate_cycles_ex(reduced, options, &det.clocks);
  } else {
    res = enumerate_cycles_ex(det.dep, options, &det.clocks);
  }
  det.cycles = std::move(res.cycles);
  det.truncated = res.truncated;
  det.cycle_cap = res.truncated ? options.max_cycles : 0;
  det.defects = group_defects(det.cycles, det.dep);
  return det;
}

Detection StreamingDetector::finish() {
  LockDependency dep = builder_.take_dependency();
  ClockTracker clocks = builder_.clocks();
  builder_.clear();
  return finish_detection(std::move(dep), std::move(clocks), options_);
}

Detection detect_reader(TraceReader& reader, const DetectorOptions& options) {
  StreamingDetector detector(options);
  std::vector<Event> block;
  while (reader.next_block(block)) detector.add_block(block);
  return detector.finish();
}

Detection detect(const Trace& trace, const DetectorOptions& options) {
  VectorTraceReader reader(trace);
  return detect_reader(reader, options);
}

}  // namespace wolf
