#include "core/ranking.hpp"

#include <algorithm>
#include <sstream>

namespace wolf {

namespace {

double tier_of(Classification c) {
  switch (c) {
    case Classification::kReproduced:
      return 3000.0;
    case Classification::kUnknown:
      return 2000.0;
    case Classification::kFalseByGenerator:
      return 1000.0;
    case Classification::kFalseByPruner:
      return 0.0;
  }
  return 0.0;
}

// Within-tier refinement in [0, 1000).
double refine(const WolfReport& report, const DefectReport& defect) {
  double best = 0.0;
  for (std::size_t c : defect.cycle_indices) {
    const CycleReport& cycle = report.cycles[c];
    double score = 0.0;
    const ReplayStats& stats = cycle.replay_stats;
    if (cycle.classification == Classification::kReproduced) {
      // Reliability first, then speed-to-first-hit.
      score = 900.0 * stats.hit_rate() +
              90.0 / (1.0 + static_cast<double>(stats.attempts));
    } else if (cycle.classification == Classification::kUnknown) {
      // Near misses (deadlocked elsewhere) hint at a real defect; small Gs
      // means few dependencies stood in the way.
      const double near_miss =
          stats.attempts == 0
              ? 0.0
              : static_cast<double>(stats.other_deadlocks) / stats.attempts;
      score = 600.0 * near_miss +
              300.0 / (1.0 + static_cast<double>(cycle.gs_vertices));
    } else {
      // Among eliminated defects, larger evidence (more cycles, all false)
      // ranks lower; keep a mild preference for fewer dynamic occurrences.
      score = 100.0 / (1.0 + static_cast<double>(defect.cycle_indices.size()));
    }
    best = std::max(best, score);
  }
  return best;
}

}  // namespace

std::vector<RankedDefect> rank_defects(const WolfReport& report) {
  std::vector<RankedDefect> ranking;
  ranking.reserve(report.defects.size());
  for (std::size_t d = 0; d < report.defects.size(); ++d) {
    RankedDefect r;
    r.defect_index = d;
    r.score = tier_of(report.defects[d].classification) +
              refine(report, report.defects[d]);
    ranking.push_back(r);
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const RankedDefect& a, const RankedDefect& b) {
                     return a.score > b.score;
                   });
  return ranking;
}

std::string format_ranking(const WolfReport& report, const SiteTable& sites) {
  std::ostringstream os;
  int position = 1;
  for (const RankedDefect& r : rank_defects(report)) {
    const DefectReport& d = report.defects[r.defect_index];
    os << position++ << ". [";
    for (std::size_t i = 0; i < d.signature.size(); ++i) {
      if (i != 0) os << ", ";
      os << sites.name(d.signature[i]);
    }
    os << "] " << to_string(d.classification) << " (score " << r.score
       << ")\n";
  }
  return os.str();
}

}  // namespace wolf
