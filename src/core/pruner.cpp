#include "core/pruner.hpp"

namespace wolf {

const char* to_string(PruneVerdict verdict) {
  switch (verdict) {
    case PruneVerdict::kUnknown:
      return "unknown";
    case PruneVerdict::kFalseNotStarted:
      return "false(not-started)";
    case PruneVerdict::kFalseJoined:
      return "false(joined)";
  }
  return "?";
}

PruneVerdict prune_cycle(const PotentialDeadlock& cycle,
                         const LockDependency& dep,
                         const ClockTracker& clocks) {
  for (std::size_t i : cycle.tuple_idx) {
    for (std::size_t j : cycle.tuple_idx) {
      if (i == j) continue;
      const LockTuple& eta_i = dep.tuples[i];
      const LockTuple& eta_j = dep.tuples[j];
      const SJPair& view = clocks.view(eta_i.thread, eta_j.thread);
      // Thread ti begins only after tj's deadlocking acquisition: every tj
      // operation with timestamp < S completes before ti's first
      // instruction, so tj cannot still be blocked inside that acquisition
      // while ti runs.
      if (view.S != kTsBottom && view.S > eta_j.tau)
        return PruneVerdict::kFalseNotStarted;
      // Thread tj had already been joined (transitively) by the time ti
      // reached timestamp J; ti's acquisition at τ >= J cannot overlap tj.
      if (view.J != kTsBottom && view.J <= eta_i.tau)
        return PruneVerdict::kFalseJoined;
    }
  }
  return PruneVerdict::kUnknown;
}

std::vector<PruneVerdict> prune(const Detection& detection) {
  std::vector<PruneVerdict> verdicts;
  verdicts.reserve(detection.cycles.size());
  for (const PotentialDeadlock& cycle : detection.cycles)
    verdicts.push_back(prune_cycle(cycle, detection.dep, detection.clocks));
  return verdicts;
}

}  // namespace wolf
