#include "core/pruner.hpp"

#include <algorithm>

#include "obs/counters.hpp"

namespace wolf {

namespace {
const obs::Counter kCyclesIn("pruner.cycles_in");
const obs::Counter kCyclesKilled("pruner.cycles_killed");
}  // namespace

const char* to_string(PruneVerdict verdict) {
  switch (verdict) {
    case PruneVerdict::kUnknown:
      return "unknown";
    case PruneVerdict::kFalseNotStarted:
      return "false(not-started)";
    case PruneVerdict::kFalseJoined:
      return "false(joined)";
  }
  return "?";
}

PruneVerdict prune_cycle(const PotentialDeadlock& cycle,
                         const LockDependency& dep,
                         const ClockTracker& clocks) {
  kCyclesIn.add();
  for (std::size_t i : cycle.tuple_idx) {
    for (std::size_t j : cycle.tuple_idx) {
      if (i == j) continue;
      const LockTuple& eta_i = dep.tuples[i];
      const LockTuple& eta_j = dep.tuples[j];
      const SJPair& view = clocks.view(eta_i.thread, eta_j.thread);
      // Thread ti begins only after tj's deadlocking acquisition: every tj
      // operation with timestamp < S completes before ti's first
      // instruction, so tj cannot still be blocked inside that acquisition
      // while ti runs.
      if (view.S != kTsBottom && view.S > eta_j.tau) {
        kCyclesKilled.add();
        return PruneVerdict::kFalseNotStarted;
      }
      // Thread tj had already been joined (transitively) by the time ti
      // reached timestamp J; ti's acquisition at τ >= J cannot overlap tj.
      if (view.J != kTsBottom && view.J <= eta_i.tau) {
        kCyclesKilled.add();
        return PruneVerdict::kFalseJoined;
      }
    }
  }
  return PruneVerdict::kUnknown;
}

ClockPairMatrix::ClockPairMatrix(const ClockTracker& clocks,
                                 const LockDependency& dep) {
  ThreadId max_thread = clocks.max_thread();
  for (std::size_t u : dep.unique)
    max_thread = std::max(max_thread, dep.tuples[u].thread);
  if (max_thread < 0) return;
  threads_ = static_cast<std::size_t>(max_thread) + 1;
  pairs_.resize(threads_ * threads_);
  never_.assign(threads_ * threads_, false);

  for (std::size_t t = 0; t < threads_; ++t)
    for (std::size_t u = 0; u < threads_; ++u)
      pairs_[t * threads_ + u] = clocks.view(static_cast<ThreadId>(t),
                                             static_cast<ThreadId>(u));

  // τ extrema of each thread's canonical tuples. A pair never overlaps when
  // one of Algorithm 2's conditions holds at the worst-case τ combination —
  // then it holds for every tuple pair the threads could contribute.
  std::vector<Timestamp> min_tau(threads_, 0), max_tau(threads_, 0);
  std::vector<bool> has_tuple(threads_, false);
  for (std::size_t u : dep.unique) {
    const LockTuple& t = dep.tuples[u];
    const auto tid = static_cast<std::size_t>(t.thread);
    if (!has_tuple[tid]) {
      has_tuple[tid] = true;
      min_tau[tid] = max_tau[tid] = t.tau;
    } else {
      min_tau[tid] = std::min(min_tau[tid], t.tau);
      max_tau[tid] = std::max(max_tau[tid], t.tau);
    }
  }
  for (std::size_t ti = 0; ti < threads_; ++ti) {
    if (!has_tuple[ti]) continue;
    for (std::size_t tj = 0; tj < threads_; ++tj) {
      if (ti == tj || !has_tuple[tj]) continue;
      const SJPair& v = pairs_[ti * threads_ + tj];
      never_[ti * threads_ + tj] =
          (v.S != kTsBottom && v.S > max_tau[tj]) ||
          (v.J != kTsBottom && v.J <= min_tau[ti]);
    }
  }
}

PruneVerdict prune_cycle(const PotentialDeadlock& cycle,
                         const LockDependency& dep,
                         const ClockPairMatrix& matrix) {
  kCyclesIn.add();
  for (std::size_t i : cycle.tuple_idx) {
    for (std::size_t j : cycle.tuple_idx) {
      if (i == j) continue;
      const LockTuple& eta_i = dep.tuples[i];
      const LockTuple& eta_j = dep.tuples[j];
      PruneVerdict v = matrix.pair_verdict(eta_i.thread, eta_i.tau,
                                           eta_j.thread, eta_j.tau);
      if (is_false(v)) {
        kCyclesKilled.add();
        return v;
      }
    }
  }
  return PruneVerdict::kUnknown;
}

std::vector<PruneVerdict> prune(const Detection& detection) {
  const ClockPairMatrix matrix(detection.clocks, detection.dep);
  std::vector<PruneVerdict> verdicts;
  verdicts.reserve(detection.cycles.size());
  for (const PotentialDeadlock& cycle : detection.cycles)
    verdicts.push_back(prune_cycle(cycle, detection.dep, matrix));
  return verdicts;
}

}  // namespace wolf
