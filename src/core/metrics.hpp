// Bridges finished pipeline reports to the obs::RunMetrics report shape
// (DESIGN.md §13): span tree + per-cycle funnel verdicts. Counters are
// deliberately NOT filled here — the CounterRegistry is process-wide, so
// per-run values are the caller's snapshot delta around the run (see
// obs::delta); the CLI does exactly that for --metrics-out.
#pragma once

#include "core/multi.hpp"
#include "core/pipeline.hpp"
#include "obs/report.hpp"

namespace wolf {

// Maps a cycle's classification to its funnel outcome string:
// pruned | infeasible | confirmed | unconfirmed (error when degraded).
const char* funnel_outcome(const CycleReport& cycle);

// Single-run view: tool = "wolf", funnel run index 0.
obs::RunMetrics collect_metrics(const WolfReport& report);

// Multi-run view: tool = "wolf-multi"; each run's spans are re-rooted under
// a synthetic "run" span tagged with the run index, and funnel entries carry
// that index.
obs::RunMetrics collect_metrics(const MultiRunReport& report);

}  // namespace wolf
