// Resource-governed online detection (DESIGN.md §14).
//
// StreamingDetector accumulates an unbounded D_σ and enumerates once at the
// end — fine for batch analysis, fatal for an always-on engine ingesting
// millions of events per second. GovernedStreamingDetector is the
// production shape: ingestion is chopped into fixed-size event windows, and
// at every window boundary the governor
//
//   1. consults the linear-time sound pre-filter (core/prefilter.hpp) — the
//      expensive tuple-level cycle enumeration fires only on windows the
//      lock graph flags as suspicious, and only at ladder rungs that allow
//      it;
//   2. enforces the memory budget on the tuple store: first *compaction*
//      (dropping non-canonical duplicate tuples — lossless for cycle
//      enumeration, which runs over the canonical view), then, only if the
//      budget is still exceeded, *aging* (evicting the oldest tuples —
//      lossy, and therefore reported);
//   3. drives the degradation ladder off the window's detection latency:
//
//          kFullScc → kClockPruned → kPrefilterOnly   (deadline pressure)
//                                      kShedding      (memory pressure)
//
//      A window that blows its deadline demotes the rung; two consecutive
//      comfortably-fast windows promote it back (hysteresis). kClockPruned
//      folds the Pruner's clock cut into the per-window search — cheaper,
//      and principled: the cycles it skips are exactly the ones the Pruner
//      would prove infeasible. kPrefilterOnly stops per-window enumeration
//      entirely; windows are still flagged. kShedding is not a rung the
//      deadline reaches — it marks windows where aging evicted tuples.
//
// Honesty contract (the same one --max-cycles truncation already honors):
// every downgrade is surfaced. Each window produces a WindowReport; the
// run produces a GovernorVerdict whose coverage_complete is true iff the
// final Detection provably equals what batch analysis of the same event
// stream would produce — no eviction, no detection fault. Per-window
// enumeration faults (injected or real) degrade only that window's early
// surfacing; finish() re-enumerates over everything retained, so they do
// not lose final coverage. A fault *in* finish() does, and flips
// coverage_complete.
//
// Since ROADMAP item 2 (DESIGN.md §16), per-window enumeration is
// *incremental* by default: the pre-filter maintains its SCC decomposition
// under tuple arrival and expiry (graph/dynamic_scc.hpp), and a window
// enumerates only the tuples whose request lock lies in a *dirty* suspicious
// SCC — one whose membership, edges, or fed tuples changed since the last
// enumerating window — through LockDependencyBuilder::snapshot_subset. The
// historical recompute path (full-store snapshot per suspicious window,
// gated on the pre-filter generation counter) survives behind
// GovernorOptions::incremental_scc = false as the differential reference
// and the bench's regression baseline. finish() is identical in both modes,
// so the honesty contract is untouched. Windows can also surface each
// first-sighted cycle to a CycleSubscriber the moment it is found.
//
// Since DESIGN.md §17, governed ingestion scales with cores — without
// touching a byte of the contract above. GovernorOptions::jobs > 1 turns on
// two composable mechanisms, both bit-identical to the serial path:
//   * stage pipelining — detect_reader_governed decodes blocks on a
//     producer thread behind a bounded SPSC ring (support/ring_queue.hpp,
//     trace/PipelinedTraceReader), so decode overlaps window detection;
//   * per-SCC window fan-out — a suspicious window's dirty components are
//     independent enumeration domains (a cycle's request locks all share
//     one SCC), so each is enumerated as its own thread-pool task and the
//     streams are merged back in canonical order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/detector.hpp"
#include "core/prefilter.hpp"
#include "robust/fault.hpp"
#include "trace/recorder.hpp"

namespace wolf {

class ThreadPool;

// The degradation ladder, cheapest-last. Numeric order is demotion order.
enum class DetectionLevel : std::uint8_t {
  kFullScc = 0,        // suspicious windows get full cycle enumeration
  kClockPruned = 1,    // enumeration with the in-search clock cut
  kPrefilterOnly = 2,  // windows only flagged; enumeration deferred
  kShedding = 3,       // memory pressure: oldest tuples evicted (lossy)
};
const char* to_string(DetectionLevel level);

// One cycle surfaced mid-run by per-window enumeration, delivered to the
// subscriber at window granularity on its *first* sighting (finish() never
// re-delivers). The pointers borrow the window's transient detection state
// and are valid only for the duration of the callback — copy what you keep.
struct LiveCycle {
  std::size_t window = 0;    // WindowReport::index that surfaced it
  std::size_t sequence = 0;  // 1-based count of cycles surfaced so far
  const PotentialDeadlock* cycle = nullptr;
  const LockDependency* dep = nullptr;  // the enumeration's tuple view
};

// Subscription must be observation-only: finish() returns byte-identical
// results whether or not a subscriber is attached. A throwing subscriber is
// contained like any per-window detection fault (that window degrades; the
// final enumeration still covers everything retained).
using CycleSubscriber = std::function<void(const LiveCycle&)>;

struct GovernorOptions {
  // Tuple-store budget in MiB; 0 = ungoverned (the store grows like
  // StreamingDetector's). Approximate accounting — see tuple_bytes().
  std::size_t memory_budget_mb = 0;
  // Events per detection window. Also the granularity of budget and
  // deadline enforcement.
  std::size_t window_events = 65536;
  // Wall-clock budget for one window's detection work; 0 = no deadline
  // (the ladder never demotes).
  std::int64_t window_deadline_ms = 0;
  // Engine configuration for per-window and final enumeration.
  DetectorOptions detector;
  // Incremental SCC maintenance: windows enumerate only dirty-SCC tuple
  // subsets (see header comment). false = the historical
  // recompute-per-suspicious-window path, kept for differential testing and
  // as the perf_online regression baseline.
  bool incremental_scc = true;
  // Parallelism of governed ingestion (DESIGN.md §17): > 1 pipelines block
  // decode behind detection (detect_reader_governed) and fans a suspicious
  // window's dirty SCCs out as independent enumeration tasks; 1 = fully
  // serial; 0 = hardware concurrency. Verdicts, notes, window reports, and
  // live-cycle sequence numbers are bit-identical at every level. The
  // recompute path (incremental_scc = false) has no component structure to
  // fan out and always enumerates serially.
  int jobs = 1;
  // Depth, in blocks, of the decode→ingest ring when jobs > 1; this is the
  // backpressure bound on how far decode may run ahead of ingestion.
  // 0 = auto (derived from jobs).
  std::size_t pipeline_depth = 0;
  // Live cycle surfacing: invoked once per first-sighted cycle at window
  // granularity; empty = no mid-run surfacing. Works in both enumeration
  // modes and never changes what finish() returns.
  CycleSubscriber on_cycle;
  // Injected faults (robust/fault.hpp): detect_throw_window exercises the
  // per-window containment path. Not owned.
  const robust::FaultPlan* fault = nullptr;
};

// What happened in one window — the structured, honestly-reported verdict
// of the degradation machinery.
struct WindowReport {
  std::size_t index = 0;
  std::size_t events = 0;       // events ingested in this window
  std::size_t tuples_live = 0;  // tuples retained after governance
  std::size_t store_bytes = 0;  // approx store footprint after governance
  DetectionLevel level = DetectionLevel::kFullScc;  // rung the window ran at
  bool suspicious = false;      // pre-filter verdict for this window
  std::size_t new_cycles = 0;   // cycles first surfaced in this window
  std::size_t tuples_compacted = 0;
  std::size_t tuples_evicted = 0;  // > 0 ⇒ lossy (level == kShedding)
  double detect_seconds = 0;    // detection latency of this window
  std::string note;             // fault/failure detail; empty when clean

  bool degraded() const {
    return level != DetectionLevel::kFullScc || tuples_evicted > 0 ||
           !note.empty();
  }
};

// Run-level roll-up. coverage_complete is the load-bearing bit: when true,
// the final Detection covers exactly what batch analysis would.
struct GovernorVerdict {
  bool coverage_complete = true;
  std::size_t windows = 0;
  std::size_t suspicious_windows = 0;
  std::size_t degraded_windows = 0;
  std::size_t tuples_compacted = 0;
  std::size_t tuples_evicted = 0;
  std::size_t detection_faults = 0;
  DetectionLevel final_level = DetectionLevel::kFullScc;
  std::vector<std::string> notes;  // one per fault/degradation event (capped)

  bool degraded() const { return degraded_windows > 0 || !coverage_complete; }
  std::string summary() const;  // one human-readable line
};

// Pure ladder-transition rule, exposed for deterministic tests: given the
// current rung, one window's detection latency and the deadline, returns
// the next rung and updates the promote-hysteresis streak (demote resets
// it; promotion requires two consecutive windows under half the deadline).
DetectionLevel next_rung(DetectionLevel current, double detect_seconds,
                         std::int64_t deadline_ms, int& fast_streak);

// Approximate heap footprint of one stored tuple (vector capacities
// included) — the unit of the governor's memory accounting.
std::size_t tuple_bytes(const LockTuple& tuple);

class GovernedStreamingDetector {
 public:
  explicit GovernedStreamingDetector(const GovernorOptions& options = {});
  ~GovernedStreamingDetector();

  void add(const Event& e);
  void add_block(const std::vector<Event>& events);

  std::size_t events_seen() const { return builder_.events_seen(); }
  std::size_t store_bytes() const { return store_bytes_; }
  DetectionLevel level() const { return rung_; }
  // True once a malformed event fired a builder invariant: ingestion has
  // stopped and the verdict is honestly incomplete.
  bool poisoned() const { return poisoned_; }
  const std::vector<WindowReport>& windows() const { return windows_; }
  // Cycles surfaced by per-window enumeration so far (first sightings; the
  // number of LiveCycle deliveries when a subscriber is attached).
  std::size_t cycles_surfaced_live() const { return live_cycles_; }

  // Closes the trailing partial window, runs the authoritative enumeration
  // over every retained tuple and returns the completed Detection. The
  // verdict is final after this call. Never throws on detection failure —
  // a fault there yields an empty cycle set and coverage_complete = false.
  Detection finish();

  // Valid (final) after finish(); before that it reflects windows so far.
  GovernorVerdict verdict() const;

 private:
  void close_window();
  // Pre-filter + (rung-permitting) enumeration for the closing window.
  void run_window_detection(WindowReport& w);
  // First-sighting dedup + subscriber delivery for one window's detection.
  void surface_new_cycles(const Detection& det, WindowReport& w);
  // Single-cycle unit of the above, shared with the per-SCC merge path.
  void surface_cycle(const PotentialDeadlock& cycle, const LockDependency& dep,
                     WindowReport& w);
  // Lazily-built enumeration pool (resolved_jobs() wide); never built when
  // the run stays serial.
  ThreadPool& pool();
  int resolved_jobs() const;
  // Budget enforcement: compaction, then aging. Updates store_bytes_.
  void govern_memory(WindowReport& w);
  void recompute_store_bytes();
  // Re-keys tuples_by_lock_ after compaction/eviction renumbered the store.
  void rebuild_lock_index();
  void note_event(GovernorVerdict& v, std::string note) const;

  GovernorOptions options_;
  LockDependencyBuilder builder_;
  LockGraph prefilter_;
  std::vector<WindowReport> windows_;
  GovernorVerdict verdict_;
  bool finished_ = false;
  // Set when an event fired a builder invariant check (malformed input,
  // e.g. from a corrupted live feed): ingestion stops, coverage_complete is
  // cleared, and finish() analyzes only what was consistently built.
  bool poisoned_ = false;

  DetectionLevel rung_ = DetectionLevel::kFullScc;
  int fast_streak_ = 0;
  std::size_t window_events_ = 0;      // events in the open window
  std::size_t tuples_fed_ = 0;         // tuples already fed to the prefilter
  std::uint64_t prefilter_generation_ = 0;  // at the last window boundary
  std::size_t store_bytes_ = 0;
  // Cycles already surfaced by per-window enumeration, keyed by signature
  // hash — so new_cycles counts first sightings only.
  std::vector<std::uint64_t> seen_cycle_keys_;
  std::size_t live_cycles_ = 0;
  // Incremental mode only: store indices by request lock, so a dirty SCC's
  // lock list maps straight to the tuple subset to enumerate. Rebuilt after
  // compaction/eviction (which renumber the store).
  std::unordered_map<LockId, std::vector<std::size_t>> tuples_by_lock_;
  std::unique_ptr<ThreadPool> pool_;
};

// Where pipelined ingestion spent its overlap budget — filled only when
// detect_reader_governed ran the decode→ingest ring (jobs > 1). Stall
// attribution: push stalls mean ingestion was the bottleneck (the ring
// backpressured decode), pop stalls mean decode was.
struct GovernedPipelineStats {
  bool used = false;
  std::uint64_t push_stalls = 0;
  std::uint64_t pop_stalls = 0;
  double push_stall_seconds = 0;
  double pop_stall_seconds = 0;
  double decode_seconds = 0;  // producer-side time spent decoding blocks
};

struct GovernedDetection {
  Detection detection;
  std::vector<WindowReport> windows;
  GovernorVerdict verdict;
  GovernedPipelineStats pipeline;
};

// DEPRECATED: thin shim over wolf::Session (wolf.hpp) — open_governed →
// ingest → finish, byte-identical results. Will be removed one release
// after the Session facade landed (DESIGN.md §18); new code opens a
// Session. On a defective stream the result reflects the prefix delivered
// (callers check the reader). options.jobs > 1 runs the reader through a
// PipelinedTraceReader (decode overlapping ingestion) with identical event
// delivery and results.
GovernedDetection detect_reader_governed(TraceReader& reader,
                                         const GovernorOptions& options);

// DEPRECATED: prefer wolf::Session (wolf.hpp) and feed it from the
// substrate; removal note in DESIGN.md §18. Online bookkeeping during
// execution, resource-governed: attach to a substrate as its TraceSink to
// pay detection-instrumentation cost at runtime with bounded memory.
// (core/online_sink.hpp keeps the ungoverned adapter for the Table-1
// slowdown measurements.)
class GovernedOnlineSink final : public TraceSink {
 public:
  explicit GovernedOnlineSink(const GovernorOptions& options = {})
      : detector_(options) {}

  void on_event(Event e) override { detector_.add(e); }

  GovernedStreamingDetector& detector() { return detector_; }
  const GovernedStreamingDetector& detector() const { return detector_; }

 private:
  GovernedStreamingDetector detector_;
};

}  // namespace wolf
