#include "wolf.hpp"

#include <sstream>

namespace wolf {

namespace {

ConfigIssue fatal_issue(const std::string& message) {
  return ConfigIssue{true, message};
}

ConfigIssue warning(const std::string& message) {
  return ConfigIssue{false, message};
}

}  // namespace

std::vector<ConfigIssue> Config::validate() const {
  std::vector<ConfigIssue> issues;

  // Fatal: an exploded run would crash or degenerate into a no-op.
  if (jobs < 0) issues.push_back(fatal_issue("jobs must be >= 0"));
  if (deadline_ms < 0)
    issues.push_back(fatal_issue("deadline_ms must be >= 0"));
  if (runs <= 0) issues.push_back(fatal_issue("runs must be >= 1"));
  if (record_attempts <= 0)
    issues.push_back(fatal_issue("record_attempts must be >= 1"));
  if (max_steps == 0) issues.push_back(fatal_issue("max_steps must be >= 1"));
  if (detector.max_cycle_length < 2)
    issues.push_back(
        fatal_issue("detector.max_cycle_length must be >= 2 (a deadlock "
                    "needs at least two threads)"));
  if (detector.max_cycles == 0)
    issues.push_back(fatal_issue("detector.max_cycles must be >= 1"));
  if (replay.attempts <= 0)
    issues.push_back(fatal_issue("replay.attempts must be >= 1"));
  if (window_events == 0)
    issues.push_back(
        fatal_issue("window_events must be >= 1 (the governed detector "
                    "cannot close zero-event windows)"));
  if (window_deadline_ms < 0)
    issues.push_back(fatal_issue("window_deadline_ms must be >= 0"));
  if (pipeline_depth == 1)
    issues.push_back(
        fatal_issue("pipeline_depth must be 0 (auto) or >= 2 (a depth-1 "
                    "ring serializes decode and ingestion — it cannot "
                    "overlap anything)"));

  // Conflicts: legal, but one of the two settings silently wins. Non-fatal
  // so existing invocations (e.g. --engine=reference with the default jobs)
  // keep working; callers surface these as warnings.
  if (detector.engine == CycleEngine::kReference && jobs != 1) {
    issues.push_back(
        warning("engine=reference enumerates serially; jobs only "
                "parallelises classification, not cycle search (use "
                "engine=scc or engine=arena for parallel enumeration)"));
  }
  if (detector.engine == CycleEngine::kReference &&
      detector.clock_prune_during_search) {
    issues.push_back(
        warning("detector.clock_prune_during_search is an scc-engine "
                "optimisation; the reference engine ignores it"));
  }
  if (!enable_pruner && detector.clock_prune_during_search) {
    issues.push_back(
        warning("enable_pruner=false is contradicted by "
                "detector.clock_prune_during_search, which applies the same "
                "(S,J) clock cut during enumeration — the ablation will not "
                "see the pruned cycles"));
  }
  // Pipelined governed ingestion (DESIGN.md §17): results are identical at
  // every jobs level. jobs > 1 with memory_budget_mb is a fully supported
  // combination — the serve sidecar runs every session that way. Memory
  // stays bounded because the decode→ingest ring is itself bounded
  // (pipeline_depth blocks): a producer that outruns governed ingestion
  // parks in RingQueue::push instead of queueing unbounded decoded blocks,
  // and the tuple store's budget is enforced at window boundaries exactly
  // as in the serial path (pinned by GovernorTest
  // JobsWithMemoryBudgetIsSupported). The one remaining heads-up is the
  // recompute path, where fan-out has nothing to grab:
  if (jobs != 1 && governed() && !incremental_scc) {
    issues.push_back(
        warning("jobs > 1 with incremental_scc=false: the recompute path "
                "has no per-SCC structure to fan out, so window detection "
                "stays serial (only decode pipelining applies)"));
  }
  if (pipeline_depth >= 2 && jobs == 1) {
    issues.push_back(
        warning("pipeline_depth is set but jobs=1: the governed path "
                "ingests serially and the decode ring is never built"));
  }
  if (deadline_ms != 0 && replay.retry.attempt_deadline_ms != 0 &&
      replay.retry.attempt_deadline_ms != deadline_ms) {
    issues.push_back(
        warning("both deadline_ms and replay.retry.attempt_deadline_ms are "
                "set; the shared deadline_ms wins"));
  }
  // A fault plan that stalls or wedges execution needs a retry budget (and
  // ideally a deadline) to absorb the faulted attempts; with attempts=1 the
  // first injected fault is the final answer.
  if (fault != nullptr && fault->faults_execution()) {
    if (record_attempts <= 1 || replay.attempts <= 1) {
      issues.push_back(
          warning("fault plan injects execution faults but the retry budget "
                  "is a single attempt (record_attempts/replay.attempts); "
                  "the first fault will be terminal — raise --retry to let "
                  "the pipeline absorb injected faults"));
    }
    if (fault->drop_force_releases && deadline_ms == 0 &&
        executor.deadline_ms == 0) {
      issues.push_back(
          warning("fault plan drops force-releases but no deadline is set; "
                  "a wedged rt run can only be ended by the watchdog — set "
                  "deadline_ms"));
    }
  }
  return issues;
}

WolfOptions Config::wolf_options() const {
  WolfOptions o;
  o.seed = seed;
  o.detector = detector;
  o.replay = replay;
  o.record_attempts = record_attempts;
  o.max_steps = max_steps;
  o.enable_pruner = enable_pruner;
  o.enable_generator_check = enable_generator_check;
  o.fault = fault;
  // Shared scalars override the section fields they shadow.
  o.jobs = jobs;
  o.detector.jobs = jobs;
  o.replay.seed = seed;
  if (deadline_ms != 0) o.replay.retry.attempt_deadline_ms = deadline_ms;
  return o;
}

MultiRunOptions Config::multi_options() const {
  MultiRunOptions o;
  o.runs = runs;
  o.seed = seed;
  o.jobs = jobs;
  o.wolf = wolf_options();
  return o;
}

baseline::DfOptions Config::df_options() const {
  baseline::DfOptions o;
  o.seed = seed;
  o.detector = detector;
  o.replay = replay;
  o.record_attempts = record_attempts;
  o.max_steps = max_steps;
  // The baseline is the serial algorithm of the DeadlockFuzzer paper; it
  // has no jobs knob, so only the seed and deadline fold in.
  o.replay.seed = seed;
  if (deadline_ms != 0) o.replay.retry.attempt_deadline_ms = deadline_ms;
  return o;
}

GovernorOptions Config::governor_options() const {
  GovernorOptions o;
  o.memory_budget_mb = memory_budget_mb;
  o.window_events = window_events;
  o.window_deadline_ms = window_deadline_ms;
  o.incremental_scc = incremental_scc;
  o.on_cycle = on_cycle;
  o.detector = detector;
  // One Config::jobs feeds all three parallel surfaces: reader decode (the
  // caller's StreamTraceReader options), the decode→ingest pipeline, and
  // per-SCC window fan-out.
  o.detector.jobs = jobs;
  o.jobs = jobs;
  o.pipeline_depth = pipeline_depth;
  o.fault = fault;
  return o;
}

rt::ExecutorOptions Config::executor_options() const {
  rt::ExecutorOptions o = executor;
  o.seed = seed;
  if (deadline_ms != 0) o.deadline_ms = deadline_ms;
  o.fault = fault != nullptr ? fault : executor.fault;
  return o;
}

}  // namespace wolf
