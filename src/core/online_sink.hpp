// Online detection bookkeeping, as the paper's instrumentation performs it:
// D_σ tuples and the τ/V clock state are maintained *during* execution
// (Algorithm 1), not reconstructed afterwards. Attach an OnlineAnalysisSink
// to a substrate to pay the true detection-instrumentation cost at runtime —
// this is what the Table-1 slowdown column measures — and to have detection
// results available the moment the program exits.
#pragma once

#include "clock/clock_tracker.hpp"
#include "core/lock_dependency.hpp"
#include "trace/recorder.hpp"

namespace wolf {

// A thin TraceSink adapter over LockDependencyBuilder — the same incremental
// engine the offline and streaming paths use, so the online relation is the
// one a post-mortem rebuild of the same event stream would produce.
class OnlineAnalysisSink final : public TraceSink {
 public:
  void on_event(Event e) override { builder_.add(e); }

  // Finalizes and returns the accumulated relation (computing the
  // deduplicated view); leaves the sink reusable after clear().
  LockDependency take_dependency() { return builder_.take_dependency(); }
  const ClockTracker& clocks() const { return builder_.clocks(); }
  std::size_t tuple_count() const { return builder_.tuple_count(); }
  void clear() { builder_.clear(); }

 private:
  LockDependencyBuilder builder_;
};

}  // namespace wolf
