// Online detection bookkeeping, as the paper's instrumentation performs it:
// D_σ tuples and the τ/V clock state are maintained *during* execution
// (Algorithm 1), not reconstructed afterwards. Attach an OnlineAnalysisSink
// to a substrate to pay the true detection-instrumentation cost at runtime —
// this is what the Table-1 slowdown column measures — and to have detection
// results available the moment the program exits.
#pragma once

#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "clock/clock_tracker.hpp"
#include "core/lock_dependency.hpp"
#include "trace/recorder.hpp"

namespace wolf {

class OnlineAnalysisSink final : public TraceSink {
 public:
  void on_event(Event e) override;

  // Finalizes and returns the accumulated relation (computing the
  // deduplicated view); leaves the sink reusable after clear().
  LockDependency take_dependency();
  const ClockTracker& clocks() const { return clocks_; }
  std::size_t tuple_count() const { return dep_.tuples.size(); }
  void clear();

 private:
  LockDependency dep_;
  ClockTracker clocks_;
  std::map<ThreadId, std::vector<std::pair<LockId, ExecIndex>>> held_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace wolf
