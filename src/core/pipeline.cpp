#include "core/pipeline.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "robust/fault.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace wolf {

const char* to_string(Classification c) {
  switch (c) {
    case Classification::kFalseByPruner:
      return "false(pruner)";
    case Classification::kFalseByGenerator:
      return "false(generator)";
    case Classification::kReproduced:
      return "reproduced";
    case Classification::kUnknown:
      return "unknown";
  }
  return "?";
}

int WolfReport::count_cycles(Classification c) const {
  int n = 0;
  for (const CycleReport& r : cycles)
    if (r.classification == c) ++n;
  return n;
}

int WolfReport::count_defects(Classification c) const {
  int n = 0;
  for (const DefectReport& r : defects)
    if (r.classification == c) ++n;
  return n;
}

int WolfReport::false_positive_cycles() const {
  return count_cycles(Classification::kFalseByPruner) +
         count_cycles(Classification::kFalseByGenerator);
}

int WolfReport::false_positive_defects() const {
  return count_defects(Classification::kFalseByPruner) +
         count_defects(Classification::kFalseByGenerator);
}

std::string WolfReport::summary(const SiteTable& sites) const {
  std::ostringstream os;
  os << "WOLF report: " << detection.cycles.size() << " cycle(s), "
     << detection.defects.size() << " defect(s)\n";
  int degraded = 0;
  for (const CycleReport& r : cycles)
    if (r.degraded()) ++degraded;
  if (degraded > 0)
    os << "  " << degraded
       << " cycle(s) degraded to unknown by classification failures\n";
  for (const DefectReport& d : defects) {
    os << "  defect [";
    for (std::size_t i = 0; i < d.signature.size(); ++i) {
      if (i != 0) os << ", ";
      os << sites.name(d.signature[i]);
    }
    os << "] -> " << to_string(d.classification) << " ("
       << d.cycle_indices.size() << " cycle(s))\n";
  }
  return os.str();
}

namespace {

// Fills `report.failure_reason` for a replay series that produced nothing but
// timed-out trials — the cycle is kept (kUnknown) instead of wedging or
// aborting the whole analysis.
void note_all_timeouts(CycleReport& report) {
  const ReplayStats& s = report.replay_stats;
  if (s.attempts > 0 && s.timeouts == s.attempts)
    report.failure_reason = "every replay trial timed out";
}

// Test hook: FaultPlan::classify_throw_cycle simulates a classification stage
// crashing for one specific cycle.
void maybe_throw_injected(const WolfOptions& options, std::size_t cycle_index) {
  if (options.fault != nullptr &&
      options.fault->classify_throw_cycle == static_cast<int>(cycle_index))
    throw std::runtime_error(
        "fault injection: classification stage threw for cycle " +
        std::to_string(cycle_index));
}

}  // namespace

CycleReport classify_cycle(const sim::Program& program,
                           const Detection& detection, std::size_t cycle_index,
                           const WolfOptions& options) {
  WOLF_CHECK(cycle_index < detection.cycles.size());
  const PotentialDeadlock& cycle = detection.cycles[cycle_index];

  CycleReport report;
  report.cycle_index = cycle_index;
  try {
    maybe_throw_injected(options, cycle_index);
    report.prune_verdict =
        prune_cycle(cycle, detection.dep, detection.clocks);
    if (is_false(report.prune_verdict)) {
      report.classification = Classification::kFalseByPruner;
      return report;
    }

    GeneratorResult gen = generate(cycle, detection.dep);
    report.gs_vertices = gen.gs.vertex_count();
    if (!gen.feasible) {
      report.classification = Classification::kFalseByGenerator;
      return report;
    }

    ReplayOptions replay_options = options.replay;
    replay_options.max_steps = options.max_steps;
    replay_options.fault = options.fault;
    report.replay_stats =
        replay(program, cycle, detection.dep, gen.gs, replay_options);
    if (report.replay_stats.reproduced()) {
      report.classification = Classification::kReproduced;
    } else {
      report.classification = Classification::kUnknown;
      note_all_timeouts(report);
    }
  } catch (const std::exception& e) {
    report.classification = Classification::kUnknown;
    report.failure_reason = e.what();
  }
  return report;
}

namespace {

Classification defect_classification(const std::vector<CycleReport>& cycles,
                                     const Defect& defect) {
  bool any_reproduced = false;
  bool any_unknown = false;
  bool any_generator_false = false;
  for (std::size_t c : defect.cycle_idx) {
    switch (cycles[c].classification) {
      case Classification::kReproduced:
        any_reproduced = true;
        break;
      case Classification::kUnknown:
        any_unknown = true;
        break;
      case Classification::kFalseByGenerator:
        any_generator_false = true;
        break;
      case Classification::kFalseByPruner:
        break;
    }
  }
  // One deadlocking re-execution proves the source location defective
  // (§4.3); conversely a defect is false only when every dynamic occurrence
  // is false.
  if (any_reproduced) return Classification::kReproduced;
  if (any_unknown) return Classification::kUnknown;
  return any_generator_false ? Classification::kFalseByGenerator
                             : Classification::kFalseByPruner;
}

WolfReport analyze(const sim::Program& program, Trace trace,
                   const WolfOptions& options, double record_seconds) {
  WolfReport report;
  report.trace_recorded = true;
  report.timings.record_seconds = record_seconds;

  Stopwatch watch;
  report.detection = detect(trace, options.detector);
  report.timings.detect_seconds = watch.seconds();

  // Classify every cycle. Phase timings are accumulated per stage so the
  // Fig. 10 harness can report detection (prune+generate) and reproduction
  // overheads separately.
  std::uint64_t replay_seed = mix64(options.seed ^ 0x57a7e5ULL);
  // A stage that throws or times out degrades only its own cycle to
  // kUnknown (with the reason recorded); the remaining cycles still
  // classify normally.
  for (std::size_t c = 0; c < report.detection.cycles.size(); ++c) {
    CycleReport cycle_report;
    cycle_report.cycle_index = c;

    try {
      maybe_throw_injected(options, c);

      watch.reset();
      cycle_report.prune_verdict = prune_cycle(
          report.detection.cycles[c], report.detection.dep,
          report.detection.clocks);
      report.timings.prune_seconds += watch.seconds();

      if (options.enable_pruner && is_false(cycle_report.prune_verdict)) {
        cycle_report.classification = Classification::kFalseByPruner;
        report.cycles.push_back(cycle_report);
        continue;
      }

      watch.reset();
      GeneratorResult gen =
          generate(report.detection.cycles[c], report.detection.dep);
      report.timings.generate_seconds += watch.seconds();
      cycle_report.gs_vertices = gen.gs.vertex_count();

      if (options.enable_generator_check && !gen.feasible) {
        cycle_report.classification = Classification::kFalseByGenerator;
        report.cycles.push_back(cycle_report);
        continue;
      }

      ReplayOptions replay_options = options.replay;
      replay_options.seed = replay_seed = mix64(replay_seed);
      replay_options.max_steps = options.max_steps;
      replay_options.fault = options.fault;
      watch.reset();
      cycle_report.replay_stats =
          replay(program, report.detection.cycles[c], report.detection.dep,
                 gen.gs, replay_options);
      report.timings.replay_seconds += watch.seconds();
      if (cycle_report.replay_stats.reproduced()) {
        cycle_report.classification = Classification::kReproduced;
      } else {
        cycle_report.classification = Classification::kUnknown;
        note_all_timeouts(cycle_report);
      }
    } catch (const std::exception& e) {
      cycle_report.classification = Classification::kUnknown;
      cycle_report.failure_reason = e.what();
    }
    report.cycles.push_back(cycle_report);
  }

  // Defect rollup.
  for (const Defect& defect : report.detection.defects) {
    DefectReport d;
    d.signature = defect.signature;
    d.cycle_indices = defect.cycle_idx;
    d.classification = defect_classification(report.cycles, defect);
    report.defects.push_back(std::move(d));
  }

  // Average |Vs| over cycles that reached the Generator.
  int generated = 0;
  double total_vs = 0;
  for (const CycleReport& r : report.cycles) {
    if (r.gs_vertices > 0) {
      ++generated;
      total_vs += r.gs_vertices;
    }
  }
  report.avg_gs_vertices = generated == 0 ? 0 : total_vs / generated;
  return report;
}

}  // namespace

WolfReport run_wolf(const sim::Program& program, const WolfOptions& options) {
  Stopwatch watch;
  robust::RetryPolicy record_retry = options.replay.retry;
  record_retry.max_attempts = options.record_attempts;
  auto trace =
      sim::record_trace(program, options.seed, record_retry, options.max_steps);
  double record_seconds = watch.seconds();
  if (!trace.has_value()) {
    WolfReport report;
    report.trace_recorded = false;
    report.timings.record_seconds = record_seconds;
    return report;
  }
  return analyze(program, std::move(*trace), options, record_seconds);
}

WolfReport analyze_trace(const sim::Program& program, const Trace& trace,
                         const WolfOptions& options) {
  return analyze(program, trace, options, 0.0);
}

}  // namespace wolf
