#include "core/pipeline.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "robust/fault.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace wolf {

const char* to_string(Classification c) {
  switch (c) {
    case Classification::kFalseByPruner:
      return "false(pruner)";
    case Classification::kFalseByGenerator:
      return "false(generator)";
    case Classification::kReproduced:
      return "reproduced";
    case Classification::kUnknown:
      return "unknown";
  }
  return "?";
}

int WolfReport::count_cycles(Classification c) const {
  int n = 0;
  for (const CycleReport& r : cycles)
    if (r.classification == c) ++n;
  return n;
}

int WolfReport::count_defects(Classification c) const {
  int n = 0;
  for (const DefectReport& r : defects)
    if (r.classification == c) ++n;
  return n;
}

int WolfReport::false_positive_cycles() const {
  return count_cycles(Classification::kFalseByPruner) +
         count_cycles(Classification::kFalseByGenerator);
}

int WolfReport::false_positive_defects() const {
  return count_defects(Classification::kFalseByPruner) +
         count_defects(Classification::kFalseByGenerator);
}

std::string WolfReport::summary(const SiteTable& sites) const {
  std::ostringstream os;
  os << "WOLF report: " << detection.cycles.size() << " cycle(s), "
     << detection.defects.size() << " defect(s)\n";
  int degraded = 0;
  for (const CycleReport& r : cycles)
    if (r.degraded()) ++degraded;
  if (degraded > 0)
    os << "  " << degraded
       << " cycle(s) degraded to unknown by classification failures\n";
  for (const DefectReport& d : defects) {
    os << "  defect [";
    for (std::size_t i = 0; i < d.signature.size(); ++i) {
      if (i != 0) os << ", ";
      os << sites.name(d.signature[i]);
    }
    os << "] -> " << to_string(d.classification) << " ("
       << d.cycle_indices.size() << " cycle(s))\n";
  }
  return os.str();
}

namespace {

// Fills `report.failure_reason` for a replay series that produced nothing but
// timed-out trials — the cycle is kept (kUnknown) instead of wedging or
// aborting the whole analysis.
void note_all_timeouts(CycleReport& report) {
  const ReplayStats& s = report.replay_stats;
  if (s.attempts > 0 && s.timeouts == s.attempts)
    report.failure_reason = "every replay trial timed out";
}

// Test hook: FaultPlan::classify_throw_cycle simulates a classification stage
// crashing for one specific cycle.
void maybe_throw_injected(const WolfOptions& options, std::size_t cycle_index) {
  if (options.fault != nullptr &&
      options.fault->classify_throw_cycle == static_cast<int>(cycle_index))
    throw std::runtime_error(
        "fault injection: classification stage threw for cycle " +
        std::to_string(cycle_index));
}

}  // namespace

CycleReport classify_cycle(const sim::Program& program,
                           const Detection& detection, std::size_t cycle_index,
                           const WolfOptions& options) {
  WOLF_CHECK(cycle_index < detection.cycles.size());
  const PotentialDeadlock& cycle = detection.cycles[cycle_index];

  CycleReport report;
  report.cycle_index = cycle_index;
  try {
    maybe_throw_injected(options, cycle_index);
    report.prune_verdict =
        prune_cycle(cycle, detection.dep, detection.clocks);
    if (is_false(report.prune_verdict)) {
      report.classification = Classification::kFalseByPruner;
      return report;
    }

    GeneratorResult gen = generate(cycle, detection.dep);
    report.gs_vertices = gen.gs.vertex_count();
    if (!gen.feasible) {
      report.classification = Classification::kFalseByGenerator;
      return report;
    }

    ReplayOptions replay_options = options.replay;
    replay_options.max_steps = options.max_steps;
    replay_options.fault = options.fault;
    report.replay_stats =
        replay(program, cycle, detection.dep, gen.gs, replay_options);
    if (report.replay_stats.reproduced()) {
      report.classification = Classification::kReproduced;
    } else {
      report.classification = Classification::kUnknown;
      note_all_timeouts(report);
    }
  } catch (const std::exception& e) {
    report.classification = Classification::kUnknown;
    report.failure_reason = e.what();
  }
  return report;
}

namespace {

Classification defect_classification(const std::vector<CycleReport>& cycles,
                                     const Defect& defect) {
  bool any_reproduced = false;
  bool any_unknown = false;
  bool any_generator_false = false;
  for (std::size_t c : defect.cycle_idx) {
    switch (cycles[c].classification) {
      case Classification::kReproduced:
        any_reproduced = true;
        break;
      case Classification::kUnknown:
        any_unknown = true;
        break;
      case Classification::kFalseByGenerator:
        any_generator_false = true;
        break;
      case Classification::kFalseByPruner:
        break;
    }
  }
  // One deadlocking re-execution proves the source location defective
  // (§4.3); conversely a defect is false only when every dynamic occurrence
  // is false.
  if (any_reproduced) return Classification::kReproduced;
  if (any_unknown) return Classification::kUnknown;
  return any_generator_false ? Classification::kFalseByGenerator
                             : Classification::kFalseByPruner;
}

// Per-cycle scratch state of the parallel classification engine. Workers
// write only their own slot; everything is merged serially afterwards.
struct CycleStage {
  CycleReport report;
  GeneratorResult gen;
  bool replay_needed = false;
  double prune_seconds = 0;
  double generate_seconds = 0;
  double replay_seconds = 0;
};

// Classification back half of the pipeline, shared by the materialized and
// streaming front ends: takes a finished Detection and runs the parallel
// prune/generate/replay engine over its cycles.
WolfReport classify_detection(const sim::Program& program, Detection detection,
                              const WolfOptions& options,
                              double record_seconds, double detect_seconds) {
  WolfReport report;
  report.trace_recorded = true;
  report.timings.record_seconds = record_seconds;
  report.detection = std::move(detection);
  report.timings.detect_seconds = detect_seconds;

  const std::size_t cycle_count = report.detection.cycles.size();
  const int jobs = options.jobs <= 0 ? ThreadPool::hardware_jobs()
                                     : options.jobs;
  report.jobs_used = jobs;
  ThreadPool pool(cycle_count <= 1 ? 1 : jobs);

  // Trace-level Gs scaffolding, shared read-only by every worker.
  const DependencyIndex dep_index =
      DependencyIndex::build(report.detection.dep);

  // Classification runs in two parallel phases over independent cycles.
  // Per-stage timings are accumulated (as CPU seconds, in cycle-index
  // order) so the Fig. 10 harness can report detection (prune+generate)
  // and reproduction overheads separately.
  //
  // Phase 1 — feasibility: prune + generate per cycle. A stage that throws
  // degrades only its own cycle to kUnknown (with the reason recorded); the
  // remaining cycles still classify normally.
  std::vector<CycleStage> stages(cycle_count);
  Stopwatch watch;
  pool.parallel_for_each(cycle_count, [&](std::size_t c) {
    CycleStage& stage = stages[c];
    stage.report.cycle_index = c;
    try {
      maybe_throw_injected(options, c);

      Stopwatch stage_watch;
      stage.report.prune_verdict = prune_cycle(
          report.detection.cycles[c], report.detection.dep,
          report.detection.clocks);
      stage.prune_seconds = stage_watch.seconds();

      if (options.enable_pruner && is_false(stage.report.prune_verdict)) {
        stage.report.classification = Classification::kFalseByPruner;
        return;
      }

      stage_watch.reset();
      stage.gen =
          generate(report.detection.cycles[c], report.detection.dep,
                   dep_index);
      stage.generate_seconds = stage_watch.seconds();
      stage.report.gs_vertices = stage.gen.gs.vertex_count();

      if (options.enable_generator_check && !stage.gen.feasible) {
        stage.report.classification = Classification::kFalseByGenerator;
        return;
      }
      stage.replay_needed = true;
    } catch (const std::exception& e) {
      stage.report.classification = Classification::kUnknown;
      stage.report.failure_reason = e.what();
    }
  });
  report.timings.feasibility_wall_seconds = watch.seconds();

  // Replay seeds come from the serial seed chain, advanced in cycle-index
  // order over exactly the cycles that reach the replay stage. Which cycles
  // those are is deterministic (prune and generate consume no randomness),
  // so every jobs level — including the historical serial pipeline this
  // replaces — sees identical per-cycle seeds, making reports bit-identical.
  std::uint64_t replay_seed = mix64(options.seed ^ 0x57a7e5ULL);
  std::vector<std::uint64_t> replay_seeds(cycle_count, 0);
  for (std::size_t c = 0; c < cycle_count; ++c)
    if (stages[c].replay_needed)
      replay_seeds[c] = replay_seed = mix64(replay_seed);

  // Phase 2 — replay the surviving cycles.
  watch.reset();
  pool.parallel_for_each(cycle_count, [&](std::size_t c) {
    CycleStage& stage = stages[c];
    if (!stage.replay_needed) return;
    try {
      ReplayOptions replay_options = options.replay;
      replay_options.seed = replay_seeds[c];
      replay_options.max_steps = options.max_steps;
      replay_options.fault = options.fault;
      Stopwatch stage_watch;
      stage.report.replay_stats =
          replay(program, report.detection.cycles[c], report.detection.dep,
                 stage.gen.gs, replay_options);
      stage.replay_seconds = stage_watch.seconds();
      if (stage.report.replay_stats.reproduced()) {
        stage.report.classification = Classification::kReproduced;
      } else {
        stage.report.classification = Classification::kUnknown;
        note_all_timeouts(stage.report);
      }
    } catch (const std::exception& e) {
      stage.report.classification = Classification::kUnknown;
      stage.report.failure_reason = e.what();
    }
  });
  report.timings.replay_wall_seconds = watch.seconds();

  // Deterministic merge, in cycle-index order.
  report.cycles.reserve(cycle_count);
  for (CycleStage& stage : stages) {
    report.timings.prune_seconds += stage.prune_seconds;
    report.timings.generate_seconds += stage.generate_seconds;
    report.timings.replay_seconds += stage.replay_seconds;
    report.cycles.push_back(std::move(stage.report));
  }

  // Defect rollup.
  for (const Defect& defect : report.detection.defects) {
    DefectReport d;
    d.signature = defect.signature;
    d.cycle_indices = defect.cycle_idx;
    d.classification = defect_classification(report.cycles, defect);
    report.defects.push_back(std::move(d));
  }

  // Average |Vs| over cycles that reached the Generator.
  int generated = 0;
  double total_vs = 0;
  for (const CycleReport& r : report.cycles) {
    if (r.gs_vertices > 0) {
      ++generated;
      total_vs += r.gs_vertices;
    }
  }
  report.avg_gs_vertices = generated == 0 ? 0 : total_vs / generated;
  return report;
}

WolfReport analyze(const sim::Program& program, const Trace& trace,
                   const WolfOptions& options, double record_seconds) {
  Stopwatch watch;
  Detection detection = detect(trace, options.detector);
  return classify_detection(program, std::move(detection), options,
                            record_seconds, watch.seconds());
}

}  // namespace

WolfReport run_wolf(const sim::Program& program, const WolfOptions& options) {
  Stopwatch watch;
  robust::RetryPolicy record_retry = options.replay.retry;
  record_retry.max_attempts = options.record_attempts;
  auto trace =
      sim::record_trace(program, options.seed, record_retry, options.max_steps);
  double record_seconds = watch.seconds();
  if (!trace.has_value()) {
    WolfReport report;
    report.trace_recorded = false;
    report.timings.record_seconds = record_seconds;
    return report;
  }
  return analyze(program, *trace, options, record_seconds);
}

WolfReport analyze_trace(const sim::Program& program, const Trace& trace,
                         const WolfOptions& options) {
  return analyze(program, trace, options, 0.0);
}

WolfReport analyze_reader(const sim::Program& program, TraceReader& reader,
                          const WolfOptions& options) {
  Stopwatch watch;
  Detection detection = detect_reader(reader, options.detector);
  return classify_detection(program, std::move(detection), options, 0.0,
                            watch.seconds());
}

}  // namespace wolf
