#include "core/pipeline.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "obs/span.hpp"
#include "robust/fault.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"
#include "trace/trace_reader.hpp"
#include "wolf.hpp"

namespace wolf {

const char* to_string(Classification c) {
  switch (c) {
    case Classification::kFalseByPruner:
      return "false(pruner)";
    case Classification::kFalseByGenerator:
      return "false(generator)";
    case Classification::kReproduced:
      return "reproduced";
    case Classification::kUnknown:
      return "unknown";
  }
  return "?";
}

PhaseTimings PhaseTimings::from_spans(
    const std::vector<obs::SpanRecord>& spans) {
  PhaseTimings t;
  // (tag, duration) per parallel stage; summed below in tag order so the
  // totals are independent of worker scheduling.
  std::vector<std::pair<std::uint64_t, double>> prune, generate, replay;
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "phase/record") {
      t.record_seconds += s.duration_seconds;
    } else if (s.name == "phase/detect") {
      t.detect_seconds += s.duration_seconds;
    } else if (s.name == "phase/feasibility") {
      t.feasibility_wall_seconds += s.duration_seconds;
    } else if (s.name == "phase/replay") {
      t.replay_wall_seconds += s.duration_seconds;
    } else if (s.name == "cycle/prune") {
      prune.emplace_back(s.tag, s.duration_seconds);
    } else if (s.name == "cycle/generate") {
      generate.emplace_back(s.tag, s.duration_seconds);
    } else if (s.name == "cycle/replay") {
      replay.emplace_back(s.tag, s.duration_seconds);
    }
  }
  const auto sum_in_tag_order =
      [](std::vector<std::pair<std::uint64_t, double>>& stage) {
        std::sort(stage.begin(), stage.end(),
                  [](const std::pair<std::uint64_t, double>& a,
                     const std::pair<std::uint64_t, double>& b) {
                    return a.first < b.first;
                  });
        double total = 0;
        for (const auto& entry : stage) total += entry.second;
        return total;
      };
  t.prune_seconds = sum_in_tag_order(prune);
  t.generate_seconds = sum_in_tag_order(generate);
  t.replay_seconds = sum_in_tag_order(replay);
  return t;
}

int WolfReport::count_cycles(Classification c) const {
  int n = 0;
  for (const CycleReport& r : cycles)
    if (r.classification == c) ++n;
  return n;
}

int WolfReport::count_defects(Classification c) const {
  int n = 0;
  for (const DefectReport& r : defects)
    if (r.classification == c) ++n;
  return n;
}

int WolfReport::false_positive_cycles() const {
  return count_cycles(Classification::kFalseByPruner) +
         count_cycles(Classification::kFalseByGenerator);
}

int WolfReport::false_positive_defects() const {
  return count_defects(Classification::kFalseByPruner) +
         count_defects(Classification::kFalseByGenerator);
}

std::string WolfReport::summary(const SiteTable& sites) const {
  std::ostringstream os;
  os << "WOLF report: " << detection.cycles.size() << " cycle(s), "
     << detection.defects.size() << " defect(s)\n";
  int degraded = 0;
  for (const CycleReport& r : cycles)
    if (r.degraded()) ++degraded;
  if (degraded > 0)
    os << "  " << degraded
       << " cycle(s) degraded to unknown by classification failures\n";
  for (const DefectReport& d : defects) {
    os << "  defect [";
    for (std::size_t i = 0; i < d.signature.size(); ++i) {
      if (i != 0) os << ", ";
      os << sites.name(d.signature[i]);
    }
    os << "] -> " << to_string(d.classification) << " ("
       << d.cycle_indices.size() << " cycle(s))\n";
  }
  return os.str();
}

namespace {

// Fills `report.failure_reason` for a replay series that produced nothing but
// timed-out trials — the cycle is kept (kUnknown) instead of wedging or
// aborting the whole analysis.
void note_all_timeouts(CycleReport& report) {
  const ReplayStats& s = report.replay_stats;
  if (s.attempts > 0 && s.timeouts == s.attempts)
    report.failure_reason = "every replay trial timed out";
}

// Test hook: FaultPlan::classify_throw_cycle simulates a classification stage
// crashing for one specific cycle.
void maybe_throw_injected(const WolfOptions& options, std::size_t cycle_index) {
  if (options.fault != nullptr &&
      options.fault->classify_throw_cycle == static_cast<int>(cycle_index))
    throw std::runtime_error(
        "fault injection: classification stage threw for cycle " +
        std::to_string(cycle_index));
}

}  // namespace

CycleReport classify_cycle(const sim::Program& program,
                           const Detection& detection, std::size_t cycle_index,
                           const WolfOptions& options) {
  WOLF_CHECK(cycle_index < detection.cycles.size());
  const PotentialDeadlock& cycle = detection.cycles[cycle_index];

  CycleReport report;
  report.cycle_index = cycle_index;
  try {
    maybe_throw_injected(options, cycle_index);
    report.prune_verdict =
        prune_cycle(cycle, detection.dep, detection.clocks);
    if (is_false(report.prune_verdict)) {
      report.classification = Classification::kFalseByPruner;
      return report;
    }

    GeneratorResult gen = generate(cycle, detection.dep);
    report.gs_vertices = gen.gs.vertex_count();
    if (!gen.feasible) {
      report.classification = Classification::kFalseByGenerator;
      return report;
    }

    ReplayOptions replay_options = options.replay;
    replay_options.max_steps = options.max_steps;
    replay_options.fault = options.fault;
    report.replay_stats =
        replay(program, cycle, detection.dep, gen.gs, replay_options);
    if (report.replay_stats.reproduced()) {
      report.classification = Classification::kReproduced;
    } else {
      report.classification = Classification::kUnknown;
      note_all_timeouts(report);
    }
  } catch (const std::exception& e) {
    report.classification = Classification::kUnknown;
    report.failure_reason = e.what();
  }
  return report;
}

namespace {

Classification defect_classification(const std::vector<CycleReport>& cycles,
                                     const Defect& defect) {
  bool any_reproduced = false;
  bool any_unknown = false;
  bool any_generator_false = false;
  for (std::size_t c : defect.cycle_idx) {
    switch (cycles[c].classification) {
      case Classification::kReproduced:
        any_reproduced = true;
        break;
      case Classification::kUnknown:
        any_unknown = true;
        break;
      case Classification::kFalseByGenerator:
        any_generator_false = true;
        break;
      case Classification::kFalseByPruner:
        break;
    }
  }
  // One deadlocking re-execution proves the source location defective
  // (§4.3); conversely a defect is false only when every dynamic occurrence
  // is false.
  if (any_reproduced) return Classification::kReproduced;
  if (any_unknown) return Classification::kUnknown;
  return any_generator_false ? Classification::kFalseByGenerator
                             : Classification::kFalseByPruner;
}

// Per-cycle scratch state of the parallel classification engine. Workers
// write only their own slot; everything is merged serially afterwards.
struct CycleStage {
  CycleReport report;
  GeneratorResult gen;
  bool replay_needed = false;
};

// Classification back half of the pipeline, shared by the materialized and
// streaming front ends: takes a finished Detection and runs the parallel
// prune/generate/replay engine over its cycles. Timing goes through the
// obs span sink (which already holds the caller's record/detect spans);
// the merged report carries the span tree plus the PhaseTimings view of it.
WolfReport classify_detection(const sim::Program& program, Detection detection,
                              const WolfOptions& options,
                              obs::SpanSink& sink) {
  WolfReport report;
  report.trace_recorded = true;
  report.detection = std::move(detection);

  const std::size_t cycle_count = report.detection.cycles.size();
  const int jobs = options.jobs <= 0 ? ThreadPool::hardware_jobs()
                                     : options.jobs;
  report.jobs_used = jobs;
  ThreadPool pool(cycle_count <= 1 ? 1 : jobs);

  // Trace-level Gs scaffolding, shared read-only by every worker.
  const DependencyIndex dep_index =
      DependencyIndex::build(report.detection.dep);

  // Classification runs in two parallel phases over independent cycles.
  // Per-stage timings are accumulated (as CPU seconds, in cycle-index
  // order) so the Fig. 10 harness can report detection (prune+generate)
  // and reproduction overheads separately.
  //
  // Phase 1 — feasibility: prune + generate per cycle. A stage that throws
  // degrades only its own cycle to kUnknown (with the reason recorded); the
  // remaining cycles still classify normally.
  std::vector<CycleStage> stages(cycle_count);
  {
    obs::Span feasibility_span(&sink, "phase/feasibility");
    const obs::SpanId feasibility_id = feasibility_span.id();
    pool.parallel_for_each(cycle_count, [&](std::size_t c) {
      CycleStage& stage = stages[c];
      stage.report.cycle_index = c;
      try {
        maybe_throw_injected(options, c);

        {
          obs::Span prune_span(&sink, "cycle/prune", feasibility_id, c);
          stage.report.prune_verdict = prune_cycle(
              report.detection.cycles[c], report.detection.dep,
              report.detection.clocks);
        }

        if (options.enable_pruner && is_false(stage.report.prune_verdict)) {
          stage.report.classification = Classification::kFalseByPruner;
          return;
        }

        {
          obs::Span generate_span(&sink, "cycle/generate", feasibility_id, c);
          stage.gen =
              generate(report.detection.cycles[c], report.detection.dep,
                       dep_index);
        }
        stage.report.gs_vertices = stage.gen.gs.vertex_count();

        if (options.enable_generator_check && !stage.gen.feasible) {
          stage.report.classification = Classification::kFalseByGenerator;
          return;
        }
        stage.replay_needed = true;
      } catch (const std::exception& e) {
        stage.report.classification = Classification::kUnknown;
        stage.report.failure_reason = e.what();
      }
    });
  }

  // Replay seeds come from the serial seed chain, advanced in cycle-index
  // order over exactly the cycles that reach the replay stage. Which cycles
  // those are is deterministic (prune and generate consume no randomness),
  // so every jobs level — including the historical serial pipeline this
  // replaces — sees identical per-cycle seeds, making reports bit-identical.
  std::uint64_t replay_seed = mix64(options.seed ^ 0x57a7e5ULL);
  std::vector<std::uint64_t> replay_seeds(cycle_count, 0);
  for (std::size_t c = 0; c < cycle_count; ++c)
    if (stages[c].replay_needed)
      replay_seeds[c] = replay_seed = mix64(replay_seed);

  // Phase 2 — replay the surviving cycles.
  {
    obs::Span replay_span(&sink, "phase/replay");
    const obs::SpanId replay_id = replay_span.id();
    pool.parallel_for_each(cycle_count, [&](std::size_t c) {
      CycleStage& stage = stages[c];
      if (!stage.replay_needed) return;
      try {
        ReplayOptions replay_options = options.replay;
        replay_options.seed = replay_seeds[c];
        replay_options.max_steps = options.max_steps;
        replay_options.fault = options.fault;
        obs::Span cycle_span(&sink, "cycle/replay", replay_id, c);
        stage.report.replay_stats =
            replay(program, report.detection.cycles[c], report.detection.dep,
                   stage.gen.gs, replay_options);
        if (stage.report.replay_stats.reproduced()) {
          stage.report.classification = Classification::kReproduced;
        } else {
          stage.report.classification = Classification::kUnknown;
          note_all_timeouts(stage.report);
        }
      } catch (const std::exception& e) {
        stage.report.classification = Classification::kUnknown;
        stage.report.failure_reason = e.what();
      }
    });
  }

  // Deterministic merge, in cycle-index order.
  report.cycles.reserve(cycle_count);
  for (CycleStage& stage : stages)
    report.cycles.push_back(std::move(stage.report));

  // Defect rollup.
  for (const Defect& defect : report.detection.defects) {
    DefectReport d;
    d.signature = defect.signature;
    d.cycle_indices = defect.cycle_idx;
    d.classification = defect_classification(report.cycles, defect);
    report.defects.push_back(std::move(d));
  }

  // Average |Vs| over cycles that reached the Generator.
  int generated = 0;
  double total_vs = 0;
  for (const CycleReport& r : report.cycles) {
    if (r.gs_vertices > 0) {
      ++generated;
      total_vs += r.gs_vertices;
    }
  }
  report.avg_gs_vertices = generated == 0 ? 0 : total_vs / generated;

  report.spans = sink.take();
  report.timings = PhaseTimings::from_spans(report.spans);
  return report;
}

WolfReport analyze(const sim::Program& program, const Trace& trace,
                   const WolfOptions& options, obs::SpanSink& sink) {
  Detection detection;
  {
    obs::Span detect_span(&sink, "phase/detect");
    detection = detect(trace, options.detector);
  }
  return classify_detection(program, std::move(detection), options, sink);
}

}  // namespace

WolfReport run_wolf(const sim::Program& program, const WolfOptions& options) {
  obs::SpanSink sink;
  robust::RetryPolicy record_retry = options.replay.retry;
  record_retry.max_attempts = options.record_attempts;
  std::optional<Trace> trace;
  {
    obs::Span record_span(&sink, "phase/record");
    trace = sim::record_trace(program, options.seed, record_retry,
                              options.max_steps);
  }
  if (!trace.has_value()) {
    WolfReport report;
    report.trace_recorded = false;
    report.spans = sink.take();
    report.timings = PhaseTimings::from_spans(report.spans);
    return report;
  }
  return analyze(program, *trace, options, sink);
}

WolfReport analyze_trace(const sim::Program& program, const Trace& trace,
                         const WolfOptions& options) {
  obs::SpanSink sink;
  return analyze(program, trace, options, sink);
}

WolfReport analyze_session(const sim::Program& program, Session& session,
                           TraceReader& reader, const WolfOptions& options) {
  obs::SpanSink sink;
  Session::Verdict verdict;
  {
    obs::Span detect_span(&sink, "phase/detect");
    // ingest() owns the decode→ingest pipelining (DESIGN.md §17) when the
    // session's jobs ask for it; event delivery is identical to a serial
    // drain, so the Detection is bit-identical at every jobs level.
    session.ingest(reader);
    verdict = session.finish();
  }
  WolfReport report = classify_detection(program, std::move(verdict.detection),
                                         options, sink);
  if (verdict.governed) {
    report.governed = true;
    report.windows = std::move(verdict.windows);
    report.governor = std::move(verdict.governor);
  }
  return report;
}

WolfReport analyze_reader(const sim::Program& program, TraceReader& reader,
                          const WolfOptions& options) {
  Session session =
      Session::open_streaming(options.detector, options.jobs);
  return analyze_session(program, session, reader, options);
}

WolfReport analyze_reader_governed(const sim::Program& program,
                                   TraceReader& reader,
                                   const WolfOptions& options,
                                   const GovernorOptions& governor) {
  GovernorOptions gov = governor;
  gov.detector = options.detector;
  if (options.fault != nullptr) gov.fault = options.fault;
  Session session = Session::open_governed(gov);
  return analyze_session(program, session, reader, options);
}

}  // namespace wolf
