// Pruner — Algorithm 2.
//
// Uses the (S, J) vector clocks accumulated during detection to discard
// cycles whose threads provably cannot overlap at their deadlocking
// acquisitions:
//
//   * V_ti(tj).S > ηj.τ  — thread ti only begins executing after tj's
//     deadlocking acquisition has completed ("thread ti hasn't started"),
//     e.g. the Jigsaw ThreadCache pattern of Fig. 1 / cycle θ′1 of Fig. 4.
//   * V_ti(tj).J ≠ ⊥ ∧ V_ti(tj).J ≤ ηi.τ — tj was already joined when ti
//     made its deadlocking acquisition.
//
// Either condition on any ordered pair (ηi, ηj) of the cycle makes the
// deadlock infeasible for every schedule consistent with the observed
// start/join structure.
#pragma once

#include <string>
#include <vector>

#include "core/detector.hpp"

namespace wolf {

enum class PruneVerdict : std::uint8_t {
  kUnknown,          // the Pruner cannot rule the cycle out
  kFalseNotStarted,  // some ti starts only after ηj's acquisition
  kFalseJoined,      // some tj joined before ηi's acquisition
};

const char* to_string(PruneVerdict verdict);

inline bool is_false(PruneVerdict v) { return v != PruneVerdict::kUnknown; }

// Dense cache of the Pruner's per-thread-pair inputs, built once per
// detection and shared by batch prune() and the cycle engine's in-search
// clock pruning (DetectorOptions::clock_prune_during_search): the (S, J)
// view of every ordered thread pair is materialized into a flat matrix so
// per-cycle verdicts stop re-walking ClockTracker, and per-thread τ extrema
// over the canonical tuples give a thread-pair compatibility matrix —
// never_overlaps(ti, tj) is true when *no* acquisition of ti can overlap
// *any* acquisition of tj, letting the DFS reject a whole branch with one
// bit test before any per-tuple τ comparison.
class ClockPairMatrix {
 public:
  ClockPairMatrix() = default;
  ClockPairMatrix(const ClockTracker& clocks, const LockDependency& dep);

  // Cached clocks.view(t, u); (⊥,⊥) outside the observed thread range.
  const SJPair& view(ThreadId t, ThreadId u) const {
    static const SJPair kBottom{};
    if (!in_range(t) || !in_range(u)) return kBottom;
    return pairs_[index(t, u)];
  }

  // Algorithm 2's two conditions for the ordered tuple pair
  // (ηi of thread ti at τ tau_i, ηj of thread tj at τ tau_j).
  PruneVerdict pair_verdict(ThreadId ti, Timestamp tau_i, ThreadId tj,
                            Timestamp tau_j) const {
    const SJPair& v = view(ti, tj);
    if (v.S != kTsBottom && v.S > tau_j) return PruneVerdict::kFalseNotStarted;
    if (v.J != kTsBottom && v.J <= tau_i) return PruneVerdict::kFalseJoined;
    return PruneVerdict::kUnknown;
  }

  // True when either ordered condition holds for every canonical-tuple τ
  // combination of the pair — the pair can never appear together in a
  // surviving cycle, whatever tuples carry it.
  bool never_overlaps(ThreadId ti, ThreadId tj) const {
    if (!in_range(ti) || !in_range(tj)) return false;
    return never_[index(ti, tj)];
  }

 private:
  bool in_range(ThreadId t) const {
    return t >= 0 && t < static_cast<ThreadId>(threads_);
  }
  std::size_t index(ThreadId t, ThreadId u) const {
    return static_cast<std::size_t>(t) * threads_ +
           static_cast<std::size_t>(u);
  }

  std::size_t threads_ = 0;
  std::vector<SJPair> pairs_;  // threads_ × threads_, row-major
  std::vector<bool> never_;    // thread-pair compatibility matrix
};

// Verdict for a single cycle.
PruneVerdict prune_cycle(const PotentialDeadlock& cycle,
                         const LockDependency& dep,
                         const ClockTracker& clocks);

// The same verdict computed off the precomputed matrix — what prune() and
// the cycle engine use; bit-identical to the ClockTracker overload.
PruneVerdict prune_cycle(const PotentialDeadlock& cycle,
                         const LockDependency& dep,
                         const ClockPairMatrix& matrix);

// Verdicts for every cycle of a detection, aligned with Detection::cycles.
// Builds one ClockPairMatrix and reuses it across cycles.
std::vector<PruneVerdict> prune(const Detection& detection);

}  // namespace wolf
