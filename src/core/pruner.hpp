// Pruner — Algorithm 2.
//
// Uses the (S, J) vector clocks accumulated during detection to discard
// cycles whose threads provably cannot overlap at their deadlocking
// acquisitions:
//
//   * V_ti(tj).S > ηj.τ  — thread ti only begins executing after tj's
//     deadlocking acquisition has completed ("thread ti hasn't started"),
//     e.g. the Jigsaw ThreadCache pattern of Fig. 1 / cycle θ′1 of Fig. 4.
//   * V_ti(tj).J ≠ ⊥ ∧ V_ti(tj).J ≤ ηi.τ — tj was already joined when ti
//     made its deadlocking acquisition.
//
// Either condition on any ordered pair (ηi, ηj) of the cycle makes the
// deadlock infeasible for every schedule consistent with the observed
// start/join structure.
#pragma once

#include <string>
#include <vector>

#include "core/detector.hpp"

namespace wolf {

enum class PruneVerdict : std::uint8_t {
  kUnknown,          // the Pruner cannot rule the cycle out
  kFalseNotStarted,  // some ti starts only after ηj's acquisition
  kFalseJoined,      // some tj joined before ηi's acquisition
};

const char* to_string(PruneVerdict verdict);

inline bool is_false(PruneVerdict v) { return v != PruneVerdict::kUnknown; }

// Verdict for a single cycle.
PruneVerdict prune_cycle(const PotentialDeadlock& cycle,
                         const LockDependency& dep,
                         const ClockTracker& clocks);

// Verdicts for every cycle of a detection, aligned with Detection::cycles.
std::vector<PruneVerdict> prune(const Detection& detection);

}  // namespace wolf
