#include "core/generator.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/counters.hpp"
#include "support/check.hpp"

namespace wolf {

namespace {
const obs::Counter kGsNodes("generator.gs_nodes");
const obs::Counter kGsEdges("generator.gs_edges");
const obs::Counter kEdgesD("generator.edges_d");
const obs::Counter kEdgesC("generator.edges_c");
const obs::Counter kEdgesP("generator.edges_p");
const obs::Counter kCyclicVerdicts("generator.cyclic_verdicts");
}  // namespace

const char* to_string(GsEdgeKind kind) {
  switch (kind) {
    case GsEdgeKind::kTypeD:
      return "D";
    case GsEdgeKind::kTypeC:
      return "C";
    case GsEdgeKind::kTypeP:
      return "P";
  }
  return "?";
}

Digraph::Node SyncDependencyGraph::intern(const GsVertex& v) {
  auto it = by_index_.find(v.index);
  if (it != by_index_.end()) {
    WOLF_CHECK_MSG(vertices_[static_cast<std::size_t>(it->second)] == v,
                   "conflicting vertex for index " << v.index.to_string());
    return it->second;
  }
  Digraph::Node n = graph_.add_node();
  WOLF_CHECK(static_cast<std::size_t>(n) == vertices_.size());
  vertices_.push_back(v);
  by_index_.emplace(v.index, n);
  return n;
}

void SyncDependencyGraph::add_edge(Digraph::Node u, Digraph::Node v,
                                   GsEdgeKind kind) {
  if (!graph_.has_edge(u, v)) {
    graph_.add_edge(u, v);
    edge_kinds_.emplace(edge_key(u, v), kind);
  }
}

bool SyncDependencyGraph::has_vertex(const ExecIndex& idx) const {
  return find(idx).has_value();
}

std::optional<Digraph::Node> SyncDependencyGraph::find(
    const ExecIndex& idx) const {
  auto it = by_index_.find(idx);
  if (it == by_index_.end() || !graph_.alive(it->second)) return std::nullopt;
  return it->second;
}

const GsVertex& SyncDependencyGraph::vertex(Digraph::Node n) const {
  WOLF_CHECK(n >= 0 && static_cast<std::size_t>(n) < vertices_.size());
  return vertices_[static_cast<std::size_t>(n)];
}

std::vector<GsEdge> SyncDependencyGraph::edges() const {
  std::vector<GsEdge> out;
  for (Digraph::Node u : graph_.nodes()) {
    for (Digraph::Node v : graph_.successors(u)) {
      GsEdge e;
      e.from = vertex(u).index;
      e.to = vertex(v).index;
      e.kind = edge_kinds_.at(edge_key(u, v));
      out.push_back(e);
    }
  }
  return out;
}

bool SyncDependencyGraph::has_cross_thread_in_edge(Digraph::Node v) const {
  for (Digraph::Node u : graph_.predecessors(v))
    if (vertex(u).thread != vertex(v).thread) return true;
  return false;
}

void SyncDependencyGraph::remove_vertex(Digraph::Node v) {
  if (graph_.alive(v)) graph_.remove_node(v);
}

std::string SyncDependencyGraph::to_dot(const SiteTable& sites) const {
  std::vector<std::string> labels;
  labels.reserve(vertices_.size());
  for (const GsVertex& v : vertices_) {
    std::ostringstream os;
    os << 't' << v.thread << ' ' << sites.name(v.index.site) << " l" << v.lock;
    labels.push_back(os.str());
  }
  return graph_.to_dot(labels);
}

GeneratorResult generate(const PotentialDeadlock& cycle,
                         const LockDependency& dep,
                         const DependencyIndex& index) {
  GeneratorResult result;
  SyncDependencyGraph& gs = result.gs;

  const std::set<std::size_t> cycle_set(cycle.tuple_idx.begin(),
                                        cycle.tuple_idx.end());

  auto vertex_for = [&](const LockTuple& tuple, LockId l) {
    GsVertex v;
    v.thread = tuple.thread;
    v.index = tuple.mu(l);
    v.lock = l;
    return gs.intern(v);
  };

  // --- type-D edges: for every pair ηi, ηj ∈ θ with lock(ηi) ∈ lockset(ηj),
  // the holding acquisition precedes the blocked request.
  for (std::size_t i : cycle.tuple_idx) {
    for (std::size_t j : cycle.tuple_idx) {
      if (i == j) continue;
      const LockTuple& eta_i = dep.tuples[i];
      const LockTuple& eta_j = dep.tuples[j];
      if (!eta_j.holds(eta_i.lock)) continue;
      Digraph::Node v = vertex_for(eta_i, eta_i.lock);
      Digraph::Node u = vertex_for(eta_j, eta_i.lock);
      gs.add_edge(u, v, GsEdgeKind::kTypeD);
    }
  }

  // --- type-C edges: every other-thread acquisition in D'_σ of a lock that
  // ηi needs (lockset + requested lock) precedes ηi's acquisition of it,
  // reproducing the observed per-lock order. θ's own deadlocking tuples are
  // excluded as sources — their order is the deadlock itself (type-D).
  //
  // Sources come from the index's per-(thread, lock) acquisition order,
  // walked per cycle thread in cycle order — the same sequence the old
  // D'_σ scan produced by filtering the concatenated prefixes.
  for (std::size_t i : cycle.tuple_idx) {
    const LockTuple& eta_i = dep.tuples[i];
    std::vector<LockId> needed = eta_i.lockset;
    needed.push_back(eta_i.lock);
    for (LockId lk : needed) {
      Digraph::Node v = vertex_for(eta_i, lk);
      for (std::size_t cj : cycle.tuple_idx) {
        const LockTuple& eta_j = dep.tuples[cj];
        if (eta_j.thread == eta_i.thread) continue;
        for (std::size_t x :
             index.thread_lock_prefix(eta_j.thread, lk, eta_j.trace_pos)) {
          if (cycle_set.count(x) != 0) continue;
          Digraph::Node u = vertex_for(dep.tuples[x], lk);
          gs.add_edge(u, v, GsEdgeKind::kTypeC);
        }
      }
    }
  }

  // --- type-P edges: program order between consecutive acquisitions of each
  // cycle thread within D'_σ.
  for (std::size_t ci : cycle.tuple_idx) {
    const LockTuple& eta = dep.tuples[ci];
    auto prefix = index.thread_prefix(eta.thread, eta.trace_pos);
    for (std::size_t k = 1; k < prefix.size(); ++k) {
      const LockTuple& prev = dep.tuples[prefix[k - 1]];
      const LockTuple& next = dep.tuples[prefix[k]];
      Digraph::Node u = vertex_for(prev, prev.lock);
      Digraph::Node v = vertex_for(next, next.lock);
      gs.add_edge(u, v, GsEdgeKind::kTypeP);
    }
  }

  auto witness = gs.graph().find_cycle();
  if (witness.has_value()) {
    result.feasible = false;
    for (Digraph::Node n : *witness)
      result.witness.push_back(gs.vertex(n).index);
  } else {
    result.feasible = true;
  }

  // The edge-kind walk is only worth doing when someone is collecting.
  if (obs::counters_enabled()) {
    kGsNodes.add(static_cast<std::uint64_t>(gs.vertex_count()));
    std::uint64_t d = 0, c = 0, p = 0;
    for (const GsEdge& e : gs.edges()) {
      switch (e.kind) {
        case GsEdgeKind::kTypeD: ++d; break;
        case GsEdgeKind::kTypeC: ++c; break;
        case GsEdgeKind::kTypeP: ++p; break;
      }
    }
    kGsEdges.add(d + c + p);
    kEdgesD.add(d);
    kEdgesC.add(c);
    kEdgesP.add(p);
    if (!result.feasible) kCyclicVerdicts.add();
  }
  return result;
}

GeneratorResult generate(const PotentialDeadlock& cycle,
                         const LockDependency& dep) {
  return generate(cycle, dep, DependencyIndex::build(dep));
}

SyncDependencyGraph filter_edges(const SyncDependencyGraph& gs, bool keep_d,
                                 bool keep_c, bool keep_p) {
  SyncDependencyGraph out;
  for (Digraph::Node n : gs.graph().nodes()) out.intern(gs.vertex(n));
  for (const GsEdge& e : gs.edges()) {
    const bool keep = (e.kind == GsEdgeKind::kTypeD && keep_d) ||
                      (e.kind == GsEdgeKind::kTypeC && keep_c) ||
                      (e.kind == GsEdgeKind::kTypeP && keep_p);
    if (!keep) continue;
    auto u = out.find(e.from);
    auto v = out.find(e.to);
    WOLF_CHECK(u.has_value() && v.has_value());
    out.add_edge(*u, *v, e.kind);
  }
  return out;
}

}  // namespace wolf
