// Batch replayer — prefix-shared re-execution for cycles of one trace.
//
// Algorithm 4 replays each potential deadlock independently, so k cycles from
// the same recorded run cost k full re-executions even though their
// synchronization dependency graphs steer the early schedule identically
// (they are built from the same trace prefix). This module replays a *batch*
// of cycles over ONE shared re-execution for as long as every member would
// steer it the same way, and only forks per-member copies of the scheduler at
// the first decision where they disagree.
//
// Correctness argument (DESIGN.md §15): a member's ReplayController is pure
// state-machine over the event stream plus the pause/release decisions taken
// on its behalf. During the shared phase the multiplexer
//   * consults every member's would_pause() — a const predicate that predicts
//     before_lock() exactly — and commits the decision to all members only
//     when they are unanimous;
//   * compares every member's pending_released() set before consuming any —
//     releases are applied to the shared schedule only when identical;
//   * force-releases one victim for all members (valid for each: Algorithm 4
//     picks any paused thread) via forget_blocked().
// Hence at every shared step each member controller is in exactly the state
// it would have reached driving its own private re-execution under the same
// coin flips. At the first disagreement the shared Scheduler (copyable by
// design — the systematic explorer forks mid-run states too) is copied per
// member; a copy re-attempts the contested acquisition under its own
// controller via release_paused(t, bypass=false), which is sound because the
// scheduler keeps occurrence bookkeeping stable across repeated attempts of
// the same acquisition. From the fork on, each member's trial is an ordinary
// Algorithm-4 replay.
//
// The batch path is opt-in (bench + CLI flag): the default pipeline keeps
// replaying cycles independently so its reports stay bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "core/generator.hpp"
#include "core/replayer.hpp"

namespace wolf {

// One cycle riding the batch. Both pointers must outlive the call.
struct BatchReplayMember {
  const PotentialDeadlock* cycle = nullptr;
  const SyncDependencyGraph* gs = nullptr;  // acyclic (generator-approved)
};

struct BatchReplayReport {
  // Per-member trial statistics, parallel to the members vector; outcomes
  // are classified against each member's own expected sites, exactly as
  // replay() would.
  std::vector<ReplayStats> stats;
  int attempts = 0;  // batch attempts driven (each serves all live members)

  // Step accounting across all attempts:
  //   shared_steps   — steps executed once while >= 2 members rode along;
  //   replayed_steps — steps actually executed (shared prefixes counted
  //                    once, forked continuations per member);
  //   naive_steps    — what the same schedules cost if every member had
  //                    replayed its prefix privately (= replayed_steps plus
  //                    the de-duplicated prefix work).
  std::uint64_t shared_steps = 0;
  std::uint64_t replayed_steps = 0;
  std::uint64_t naive_steps = 0;

  double savings() const {
    return naive_steps == 0
               ? 0.0
               : 1.0 - static_cast<double>(replayed_steps) /
                           static_cast<double>(naive_steps);
  }
};

// Replays every member `options.attempts` times (members that hit stop
// early under stop_on_first_hit), sharing re-execution prefixes. `dep` must
// be the dependency the cycles were detected in.
BatchReplayReport replay_batch(const sim::Program& program,
                               const LockDependency& dep,
                               const std::vector<BatchReplayMember>& members,
                               const ReplayOptions& options);

}  // namespace wolf
