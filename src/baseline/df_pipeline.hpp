// End-to-end DeadlockFuzzer pipeline: base (trace-agnostic) iGoodLock
// detection followed by randomized reproduction of every cycle. This is the
// comparator column of Tables 1–2 and Figures 8/10. DeadlockFuzzer has no
// Pruner/Generator, so every non-reproduced cycle stays unknown.
#pragma once

#include <cstdint>
#include <vector>

#include "baseline/deadlock_fuzzer.hpp"
#include "core/pipeline.hpp"

namespace wolf::baseline {

struct DfOptions {
  std::uint64_t seed = 1;
  DetectorOptions detector;
  ReplayOptions replay;
  int record_attempts = 20;
  std::uint64_t max_steps = 2'000'000;
};

struct DfCycleReport {
  std::size_t cycle_index = 0;
  Classification classification = Classification::kUnknown;
  ReplayStats stats;
};

struct DfReport {
  bool trace_recorded = false;
  Detection detection;
  std::vector<DfCycleReport> cycles;
  std::vector<DefectReport> defects;
  PhaseTimings timings;

  int count_cycles(Classification c) const;
  int count_defects(Classification c) const;
};

DfReport run_deadlock_fuzzer(const sim::Program& program,
                             const DfOptions& options);

// Variant operating on a pre-recorded trace (shared-trace comparisons).
DfReport analyze_trace_df(const sim::Program& program, const Trace& trace,
                          const DfOptions& options);

}  // namespace wolf::baseline
