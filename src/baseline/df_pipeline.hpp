// End-to-end DeadlockFuzzer pipeline: base (trace-agnostic) iGoodLock
// detection followed by randomized reproduction of every cycle. This is the
// comparator column of Tables 1–2 and Figures 8/10. DeadlockFuzzer has no
// Pruner/Generator, so every non-reproduced cycle stays unknown.
#pragma once

#include <cstdint>
#include <vector>

#include "baseline/deadlock_fuzzer.hpp"
#include "core/pipeline.hpp"
#include "obs/report.hpp"

namespace wolf::baseline {

// Deprecated as a public entry type: prefer wolf::Config (wolf.hpp), whose
// df_options() derives this struct from the shared sections. Kept for one
// release as the underlying section type.
struct DfOptions {
  std::uint64_t seed = 1;
  DetectorOptions detector;
  ReplayOptions replay;
  int record_attempts = 20;
  std::uint64_t max_steps = 2'000'000;
};

struct DfCycleReport {
  std::size_t cycle_index = 0;
  Classification classification = Classification::kUnknown;
  ReplayStats stats;
};

struct DfReport {
  bool trace_recorded = false;
  Detection detection;
  std::vector<DfCycleReport> cycles;
  std::vector<DefectReport> defects;
  PhaseTimings timings;
  // Raw span tree (phase/record|detect|replay + per-cycle cycle/replay)
  // that `timings` is computed from; feeds collect_metrics below.
  std::vector<obs::SpanRecord> spans;

  int count_cycles(Classification c) const;
  int count_defects(Classification c) const;
};

DfReport run_deadlock_fuzzer(const sim::Program& program,
                             const DfOptions& options);

// Variant operating on a pre-recorded trace (shared-trace comparisons).
DfReport analyze_trace_df(const sim::Program& program, const Trace& trace,
                          const DfOptions& options);

// Span tree + per-cycle funnel of a finished baseline run, as the shared
// obs::RunMetrics shape (tool = "df"). Counters are left empty: the caller
// owns the registry snapshot/delta around the run.
obs::RunMetrics collect_metrics(const DfReport& report);

}  // namespace wolf::baseline
