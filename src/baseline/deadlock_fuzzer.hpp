// DeadlockFuzzer (Joshi et al., PLDI'09) — the comparison baseline of the
// paper's evaluation (§4), reimplemented faithfully enough to exhibit the
// behaviours the paper measures against:
//
//   * it identifies the threads and locks of a potential deadlock by
//     *abstractions* — a thread by the chain of source sites at which its
//     creation chain was spawned, a lock by its allocation site — rather
//     than by stable dynamic identity;
//   * during a randomized re-execution it pauses ANY thread whose
//     abstraction matches a cycle position when it is about to make the
//     matching acquisition, and resumes everybody once every position is
//     occupied, hoping the blocked acquisitions close the cycle;
//   * it uses no cross-thread ordering constraints from the trace.
//
// Consequently (paper §4.2, Fig. 9): when two threads share an abstraction,
// or the same source location executes several times, the wrong occurrence
// is paused and either a different deadlock manifests or none at all — the
// weakness WOLF's synchronization dependency graph removes.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/detector.hpp"
#include "core/replayer.hpp"  // ReplayOutcome / ReplayStats / classify_run
#include "sim/controller.hpp"
#include "sim/program.hpp"
#include "sim/scheduler.hpp"

namespace wolf::baseline {

// Creation-site chain of a thread (root-first). Threads spawned at the same
// source location from parents with equal abstractions are indistinguishable
// to DeadlockFuzzer.
std::vector<SiteId> thread_abstraction(const sim::Program& program,
                                       ThreadId t);

// One position of the cycle DeadlockFuzzer tries to reproduce.
struct DfTarget {
  std::vector<SiteId> thread_abstraction;
  SiteId acquire_site = kInvalidSite;
  SiteId lock_alloc_site = kInvalidSite;
};

// Builds the target list from a detected cycle.
std::vector<DfTarget> df_targets(const sim::Program& program,
                                 const PotentialDeadlock& cycle,
                                 const LockDependency& dep);

class DeadlockFuzzerController final : public sim::ScheduleController {
 public:
  DeadlockFuzzerController(const sim::Program& program,
                           std::vector<DfTarget> targets);

  bool before_lock(ThreadId t, const ExecIndex& idx, LockId lock) override;
  std::vector<ThreadId> take_released() override;
  ThreadId force_release(const std::vector<ThreadId>& paused,
                         Rng& rng) override;

 private:
  bool matches(const DfTarget& target, ThreadId t, SiteId site,
               LockId lock) const;

  const sim::Program* program_;
  std::vector<DfTarget> targets_;
  std::vector<bool> filled_;
  std::set<ThreadId> paused_;
  std::vector<ThreadId> released_;
  bool released_all_ = false;

  // Cached thread abstractions.
  mutable std::map<ThreadId, std::vector<SiteId>> abstraction_cache_;
  const std::vector<SiteId>& abstraction(ThreadId t) const;
};

// One DeadlockFuzzer trial / trial series for `cycle`, mirroring the
// Replayer's interface so the comparison harnesses treat both uniformly.
ReplayTrial fuzz_once(const sim::Program& program,
                      const PotentialDeadlock& cycle,
                      const LockDependency& dep, std::uint64_t seed,
                      std::uint64_t max_steps = 2'000'000);

ReplayStats fuzz(const sim::Program& program, const PotentialDeadlock& cycle,
                 const LockDependency& dep, const ReplayOptions& options);

}  // namespace wolf::baseline
