#include "baseline/df_pipeline.hpp"

#include "obs/span.hpp"

namespace wolf::baseline {

int DfReport::count_cycles(Classification c) const {
  int n = 0;
  for (const DfCycleReport& r : cycles)
    if (r.classification == c) ++n;
  return n;
}

int DfReport::count_defects(Classification c) const {
  int n = 0;
  for (const DefectReport& r : defects)
    if (r.classification == c) ++n;
  return n;
}

namespace {

DfReport analyze(const sim::Program& program, Trace trace,
                 const DfOptions& options, obs::SpanSink& sink) {
  DfReport report;
  report.trace_recorded = true;

  {
    obs::Span detect_span(&sink, "phase/detect");
    report.detection = detect(trace, options.detector);
  }

  std::uint64_t seed = mix64(options.seed ^ 0xdf00dULL);
  {
    obs::Span replay_span(&sink, "phase/replay");
    for (std::size_t c = 0; c < report.detection.cycles.size(); ++c) {
      DfCycleReport cycle_report;
      cycle_report.cycle_index = c;
      ReplayOptions replay_options = options.replay;
      replay_options.seed = seed = mix64(seed);
      replay_options.max_steps = options.max_steps;
      {
        obs::Span cycle_span(&sink, "cycle/replay", replay_span.id(), c);
        cycle_report.stats = fuzz(program, report.detection.cycles[c],
                                  report.detection.dep, replay_options);
      }
      cycle_report.classification = cycle_report.stats.reproduced()
                                        ? Classification::kReproduced
                                        : Classification::kUnknown;
      report.cycles.push_back(cycle_report);
    }
  }

  for (const Defect& defect : report.detection.defects) {
    DefectReport d;
    d.signature = defect.signature;
    d.cycle_indices = defect.cycle_idx;
    d.classification = Classification::kUnknown;
    for (std::size_t c : defect.cycle_idx) {
      if (report.cycles[c].classification == Classification::kReproduced) {
        d.classification = Classification::kReproduced;
        break;
      }
    }
    report.defects.push_back(std::move(d));
  }

  report.spans = sink.take();
  report.timings = PhaseTimings::from_spans(report.spans);
  return report;
}

}  // namespace

DfReport run_deadlock_fuzzer(const sim::Program& program,
                             const DfOptions& options) {
  obs::SpanSink sink;
  std::optional<Trace> trace;
  {
    obs::Span record_span(&sink, "phase/record");
    trace = sim::record_trace(program, options.seed, options.record_attempts,
                              options.max_steps);
  }
  if (!trace.has_value()) {
    DfReport report;
    report.trace_recorded = false;
    report.spans = sink.take();
    report.timings = PhaseTimings::from_spans(report.spans);
    return report;
  }
  return analyze(program, std::move(*trace), options, sink);
}

DfReport analyze_trace_df(const sim::Program& program, const Trace& trace,
                          const DfOptions& options) {
  obs::SpanSink sink;
  return analyze(program, trace, options, sink);
}

obs::RunMetrics collect_metrics(const DfReport& report) {
  obs::RunMetrics m;
  m.tool = "df";
  m.jobs = 1;
  m.spans = report.spans;
  m.funnel.reserve(report.cycles.size());
  for (const DfCycleReport& cycle : report.cycles) {
    obs::FunnelEntry entry;
    entry.run = 0;
    entry.cycle = cycle.cycle_index;
    entry.outcome = cycle.classification == Classification::kReproduced
                        ? "confirmed"
                        : "unconfirmed";
    m.funnel.push_back(std::move(entry));
  }
  return m;
}

}  // namespace wolf::baseline
