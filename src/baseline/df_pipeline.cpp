#include "baseline/df_pipeline.hpp"

#include "support/stopwatch.hpp"

namespace wolf::baseline {

int DfReport::count_cycles(Classification c) const {
  int n = 0;
  for (const DfCycleReport& r : cycles)
    if (r.classification == c) ++n;
  return n;
}

int DfReport::count_defects(Classification c) const {
  int n = 0;
  for (const DefectReport& r : defects)
    if (r.classification == c) ++n;
  return n;
}

namespace {

DfReport analyze(const sim::Program& program, Trace trace,
                 const DfOptions& options, double record_seconds) {
  DfReport report;
  report.trace_recorded = true;
  report.timings.record_seconds = record_seconds;

  Stopwatch watch;
  report.detection = detect(trace, options.detector);
  report.timings.detect_seconds = watch.seconds();

  std::uint64_t seed = mix64(options.seed ^ 0xdf00dULL);
  for (std::size_t c = 0; c < report.detection.cycles.size(); ++c) {
    DfCycleReport cycle_report;
    cycle_report.cycle_index = c;
    ReplayOptions replay_options = options.replay;
    replay_options.seed = seed = mix64(seed);
    replay_options.max_steps = options.max_steps;
    watch.reset();
    cycle_report.stats = fuzz(program, report.detection.cycles[c],
                              report.detection.dep, replay_options);
    report.timings.replay_seconds += watch.seconds();
    cycle_report.classification = cycle_report.stats.reproduced()
                                      ? Classification::kReproduced
                                      : Classification::kUnknown;
    report.cycles.push_back(cycle_report);
  }

  for (const Defect& defect : report.detection.defects) {
    DefectReport d;
    d.signature = defect.signature;
    d.cycle_indices = defect.cycle_idx;
    d.classification = Classification::kUnknown;
    for (std::size_t c : defect.cycle_idx) {
      if (report.cycles[c].classification == Classification::kReproduced) {
        d.classification = Classification::kReproduced;
        break;
      }
    }
    report.defects.push_back(std::move(d));
  }
  return report;
}

}  // namespace

DfReport run_deadlock_fuzzer(const sim::Program& program,
                             const DfOptions& options) {
  Stopwatch watch;
  auto trace = sim::record_trace(program, options.seed,
                                 options.record_attempts, options.max_steps);
  double record_seconds = watch.seconds();
  if (!trace.has_value()) {
    DfReport report;
    report.trace_recorded = false;
    report.timings.record_seconds = record_seconds;
    return report;
  }
  return analyze(program, std::move(*trace), options, record_seconds);
}

DfReport analyze_trace_df(const sim::Program& program, const Trace& trace,
                          const DfOptions& options) {
  return analyze(program, trace, options, 0.0);
}

}  // namespace wolf::baseline
