#include "baseline/deadlock_fuzzer.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace wolf::baseline {

std::vector<SiteId> thread_abstraction(const sim::Program& program,
                                       ThreadId t) {
  std::vector<SiteId> chain;
  ThreadId cur = t;
  while (cur != kInvalidThread) {
    const sim::ThreadDecl& decl = program.thread(cur);
    if (decl.create_site != kInvalidSite) chain.push_back(decl.create_site);
    cur = decl.parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::vector<DfTarget> df_targets(const sim::Program& program,
                                 const PotentialDeadlock& cycle,
                                 const LockDependency& dep) {
  std::vector<DfTarget> targets;
  targets.reserve(cycle.tuple_idx.size());
  for (std::size_t i : cycle.tuple_idx) {
    const LockTuple& eta = dep.tuples[i];
    DfTarget target;
    target.thread_abstraction = thread_abstraction(program, eta.thread);
    target.acquire_site = eta.acquire_index().site;
    target.lock_alloc_site = program.lock_decl(eta.lock).alloc_site;
    targets.push_back(std::move(target));
  }
  return targets;
}

DeadlockFuzzerController::DeadlockFuzzerController(
    const sim::Program& program, std::vector<DfTarget> targets)
    : program_(&program), targets_(std::move(targets)) {
  filled_.assign(targets_.size(), false);
}

const std::vector<SiteId>& DeadlockFuzzerController::abstraction(
    ThreadId t) const {
  auto it = abstraction_cache_.find(t);
  if (it == abstraction_cache_.end())
    it = abstraction_cache_
             .emplace(t, thread_abstraction(*program_, t))
             .first;
  return it->second;
}

bool DeadlockFuzzerController::matches(const DfTarget& target, ThreadId t,
                                       SiteId site, LockId lock) const {
  if (site != target.acquire_site) return false;
  if (program_->lock_decl(lock).alloc_site != target.lock_alloc_site)
    return false;
  return abstraction(t) == target.thread_abstraction;
}

bool DeadlockFuzzerController::before_lock(ThreadId t, const ExecIndex& idx,
                                           LockId lock) {
  if (released_all_) return false;
  if (paused_.count(t) != 0) return false;  // re-attempt after force release

  // A thread is trapped when it is the first to occupy a still-unfilled
  // cycle position matching its abstraction. Because abstraction collisions
  // make several dynamic acquisitions look identical, the *wrong* thread or
  // the wrong occurrence routinely claims a position — the unreliability the
  // paper demonstrates with Fig. 9.
  bool filled_one = false;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (filled_[i]) continue;
    if (!matches(targets_[i], t, idx.site, lock)) continue;
    filled_[i] = true;
    filled_one = true;
    break;
  }
  if (!filled_one) return false;

  if (std::all_of(filled_.begin(), filled_.end(),
                  [](bool b) { return b; })) {
    // Every position is occupied: resume the whole pack and let the blocked
    // acquisitions race into the (hoped-for) deadlock. The thread completing
    // the set proceeds directly.
    released_all_ = true;
    released_.insert(released_.end(), paused_.begin(), paused_.end());
    paused_.clear();
    return false;
  }
  paused_.insert(t);
  return true;
}

std::vector<ThreadId> DeadlockFuzzerController::take_released() {
  std::vector<ThreadId> out;
  out.swap(released_);
  return out;
}

ThreadId DeadlockFuzzerController::force_release(
    const std::vector<ThreadId>& paused, Rng& rng) {
  ThreadId victim = paused[rng.index(paused)];
  paused_.erase(victim);
  // The corresponding target stays filled even though the pause was undone —
  // DeadlockFuzzer does not track which thread occupied which position, one
  // of the sources of its unreliability.
  return victim;
}

ReplayTrial fuzz_once(const sim::Program& program,
                      const PotentialDeadlock& cycle,
                      const LockDependency& dep, std::uint64_t seed,
                      std::uint64_t max_steps) {
  DeadlockFuzzerController controller(program, df_targets(program, cycle, dep));
  sim::SchedulerOptions options;
  options.controller = &controller;
  options.max_steps = max_steps;

  sim::RandomPolicy policy;
  Rng rng(seed);
  ReplayTrial trial;
  trial.run = sim::run_program(program, policy, rng, options);
  trial.outcome = classify_run(trial.run, expected_sites(cycle, dep));
  return trial;
}

ReplayStats fuzz(const sim::Program& program, const PotentialDeadlock& cycle,
                 const LockDependency& dep, const ReplayOptions& options) {
  ReplayStats stats;
  Rng seeds(options.seed);
  robust::RetryPolicy policy = options.retry;
  policy.max_attempts = options.attempts;
  robust::RetryState attempts(policy, options.seed);
  while (attempts.next_attempt()) {
    ReplayTrial trial =
        fuzz_once(program, cycle, dep, seeds(), options.max_steps);
    record_outcome(stats, trial.outcome);
    if (stats.hits > 0 && options.stop_on_first_hit) break;
  }
  return stats;
}

}  // namespace wolf::baseline
