#include "serve/protocol.hpp"

#include <cstdio>

#include "support/str.hpp"

namespace wolf::serve {

namespace {

const char* const kNumericKeys[] = {"window", "budget-mb", "deadline-ms",
                                    "jobs", "live", "incremental"};

bool known_key(std::string_view key) {
  if (key == "name") return true;
  for (const char* k : kNumericKeys)
    if (key == k) return true;
  return false;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  out += json_escape(s);
  out += '"';
}

void append_string_array(std::string& out, const std::vector<std::string>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, v[i]);
  }
  out += ']';
}

// ---- structural scanning of our own fixed-layout lines -------------------

// Positions `pos` just past `"key":`. The builders never nest objects, so a
// plain search for the quoted key is unambiguous.
bool find_value(const std::string& line, std::string_view key,
                std::size_t& pos) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  pos = at + needle.size();
  return true;
}

bool scan_string(const std::string& s, std::size_t& pos, std::string& out) {
  if (pos >= s.size() || s[pos] != '"') return false;
  ++pos;
  out.clear();
  while (pos < s.size()) {
    const char c = s[pos];
    if (c == '"') {
      ++pos;
      return true;
    }
    if (c == '\\') {
      if (pos + 1 >= s.size()) return false;
      const char e = s[pos + 1];
      pos += 2;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > s.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s[pos + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          pos += 4;
          // The builders only emit \u00XX (control bytes).
          out += static_cast<char>(code & 0xff);
          break;
        }
        default: return false;
      }
      continue;
    }
    out += c;
    ++pos;
  }
  return false;  // unterminated
}

bool scan_u64(const std::string& s, std::size_t& pos, std::uint64_t& out) {
  std::size_t end = pos;
  while (end < s.size() && s[end] >= '0' && s[end] <= '9') ++end;
  if (end == pos) return false;
  long long v = 0;
  if (!parse_int(std::string_view(s).substr(pos, end - pos), v)) return false;
  out = static_cast<std::uint64_t>(v);
  pos = end;
  return true;
}

bool scan_bool(const std::string& s, std::size_t& pos, bool& out) {
  if (s.compare(pos, 4, "true") == 0) {
    out = true;
    pos += 4;
    return true;
  }
  if (s.compare(pos, 5, "false") == 0) {
    out = false;
    pos += 5;
    return true;
  }
  return false;
}

bool scan_string_array(const std::string& s, std::size_t& pos,
                       std::vector<std::string>& out) {
  out.clear();
  if (pos >= s.size() || s[pos] != '[') return false;
  ++pos;
  if (pos < s.size() && s[pos] == ']') {
    ++pos;
    return true;
  }
  for (;;) {
    std::string item;
    if (!scan_string(s, pos, item)) return false;
    out.push_back(std::move(item));
    if (pos >= s.size()) return false;
    if (s[pos] == ',') {
      ++pos;
      continue;
    }
    if (s[pos] == ']') {
      ++pos;
      return true;
    }
    return false;
  }
}

bool get_string(const std::string& line, std::string_view key,
                std::string& out) {
  std::size_t pos = 0;
  return find_value(line, key, pos) && scan_string(line, pos, out);
}

bool get_u64(const std::string& line, std::string_view key,
             std::uint64_t& out) {
  std::size_t pos = 0;
  return find_value(line, key, pos) && scan_u64(line, pos, out);
}

bool get_bool(const std::string& line, std::string_view key, bool& out) {
  std::size_t pos = 0;
  return find_value(line, key, pos) && scan_bool(line, pos, out);
}

}  // namespace

bool parse_hello(const std::string& line, HelloRequest& out,
                 std::string& error) {
  const std::vector<std::string> tokens =
      split(std::string_view(trim(line)), ' ');
  if (tokens.empty() || tokens[0] != kProtocolTag) {
    error = "expected a '";
    error += kProtocolTag;
    error += " ...' hello line";
    return false;
  }
  if (tokens.size() < 2) {
    error = "hello line has no verb (session|status|stop)";
    return false;
  }
  out = HelloRequest{};
  if (tokens[1] == "status") {
    out.kind = HelloRequest::Kind::kStatus;
  } else if (tokens[1] == "stop") {
    out.kind = HelloRequest::Kind::kStop;
  } else if (tokens[1] == "session") {
    out.kind = HelloRequest::Kind::kSession;
  } else {
    error = "unknown hello verb '" + tokens[1] + "'";
    return false;
  }
  if (out.kind != HelloRequest::Kind::kSession) {
    if (tokens.size() > 2) {
      error = "'" + tokens[1] + "' takes no arguments";
      return false;
    }
    return true;
  }
  out.name = "anon";
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    if (tokens[i].empty()) continue;  // collapsed double spaces
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      error = "malformed parameter '" + tokens[i] + "' (want key=value)";
      return false;
    }
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    if (!known_key(key)) {
      error = "unknown session parameter '" + key + "'";
      return false;
    }
    if (key == "name") {
      out.name = value;
      continue;
    }
    long long parsed = 0;
    if (!parse_int(value, parsed) || parsed < 0) {
      error = "parameter '" + key + "' wants a non-negative integer, got '" +
              value + "'";
      return false;
    }
    out.params[key] = value;
  }
  return true;
}

std::string format_hello(const std::string& name,
                         const std::map<std::string, std::string>& params) {
  std::string line(kProtocolTag);
  line += " session name=";
  line += name;
  for (const auto& [key, value] : params) {
    line += ' ';
    line += key;
    line += '=';
    line += value;
  }
  return line;
}

bool apply_params(const std::map<std::string, std::string>& params,
                  Config& config, std::string& error) {
  for (const auto& [key, value] : params) {
    long long v = 0;
    if (!parse_int(value, v) || v < 0) {
      error = "parameter '" + key + "' wants a non-negative integer";
      return false;
    }
    if (key == "window") {
      if (v == 0) {
        error = "window must be >= 1";
        return false;
      }
      config.window_events = static_cast<std::size_t>(v);
    } else if (key == "budget-mb") {
      config.memory_budget_mb = static_cast<std::size_t>(v);
    } else if (key == "deadline-ms") {
      config.window_deadline_ms = v;
    } else if (key == "jobs") {
      config.jobs = static_cast<int>(v);
    } else if (key == "live") {
      config.live = v != 0;
    } else if (key == "incremental") {
      config.incremental_scc = v != 0;
    } else {
      error = "unknown session parameter '" + key + "'";
      return false;
    }
  }
  return true;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string hello_line(std::uint64_t session_id, const std::string& name,
                       const Config& config) {
  std::string line = "{\"type\":\"hello\",\"session\":";
  line += std::to_string(session_id);
  line += ",\"name\":";
  append_json_string(line, name);
  line += ",\"window_events\":";
  line += std::to_string(config.window_events);
  line += ",\"memory_budget_mb\":";
  line += std::to_string(config.memory_budget_mb);
  line += ",\"window_deadline_ms\":";
  line += std::to_string(config.window_deadline_ms);
  line += ",\"jobs\":";
  line += std::to_string(config.jobs);
  line += ",\"incremental\":";
  line += config.incremental_scc ? "true" : "false";
  line += ",\"live\":";
  line += config.live ? "true" : "false";
  line += "}\n";
  return line;
}

std::string live_line(const SessionCycle& cycle) {
  std::string line = "{\"type\":\"live\",\"window\":";
  line += std::to_string(cycle.window);
  line += ",\"sequence\":";
  line += std::to_string(cycle.sequence);
  line += ",\"cycle\":";
  append_json_string(line, cycle.description);
  line += "}\n";
  return line;
}

std::string verdict_line(const Session::Verdict& verdict, bool stream_complete,
                         const std::string& stream_note,
                         std::uint64_t events_seen) {
  const GovernorVerdict& g = verdict.governor;
  const bool complete = stream_complete && g.coverage_complete &&
                        !verdict.detection.truncated;
  std::string line = "{\"type\":\"verdict\",\"complete\":";
  line += complete ? "true" : "false";
  line += ",\"stream_complete\":";
  line += stream_complete ? "true" : "false";
  line += ",\"coverage_complete\":";
  line += g.coverage_complete ? "true" : "false";
  line += ",\"events\":";
  line += std::to_string(events_seen);
  line += ",\"windows\":";
  line += std::to_string(g.windows);
  line += ",\"suspicious\":";
  line += std::to_string(g.suspicious_windows);
  line += ",\"degraded\":";
  line += std::to_string(g.degraded_windows);
  line += ",\"tuples_compacted\":";
  line += std::to_string(g.tuples_compacted);
  line += ",\"tuples_evicted\":";
  line += std::to_string(g.tuples_evicted);
  line += ",\"detection_faults\":";
  line += std::to_string(g.detection_faults);
  line += ",\"final_level\":";
  append_json_string(line, to_string(g.final_level));
  line += ",\"truncated\":";
  line += verdict.detection.truncated ? "true" : "false";
  line += ",\"cycles\":";
  std::vector<std::string> cycles;
  cycles.reserve(verdict.detection.cycles.size());
  for (const PotentialDeadlock& c : verdict.detection.cycles)
    cycles.push_back(c.to_string(verdict.detection.dep));
  append_string_array(line, cycles);
  line += ",\"defects\":";
  line += std::to_string(verdict.detection.defects.size());
  line += ",\"summary\":";
  append_json_string(line, g.summary());
  line += ",\"stream_note\":";
  append_json_string(line, stream_note);
  line += ",\"notes\":";
  append_string_array(line, g.notes);
  line += "}\n";
  return line;
}

std::string done_line() { return "{\"type\":\"done\"}\n"; }

std::string error_line(const std::string& message) {
  std::string line = "{\"type\":\"error\",\"message\":";
  append_json_string(line, message);
  line += "}\n";
  return line;
}

std::string line_type(const std::string& line) {
  std::string type;
  if (!get_string(line, "type", type)) return std::string();
  return type;
}

bool parse_live_line(const std::string& line, SessionCycle& out) {
  if (line_type(line) != "live") return false;
  std::uint64_t window = 0;
  std::uint64_t sequence = 0;
  if (!get_u64(line, "window", window) ||
      !get_u64(line, "sequence", sequence) ||
      !get_string(line, "cycle", out.description))
    return false;
  out.window = static_cast<std::size_t>(window);
  out.sequence = static_cast<std::size_t>(sequence);
  return true;
}

bool parse_verdict_line(const std::string& line, VerdictFields& out) {
  if (line_type(line) != "verdict") return false;
  std::size_t pos = 0;
  return get_bool(line, "complete", out.complete) &&
         get_bool(line, "stream_complete", out.stream_complete) &&
         get_bool(line, "coverage_complete", out.coverage_complete) &&
         get_u64(line, "events", out.events) &&
         get_u64(line, "windows", out.windows) &&
         get_string(line, "summary", out.summary) &&
         get_string(line, "stream_note", out.stream_note) &&
         find_value(line, "cycles", pos) &&
         scan_string_array(line, pos, out.cycles);
}

bool parse_error_line(const std::string& line, std::string& message) {
  if (line_type(line) != "error") return false;
  return get_string(line, "message", message);
}

}  // namespace wolf::serve
