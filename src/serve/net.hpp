// Unix-domain socket plumbing for the serve sidecar (server.hpp).
//
// Deliberately minimal: an RAII fd, a poll-based listener whose accept loop
// can be interrupted for shutdown, a connect helper, a write-everything
// helper that never raises SIGPIPE, and — the load-bearing piece — FdInBuf,
// a std::streambuf over a connected socket. FdInBuf is what lets the server
// run the ordinary StreamTraceReader over a live connection: the v3 framing,
// checksum chain, salvage machinery and semantic validation all apply to
// socket input unchanged, because to the reader a session is just another
// std::istream. A receive timeout set on the fd surfaces as timed_out()
// (EOF to the stream), which is how idle sessions get evicted without a
// dedicated reaper thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <streambuf>
#include <string>
#include <string_view>

namespace wolf::serve {

// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Writes all of `bytes` to a connected socket. Returns false on any error
// (including a peer that vanished — MSG_NOSIGNAL keeps EPIPE an errno, not
// a process-killing signal). Partial writes are retried.
bool write_all(int fd, std::string_view bytes);

// Sets SO_RCVTIMEO; 0 = blocking forever. Returns false on setsockopt error.
bool set_recv_timeout_ms(int fd, std::int64_t ms);

// Half-closes the read side, forcing any reader blocked in recv() on this
// fd to see end-of-stream. The server uses it to force-drain sessions that
// outlive the stop deadline.
void shutdown_read(int fd);
void shutdown_write(int fd);

// Connects to a unix-domain socket path. Returns an invalid Fd and fills
// `error` on failure.
Fd unix_connect(const std::string& path, std::string* error);

// Listening unix-domain socket with an interruptible accept.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener() { close(); }
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  // Binds and listens on `path`, unlinking any stale socket file first.
  bool bind(const std::string& path, std::string* error);

  // Waits up to timeout_ms for a connection. Returns the accepted fd, or
  // kTimeout, or kClosed once close() was called / the socket died.
  static constexpr int kTimeout = -1;
  static constexpr int kClosed = -2;
  int accept_for(int timeout_ms);

  // Closes the socket (unblocking accept_for callers in other threads no
  // later than their current timeout) and unlinks the path.
  void close();

  bool listening() const { return fd_.valid(); }
  const std::string& path() const { return path_; }

 private:
  Fd fd_;
  std::string path_;
};

// std::streambuf over a connected socket fd (borrowed, not owned). A
// receive timeout (set_recv_timeout_ms) surfaces as end-of-stream with
// timed_out() set, distinguishing an idle peer from a closed one.
class FdInBuf final : public std::streambuf {
 public:
  explicit FdInBuf(int fd) : fd_(fd) {}

  bool timed_out() const { return timed_out_; }
  bool io_error() const { return io_error_; }
  std::uint64_t bytes_read() const { return bytes_read_; }

 protected:
  int_type underflow() override;

 private:
  static constexpr std::size_t kBufBytes = 64 * 1024;
  int fd_;
  bool timed_out_ = false;
  bool io_error_ = false;
  std::uint64_t bytes_read_ = 0;
  char buf_[kBufBytes];
};

}  // namespace wolf::serve
