#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>

#include "obs/counters.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "support/stopwatch.hpp"
#include "trace/trace_reader.hpp"

namespace wolf::serve {

namespace {

// Scheduling-dependent tallies: how many sessions a server run saw is a
// property of the clients, not of pipeline semantics — all unstable.
const obs::Counter c_started("serve.sessions_started", /*stable=*/false);
const obs::Counter c_done("serve.sessions_done", /*stable=*/false);
const obs::Counter c_torn("serve.sessions_torn", /*stable=*/false);
const obs::Counter c_evicted("serve.sessions_evicted", /*stable=*/false);
const obs::Counter c_failed("serve.sessions_failed", /*stable=*/false);
const obs::Counter c_rejected("serve.sessions_rejected", /*stable=*/false);
const obs::Counter c_events("serve.events_ingested", /*stable=*/false);
const obs::Counter c_live("serve.live_cycles_streamed", /*stable=*/false);

double p99_window_seconds(const std::vector<WindowReport>& windows) {
  if (windows.empty()) return 0;
  std::vector<double> lat;
  lat.reserve(windows.size());
  for (const WindowReport& w : windows) lat.push_back(w.detect_seconds);
  std::sort(lat.begin(), lat.end());
  // Nearest-rank p99: ceil(0.99 * n) - 1, clamped.
  std::size_t idx = (99 * lat.size() + 99) / 100;
  idx = idx == 0 ? 0 : idx - 1;
  if (idx >= lat.size()) idx = lat.size() - 1;
  return lat[idx];
}

bool is_active(SessionState s) {
  return s == SessionState::kHandshake || s == SessionState::kStreaming ||
         s == SessionState::kFinishing;
}

}  // namespace

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::kHandshake: return "handshake";
    case SessionState::kStreaming: return "streaming";
    case SessionState::kFinishing: return "finishing";
    case SessionState::kDone: return "done";
    case SessionState::kTorn: return "torn";
    case SessionState::kEvicted: return "evicted";
    case SessionState::kRejected: return "rejected";
    case SessionState::kFailed: return "failed";
  }
  return "?";
}

struct Server::Impl {
  explicit Impl(ServeOptions opts) : options(std::move(opts)) {}

  // One registry entry per accepted connection. Entries are kept after
  // their session ends (the status endpoint reports history); all mutable
  // fields are guarded by `mu` except `spans`, which locks itself.
  struct Entry {
    std::uint64_t id = 0;
    std::string name;
    SessionState state = SessionState::kHandshake;
    bool session_kind = false;
    int fd = -1;  // valid while the handler owns the socket; -1 after
    std::thread thread;
    std::uint64_t events = 0;
    std::uint64_t blocks = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t windows = 0;
    std::uint64_t live_cycles = 0;
    std::uint64_t cycles = 0;
    bool complete = false;
    double p99_window_seconds = 0;
    double ingest_seconds = 0;
    double finish_seconds = 0;
    std::string note;
    obs::SpanSink spans;
  };

  ServeOptions options;
  UnixListener listener;
  std::thread accept_thread;
  std::atomic<bool> running{false};
  std::atomic<bool> stopping{false};
  std::atomic<bool> stop_requested{false};
  std::atomic<bool> stopped{false};

  mutable std::mutex mu;
  std::vector<std::unique_ptr<Entry>> entries;
  ServerStats stats;
  std::uint64_t next_id = 1;

  void accept_loop();
  void run_connection(Entry* e, Fd fd);
  void run_session(Entry* e, const Fd& fd, std::istream& in, FdInBuf& inbuf,
                   const HelloRequest& req);
  void handle_status(int fd);
  void finish_entry(Entry* e, SessionState state, const std::string& note);
  SessionStats snapshot_entry_locked(const Entry& e) const;
};

void Server::Impl::accept_loop() {
  while (!stopping.load(std::memory_order_relaxed)) {
    const int fd = listener.accept_for(/*timeout_ms=*/200);
    if (fd == UnixListener::kTimeout) continue;
    if (fd == UnixListener::kClosed) break;
    Fd client(fd);
    Entry* e = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu);
      ++stats.accepted;
      auto entry = std::make_unique<Entry>();
      entry->id = next_id++;
      entry->fd = client.get();
      e = entry.get();
      entries.push_back(std::move(entry));
    }
    // The handler thread owns the socket from here; Entry::fd stays
    // registered (under mu) so stop() can force-end a lingering read.
    std::thread handler(
        [this, e](Fd sock) { run_connection(e, std::move(sock)); },
        std::move(client));
    {
      std::lock_guard<std::mutex> lock(mu);
      e->thread = std::move(handler);
    }
  }
}

void Server::Impl::finish_entry(Entry* e, SessionState state,
                                const std::string& note) {
  std::lock_guard<std::mutex> lock(mu);
  e->state = state;
  if (!note.empty()) e->note = note;
  // Lifecycle tallies cover analysis sessions only — a status/stop exchange
  // also ends kDone but is not a "session served". Rejections are counted
  // for every connection kind (they are the protocol-failure signal).
  if (!e->session_kind && state != SessionState::kRejected) return;
  switch (state) {
    case SessionState::kDone:
      ++stats.sessions_done;
      c_done.add();
      break;
    case SessionState::kTorn:
      ++stats.sessions_torn;
      c_torn.add();
      break;
    case SessionState::kEvicted:
      ++stats.sessions_evicted;
      c_evicted.add();
      break;
    case SessionState::kFailed:
      ++stats.sessions_failed;
      c_failed.add();
      break;
    case SessionState::kRejected:
      ++stats.rejected;
      c_rejected.add();
      break;
    default:
      break;
  }
}

void Server::Impl::run_connection(Entry* e, Fd fd) {
  try {
    if (options.idle_timeout_ms > 0)
      set_recv_timeout_ms(fd.get(), options.idle_timeout_ms);
    FdInBuf inbuf(fd.get());
    std::istream in(&inbuf);
    std::string hello;
    if (!std::getline(in, hello)) {
      // Connected and said nothing (or died) — nothing to answer.
      finish_entry(e, SessionState::kRejected,
                   inbuf.timed_out() ? "idle before hello" : "empty hello");
    } else {
      HelloRequest req;
      std::string err;
      if (!parse_hello(hello, req, err)) {
        write_all(fd.get(), error_line(err));
        finish_entry(e, SessionState::kRejected, err);
      } else {
        switch (req.kind) {
          case HelloRequest::Kind::kStatus:
            handle_status(fd.get());
            finish_entry(e, SessionState::kDone, "status");
            break;
          case HelloRequest::Kind::kStop:
            stop_requested.store(true, std::memory_order_relaxed);
            write_all(fd.get(), std::string("{\"type\":\"stopping\"}\n") +
                                    done_line());
            finish_entry(e, SessionState::kDone, "stop");
            break;
          case HelloRequest::Kind::kSession:
            run_session(e, fd, in, inbuf, req);
            break;
        }
      }
    }
  } catch (const std::exception& ex) {
    // Containment: whatever one session's handler throws, the server and
    // every other session keep going. The client gets an error line if its
    // socket still works; the registry records the failure either way.
    write_all(fd.get(), error_line(std::string("internal: ") + ex.what()));
    finish_entry(e, SessionState::kFailed,
                 std::string("internal: ") + ex.what());
  } catch (...) {
    write_all(fd.get(), error_line("internal: unknown exception"));
    finish_entry(e, SessionState::kFailed, "internal: unknown exception");
  }
  // Deregister the fd under the lock *before* the Fd destructor closes it,
  // so stop() can never shutdown() a number the kernel already reused.
  {
    std::lock_guard<std::mutex> lock(mu);
    e->fd = -1;
  }
}

void Server::Impl::run_session(Entry* e, const Fd& fd, std::istream& in,
                               FdInBuf& inbuf, const HelloRequest& req) {
  // Admission: count *other* live session lanes.
  std::size_t active = 0;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& other : entries)
      if (other.get() != e && other->session_kind && is_active(other->state))
        ++active;
    e->session_kind = true;
    e->name = req.name;
    if (active >= static_cast<std::size_t>(options.max_sessions)) {
      ++stats.rejected;
      c_rejected.add();
      e->state = SessionState::kRejected;
      e->note = "busy";
    }
  }
  if (active >= static_cast<std::size_t>(options.max_sessions)) {
    write_all(fd.get(), error_line("busy: " + std::to_string(active) +
                                   " active sessions (max " +
                                   std::to_string(options.max_sessions) + ")"));
    return;
  }

  Config cfg = options.session;
  std::string err;
  if (!apply_params(req.params, cfg, err)) {
    write_all(fd.get(), error_line(err));
    finish_entry(e, SessionState::kRejected, err);
    return;
  }
  for (const ConfigIssue& issue : cfg.validate()) {
    if (!issue.fatal) continue;
    write_all(fd.get(), error_line("config: " + issue.message));
    finish_entry(e, SessionState::kRejected, issue.message);
    return;
  }

  Session session = Session::open(cfg);
  {
    std::lock_guard<std::mutex> lock(mu);
    e->state = SessionState::kStreaming;
    ++stats.sessions_started;
  }
  c_started.add();
  if (!write_all(fd.get(), hello_line(e->id, req.name, cfg))) {
    finish_entry(e, SessionState::kTorn, "client gone before hello reply");
    return;
  }

  // The trace arrives as ordinary v1/v2/v3 bytes; the salvage-mode stream
  // reader gives torn and corrupted streams the same treatment as damaged
  // files — keep every intact block, diagnose the rest, never throw.
  StreamTraceReader raw(in, StreamTraceReader::Mode::kSalvage);
  TraceReader* source = &raw;
  std::optional<PipelinedTraceReader> piped;
  if (options.pipeline_depth >= 2) {
    // Per-client backpressure: decode may run at most pipeline_depth blocks
    // ahead of detection; past that the producer parks and the kernel
    // socket buffer fills, pushing back on the client itself.
    piped.emplace(raw, options.pipeline_depth);
    source = &*piped;
  }

  Stopwatch wall;
  bool deadline_hit = false;
  bool live_ok = true;
  std::uint64_t live_written = 0;
  double ingest_seconds = 0;
  {
    obs::Span ingest_span(&e->spans, "session/ingest");
    Stopwatch ingest_clock;
    std::vector<Event> block;
    while (source->next_block(block)) {
      session.feed(block);
      {
        std::lock_guard<std::mutex> lock(mu);
        e->events = session.events_seen();
        ++e->blocks;
        e->bytes_in = inbuf.bytes_read();
        e->windows = session.windows_closed();
      }
      if (cfg.live && live_ok) {
        for (const SessionCycle& c : session.poll()) {
          if (!write_all(fd.get(), live_line(c))) {
            live_ok = false;  // client stopped listening; keep analyzing
            break;
          }
          ++live_written;
          c_live.add();
        }
      }
      if (options.session_deadline_ms > 0 &&
          wall.seconds() * 1000.0 >
              static_cast<double>(options.session_deadline_ms)) {
        deadline_hit = true;
        break;
      }
    }
    if (deadline_hit && piped.has_value()) {
      // The producer may be parked in recv(); end its read before joining.
      shutdown_read(fd.get());
    }
    piped.reset();  // join the producer; ring stats are final after this
    ingest_seconds = ingest_clock.seconds();
  }

  const bool timed_out = inbuf.timed_out();
  const bool io_err = inbuf.io_error();
  // Snapshot before finish(): finish moves the builder's state into the
  // detection, so events_seen() is only authoritative until then.
  const std::uint64_t events_seen = session.events_seen();
  {
    std::lock_guard<std::mutex> lock(mu);
    e->state = SessionState::kFinishing;
    e->events = events_seen;
    e->bytes_in = inbuf.bytes_read();
  }
  c_events.add(events_seen);

  double finish_seconds = 0;
  Session::Verdict verdict;
  {
    obs::Span finish_span(&e->spans, "session/finish");
    Stopwatch finish_clock;
    verdict = session.finish();  // governed finish never throws
    finish_seconds = finish_clock.seconds();
  }
  // finish() closes the trailing window, which can first-sight cycles.
  if (cfg.live && live_ok) {
    for (const SessionCycle& c : session.poll()) {
      if (!write_all(fd.get(), live_line(c))) {
        live_ok = false;
        break;
      }
      ++live_written;
      c_live.add();
    }
  }

  std::string stream_note;
  if (timed_out) {
    stream_note = "idle timeout: no bytes for " +
                  std::to_string(options.idle_timeout_ms) + "ms, evicted";
  } else if (deadline_hit) {
    stream_note = "session deadline exceeded (" +
                  std::to_string(options.session_deadline_ms) + "ms)";
  } else if (io_err) {
    stream_note = "socket read error";
  } else if (!raw.complete()) {
    stream_note = "torn stream: " +
                  (raw.diagnostics().empty() ? std::string("incomplete")
                                             : raw.diagnostics().front()) +
                  " (" + std::to_string(raw.diagnostics().size()) +
                  " diagnostics, " + std::to_string(raw.events_dropped()) +
                  " events dropped)";
  }
  const bool stream_complete =
      raw.complete() && !timed_out && !io_err && !deadline_hit;

  const std::string out =
      verdict_line(verdict, stream_complete, stream_note, events_seen) +
      done_line();
  write_all(fd.get(), out);  // a vanished client just doesn't hear it

  const SessionState final_state =
      (timed_out || deadline_hit) ? SessionState::kEvicted
      : !stream_complete          ? SessionState::kTorn
                                  : SessionState::kDone;
  {
    std::lock_guard<std::mutex> lock(mu);
    e->windows = verdict.governor.windows;
    e->live_cycles = live_written;
    e->cycles = verdict.detection.cycles.size();
    e->complete = stream_complete && verdict.governor.coverage_complete &&
                  !verdict.detection.truncated;
    e->p99_window_seconds = p99_window_seconds(verdict.windows);
    e->ingest_seconds = ingest_seconds;
    e->finish_seconds = finish_seconds;
  }
  finish_entry(e, final_state, stream_note);
}

SessionStats Server::Impl::snapshot_entry_locked(const Entry& e) const {
  SessionStats s;
  s.id = e.id;
  s.name = e.name;
  s.state = e.state;
  s.session_kind = e.session_kind;
  s.events = e.events;
  s.blocks = e.blocks;
  s.bytes_in = e.bytes_in;
  s.windows = e.windows;
  s.live_cycles = e.live_cycles;
  s.cycles = e.cycles;
  s.complete = e.complete;
  s.p99_window_seconds = e.p99_window_seconds;
  s.ingest_seconds = e.ingest_seconds;
  s.finish_seconds = e.finish_seconds;
  s.note = e.note;
  s.spans = e.spans.snapshot();
  return s;
}

void Server::Impl::handle_status(int fd) {
  std::vector<SessionStats> sessions;
  ServerStats st;
  std::size_t active = 0;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& e : entries) {
      if (!e->session_kind) continue;
      sessions.push_back(snapshot_entry_locked(*e));
      if (is_active(e->state)) ++active;
    }
    st = stats;
  }
  std::string out;
  for (const SessionStats& s : sessions) {
    out += "{\"type\":\"session\",\"session\":";
    out += std::to_string(s.id);
    out += ",\"name\":\"";
    out += json_escape(s.name);
    out += "\",\"state\":\"";
    out += to_string(s.state);
    out += "\",\"events\":";
    out += std::to_string(s.events);
    out += ",\"blocks\":";
    out += std::to_string(s.blocks);
    out += ",\"bytes_in\":";
    out += std::to_string(s.bytes_in);
    out += ",\"windows\":";
    out += std::to_string(s.windows);
    out += ",\"live_cycles\":";
    out += std::to_string(s.live_cycles);
    out += ",\"cycles\":";
    out += std::to_string(s.cycles);
    out += ",\"complete\":";
    out += s.complete ? "true" : "false";
    out += ",\"p99_window_ms\":";
    out += std::to_string(s.p99_window_seconds * 1e3);
    out += ",\"ingest_seconds\":";
    out += std::to_string(s.ingest_seconds);
    out += ",\"finish_seconds\":";
    out += std::to_string(s.finish_seconds);
    out += ",\"spans\":[";
    bool first = true;
    for (const obs::SpanRecord& span : s.spans) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      out += json_escape(span.name);
      out += "\",\"seconds\":";
      out += std::to_string(span.duration_seconds);
      out += '}';
    }
    out += "],\"note\":\"";
    out += json_escape(s.note);
    out += "\"}\n";
  }
  out += "{\"type\":\"server\",\"accepted\":";
  out += std::to_string(st.accepted);
  out += ",\"started\":";
  out += std::to_string(st.sessions_started);
  out += ",\"active\":";
  out += std::to_string(active);
  out += ",\"done\":";
  out += std::to_string(st.sessions_done);
  out += ",\"torn\":";
  out += std::to_string(st.sessions_torn);
  out += ",\"evicted\":";
  out += std::to_string(st.sessions_evicted);
  out += ",\"failed\":";
  out += std::to_string(st.sessions_failed);
  out += ",\"rejected\":";
  out += std::to_string(st.rejected);
  out += "}\n";
  out += done_line();
  write_all(fd, out);
}

Server::Server(ServeOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  if (!impl_->listener.bind(impl_->options.socket_path, error)) return false;
  impl_->running.store(true, std::memory_order_relaxed);
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
  return true;
}

void Server::stop() {
  if (impl_->stopped.exchange(true)) return;
  impl_->stopping.store(true, std::memory_order_relaxed);
  // The accept loop polls its stop flag every 200ms; joining it first means
  // nobody touches the listener concurrently with close().
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  impl_->listener.close();

  // Drain: give live sessions their grace period...
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(impl_->options.drain_deadline_ms);
  for (;;) {
    bool active = false;
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      for (const auto& e : impl_->entries)
        if (is_active(e->state)) {
          active = true;
          break;
        }
    }
    if (!active || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // ...then force-end the stragglers' reads. Their handlers run the normal
  // end-of-stream path — honest (incomplete) verdict, registry update.
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& e : impl_->entries)
      if (is_active(e->state) && e->fd >= 0) shutdown_read(e->fd);
  }
  {
    // Handler threads never take long once their read is gone; join all.
    // (Joining outside mu: thread objects are only assigned before any
    // state transition, and stop() is the only joiner.)
    std::vector<std::thread*> to_join;
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      for (const auto& e : impl_->entries)
        if (e->thread.joinable()) to_join.push_back(&e->thread);
    }
    for (std::thread* t : to_join) t->join();
  }
  impl_->running.store(false, std::memory_order_relaxed);
}

bool Server::running() const {
  return impl_->running.load(std::memory_order_relaxed);
}

bool Server::stop_requested() const {
  return impl_->stop_requested.load(std::memory_order_relaxed);
}

const ServeOptions& Server::options() const { return impl_->options; }

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

std::vector<SessionStats> Server::sessions() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<SessionStats> out;
  out.reserve(impl_->entries.size());
  for (const auto& e : impl_->entries)
    out.push_back(impl_->snapshot_entry_locked(*e));
  return out;
}

}  // namespace wolf::serve
