// The always-on detection sidecar (DESIGN.md §18): a long-running server
// that accepts v3 wire-format event streams from many producer processes
// concurrently over a unix-domain socket and runs one wolf::Session per
// client.
//
// Isolation model — the "one misbehaving client can never poison another"
// contract, mechanically:
//   * one thread + one Session per connection: sessions share no mutable
//     analysis state (a governed Session owns its detector, its windows,
//     its degradation ladder, and — when jobs > 1 — its own enumeration
//     pool), so a slow, torn, or malicious stream can only ever burn its
//     own lane;
//   * per-session containment: the connection handler is wrapped in a
//     catch-everything that turns any escape into a kFailed entry and an
//     error line, never a server death; malformed events poison only their
//     session (Session::feed); torn/corrupt streams go through the salvage
//     reader and end in an honest stream_complete=false verdict;
//   * bounded per-client memory: the socket is drained through the same
//     bounded decode→ingest ring as batch pipelining (pipeline_depth
//     blocks), so a producer that outruns detection parks in the ring
//     (backpressure propagates to the client's send buffer) instead of
//     queueing unbounded state server-side — this is why jobs+budget is a
//     supported combination (Config::validate);
//   * lifecycle: idle sessions are evicted by a receive timeout, runaway
//     sessions by a wall-clock deadline, and stop() drains gracefully —
//     accepting nothing new, giving live sessions drain_deadline_ms to end
//     on their own, then force-ending the stragglers' reads. Every exit
//     path still emits an honest verdict.
//
// Observability: each session records obs spans (session/ingest,
// session/finish) into its own SpanSink and its registry entry keeps event/
// window/latency tallies; the `status` hello dumps all of it as
// newline-JSON, one line per session plus a server roll-up.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "wolf.hpp"

namespace wolf::serve {

struct ServeOptions {
  std::string socket_path;
  // Concurrent session cap; connections past it get an error line.
  int max_sessions = 16;
  // Receive-idle eviction budget per connection (covers the hello too).
  // 0 = never evict.
  std::int64_t idle_timeout_ms = 30000;
  // Wall-clock cap on one session's ingest, 0 = none. Exceeding it ends
  // the stream early with an honest incomplete verdict.
  std::int64_t session_deadline_ms = 0;
  // stop(): how long live sessions get to finish before their reads are
  // force-ended.
  std::int64_t drain_deadline_ms = 5000;
  // Depth, in blocks, of each session's decode→ingest ring; < 2 disables
  // pipelining (the session thread decodes inline).
  std::size_t pipeline_depth = 4;
  // Per-session analysis defaults; a session hello's parameters override
  // individual fields (protocol.hpp apply_params). live defaults on so
  // clients get cycles streamed as windows close.
  Config session;

  ServeOptions() { session.live = true; }
};

enum class SessionState : std::uint8_t {
  kHandshake,  // accepted, hello not parsed yet
  kStreaming,  // ingesting trace bytes
  kFinishing,  // stream ended, authoritative enumeration running
  kDone,       // clean end: complete stream, verdict delivered
  kTorn,       // stream ended mid-frame / failed salvage checks
  kEvicted,    // idle timeout or session deadline ended it
  kRejected,   // admission or hello failure; no session ran
  kFailed,     // contained internal failure (see note)
};
const char* to_string(SessionState state);

// One registry entry's public snapshot (sessions() / the status endpoint).
struct SessionStats {
  std::uint64_t id = 0;
  std::string name;
  SessionState state = SessionState::kHandshake;
  bool session_kind = false;  // false: status/stop/unparsed connections
  std::uint64_t events = 0;
  std::uint64_t blocks = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t windows = 0;
  std::uint64_t live_cycles = 0;  // live lines actually written
  std::uint64_t cycles = 0;       // final verdict cycle count
  bool complete = false;          // the verdict line's "complete" bit
  double p99_window_seconds = 0;  // p99 of per-window detection latency
  double ingest_seconds = 0;
  double finish_seconds = 0;
  std::string note;  // stream_note / failure detail
  std::vector<obs::SpanRecord> spans;  // session/ingest, session/finish
};

struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_done = 0;
  std::uint64_t sessions_torn = 0;
  std::uint64_t sessions_evicted = 0;
  std::uint64_t sessions_failed = 0;
  std::uint64_t rejected = 0;

  std::uint64_t finished() const {
    return sessions_done + sessions_torn + sessions_evicted + sessions_failed;
  }
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();  // stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the socket and starts accepting. False + error on bind failure.
  bool start(std::string* error);

  // Graceful drain: stop accepting, give live sessions drain_deadline_ms,
  // force-end the rest, join everything. Idempotent.
  void stop();

  bool running() const;
  // True once a client sent the `stop` hello; the host loop (wolf serve)
  // polls this and calls stop().
  bool stop_requested() const;

  const ServeOptions& options() const;
  ServerStats stats() const;
  std::vector<SessionStats> sessions() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wolf::serve
