// The serve sidecar's wire protocol (DESIGN.md §18).
//
// A connection opens with one text line from the client:
//
//   WOLFSERVE/1 session name=<n> [window=N] [budget-mb=N] [deadline-ms=N]
//                               [jobs=N] [live=0|1] [incremental=0|1]
//   WOLFSERVE/1 status
//   WOLFSERVE/1 stop
//
// After a `session` hello the client streams a v3 (or v1/v2) trace as raw
// bytes on the same connection and half-closes its write side; everything
// the server says back is newline-delimited JSON, one object per line:
//
//   {"type":"hello",...}     accepted; analysis parameters echoed
//   {"type":"live",...}      one first-sighted cycle (session opted in)
//   {"type":"verdict",...}   the authoritative end-of-session verdict
//   {"type":"done"}          end of response stream
//   {"type":"error",...}     protocol/admission failure; connection ends
//
// The builders below are the *only* producers of these lines — the server
// formats with them and the differential tests re-render a locally computed
// reference Session through the same functions, so "byte-identical verdicts
// over the socket" is checked against the same code that writes them, not a
// parallel formatter that could drift.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "wolf.hpp"

namespace wolf::serve {

inline constexpr std::string_view kProtocolTag = "WOLFSERVE/1";

struct HelloRequest {
  enum class Kind { kSession, kStatus, kStop };
  Kind kind = Kind::kSession;
  std::string name;                              // session hellos only
  std::map<std::string, std::string> params;     // raw key=value pairs
};

// Parses a hello line. Returns false and fills `error` on anything
// malformed — unknown verb, bad key=value syntax, unknown key, or a
// non-integer value for a numeric key.
bool parse_hello(const std::string& line, HelloRequest& out,
                 std::string& error);

// Renders a session hello line (no trailing newline) for clients.
std::string format_hello(const std::string& name,
                         const std::map<std::string, std::string>& params);

// Applies a hello's params onto a session Config (server defaults). Returns
// false and fills `error` on out-of-range values.
bool apply_params(const std::map<std::string, std::string>& params,
                  Config& config, std::string& error);

// ---- JSON line builders (each returns one line ending in '\n') -----------

std::string json_escape(std::string_view s);

std::string hello_line(std::uint64_t session_id, const std::string& name,
                       const Config& config);
std::string live_line(const SessionCycle& cycle);
// The end-of-session verdict. stream_complete reports transport/framing
// honesty (v3 footer seen, no salvage diagnostics, no eviction);
// coverage_complete comes from the governor. "complete" is their AND — the
// one bit a client must check.
std::string verdict_line(const Session::Verdict& verdict, bool stream_complete,
                         const std::string& stream_note,
                         std::uint64_t events_seen);
std::string done_line();
std::string error_line(const std::string& message);

// ---- client-side line inspection ------------------------------------------
// Substring-free structural parse of the fixed field layout the builders
// emit (this is a private protocol; both ends are this file).

// "type" of one response line; empty when the line is not ours.
std::string line_type(const std::string& line);
// Extracts window/sequence/description from a live line. Returns false when
// the line is not a live line.
bool parse_live_line(const std::string& line, SessionCycle& out);
// Extracts the fields of a verdict line a client acts on.
struct VerdictFields {
  bool complete = false;
  bool stream_complete = false;
  bool coverage_complete = false;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::string summary;
  std::string stream_note;
  std::vector<std::string> cycles;  // canonical descriptions, final order
};
bool parse_verdict_line(const std::string& line, VerdictFields& out);
// Message of an error line.
bool parse_error_line(const std::string& line, std::string& message);

}  // namespace wolf::serve
