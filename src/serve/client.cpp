#include "serve/client.hpp"

#include <chrono>
#include <istream>
#include <mutex>
#include <thread>

#include "serve/net.hpp"

namespace wolf::serve {

namespace {

// Drains response lines on a dedicated thread so the upload never
// write-write deadlocks against a server streaming live cycles.
struct LineReader {
  explicit LineReader(int fd) : fd_(fd) {}

  void start() {
    thread_ = std::thread([this] {
      FdInBuf buf(fd_);
      std::istream is(&buf);
      std::string line;
      while (std::getline(is, line)) {
        std::lock_guard<std::mutex> lock(mu_);
        lines_.push_back(line);
      }
    });
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  std::vector<std::string> take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(lines_);
  }

  int fd_;
  std::thread thread_;
  std::mutex mu_;
  std::vector<std::string> lines_;
};

}  // namespace

EmitResult emit_trace_bytes(const EmitOptions& options,
                            std::string_view bytes) {
  EmitResult r;
  std::string err;
  Fd fd = unix_connect(options.socket_path, &err);
  if (!fd.valid()) {
    r.error = "connect: " + err;
    return r;
  }
  r.connected = true;

  LineReader reader(fd.get());
  reader.start();

  std::string hello = format_hello(options.name, options.params);
  hello += '\n';
  if (!write_all(fd.get(), hello)) {
    r.error = "hello write failed";
    shutdown_write(fd.get());
    reader.join();
    return r;
  }

  // Upload, chunked; the chaos knobs act here.
  bool killed = false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    std::size_t n = std::min(options.chunk_bytes == 0 ? bytes.size()
                                                      : options.chunk_bytes,
                             bytes.size() - sent);
    if (options.kill_after_bytes >= 0) {
      const std::size_t cap =
          static_cast<std::size_t>(options.kill_after_bytes);
      if (sent >= cap) {
        killed = true;
        break;
      }
      n = std::min(n, cap - sent);
    }
    if (!write_all(fd.get(), bytes.substr(sent, n))) break;  // server gone
    sent += n;
    if (options.kill_after_bytes >= 0 &&
        sent >= static_cast<std::size_t>(options.kill_after_bytes)) {
      killed = true;
      break;
    }
    if (options.throttle_ms > 0)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.throttle_ms));
  }
  r.bytes_sent = sent;

  if (killed && options.vanish) {
    // A killed producer: both directions die at once; whatever the server
    // says from here on is never heard.
    shutdown_read(fd.get());
    shutdown_write(fd.get());
  } else {
    // Normal end (or a torn upload we still listen after): tell the server
    // the stream is over and keep reading until its done line.
    shutdown_write(fd.get());
  }
  reader.join();

  r.lines = reader.take();
  for (const std::string& line : r.lines) {
    if (options.on_line) options.on_line(line);
    const std::string type = line_type(line);
    if (type == "hello") {
      r.hello_reply = line;
    } else if (type == "live") {
      r.live_lines.push_back(line);
    } else if (type == "verdict") {
      r.verdict_line = line;
      if (parse_verdict_line(line, r.verdict)) r.complete = r.verdict.complete;
    } else if (type == "done") {
      r.done = true;
    } else if (type == "error") {
      std::string message;
      parse_error_line(line, message);
      r.error = message.empty() ? "server error" : message;
    }
  }
  if (!r.done && r.error.empty() && !(killed && options.vanish))
    r.error = "connection ended before the done line";
  return r;
}

EmitResult emit_trace(const EmitOptions& options, const Trace& trace,
                      TraceFormat format) {
  return emit_trace_bytes(options, trace_to_string(trace, format));
}

namespace {

// Shared one-shot exchange for status/stop.
bool simple_request(const std::string& socket_path, const std::string& verb,
                    std::vector<std::string>& lines, std::string* error) {
  std::string err;
  Fd fd = unix_connect(socket_path, &err);
  if (!fd.valid()) {
    if (error != nullptr) *error = "connect: " + err;
    return false;
  }
  std::string hello(kProtocolTag);
  hello += ' ';
  hello += verb;
  hello += '\n';
  if (!write_all(fd.get(), hello)) {
    if (error != nullptr) *error = "hello write failed";
    return false;
  }
  shutdown_write(fd.get());
  FdInBuf buf(fd.get());
  std::istream is(&buf);
  std::string line;
  bool done = false;
  while (std::getline(is, line)) {
    if (line_type(line) == "done") {
      done = true;
      break;
    }
    lines.push_back(line);
  }
  if (!done && error != nullptr) *error = "connection ended before done";
  return done;
}

}  // namespace

bool fetch_status(const std::string& socket_path,
                  std::vector<std::string>& lines, std::string* error) {
  return simple_request(socket_path, "status", lines, error);
}

bool send_stop(const std::string& socket_path, std::string* error) {
  std::vector<std::string> lines;
  return simple_request(socket_path, "stop", lines, error);
}

}  // namespace wolf::serve
