#include "serve/net.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace wolf::serve {

namespace {

bool fill_sockaddr(const std::string& path, sockaddr_un& addr,
                   std::string* error) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr)
      *error = "socket path too long (" + std::to_string(path.size()) +
               " bytes; the sockaddr_un limit is " +
               std::to_string(sizeof(addr.sun_path) - 1) + ")";
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool write_all(int fd, std::string_view bytes) {
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

bool set_recv_timeout_ms(int fd, std::int64_t ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

void shutdown_read(int fd) { ::shutdown(fd, SHUT_RD); }
void shutdown_write(int fd) { ::shutdown(fd, SHUT_WR); }

Fd unix_connect(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!fill_sockaddr(path, addr, error)) return Fd();
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = std::strerror(errno);
    return Fd();
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (error != nullptr)
      *error = path + ": " + std::strerror(errno);
    return Fd();
  }
  return fd;
}

bool UnixListener::bind(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!fill_sockaddr(path, addr, error)) return false;
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(fd.get(), SOMAXCONN) != 0) {
    if (error != nullptr)
      *error = path + ": " + std::strerror(errno);
    return false;
  }
  fd_ = std::move(fd);
  path_ = path;
  return true;
}

int UnixListener::accept_for(int timeout_ms) {
  if (!fd_.valid()) return kClosed;
  pollfd pfd{};
  pfd.fd = fd_.get();
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc == 0) return kTimeout;
  if (rc < 0) return errno == EINTR ? kTimeout : kClosed;
  if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) return kClosed;
  const int client = ::accept(fd_.get(), nullptr, nullptr);
  if (client < 0) return errno == EINTR ? kTimeout : kClosed;
  return client;
}

void UnixListener::close() {
  if (!fd_.valid()) return;
  fd_.reset();
  if (!path_.empty()) ::unlink(path_.c_str());
}

FdInBuf::int_type FdInBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  for (;;) {
    const ssize_t n = ::recv(fd_, buf_, sizeof(buf_), 0);
    if (n > 0) {
      bytes_read_ += static_cast<std::uint64_t>(n);
      setg(buf_, buf_, buf_ + n);
      return traits_type::to_int_type(*gptr());
    }
    if (n == 0) return traits_type::eof();  // orderly peer close
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO expired: the peer went idle past the eviction budget.
      timed_out_ = true;
      return traits_type::eof();
    }
    io_error_ = true;
    return traits_type::eof();
  }
}

}  // namespace wolf::serve
