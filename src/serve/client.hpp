// Client side of the serve protocol: the library behind `wolf emit`, the
// fairness/chaos tests, and bench/perf_serve.
//
// emit_* opens a connection, sends the session hello, then streams the
// trace bytes in configurable chunks while a dedicated reader thread drains
// the server's response lines — full duplex, so a server streaming live
// cycles can never deadlock against a client still uploading (both sides
// writing, nobody reading). The chunking knobs double as chaos axes:
// throttle_ms makes a pathological slow consumer, kill_after_bytes tears
// the stream mid-frame, and vanish picks between a half-close (the server's
// verdict still reaches us) and a full close (a kill -9 shaped exit).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.hpp"
#include "trace/serialize.hpp"

namespace wolf::serve {

struct EmitOptions {
  std::string socket_path;
  std::string name = "client";
  // Extra hello parameters (window=, budget-mb=, deadline-ms=, jobs=,
  // live=, incremental=).
  std::map<std::string, std::string> params;
  // Upload chunking. Small chunks + throttle = a slow consumer.
  std::size_t chunk_bytes = 64 * 1024;
  std::int64_t throttle_ms = 0;  // sleep between chunks
  // Chaos: stop uploading after this many bytes (< 0 = send everything).
  std::int64_t kill_after_bytes = -1;
  // With kill_after_bytes: true = close both directions at once (a killed
  // process; we read nothing more), false = half-close the write side (the
  // server still answers with its honest torn-stream verdict).
  bool vanish = false;
  // Observation hook: every server line, in arrival order.
  std::function<void(const std::string&)> on_line;
};

struct EmitResult {
  bool connected = false;
  bool done = false;      // server closed the exchange with a done line
  bool complete = false;  // verdict line's "complete" bit
  std::string error;      // transport/protocol failure, or server error line
  std::uint64_t bytes_sent = 0;
  std::vector<std::string> lines;       // every server line, in order
  std::vector<std::string> live_lines;  // the live subset, in order
  std::string hello_reply;              // raw hello JSON line
  std::string verdict_line;             // raw verdict JSON line
  VerdictFields verdict;                // parsed from verdict_line

  bool ok() const { return error.empty() && done; }
};

// Streams pre-encoded trace bytes (any on-disk format; v3 is the native
// one) through one session.
EmitResult emit_trace_bytes(const EmitOptions& options,
                            std::string_view bytes);
// Encodes `trace` to `format` and streams it.
EmitResult emit_trace(const EmitOptions& options, const Trace& trace,
                      TraceFormat format = TraceFormat::kV3);

// Fetches the status endpoint: every line before "done", in order. Returns
// false and fills `error` on transport failure.
bool fetch_status(const std::string& socket_path,
                  std::vector<std::string>& lines, std::string* error);

// Asks the server to stop (graceful drain). True once acknowledged.
bool send_stop(const std::string& socket_path, std::string* error);

}  // namespace wolf::serve
