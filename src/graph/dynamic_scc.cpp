#include "graph/dynamic_scc.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace wolf {

int DynamicScc::new_component_label() const {
  members_.emplace_back();
  ord_.push_back(0);
  pending_flag_.push_back(0);
  stamp_.push_back(0);
  return static_cast<int>(members_.size()) - 1;
}

DynamicScc::Node DynamicScc::add_node() {
  const Node v = static_cast<Node>(out_.size());
  out_.emplace_back();
  in_.emplace_back();
  const int label = new_component_label();
  members_[static_cast<std::size_t>(label)].push_back(v);
  // A fresh isolated node has no order constraints; park it after every
  // existing position so no reorder is needed.
  ord_[static_cast<std::size_t>(label)] = next_ord_++;
  ++live_components_;
  comp_.push_back(label);
  dirty_flag_.push_back(0);
  mark_dirty(v);
  return v;
}

void DynamicScc::mark_dirty(Node v) {
  const auto vi = static_cast<std::size_t>(v);
  if (dirty_flag_[vi]) return;
  dirty_flag_[vi] = 1;
  dirty_nodes_.push_back(v);
}

bool DynamicScc::has_dirty() const {
  return !dirty_nodes_.empty() || !pending_split_.empty();
}

std::vector<int> DynamicScc::drain_dirty() {
  flush();
  std::vector<int> comps;
  for (Node v : dirty_nodes_) {
    dirty_flag_[static_cast<std::size_t>(v)] = 0;
    const int c = comp_[static_cast<std::size_t>(v)];
    if (std::find(comps.begin(), comps.end(), c) == comps.end())
      comps.push_back(c);
  }
  dirty_nodes_.clear();
  return comps;
}

void DynamicScc::bounded_search(int start, std::int64_t lo, std::int64_t hi,
                                bool forward,
                                std::vector<int>& visited) const {
  const std::uint32_t gen = ++stamp_gen_;
  std::vector<int> stack{start};
  stamp_[static_cast<std::size_t>(start)] = gen;
  while (!stack.empty()) {
    const int c = stack.back();
    stack.pop_back();
    visited.push_back(c);
    for (Node v : members_[static_cast<std::size_t>(c)]) {
      const auto& adj =
          forward ? out_[static_cast<std::size_t>(v)] : in_[static_cast<std::size_t>(v)];
      for (Node w : adj) {
        const int cw = comp_[static_cast<std::size_t>(w)];
        const auto cwi = static_cast<std::size_t>(cw);
        if (cw == c || stamp_[cwi] == gen) continue;
        if (ord_[cwi] < lo || ord_[cwi] > hi) continue;
        stamp_[cwi] = gen;
        stack.push_back(cw);
      }
    }
  }
}

bool DynamicScc::add_edge(Node u, Node v) {
  flush();
  out_[static_cast<std::size_t>(u)].push_back(v);
  in_[static_cast<std::size_t>(v)].push_back(u);
  const int cu = comp_[static_cast<std::size_t>(u)];
  const int cv = comp_[static_cast<std::size_t>(v)];
  if (cu == cv) return false;  // intra-component (incl. self loops): no change
  const std::int64_t ou = ord_[static_cast<std::size_t>(cu)];
  const std::int64_t ov = ord_[static_cast<std::size_t>(cv)];
  // Order already consistent with the new edge — the common case, O(1).
  if (ou < ov) return false;

  // Bounded discovery (Pearce–Kelly): every component on a cv→…→cu path has
  // its order inside [ov, ou] (the order was valid before this edge), so two
  // searches restricted to that range see everything that matters.
  std::vector<int> forward_set, backward_set;
  bounded_search(cv, ov, ou, /*forward=*/true, forward_set);
  bounded_search(cu, ov, ou, /*forward=*/false, backward_set);

  std::sort(forward_set.begin(), forward_set.end());
  std::sort(backward_set.begin(), backward_set.end());
  std::vector<int> on_cycle;
  std::set_intersection(forward_set.begin(), forward_set.end(),
                        backward_set.begin(), backward_set.end(),
                        std::back_inserter(on_cycle));

  if (!on_cycle.empty()) {
    // cv reaches cu: the new edge closes a cycle through exactly the
    // components in the intersection. Collapse them into the one with the
    // most members (smaller-into-larger keeps total relabel work
    // O(n log n) over the graph's lifetime).
    ++merges_;
    int target = on_cycle.front();
    for (int c : on_cycle)
      if (members_[static_cast<std::size_t>(c)].size() >
          members_[static_cast<std::size_t>(target)].size())
        target = c;
    auto& into = members_[static_cast<std::size_t>(target)];
    for (int c : on_cycle) {
      if (c == target) continue;
      for (Node m : members_[static_cast<std::size_t>(c)]) {
        comp_[static_cast<std::size_t>(m)] = target;
        into.push_back(m);
        mark_dirty(m);
      }
      members_[static_cast<std::size_t>(c)].clear();
      members_[static_cast<std::size_t>(c)].shrink_to_fit();
      --live_components_;
    }
    mark_dirty(u);  // the merged component's membership changed
    mark_dirty(v);
    recompute_order();
    return true;
  }

  // No cycle: restore the order by reassigning the affected components'
  // positions — ancestors of u first (preserving their relative order),
  // then descendants of v. No F→B edge can exist (it would close a cycle),
  // so this is a valid topological order of the condensation (PK Thm. 1).
  std::vector<std::int64_t> pool;
  pool.reserve(forward_set.size() + backward_set.size());
  auto by_ord = [&](int a, int b) {
    return ord_[static_cast<std::size_t>(a)] < ord_[static_cast<std::size_t>(b)];
  };
  std::sort(forward_set.begin(), forward_set.end(), by_ord);
  std::sort(backward_set.begin(), backward_set.end(), by_ord);
  for (int c : forward_set) pool.push_back(ord_[static_cast<std::size_t>(c)]);
  for (int c : backward_set) pool.push_back(ord_[static_cast<std::size_t>(c)]);
  std::sort(pool.begin(), pool.end());
  std::size_t slot = 0;
  for (int c : backward_set) ord_[static_cast<std::size_t>(c)] = pool[slot++];
  for (int c : forward_set) ord_[static_cast<std::size_t>(c)] = pool[slot++];
  return false;
}

void DynamicScc::remove_edge(Node u, Node v) {
  auto& succ = out_[static_cast<std::size_t>(u)];
  auto it = std::find(succ.begin(), succ.end(), v);
  WOLF_CHECK_MSG(it != succ.end(),
                 "DynamicScc::remove_edge: edge " << u << "->" << v
                                                  << " not present");
  succ.erase(it);
  auto& pred = in_[static_cast<std::size_t>(v)];
  pred.erase(std::find(pred.begin(), pred.end(), u));

  const int cu = comp_[static_cast<std::size_t>(u)];
  if (cu != comp_[static_cast<std::size_t>(v)])
    return;  // cross-component: drops a constraint, never splits or reorders
  // Intra-component: the SCC may have split. Queue a bounded rebuild of this
  // component only; a batch of expiries pays one rebuild per touched
  // component when the next read flushes.
  const auto cui = static_cast<std::size_t>(cu);
  if (!pending_flag_[cui]) {
    pending_flag_[cui] = 1;
    pending_split_.push_back(cu);
  }
}

void DynamicScc::rebuild_component(int comp) const {
  const auto ci = static_cast<std::size_t>(comp);
  if (members_[ci].size() < 2) return;  // singletons cannot split
  std::vector<std::vector<Node>> sccs = tarjan_over(members_[ci]);
  if (sccs.size() < 2) return;  // still strongly connected
  ++splits_;
  // Keep the old label for the largest piece (least relabel churn), fresh
  // labels for the rest. Every member is dirty: its component's membership
  // changed, so consumers must re-examine the tuples hanging off it.
  std::size_t largest = 0;
  for (std::size_t i = 1; i < sccs.size(); ++i)
    if (sccs[i].size() > sccs[largest].size()) largest = i;
  for (std::size_t i = 0; i < sccs.size(); ++i) {
    int label = comp;
    if (i != largest) {
      label = new_component_label();
      ord_[static_cast<std::size_t>(label)] = next_ord_++;  // fixed by caller
      ++live_components_;
    }
    members_[static_cast<std::size_t>(label)] = sccs[i];
    for (Node m : sccs[i]) {
      comp_[static_cast<std::size_t>(m)] = label;
      const_cast<DynamicScc*>(this)->mark_dirty(m);
    }
  }
}

void DynamicScc::flush() const {
  if (pending_split_.empty()) return;
  const std::size_t splits_before = splits_;
  for (int comp : pending_split_) {
    pending_flag_[static_cast<std::size_t>(comp)] = 0;
    rebuild_component(comp);
  }
  pending_split_.clear();
  // A split changed the condensation's shape; one global order pass keeps
  // every position consistent (cheap: the condensation is the lock graph's,
  // orders of magnitude smaller than the tuple store this layer gates).
  if (splits_ != splits_before) recompute_order();
}

void DynamicScc::recompute_order() const {
  ++order_rebuilds_;
  // Iterative DFS over the condensation; reverse postorder = topological
  // order (the condensation is acyclic by construction).
  const std::uint32_t gen = ++stamp_gen_;
  std::vector<int> postorder;
  postorder.reserve(live_components_);
  std::vector<std::pair<int, std::size_t>> frames;  // (comp, member+edge cursor)
  for (std::size_t root = 0; root < members_.size(); ++root) {
    if (members_[root].empty()) continue;
    const int rc = static_cast<int>(root);
    if (stamp_[root] == gen) continue;
    stamp_[root] = gen;
    frames.emplace_back(rc, 0);
    while (!frames.empty()) {
      auto& [c, cursor] = frames.back();
      const auto& nodes = members_[static_cast<std::size_t>(c)];
      // Flattened (member, successor) cursor over the component's out edges.
      bool descended = false;
      std::size_t seen = 0;
      for (Node m : nodes) {
        const auto& succ = out_[static_cast<std::size_t>(m)];
        if (cursor >= seen + succ.size()) {
          seen += succ.size();
          continue;
        }
        while (cursor < seen + succ.size()) {
          const Node w = succ[cursor - seen];
          ++cursor;
          const int cw = comp_[static_cast<std::size_t>(w)];
          const auto cwi = static_cast<std::size_t>(cw);
          if (cw == c || stamp_[cwi] == gen) continue;
          stamp_[cwi] = gen;
          frames.emplace_back(cw, 0);
          descended = true;
          break;
        }
        if (descended) break;
        seen += succ.size();
      }
      if (descended) continue;
      postorder.push_back(c);
      frames.pop_back();
    }
  }
  std::int64_t position = static_cast<std::int64_t>(postorder.size());
  for (int c : postorder)
    ord_[static_cast<std::size_t>(c)] = --position >= 0
                                            ? position
                                            : 0;  // descending: reverse postorder
  next_ord_ = static_cast<std::int64_t>(postorder.size());
}

std::vector<std::vector<DynamicScc::Node>> DynamicScc::tarjan_over(
    const std::vector<Node>& nodes) const {
  // Iterative Tarjan restricted to `nodes` (empty = every node); edges with
  // an endpoint outside the set are ignored.
  const int n = static_cast<int>(out_.size());
  std::vector<std::vector<Node>> sccs;
  if (n == 0) return sccs;
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<char> on_stack(static_cast<std::size_t>(n), 0);
  std::vector<char> in_set;
  const bool restricted = !nodes.empty() &&
                          nodes.size() != static_cast<std::size_t>(n);
  if (restricted) {
    in_set.assign(static_cast<std::size_t>(n), 0);
    for (Node v : nodes) in_set[static_cast<std::size_t>(v)] = 1;
  }
  auto included = [&](Node v) {
    return !restricted || in_set[static_cast<std::size_t>(v)] != 0;
  };
  std::vector<Node> stack;
  std::vector<std::pair<Node, std::size_t>> frames;
  int next_index = 0;
  auto roots = nodes;
  if (roots.empty())
    for (Node v = 0; v < n; ++v) roots.push_back(v);
  for (Node root : roots) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    frames.emplace_back(root, 0);
    while (!frames.empty()) {
      auto& [v, cursor] = frames.back();
      const auto vi = static_cast<std::size_t>(v);
      if (cursor == 0) {
        index[vi] = low[vi] = next_index++;
        stack.push_back(v);
        on_stack[vi] = 1;
      }
      const auto& succ = out_[vi];
      if (cursor < succ.size()) {
        const Node w = succ[cursor++];
        const auto wi = static_cast<std::size_t>(w);
        if (!included(w)) continue;
        if (index[wi] == -1) {
          frames.emplace_back(w, 0);
        } else if (on_stack[wi]) {
          low[vi] = std::min(low[vi], index[wi]);
        }
        continue;
      }
      if (low[vi] == index[vi]) {
        sccs.emplace_back();
        for (;;) {
          const Node w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = 0;
          sccs.back().push_back(w);
          if (w == v) break;
        }
      }
      frames.pop_back();
      if (!frames.empty()) {
        const auto pi = static_cast<std::size_t>(frames.back().first);
        low[pi] = std::min(low[pi], low[vi]);
      }
    }
  }
  return sccs;
}

std::vector<std::vector<DynamicScc::Node>> DynamicScc::tarjan_components()
    const {
  flush();
  return tarjan_over({});
}

int DynamicScc::component_of(Node v) const {
  flush();
  return comp_[static_cast<std::size_t>(v)];
}

bool DynamicScc::same_component(Node u, Node v) const {
  flush();
  return comp_[static_cast<std::size_t>(u)] == comp_[static_cast<std::size_t>(v)];
}

std::size_t DynamicScc::component_count() const {
  flush();
  return live_components_;
}

const std::vector<DynamicScc::Node>& DynamicScc::members(int comp) const {
  flush();
  return members_[static_cast<std::size_t>(comp)];
}

bool DynamicScc::component_alive(int comp) const {
  flush();
  return comp >= 0 && static_cast<std::size_t>(comp) < members_.size() &&
         !members_[static_cast<std::size_t>(comp)].empty();
}

std::size_t DynamicScc::component_capacity() const {
  flush();
  return members_.size();
}

std::int64_t DynamicScc::order_of(int comp) const {
  flush();
  return ord_[static_cast<std::size_t>(comp)];
}

void DynamicScc::clear() {
  out_.clear();
  in_.clear();
  comp_.clear();
  members_.clear();
  ord_.clear();
  live_components_ = 0;
  pending_split_.clear();
  pending_flag_.clear();
  dirty_nodes_.clear();
  dirty_flag_.clear();
  stamp_.clear();
  stamp_gen_ = 0;
  next_ord_ = 0;
  merges_ = 0;
  splits_ = 0;
  order_rebuilds_ = 0;
}

}  // namespace wolf
