// Incremental SCC maintenance under edge insertions and deletions
// (ROADMAP item 2; DESIGN.md §16).
//
// The governed streaming detector consults the lock-level holds→requests
// digraph every window. Recomputing its SCC decomposition from scratch is
// cheap only while suspicious windows are rare; an adversarial stream that
// mutates an edge every window turns the per-window Tarjan — and, far
// worse, the full tuple-store enumeration it gates — into a quadratic
// recompute loop. This class maintains the decomposition *as the graph
// changes*, so a window's cost is proportional to what the window touched:
//
//   * insertions — Pearce–Kelly topological-order maintenance on the
//     condensation ("A Dynamic Topological Sort Algorithm for Directed
//     Acyclic Graphs", JEA 2006; the bounded-discovery family of Bender et
//     al.): an edge u→v whose components already satisfy ord(u) < ord(v)
//     is O(1). Otherwise two searches bounded to the affected order range
//     [ord(v), ord(u)] either reorder the region (no cycle) or discover
//     the components on v→…→u paths and collapse them into one
//     condensation node (cycle). Components are explicit label sets merged
//     smaller-into-larger, so collapse is amortized O(n log n) relabels
//     over the graph's lifetime — no union-find deletion problem later;
//   * deletions — removing a cross-component edge cannot change any SCC or
//     invalidate the order: O(1). Removing an intra-component edge can
//     split the component; the split is *lazy and bounded*: the component
//     is queued, and the next structural operation re-runs Tarjan over
//     that component's members only (the affected condensation region).
//     A batch of expiries therefore costs one bounded rebuild per touched
//     component, not one per edge. Soundness is inherited from the same
//     Tarjan the batch path runs;
//   * dirty tracking — node-granular marks, folded upward: any membership
//     change (merge, split, node creation) and any caller-reported touch
//     leaves a mark, and drain_dirty() maps the marks to their *current*
//     components. Consumers enumerate only tuples of dirty components.
//
// Every query answers over the fully-applied mutation history (pending
// splits are flushed first), so `component_of` and the Tarjan oracle
// `tarjan_components()` always agree — the differential contract the fuzz
// tests assert after every mutation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wolf {

class DynamicScc {
 public:
  using Node = int;

  // Adds an isolated node (its own singleton component) and returns its id.
  Node add_node();
  std::size_t node_count() const { return out_.size(); }

  // Inserts the directed edge u -> v. The caller guarantees the edge is not
  // currently present (parallel edges are the caller's refcounting job).
  // Returns true when the insertion created a cycle and merged components.
  bool add_edge(Node u, Node v);

  // Removes the directed edge u -> v (which must be present). A deletion
  // inside a component queues that component for a lazy bounded rebuild;
  // cross-component deletions are O(1).
  void remove_edge(Node u, Node v);

  // Component label of `v` — stable until a merge or split relabels it.
  int component_of(Node v) const;
  bool same_component(Node u, Node v) const;
  std::size_t component_count() const;

  // Member nodes of a live component (unordered). `component_alive` is
  // false for labels retired by merges/splits; `component_capacity` bounds
  // the label space for iteration.
  const std::vector<Node>& members(int comp) const;
  bool component_alive(int comp) const;
  std::size_t component_capacity() const;

  // Topological position of a live component in the condensation: for every
  // cross-component edge u -> v, order_of(u's comp) < order_of(v's comp).
  std::int64_t order_of(int comp) const;

  // Marks `v` dirty without mutating the graph — the caller's hook for
  // "something about this node's tuples changed" (new contribution, guard
  // narrowing, contributor expiry).
  void mark_dirty(Node v);
  // True when drain_dirty() would return anything — including marks a queued
  // lazy split will add once flushed.
  bool has_dirty() const;
  // Read-only view of the marked nodes (drain_dirty's non-clearing twin).
  // Callers that need split-induced marks included must force a flush first
  // (any structural accessor, e.g. component_capacity(), does).
  const std::vector<Node>& dirty_nodes() const { return dirty_nodes_; }

  // Current component labels carrying at least one dirty mark, deduplicated;
  // clears the dirty set. Marks survive merges and splits because they are
  // stored per node and mapped through the live labels at drain time.
  std::vector<int> drain_dirty();

  // Fresh Tarjan over the stored adjacency — the executable specification
  // the incremental state must match. Components come back as member lists
  // in reverse topological order. Used by the lazy rebuild (restricted to
  // one component) and by the differential fuzz tests (whole graph).
  std::vector<std::vector<Node>> tarjan_components() const;

  // Mutation statistics, surfaced for tests and bench diagnostics.
  std::size_t merges() const { return merges_; }
  std::size_t splits() const { return splits_; }
  std::size_t order_rebuilds() const { return order_rebuilds_; }

  void clear();

 private:
  // Applies queued split rebuilds; every public accessor funnels through
  // this so reads always see a consistent decomposition.
  void flush() const;
  void rebuild_component(int comp) const;
  void recompute_order() const;
  // Tarjan restricted to `nodes` (empty = all nodes), using only edges whose
  // endpoints are both in the set.
  std::vector<std::vector<Node>> tarjan_over(
      const std::vector<Node>& nodes) const;
  // Condensation successors/predecessors of `comp` whose order lies in
  // [lo, hi], deduplicated via stamp_.
  void bounded_search(int comp, std::int64_t lo, std::int64_t hi, bool forward,
                      std::vector<int>& visited) const;

  std::vector<std::vector<Node>> out_;  // node-level adjacency (unique edges)
  std::vector<std::vector<Node>> in_;

  // The decomposition. Everything mutable: deletions queue work that the
  // next (possibly const) read applies.
  mutable std::vector<int> comp_;                  // node -> component label
  mutable std::vector<std::vector<Node>> members_; // label -> nodes ([] = dead)
  mutable std::vector<std::int64_t> ord_;          // label -> topo position
  mutable std::size_t live_components_ = 0;

  mutable std::vector<int> pending_split_;         // labels queued for rebuild
  mutable std::vector<char> pending_flag_;         // label -> queued?

  mutable std::vector<Node> dirty_nodes_;
  mutable std::vector<char> dirty_flag_;           // node -> marked?

  // Per-operation visited stamps over component labels (avoids clearing a
  // bool vector on every bounded search).
  mutable std::vector<std::uint32_t> stamp_;
  mutable std::uint32_t stamp_gen_ = 0;

  // Next free topological position for components with no order constraints
  // yet (fresh nodes, split remainders before the order pass runs).
  mutable std::int64_t next_ord_ = 0;

  mutable std::size_t merges_ = 0;
  mutable std::size_t splits_ = 0;
  mutable std::size_t order_rebuilds_ = 0;

  int new_component_label() const;
};

}  // namespace wolf
