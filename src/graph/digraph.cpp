#include "graph/digraph.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace wolf {

Digraph::Digraph(int node_count) {
  WOLF_CHECK(node_count >= 0);
  succ_.resize(static_cast<std::size_t>(node_count));
  pred_.resize(static_cast<std::size_t>(node_count));
  alive_.assign(static_cast<std::size_t>(node_count), true);
  alive_node_count_ = node_count;
}

void Digraph::check_node(Node n) const {
  WOLF_CHECK_MSG(n >= 0 && n < node_capacity() && alive_[static_cast<std::size_t>(n)],
                 "node " << n << " is not alive");
}

Digraph::Node Digraph::add_node() {
  succ_.emplace_back();
  pred_.emplace_back();
  alive_.push_back(true);
  ++alive_node_count_;
  return static_cast<Node>(alive_.size()) - 1;
}

bool Digraph::alive(Node n) const {
  return n >= 0 && n < node_capacity() && alive_[static_cast<std::size_t>(n)];
}

void Digraph::add_edge(Node u, Node v) {
  check_node(u);
  check_node(v);
  auto& out = succ_[static_cast<std::size_t>(u)];
  if (std::find(out.begin(), out.end(), v) != out.end()) return;
  out.push_back(v);
  pred_[static_cast<std::size_t>(v)].push_back(u);
  ++edge_count_;
}

void Digraph::add_edge_fast(Node u, Node v) {
  check_node(u);
  check_node(v);
  succ_[static_cast<std::size_t>(u)].push_back(v);
  pred_[static_cast<std::size_t>(v)].push_back(u);
  ++edge_count_;
}

bool Digraph::has_edge(Node u, Node v) const {
  if (!alive(u) || !alive(v)) return false;
  const auto& out = succ_[static_cast<std::size_t>(u)];
  return std::find(out.begin(), out.end(), v) != out.end();
}

void Digraph::remove_edge(Node u, Node v) {
  check_node(u);
  check_node(v);
  auto& out = succ_[static_cast<std::size_t>(u)];
  auto it = std::find(out.begin(), out.end(), v);
  if (it == out.end()) return;
  out.erase(it);
  auto& in = pred_[static_cast<std::size_t>(v)];
  in.erase(std::find(in.begin(), in.end(), u));
  --edge_count_;
}

void Digraph::remove_node(Node n) {
  check_node(n);
  // Copy because remove_edge mutates the adjacency we iterate.
  const std::vector<Node> out = succ_[static_cast<std::size_t>(n)];
  for (Node v : out) remove_edge(n, v);
  const std::vector<Node> in = pred_[static_cast<std::size_t>(n)];
  for (Node u : in) remove_edge(u, n);
  alive_[static_cast<std::size_t>(n)] = false;
  --alive_node_count_;
}

const std::vector<Digraph::Node>& Digraph::successors(Node n) const {
  check_node(n);
  return succ_[static_cast<std::size_t>(n)];
}

const std::vector<Digraph::Node>& Digraph::predecessors(Node n) const {
  check_node(n);
  return pred_[static_cast<std::size_t>(n)];
}

int Digraph::in_degree(Node n) const {
  check_node(n);
  return static_cast<int>(pred_[static_cast<std::size_t>(n)].size());
}

int Digraph::out_degree(Node n) const {
  check_node(n);
  return static_cast<int>(succ_[static_cast<std::size_t>(n)].size());
}

std::vector<Digraph::Node> Digraph::nodes() const {
  std::vector<Node> out;
  out.reserve(static_cast<std::size_t>(alive_node_count_));
  for (Node n = 0; n < node_capacity(); ++n)
    if (alive_[static_cast<std::size_t>(n)]) out.push_back(n);
  return out;
}

namespace {
enum class Color : unsigned char { kWhite, kGray, kBlack };
}  // namespace

bool Digraph::has_cycle() const { return find_cycle().has_value(); }

std::optional<std::vector<Digraph::Node>> Digraph::find_cycle() const {
  const int n = node_capacity();
  std::vector<Color> color(static_cast<std::size_t>(n), Color::kWhite);
  std::vector<Node> parent(static_cast<std::size_t>(n), -1);

  // Iterative DFS; on a gray->gray edge we walk parents to extract the cycle.
  struct Frame {
    Node node;
    std::size_t next_child;
  };
  for (Node start = 0; start < n; ++start) {
    if (!alive_[static_cast<std::size_t>(start)]) continue;
    if (color[static_cast<std::size_t>(start)] != Color::kWhite) continue;
    std::vector<Frame> stack;
    stack.push_back({start, 0});
    color[static_cast<std::size_t>(start)] = Color::kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& out = succ_[static_cast<std::size_t>(f.node)];
      if (f.next_child < out.size()) {
        Node child = out[f.next_child++];
        if (color[static_cast<std::size_t>(child)] == Color::kGray) {
          // Found a back edge f.node -> child; cycle is child..f.node.
          std::vector<Node> cycle;
          Node cur = f.node;
          cycle.push_back(cur);
          while (cur != child) {
            cur = parent[static_cast<std::size_t>(cur)];
            cycle.push_back(cur);
          }
          std::reverse(cycle.begin(), cycle.end());
          return cycle;
        }
        if (color[static_cast<std::size_t>(child)] == Color::kWhite) {
          color[static_cast<std::size_t>(child)] = Color::kGray;
          parent[static_cast<std::size_t>(child)] = f.node;
          stack.push_back({child, 0});
        }
      } else {
        color[static_cast<std::size_t>(f.node)] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

std::vector<Digraph::Node> Digraph::ancestors(Node v) const {
  check_node(v);
  std::vector<bool> seen(static_cast<std::size_t>(node_capacity()), false);
  std::vector<Node> stack{v};
  seen[static_cast<std::size_t>(v)] = true;
  std::vector<Node> out;
  while (!stack.empty()) {
    Node cur = stack.back();
    stack.pop_back();
    for (Node p : pred_[static_cast<std::size_t>(cur)]) {
      if (seen[static_cast<std::size_t>(p)]) continue;
      seen[static_cast<std::size_t>(p)] = true;
      out.push_back(p);
      stack.push_back(p);
    }
  }
  return out;
}

std::vector<std::vector<Digraph::Node>>
Digraph::strongly_connected_components() const {
  // Iterative Tarjan.
  const int n = node_capacity();
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<Node> tarjan_stack;
  std::vector<std::vector<Node>> components;
  int next_index = 0;

  struct Frame {
    Node node;
    std::size_t next_child;
  };

  for (Node start = 0; start < n; ++start) {
    if (!alive_[static_cast<std::size_t>(start)]) continue;
    if (index[static_cast<std::size_t>(start)] != -1) continue;
    std::vector<Frame> stack;
    stack.push_back({start, 0});
    index[static_cast<std::size_t>(start)] = next_index;
    lowlink[static_cast<std::size_t>(start)] = next_index;
    ++next_index;
    tarjan_stack.push_back(start);
    on_stack[static_cast<std::size_t>(start)] = true;

    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& out = succ_[static_cast<std::size_t>(f.node)];
      if (f.next_child < out.size()) {
        Node child = out[f.next_child++];
        if (index[static_cast<std::size_t>(child)] == -1) {
          index[static_cast<std::size_t>(child)] = next_index;
          lowlink[static_cast<std::size_t>(child)] = next_index;
          ++next_index;
          tarjan_stack.push_back(child);
          on_stack[static_cast<std::size_t>(child)] = true;
          stack.push_back({child, 0});
        } else if (on_stack[static_cast<std::size_t>(child)]) {
          lowlink[static_cast<std::size_t>(f.node)] =
              std::min(lowlink[static_cast<std::size_t>(f.node)],
                       index[static_cast<std::size_t>(child)]);
        }
      } else {
        Node done = f.node;
        stack.pop_back();
        if (!stack.empty()) {
          Node parent = stack.back().node;
          lowlink[static_cast<std::size_t>(parent)] =
              std::min(lowlink[static_cast<std::size_t>(parent)],
                       lowlink[static_cast<std::size_t>(done)]);
        }
        if (lowlink[static_cast<std::size_t>(done)] ==
            index[static_cast<std::size_t>(done)]) {
          std::vector<Node> comp;
          while (true) {
            Node w = tarjan_stack.back();
            tarjan_stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            comp.push_back(w);
            if (w == done) break;
          }
          components.push_back(std::move(comp));
        }
      }
    }
  }
  return components;
}

std::optional<std::vector<Digraph::Node>> Digraph::topological_order() const {
  if (has_cycle()) return std::nullopt;
  // Kahn's algorithm restricted to alive nodes.
  const int n = node_capacity();
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  std::vector<Node> ready;
  for (Node v = 0; v < n; ++v) {
    if (!alive_[static_cast<std::size_t>(v)]) continue;
    indeg[static_cast<std::size_t>(v)] =
        static_cast<int>(pred_[static_cast<std::size_t>(v)].size());
    if (indeg[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  }
  std::vector<Node> order;
  order.reserve(static_cast<std::size_t>(alive_node_count_));
  while (!ready.empty()) {
    Node v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (Node w : succ_[static_cast<std::size_t>(v)]) {
      if (--indeg[static_cast<std::size_t>(w)] == 0) ready.push_back(w);
    }
  }
  WOLF_CHECK(order.size() == static_cast<std::size_t>(alive_node_count_));
  return order;
}

std::string Digraph::to_dot(const std::vector<std::string>& labels) const {
  std::ostringstream os;
  os << "digraph G {\n";
  for (Node v : nodes()) {
    os << "  n" << v;
    if (static_cast<std::size_t>(v) < labels.size())
      os << " [label=\"" << labels[static_cast<std::size_t>(v)] << "\"]";
    os << ";\n";
  }
  for (Node v : nodes())
    for (Node w : succ_[static_cast<std::size_t>(v)])
      os << "  n" << v << " -> n" << w << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace wolf
