// Directed graph over dense integer node ids, with the operations the WOLF
// pipeline needs: dynamic edge/node removal (the Replayer retires vertices as
// dependencies are satisfied), cycle detection with witness extraction (the
// Generator classifies a potential deadlock as false iff its synchronization
// dependency graph is cyclic), SCC decomposition, topological sort and DOT
// export for debugging.
//
// Node ids are assigned densely by add_node(); removed nodes keep their id
// (ids are never reused) but drop out of iteration and adjacency.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace wolf {

class Digraph {
 public:
  using Node = int;

  Digraph() = default;
  explicit Digraph(int node_count);

  // Returns the id of a fresh node.
  Node add_node();
  int node_capacity() const { return static_cast<int>(alive_.size()); }
  int node_count() const { return alive_node_count_; }
  bool alive(Node n) const;

  // Adds a directed edge u -> v; parallel edges are coalesced. Self loops are
  // permitted (and count as cycles). Both endpoints must be alive.
  void add_edge(Node u, Node v);

  // Bulk-construction variant that skips the duplicate scan: the caller
  // either guarantees u -> v is fresh or accepts a parallel edge (every
  // traversal here — cycles, SCC, topo, ancestors — is parallel-edge
  // agnostic). Turns O(out-degree) inserts into O(1) when building large
  // graphs edge-at-a-time, e.g. the cycle engine's tuple digraph.
  void add_edge_fast(Node u, Node v);
  bool has_edge(Node u, Node v) const;
  void remove_edge(Node u, Node v);

  // Removes the node and every edge incident on it.
  void remove_node(Node n);

  std::size_t edge_count() const { return edge_count_; }

  const std::vector<Node>& successors(Node n) const;
  const std::vector<Node>& predecessors(Node n) const;
  int in_degree(Node n) const;
  int out_degree(Node n) const;

  // All currently alive nodes, ascending.
  std::vector<Node> nodes() const;

  // True iff the graph (restricted to alive nodes) contains a directed cycle.
  bool has_cycle() const;

  // Returns one directed cycle as a node sequence [v0, v1, ..., vk] with
  // edges v0->v1->...->vk->v0, or nullopt when acyclic.
  std::optional<std::vector<Node>> find_cycle() const;

  // Every node u (alive) with a directed path u -> ... -> v, excluding v
  // itself. Used by the Replayer's vertex-retirement rule.
  std::vector<Node> ancestors(Node v) const;

  // Strongly connected components (Tarjan); each component is a node list.
  // Components are returned in reverse topological order of the condensation.
  std::vector<std::vector<Node>> strongly_connected_components() const;

  // Topological order of alive nodes; nullopt when cyclic.
  std::optional<std::vector<Node>> topological_order() const;

  // GraphViz text; labeler may be empty (node ids used).
  std::string to_dot(
      const std::vector<std::string>& labels = {}) const;

 private:
  std::vector<std::vector<Node>> succ_;
  std::vector<std::vector<Node>> pred_;
  std::vector<bool> alive_;
  int alive_node_count_ = 0;
  std::size_t edge_count_ = 0;

  void check_node(Node n) const;
};

}  // namespace wolf
