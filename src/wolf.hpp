// wolf.hpp — the single public entry point to the WOLF library.
//
// Library users include this header instead of the seven per-stage ones and
// configure everything through wolf::Config: one struct with the shared
// scalars every stage reads (seed, jobs, deadline) plus the historical
// option structs nested as sections. validate() reports misconfigurations
// before a run burns time on them; the *_options() exploders produce the
// per-stage structs the pipeline entry points take, with the shared scalars
// folded in (a shared scalar always wins over the section field it shadows,
// so setting Config::jobs configures both enumeration and classification).
//
// Migration from the per-stage structs (kept, with deprecation notes, for
// one release — they remain the section types, so old field names work):
//
//   WolfOptions::seed            -> Config::seed
//   WolfOptions::jobs            -> Config::jobs
//   DetectorOptions::*           -> Config::detector.*
//   DetectorOptions::jobs        -> Config::jobs
//   ReplayOptions::*             -> Config::replay.*
//   ReplayOptions::retry.attempt_deadline_ms -> Config::deadline_ms
//   MultiRunOptions::runs        -> Config::runs
//   rt::ExecutorOptions::*       -> Config::executor.*
//   ReportWriterOptions::*       -> Config::report.*
//   DfOptions::*                 -> df_options() (derived from the above)
// Online analysis has exactly one public entry point: wolf::Session
// (declared below). The four historical online names — StreamingDetector,
// OnlineAnalysisSink, GovernedOnlineSink, detect_reader_governed — are
// deprecated shims over it and will be removed one release after this one
// (DESIGN.md §18).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baseline/df_pipeline.hpp"
#include "core/metrics.hpp"
#include "core/multi.hpp"
#include "core/pipeline.hpp"
#include "core/report_writer.hpp"
#include "rt/executor.hpp"

namespace wolf {

// One finding from Config::validate(). Fatal issues make the configuration
// unusable (an exploded run would crash or silently do nothing); non-fatal
// ones flag conflicting settings where one silently wins (e.g. the
// reference engine ignoring enumeration jobs).
struct ConfigIssue {
  bool fatal = false;
  std::string message;
};

struct Config {
  // ---- shared scalars, read by every stage ------------------------------
  std::uint64_t seed = 2014;
  // Parallelism of enumeration and classification: 0 = hardware
  // concurrency, 1 = the serial pipeline. Reports are identical at every
  // level. Overrides detector.jobs and the per-run jobs split.
  int jobs = 0;
  // Per-trial wall-clock budget in ms (0 = unlimited). Arms the rt watchdog
  // and the recording retry deadline. Overrides replay.retry and
  // executor.deadline_ms.
  std::int64_t deadline_ms = 0;

  // ---- stage sections (the historical option structs) -------------------
  DetectorOptions detector;
  ReplayOptions replay;
  rt::ExecutorOptions executor;
  ReportWriterOptions report;

  // ---- pipeline scalars (historical WolfOptions fields) -----------------
  int record_attempts = 20;
  std::uint64_t max_steps = 2'000'000;
  bool enable_pruner = true;
  bool enable_generator_check = true;
  const robust::FaultPlan* fault = nullptr;  // not owned

  // ---- multi-run section ------------------------------------------------
  int runs = 5;

  // ---- resource governance (core/governor.hpp) --------------------------
  // Tuple-store budget for governed streaming analysis, in MiB (0 =
  // unbounded). Setting this or window_deadline_ms switches `wolf analyze`
  // onto the governed path.
  std::size_t memory_budget_mb = 0;
  // Events per detection window of the governed path.
  std::size_t window_events = 65536;
  // Per-window detection deadline in ms (0 = no deadline; the degradation
  // ladder never demotes).
  std::int64_t window_deadline_ms = 0;
  // Incremental SCC maintenance for the governed path (DESIGN.md §16):
  // windows enumerate only dirty-SCC tuple subsets. false = the historical
  // recompute-per-suspicious-window path (differential reference).
  bool incremental_scc = true;
  // Depth, in blocks, of the governed decode→ingest ring (DESIGN.md §17)
  // when jobs > 1 pipelines ingestion: the backpressure bound on how far
  // decode may run ahead of detection. 0 = auto (derived from jobs). Values
  // below 2 cannot overlap anything and are rejected by validate().
  std::size_t pipeline_depth = 0;
  // Live cycle surfacing: called once per first-sighted cycle at window
  // granularity (`wolf analyze --live`). Setting it switches analysis onto
  // the governed path; it never changes the final result.
  CycleSubscriber on_cycle;
  // Pull-mode live surfacing: Session::poll() returns the cycles first
  // sighted since the last poll. Like on_cycle (the two compose), setting
  // it switches Session::open onto the governed path and never changes what
  // finish() returns. The serve sidecar runs sessions with live = true.
  bool live = false;

  bool governed() const {
    return memory_budget_mb != 0 || window_deadline_ms != 0 || live ||
           static_cast<bool>(on_cycle);
  }

  // Checks the configuration for fatal errors and conflicting settings.
  // Empty result = clean. Callers decide how to surface non-fatal issues.
  std::vector<ConfigIssue> validate() const;
  bool fatal() const {
    for (const ConfigIssue& issue : validate())
      if (issue.fatal) return true;
    return false;
  }

  // Exploders: per-stage option structs with the shared scalars folded in.
  WolfOptions wolf_options() const;
  MultiRunOptions multi_options() const;
  baseline::DfOptions df_options() const;
  rt::ExecutorOptions executor_options() const;
  GovernorOptions governor_options() const;
};

// One cycle surfaced between two Session::poll() calls — an owned copy of a
// LiveCycle delivery (safe to keep; nothing borrows detection state).
struct SessionCycle {
  std::size_t window = 0;    // WindowReport::index that surfaced it
  std::size_t sequence = 0;  // 1-based first-sighting sequence number
  std::string description;   // PotentialDeadlock::to_string rendering
};

// The one online-analysis entry point: open → feed → poll → finish.
//
// Session unifies the four historical online surfaces (StreamingDetector,
// OnlineAnalysisSink, GovernedOnlineSink, detect_reader_governed — all now
// deprecated shims over it) behind a single lifecycle the CLI, the serve
// sidecar, the pipeline, and the tests all share:
//
//   Session s = Session::open(config);          // throws on fatal config
//   while (reader.next_block(block)) {
//     s.feed(block);
//     for (const SessionCycle& c : s.poll()) ...;  // live cycles, if any
//   }
//   Session::Verdict v = s.finish();            // authoritative, final
//
// open() dispatches on Config::governed(): a governed config gets the full
// windowed/budgeted/laddered machinery of core/governor.hpp; an ungoverned
// one gets the unbounded batch-equivalent StreamingDetector. Both modes
// share the containment contract an always-on service needs: a malformed
// event *poisons* the session (feed returns false, ingestion stops, the
// verdict is honestly incomplete) instead of propagating out of feed, and
// governed finish() never throws. Results are byte-identical to the
// historical entry points at every jobs level.
//
// A Session is single-owner state, not a thread-safe object: feed, poll and
// finish must be externally serialized (the serve sidecar gives each
// session its own thread; internal enumeration parallelism via jobs is the
// session's own business).
class Session {
 public:
  // Everything finish() knows, in one struct. `detection` is authoritative;
  // `governor.coverage_complete` is the honesty bit (true iff the detection
  // provably equals batch analysis of the same event stream — ungoverned
  // sessions set it false only when poisoned). `windows` and `pipeline` are
  // empty/unused for ungoverned sessions.
  struct Verdict {
    Detection detection;
    std::vector<WindowReport> windows;
    GovernorVerdict governor;
    GovernedPipelineStats pipeline;
    bool governed = false;
  };

  // Builds a session from a validated Config (throws std::invalid_argument
  // listing the fatal issues otherwise) and dispatches on
  // Config::governed(). Live cycles are collected for poll() iff
  // config.live; Config::on_cycle still fires push-mode either way.
  static Session open(const Config& config);
  // Mode-explicit constructors for callers holding per-stage structs (the
  // deprecated shims route through these so results stay byte-identical).
  static Session open_streaming(const DetectorOptions& detector, int jobs = 1,
                                std::size_t pipeline_depth = 0);
  static Session open_governed(const GovernorOptions& options,
                               bool collect_live = false);

  Session(Session&& other) noexcept;
  Session& operator=(Session&& other) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session();

  // Ingestion. Returns true while the session is healthy; false once it is
  // poisoned (a malformed event fired a builder invariant) — from then on
  // events are discarded and finish() reports an incomplete verdict over
  // the consistent prefix. Never throws on bad input.
  bool feed(const Event& e);
  bool feed(const std::vector<Event>& events);

  // Drains a TraceReader through feed(). With jobs > 1 the blocks are
  // decoded on a producer thread behind the bounded ring
  // (trace/PipelinedTraceReader) — the per-client backpressure that keeps
  // memory flat no matter how far a fast producer runs ahead; stats land in
  // Verdict::pipeline. Event delivery is order- and content-identical to a
  // serial drain. Keeps draining after poisoning (the reader is left at
  // end-of-stream either way, so stream diagnostics stay meaningful).
  void ingest(TraceReader& reader);

  // Cycles first sighted since the last poll(), in surfacing order. Always
  // empty unless the session was opened with live collection (Config::live
  // or collect_live). Cheap when empty.
  std::vector<SessionCycle> poll();

  // Observation (valid any time).
  bool governed() const;
  bool poisoned() const;
  std::size_t events_seen() const;
  std::size_t windows_closed() const;
  DetectionLevel level() const;
  std::size_t cycles_surfaced_live() const;

  // Closes the trailing window, runs the authoritative enumeration and
  // returns everything. Final: feed() after finish() is an error (asserts
  // in debug builds, no-op otherwise). Governed sessions never throw from
  // finish (a detection fault yields an honest incomplete verdict);
  // ungoverned sessions preserve StreamingDetector::finish semantics and
  // let a detection fault propagate.
  Verdict finish();

 private:
  Session();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Facade entry points — the pipeline functions, taking Config directly.
inline WolfReport run(const sim::Program& program, const Config& config) {
  return run_wolf(program, config.wolf_options());
}
inline WolfReport analyze(const sim::Program& program, const Trace& trace,
                          const Config& config) {
  return analyze_trace(program, trace, config.wolf_options());
}
inline MultiRunReport run_multi(const sim::Program& program,
                                const Config& config) {
  return run_wolf_multi(program, config.multi_options());
}
inline baseline::DfReport run_baseline(const sim::Program& program,
                                       const Config& config) {
  return baseline::run_deadlock_fuzzer(program, config.df_options());
}

}  // namespace wolf
