// wolf.hpp — the single public entry point to the WOLF library.
//
// Library users include this header instead of the seven per-stage ones and
// configure everything through wolf::Config: one struct with the shared
// scalars every stage reads (seed, jobs, deadline) plus the historical
// option structs nested as sections. validate() reports misconfigurations
// before a run burns time on them; the *_options() exploders produce the
// per-stage structs the pipeline entry points take, with the shared scalars
// folded in (a shared scalar always wins over the section field it shadows,
// so setting Config::jobs configures both enumeration and classification).
//
// Migration from the per-stage structs (kept, with deprecation notes, for
// one release — they remain the section types, so old field names work):
//
//   WolfOptions::seed            -> Config::seed
//   WolfOptions::jobs            -> Config::jobs
//   DetectorOptions::*           -> Config::detector.*
//   DetectorOptions::jobs        -> Config::jobs
//   ReplayOptions::*             -> Config::replay.*
//   ReplayOptions::retry.attempt_deadline_ms -> Config::deadline_ms
//   MultiRunOptions::runs        -> Config::runs
//   rt::ExecutorOptions::*       -> Config::executor.*
//   ReportWriterOptions::*       -> Config::report.*
//   DfOptions::*                 -> df_options() (derived from the above)
#pragma once

#include <string>
#include <vector>

#include "baseline/df_pipeline.hpp"
#include "core/metrics.hpp"
#include "core/multi.hpp"
#include "core/pipeline.hpp"
#include "core/report_writer.hpp"
#include "rt/executor.hpp"

namespace wolf {

// One finding from Config::validate(). Fatal issues make the configuration
// unusable (an exploded run would crash or silently do nothing); non-fatal
// ones flag conflicting settings where one silently wins (e.g. the
// reference engine ignoring enumeration jobs).
struct ConfigIssue {
  bool fatal = false;
  std::string message;
};

struct Config {
  // ---- shared scalars, read by every stage ------------------------------
  std::uint64_t seed = 2014;
  // Parallelism of enumeration and classification: 0 = hardware
  // concurrency, 1 = the serial pipeline. Reports are identical at every
  // level. Overrides detector.jobs and the per-run jobs split.
  int jobs = 0;
  // Per-trial wall-clock budget in ms (0 = unlimited). Arms the rt watchdog
  // and the recording retry deadline. Overrides replay.retry and
  // executor.deadline_ms.
  std::int64_t deadline_ms = 0;

  // ---- stage sections (the historical option structs) -------------------
  DetectorOptions detector;
  ReplayOptions replay;
  rt::ExecutorOptions executor;
  ReportWriterOptions report;

  // ---- pipeline scalars (historical WolfOptions fields) -----------------
  int record_attempts = 20;
  std::uint64_t max_steps = 2'000'000;
  bool enable_pruner = true;
  bool enable_generator_check = true;
  const robust::FaultPlan* fault = nullptr;  // not owned

  // ---- multi-run section ------------------------------------------------
  int runs = 5;

  // ---- resource governance (core/governor.hpp) --------------------------
  // Tuple-store budget for governed streaming analysis, in MiB (0 =
  // unbounded). Setting this or window_deadline_ms switches `wolf analyze`
  // onto the governed path.
  std::size_t memory_budget_mb = 0;
  // Events per detection window of the governed path.
  std::size_t window_events = 65536;
  // Per-window detection deadline in ms (0 = no deadline; the degradation
  // ladder never demotes).
  std::int64_t window_deadline_ms = 0;
  // Incremental SCC maintenance for the governed path (DESIGN.md §16):
  // windows enumerate only dirty-SCC tuple subsets. false = the historical
  // recompute-per-suspicious-window path (differential reference).
  bool incremental_scc = true;
  // Depth, in blocks, of the governed decode→ingest ring (DESIGN.md §17)
  // when jobs > 1 pipelines ingestion: the backpressure bound on how far
  // decode may run ahead of detection. 0 = auto (derived from jobs). Values
  // below 2 cannot overlap anything and are rejected by validate().
  std::size_t pipeline_depth = 0;
  // Live cycle surfacing: called once per first-sighted cycle at window
  // granularity (`wolf analyze --live`). Setting it switches analysis onto
  // the governed path; it never changes the final result.
  CycleSubscriber on_cycle;

  bool governed() const {
    return memory_budget_mb != 0 || window_deadline_ms != 0 ||
           static_cast<bool>(on_cycle);
  }

  // Checks the configuration for fatal errors and conflicting settings.
  // Empty result = clean. Callers decide how to surface non-fatal issues.
  std::vector<ConfigIssue> validate() const;
  bool fatal() const {
    for (const ConfigIssue& issue : validate())
      if (issue.fatal) return true;
    return false;
  }

  // Exploders: per-stage option structs with the shared scalars folded in.
  WolfOptions wolf_options() const;
  MultiRunOptions multi_options() const;
  baseline::DfOptions df_options() const;
  rt::ExecutorOptions executor_options() const;
  GovernorOptions governor_options() const;
};

// Facade entry points — the pipeline functions, taking Config directly.
inline WolfReport run(const sim::Program& program, const Config& config) {
  return run_wolf(program, config.wolf_options());
}
inline WolfReport analyze(const sim::Program& program, const Trace& trace,
                          const Config& config) {
  return analyze_trace(program, trace, config.wolf_options());
}
inline MultiRunReport run_multi(const sim::Program& program,
                                const Config& config) {
  return run_wolf_multi(program, config.multi_options());
}
inline baseline::DfReport run_baseline(const sim::Program& program,
                                       const Config& config) {
  return baseline::run_deadlock_fuzzer(program, config.df_options());
}

}  // namespace wolf
