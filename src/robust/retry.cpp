#include "robust/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace wolf::robust {

std::int64_t backoff_before_attempt(const RetryPolicy& policy, int attempt,
                                    Rng& rng) {
  if (attempt <= 0 || policy.initial_backoff_ms <= 0) return 0;
  double b = static_cast<double>(policy.initial_backoff_ms) *
             std::pow(std::max(policy.backoff_multiplier, 1.0),
                      static_cast<double>(attempt - 1));
  b = std::min(b, static_cast<double>(policy.max_backoff_ms));
  if (policy.jitter > 0) b *= 1.0 + policy.jitter * (rng.uniform() * 2.0 - 1.0);
  b = std::clamp(b, 0.0, static_cast<double>(policy.max_backoff_ms));
  return static_cast<std::int64_t>(b);
}

RetryState::RetryState(const RetryPolicy& policy, std::uint64_t seed)
    : policy_(policy), rng_(mix64(seed ^ 0x7e7251f5a11ULL)) {}

bool RetryState::next_attempt() {
  ++attempt_;
  if (attempt_ >= policy_.max_attempts) return false;
  const std::int64_t sleep_ms = backoff_before_attempt(policy_, attempt_, rng_);
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    slept_ms_ += sleep_ms;
  }
  return true;
}

}  // namespace wolf::robust
