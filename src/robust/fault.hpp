// Fault injection for the execution substrates and the analysis pipeline.
//
// Robustness machinery is only trustworthy when its degradation paths are
// exercised. FaultPlan describes deliberate faults that the sim scheduler,
// the rt executor and the pipeline honor when a plan is plugged into their
// options:
//
//   * thread delays — thread `thread` stalls before its op at pc `at_op`:
//     `wall_ms` of abort-interruptible wall-clock stall on the rt substrate
//     (re-applied on every visit of the pc), `steps` scheduler steps consumed
//     without progress on the sim substrate (a one-shot budget);
//   * dropped force-releases — the Algorithm-4 "nothing runnable, release a
//     paused thread" escape hatch is swallowed, so a steered run wedges; the
//     rt watchdog (ExecutorOptions::deadline_ms) or the sim fault-stall rule
//     then ends the trial with RunOutcome::kTimeout;
//   * throwing classification — analyze()/classify_cycle() throws while
//     classifying the given cycle index, exercising per-cycle isolation;
//   * trace corruption — corrupt_trace_text() truncates and/or garbles
//     serialized trace text, exercising the salvaging reader.
//
// Used by tests and the CLI's --fault flag to prove the watchdog, retry,
// salvage and isolation paths actually engage.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/ids.hpp"

namespace wolf::robust {

struct FaultPlan {
  struct Delay {
    ThreadId thread = kInvalidThread;
    int at_op = 0;             // pc within the thread's op list
    std::int64_t wall_ms = 0;  // rt executor stall (abort-interruptible)
    int steps = 0;             // sim scheduler steps consumed without progress
  };
  std::vector<Delay> delays;

  // Swallow force-releases (Algorithm 4 lines 5–7). Only a watchdog deadline
  // (rt) or the scheduler's fault-stall rule (sim) can then end a wedged run.
  bool drop_force_releases = false;

  // analyze()/classify_cycle() throws while classifying this cycle index.
  int classify_throw_cycle = -1;

  // The governed detector throws while running this window's detection
  // (< 0 disables) — exercises per-window fault containment
  // (core/governor.hpp).
  int detect_throw_window = -1;

  // corrupt_trace_text(): keep only this fraction of the serialized
  // characters (< 0 disables; mid-line cuts model a crashed recorder).
  double truncate_fraction = -1.0;
  // corrupt_trace_text(): overwrite this 0-based line with garbage
  // (< 0 disables).
  int garble_line = -1;

  // corrupt_trace_bytes(): torn write — keep only the first N bytes of the
  // serialized output (< 0 disables). Unlike truncate_fraction this is an
  // absolute byte offset, so tests can place the tear anywhere, including
  // mid-record in a binary v3 block. Also the kill point of
  // support::atomic_write_file: a tear during a governed `wolf record`
  // aborts before the rename, leaving any previous file intact.
  std::int64_t io_tear_after = -1;
  // corrupt_trace_bytes(): flip one bit in each of N pseudo-randomly chosen
  // bytes (0 disables) — the fault the v3 per-block checksums exist to
  // catch.
  int bitflip_count = 0;

  const Delay* find_delay(ThreadId thread, int pc) const;
  bool corrupts_trace() const {
    return truncate_fraction >= 0.0 || garble_line >= 0 ||
           io_tear_after >= 0 || bitflip_count > 0;
  }
  // True when any clause targets execution (as opposed to trace bytes or
  // the analysis pipeline) — Config::validate() warns when these are set
  // without a retry budget to absorb them.
  bool faults_execution() const {
    return !delays.empty() || drop_force_releases;
  }
};

// Parses a CLI fault spec: ';'-separated clauses of
//   delay:t=<tid>,op=<pc>,ms=<wall_ms>,steps=<steps>   (ms/steps optional)
//   drop-releases
//   classify-throw=<cycle>
//   detect-throw-window=<window>
//   truncate=<fraction>
//   garble=<line>
//   tear=<bytes>
//   bitflip=<count>
// e.g. "delay:t=1,op=0,ms=5000;drop-releases". Returns nullopt and fills
// *error on a malformed spec.
std::optional<FaultPlan> parse_fault_plan(const std::string& spec,
                                          std::string* error = nullptr);

// Applies the plan's trace corruptions (garble first, then truncation) to
// serialized trace text.
std::string corrupt_trace_text(std::string text, const FaultPlan& plan);

// Byte-level trace corruption, format-agnostic (works on binary v3 as well
// as text): bit flips first (at positions derived deterministically from
// `seed`), then the torn write. text-level clauses (garble/truncate) are
// NOT applied here — callers on a text format compose both.
std::string corrupt_trace_bytes(std::string bytes, const FaultPlan& plan,
                                std::uint64_t seed = 0);

}  // namespace wolf::robust
