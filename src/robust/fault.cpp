#include "robust/fault.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/rng.hpp"
#include "support/str.hpp"

namespace wolf::robust {

namespace {

void fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

bool parse_double(std::string_view s, double& out) {
  const std::string text(s);
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != text.c_str() && *end == '\0';
}

bool parse_delay_clause(std::string_view body, FaultPlan::Delay& delay,
                        std::string* error) {
  bool have_thread = false;
  for (const std::string& field : split(body, ',')) {
    auto kv = split(trim(field), '=');
    long long value = 0;
    if (kv.size() != 2 || !parse_int(trim(kv[1]), value)) {
      fail(error, "malformed delay field '" + field + "'");
      return false;
    }
    const auto key = trim(kv[0]);
    if (key == "t") {
      delay.thread = static_cast<ThreadId>(value);
      have_thread = true;
    } else if (key == "op") {
      delay.at_op = static_cast<int>(value);
    } else if (key == "ms") {
      delay.wall_ms = value;
    } else if (key == "steps") {
      delay.steps = static_cast<int>(value);
    } else {
      fail(error, "unknown delay field '" + std::string(key) + "'");
      return false;
    }
  }
  if (!have_thread) {
    fail(error, "delay clause needs t=<thread>");
    return false;
  }
  return true;
}

}  // namespace

const FaultPlan::Delay* FaultPlan::find_delay(ThreadId thread, int pc) const {
  for (const Delay& d : delays)
    if (d.thread == thread && d.at_op == pc) return &d;
  return nullptr;
}

std::optional<FaultPlan> parse_fault_plan(const std::string& spec,
                                          std::string* error) {
  FaultPlan plan;
  for (const std::string& raw : split(spec, ';')) {
    const auto clause = trim(raw);
    if (clause.empty()) continue;
    if (starts_with(clause, "delay:")) {
      FaultPlan::Delay delay;
      if (!parse_delay_clause(clause.substr(6), delay, error))
        return std::nullopt;
      plan.delays.push_back(delay);
    } else if (clause == "drop-releases") {
      plan.drop_force_releases = true;
    } else if (starts_with(clause, "classify-throw=")) {
      long long cycle = 0;
      if (!parse_int(clause.substr(15), cycle)) {
        fail(error, "malformed clause '" + std::string(clause) + "'");
        return std::nullopt;
      }
      plan.classify_throw_cycle = static_cast<int>(cycle);
    } else if (starts_with(clause, "detect-throw-window=")) {
      long long window = 0;
      if (!parse_int(clause.substr(20), window) || window < 0) {
        fail(error, "malformed clause '" + std::string(clause) + "'");
        return std::nullopt;
      }
      plan.detect_throw_window = static_cast<int>(window);
    } else if (starts_with(clause, "truncate=")) {
      double fraction = 0;
      if (!parse_double(clause.substr(9), fraction) || fraction < 0 ||
          fraction > 1) {
        fail(error, "malformed clause '" + std::string(clause) + "'");
        return std::nullopt;
      }
      plan.truncate_fraction = fraction;
    } else if (starts_with(clause, "garble=")) {
      long long line = 0;
      if (!parse_int(clause.substr(7), line) || line < 0) {
        fail(error, "malformed clause '" + std::string(clause) + "'");
        return std::nullopt;
      }
      plan.garble_line = static_cast<int>(line);
    } else if (starts_with(clause, "tear=")) {
      long long bytes = 0;
      if (!parse_int(clause.substr(5), bytes) || bytes < 0) {
        fail(error, "malformed clause '" + std::string(clause) + "'");
        return std::nullopt;
      }
      plan.io_tear_after = bytes;
    } else if (starts_with(clause, "bitflip=")) {
      long long count = 0;
      if (!parse_int(clause.substr(8), count) || count < 0) {
        fail(error, "malformed clause '" + std::string(clause) + "'");
        return std::nullopt;
      }
      plan.bitflip_count = static_cast<int>(count);
    } else {
      fail(error, "unknown fault clause '" + std::string(clause) + "'");
      return std::nullopt;
    }
  }
  return plan;
}

std::string corrupt_trace_text(std::string text, const FaultPlan& plan) {
  if (plan.garble_line >= 0) {
    std::vector<std::string> lines = split(text, '\n');
    if (static_cast<std::size_t>(plan.garble_line) < lines.size()) {
      lines[static_cast<std::size_t>(plan.garble_line)] =
          "@@ corrupted by fault injection @@";
      text = join(lines, "\n");
    }
  }
  if (plan.truncate_fraction >= 0.0 && plan.truncate_fraction < 1.0) {
    text.resize(static_cast<std::size_t>(
        static_cast<double>(text.size()) *
        std::clamp(plan.truncate_fraction, 0.0, 1.0)));
  }
  return text;
}

std::string corrupt_trace_bytes(std::string bytes, const FaultPlan& plan,
                                std::uint64_t seed) {
  if (plan.bitflip_count > 0 && !bytes.empty()) {
    std::uint64_t h = mix64(seed ^ 0xb17f11bb17f11bULL);
    for (int i = 0; i < plan.bitflip_count; ++i) {
      h = mix64(h + static_cast<std::uint64_t>(i));
      const std::size_t pos = static_cast<std::size_t>(h % bytes.size());
      const int bit = static_cast<int>((h >> 32) % 8);
      bytes[pos] = static_cast<char>(
          static_cast<unsigned char>(bytes[pos]) ^ (1u << bit));
    }
  }
  if (plan.io_tear_after >= 0 &&
      static_cast<std::size_t>(plan.io_tear_after) < bytes.size()) {
    bytes.resize(static_cast<std::size_t>(plan.io_tear_after));
  }
  return bytes;
}

}  // namespace wolf::robust
