// Reusable retry/backoff policy for trial-based phases.
//
// WOLF's offline pipeline is built out of repeated trials: recording runs
// that must complete without deadlocking, replay trials that may or may not
// hit, fuzzer series. A production-scale harness needs those loops to share
// one notion of "how many attempts, how spaced, and how long each attempt
// may take" instead of three ad-hoc counters. RetryPolicy captures that;
// RetryState drives a loop:
//
//   robust::RetryState state(policy, seed);
//   while (state.next_attempt()) {
//     if (try_once(state.attempt())) break;
//   }
//
// Backoff grows exponentially with optional jitter and is slept between
// attempts; with the default zero initial backoff the loop never sleeps, so
// virtual-time callers (the sim scheduler) pay nothing. The per-attempt
// deadline is consumed by substrates that support wall-clock budgets (the rt
// executor's watchdog, rt/executor.hpp).
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace wolf::robust {

struct RetryPolicy {
  int max_attempts = 20;
  // Sleep between attempts: initial_backoff_ms before the second attempt,
  // growing by backoff_multiplier for each further attempt, clamped to
  // max_backoff_ms. 0 disables sleeping entirely.
  std::int64_t initial_backoff_ms = 0;
  double backoff_multiplier = 2.0;
  std::int64_t max_backoff_ms = 1000;
  // Fraction of the backoff randomized: the sleep is drawn uniformly from
  // [b*(1-jitter), b*(1+jitter)], then clamped to [0, max_backoff_ms].
  double jitter = 0.0;
  // Wall-clock budget per attempt; 0 = unlimited.
  std::int64_t attempt_deadline_ms = 0;
};

// The sleep before `attempt` (0-based; attempt 0 never sleeps), jittered by
// `rng`. Pure apart from the rng draw — exposed so tests can pin the
// schedule without sleeping.
std::int64_t backoff_before_attempt(const RetryPolicy& policy, int attempt,
                                    Rng& rng);

class RetryState {
 public:
  RetryState(const RetryPolicy& policy, std::uint64_t seed);

  // Starts the next attempt, sleeping the backoff first; returns false once
  // max_attempts have started.
  bool next_attempt();

  int attempt() const { return attempt_; }  // 0-based; -1 before the first
  const RetryPolicy& policy() const { return policy_; }
  std::int64_t total_backoff_ms() const { return slept_ms_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  int attempt_ = -1;
  std::int64_t slept_ms_ = 0;
};

}  // namespace wolf::robust
