#include "explore/explorer.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "sim/scheduler.hpp"

namespace wolf::explore {

namespace {

std::vector<SiteId> cycle_signature(const sim::RunResult& result) {
  std::vector<SiteId> sig;
  sig.reserve(result.deadlock_cycle.size());
  for (const sim::BlockedAt& b : result.deadlock_cycle)
    sig.push_back(b.index.site);
  std::sort(sig.begin(), sig.end());
  return sig;
}

}  // namespace

ExploreResult explore(const sim::Program& program,
                      const ExploreOptions& options) {
  ExploreResult result;
  std::unordered_set<std::uint64_t> visited;

  sim::SchedulerOptions sched_options;
  sched_options.max_steps = ~0ULL;  // depth is bounded by state memoization

  std::vector<sim::Scheduler> stack;
  stack.emplace_back(program, sched_options);
  visited.insert(stack.back().state_hash());
  result.states = 1;

  bool budget_hit = false;
  while (!stack.empty()) {
    sim::Scheduler state = std::move(stack.back());
    stack.pop_back();

    if (state.deadlock_diagnosed()) {
      ++result.deadlock_states;
      result.deadlock_signatures.insert(cycle_signature(state.result()));
      continue;
    }
    if (state.all_terminated()) {
      ++result.completed_states;
      continue;
    }
    const std::vector<ThreadId> enabled = state.enabled_threads();
    if (enabled.empty()) {
      // Stall (start/join wait with nothing runnable): terminal, counts as a
      // deadlock state with an empty lock signature.
      ++result.deadlock_states;
      result.deadlock_signatures.insert({});
      continue;
    }
    for (ThreadId t : enabled) {
      if (result.states >= options.max_states) {
        budget_hit = true;
        break;
      }
      sim::Scheduler child = state;  // fork
      child.step(t);
      ++result.transitions;
      if (visited.insert(child.state_hash()).second) {
        ++result.states;
        stack.push_back(std::move(child));
      }
    }
    if (budget_hit) break;
  }
  result.exhausted = !budget_hit;
  return result;
}

}  // namespace wolf::explore
