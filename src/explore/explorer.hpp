// Bounded systematic schedule exploration (CHESS-style, without context
// bounding) over the sim substrate.
//
// Enumerates every reachable scheduler state of a program by DFS over the
// "which enabled thread steps next" choice, deduplicating states by
// structural fingerprint. For small programs this *exhausts* the schedule
// space, which lets the test suite verify WOLF's soundness claims:
//
//   * a cycle the Pruner rules out is never reachable as an actual deadlock
//     in any schedule;
//   * a cycle whose Gs is cyclic (Generator false positive) never deadlocks
//     at those source locations in any schedule (paper §2, Fig. 2/θ4);
//   * conversely, deadlocks the Replayer reproduces are reachable.
//
// Controllers are not supported (the memoized fingerprint ignores controller
// state); sinks are not used.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "sim/program.hpp"
#include "trace/ids.hpp"

namespace wolf::explore {

struct ExploreOptions {
  // State budget; exploration stops (exhausted=false) once exceeded.
  std::uint64_t max_states = 1'000'000;
};

struct ExploreResult {
  bool exhausted = false;          // full schedule space covered
  std::uint64_t states = 0;        // distinct states visited
  std::uint64_t transitions = 0;   // steps executed
  std::uint64_t deadlock_states = 0;
  std::uint64_t completed_states = 0;
  // Sorted source-site multisets of every distinct lock wait-for cycle
  // diagnosed anywhere in the schedule space.
  std::set<std::vector<SiteId>> deadlock_signatures;

  bool deadlock_reachable_at(const std::vector<SiteId>& signature) const {
    return deadlock_signatures.count(signature) != 0;
  }
};

ExploreResult explore(const sim::Program& program,
                      const ExploreOptions& options = {});

}  // namespace wolf::explore
