#include "rt/replay_rt.hpp"

#include <set>

#include "rt/executor.hpp"

namespace wolf::rt {

namespace {

ReplayStats run_series(const ReplayOptions& options,
                       const std::function<ReplayTrial(std::uint64_t)>& once) {
  ReplayStats stats;
  Rng seeds(options.seed);
  for (int i = 0; i < options.attempts; ++i) {
    ReplayTrial trial = once(seeds());
    ++stats.attempts;
    switch (trial.outcome) {
      case ReplayOutcome::kReproduced:
        ++stats.hits;
        break;
      case ReplayOutcome::kOtherDeadlock:
        ++stats.other_deadlocks;
        break;
      case ReplayOutcome::kNoDeadlock:
        ++stats.no_deadlocks;
        break;
      case ReplayOutcome::kStepLimit:
        ++stats.step_limits;
        break;
    }
    if (stats.hits > 0 && options.stop_on_first_hit) break;
  }
  return stats;
}

}  // namespace

ReplayTrial replay_once_rt(const sim::Program& program,
                           const PotentialDeadlock& cycle,
                           const LockDependency& dep,
                           const SyncDependencyGraph& gs, std::uint64_t seed) {
  std::set<ThreadId> monitored;
  for (std::size_t i : cycle.tuple_idx)
    monitored.insert(dep.tuples[i].thread);
  ReplayController controller(gs, std::move(monitored));

  ExecutorOptions options;
  options.controller = &controller;
  options.seed = seed;

  ReplayTrial trial;
  trial.run = execute(program, options);
  trial.outcome = classify_run(trial.run, expected_sites(cycle, dep));
  return trial;
}

ReplayTrial fuzz_once_rt(const sim::Program& program,
                         const PotentialDeadlock& cycle,
                         const LockDependency& dep, std::uint64_t seed) {
  baseline::DeadlockFuzzerController controller(
      program, baseline::df_targets(program, cycle, dep));

  ExecutorOptions options;
  options.controller = &controller;
  options.seed = seed;

  ReplayTrial trial;
  trial.run = execute(program, options);
  trial.outcome = classify_run(trial.run, expected_sites(cycle, dep));
  return trial;
}

ReplayStats replay_rt(const sim::Program& program,
                      const PotentialDeadlock& cycle,
                      const LockDependency& dep,
                      const SyncDependencyGraph& gs,
                      const ReplayOptions& options) {
  return run_series(options, [&](std::uint64_t seed) {
    return replay_once_rt(program, cycle, dep, gs, seed);
  });
}

ReplayStats fuzz_rt(const sim::Program& program, const PotentialDeadlock& cycle,
                    const LockDependency& dep, const ReplayOptions& options) {
  return run_series(options, [&](std::uint64_t seed) {
    return fuzz_once_rt(program, cycle, dep, seed);
  });
}

}  // namespace wolf::rt
