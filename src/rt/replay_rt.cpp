#include "rt/replay_rt.hpp"

#include <set>

#include "rt/executor.hpp"

namespace wolf::rt {

namespace {

ReplayStats run_series(const ReplayOptions& options,
                       const std::function<ReplayTrial(std::uint64_t)>& once) {
  ReplayStats stats;
  Rng seeds(options.seed);
  robust::RetryPolicy policy = options.retry;
  policy.max_attempts = options.attempts;
  robust::RetryState attempts(policy, options.seed);
  while (attempts.next_attempt()) {
    ReplayTrial trial = once(seeds());
    record_outcome(stats, trial.outcome);
    if (stats.hits > 0 && options.stop_on_first_hit) break;
  }
  return stats;
}

}  // namespace

ReplayTrial replay_once_rt(const sim::Program& program,
                           const PotentialDeadlock& cycle,
                           const LockDependency& dep,
                           const SyncDependencyGraph& gs, std::uint64_t seed,
                           std::int64_t deadline_ms,
                           const robust::FaultPlan* fault) {
  std::set<ThreadId> monitored;
  for (std::size_t i : cycle.tuple_idx)
    monitored.insert(dep.tuples[i].thread);
  ReplayController controller(gs, std::move(monitored));

  ExecutorOptions options;
  options.controller = &controller;
  options.seed = seed;
  options.deadline_ms = deadline_ms;
  options.fault = fault;

  ReplayTrial trial;
  trial.run = execute(program, options);
  trial.outcome = classify_run(trial.run, expected_sites(cycle, dep));
  return trial;
}

ReplayTrial fuzz_once_rt(const sim::Program& program,
                         const PotentialDeadlock& cycle,
                         const LockDependency& dep, std::uint64_t seed,
                         std::int64_t deadline_ms,
                         const robust::FaultPlan* fault) {
  baseline::DeadlockFuzzerController controller(
      program, baseline::df_targets(program, cycle, dep));

  ExecutorOptions options;
  options.controller = &controller;
  options.seed = seed;
  options.deadline_ms = deadline_ms;
  options.fault = fault;

  ReplayTrial trial;
  trial.run = execute(program, options);
  trial.outcome = classify_run(trial.run, expected_sites(cycle, dep));
  return trial;
}

ReplayStats replay_rt(const sim::Program& program,
                      const PotentialDeadlock& cycle,
                      const LockDependency& dep,
                      const SyncDependencyGraph& gs,
                      const ReplayOptions& options) {
  return run_series(options, [&](std::uint64_t seed) {
    return replay_once_rt(program, cycle, dep, gs, seed,
                          options.retry.attempt_deadline_ms, options.fault);
  });
}

ReplayStats fuzz_rt(const sim::Program& program, const PotentialDeadlock& cycle,
                    const LockDependency& dep, const ReplayOptions& options) {
  return run_series(options, [&](std::uint64_t seed) {
    return fuzz_once_rt(program, cycle, dep, seed,
                        options.retry.attempt_deadline_ms, options.fault);
  });
}

}  // namespace wolf::rt
