// Replayer and DeadlockFuzzer trials on the OS-thread substrate: identical
// controller logic as the sim-based trials, driving real std::threads. Used
// by the integration tests and the webserver_replay example to demonstrate
// reproduction of genuine OS-thread deadlocks (with in-process recovery).
#pragma once

#include <cstdint>

#include "baseline/deadlock_fuzzer.hpp"
#include "core/replayer.hpp"
#include "sim/program.hpp"

namespace wolf::rt {

// One WOLF replay trial over real threads. `deadline_ms > 0` arms the
// executor's watchdog; `fault` forwards injected faults (tests/drills).
ReplayTrial replay_once_rt(const sim::Program& program,
                           const PotentialDeadlock& cycle,
                           const LockDependency& dep,
                           const SyncDependencyGraph& gs, std::uint64_t seed,
                           std::int64_t deadline_ms = 0,
                           const robust::FaultPlan* fault = nullptr);

// One DeadlockFuzzer trial over real threads.
ReplayTrial fuzz_once_rt(const sim::Program& program,
                         const PotentialDeadlock& cycle,
                         const LockDependency& dep, std::uint64_t seed,
                         std::int64_t deadline_ms = 0,
                         const robust::FaultPlan* fault = nullptr);

// Trial series, mirroring core/replayer's replay()/baseline's fuzz().
ReplayStats replay_rt(const sim::Program& program,
                      const PotentialDeadlock& cycle,
                      const LockDependency& dep,
                      const SyncDependencyGraph& gs,
                      const ReplayOptions& options);

ReplayStats fuzz_rt(const sim::Program& program, const PotentialDeadlock& cycle,
                    const LockDependency& dep, const ReplayOptions& options);

}  // namespace wolf::rt
