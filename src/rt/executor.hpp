// Real OS-thread execution substrate.
//
// Executes the same sim::Program scripts over std::thread with an
// instrumented re-entrant monitor per lock — the analogue of running the
// Soot-instrumented Java program on a JVM. It emits the identical event
// stream, consults the identical ScheduleController interface, and returns
// the same RunResult type as the virtual-thread scheduler, so WOLF's
// Replayer and the DeadlockFuzzer baseline drive genuine OS threads without
// modification.
//
// Deadlock handling: a wait-for graph is maintained at every blocking
// acquisition; the thread that closes a cycle records the deadlock and
// aborts the run (all blocked/paused threads are woken and unwind), so a
// reproduced deadlock terminates the trial instead of hanging the process —
// the paper's "execution deadlocked at the exact location" check followed by
// a clean in-process recovery for the next trial.
//
// Concurrency design: one global monitor mutex guards all bookkeeping
// (lock states, wait-for graph, controller calls, trace recording, flags);
// Compute ops spin outside it. The "nothing is runnable but paused threads
// remain" rule of Algorithm 4 is evaluated synchronously whenever a thread
// is about to block, so cycles the wait-for graph can see never need a
// monitor thread.
//
// Deadline handling: the synchronous rule only covers stalls the graph can
// see. A livelocked trial, an injected fault, or a genuinely-hung thread is
// covered by the optional wall-clock watchdog (ExecutorOptions::deadline_ms):
// a monitor thread arms when the run starts and, if the deadline expires
// first, aborts the trial exactly like a diagnosed deadlock — every thread
// is woken and unwinds — but the run reports RunOutcome::kTimeout. A wedged
// trial can therefore never hang the process.
#pragma once

#include <cstdint>

#include "robust/retry.hpp"
#include "sim/controller.hpp"
#include "sim/program.hpp"
#include "sim/scheduler.hpp"  // RunResult / BlockedAt / RunOutcome
#include "trace/recorder.hpp"

namespace wolf::robust {
struct FaultPlan;
}

namespace wolf::rt {

// Deprecated as a public entry type: prefer wolf::Config::executor plus
// Config::executor_options() (wolf.hpp). Kept for one release as the
// underlying section type.
struct ExecutorOptions {
  TraceSink* sink = nullptr;                 // trace recording (optional)
  sim::ScheduleController* controller = nullptr;  // replay steering (optional)
  // When false, event emission, controller consultation and occurrence
  // bookkeeping are skipped — the "uninstrumented program" baseline of the
  // paper's slowdown measurements. Wait-for-graph deadlock detection stays
  // on so a deadlocking run still terminates.
  bool instrument = true;
  std::uint64_t seed = 1;     // randomness for forced releases
  int compute_spin = 64;      // busy-work iterations per Compute unit
  // Wall-clock watchdog: > 0 arms a monitor that aborts the trial after this
  // many milliseconds (RunOutcome::kTimeout); 0 disables it.
  std::int64_t deadline_ms = 0;
  // Injected faults (robust/fault.hpp): wall-clock thread delays and dropped
  // force-releases. nullptr = no faults. Not owned.
  const robust::FaultPlan* fault = nullptr;
};

// Runs the program to completion, deadlock, or abort; joins all threads
// before returning.
sim::RunResult execute(const sim::Program& program,
                       const ExecutorOptions& options = {});

// Records an OS-thread trace (retrying deadlocked or timed-out runs like
// sim::record_trace). retry.attempt_deadline_ms arms the watchdog per
// attempt, so one hung recording run cannot wedge the batch.
std::optional<Trace> record_trace_rt(const sim::Program& program,
                                     std::uint64_t seed,
                                     const robust::RetryPolicy& retry);

// Convenience: retry up to `max_attempts` times, no backoff, no deadline.
std::optional<Trace> record_trace_rt(const sim::Program& program,
                                     std::uint64_t seed,
                                     int max_attempts = 20);

}  // namespace wolf::rt
