#include "rt/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "robust/fault.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "trace/sharded_recorder.hpp"

namespace wolf::rt {

namespace {

const obs::Counter kRuns("rt.runs");
// Force-releases and watchdog firings depend on wall-clock races in the
// real-thread substrate, so they are excluded from byte-stable reports.
const obs::Counter kForcedReleases("rt.forced_releases", /*stable=*/false);
const obs::Counter kWatchdogTimeouts("rt.watchdog_timeouts",
                                     /*stable=*/false);

// Thrown inside worker threads when the run is torn down after a diagnosed
// deadlock; unwinds the interpreter so std::thread::join succeeds.
struct AbortRun {};

class Executor {
 public:
  Executor(const sim::Program& program, const ExecutorOptions& options)
      : program_(program), options_(options), rng_(options.seed) {
    WOLF_CHECK_MSG(program.finalized(), "program must be finalized");
    locks_.resize(static_cast<std::size_t>(program.lock_count()));
    threads_.resize(static_cast<std::size_t>(program.thread_count()));
    flags_.assign(static_cast<std::size_t>(program.flag_count()), 0);
    for (auto& ts : threads_)
      ts.site_counts.assign(static_cast<std::size_t>(program.sites().size()),
                            0);
  }

  sim::RunResult run() {
    {
      std::unique_lock<std::mutex> lk(mu_);
      spawn_locked(0);
    }
    std::thread watchdog;
    if (options_.deadline_ms > 0)
      watchdog = std::thread([this] { watchdog_main(); });
    join_all();
    if (watchdog.joinable()) {
      {
        std::unique_lock<std::mutex> lk(watch_mu_);
        run_done_ = true;
      }
      watch_cv_.notify_all();
      watchdog.join();
    }
    std::unique_lock<std::mutex> lk(mu_);
    sim::RunResult result;
    if (deadlock_) {
      result.outcome = sim::RunOutcome::kDeadlock;
      result.deadlock_cycle = deadlock_cycle_;
      result.all_blocked = all_blocked_;
    } else if (timed_out_) {
      result.outcome = sim::RunOutcome::kTimeout;
      result.all_blocked = all_blocked_;
    } else {
      result.outcome = sim::RunOutcome::kCompleted;
    }
    return result;
  }

 private:
  enum class St : std::uint8_t {
    kNotStarted,
    kRunnable,
    kBlockedOnLock,
    kBlockedOnJoin,
    kPaused,
    kTerminated,
  };

  struct LockState {
    ThreadId owner = kInvalidThread;
    int depth = 0;
  };

  struct ThreadState {
    St st = St::kNotStarted;
    LockId waiting_lock = kInvalidLock;
    ThreadId waiting_join = kInvalidThread;
    std::vector<std::pair<LockId, int>> held;
    std::vector<std::int32_t> site_counts;
    int pending_pc = -1;
    std::int32_t pending_occ = 0;
    bool bypass_controller = false;
    std::thread os_thread;
  };

  // ---- everything below requires mu_ unless stated otherwise ----

  void emit_locked(Event e) {
    if (!options_.instrument) return;
    if (options_.sink != nullptr) options_.sink->on_event(e);
    if (options_.controller != nullptr) options_.controller->on_event(e);
  }

  void spawn_locked(ThreadId t) {
    ThreadState& ts = threads_[static_cast<std::size_t>(t)];
    WOLF_CHECK(ts.st == St::kNotStarted);
    ts.st = St::kRunnable;
    ts.os_thread = std::thread([this, t] { thread_main(t); });
  }

  std::int32_t occurrence_locked(ThreadId t, int pc, SiteId site) {
    ThreadState& ts = threads_[static_cast<std::size_t>(t)];
    if (ts.pending_pc == pc) return ts.pending_occ;
    ts.pending_pc = pc;
    ts.bypass_controller = false;
    ts.pending_occ = ts.site_counts[static_cast<std::size_t>(site)]++;
    return ts.pending_occ;
  }

  void drain_releases_locked() {
    if (!options_.instrument || options_.controller == nullptr) return;
    for (ThreadId t : options_.controller->take_released()) {
      if (t < 0 || static_cast<std::size_t>(t) >= threads_.size()) continue;
      ThreadState& ts = threads_[static_cast<std::size_t>(t)];
      if (ts.st == St::kPaused) {
        ts.st = St::kRunnable;
        cv_.notify_all();
      }
    }
  }

  sim::BlockedAt blocked_at_locked(ThreadId t) const {
    const ThreadState& ts = threads_[static_cast<std::size_t>(t)];
    const sim::Op& op =
        program_.thread(t).ops[static_cast<std::size_t>(ts.pending_pc)];
    sim::BlockedAt b;
    b.thread = t;
    b.index = ExecIndex{t, op.site, ts.pending_occ};
    b.lock = ts.waiting_lock;
    return b;
  }

  // Follows the lock wait-for chain from `t`; on a cycle through t, records
  // the deadlock and tears the run down. Returns true when aborting.
  bool check_cycle_locked(ThreadId t) {
    std::vector<ThreadId> chain;
    ThreadId cur = t;
    while (true) {
      const ThreadState& ts = threads_[static_cast<std::size_t>(cur)];
      if (ts.st != St::kBlockedOnLock) return false;
      chain.push_back(cur);
      ThreadId owner =
          locks_[static_cast<std::size_t>(ts.waiting_lock)].owner;
      if (owner == kInvalidThread) return false;
      if (owner == t) break;
      if (std::find(chain.begin(), chain.end(), owner) != chain.end())
        return false;
      cur = owner;
    }
    deadlock_ = true;
    for (ThreadId c : chain) deadlock_cycle_.push_back(blocked_at_locked(c));
    abort_locked();
    return true;
  }

  void abort_locked() {
    for (ThreadId t = 0; t < static_cast<ThreadId>(threads_.size()); ++t)
      if (threads_[static_cast<std::size_t>(t)].st == St::kBlockedOnLock)
        all_blocked_.push_back(blocked_at_locked(t));
    aborted_.store(true, std::memory_order_relaxed);
    cv_.notify_all();
  }

  // Called just after `t` moved into a blocked/paused state: if nothing is
  // runnable any more, either force-release a paused thread (Algorithm 4
  // lines 5–7) or declare the run stuck.
  void resolve_stall_locked() {
    bool any_runnable = false;
    std::vector<ThreadId> paused;
    for (ThreadId t = 0; t < static_cast<ThreadId>(threads_.size()); ++t) {
      const ThreadState& ts = threads_[static_cast<std::size_t>(t)];
      switch (ts.st) {
        case St::kRunnable:
          any_runnable = true;
          break;
        case St::kBlockedOnLock:
          // A thread whose awaited lock is already free has been notified
          // and will run as soon as it leaves cv_.wait — it only *looks*
          // blocked from here.
          if (locks_[static_cast<std::size_t>(ts.waiting_lock)].owner ==
              kInvalidThread)
            any_runnable = true;
          break;
        case St::kBlockedOnJoin:
          if (threads_[static_cast<std::size_t>(ts.waiting_join)].st ==
              St::kTerminated)
            any_runnable = true;
          break;
        case St::kPaused:
          paused.push_back(t);
          break;
        case St::kNotStarted:
        case St::kTerminated:
          break;
      }
    }
    if (any_runnable) return;
    if (!paused.empty()) {
      // Injected fault: the force-release that would unwedge the run is
      // dropped, leaving every thread waiting. Only the watchdog (or a
      // controller release) can now end the trial.
      if (options_.fault != nullptr && options_.fault->drop_force_releases)
        return;
      kForcedReleases.add();
      ThreadId victim =
          options_.controller != nullptr
              ? options_.controller->force_release(paused, rng_)
              : paused[rng_.index(paused)];
      ThreadState& vs = threads_[static_cast<std::size_t>(victim)];
      vs.st = St::kRunnable;
      vs.bypass_controller = true;
      cv_.notify_all();
      return;
    }
    // Everything is blocked and nothing can be released: a stall that the
    // lock-cycle check did not classify (e.g. a join/lock mixture).
    if (!deadlock_) {
      deadlock_ = true;
      abort_locked();
    }
  }

  void check_abort() {
    if (aborted_.load(std::memory_order_relaxed)) throw AbortRun{};
  }

  // ---- the watchdog (runs on its own thread when deadline_ms > 0) ----

  // Sleeps until the run finishes or the deadline expires; on expiry the
  // trial is torn down exactly like a diagnosed deadlock (all threads are
  // woken and unwind) but reports kTimeout.
  void watchdog_main() {
    {
      std::unique_lock<std::mutex> lk(watch_mu_);
      if (watch_cv_.wait_for(lk,
                             std::chrono::milliseconds(options_.deadline_ms),
                             [&] { return run_done_; }))
        return;
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (deadlock_) return;  // already being torn down with a better diagnosis
    bool all_done = true;
    for (const ThreadState& ts : threads_)
      if (ts.st != St::kTerminated && ts.st != St::kNotStarted) {
        all_done = false;
        break;
      }
    if (all_done) return;  // natural completion raced the deadline
    kWatchdogTimeouts.add();
    timed_out_ = true;
    abort_locked();
  }

  // Injected wall-clock stall (FaultPlan): holds the thread outside all
  // bookkeeping states — other threads still see it as runnable — but stays
  // abort-interruptible so the watchdog can always end the trial.
  void fault_delay(ThreadId t, int pc) {
    if (options_.fault == nullptr) return;
    const robust::FaultPlan::Delay* delay = options_.fault->find_delay(t, pc);
    if (delay == nullptr || delay->wall_ms <= 0) return;
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, std::chrono::milliseconds(delay->wall_ms),
                 [&] { return aborted_.load(std::memory_order_relaxed); });
    check_abort();
  }

  // ---- the per-thread interpreter (owns no locks on entry) ----

  void thread_main(ThreadId t) {
    try {
      interpret(t);
    } catch (const AbortRun&) {
      std::unique_lock<std::mutex> lk(mu_);
      // Drop any monitors still held so bookkeeping stays consistent; the
      // run is over, so waiters are released only to observe the abort.
      ThreadState& ts = threads_[static_cast<std::size_t>(t)];
      for (const auto& [lock, depth] : ts.held) {
        (void)depth;
        locks_[static_cast<std::size_t>(lock)].owner = kInvalidThread;
        locks_[static_cast<std::size_t>(lock)].depth = 0;
      }
      ts.held.clear();
      ts.st = St::kTerminated;
      cv_.notify_all();
    }
  }

  void interpret(ThreadId t) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      Event e;
      e.kind = EventKind::kThreadBegin;
      e.thread = t;
      emit_locked(e);
    }
    const auto& ops = program_.thread(t).ops;
    int pc = 0;
    while (pc < static_cast<int>(ops.size())) {
      check_abort();
      fault_delay(t, pc);
      const sim::Op& op = ops[static_cast<std::size_t>(pc)];
      switch (op.code) {
        case sim::OpCode::kLock:
          do_lock(t, pc, op);
          ++pc;
          break;
        case sim::OpCode::kUnlock:
          do_unlock(t, pc, op);
          ++pc;
          break;
        case sim::OpCode::kStart:
          do_start(t, pc, op);
          ++pc;
          break;
        case sim::OpCode::kJoin:
          do_join(t, pc, op);
          ++pc;
          break;
        case sim::OpCode::kCompute:
          do_compute(op);
          ++pc;
          break;
        case sim::OpCode::kSetFlag: {
          std::unique_lock<std::mutex> lk(mu_);
          flags_[static_cast<std::size_t>(op.flag)] = op.value;
          ++pc;
          break;
        }
        case sim::OpCode::kJumpIfFlag: {
          std::unique_lock<std::mutex> lk(mu_);
          pc = flags_[static_cast<std::size_t>(op.flag)] == op.value
                   ? op.target_pc
                   : pc + 1;
          break;
        }
        case sim::OpCode::kJump:
          pc = op.target_pc;
          break;
      }
    }
    std::unique_lock<std::mutex> lk(mu_);
    ThreadState& ts = threads_[static_cast<std::size_t>(t)];
    WOLF_CHECK_MSG(ts.held.empty(),
                   "rt thread " << t << " terminated holding locks");
    ts.st = St::kTerminated;
    Event e;
    e.kind = EventKind::kThreadEnd;
    e.thread = t;
    emit_locked(e);
    cv_.notify_all();
  }

  void do_lock(ThreadId t, int pc, const sim::Op& op) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadState& ts = threads_[static_cast<std::size_t>(t)];
    LockState& lock = locks_[static_cast<std::size_t>(op.lock)];
    while (true) {
      check_abort();
      if (lock.owner == t) {  // re-entrant
        ++lock.depth;
        ts.pending_pc = -1;
        ts.bypass_controller = false;
        return;
      }
      const std::int32_t occ = occurrence_locked(t, pc, op.site);
      const ExecIndex idx{t, op.site, occ};
      if (options_.instrument && options_.controller != nullptr &&
          !ts.bypass_controller &&
          options_.controller->before_lock(t, idx, op.lock)) {
        ts.st = St::kPaused;
        drain_releases_locked();
        resolve_stall_locked();
        cv_.wait(lk, [&] {
          return ts.st != St::kPaused ||
                 aborted_.load(std::memory_order_relaxed);
        });
        continue;
      }
      if (lock.owner != kInvalidThread) {
        ts.st = St::kBlockedOnLock;
        ts.waiting_lock = op.lock;
        if (check_cycle_locked(t)) throw AbortRun{};
        resolve_stall_locked();
        cv_.wait(lk, [&] {
          return locks_[static_cast<std::size_t>(op.lock)].owner ==
                     kInvalidThread ||
                 aborted_.load(std::memory_order_relaxed);
        });
        ts.st = St::kRunnable;
        ts.waiting_lock = kInvalidLock;
        continue;
      }
      lock.owner = t;
      lock.depth = 1;
      ts.held.emplace_back(op.lock, 1);
      Event e;
      e.kind = EventKind::kLockAcquire;
      e.thread = t;
      e.site = op.site;
      e.occurrence = occ;
      e.lock = op.lock;
      emit_locked(e);
      ts.pending_pc = -1;
      ts.bypass_controller = false;
      drain_releases_locked();
      return;
    }
  }

  void do_unlock(ThreadId t, int pc, const sim::Op& op) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadState& ts = threads_[static_cast<std::size_t>(t)];
    LockState& lock = locks_[static_cast<std::size_t>(op.lock)];
    WOLF_CHECK_MSG(lock.owner == t,
                   "rt thread " << t << " unlocks lock it does not own");
    if (--lock.depth > 0) return;
    lock.owner = kInvalidThread;
    auto it = std::find_if(ts.held.begin(), ts.held.end(),
                           [&](const auto& h) { return h.first == op.lock; });
    WOLF_CHECK(it != ts.held.end());
    ts.held.erase(it);
    Event e;
    e.kind = EventKind::kLockRelease;
    e.thread = t;
    e.site = op.site;
    e.occurrence = occurrence_locked(t, pc, op.site);
    e.lock = op.lock;
    ts.pending_pc = -1;
    emit_locked(e);
    drain_releases_locked();
    cv_.notify_all();
  }

  void do_start(ThreadId t, int pc, const sim::Op& op) {
    std::unique_lock<std::mutex> lk(mu_);
    Event e;
    e.kind = EventKind::kThreadStart;
    e.thread = t;
    e.site = op.site;
    e.occurrence = occurrence_locked(t, pc, op.site);
    e.other = op.target_thread;
    emit_locked(e);
    threads_[static_cast<std::size_t>(t)].pending_pc = -1;
    spawn_locked(op.target_thread);
  }

  void do_join(ThreadId t, int pc, const sim::Op& op) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadState& ts = threads_[static_cast<std::size_t>(t)];
    ThreadState& child = threads_[static_cast<std::size_t>(op.target_thread)];
    if (child.st != St::kTerminated) {
      ts.st = St::kBlockedOnJoin;
      ts.waiting_join = op.target_thread;
      resolve_stall_locked();
      cv_.wait(lk, [&] {
        return child.st == St::kTerminated ||
               aborted_.load(std::memory_order_relaxed);
      });
      check_abort();
      ts.st = St::kRunnable;
      ts.waiting_join = kInvalidThread;
    }
    Event e;
    e.kind = EventKind::kThreadJoin;
    e.thread = t;
    e.site = op.site;
    e.occurrence = occurrence_locked(t, pc, op.site);
    e.other = op.target_thread;
    emit_locked(e);
    ts.pending_pc = -1;
  }

  void do_compute(const sim::Op& op) {
    // Busy work outside the monitor; polls the abort flag so a torn-down run
    // cannot spin forever.
    std::uint64_t acc = 0x2545f4914f6cdd1dULL;
    const long iters =
        static_cast<long>(op.units) * options_.compute_spin;
    for (long i = 0; i < iters; ++i) {
      acc ^= acc << 13;
      acc ^= acc >> 7;
      acc ^= acc << 17;
      if ((i & 1023) == 0 && aborted_.load(std::memory_order_relaxed))
        throw AbortRun{};
    }
    sink_.store(acc, std::memory_order_relaxed);
  }

  void join_all() {
    // Threads spawn other threads, so keep scanning until every started
    // os_thread has been joined.
    while (true) {
      std::thread to_join;
      {
        std::unique_lock<std::mutex> lk(mu_);
        for (auto& ts : threads_) {
          if (ts.os_thread.joinable()) {
            to_join = std::move(ts.os_thread);
            break;
          }
        }
      }
      if (!to_join.joinable()) break;
      to_join.join();
    }
  }

  const sim::Program& program_;
  ExecutorOptions options_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<LockState> locks_;
  std::vector<ThreadState> threads_;
  std::vector<int> flags_;
  std::atomic<bool> aborted_{false};
  bool deadlock_ = false;
  bool timed_out_ = false;
  std::vector<sim::BlockedAt> deadlock_cycle_;
  std::vector<sim::BlockedAt> all_blocked_;
  // Watchdog rendezvous; separate from mu_ so the monitor never contends
  // with the interpreter's hot path.
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  bool run_done_ = false;
  Rng rng_;
  std::atomic<std::uint64_t> sink_{0};
};

}  // namespace

sim::RunResult execute(const sim::Program& program,
                       const ExecutorOptions& options) {
  kRuns.add();
  Executor executor(program, options);
  return executor.run();
}

std::optional<Trace> record_trace_rt(const sim::Program& program,
                                     std::uint64_t seed,
                                     const robust::RetryPolicy& retry) {
  Rng rng(seed);
  robust::RetryState attempts(retry, seed);
  while (attempts.next_attempt()) {
    // Sharded sink: the executor's monitor serializes emission today, but
    // recording no longer depends on that — any future emission path that
    // leaves the monitor stays correct, and take() (after execute() joined
    // every worker) merges the per-thread buffers back into seq order.
    ShardedTraceRecorder recorder;
    ExecutorOptions options;
    options.sink = &recorder;
    options.seed = rng();
    options.deadline_ms = retry.attempt_deadline_ms;
    sim::RunResult result = execute(program, options);
    if (result.outcome == sim::RunOutcome::kCompleted) return recorder.take();
  }
  return std::nullopt;
}

std::optional<Trace> record_trace_rt(const sim::Program& program,
                                     std::uint64_t seed, int max_attempts) {
  robust::RetryPolicy retry;
  retry.max_attempts = max_attempts;
  return record_trace_rt(program, seed, retry);
}

}  // namespace wolf::rt
