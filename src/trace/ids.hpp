// Stable identifiers used across recording and replay.
//
// The paper (§4) assigns each thread a unique identifier during detection and
// reuses the same assignment strategy during replay so that corresponding
// threads can be identified across runs. We make that strategy deterministic:
// the main thread is id 0 and every spawned thread is named by its parent's
// id plus the parent's per-spawn counter, which is invariant under scheduling
// as long as the program's spawn structure is fixed.
//
// Locks are likewise named by their allocation site plus a per-site counter
// (the execution-index naming of [14] applied to allocation), so a lock can
// be matched with "the same" lock in a re-execution.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace wolf {

using ThreadId = std::int32_t;  // 0 = main thread; -1 = invalid
using LockId = std::int32_t;    // dense per-program lock index; -1 = invalid
using SiteId = std::int32_t;    // static program location; -1 = invalid

inline constexpr ThreadId kInvalidThread = -1;
inline constexpr LockId kInvalidLock = -1;
inline constexpr SiteId kInvalidSite = -1;

// Logical timestamp per Algorithm 1. kTsBottom (⊥) marks "thread not started"
// and unset vector-clock entries; live timestamps start at 1.
using Timestamp = std::int32_t;
inline constexpr Timestamp kTsBottom = 0;

// A static program location. The Java original reports file:line source
// locations; workloads in this repo register symbolic locations that play the
// same role (defect deduplication and replay site matching).
struct SourceLoc {
  std::string function;  // e.g. "SynchronizedList.equals"
  int line = 0;

  std::string to_string() const {
    return function + ":" + std::to_string(line);
  }

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

// Registry of static sites. SiteIds are dense indices into this table.
// intern() sits on the instrumentation hot path (every workload op names a
// site), so lookups go through a hash index keyed on (function, line);
// ids are still assigned in first-intern order, so the dense numbering is
// identical to the linear-scan implementation this replaces.
class SiteTable {
 public:
  SiteId intern(const std::string& function, int line) {
    auto [it, inserted] = index_.try_emplace(Key{function, line}, size());
    if (inserted) locs_.push_back(SourceLoc{function, line});
    return it->second;
  }

  const SourceLoc& loc(SiteId id) const {
    WOLF_CHECK_MSG(id >= 0 && id < size(), "bad site id " << id);
    return locs_[static_cast<std::size_t>(id)];
  }

  SiteId size() const { return static_cast<SiteId>(locs_.size()); }

  std::string name(SiteId id) const {
    if (id == kInvalidSite) return "<none>";
    return loc(id).to_string();
  }

 private:
  using Key = std::pair<std::string, int>;
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::string>{}(k.first) * 1000003u ^
             static_cast<std::size_t>(k.second);
    }
  };

  std::vector<SourceLoc> locs_;
  std::unordered_map<Key, SiteId, KeyHash> index_;
};

}  // namespace wolf
