// Wire primitives of the binary trace format v3 (serialize.hpp), shared by
// the batch (de)serializer and the streaming reader.
//
// v3 is block-framed:
//
//   magic (8 bytes):  89 'W' 'O' 'L' 'F' '3' 0D 0A
//   block*:           'B' varint(count) varint(payload_bytes)
//                     payload  u64le(block_checksum)
//   footer:           'E' varint(total_count) u64le(trace_checksum)
//
// The magic follows the PNG convention: the high bit catches 7-bit
// transmission damage and the trailing CRLF catches newline translation.
// Each block's payload encodes `count` events:
//
//   kind (1 byte)
//   seq:        varint — absolute for the block's first event, then
//               varint(seq - prev_seq - 1); sequence numbers are strictly
//               increasing, so the common delta-1 case is a single 0x00
//   thread, site, occurrence, lock, other: zigzag varints (-1 → 1 byte)
//
// Every block is therefore decodable in isolation (its first seq is
// absolute), which is what lets read_trace_salvage skip a corrupt block and
// keep salvaging the blocks after it. block_checksum chains mix64 over the
// block's events from the fixed seed; the footer checksum is
// trace_checksum() — the same value a v2 footer carries, so converting
// between v2 and v3 preserves the checksum.
// The text v1/v2 line grammar helpers live here too, so the batch readers
// in serialize.cpp and the streaming reader in trace_reader.cpp parse with
// the same code.
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "support/rng.hpp"
#include "support/str.hpp"
#include "trace/event.hpp"

namespace wolf::wire {

// ---------------------------------------------------------------- checksums

inline constexpr std::uint64_t kChecksumSeed = 0x9e3779b97f4a7c15ULL;

// Chains one event into a running mix64 checksum; used per block (v3) and
// over the whole trace (v2/v3 footers).
inline std::uint64_t checksum_event(std::uint64_t h, const Event& e) {
  h = mix64(h ^ e.seq);
  h = mix64(h ^ static_cast<std::uint64_t>(e.kind));
  h = mix64(h ^ static_cast<std::uint64_t>(e.thread));
  h = mix64(h ^ static_cast<std::uint64_t>(e.site));
  h = mix64(h ^ static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(e.occurrence)));
  h = mix64(h ^ static_cast<std::uint64_t>(e.lock));
  h = mix64(h ^ static_cast<std::uint64_t>(e.other));
  return h;
}

// ------------------------------------------------------------- text grammar

inline constexpr const char* kHeaderV1 = "# wolf-trace v1";
inline constexpr const char* kHeaderV2 = "# wolf-trace v2";
inline constexpr const char* kFooterPrefix = "# wolf-trace-end";
inline constexpr std::size_t kMaxDiagnostics = 8;

inline std::optional<EventKind> kind_from_string(std::string_view s) {
  if (s == "begin") return EventKind::kThreadBegin;
  if (s == "end") return EventKind::kThreadEnd;
  if (s == "acquire") return EventKind::kLockAcquire;
  if (s == "release") return EventKind::kLockRelease;
  if (s == "start") return EventKind::kThreadStart;
  if (s == "join") return EventKind::kThreadJoin;
  return std::nullopt;
}

inline std::string to_hex(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

inline bool parse_hex(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  out = v;
  return true;
}

// Parses one event line; on failure fills `err` with a message naming
// `lineno`.
inline bool parse_event_line(std::string_view text, int lineno, Event& out,
                             std::string& err) {
  std::istringstream fields{std::string(text)};
  std::string kind_str;
  long long seq = 0, thread = 0, site = 0, occ = 0, lock = 0, other = 0;
  if (!(fields >> seq >> kind_str >> thread >> site >> occ >> lock >> other)) {
    err = "malformed event at line " + std::to_string(lineno);
    return false;
  }
  auto kind = kind_from_string(kind_str);
  if (!kind) {
    err = "unknown event kind '" + kind_str + "' at line " +
          std::to_string(lineno);
    return false;
  }
  out.seq = static_cast<std::uint64_t>(seq);
  out.kind = *kind;
  out.thread = static_cast<ThreadId>(thread);
  out.site = static_cast<SiteId>(site);
  out.occurrence = static_cast<std::int32_t>(occ);
  out.lock = static_cast<LockId>(lock);
  out.other = static_cast<ThreadId>(other);
  return true;
}

// Parses "# wolf-trace-end <count> <checksum-hex>".
inline bool parse_footer(std::string_view text, std::uint64_t& count,
                         std::uint64_t& checksum) {
  std::string_view rest =
      trim(text.substr(std::string_view(kFooterPrefix).size()));
  std::vector<std::string> parts = split(rest, ' ');
  // split may produce empties on repeated spaces; filter them.
  std::vector<std::string> fields;
  for (std::string& p : parts)
    if (!p.empty()) fields.push_back(std::move(p));
  if (fields.size() != 2) return false;
  long long n = 0;
  if (!parse_int(fields[0], n) || n < 0) return false;
  if (!parse_hex(fields[1], checksum)) return false;
  count = static_cast<std::uint64_t>(n);
  return true;
}

// ------------------------------------------------------------ v3 framing --

inline constexpr char kMagicV3[8] = {'\x89', 'W', 'O', 'L', 'F', '3', '\r',
                                     '\n'};
inline constexpr char kBlockTag = 'B';
inline constexpr char kFooterTag = 'E';
// Events per block: large enough to amortize framing (< 0.03 bytes/event of
// overhead), small enough that salvage loses little at block granularity.
inline constexpr std::size_t kBlockEvents = 512;
// Bounds on one encoded event (1 kind byte + a 10-byte seq varint + five
// 10-byte zigzag varints); block headers claiming sizes outside
// [count * kMinEventBytes, count * kMaxEventBytes] are structurally invalid.
inline constexpr std::size_t kMinEventBytes = 7;
inline constexpr std::size_t kMaxEventBytes = 61;

inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void put_zigzag(std::string& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

inline void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

// Bounded cursor over an encoded byte range; every get_* returns false
// instead of reading past the end.
struct ByteReader {
  const unsigned char* p = nullptr;
  const unsigned char* end = nullptr;

  explicit ByteReader(std::string_view bytes)
      : p(reinterpret_cast<const unsigned char*>(bytes.data())),
        end(p + bytes.size()) {}

  std::size_t remaining() const { return static_cast<std::size_t>(end - p); }

  bool get_u8(std::uint8_t& out) {
    if (p == end) return false;
    out = *p++;
    return true;
  }

  bool get_varint(std::uint64_t& out) {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p == end) return false;
      const std::uint8_t byte = *p++;
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        out = v;
        return true;
      }
    }
    return false;  // > 10 continuation bytes: not a valid varint
  }

  bool get_zigzag(std::int64_t& out) {
    std::uint64_t v = 0;
    if (!get_varint(v)) return false;
    out = unzigzag(v);
    return true;
  }

  bool get_u64le(std::uint64_t& out) {
    if (remaining() < 8) return false;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(*p++) << (8 * i);
    out = v;
    return true;
  }
};

// Appends one encoded event to `out`. `first_in_block` selects absolute vs
// delta-1 sequence encoding; `prev_seq` is the previous event's seq.
inline void put_event(std::string& out, const Event& e, bool first_in_block,
                      std::uint64_t prev_seq) {
  out.push_back(static_cast<char>(e.kind));
  put_varint(out, first_in_block ? e.seq : e.seq - prev_seq - 1);
  put_zigzag(out, e.thread);
  put_zigzag(out, e.site);
  put_zigzag(out, e.occurrence);
  put_zigzag(out, e.lock);
  put_zigzag(out, e.other);
}

// ------------------------------------------------------- v3 footer index --
//
// An indexed v3 file appends one extra section after the 'E' footer:
//
//   index:    'I' varint(block_count)
//             entry*: varint(offset_delta) varint(first_seq_delta)
//                     varint(last_seq - first_seq) varint(count)
//                     u64le(chain)
//             u64le(index_checksum)
//   trailer:  u64le(index_section_offset)  index magic (8 bytes)
//
// Each entry names one block: the file offset of its 'B' tag (delta-coded
// against the previous entry; the first entry is absolute), its first and
// last sequence numbers (first_seq is delta-1 coded against the previous
// entry's last_seq, mirroring the event encoding), its event count, and
// `chain` — the running whole-trace checksum after that block, so a
// parallel decoder can verify block i against entry i-1's chain without
// replaying the prefix (the last entry's chain equals the footer
// checksum). index_checksum chains mix64 over every decoded entry field.
//
// The fixed-size trailer is the random-access hook: a reader maps the
// file, checks the last 8 bytes for the index magic, and jumps straight
// to the section. Everything about the index is advisory — a reader that
// finds it missing or damaged falls back to the sequential scan.

inline constexpr char kIndexTag = 'I';
inline constexpr char kIndexMagic[8] = {'\x89', 'W', 'I', 'D', 'X', '3',
                                        '\r', '\n'};
// u64le(index_section_offset) + kIndexMagic.
inline constexpr std::size_t kIndexTrailerBytes = 16;

struct IndexEntry {
  std::uint64_t offset = 0;     // file offset of the block's 'B' tag
  std::uint64_t first_seq = 0;  // seq of the block's first event
  std::uint64_t last_seq = 0;   // seq of the block's last event
  std::uint64_t count = 0;      // events in the block
  std::uint64_t chain = 0;      // whole-trace checksum after this block
};

inline std::uint64_t index_checksum(const std::vector<IndexEntry>& entries) {
  std::uint64_t h = kChecksumSeed;
  for (const IndexEntry& e : entries) {
    h = mix64(h ^ e.offset);
    h = mix64(h ^ e.first_seq);
    h = mix64(h ^ e.last_seq);
    h = mix64(h ^ e.count);
    h = mix64(h ^ e.chain);
  }
  return h;
}

// Appends the whole index section + trailer. `section_offset` is the file
// offset at which this section will land (i.e. bytes written so far).
inline void put_index_section(std::string& out,
                              const std::vector<IndexEntry>& entries,
                              std::uint64_t section_offset) {
  out.push_back(kIndexTag);
  put_varint(out, entries.size());
  std::uint64_t prev_offset = 0;
  std::uint64_t prev_last_seq = 0;
  bool first = true;
  for (const IndexEntry& e : entries) {
    put_varint(out, e.offset - prev_offset);
    put_varint(out, first ? e.first_seq : e.first_seq - prev_last_seq - 1);
    put_varint(out, e.last_seq - e.first_seq);
    put_varint(out, e.count);
    put_u64le(out, e.chain);
    prev_offset = e.offset;
    prev_last_seq = e.last_seq;
    first = false;
  }
  put_u64le(out, index_checksum(entries));
  put_u64le(out, section_offset);
  out.append(kIndexMagic, sizeof kIndexMagic);
}

// Parses the index section from `r`, which must be positioned just after
// the 'I' tag and end just before the trailer. Returns false on any
// structural defect, on trailing bytes, or when the checksum disagrees
// with the decoded entries.
inline bool get_index_entries(ByteReader& r, std::vector<IndexEntry>& out) {
  out.clear();
  std::uint64_t n = 0;
  if (!r.get_varint(n)) return false;
  // Every entry encodes to at least 12 bytes, so a count that cannot fit
  // in the remaining bytes is structural corruption (and an OOM guard).
  if (n > r.remaining() / 12) return false;
  out.reserve(static_cast<std::size_t>(n));
  std::uint64_t prev_offset = 0;
  std::uint64_t prev_last_seq = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t d_off = 0, d_first = 0, span = 0, count = 0, chain = 0;
    if (!r.get_varint(d_off) || !r.get_varint(d_first) ||
        !r.get_varint(span) || !r.get_varint(count) || !r.get_u64le(chain))
      return false;
    IndexEntry e;
    e.offset = prev_offset + d_off;
    e.first_seq = out.empty() ? d_first : prev_last_seq + 1 + d_first;
    e.last_seq = e.first_seq + span;
    e.count = count;
    e.chain = chain;
    prev_offset = e.offset;
    prev_last_seq = e.last_seq;
    out.push_back(e);
  }
  std::uint64_t stored = 0;
  if (!r.get_u64le(stored)) return false;
  if (r.remaining() != 0) return false;
  return stored == index_checksum(out);
}

// Decodes one event; mirrors put_event. Returns false on truncated input or
// an out-of-range kind byte.
inline bool get_event(ByteReader& r, bool first_in_block,
                      std::uint64_t prev_seq, Event& out) {
  std::uint8_t kind = 0;
  if (!r.get_u8(kind)) return false;
  if (kind > static_cast<std::uint8_t>(EventKind::kThreadJoin)) return false;
  std::uint64_t seq_field = 0;
  std::int64_t thread = 0, site = 0, occ = 0, lock = 0, other = 0;
  if (!r.get_varint(seq_field) || !r.get_zigzag(thread) ||
      !r.get_zigzag(site) || !r.get_zigzag(occ) || !r.get_zigzag(lock) ||
      !r.get_zigzag(other))
    return false;
  out.kind = static_cast<EventKind>(kind);
  out.seq = first_in_block ? seq_field : prev_seq + 1 + seq_field;
  out.thread = static_cast<ThreadId>(thread);
  out.site = static_cast<SiteId>(site);
  out.occurrence = static_cast<std::int32_t>(occ);
  out.lock = static_cast<LockId>(lock);
  out.other = static_cast<ThreadId>(other);
  return true;
}

}  // namespace wolf::wire
