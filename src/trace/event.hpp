// The instrumentation event stream (the paper's "trace").
//
// Both execution substrates (the deterministic scheduler in src/sim and the
// OS-thread runtime in src/rt) emit exactly these events, totally ordered by
// a global sequence number — the analogue of the Soot-instrumented Java
// programs' log of Lock/Unlock/start/join operations (§3.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/exec_index.hpp"
#include "trace/ids.hpp"

namespace wolf {

enum class EventKind : std::uint8_t {
  kThreadBegin,   // thread's first action
  kThreadEnd,     // thread ran to completion
  kLockAcquire,   // top-level (non-reentrant) monitor acquisition completed
  kLockRelease,   // matching top-level release
  kThreadStart,   // executing thread started `other`
  kThreadJoin,    // executing thread joined `other`
};

const char* to_string(EventKind kind);

struct Event {
  std::uint64_t seq = 0;       // global total order
  EventKind kind = EventKind::kThreadBegin;
  ThreadId thread = kInvalidThread;  // executing thread
  SiteId site = kInvalidSite;        // static site of the operation
  std::int32_t occurrence = 0;       // per (thread, site) dynamic counter
  LockId lock = kInvalidLock;        // lock ops only
  ThreadId other = kInvalidThread;   // start/join child

  ExecIndex index() const { return ExecIndex{thread, site, occurrence}; }

  std::string to_string() const;

  friend bool operator==(const Event&, const Event&) = default;
};

struct Trace {
  std::vector<Event> events;

  bool empty() const { return events.empty(); }
  std::size_t size() const { return events.size(); }

  // Threads observed in the trace, ascending. Useful for sizing vector
  // clocks: ids are dense, so max_thread_id()+1 is the clock dimension.
  std::vector<ThreadId> threads() const;
  ThreadId max_thread_id() const;
};

}  // namespace wolf
