// Execution indices — the paper's cross-run identification of dynamic
// instructions (§3.1 footnote 2: "Identifies instructions, objects and
// threads across runs").
//
// An ExecIndex names the k-th dynamic execution of static site `site` by
// thread `thread`. Because thread ids are themselves stable across runs (see
// ids.hpp), an ExecIndex recorded during detection denotes the same dynamic
// instruction during replay, which is what lets the Generator's
// synchronization dependency graph constrain a *re-execution*.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>

#include "trace/ids.hpp"

namespace wolf {

struct ExecIndex {
  ThreadId thread = kInvalidThread;
  SiteId site = kInvalidSite;
  std::int32_t occurrence = 0;  // 0-based per (thread, site) counter

  friend bool operator==(const ExecIndex&, const ExecIndex&) = default;
  friend auto operator<=>(const ExecIndex& a, const ExecIndex& b) {
    return std::tie(a.thread, a.site, a.occurrence) <=>
           std::tie(b.thread, b.site, b.occurrence);
  }

  bool valid() const { return thread != kInvalidThread && site != kInvalidSite; }

  std::string to_string() const {
    std::string s = "t" + std::to_string(thread) + "@s" + std::to_string(site);
    if (occurrence != 0) s += "#" + std::to_string(occurrence);
    return s;
  }
};

struct ExecIndexHash {
  std::size_t operator()(const ExecIndex& e) const {
    std::size_t h = std::hash<std::int64_t>{}(
        (static_cast<std::int64_t>(e.thread) << 40) ^
        (static_cast<std::int64_t>(e.site) << 16) ^ e.occurrence);
    return h;
  }
};

}  // namespace wolf
