#include "trace/trace_reader.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>

#include "obs/counters.hpp"
#include "support/stopwatch.hpp"
#include "support/str.hpp"
#include "support/thread_pool.hpp"
#include "trace/wire.hpp"

namespace wolf {

namespace {

const obs::Counter kBlocksRead("trace.blocks");
const obs::Counter kEventsRead("trace.events");
const obs::Counter kSalvageRepairs("trace.salvage_repairs");
// Which open path fires depends on --jobs (and on whether mmap succeeded on
// this machine), so these are scheduling artifacts, not pipeline semantics —
// excluded from the byte-stable metrics report.
const obs::Counter kMmapOpens("trace.mmap_opens", /*stable=*/false);
const obs::Counter kIndexedOpens("trace.indexed_opens", /*stable=*/false);

constexpr int kEof = std::istream::traits_type::eof();

// Block-size cap accepted by the reader. Writers emit wire::kBlockEvents;
// anything a reader could not sanely buffer is structural corruption.
constexpr std::uint64_t kMaxBlockEvents = 1u << 24;

// A defect in the region after the 'E' footer (the optional block index).
// Worded to name both the footer boundary and the index, because tests and
// users probing a truncated file search for either.
const char kBadIndexMsg[] =
    "malformed data after wolf-trace v3 footer (block index)";

// Decodes one block's payload against its stored checksum. Returns the
// defect message ("" on success); `out` holds the decoded events (partial
// on failure — callers discard it then). Shared by the buffered, mmap'd,
// and parallel decode paths so their diagnostics can never diverge.
std::string decode_block_events(std::string_view payload, std::uint64_t count,
                                std::uint64_t stored_checksum,
                                const std::string& label,
                                std::vector<Event>& out) {
  wire::ByteReader r(payload);
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  std::uint64_t block_checksum = wire::kChecksumSeed;
  std::uint64_t prev = 0;
  for (std::uint64_t j = 0; j < count; ++j) {
    Event e;
    if (!wire::get_event(r, j == 0, prev, e))
      return label + ": malformed event";
    prev = e.seq;
    block_checksum = wire::checksum_event(block_checksum, e);
    out.push_back(e);
  }
  if (r.remaining() != 0) return label + ": trailing bytes in payload";
  if (block_checksum != stored_checksum) return label + ": checksum mismatch";
  return {};
}

// Byte-cursor reads over a mapped file.

bool mem_u8(std::string_view d, std::size_t& pos, std::uint8_t& out) {
  if (pos >= d.size()) return false;
  out = static_cast<std::uint8_t>(d[pos++]);
  return true;
}

bool mem_varint(std::string_view d, std::size_t& pos, std::uint64_t& out) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos >= d.size()) return false;
    const auto byte = static_cast<std::uint8_t>(d[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      out = v;
      return true;
    }
  }
  return false;
}

bool mem_u64le(std::string_view d, std::size_t& pos, std::uint64_t& out) {
  if (d.size() - pos < 8 || pos > d.size()) return false;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(d[pos++]))
         << (8 * i);
  out = v;
  return true;
}

// Reads a varint byte-by-byte off the stream; false on EOF or overlong runs.
bool stream_varint(std::istream& is, std::uint64_t& out) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const int c = is.get();
    if (c == kEof) return false;
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) {
      out = v;
      return true;
    }
  }
  return false;
}

bool stream_u64le(std::istream& is, std::uint64_t& out) {
  char buf[8];
  if (!is.read(buf, sizeof buf)) return false;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  out = v;
  return true;
}

}  // namespace

bool VectorTraceReader::next_block(std::vector<Event>& out) {
  out.clear();
  if (pos_ >= trace_->events.size()) return false;
  const std::size_t n =
      std::min(wire::kBlockEvents, trace_->events.size() - pos_);
  out.assign(trace_->events.begin() + static_cast<std::ptrdiff_t>(pos_),
             trace_->events.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  kBlocksRead.add();
  kEventsRead.add(n);
  return true;
}

// One block decoded off the index, ready for in-order delivery.
struct StreamTraceReader::DecodedBlock {
  std::vector<Event> events;
  std::string defect;       // non-empty: the block is damaged
  std::uint64_t count = 0;  // header-claimed events (drop accounting)
  std::size_t end = 0;      // file offset just past the block's checksum
};

StreamTraceReader::StreamTraceReader(std::istream& is, Mode mode)
    : is_(&is), mode_(mode), checksum_(wire::kChecksumSeed) {}

StreamTraceReader::StreamTraceReader(const std::string& path, Mode mode,
                                     Options options)
    : path_(path), mode_(mode), options_(options),
      checksum_(wire::kChecksumSeed) {}

StreamTraceReader::~StreamTraceReader() = default;

void StreamTraceReader::defect(std::string msg) {
  if (mode_ == Mode::kStrict) {
    if (error_.empty()) error_ = std::move(msg);
    stage_ = Stage::kDone;
    return;
  }
  kSalvageRepairs.add();
  if (diagnostics_.size() < wire::kMaxDiagnostics)
    diagnostics_.push_back(std::move(msg));
}

bool StreamTraceReader::next_block(std::vector<Event>& out) {
  out.clear();
  bool more = false;
  if (stage_ == Stage::kStart && !start()) return false;
  if (stage_ == Stage::kText)
    more = next_text(out);
  else if (stage_ == Stage::kBinary)
    more = next_binary(out);
  else if (stage_ == Stage::kBinaryMem)
    more = next_binary_mem(out);
  else if (stage_ == Stage::kBinaryIndexed)
    more = next_binary_indexed(out);
  if (more) {
    kBlocksRead.add();
    kEventsRead.add(out.size());
  }
  return more;
}

bool StreamTraceReader::open_memory_v3() {
  if (path_.empty() || !options_.allow_mmap) return false;
  map_ = support::MmapFile::open(path_);
  if (!map_) return false;
  data_ = map_->bytes();
  if (data_.size() < sizeof wire::kMagicV3 ||
      std::memcmp(data_.data(), wire::kMagicV3, sizeof wire::kMagicV3) != 0) {
    // Text trace, or a damaged magic: the buffered path owns both cases so
    // defect messages stay identical with and without mmap.
    map_.reset();
    data_ = {};
    return false;
  }
  kMmapOpens.add();
  mem_mode_ = true;
  version_ = 3;
  pos_ = sizeof wire::kMagicV3;
  return true;
}

bool StreamTraceReader::load_index() {
  if (!options_.use_index) return false;
  if (data_.size() < sizeof wire::kMagicV3 + wire::kIndexTrailerBytes)
    return false;
  const std::size_t trailer = data_.size() - wire::kIndexTrailerBytes;
  if (std::memcmp(data_.data() + trailer + 8, wire::kIndexMagic,
                  sizeof wire::kIndexMagic) != 0)
    return false;
  index_present_ = true;  // trailer magic found; the rest is validation
  std::size_t tpos = trailer;
  std::uint64_t offset = 0;
  mem_u64le(data_, tpos, offset);
  if (offset < sizeof wire::kMagicV3 || offset >= trailer) return false;
  if (data_[offset] != wire::kIndexTag) return false;
  wire::ByteReader r(
      data_.substr(offset + 1, trailer - static_cast<std::size_t>(offset) - 1));
  if (!wire::get_index_entries(r, index_)) {
    index_.clear();
    return false;
  }
  // Semantic validation: offsets and seq ranges must be strictly ordered
  // and in bounds, counts sane. An index failing any of these is discarded
  // and the sequential scan takes over.
  std::uint64_t prev_off = 0, prev_last = 0;
  for (std::size_t i = 0; i < index_.size(); ++i) {
    const wire::IndexEntry& e = index_[i];
    const bool bad =
        (i == 0 && e.offset != sizeof wire::kMagicV3) ||
        (i > 0 && e.offset <= prev_off) || e.offset >= offset ||
        e.count == 0 || e.count > kMaxBlockEvents ||
        e.last_seq < e.first_seq || (i > 0 && e.first_seq <= prev_last);
    if (bad) {
      index_.clear();
      return false;
    }
    prev_off = e.offset;
    prev_last = e.last_seq;
  }
  index_offset_ = static_cast<std::size_t>(offset);
  return true;
}

bool StreamTraceReader::start() {
  if (!path_.empty() && is_ == nullptr) {
    if (open_memory_v3()) {
      // jobs <= 0 means "auto" repo-wide (thread_pool.hpp); resolve it here
      // so CLI callers can forward their shared --jobs flag untouched.
      const int jobs = options_.jobs <= 0 ? ThreadPool::hardware_jobs()
                                          : options_.jobs;
      if (load_index() && jobs > 1) {
        kIndexedOpens.add();
        pool_ = std::make_unique<ThreadPool>(jobs);
        last_block_end_ = sizeof wire::kMagicV3;
        stage_ = Stage::kBinaryIndexed;
      } else {
        stage_ = Stage::kBinaryMem;
      }
      return true;
    }
    auto file = std::make_unique<std::ifstream>(path_, std::ios::binary);
    if (!*file) {
      defect("cannot open trace file '" + path_ + "'");
      stage_ = Stage::kDone;
      return false;
    }
    file_ = std::move(file);
    is_ = file_.get();
  }
  const int first = is_->peek();
  if (first == kEof) {
    defect(mode_ == Mode::kStrict ? "missing wolf-trace header"
                                  : "empty input");
    stage_ = Stage::kDone;
    return false;
  }
  if (first == (wire::kMagicV3[0] & 0xff)) {
    char magic[8];
    if (!is_->read(magic, 8) ||
        std::memcmp(magic, wire::kMagicV3, sizeof magic) != 0) {
      defect("bad wolf-trace v3 magic");
      stage_ = Stage::kDone;
      return false;
    }
    version_ = 3;
    stage_ = Stage::kBinary;
    return true;
  }
  std::string line;
  std::getline(*is_, line);
  lineno_ = 1;
  const auto header = trim(line);
  if (header == wire::kHeaderV1) {
    version_ = 1;
  } else if (header == wire::kHeaderV2) {
    version_ = 2;
  } else {
    defect("missing wolf-trace header");
    if (mode_ == Mode::kStrict) return false;  // defect() ended the stream
    // Maybe only the header was lost: reparse line 1 as an event.
    pending_first_line_ = std::string(header);
    reparse_first_ = true;
  }
  stage_ = Stage::kText;
  return true;
}

// ----------------------------------------------------------------- text ----

bool StreamTraceReader::consume_text_line(std::string_view text,
                                          std::vector<Event>& out) {
  if (text.empty()) return false;
  if (text.front() == '#') {
    // Footer lines matter for v2 and for headerless input (which may be a
    // v2 trace whose first line was lost); under v1 they are comments.
    if (version_ != 1 && starts_with(text, wire::kFooterPrefix)) {
      if (footer_seen_) {
        defect("duplicate wolf-trace footer at line " +
               std::to_string(lineno_));
        return false;
      }
      if (!wire::parse_footer(text, footer_count_, footer_checksum_)) {
        defect("malformed wolf-trace footer at line " +
               std::to_string(lineno_));
        return false;
      }
      footer_seen_ = true;
    }
    return false;
  }
  if (!prefix_open_ || footer_seen_) {
    if (footer_seen_ && prefix_open_)
      defect("event after wolf-trace footer at line " +
             std::to_string(lineno_));
    if (mode_ == Mode::kStrict) return false;
    prefix_open_ = false;
    ++events_dropped_;
    return false;
  }
  Event e;
  std::string err;
  if (!wire::parse_event_line(text, lineno_, e, err)) {
    defect(std::move(err));
    prefix_open_ = false;
    ++events_dropped_;
    return false;
  }
  if (have_prev_ && e.seq <= prev_seq_) {
    defect("non-monotonic sequence number at line " + std::to_string(lineno_));
    prefix_open_ = false;
    ++events_dropped_;
    return false;
  }
  prev_seq_ = e.seq;
  have_prev_ = true;
  checksum_ = wire::checksum_event(checksum_, e);
  ++count_;
  out.push_back(e);
  return true;
}

bool StreamTraceReader::next_text(std::vector<Event>& out) {
  if (reparse_first_) {
    reparse_first_ = false;
    consume_text_line(pending_first_line_, out);
  }
  std::string line;
  while (stage_ == Stage::kText && out.size() < wire::kBlockEvents &&
         std::getline(*is_, line)) {
    ++lineno_;
    consume_text_line(trim(line), out);
  }
  if (stage_ == Stage::kDone) {  // strict defect mid-stream
    out.clear();
    return false;
  }
  if (out.size() >= wire::kBlockEvents) return true;
  // End of input: run the footer checks, then deliver the final partial
  // block (unless a strict check just failed).
  if (version_ == 2 && !footer_seen_) {
    defect("missing wolf-trace footer (truncated trace?)");
  } else if (footer_seen_) {
    if (footer_count_ != count_) {
      defect("footer event count mismatch (footer says " +
             std::to_string(footer_count_) + ", " +
             (mode_ == Mode::kStrict ? "trace has " : "salvaged ") +
             std::to_string(count_) + ")");
    } else if (footer_checksum_ != checksum_) {
      defect("trace checksum mismatch");
    }
  }
  const bool failed = stage_ == Stage::kDone;  // strict footer defect
  stage_ = Stage::kDone;
  if (failed || out.empty()) {
    out.clear();
    return false;
  }
  return true;
}

// ------------------------------------------------------ binary (stream) ----

bool StreamTraceReader::next_binary(std::vector<Event>& out) {
  while (stage_ == Stage::kBinary) {
    const int tag = is_->get();
    if (tag == kEof) {
      if (!footer_seen_)
        defect("missing wolf-trace v3 footer (truncated trace?)");
      else
        finish_footer_checks(events_dropped_ > 0);
      stage_ = Stage::kDone;
      break;
    }
    if (footer_seen_) {
      if (tag == wire::kIndexTag) {
        consume_index_section_stream();
        continue;
      }
      defect("data after wolf-trace v3 footer");
      stage_ = Stage::kDone;
      break;
    }
    if (tag == wire::kFooterTag) {
      if (!stream_varint(*is_, footer_count_) ||
          !stream_u64le(*is_, footer_checksum_)) {
        defect("malformed wolf-trace v3 footer");
        stage_ = Stage::kDone;
        break;
      }
      footer_seen_ = true;
      continue;
    }
    if (tag != wire::kBlockTag) {
      defect("bad wolf-trace v3 block tag (block " +
             std::to_string(next_block_index_) + ")");
      stage_ = Stage::kDone;
      break;
    }

    const std::string label = "block " + std::to_string(next_block_index_++);
    std::uint64_t count = 0, payload_size = 0;
    if (!stream_varint(*is_, count) || !stream_varint(*is_, payload_size)) {
      defect(label + ": truncated header");
      stage_ = Stage::kDone;
      break;
    }
    if (count == 0 || count > kMaxBlockEvents ||
        payload_size < count * wire::kMinEventBytes ||
        payload_size > count * wire::kMaxEventBytes) {
      defect(label + ": malformed header");
      stage_ = Stage::kDone;
      break;
    }
    std::string payload(static_cast<std::size_t>(payload_size), '\0');
    if (!is_->read(payload.data(),
                   static_cast<std::streamsize>(payload_size))) {
      defect(label + ": truncated payload");
      events_dropped_ += count;
      stage_ = Stage::kDone;
      break;
    }
    std::uint64_t stored_checksum = 0;
    if (!stream_u64le(*is_, stored_checksum)) {
      defect(label + ": truncated checksum");
      events_dropped_ += count;
      stage_ = Stage::kDone;
      break;
    }

    // Framing is intact from here on, so in salvage mode a defect drops
    // only this block and the loop moves on to the next one.
    std::string bad =
        decode_block_events(payload, count, stored_checksum, label, out);
    if (bad.empty() && have_prev_ && out.front().seq <= prev_seq_)
      bad = label + ": non-monotonic sequence number";
    if (!bad.empty()) {
      defect(std::move(bad));
      events_dropped_ += count;
      continue;  // salvage: skip this block; strict: stage_ is kDone
    }
    for (const Event& e : out) checksum_ = wire::checksum_event(checksum_, e);
    prev_seq_ = out.back().seq;
    have_prev_ = true;
    count_ += count;
    return true;
  }
  out.clear();
  return false;
}

void StreamTraceReader::consume_index_section_stream() {
  // The index is the last section of the file; slurp the remainder (it is
  // small — ~14 bytes per 512-event block) and validate it wholesale.
  std::string rest{std::istreambuf_iterator<char>(*is_),
                   std::istreambuf_iterator<char>()};
  bool ok = rest.size() >= wire::kIndexTrailerBytes;
  std::vector<wire::IndexEntry> entries;
  if (ok) {
    const std::size_t trailer = rest.size() - wire::kIndexTrailerBytes;
    ok = std::memcmp(rest.data() + trailer + 8, wire::kIndexMagic,
                     sizeof wire::kIndexMagic) == 0;
    if (ok) {
      wire::ByteReader r(std::string_view(rest).substr(0, trailer));
      ok = wire::get_index_entries(r, entries);
    }
  }
  if (ok) ok = entries.size() == next_block_index_;
  if (!ok) {
    defect(kBadIndexMsg);
    return;  // salvage: nothing after the index region is deliverable
  }
  index_present_ = true;
}

// -------------------------------------------------------- binary (mmap) ----

bool StreamTraceReader::next_binary_mem(std::vector<Event>& out) {
  while (stage_ == Stage::kBinaryMem) {
    if (pos_ >= data_.size()) {
      if (!footer_seen_)
        defect("missing wolf-trace v3 footer (truncated trace?)");
      else
        finish_footer_checks(events_dropped_ > 0);
      stage_ = Stage::kDone;
      break;
    }
    const auto tag = static_cast<std::uint8_t>(data_[pos_]);
    ++pos_;
    if (footer_seen_) {
      if (tag == static_cast<std::uint8_t>(wire::kIndexTag)) {
        consume_index_section_mem();
        continue;
      }
      defect("data after wolf-trace v3 footer");
      stage_ = Stage::kDone;
      break;
    }
    if (tag == static_cast<std::uint8_t>(wire::kFooterTag)) {
      if (!mem_varint(data_, pos_, footer_count_) ||
          !mem_u64le(data_, pos_, footer_checksum_)) {
        defect("malformed wolf-trace v3 footer");
        stage_ = Stage::kDone;
        break;
      }
      footer_seen_ = true;
      continue;
    }
    if (tag != static_cast<std::uint8_t>(wire::kBlockTag)) {
      defect("bad wolf-trace v3 block tag (block " +
             std::to_string(next_block_index_) + ")");
      stage_ = Stage::kDone;
      break;
    }

    const std::string label = "block " + std::to_string(next_block_index_++);
    std::uint64_t count = 0, payload_size = 0;
    if (!mem_varint(data_, pos_, count) ||
        !mem_varint(data_, pos_, payload_size)) {
      defect(label + ": truncated header");
      stage_ = Stage::kDone;
      break;
    }
    if (count == 0 || count > kMaxBlockEvents ||
        payload_size < count * wire::kMinEventBytes ||
        payload_size > count * wire::kMaxEventBytes) {
      defect(label + ": malformed header");
      stage_ = Stage::kDone;
      break;
    }
    if (payload_size > data_.size() - pos_) {
      defect(label + ": truncated payload");
      events_dropped_ += count;
      stage_ = Stage::kDone;
      break;
    }
    const std::string_view payload =
        data_.substr(pos_, static_cast<std::size_t>(payload_size));
    pos_ += static_cast<std::size_t>(payload_size);
    std::uint64_t stored_checksum = 0;
    if (!mem_u64le(data_, pos_, stored_checksum)) {
      defect(label + ": truncated checksum");
      events_dropped_ += count;
      stage_ = Stage::kDone;
      break;
    }

    std::string bad =
        decode_block_events(payload, count, stored_checksum, label, out);
    if (bad.empty() && have_prev_ && out.front().seq <= prev_seq_)
      bad = label + ": non-monotonic sequence number";
    if (!bad.empty()) {
      defect(std::move(bad));
      events_dropped_ += count;
      continue;  // salvage: skip this block; strict: stage_ is kDone
    }
    for (const Event& e : out) checksum_ = wire::checksum_event(checksum_, e);
    prev_seq_ = out.back().seq;
    have_prev_ = true;
    count_ += count;
    return true;
  }
  out.clear();
  return false;
}

void StreamTraceReader::consume_index_section_mem() {
  // pos_ is just past the 'I' tag; the section must run to exactly 16
  // bytes before EOF, and the trailer must point back at the tag.
  const std::size_t size = data_.size();
  const std::size_t tag_at = pos_ - 1;
  bool ok = size - pos_ >= wire::kIndexTrailerBytes;
  std::vector<wire::IndexEntry> entries;
  if (ok) {
    const std::size_t trailer = size - wire::kIndexTrailerBytes;
    ok = std::memcmp(data_.data() + trailer + 8, wire::kIndexMagic,
                     sizeof wire::kIndexMagic) == 0;
    if (ok) {
      wire::ByteReader r(data_.substr(pos_, trailer - pos_));
      ok = wire::get_index_entries(r, entries);
    }
    if (ok) {
      std::size_t tpos = trailer;
      std::uint64_t offset = 0;
      mem_u64le(data_, tpos, offset);
      ok = offset == tag_at;
    }
  }
  if (ok) ok = entries.size() == next_block_index_;
  if (!ok) {
    defect(kBadIndexMsg);
    pos_ = size;  // salvage: skip the damaged tail; strict: stage_ is kDone
    return;
  }
  index_present_ = true;
  pos_ = size;
}

// ---------------------------------------------- binary (mmap + indexed) ----

void StreamTraceReader::decode_batch() {
  const std::size_t width =
      std::max<std::size_t>(16, static_cast<std::size_t>(pool_->jobs()) * 4);
  const std::size_t n = std::min(width, index_.size() - next_entry_);
  batch_.clear();
  batch_.resize(n);
  const std::size_t base = next_entry_;
  pool_->parallel_for_each(n, [&](std::size_t k) {
    const std::size_t bi = base + k;
    const wire::IndexEntry& entry = index_[bi];
    DecodedBlock& slot = batch_[k];
    slot.count = entry.count;
    const std::string label = "block " + std::to_string(bi);
    // Blocks and the footer live in [8, index_offset_): bound all reads by
    // the index section so a lying entry cannot walk into it.
    const std::string_view region = data_.substr(0, index_offset_);
    std::size_t pos = static_cast<std::size_t>(entry.offset);
    std::uint8_t tag = 0;
    if (!mem_u8(region, pos, tag) ||
        tag != static_cast<std::uint8_t>(wire::kBlockTag)) {
      slot.defect = "bad wolf-trace v3 block tag (" + label + ")";
      return;
    }
    std::uint64_t count = 0, payload_size = 0;
    if (!mem_varint(region, pos, count) ||
        !mem_varint(region, pos, payload_size)) {
      slot.defect = label + ": truncated header";
      return;
    }
    if (count == 0 || count > kMaxBlockEvents || count != entry.count ||
        payload_size < count * wire::kMinEventBytes ||
        payload_size > count * wire::kMaxEventBytes) {
      slot.defect = label + ": malformed header";
      return;
    }
    if (payload_size > region.size() - pos) {
      slot.defect = label + ": truncated payload";
      return;
    }
    const std::string_view payload =
        region.substr(pos, static_cast<std::size_t>(payload_size));
    pos += static_cast<std::size_t>(payload_size);
    std::uint64_t stored_checksum = 0;
    if (!mem_u64le(region, pos, stored_checksum)) {
      slot.defect = label + ": truncated checksum";
      return;
    }
    slot.end = pos;
    slot.defect = decode_block_events(payload, count, stored_checksum, label,
                                      slot.events);
    if (!slot.defect.empty()) return;
    // The entry must agree with what the block decodes to, and chaining
    // this block's events onto the previous entry's running checksum must
    // land on this entry's — which is how the whole-trace checksum gets
    // verified in parallel without replaying the prefix.
    std::uint64_t chain = bi == 0 ? wire::kChecksumSeed : index_[bi - 1].chain;
    for (const Event& e : slot.events)
      chain = wire::checksum_event(chain, e);
    if (slot.events.front().seq != entry.first_seq ||
        slot.events.back().seq != entry.last_seq || chain != entry.chain)
      slot.defect = label + ": footer index mismatch";
  });
  next_entry_ += n;
  batch_pos_ = 0;
}

bool StreamTraceReader::next_binary_indexed(std::vector<Event>& out) {
  while (stage_ == Stage::kBinaryIndexed) {
    if (batch_pos_ >= batch_.size()) {
      if (next_entry_ >= index_.size()) {
        finish_indexed();
        break;
      }
      decode_batch();
    }
    DecodedBlock& block = batch_[batch_pos_++];
    const std::size_t bi = next_block_index_++;
    // Contiguity: each block must start exactly where the previous one
    // ended (the sequential scan gets this for free). Only checkable when
    // the previous block's framing was intact.
    if (last_block_end_ != 0 && index_[bi].offset != last_block_end_) {
      defect("bad wolf-trace v3 block tag (block " + std::to_string(bi) +
             ")");
      stage_ = Stage::kDone;  // desync: same stop the sequential scan makes
      break;
    }
    last_block_end_ = block.defect.empty() ? block.end : 0;
    std::string bad = std::move(block.defect);
    if (bad.empty() && have_prev_ && block.events.front().seq <= prev_seq_)
      bad = "block " + std::to_string(bi) + ": non-monotonic sequence number";
    if (!bad.empty()) {
      defect(std::move(bad));
      events_dropped_ += block.count;
      continue;  // salvage: drop this block; strict: stage_ is kDone
    }
    out = std::move(block.events);
    checksum_ = index_[bi].chain;  // verified against the events in-worker
    prev_seq_ = out.back().seq;
    have_prev_ = true;
    count_ += out.size();
    return true;
  }
  out.clear();
  return false;
}

bool StreamTraceReader::finish_indexed() {
  // Every indexed block is delivered (or dropped by name); what remains is
  // [last_block_end_, index_offset_), which must be exactly the footer.
  stage_ = Stage::kDone;
  if (last_block_end_ == 0) return false;  // tail block had broken framing
  std::size_t pos = last_block_end_;
  std::uint8_t tag = 0;
  const std::string_view region = data_.substr(0, index_offset_);
  if (!mem_u8(region, pos, tag)) {
    defect("missing wolf-trace v3 footer (truncated trace?)");
    return false;
  }
  if (tag != static_cast<std::uint8_t>(wire::kFooterTag)) {
    defect("bad wolf-trace v3 block tag (block " +
           std::to_string(next_block_index_) + ")");
    return false;
  }
  if (!mem_varint(region, pos, footer_count_) ||
      !mem_u64le(region, pos, footer_checksum_)) {
    defect("malformed wolf-trace v3 footer");
    return false;
  }
  footer_seen_ = true;
  if (pos != index_offset_) {
    defect("data after wolf-trace v3 footer");
    return false;
  }
  finish_footer_checks(events_dropped_ > 0);
  return true;
}

void StreamTraceReader::finish_footer_checks(bool dropped_any) {
  // With blocks dropped the totals necessarily disagree — the per-block
  // diagnostics already explain why, so only intact salvages (and strict
  // reads) compare against the footer.
  if (mode_ == Mode::kSalvage && dropped_any) return;
  if (footer_count_ != count_) {
    defect("footer event count mismatch (footer says " +
           std::to_string(footer_count_) + ", " +
           (mode_ == Mode::kStrict ? "trace has " : "salvaged ") +
           std::to_string(count_) + ")");
  } else if (footer_checksum_ != checksum_) {
    defect("trace checksum mismatch");
  }
}

PipelinedTraceReader::PipelinedTraceReader(TraceReader& source,
                                           std::size_t depth)
    : source_(&source), queue_(depth == 0 ? 2 : depth) {
  producer_ = std::thread([this] { produce(); });
}

PipelinedTraceReader::~PipelinedTraceReader() {
  // Unblocks a producer stalled on a full ring; it observes the close,
  // stops reading the source, and exits.
  queue_.close();
  join();
  // Early destruction (consumer abandoned the stream before draining to
  // false) can leave a producer exception nobody will ever rethrow. A
  // destructor cannot surface it, but it must not vanish either: count it.
  // Unstable — whether a consumer bails before seeing the error is a
  // scheduling artifact, not pipeline semantics.
  if (producer_error_ && !error_delivered_) {
    static const obs::Counter abandoned("trace.pipeline_abandoned_errors",
                                        /*stable=*/false);
    abandoned.add();
  }
}

void PipelinedTraceReader::produce() {
  try {
    std::vector<Event> block;
    for (;;) {
      Stopwatch decode;
      const bool more = source_->next_block(block);
      decode_nanos_.fetch_add(
          static_cast<std::uint64_t>(decode.seconds() * 1e9),
          std::memory_order_relaxed);
      if (!more) break;
      if (!queue_.push(std::move(block))) break;  // consumer gone
      block.clear();  // moved-from: restore a known state for reuse
    }
  } catch (...) {
    producer_error_ = std::current_exception();
  }
  queue_.close();
}

void PipelinedTraceReader::join() {
  if (joined_) return;
  joined_ = true;
  if (producer_.joinable()) producer_.join();
}

bool PipelinedTraceReader::next_block(std::vector<Event>& out) {
  if (queue_.pop(out)) return true;
  out.clear();
  // Closed and drained: the producer is done (or dying) — join it so the
  // source's error state is fully published, then surface its exception.
  join();
  if (producer_error_) {
    error_delivered_ = true;
    std::rethrow_exception(producer_error_);
  }
  return false;
}

PipelinedTraceReader::Stats PipelinedTraceReader::stats() const {
  const RingQueue<std::vector<Event>>::Stats q = queue_.stats();
  Stats s;
  s.push_stalls = q.push_stalls;
  s.pop_stalls = q.pop_stalls;
  s.push_stall_seconds = q.push_stall_seconds;
  s.pop_stall_seconds = q.pop_stall_seconds;
  s.decode_seconds =
      1e-9 * static_cast<double>(decode_nanos_.load(std::memory_order_relaxed));
  return s;
}

}  // namespace wolf
