#include "trace/trace_reader.hpp"

#include <cstring>
#include <istream>

#include "obs/counters.hpp"
#include "support/str.hpp"
#include "trace/wire.hpp"

namespace wolf {

namespace {

const obs::Counter kBlocksRead("trace.blocks");
const obs::Counter kEventsRead("trace.events");
const obs::Counter kSalvageRepairs("trace.salvage_repairs");

constexpr int kEof = std::istream::traits_type::eof();

// Block-size cap accepted by the reader. Writers emit wire::kBlockEvents;
// anything a reader could not sanely buffer is structural corruption.
constexpr std::uint64_t kMaxBlockEvents = 1u << 24;

}  // namespace

bool VectorTraceReader::next_block(std::vector<Event>& out) {
  out.clear();
  if (pos_ >= trace_->events.size()) return false;
  const std::size_t n =
      std::min(wire::kBlockEvents, trace_->events.size() - pos_);
  out.assign(trace_->events.begin() + static_cast<std::ptrdiff_t>(pos_),
             trace_->events.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  kBlocksRead.add();
  kEventsRead.add(n);
  return true;
}

StreamTraceReader::StreamTraceReader(std::istream& is, Mode mode)
    : is_(is), mode_(mode), checksum_(wire::kChecksumSeed) {}

void StreamTraceReader::defect(std::string msg) {
  if (mode_ == Mode::kStrict) {
    if (error_.empty()) error_ = std::move(msg);
    stage_ = Stage::kDone;
    return;
  }
  kSalvageRepairs.add();
  if (diagnostics_.size() < wire::kMaxDiagnostics)
    diagnostics_.push_back(std::move(msg));
}

bool StreamTraceReader::next_block(std::vector<Event>& out) {
  out.clear();
  bool more = false;
  if (stage_ == Stage::kStart && !start()) return false;
  if (stage_ == Stage::kText)
    more = next_text(out);
  else if (stage_ == Stage::kBinary)
    more = next_binary(out);
  if (more) {
    kBlocksRead.add();
    kEventsRead.add(out.size());
  }
  return more;
}

bool StreamTraceReader::start() {
  const int first = is_.peek();
  if (first == kEof) {
    defect(mode_ == Mode::kStrict ? "missing wolf-trace header"
                                  : "empty input");
    stage_ = Stage::kDone;
    return false;
  }
  if (first == (wire::kMagicV3[0] & 0xff)) {
    char magic[8];
    if (!is_.read(magic, 8) ||
        std::memcmp(magic, wire::kMagicV3, sizeof magic) != 0) {
      defect("bad wolf-trace v3 magic");
      stage_ = Stage::kDone;
      return false;
    }
    version_ = 3;
    stage_ = Stage::kBinary;
    return true;
  }
  std::string line;
  std::getline(is_, line);
  lineno_ = 1;
  const auto header = trim(line);
  if (header == wire::kHeaderV1) {
    version_ = 1;
  } else if (header == wire::kHeaderV2) {
    version_ = 2;
  } else {
    defect("missing wolf-trace header");
    if (mode_ == Mode::kStrict) return false;  // defect() ended the stream
    // Maybe only the header was lost: reparse line 1 as an event.
    pending_first_line_ = std::string(header);
    reparse_first_ = true;
  }
  stage_ = Stage::kText;
  return true;
}

// ----------------------------------------------------------------- text ----

bool StreamTraceReader::consume_text_line(std::string_view text,
                                          std::vector<Event>& out) {
  if (text.empty()) return false;
  if (text.front() == '#') {
    // Footer lines matter for v2 and for headerless input (which may be a
    // v2 trace whose first line was lost); under v1 they are comments.
    if (version_ != 1 && starts_with(text, wire::kFooterPrefix)) {
      if (footer_seen_) {
        defect("duplicate wolf-trace footer at line " +
               std::to_string(lineno_));
        return false;
      }
      if (!wire::parse_footer(text, footer_count_, footer_checksum_)) {
        defect("malformed wolf-trace footer at line " +
               std::to_string(lineno_));
        return false;
      }
      footer_seen_ = true;
    }
    return false;
  }
  if (!prefix_open_ || footer_seen_) {
    if (footer_seen_ && prefix_open_)
      defect("event after wolf-trace footer at line " +
             std::to_string(lineno_));
    if (mode_ == Mode::kStrict) return false;
    prefix_open_ = false;
    ++events_dropped_;
    return false;
  }
  Event e;
  std::string err;
  if (!wire::parse_event_line(text, lineno_, e, err)) {
    defect(std::move(err));
    prefix_open_ = false;
    ++events_dropped_;
    return false;
  }
  if (have_prev_ && e.seq <= prev_seq_) {
    defect("non-monotonic sequence number at line " + std::to_string(lineno_));
    prefix_open_ = false;
    ++events_dropped_;
    return false;
  }
  prev_seq_ = e.seq;
  have_prev_ = true;
  checksum_ = wire::checksum_event(checksum_, e);
  ++count_;
  out.push_back(e);
  return true;
}

bool StreamTraceReader::next_text(std::vector<Event>& out) {
  if (reparse_first_) {
    reparse_first_ = false;
    consume_text_line(pending_first_line_, out);
  }
  std::string line;
  while (stage_ == Stage::kText && out.size() < wire::kBlockEvents &&
         std::getline(is_, line)) {
    ++lineno_;
    consume_text_line(trim(line), out);
  }
  if (stage_ == Stage::kDone) {  // strict defect mid-stream
    out.clear();
    return false;
  }
  if (out.size() >= wire::kBlockEvents) return true;
  // End of input: run the footer checks, then deliver the final partial
  // block (unless a strict check just failed).
  if (version_ == 2 && !footer_seen_) {
    defect("missing wolf-trace footer (truncated trace?)");
  } else if (footer_seen_) {
    if (footer_count_ != count_) {
      defect("footer event count mismatch (footer says " +
             std::to_string(footer_count_) + ", " +
             (mode_ == Mode::kStrict ? "trace has " : "salvaged ") +
             std::to_string(count_) + ")");
    } else if (footer_checksum_ != checksum_) {
      defect("trace checksum mismatch");
    }
  }
  const bool failed = stage_ == Stage::kDone;  // strict footer defect
  stage_ = Stage::kDone;
  if (failed || out.empty()) {
    out.clear();
    return false;
  }
  return true;
}

// --------------------------------------------------------------- binary ----

namespace {

// Reads a varint byte-by-byte off the stream; false on EOF or overlong runs.
bool stream_varint(std::istream& is, std::uint64_t& out) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const int c = is.get();
    if (c == kEof) return false;
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) {
      out = v;
      return true;
    }
  }
  return false;
}

bool stream_u64le(std::istream& is, std::uint64_t& out) {
  char buf[8];
  if (!is.read(buf, sizeof buf)) return false;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  out = v;
  return true;
}

}  // namespace

bool StreamTraceReader::next_binary(std::vector<Event>& out) {
  while (stage_ == Stage::kBinary) {
    const int tag = is_.get();
    if (tag == kEof) {
      if (!footer_seen_)
        defect("missing wolf-trace v3 footer (truncated trace?)");
      else
        finish_footer_checks(events_dropped_ > 0);
      stage_ = Stage::kDone;
      break;
    }
    if (footer_seen_) {
      defect("data after wolf-trace v3 footer");
      stage_ = Stage::kDone;
      break;
    }
    if (tag == wire::kFooterTag) {
      if (!stream_varint(is_, footer_count_) ||
          !stream_u64le(is_, footer_checksum_)) {
        defect("malformed wolf-trace v3 footer");
        stage_ = Stage::kDone;
        break;
      }
      footer_seen_ = true;
      continue;
    }
    if (tag != wire::kBlockTag) {
      defect("bad wolf-trace v3 block tag (block " +
             std::to_string(next_block_index_) + ")");
      stage_ = Stage::kDone;
      break;
    }

    const std::string label = "block " + std::to_string(next_block_index_++);
    std::uint64_t count = 0, payload_size = 0;
    if (!stream_varint(is_, count) || !stream_varint(is_, payload_size)) {
      defect(label + ": truncated header");
      stage_ = Stage::kDone;
      break;
    }
    if (count == 0 || count > kMaxBlockEvents ||
        payload_size < count * wire::kMinEventBytes ||
        payload_size > count * wire::kMaxEventBytes) {
      defect(label + ": malformed header");
      stage_ = Stage::kDone;
      break;
    }
    std::string payload(static_cast<std::size_t>(payload_size), '\0');
    if (!is_.read(payload.data(),
                  static_cast<std::streamsize>(payload_size))) {
      defect(label + ": truncated payload");
      events_dropped_ += count;
      stage_ = Stage::kDone;
      break;
    }
    std::uint64_t stored_checksum = 0;
    if (!stream_u64le(is_, stored_checksum)) {
      defect(label + ": truncated checksum");
      events_dropped_ += count;
      stage_ = Stage::kDone;
      break;
    }

    // Framing is intact from here on, so in salvage mode a defect drops
    // only this block and the loop moves on to the next one.
    wire::ByteReader r(payload);
    out.clear();
    out.reserve(static_cast<std::size_t>(count));
    std::uint64_t block_checksum = wire::kChecksumSeed;
    std::uint64_t prev = 0;
    bool bad = false;
    for (std::uint64_t j = 0; j < count && !bad; ++j) {
      Event e;
      if (!wire::get_event(r, j == 0, prev, e)) {
        defect(label + ": malformed event");
        bad = true;
        break;
      }
      prev = e.seq;
      block_checksum = wire::checksum_event(block_checksum, e);
      out.push_back(e);
    }
    if (!bad && r.remaining() != 0) {
      defect(label + ": trailing bytes in payload");
      bad = true;
    }
    if (!bad && block_checksum != stored_checksum) {
      defect(label + ": checksum mismatch");
      bad = true;
    }
    if (!bad && have_prev_ && out.front().seq <= prev_seq_) {
      defect(label + ": non-monotonic sequence number");
      bad = true;
    }
    if (bad) {
      events_dropped_ += count;
      continue;  // salvage: skip this block; strict: stage_ is kDone
    }
    for (const Event& e : out) checksum_ = wire::checksum_event(checksum_, e);
    prev_seq_ = out.back().seq;
    have_prev_ = true;
    count_ += count;
    return true;
  }
  out.clear();
  return false;
}

void StreamTraceReader::finish_footer_checks(bool dropped_any) {
  // With blocks dropped the totals necessarily disagree — the per-block
  // diagnostics already explain why, so only intact salvages (and strict
  // reads) compare against the footer.
  if (mode_ == Mode::kSalvage && dropped_any) return;
  if (footer_count_ != count_) {
    defect("footer event count mismatch (footer says " +
           std::to_string(footer_count_) + ", " +
           (mode_ == Mode::kStrict ? "trace has " : "salvaged ") +
           std::to_string(count_) + ")");
  } else if (footer_checksum_ != checksum_) {
    defect("trace checksum mismatch");
  }
}

}  // namespace wolf
