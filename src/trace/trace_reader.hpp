// Pull-based streaming trace readers.
//
// A TraceReader hands out a recorded trace block-by-block, so consumers —
// detection via detect_reader(), `wolf analyze` on file input — process
// traces of any length without materializing the whole std::vector<Event>.
// Producers:
//
//   * VectorTraceReader — adapter over an in-memory Trace (borrowed);
//   * StreamTraceReader — incremental reader over an std::istream in any
//     on-disk format (text v1/v2 or binary v3, auto-detected), the
//     streaming equivalent of read_trace / read_trace_salvage. All three
//     batch readers in serialize.cpp are thin drains over this class, so
//     streaming and batch consumption can never diverge.
//
// Usage:
//
//   StreamTraceReader reader(file);           // strict by default
//   std::vector<Event> block;
//   while (reader.next_block(block)) consume(block);
//   if (!reader.ok()) complain(reader.error());
//
// In kStrict mode the first defect stops the stream with error() set; in
// kSalvage mode defects become diagnostics() and the reader keeps going —
// recovering the longest valid prefix of a text trace, and every intact
// block of a v3 trace (a damaged block is skipped by name while the blocks
// after it still load).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace wolf {

class TraceReader {
 public:
  virtual ~TraceReader() = default;

  // Replaces `out` with the next block of events. Returns false when the
  // stream is exhausted (or, for StreamTraceReader in strict mode, on the
  // first defect); `out` is empty after a false return.
  virtual bool next_block(std::vector<Event>& out) = 0;
};

// Streams an in-memory trace in fixed-size blocks. Borrows the trace; the
// caller keeps it alive while reading.
class VectorTraceReader final : public TraceReader {
 public:
  explicit VectorTraceReader(const Trace& trace) : trace_(&trace) {}
  bool next_block(std::vector<Event>& out) override;

 private:
  const Trace* trace_;
  std::size_t pos_ = 0;
};

class StreamTraceReader final : public TraceReader {
 public:
  enum class Mode { kStrict, kSalvage };

  // Borrows `is`; the caller keeps the stream alive while reading. v3
  // streams must be opened in binary mode.
  explicit StreamTraceReader(std::istream& is, Mode mode = Mode::kStrict);
  bool next_block(std::vector<Event>& out) override;

  // Valid once next_block has returned false.
  bool ok() const { return error_.empty(); }        // strict: no defect
  const std::string& error() const { return error_; }

  // Salvage-mode accounting (mirrors SalvageReport).
  int version() const { return version_; }
  bool complete() const {
    return diagnostics_.empty() && events_dropped_ == 0;
  }
  std::size_t events_dropped() const { return events_dropped_; }
  const std::vector<std::string>& diagnostics() const { return diagnostics_; }
  std::uint64_t events_read() const { return count_; }

 private:
  enum class Stage { kStart, kText, kBinary, kDone };

  // Records a defect: strict mode sets error_ and ends the stream; salvage
  // mode appends a (capped) diagnostic and leaves the stage alone.
  void defect(std::string msg);
  bool start();
  bool next_text(std::vector<Event>& out);
  bool next_binary(std::vector<Event>& out);
  // One parsed text line; returns true when an event was appended to `out`.
  bool consume_text_line(std::string_view text, std::vector<Event>& out);
  void finish_footer_checks(bool dropped_any);

  std::istream& is_;
  Mode mode_;
  Stage stage_ = Stage::kStart;
  int version_ = 0;
  std::string error_;
  std::vector<std::string> diagnostics_;
  std::size_t events_dropped_ = 0;

  // Shared event-stream state.
  std::uint64_t count_ = 0;
  std::uint64_t checksum_;
  bool have_prev_ = false;
  std::uint64_t prev_seq_ = 0;
  bool footer_seen_ = false;
  std::uint64_t footer_count_ = 0;
  std::uint64_t footer_checksum_ = 0;

  // Text state.
  int lineno_ = 0;
  bool prefix_open_ = true;
  std::string pending_first_line_;  // headerless salvage: reparse line 1
  bool reparse_first_ = false;

  // Binary state.
  std::size_t next_block_index_ = 0;
};

}  // namespace wolf
