// Pull-based streaming trace readers.
//
// A TraceReader hands out a recorded trace block-by-block, so consumers —
// detection via detect_reader(), `wolf analyze` on file input — process
// traces of any length without materializing the whole std::vector<Event>.
// Producers:
//
//   * VectorTraceReader — adapter over an in-memory Trace (borrowed);
//   * StreamTraceReader — incremental reader over an std::istream or a
//     file path, in any on-disk format (text v1/v2 or binary v3,
//     auto-detected), the streaming equivalent of read_trace /
//     read_trace_salvage. All three batch readers in serialize.cpp are
//     thin drains over this class, so streaming and batch consumption can
//     never diverge.
//
// Usage:
//
//   StreamTraceReader reader(file);           // strict by default
//   std::vector<Event> block;
//   while (reader.next_block(block)) consume(block);
//   if (!reader.ok()) complain(reader.error());
//
// In kStrict mode the first defect stops the stream with error() set; in
// kSalvage mode defects become diagnostics() and the reader keeps going —
// recovering the longest valid prefix of a text trace, and every intact
// block of a v3 trace (a damaged block is skipped by name while the blocks
// after it still load).
//
// The path constructor unlocks the 10^8-event fast path (DESIGN.md §15):
// a v3 file is mmap'd (support/mmap_file) and decoded zero-copy, and when
// it carries the footer block index and Options.jobs > 1, blocks are
// decoded in parallel on a support/thread_pool — with bit-identical event
// delivery, defect messages, and salvage accounting at every jobs level.
// Every acceleration degrades gracefully: no mmap → buffered reads, no
// index → sequential scan, no parallelism → serial decode.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "support/mmap_file.hpp"
#include "support/ring_queue.hpp"
#include "trace/event.hpp"
#include "trace/wire.hpp"

namespace wolf {

class ThreadPool;

class TraceReader {
 public:
  virtual ~TraceReader() = default;

  // Replaces `out` with the next block of events. Returns false when the
  // stream is exhausted (or, for StreamTraceReader in strict mode, on the
  // first defect); `out` is empty after a false return.
  virtual bool next_block(std::vector<Event>& out) = 0;
};

// Streams an in-memory trace in fixed-size blocks. Borrows the trace; the
// caller keeps it alive while reading.
class VectorTraceReader final : public TraceReader {
 public:
  explicit VectorTraceReader(const Trace& trace) : trace_(&trace) {}
  bool next_block(std::vector<Event>& out) override;

 private:
  const Trace* trace_;
  std::size_t pos_ = 0;
};

class StreamTraceReader final : public TraceReader {
 public:
  enum class Mode { kStrict, kSalvage };

  struct Options {
    // Try to mmap v3 files opened by path; failure silently falls back to
    // buffered stream reads.
    bool allow_mmap = true;
    // Decode indexed v3 blocks on this many threads (<= 1: serial). Only
    // effective with mmap and a valid footer index; delivery order, event
    // bytes, and diagnostics are identical at every level.
    int jobs = 1;
    // Ignore a footer index even when present (forces the sequential
    // scan; used by tests and honesty-mode benchmarks).
    bool use_index = true;
  };

  // Borrows `is`; the caller keeps the stream alive while reading. v3
  // streams must be opened in binary mode.
  explicit StreamTraceReader(std::istream& is, Mode mode = Mode::kStrict);
  // Opens `path` itself; enables the mmap / indexed-parallel fast paths.
  explicit StreamTraceReader(const std::string& path,
                             Mode mode = Mode::kStrict)
      : StreamTraceReader(path, mode, Options{}) {}
  StreamTraceReader(const std::string& path, Mode mode, Options options);
  ~StreamTraceReader();

  bool next_block(std::vector<Event>& out) override;

  // Valid once next_block has returned false.
  bool ok() const { return error_.empty(); }        // strict: no defect
  const std::string& error() const { return error_; }

  // Salvage-mode accounting (mirrors SalvageReport).
  int version() const { return version_; }
  bool complete() const {
    return diagnostics_.empty() && events_dropped_ == 0;
  }
  std::size_t events_dropped() const { return events_dropped_; }
  const std::vector<std::string>& diagnostics() const { return diagnostics_; }
  std::uint64_t events_read() const { return count_; }

  // Fast-path introspection (perf_trace_io records these in its JSON).
  bool mmap_used() const { return mem_mode_; }
  bool index_present() const { return index_present_; }
  bool parallel_decode() const { return !index_.empty() && pool_ != nullptr; }

 private:
  enum class Stage { kStart, kText, kBinary, kBinaryMem, kBinaryIndexed,
                     kDone };

  // Records a defect: strict mode sets error_ and ends the stream; salvage
  // mode appends a (capped) diagnostic and leaves the stage alone.
  void defect(std::string msg);
  bool start();
  bool open_memory_v3();  // true when the mmap path is usable
  bool load_index();      // true when a valid footer index was adopted
  bool next_text(std::vector<Event>& out);
  bool next_binary(std::vector<Event>& out);
  bool next_binary_mem(std::vector<Event>& out);
  bool next_binary_indexed(std::vector<Event>& out);
  void decode_batch();    // indexed mode: decode the next run of blocks
  bool finish_indexed();  // indexed mode: footer + tail checks
  // One parsed text line; returns true when an event was appended to `out`.
  bool consume_text_line(std::string_view text, std::vector<Event>& out);
  void finish_footer_checks(bool dropped_any);
  // Consumes the index section (tag already consumed) from the sequential
  // position `cursor` to end-of-data; defects on any damage.
  void consume_index_section_mem();
  void consume_index_section_stream();

  std::istream* is_ = nullptr;           // borrowed or owned (file_)
  std::unique_ptr<std::istream> file_;   // path-mode buffered fallback
  std::string path_;                     // empty for the istream ctor
  Mode mode_;
  Options options_;
  Stage stage_ = Stage::kStart;
  int version_ = 0;
  std::string error_;
  std::vector<std::string> diagnostics_;
  std::size_t events_dropped_ = 0;

  // Shared event-stream state.
  std::uint64_t count_ = 0;
  std::uint64_t checksum_;
  bool have_prev_ = false;
  std::uint64_t prev_seq_ = 0;
  bool footer_seen_ = false;
  std::uint64_t footer_count_ = 0;
  std::uint64_t footer_checksum_ = 0;

  // Text state.
  int lineno_ = 0;
  bool prefix_open_ = true;
  std::string pending_first_line_;  // headerless salvage: reparse line 1
  bool reparse_first_ = false;

  // Binary state.
  std::size_t next_block_index_ = 0;

  // Memory-mode (mmap) state.
  std::optional<support::MmapFile> map_;
  std::string_view data_;       // whole file when mem_mode_
  std::size_t pos_ = 0;         // sequential cursor into data_
  bool mem_mode_ = false;
  std::size_t data_end_ = 0;    // end of block+footer region (before index)

  // Footer-index state.
  bool index_present_ = false;
  std::uint64_t index_offset_ = 0;  // file offset of the 'I' section
  std::vector<wire::IndexEntry> index_;
  std::size_t next_entry_ = 0;      // next index entry to decode
  std::unique_ptr<ThreadPool> pool_;
  struct DecodedBlock;
  std::vector<DecodedBlock> batch_;
  std::size_t batch_pos_ = 0;
  // File offset just past the last delivered block (0: framing broken, the
  // next block's start cannot be cross-checked).
  std::size_t last_block_end_ = 0;
};

// Stage-pipelining adapter (DESIGN.md §17): moves a source reader's block
// production onto a dedicated producer thread, handing decoded blocks to the
// caller through a bounded SPSC ring. The consumer (detection ingest) and
// the producer (mmap'd decode — itself possibly parallel via the source's
// jobs option) then overlap instead of serializing turn-by-turn.
//
// Delivery is trivially bit-identical to draining the source directly: the
// ring preserves block order and block contents, and next_block() returns
// false only after the producer exhausted the source. Backpressure is the
// ring's fixed depth — decode can run at most `depth` blocks ahead of
// ingestion, so a slow consumer bounds the pipeline's memory, not the trace
// length. A producer-side exception is captured and rethrown from the
// consumer's next next_block() call, after the producer has been joined.
//
// The source reader is borrowed and must outlive this adapter. While the
// adapter is alive the producer thread owns the source: do not touch it from
// the consumer side until next_block() has returned false (or the adapter is
// destroyed) — after either, the source's error/salvage accessors are safe
// again and reflect the whole stream.
class PipelinedTraceReader final : public TraceReader {
 public:
  struct Stats {
    std::uint64_t push_stalls = 0;   // producer waited on a full ring
    std::uint64_t pop_stalls = 0;    // consumer waited on an empty ring
    double push_stall_seconds = 0;
    double pop_stall_seconds = 0;
    double decode_seconds = 0;       // producer time inside source.next_block
  };

  explicit PipelinedTraceReader(TraceReader& source, std::size_t depth = 8);
  ~PipelinedTraceReader() override;

  PipelinedTraceReader(const PipelinedTraceReader&) = delete;
  PipelinedTraceReader& operator=(const PipelinedTraceReader&) = delete;

  bool next_block(std::vector<Event>& out) override;

  // Safe to call at any time; exact once next_block() has returned false.
  Stats stats() const;

 private:
  void produce();
  void join();

  TraceReader* source_;
  RingQueue<std::vector<Event>> queue_;
  std::thread producer_;
  bool joined_ = false;
  // Written by the producer before it closes the queue; read by the
  // consumer only after pop() has observed the close (which synchronizes).
  // A consumer that destroys the adapter before draining to false never
  // sees the exception — the destructor cannot throw, so that case is
  // counted on the "trace.pipeline_abandoned_errors" obs counter instead
  // of being silently swallowed (error_delivered_ tells the two apart).
  std::exception_ptr producer_error_;
  bool error_delivered_ = false;
  std::atomic<std::uint64_t> decode_nanos_{0};
};

}  // namespace wolf
