// Text (de)serialization of traces.
//
// WOLF's pipeline is offline: detection consumes a recorded trace, possibly
// from an earlier process. The format is line-oriented and versioned:
//
//   # wolf-trace v1
//   <seq> <kind> <thread> <site> <occurrence> <lock> <other>
//
// with kind as the short names from event.cpp. Round-tripping is exact.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "trace/event.hpp"

namespace wolf {

void write_trace(std::ostream& os, const Trace& trace);
std::string trace_to_string(const Trace& trace);

// Returns nullopt and fills *error on malformed input.
std::optional<Trace> read_trace(std::istream& is, std::string* error = nullptr);
std::optional<Trace> trace_from_string(const std::string& text,
                                       std::string* error = nullptr);

}  // namespace wolf
