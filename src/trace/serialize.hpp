// Text (de)serialization of traces.
//
// WOLF's pipeline is offline: detection consumes a recorded trace, possibly
// from an earlier process, so the on-disk format must both round-trip exactly
// and fail loudly when a recording run died mid-write. The format is
// line-oriented and versioned:
//
//   # wolf-trace v2
//   <seq> <kind> <thread> <site> <occurrence> <lock> <other>
//   ...
//   # wolf-trace-end <count> <checksum-hex>
//
// with kind as the short names from event.cpp. v2 appends a footer carrying
// the event count and a chained mix64 checksum over every event's fields;
// the strict reader rejects a v2 trace whose footer is missing or does not
// match (a truncated or corrupted file). v1 traces (no footer) still load.
// Sequence numbers must be strictly increasing in both versions.
//
// Two readers are provided:
//   * read_trace — strict: any defect returns nullopt with a message;
//   * read_trace_salvage — recovers the longest valid event prefix from a
//     damaged file, with per-line diagnostics, so a crash-truncated
//     recording can still feed detection.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace wolf {

enum class TraceFormat : std::uint8_t {
  kV1,  // header only (legacy)
  kV2,  // header + count/checksum footer
};

void write_trace(std::ostream& os, const Trace& trace,
                 TraceFormat format = TraceFormat::kV2);
std::string trace_to_string(const Trace& trace,
                            TraceFormat format = TraceFormat::kV2);

// The checksum a v2 footer carries for `trace`.
std::uint64_t trace_checksum(const Trace& trace);

// Strict readers: return nullopt and fill *error on malformed input.
std::optional<Trace> read_trace(std::istream& is, std::string* error = nullptr);
std::optional<Trace> trace_from_string(const std::string& text,
                                       std::string* error = nullptr);

// Result of a salvage read: the longest valid event prefix plus diagnostics
// describing everything that had to be dropped.
struct SalvageReport {
  Trace trace;              // the recovered prefix
  int version = 0;          // 0 when the header is missing/unrecognized
  bool complete = false;    // true iff nothing was wrong (strict would pass)
  std::size_t events_dropped = 0;  // non-comment lines not in the prefix
  std::vector<std::string> diagnostics;  // per-defect messages (capped)

  std::string summary() const;  // one human-readable line
};

// Tolerant readers: never fail. A missing header, a garbled line, a
// truncated tail, or a bad footer ends the prefix (or adds a diagnostic)
// instead of discarding the whole trace.
SalvageReport read_trace_salvage(std::istream& is);
SalvageReport salvage_trace_from_string(const std::string& text);

}  // namespace wolf
