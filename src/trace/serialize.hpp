// Trace (de)serialization: text v1/v2 and binary v3.
//
// WOLF's pipeline is offline: detection consumes a recorded trace, possibly
// from an earlier process, so the on-disk format must both round-trip exactly
// and fail loudly when a recording run died mid-write. Three versions exist,
// all fully readable and writable (`wolf convert` translates between them):
//
// v1/v2 are line-oriented text:
//
//   # wolf-trace v2
//   <seq> <kind> <thread> <site> <occurrence> <lock> <other>
//   ...
//   # wolf-trace-end <count> <checksum-hex>
//
// with kind as the short names from event.cpp. v2 appends a footer carrying
// the event count and a chained mix64 checksum over every event's fields;
// the strict reader rejects a v2 trace whose footer is missing or does not
// match (a truncated or corrupted file). v1 traces (no footer) still load.
//
// v3 is binary and block-framed (wire format in trace/wire.hpp): an 8-byte
// magic, then blocks of up to 512 events — each block a 1-byte tag, varint
// event count, varint payload size, varint/delta-encoded events (kinds are
// one byte; seq is delta-1 coded, so the common +1 step costs one 0x00
// byte), and a per-block mix64 checksum — then a footer with the total
// count and the same whole-trace checksum a v2 footer carries. Blocks are
// independently decodable, so read_trace_salvage recovers at block
// granularity: a corrupt block is dropped and named in the diagnostics
// while the blocks after it still load. v3 runs ~3x smaller than v2 and
// decodes without any text parsing.
//
// Sequence numbers must be strictly increasing in every version.
//
// Readers auto-detect the format from the first byte. Two are provided:
//   * read_trace — strict: any defect returns nullopt with a message;
//   * read_trace_salvage — recovers everything recoverable from a damaged
//     file (the longest valid prefix for text, all intact blocks for v3),
//     with per-defect diagnostics, so a crash-truncated recording can still
//     feed detection.
// For block-by-block consumption without materializing the whole event
// vector, see trace/trace_reader.hpp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"
#include "trace/wire.hpp"

namespace wolf {

enum class TraceFormat : std::uint8_t {
  kV1,  // text, header only (legacy)
  kV2,  // text, header + count/checksum footer
  kV3,  // binary, block-framed varint/delta encoding
};

const char* to_string(TraceFormat format);
// Parses "v1"/"v2"/"v3" (CLI --format values); nullopt otherwise.
std::optional<TraceFormat> trace_format_from_string(std::string_view name);

// Incremental trace writer: the streaming dual of StreamTraceReader. Feed
// events in strictly increasing seq order (any mix of single events and
// batches), then call finish() exactly once to emit the footer. `wolf
// convert` pumps a 10^8-event trace through this in O(block) memory; the
// batch write_trace below is a thin wrapper, so the two paths can never
// produce different bytes.
//
// For v3 the writer tracks every block's file offset, seq range, count,
// and running checksum, and finish() appends the footer block index
// (wire.hpp) that enables mmap + seek + parallel decode. Options.index
// turns that off (the resulting file is still a valid v3 trace — readers
// treat the index as optional).
class StreamTraceWriter {
 public:
  struct Options {
    bool index = true;  // v3 only: append the footer block index
  };

  // Writes the header/magic immediately. v3 streams must be binary.
  StreamTraceWriter(std::ostream& os, TraceFormat format)
      : StreamTraceWriter(os, format, Options{}) {}
  StreamTraceWriter(std::ostream& os, TraceFormat format, Options options);
  void write(const Event& e);
  void write(const std::vector<Event>& events) {
    for (const Event& e : events) write(e);
  }
  // Flushes the pending block and writes the footer (+ index). Must be
  // called exactly once; no writes may follow.
  void finish();

  std::uint64_t events_written() const { return count_; }
  std::uint64_t bytes_written() const { return bytes_; }

 private:
  void flush_block();

  std::ostream& os_;
  TraceFormat format_;
  Options options_;
  bool finished_ = false;
  std::uint64_t bytes_ = 0;  // v3: file offset of the next byte
  std::uint64_t count_ = 0;
  std::uint64_t checksum_;
  bool have_prev_ = false;
  std::uint64_t prev_seq_ = 0;
  std::vector<Event> block_;    // v3: events pending in the open block
  std::string scratch_;         // v3: encode buffer reused across blocks
  std::vector<wire::IndexEntry> index_;
};

// Streams opened for v3 traffic should be binary; text formats tolerate
// either. Writers require strictly increasing sequence numbers.
void write_trace(std::ostream& os, const Trace& trace,
                 TraceFormat format = TraceFormat::kV2,
                 StreamTraceWriter::Options options = {});
std::string trace_to_string(const Trace& trace,
                            TraceFormat format = TraceFormat::kV2,
                            StreamTraceWriter::Options options = {});

// The checksum a v2 or v3 footer carries for `trace`; identical across
// formats, so conversion preserves it.
std::uint64_t trace_checksum(const Trace& trace);

// Strict readers: return nullopt and fill *error on malformed input.
std::optional<Trace> read_trace(std::istream& is, std::string* error = nullptr);
// Path overload: opens the file itself, which unlocks the mmap and (for
// indexed v3 with jobs > 1) parallel-decode fast paths of the streaming
// reader. Accepts and rejects exactly the same inputs as the stream form.
std::optional<Trace> read_trace(const std::string& path,
                                std::string* error = nullptr, int jobs = 1);
std::optional<Trace> trace_from_string(const std::string& text,
                                       std::string* error = nullptr);

// Result of a salvage read: every recoverable event plus diagnostics
// describing everything that had to be dropped.
struct SalvageReport {
  Trace trace;              // the recovered events
  int version = 0;          // 0 when the header is missing/unrecognized
  bool complete = false;    // true iff nothing was wrong (strict would pass)
  // Non-comment lines (text) or header-counted events (v3) dropped.
  std::size_t events_dropped = 0;
  std::vector<std::string> diagnostics;  // per-defect messages (capped)

  std::string summary() const;  // one human-readable line
};

// Tolerant readers: never fail. A missing header, a garbled line, a
// truncated tail, or a bad footer ends the text prefix (or adds a
// diagnostic); a damaged v3 block is skipped by name while later blocks
// still load.
SalvageReport read_trace_salvage(std::istream& is);
// Path overload: same fast paths as the path form of read_trace, same
// block-granularity recovery and diagnostics as the stream form.
SalvageReport read_trace_salvage(const std::string& path, int jobs = 1);
SalvageReport salvage_trace_from_string(const std::string& text);

}  // namespace wolf
