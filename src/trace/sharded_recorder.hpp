// Sharded, lock-free trace recording.
//
// TraceRecorder funnels every instrumentation event through one mutable
// vector, so multi-threaded substrates must serialize emission around it —
// the recording cost the paper's Table-1 "slowdown" column measures.
// ShardedTraceRecorder removes the shared-sink bottleneck the way a
// shard-per-core design would: each recording thread appends to its own
// cache-line-padded buffer, and the only shared write is a relaxed
// fetch_add on the global sequence ticket that defines the trace's total
// order. No mutex is taken on the hot path (the registry mutex is touched
// once per thread, at first emission).
//
// take() performs a deterministic k-way merge of the shard buffers by
// sequence number. Per-shard buffers are seq-sorted by construction (a
// thread's tickets are monotonic), so the merge reproduces the global
// emission order exactly: when callers serialize emission (as the rt
// executor's monitor does), the merged trace is byte-identical to what the
// serial TraceRecorder records from the same event stream.
//
// Thread contract: on_event()/shard() may be called concurrently from any
// number of threads. take()/clear() must be externally synchronized with
// all recording threads (join them first); joining establishes the
// happens-before edge that makes the shard buffers safe to read.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "trace/recorder.hpp"

namespace wolf {

class ShardedTraceRecorder final : public TraceSink {
 public:
  // One thread's private event buffer. alignas rounds each shard up to its
  // own cache lines, so concurrent appends by different threads never
  // false-share buffer metadata.
  class alignas(64) Shard {
   public:
    void record(Event e) {
      e.seq = ticket_->fetch_add(1, std::memory_order_relaxed);
      events_.push_back(e);
    }

   private:
    friend class ShardedTraceRecorder;
    explicit Shard(std::atomic<std::uint64_t>* ticket) : ticket_(ticket) {}

    std::atomic<std::uint64_t>* ticket_;
    std::vector<Event> events_;
  };

  ShardedTraceRecorder();

  // The calling thread's shard, registered on first use. After the first
  // call this is a thread-local cache hit — no shared state is touched.
  Shard& shard();

  // TraceSink: stamps a ticket and appends to the calling thread's shard.
  // `e.seq` on input is ignored, exactly like TraceRecorder.
  void on_event(Event e) override { shard().record(e); }

  // Deterministic k-way merge by seq. Requires all recording threads to be
  // quiescent (see the thread contract above). Leaves the recorder empty
  // and reusable; shards stay registered so cached handles remain valid.
  Trace take();

  // Drops everything recorded so far (same synchronization requirement).
  void clear();

  std::size_t shard_count() const;

 private:
  // Instance ids are never reused, so a stale thread-local cache entry can
  // never alias a new recorder placed at a freed recorder's address.
  const std::uint64_t id_;
  alignas(64) std::atomic<std::uint64_t> ticket_{0};
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace wolf
