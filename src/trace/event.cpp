#include "trace/event.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace wolf {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kThreadBegin:
      return "begin";
    case EventKind::kThreadEnd:
      return "end";
    case EventKind::kLockAcquire:
      return "acquire";
    case EventKind::kLockRelease:
      return "release";
    case EventKind::kThreadStart:
      return "start";
    case EventKind::kThreadJoin:
      return "join";
  }
  return "?";
}

std::string Event::to_string() const {
  std::ostringstream os;
  os << '#' << seq << " t" << thread << ' ' << wolf::to_string(kind);
  switch (kind) {
    case EventKind::kLockAcquire:
    case EventKind::kLockRelease:
      os << " lock=" << lock << " @" << index().to_string();
      break;
    case EventKind::kThreadStart:
    case EventKind::kThreadJoin:
      os << " t" << other << " @" << index().to_string();
      break;
    default:
      break;
  }
  return os.str();
}

std::vector<ThreadId> Trace::threads() const {
  std::set<ThreadId> ids;
  for (const Event& e : events) {
    ids.insert(e.thread);
    if (e.other != kInvalidThread) ids.insert(e.other);
  }
  return {ids.begin(), ids.end()};
}

ThreadId Trace::max_thread_id() const {
  ThreadId m = -1;
  for (const Event& e : events) {
    m = std::max(m, e.thread);
    m = std::max(m, e.other);
  }
  return m;
}

}  // namespace wolf
