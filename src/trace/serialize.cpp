#include "trace/serialize.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "support/check.hpp"
#include "trace/trace_reader.hpp"
#include "trace/wire.hpp"

namespace wolf {

const char* to_string(TraceFormat format) {
  switch (format) {
    case TraceFormat::kV1:
      return "v1";
    case TraceFormat::kV2:
      return "v2";
    case TraceFormat::kV3:
      return "v3";
  }
  return "?";
}

std::optional<TraceFormat> trace_format_from_string(std::string_view name) {
  if (name == "v1") return TraceFormat::kV1;
  if (name == "v2") return TraceFormat::kV2;
  if (name == "v3") return TraceFormat::kV3;
  return std::nullopt;
}

StreamTraceWriter::StreamTraceWriter(std::ostream& os, TraceFormat format,
                                     Options options)
    : os_(os),
      format_(format),
      options_(options),
      checksum_(wire::kChecksumSeed) {
  if (format_ == TraceFormat::kV3) {
    os_.write(wire::kMagicV3, sizeof wire::kMagicV3);
    bytes_ = sizeof wire::kMagicV3;
    block_.reserve(wire::kBlockEvents);
  } else {
    os_ << (format_ == TraceFormat::kV1 ? wire::kHeaderV1 : wire::kHeaderV2)
        << '\n';
  }
}

void StreamTraceWriter::write(const Event& e) {
  WOLF_CHECK_MSG(!finished_, "trace writer already finished");
  WOLF_CHECK_MSG(!have_prev_ || e.seq > prev_seq_,
                 "trace writer requires strictly increasing seq");
  prev_seq_ = e.seq;
  have_prev_ = true;
  checksum_ = wire::checksum_event(checksum_, e);
  ++count_;
  if (format_ == TraceFormat::kV3) {
    block_.push_back(e);
    if (block_.size() >= wire::kBlockEvents) flush_block();
    return;
  }
  os_ << e.seq << ' ' << to_string(e.kind) << ' ' << e.thread << ' ' << e.site
      << ' ' << e.occurrence << ' ' << e.lock << ' ' << e.other << '\n';
}

void StreamTraceWriter::flush_block() {
  if (block_.empty()) return;
  std::string& payload = scratch_;
  payload.clear();
  std::uint64_t block_checksum = wire::kChecksumSeed;
  std::uint64_t prev = 0;
  for (std::size_t j = 0; j < block_.size(); ++j) {
    const Event& e = block_[j];
    wire::put_event(payload, e, j == 0, prev);
    prev = e.seq;
    block_checksum = wire::checksum_event(block_checksum, e);
  }
  std::string frame;
  frame.push_back(wire::kBlockTag);
  wire::put_varint(frame, block_.size());
  wire::put_varint(frame, payload.size());
  const std::size_t header_bytes = frame.size();
  wire::IndexEntry entry;
  entry.offset = bytes_;
  entry.first_seq = block_.front().seq;
  entry.last_seq = block_.back().seq;
  entry.count = block_.size();
  entry.chain = checksum_;  // write() already chained this block's events
  index_.push_back(entry);
  os_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  os_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  frame.clear();
  wire::put_u64le(frame, block_checksum);
  os_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  bytes_ += header_bytes + payload.size() + 8;
  block_.clear();
}

void StreamTraceWriter::finish() {
  WOLF_CHECK_MSG(!finished_, "trace writer already finished");
  finished_ = true;
  if (format_ != TraceFormat::kV3) {
    if (format_ == TraceFormat::kV2) {
      os_ << wire::kFooterPrefix << ' ' << count_ << ' '
          << wire::to_hex(checksum_) << '\n';
    }
    return;
  }
  flush_block();
  std::string frame;
  frame.push_back(wire::kFooterTag);
  wire::put_varint(frame, count_);
  wire::put_u64le(frame, checksum_);
  os_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  bytes_ += frame.size();
  if (options_.index) {
    frame.clear();
    wire::put_index_section(frame, index_, bytes_);
    os_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    bytes_ += frame.size();
  }
}

void write_trace(std::ostream& os, const Trace& trace, TraceFormat format,
                 StreamTraceWriter::Options options) {
  StreamTraceWriter writer(os, format, options);
  writer.write(trace.events);
  writer.finish();
}

std::string trace_to_string(const Trace& trace, TraceFormat format,
                            StreamTraceWriter::Options options) {
  std::ostringstream os;
  write_trace(os, trace, format, options);
  return os.str();
}

std::uint64_t trace_checksum(const Trace& trace) {
  std::uint64_t checksum = wire::kChecksumSeed;
  for (const Event& e : trace.events)
    checksum = wire::checksum_event(checksum, e);
  return checksum;
}

// Both batch readers drain the streaming reader (trace_reader.cpp), so the
// batch and block-by-block paths accept exactly the same inputs and report
// exactly the same defects.

namespace {

std::optional<Trace> drain_strict(StreamTraceReader& reader,
                                  std::string* error) {
  Trace trace;
  std::vector<Event> block;
  while (reader.next_block(block))
    trace.events.insert(trace.events.end(), block.begin(), block.end());
  if (!reader.ok()) {
    if (error != nullptr) *error = reader.error();
    return std::nullopt;
  }
  return trace;
}

}  // namespace

std::optional<Trace> read_trace(std::istream& is, std::string* error) {
  StreamTraceReader reader(is, StreamTraceReader::Mode::kStrict);
  return drain_strict(reader, error);
}

std::optional<Trace> read_trace(const std::string& path, std::string* error,
                                int jobs) {
  StreamTraceReader::Options options;
  options.jobs = jobs;
  StreamTraceReader reader(path, StreamTraceReader::Mode::kStrict, options);
  return drain_strict(reader, error);
}

std::optional<Trace> trace_from_string(const std::string& text,
                                       std::string* error) {
  std::istringstream is{text};
  return read_trace(is, error);
}

namespace {

// Semantic lock-discipline validation over salvaged events. Format-level
// salvage catches framing damage (and v3 checksums catch payload damage),
// but a flipped bit inside a *text* trace can yield a line that still
// parses — e.g. a release naming a lock its thread never acquired — and
// such an event would fire invariant checks deep inside analysis. The
// salvage contract is that the returned prefix is safe to analyze, so walk
// the events with per-thread held stacks and cut at the first violation.
void validate_salvaged_events(SalvageReport& report) {
  std::unordered_map<ThreadId, std::vector<LockId>> held;
  std::size_t bad = report.trace.events.size();
  std::string what;
  for (std::size_t i = 0; i < report.trace.events.size(); ++i) {
    const Event& e = report.trace.events[i];
    std::ostringstream os;
    if (e.thread < 0) {
      os << "negative thread id " << e.thread;
    } else if ((e.kind == EventKind::kThreadStart ||
                e.kind == EventKind::kThreadJoin) &&
               e.other < 0) {
      os << "negative child thread id " << e.other;
    } else if (e.kind == EventKind::kLockAcquire) {
      held[e.thread].push_back(e.lock);
      continue;
    } else if (e.kind == EventKind::kLockRelease) {
      auto& stack = held[e.thread];
      auto it = std::find(stack.rbegin(), stack.rend(), e.lock);
      if (it == stack.rend()) {
        os << "t" << e.thread << " releases lock " << e.lock
           << " it does not hold";
      } else {
        stack.erase(std::next(it).base());
        continue;
      }
    } else {
      continue;
    }
    bad = i;
    what = os.str();
    break;
  }
  if (bad == report.trace.events.size()) return;
  const std::size_t dropped = report.trace.events.size() - bad;
  std::ostringstream os;
  os << "event " << bad << " (seq " << report.trace.events[bad].seq
     << "): " << what << "; dropping it and the " << (dropped - 1)
     << " event(s) after it";
  report.trace.events.resize(bad);
  report.events_dropped += dropped;
  report.complete = false;
  report.diagnostics.push_back(os.str());
}

// Drains a salvage-mode reader into a batch report, applying the semantic
// prefix validation both the stream and path entry points share.
SalvageReport drain_salvage(StreamTraceReader& reader) {
  SalvageReport report;
  std::vector<Event> block;
  while (reader.next_block(block))
    report.trace.events.insert(report.trace.events.end(), block.begin(),
                               block.end());
  report.version = reader.version();
  report.complete = reader.complete();
  report.events_dropped = reader.events_dropped();
  report.diagnostics = reader.diagnostics();
  validate_salvaged_events(report);
  return report;
}

}  // namespace

SalvageReport read_trace_salvage(std::istream& is) {
  StreamTraceReader reader(is, StreamTraceReader::Mode::kSalvage);
  return drain_salvage(reader);
}

SalvageReport read_trace_salvage(const std::string& path, int jobs) {
  StreamTraceReader::Options options;
  options.jobs = jobs;
  StreamTraceReader reader(path, StreamTraceReader::Mode::kSalvage, options);
  return drain_salvage(reader);
}

SalvageReport salvage_trace_from_string(const std::string& text) {
  std::istringstream is{text};
  return read_trace_salvage(is);
}

std::string SalvageReport::summary() const {
  std::ostringstream os;
  os << "salvaged " << trace.events.size() << " event(s)";
  if (version > 0) os << " from a v" << version << " trace";
  if (complete) {
    os << " (complete)";
  } else {
    os << " (incomplete: " << events_dropped << " dropped";
    if (!diagnostics.empty()) os << "; " << diagnostics.front();
    os << ")";
  }
  return os.str();
}

}  // namespace wolf
