#include "trace/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/rng.hpp"
#include "support/str.hpp"

namespace wolf {

namespace {

constexpr const char* kHeaderV1 = "# wolf-trace v1";
constexpr const char* kHeaderV2 = "# wolf-trace v2";
constexpr const char* kFooterPrefix = "# wolf-trace-end";
constexpr std::uint64_t kChecksumSeed = 0x9e3779b97f4a7c15ULL;
constexpr std::size_t kMaxDiagnostics = 8;

std::optional<EventKind> kind_from_string(std::string_view s) {
  if (s == "begin") return EventKind::kThreadBegin;
  if (s == "end") return EventKind::kThreadEnd;
  if (s == "acquire") return EventKind::kLockAcquire;
  if (s == "release") return EventKind::kLockRelease;
  if (s == "start") return EventKind::kThreadStart;
  if (s == "join") return EventKind::kThreadJoin;
  return std::nullopt;
}

void fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

std::uint64_t checksum_event(std::uint64_t h, const Event& e) {
  h = mix64(h ^ e.seq);
  h = mix64(h ^ static_cast<std::uint64_t>(e.kind));
  h = mix64(h ^ static_cast<std::uint64_t>(e.thread));
  h = mix64(h ^ static_cast<std::uint64_t>(e.site));
  h = mix64(h ^ static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(e.occurrence)));
  h = mix64(h ^ static_cast<std::uint64_t>(e.lock));
  h = mix64(h ^ static_cast<std::uint64_t>(e.other));
  return h;
}

std::string to_hex(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

bool parse_hex(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  out = v;
  return true;
}

// Parses one event line; on failure fills `err` with a message naming
// `lineno`.
bool parse_event_line(std::string_view text, int lineno, Event& out,
                      std::string& err) {
  std::istringstream fields{std::string(text)};
  std::string kind_str;
  long long seq = 0, thread = 0, site = 0, occ = 0, lock = 0, other = 0;
  if (!(fields >> seq >> kind_str >> thread >> site >> occ >> lock >> other)) {
    err = "malformed event at line " + std::to_string(lineno);
    return false;
  }
  auto kind = kind_from_string(kind_str);
  if (!kind) {
    err = "unknown event kind '" + kind_str + "' at line " +
          std::to_string(lineno);
    return false;
  }
  out.seq = static_cast<std::uint64_t>(seq);
  out.kind = *kind;
  out.thread = static_cast<ThreadId>(thread);
  out.site = static_cast<SiteId>(site);
  out.occurrence = static_cast<std::int32_t>(occ);
  out.lock = static_cast<LockId>(lock);
  out.other = static_cast<ThreadId>(other);
  return true;
}

// Parses "# wolf-trace-end <count> <checksum-hex>".
bool parse_footer(std::string_view text, std::uint64_t& count,
                  std::uint64_t& checksum) {
  std::string_view rest = trim(text.substr(std::string_view(kFooterPrefix).size()));
  std::vector<std::string> parts = split(rest, ' ');
  // split may produce empties on repeated spaces; filter them.
  std::vector<std::string> fields;
  for (std::string& p : parts)
    if (!p.empty()) fields.push_back(std::move(p));
  if (fields.size() != 2) return false;
  long long n = 0;
  if (!parse_int(fields[0], n) || n < 0) return false;
  if (!parse_hex(fields[1], checksum)) return false;
  count = static_cast<std::uint64_t>(n);
  return true;
}

}  // namespace

void write_trace(std::ostream& os, const Trace& trace, TraceFormat format) {
  os << (format == TraceFormat::kV1 ? kHeaderV1 : kHeaderV2) << '\n';
  std::uint64_t checksum = kChecksumSeed;
  for (const Event& e : trace.events) {
    os << e.seq << ' ' << to_string(e.kind) << ' ' << e.thread << ' ' << e.site
       << ' ' << e.occurrence << ' ' << e.lock << ' ' << e.other << '\n';
    checksum = checksum_event(checksum, e);
  }
  if (format == TraceFormat::kV2) {
    os << kFooterPrefix << ' ' << trace.events.size() << ' '
       << to_hex(checksum) << '\n';
  }
}

std::string trace_to_string(const Trace& trace, TraceFormat format) {
  std::ostringstream os;
  write_trace(os, trace, format);
  return os.str();
}

std::uint64_t trace_checksum(const Trace& trace) {
  std::uint64_t checksum = kChecksumSeed;
  for (const Event& e : trace.events) checksum = checksum_event(checksum, e);
  return checksum;
}

std::optional<Trace> read_trace(std::istream& is, std::string* error) {
  std::string line;
  if (!std::getline(is, line)) {
    fail(error, "missing wolf-trace header");
    return std::nullopt;
  }
  int version = 0;
  auto header = trim(line);
  if (header == kHeaderV1) version = 1;
  else if (header == kHeaderV2) version = 2;
  else {
    fail(error, "missing wolf-trace header");
    return std::nullopt;
  }

  Trace trace;
  int lineno = 1;
  bool footer_seen = false;
  std::uint64_t footer_count = 0, footer_checksum = 0;
  std::uint64_t checksum = kChecksumSeed;
  bool have_prev = false;
  std::uint64_t prev_seq = 0;
  while (std::getline(is, line)) {
    ++lineno;
    auto text = trim(line);
    if (text.empty()) continue;
    if (text.front() == '#') {
      if (version == 2 && starts_with(text, kFooterPrefix)) {
        if (footer_seen) {
          fail(error,
               "duplicate wolf-trace footer at line " + std::to_string(lineno));
          return std::nullopt;
        }
        if (!parse_footer(text, footer_count, footer_checksum)) {
          fail(error,
               "malformed wolf-trace footer at line " + std::to_string(lineno));
          return std::nullopt;
        }
        footer_seen = true;
      }
      continue;
    }
    if (footer_seen) {
      fail(error,
           "event after wolf-trace footer at line " + std::to_string(lineno));
      return std::nullopt;
    }
    Event e;
    std::string err;
    if (!parse_event_line(text, lineno, e, err)) {
      fail(error, err);
      return std::nullopt;
    }
    if (have_prev && e.seq <= prev_seq) {
      fail(error, "non-monotonic sequence number at line " +
                      std::to_string(lineno));
      return std::nullopt;
    }
    prev_seq = e.seq;
    have_prev = true;
    checksum = checksum_event(checksum, e);
    trace.events.push_back(e);
  }
  if (version == 2) {
    if (!footer_seen) {
      fail(error, "missing wolf-trace footer (truncated trace?)");
      return std::nullopt;
    }
    if (footer_count != trace.events.size()) {
      fail(error, "footer event count mismatch (footer says " +
                      std::to_string(footer_count) + ", trace has " +
                      std::to_string(trace.events.size()) + ")");
      return std::nullopt;
    }
    if (footer_checksum != checksum) {
      fail(error, "trace checksum mismatch");
      return std::nullopt;
    }
  }
  return trace;
}

std::optional<Trace> trace_from_string(const std::string& text,
                                       std::string* error) {
  std::istringstream is{text};
  return read_trace(is, error);
}

SalvageReport read_trace_salvage(std::istream& is) {
  SalvageReport report;
  auto diagnose = [&](std::string msg) {
    if (report.diagnostics.size() < kMaxDiagnostics)
      report.diagnostics.push_back(std::move(msg));
  };

  std::string line;
  if (!std::getline(is, line)) {
    diagnose("empty input");
    return report;
  }
  int lineno = 1;
  bool reparse_first = false;
  auto header = trim(line);
  if (header == kHeaderV1) {
    report.version = 1;
  } else if (header == kHeaderV2) {
    report.version = 2;
  } else {
    diagnose("missing wolf-trace header");
    reparse_first = true;  // maybe only the header was lost
  }

  bool prefix_open = true;  // still extending the valid prefix
  bool footer_seen = false;
  std::uint64_t footer_count = 0, footer_checksum = 0;
  std::uint64_t checksum = kChecksumSeed;
  bool have_prev = false;
  std::uint64_t prev_seq = 0;

  auto consume = [&](std::string_view text) {
    if (text.empty()) return;
    if (text.front() == '#') {
      // Footer lines matter for v2 and for headerless input (which may be a
      // v2 trace whose first line was lost); under v1 they are comments.
      if (report.version != 1 && starts_with(text, kFooterPrefix)) {
        if (footer_seen) {
          diagnose("duplicate wolf-trace footer at line " +
                   std::to_string(lineno));
          return;
        }
        if (!parse_footer(text, footer_count, footer_checksum)) {
          diagnose("malformed wolf-trace footer at line " +
                   std::to_string(lineno));
          return;
        }
        footer_seen = true;
      }
      return;
    }
    if (!prefix_open || footer_seen) {
      if (footer_seen && prefix_open)
        diagnose("event after wolf-trace footer at line " +
                 std::to_string(lineno));
      prefix_open = false;
      ++report.events_dropped;
      return;
    }
    Event e;
    std::string err;
    if (!parse_event_line(text, lineno, e, err)) {
      diagnose(err);
      prefix_open = false;
      ++report.events_dropped;
      return;
    }
    if (have_prev && e.seq <= prev_seq) {
      diagnose("non-monotonic sequence number at line " +
               std::to_string(lineno));
      prefix_open = false;
      ++report.events_dropped;
      return;
    }
    prev_seq = e.seq;
    have_prev = true;
    checksum = checksum_event(checksum, e);
    report.trace.events.push_back(e);
  };

  if (reparse_first) consume(header);
  while (std::getline(is, line)) {
    ++lineno;
    consume(trim(line));
  }

  if (report.version == 2 && !footer_seen) {
    diagnose("missing wolf-trace footer (truncated trace?)");
  } else if (footer_seen) {
    if (footer_count != report.trace.events.size()) {
      diagnose("footer event count mismatch (footer says " +
               std::to_string(footer_count) + ", salvaged " +
               std::to_string(report.trace.events.size()) + ")");
    } else if (footer_checksum != checksum) {
      diagnose("trace checksum mismatch");
    }
  }
  report.complete = report.diagnostics.empty() && report.events_dropped == 0;
  return report;
}

SalvageReport salvage_trace_from_string(const std::string& text) {
  std::istringstream is{text};
  return read_trace_salvage(is);
}

std::string SalvageReport::summary() const {
  std::ostringstream os;
  os << "salvaged " << trace.events.size() << " event(s)";
  if (version > 0) os << " from a v" << version << " trace";
  if (complete) {
    os << " (complete)";
  } else {
    os << " (incomplete: " << events_dropped << " line(s) dropped";
    if (!diagnostics.empty()) os << "; " << diagnostics.front();
    os << ")";
  }
  return os.str();
}

}  // namespace wolf
