#include "trace/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/str.hpp"

namespace wolf {

namespace {

constexpr const char* kHeader = "# wolf-trace v1";

std::optional<EventKind> kind_from_string(std::string_view s) {
  if (s == "begin") return EventKind::kThreadBegin;
  if (s == "end") return EventKind::kThreadEnd;
  if (s == "acquire") return EventKind::kLockAcquire;
  if (s == "release") return EventKind::kLockRelease;
  if (s == "start") return EventKind::kThreadStart;
  if (s == "join") return EventKind::kThreadJoin;
  return std::nullopt;
}

void fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

void write_trace(std::ostream& os, const Trace& trace) {
  os << kHeader << '\n';
  for (const Event& e : trace.events) {
    os << e.seq << ' ' << to_string(e.kind) << ' ' << e.thread << ' ' << e.site
       << ' ' << e.occurrence << ' ' << e.lock << ' ' << e.other << '\n';
  }
}

std::string trace_to_string(const Trace& trace) {
  std::ostringstream os;
  write_trace(os, trace);
  return os.str();
}

std::optional<Trace> read_trace(std::istream& is, std::string* error) {
  std::string line;
  if (!std::getline(is, line) || trim(line) != kHeader) {
    fail(error, "missing wolf-trace header");
    return std::nullopt;
  }
  Trace trace;
  int lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    auto text = trim(line);
    if (text.empty() || text.front() == '#') continue;
    std::istringstream fields{std::string(text)};
    std::string kind_str;
    long long seq = 0, thread = 0, site = 0, occ = 0, lock = 0, other = 0;
    if (!(fields >> seq >> kind_str >> thread >> site >> occ >> lock >>
          other)) {
      fail(error, "malformed event at line " + std::to_string(lineno));
      return std::nullopt;
    }
    auto kind = kind_from_string(kind_str);
    if (!kind) {
      fail(error, "unknown event kind '" + kind_str + "' at line " +
                      std::to_string(lineno));
      return std::nullopt;
    }
    Event e;
    e.seq = static_cast<std::uint64_t>(seq);
    e.kind = *kind;
    e.thread = static_cast<ThreadId>(thread);
    e.site = static_cast<SiteId>(site);
    e.occurrence = static_cast<std::int32_t>(occ);
    e.lock = static_cast<LockId>(lock);
    e.other = static_cast<ThreadId>(other);
    trace.events.push_back(e);
  }
  return trace;
}

std::optional<Trace> trace_from_string(const std::string& text,
                                       std::string* error) {
  std::istringstream is{text};
  return read_trace(is, error);
}

}  // namespace wolf
