#include "trace/sharded_recorder.hpp"

#include <algorithm>
#include <queue>

#include "obs/counters.hpp"

namespace wolf {

namespace {
const obs::Counter kRecordedEvents("trace.recorded_events");
}  // namespace

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// One-entry per-thread cache of the last recorder this thread touched.
// Registration (the mutex) is paid once per (thread, recorder) pair; every
// later on_event resolves the shard with two thread-local loads.
struct ShardCache {
  std::uint64_t recorder_id = 0;
  ShardedTraceRecorder::Shard* shard = nullptr;
};

thread_local ShardCache tls_shard_cache;

}  // namespace

ShardedTraceRecorder::ShardedTraceRecorder() : id_(next_recorder_id()) {}

ShardedTraceRecorder::Shard& ShardedTraceRecorder::shard() {
  ShardCache& cache = tls_shard_cache;
  if (cache.recorder_id == id_) return *cache.shard;
  std::lock_guard<std::mutex> lk(registry_mu_);
  shards_.push_back(std::unique_ptr<Shard>(new Shard(&ticket_)));
  cache.recorder_id = id_;
  cache.shard = shards_.back().get();
  return *cache.shard;
}

Trace ShardedTraceRecorder::take() {
  std::lock_guard<std::mutex> lk(registry_mu_);
  Trace trace;
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->events_.size();
  trace.events.reserve(total);
  kRecordedEvents.add(total);

  // K-way merge by seq over the seq-sorted shard buffers: a min-heap of
  // (next seq, shard index). Tickets are a permutation of 0..total-1, so the
  // result is the globally seq-ordered trace, independent of shard count or
  // registration order.
  using Head = std::pair<std::uint64_t, std::size_t>;
  std::priority_queue<Head, std::vector<Head>, std::greater<Head>> heap;
  std::vector<std::size_t> cursor(shards_.size(), 0);
  for (std::size_t i = 0; i < shards_.size(); ++i)
    if (!shards_[i]->events_.empty())
      heap.emplace(shards_[i]->events_.front().seq, i);
  while (!heap.empty()) {
    const auto [seq, i] = heap.top();
    heap.pop();
    trace.events.push_back(shards_[i]->events_[cursor[i]]);
    if (++cursor[i] < shards_[i]->events_.size())
      heap.emplace(shards_[i]->events_[cursor[i]].seq, i);
  }

  for (auto& s : shards_) s->events_.clear();
  ticket_.store(0, std::memory_order_relaxed);
  return trace;
}

void ShardedTraceRecorder::clear() {
  std::lock_guard<std::mutex> lk(registry_mu_);
  for (auto& s : shards_) s->events_.clear();
  ticket_.store(0, std::memory_order_relaxed);
}

std::size_t ShardedTraceRecorder::shard_count() const {
  std::lock_guard<std::mutex> lk(registry_mu_);
  return shards_.size();
}

}  // namespace wolf
