// Trace sinks. Substrates report instrumentation callbacks to a TraceSink;
// the standard sinks are TraceRecorder (serial: assigns global sequence
// numbers and accumulates a Trace) and ShardedTraceRecorder
// (trace/sharded_recorder.hpp — thread-safe, per-thread buffers, no lock on
// the hot path). A NullSink supports "uninstrumented" baseline runs for
// slowdown measurements.
#pragma once

#include <cstdint>

#include "trace/event.hpp"

namespace wolf {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  // `e.seq` is ignored on input; sinks that keep events assign their own
  // sequence numbers. Unless a sink documents itself thread-safe (as
  // ShardedTraceRecorder does), callers must already hold whatever lock
  // serializes the substrate's event emission (sim is single-threaded; rt
  // uses a global recording mutex).
  virtual void on_event(Event e) = 0;
};

class NullSink final : public TraceSink {
 public:
  void on_event(Event) override {}
};

class TraceRecorder final : public TraceSink {
 public:
  void on_event(Event e) override {
    e.seq = next_seq_++;
    trace_.events.push_back(e);
  }

  const Trace& trace() const { return trace_; }
  Trace take() {
    next_seq_ = 0;
    return std::move(trace_);
  }
  void clear() {
    trace_ = Trace{};
    next_seq_ = 0;
  }

 private:
  Trace trace_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace wolf
