// Counters — the funnel-statistics half of the observability layer
// (DESIGN.md §13).
//
// A process-wide CounterRegistry holds up to kMaxCounters named monotonic
// counters, sharded kCounterShards ways: each thread hashes to a shard and
// bumps a relaxed atomic slot there, so concurrent increments from the
// classification workers, the cycle-engine tasks and the rt substrate never
// contend on one cache line. snapshot() sums the shards per counter.
//
// Cost discipline: collection is OFF by default. Counter::add() is a single
// relaxed load + branch when disabled — cheap enough to leave in the
// detector's per-event and per-chain hot paths. The CLI flips it on when
// --metrics-out is given; tests and benches flip it explicitly.
//
// Determinism: counters only observe (nothing reads them back into control
// flow), so enabling them cannot change detection output. Counters
// registered `stable` count pipeline semantics (tuples, chains, cycles,
// edges, trials…) and are jobs-invariant on non-truncated runs; counters
// registered `stable=false` count scheduling artifacts (pool parks) and are
// excluded from the byte-stable metrics report (obs/report.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wolf::obs {

inline constexpr std::size_t kMaxCounters = 256;
inline constexpr std::size_t kCounterShards = 16;

// Global collection switch. Relaxed: a toggle is only guaranteed to cover
// work that starts after it (exactly what the CLI and tests need).
inline std::atomic<bool> g_counters_enabled{false};

inline bool counters_enabled() {
  return g_counters_enabled.load(std::memory_order_relaxed);
}
inline void set_counters_enabled(bool on) {
  g_counters_enabled.store(on, std::memory_order_relaxed);
}

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
  bool stable = true;
};

// A point-in-time reading: samples sorted by name. Per-run numbers come
// from subtracting a before-snapshot (delta below) because the registry is
// process-wide and monotonic.
struct CounterSnapshot {
  std::vector<CounterSample> samples;

  bool empty() const { return samples.empty(); }
  // Value by exact name; 0 when the counter never registered.
  std::uint64_t value(std::string_view name) const;
};

// after - before, per name. Counters absent from `before` keep their
// `after` value; zero-valued results are kept so the counter set of a run
// does not depend on which paths happened to fire.
CounterSnapshot delta(const CounterSnapshot& after,
                      const CounterSnapshot& before);

class CounterRegistry {
 public:
  static CounterRegistry& instance();

  // Interns `name` (idempotent: the same name always maps to the same id,
  // whichever thread registers first). Aborts if kMaxCounters distinct
  // names are exceeded.
  int intern(const char* name, bool stable = true);

  // Relaxed add into the calling thread's shard. Callers go through
  // Counter::add(), which applies the enabled() guard first.
  void add(int id, std::uint64_t n);

  CounterSnapshot snapshot() const;

  // Zeroes every slot (registrations are kept). Test hook; racing resets
  // with concurrent adds loses increments by design.
  void reset();

 private:
  CounterRegistry() = default;

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> slots[kMaxCounters] = {};
  };

  mutable std::mutex mu_;  // guards names_/stable_ registration
  std::vector<std::string> names_;
  std::vector<bool> stable_;
  Shard shards_[kCounterShards];
};

// A named counter handle: interns once at construction (file-scope statics
// in the instrumented modules), then add() is branch + relaxed increment.
class Counter {
 public:
  explicit Counter(const char* name, bool stable = true)
      : id_(CounterRegistry::instance().intern(name, stable)) {}

  void add(std::uint64_t n = 1) const {
    if (!counters_enabled()) return;
    CounterRegistry::instance().add(id_, n);
  }

  int id() const { return id_; }

 private:
  int id_;
};

}  // namespace wolf::obs
