#include "obs/progress.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace wolf::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_interval_ms{500};
std::atomic<ProgressWriter> g_writer{nullptr};
// Monotonic milliseconds at which the next heartbeat becomes due. 0 means
// "immediately", so the first tick after enabling always prints.
std::atomic<std::uint64_t> g_next_due_ms{0};

std::uint64_t mono_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void write_stderr(const char* line) { std::fprintf(stderr, "%s\n", line); }

}  // namespace

bool progress_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_progress_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
  g_next_due_ms.store(0, std::memory_order_relaxed);
}

void set_progress_interval_ms(std::uint64_t ms) {
  g_interval_ms.store(ms, std::memory_order_relaxed);
}

void set_progress_writer(ProgressWriter writer) {
  g_writer.store(writer, std::memory_order_relaxed);
}

void progress_tick(const char* phase, std::uint64_t done,
                   std::uint64_t total) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  const std::uint64_t now = mono_ms();
  std::uint64_t due = g_next_due_ms.load(std::memory_order_relaxed);
  if (now < due) return;
  // One winner per interval; losers drop their tick (another is coming).
  if (!g_next_due_ms.compare_exchange_strong(
          due, now + g_interval_ms.load(std::memory_order_relaxed),
          std::memory_order_relaxed))
    return;

  char line[160];
  if (total > 0)
    std::snprintf(line, sizeof(line), "wolf: %s %llu/%llu", phase,
                  static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total));
  else
    std::snprintf(line, sizeof(line), "wolf: %s %llu", phase,
                  static_cast<unsigned long long>(done));
  ProgressWriter writer = g_writer.load(std::memory_order_relaxed);
  (writer != nullptr ? writer : write_stderr)(line);
}

}  // namespace wolf::obs
