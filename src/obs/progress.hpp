// Progress heartbeats — throttled stderr ticks for long enumerations
// (DESIGN.md §13). Off by default; the CLI enables them with --progress.
//
// Hot loops call progress_tick(phase, done, total) freely: when disabled it
// is one relaxed load; when enabled, a CAS on the next-due monotonic
// deadline makes exactly one thread print per interval, so heartbeats never
// serialize the cycle-engine workers.
//
// Determinism: heartbeats write to stderr only and read nothing back, so
// enabling them cannot change detection output.
#pragma once

#include <cstdint>

namespace wolf::obs {

bool progress_enabled();
void set_progress_enabled(bool on);

// Minimum milliseconds between printed heartbeats (default 500).
void set_progress_interval_ms(std::uint64_t ms);

// Replace the line writer (stderr by default). Pass nullptr to restore the
// default. Test hook; not thread-safe against concurrent ticks.
using ProgressWriter = void (*)(const char* line);
void set_progress_writer(ProgressWriter writer);

// Report that `done` units of `phase` are finished out of `total` (pass
// total=0 when the bound is unknown). Throttled; safe to call from any
// thread at any frequency.
void progress_tick(const char* phase, std::uint64_t done, std::uint64_t total);

}  // namespace wolf::obs
