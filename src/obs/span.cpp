#include "obs/span.hpp"

#include <functional>
#include <thread>

namespace wolf::obs {

SpanSink::SpanSink() : epoch_(std::chrono::steady_clock::now()) {}

double SpanSink::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

SpanId SpanSink::begin(const char* name, SpanId parent, std::uint64_t tag) {
  const double start = now_seconds();
  SpanRecord record;
  record.parent = parent;
  record.name = name;
  record.tag = tag;
  record.thread = std::hash<std::thread::id>{}(std::this_thread::get_id());
  record.start_seconds = start;

  std::lock_guard<std::mutex> lock(mu_);
  record.id = static_cast<SpanId>(spans_.size());
  spans_.push_back(std::move(record));
  return spans_.back().id;
}

void SpanSink::end(SpanId id) {
  const double now = now_seconds();
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) return;
  SpanRecord& record = spans_[static_cast<std::size_t>(id)];
  record.duration_seconds = now - record.start_seconds;
}

std::vector<SpanRecord> SpanSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<SpanRecord> SpanSink::take() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.swap(spans_);
  return out;
}

}  // namespace wolf::obs
