// Structured run reports — versioned JSON for a run's span tree, counter
// snapshot and per-cycle funnel verdicts (DESIGN.md §13). This is the
// machine-readable form of PAPER.md Tables 1–2: detected → pruned →
// infeasible → confirmed, per cycle, plus where the time went.
//
// Two serialization modes:
//   * full (default) — everything, with %.17g doubles so a full report
//     round-trips byte-exactly through from_json/to_json;
//   * stable — for byte-identical output across --jobs levels: timings,
//     span/thread ids and the jobs field are omitted, spans are sorted by
//     (name, tag) with the parent given by name, and only counters
//     registered `stable` are kept.
//
// obs stays dependency-free: the pipeline-shaped collect_metrics() helpers
// that fill RunMetrics from a WolfReport/MultiRunReport/DfReport live with
// those report types (core/metrics, baseline/df_pipeline).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace wolf::obs {

inline constexpr int kMetricsSchemaVersion = 1;

// One cycle's trip through the funnel. `run` is the multi-trace run index
// (0 for single-run pipelines); `outcome` is one of "pruned", "infeasible",
// "confirmed", "unconfirmed", "error"; `degraded` marks verdicts reached on
// a salvaged/partial basis.
struct FunnelEntry {
  std::uint64_t run = 0;
  std::uint64_t cycle = 0;
  std::string outcome;
  bool degraded = false;
};

struct RunMetrics {
  int schema_version = kMetricsSchemaVersion;
  std::string tool = "wolf";  // "wolf", "wolf-multi", "df", ...
  int jobs = 0;
  std::vector<SpanRecord> spans;
  CounterSnapshot counters;
  std::vector<FunnelEntry> funnel;
};

// Serializes `metrics` (see modes above). Output ends with a newline.
std::string to_json(const RunMetrics& metrics, bool stable = false);

// Parses a full-mode report produced by to_json (not a general JSON
// parser). Returns false (and leaves *out untouched) on malformed input.
bool from_json(const std::string& text, RunMetrics* out);

// Writes to_json(metrics, stable) to `path` ("-" for stdout). On failure
// returns false and sets *error when non-null.
bool write_metrics_file(const RunMetrics& metrics, const std::string& path,
                        bool stable, std::string* error);

}  // namespace wolf::obs
