// Spans — the timing half of the observability layer (DESIGN.md §13).
//
// A Span is an RAII stopwatch that records (name, tag, parent, thread,
// start, duration) into a SpanSink when it goes out of scope. The pipeline
// opens one span per phase ("phase/record", "phase/detect",
// "phase/feasibility", "phase/replay") and one per cycle-stage
// ("cycle/prune", "cycle/generate", "cycle/replay", tagged with the cycle
// index), replacing the hand-rolled Stopwatch bookkeeping that used to live
// behind PhaseTimings — which is now a view computed from the span tree
// (PhaseTimings::from_spans), so existing timing output is unchanged.
//
// Design constraints:
//   * deterministic-safe — spans only observe; nothing reads them back into
//     control flow, so recording cannot perturb detection output;
//   * cheap — spans are coarse (per phase / per cycle-stage, never per
//     event); the sink is a mutex-guarded vector, which is negligible next
//     to the work a span brackets;
//   * optional — a Span constructed with a null sink is a no-op behind a
//     single branch.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace wolf::obs {

using SpanId = std::int32_t;
inline constexpr SpanId kNoSpan = -1;

struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;  // kNoSpan for roots
  std::string name;         // e.g. "phase/detect", "cycle/prune"
  // Caller-chosen discriminator (the cycle or run index). Per-stage
  // aggregates sum durations in tag order, which keeps them deterministic
  // regardless of which worker thread recorded which span first.
  std::uint64_t tag = 0;
  std::uint64_t thread = 0;     // hashed std::thread::id of the recorder
  double start_seconds = 0;     // monotonic, relative to the sink's epoch
  double duration_seconds = 0;  // 0 while the span is still open
};

// Thread-safe collector for one run's span tree. Span ids are dense indices
// in begin() order; under parallel classification that order depends on
// scheduling, so consumers needing determinism sort by (name, tag) — see
// obs/report.hpp's stable mode.
class SpanSink {
 public:
  SpanSink();

  SpanId begin(const char* name, SpanId parent = kNoSpan,
               std::uint64_t tag = 0);
  void end(SpanId id);

  std::vector<SpanRecord> snapshot() const;
  // Moves the recorded spans out and clears the sink (the epoch is kept).
  std::vector<SpanRecord> take();

 private:
  double now_seconds() const;

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::chrono::steady_clock::time_point epoch_;
};

// RAII handle: begins on construction, ends on destruction (including
// unwinding out of a throwing stage). Null sink → no-op.
class Span {
 public:
  Span(SpanSink* sink, const char* name, SpanId parent = kNoSpan,
       std::uint64_t tag = 0)
      : sink_(sink) {
    if (sink_ != nullptr) id_ = sink_->begin(name, parent, tag);
  }
  ~Span() {
    if (sink_ != nullptr) sink_->end(id_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  SpanId id() const { return id_; }

 private:
  SpanSink* sink_;
  SpanId id_ = kNoSpan;
};

}  // namespace wolf::obs
