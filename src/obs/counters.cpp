#include "obs/counters.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace wolf::obs {

std::uint64_t CounterSnapshot::value(std::string_view name) const {
  for (const CounterSample& s : samples)
    if (s.name == name) return s.value;
  return 0;
}

CounterSnapshot delta(const CounterSnapshot& after,
                      const CounterSnapshot& before) {
  CounterSnapshot out;
  out.samples.reserve(after.samples.size());
  for (const CounterSample& s : after.samples) {
    CounterSample d = s;
    const std::uint64_t base = before.value(s.name);
    d.value = s.value >= base ? s.value - base : 0;
    out.samples.push_back(std::move(d));
  }
  return out;
}

CounterRegistry& CounterRegistry::instance() {
  static CounterRegistry registry;
  return registry;
}

int CounterRegistry::intern(const char* name, bool stable) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<int>(i);
  if (names_.size() >= kMaxCounters) {
    std::fprintf(stderr, "obs: counter limit (%zu) exceeded registering %s\n",
                 kMaxCounters, name);
    std::abort();
  }
  names_.emplace_back(name);
  stable_.push_back(stable);
  return static_cast<int>(names_.size() - 1);
}

namespace {

// Thread → shard assignment: round-robin at first use, so pool workers
// spread over shards instead of hashing onto the same slot.
std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return index;
}

}  // namespace

void CounterRegistry::add(int id, std::uint64_t n) {
  if (id < 0 || static_cast<std::size_t>(id) >= kMaxCounters) return;
  shards_[shard_index()].slots[static_cast<std::size_t>(id)].fetch_add(
      n, std::memory_order_relaxed);
}

CounterSnapshot CounterRegistry::snapshot() const {
  std::vector<std::pair<std::string, bool>> registered;
  {
    std::lock_guard<std::mutex> lock(mu_);
    registered.reserve(names_.size());
    for (std::size_t i = 0; i < names_.size(); ++i)
      registered.emplace_back(names_[i], stable_[i]);
  }
  CounterSnapshot out;
  out.samples.reserve(registered.size());
  for (std::size_t i = 0; i < registered.size(); ++i) {
    CounterSample s;
    s.name = registered[i].first;
    s.stable = registered[i].second;
    for (const Shard& shard : shards_)
      s.value += shard.slots[i].load(std::memory_order_relaxed);
    out.samples.push_back(std::move(s));
  }
  std::sort(out.samples.begin(), out.samples.end(),
            [](const CounterSample& a, const CounterSample& b) {
              return a.name < b.name;
            });
  return out;
}

void CounterRegistry::reset() {
  for (Shard& shard : shards_)
    for (std::atomic<std::uint64_t>& slot : shard.slots)
      slot.store(0, std::memory_order_relaxed);
}

}  // namespace wolf::obs
