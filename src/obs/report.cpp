#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>

namespace wolf::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// %.17g prints enough digits that strtod recovers the exact double, which
// is what makes the full-mode round-trip byte-stable.
void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

std::string parent_name(const std::vector<SpanRecord>& spans, SpanId parent) {
  if (parent == kNoSpan) return std::string();
  for (const SpanRecord& s : spans)
    if (s.id == parent) return s.name;
  return std::string();
}

}  // namespace

std::string to_json(const RunMetrics& metrics, bool stable) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema_version\": ";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%d", metrics.schema_version);
  out += buf;
  out += ",\n  \"tool\": ";
  append_escaped(out, metrics.tool);
  if (!stable) {
    out += ",\n  \"jobs\": ";
    std::snprintf(buf, sizeof(buf), "%d", metrics.jobs);
    out += buf;
  }

  std::vector<SpanRecord> spans = metrics.spans;
  if (stable)
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                if (a.name != b.name) return a.name < b.name;
                return a.tag < b.tag;
              });
  out += ",\n  \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_escaped(out, s.name);
    out += ", \"tag\": ";
    append_u64(out, s.tag);
    if (stable) {
      out += ", \"parent\": ";
      append_escaped(out, parent_name(metrics.spans, s.parent));
    } else {
      out += ", \"id\": ";
      std::snprintf(buf, sizeof(buf), "%d", s.id);
      out += buf;
      out += ", \"parent\": ";
      std::snprintf(buf, sizeof(buf), "%d", s.parent);
      out += buf;
      out += ", \"thread\": ";
      append_u64(out, s.thread);
      out += ", \"start\": ";
      append_double(out, s.start_seconds);
      out += ", \"duration\": ";
      append_double(out, s.duration_seconds);
    }
    out += "}";
  }
  out += spans.empty() ? "]" : "\n  ]";

  out += ",\n  \"counters\": [";
  bool first = true;
  for (const CounterSample& c : metrics.counters.samples) {
    if (stable && !c.stable) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    append_escaped(out, c.name);
    out += ", \"value\": ";
    append_u64(out, c.value);
    if (!stable) out += c.stable ? ", \"stable\": true" : ", \"stable\": false";
    out += "}";
  }
  out += first ? "]" : "\n  ]";

  std::vector<FunnelEntry> funnel = metrics.funnel;
  if (stable)
    std::sort(funnel.begin(), funnel.end(),
              [](const FunnelEntry& a, const FunnelEntry& b) {
                if (a.run != b.run) return a.run < b.run;
                return a.cycle < b.cycle;
              });
  out += ",\n  \"funnel\": [";
  for (std::size_t i = 0; i < funnel.size(); ++i) {
    const FunnelEntry& f = funnel[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"run\": ";
    append_u64(out, f.run);
    out += ", \"cycle\": ";
    append_u64(out, f.cycle);
    out += ", \"outcome\": ";
    append_escaped(out, f.outcome);
    out += f.degraded ? ", \"degraded\": true" : ", \"degraded\": false";
    out += "}";
  }
  out += funnel.empty() ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough shape to parse to_json's own output.

namespace {

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string text;  // raw number text for exact re-parse, or string value
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* get(const char* key) const {
    for (const auto& f : fields)
      if (f.first == key) return &f.second;
    return nullptr;
  }
};

struct Parser {
  const char* p;
  const char* end;
  bool ok = true;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r'))
      ++p;
  }
  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    ok = false;
    return false;
  }

  JsonValue parse_value() {
    JsonValue v;
    skip_ws();
    if (p >= end) {
      ok = false;
      return v;
    }
    switch (*p) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
        if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
          p += 4;
          v.kind = JsonValue::kBool;
          v.boolean = true;
          return v;
        }
        break;
      case 'f':
        if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
          p += 5;
          v.kind = JsonValue::kBool;
          return v;
        }
        break;
      default: return parse_number();
    }
    ok = false;
    return v;
  }

  JsonValue parse_string() {
    JsonValue v;
    v.kind = JsonValue::kString;
    if (!consume('"')) return v;
    while (p < end && *p != '"') {
      char c = *p++;
      if (c == '\\' && p < end) {
        char e = *p++;
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            if (end - p < 4) {
              ok = false;
              return v;
            }
            char hex[5] = {p[0], p[1], p[2], p[3], 0};
            c = static_cast<char>(std::strtoul(hex, nullptr, 16));
            p += 4;
            break;
          }
          default: c = e;
        }
      }
      v.text += c;
    }
    if (!consume('"')) ok = false;
    return v;
  }

  JsonValue parse_number() {
    JsonValue v;
    v.kind = JsonValue::kNumber;
    const char* start = p;
    while (p < end && (std::strchr("+-.eE", *p) != nullptr ||
                       (*p >= '0' && *p <= '9')))
      ++p;
    if (p == start) {
      ok = false;
      return v;
    }
    v.text.assign(start, p);
    v.number = std::strtod(v.text.c_str(), nullptr);
    return v;
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::kArray;
    consume('[');
    skip_ws();
    if (p < end && *p == ']') {
      ++p;
      return v;
    }
    while (ok) {
      v.items.push_back(parse_value());
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      consume(']');
      break;
    }
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::kObject;
    consume('{');
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
      return v;
    }
    while (ok) {
      JsonValue key = parse_string();
      if (!consume(':')) break;
      v.fields.emplace_back(key.text, parse_value());
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      consume('}');
      break;
    }
    return v;
  }
};

std::uint64_t as_u64(const JsonValue* v) {
  if (v == nullptr || v->kind != JsonValue::kNumber) return 0;
  return std::strtoull(v->text.c_str(), nullptr, 10);
}

}  // namespace

bool from_json(const std::string& text, RunMetrics* out) {
  Parser parser{text.data(), text.data() + text.size()};
  JsonValue root = parser.parse_value();
  if (!parser.ok || root.kind != JsonValue::kObject) return false;

  RunMetrics m;
  const JsonValue* v = root.get("schema_version");
  if (v == nullptr || v->kind != JsonValue::kNumber) return false;
  m.schema_version = static_cast<int>(v->number);
  if ((v = root.get("tool")) != nullptr) m.tool = v->text;
  if ((v = root.get("jobs")) != nullptr) m.jobs = static_cast<int>(v->number);

  if ((v = root.get("spans")) != nullptr) {
    for (const JsonValue& item : v->items) {
      SpanRecord s;
      const JsonValue* f;
      if ((f = item.get("id")) != nullptr)
        s.id = static_cast<SpanId>(f->number);
      if ((f = item.get("parent")) != nullptr &&
          f->kind == JsonValue::kNumber)
        s.parent = static_cast<SpanId>(f->number);
      if ((f = item.get("name")) != nullptr) s.name = f->text;
      s.tag = as_u64(item.get("tag"));
      s.thread = as_u64(item.get("thread"));
      if ((f = item.get("start")) != nullptr) s.start_seconds = f->number;
      if ((f = item.get("duration")) != nullptr)
        s.duration_seconds = f->number;
      m.spans.push_back(std::move(s));
    }
  }
  if ((v = root.get("counters")) != nullptr) {
    for (const JsonValue& item : v->items) {
      CounterSample c;
      const JsonValue* f;
      if ((f = item.get("name")) != nullptr) c.name = f->text;
      c.value = as_u64(item.get("value"));
      if ((f = item.get("stable")) != nullptr) c.stable = f->boolean;
      m.counters.samples.push_back(std::move(c));
    }
  }
  if ((v = root.get("funnel")) != nullptr) {
    for (const JsonValue& item : v->items) {
      FunnelEntry f;
      f.run = as_u64(item.get("run"));
      f.cycle = as_u64(item.get("cycle"));
      const JsonValue* field;
      if ((field = item.get("outcome")) != nullptr) f.outcome = field->text;
      if ((field = item.get("degraded")) != nullptr)
        f.degraded = field->boolean;
      m.funnel.push_back(std::move(f));
    }
  }
  *out = std::move(m);
  return true;
}

bool write_metrics_file(const RunMetrics& metrics, const std::string& path,
                        bool stable, std::string* error) {
  const std::string body = to_json(metrics, stable);
  if (path == "-") {
    std::fwrite(body.data(), 1, body.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) ==
                     body.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace wolf::obs
