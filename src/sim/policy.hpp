// Scheduling policies for the virtual-thread scheduler.
#pragma once

#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "trace/ids.hpp"

namespace wolf::sim {

class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;
  // Picks the next thread to run from the non-empty set of enabled threads
  // (ascending thread ids).
  virtual ThreadId pick(const std::vector<ThreadId>& enabled, Rng& rng) = 0;
};

// Uniformly random — the paper's recording scheduler ("tp ← a random thread
// from Enabled", Algorithm 1 line 9).
class RandomPolicy final : public SchedulePolicy {
 public:
  ThreadId pick(const std::vector<ThreadId>& enabled, Rng& rng) override {
    return enabled[rng.index(enabled)];
  }
};

// Round-robin over thread ids; deterministic, useful in unit tests.
class RoundRobinPolicy final : public SchedulePolicy {
 public:
  ThreadId pick(const std::vector<ThreadId>& enabled, Rng&) override {
    for (ThreadId t : enabled) {
      if (t > last_) {
        last_ = t;
        return t;
      }
    }
    last_ = enabled.front();
    return last_;
  }

 private:
  ThreadId last_ = -1;
};

// Runs a thread until it can no longer run, then moves to the next enabled
// one ("run-to-block"); biases toward long sequential stretches.
class RunToBlockPolicy final : public SchedulePolicy {
 public:
  ThreadId pick(const std::vector<ThreadId>& enabled, Rng& rng) override {
    for (ThreadId t : enabled) {
      if (t == current_) return t;
    }
    current_ = enabled[rng.index(enabled)];
    return current_;
  }

 private:
  ThreadId current_ = -1;
};

// Follows an explicit choice list (by position in the enabled set); once the
// list is exhausted, falls back to the first enabled thread. Used by the
// systematic explorer and by tests that need a precise interleaving.
class FixedChoicePolicy final : public SchedulePolicy {
 public:
  explicit FixedChoicePolicy(std::vector<int> choices)
      : choices_(std::move(choices)) {}

  ThreadId pick(const std::vector<ThreadId>& enabled, Rng&) override {
    if (next_ < choices_.size()) {
      int c = choices_[next_++];
      WOLF_CHECK_MSG(c >= 0 && static_cast<std::size_t>(c) < enabled.size(),
                     "fixed choice " << c << " out of range (enabled size "
                                     << enabled.size() << ")");
      return enabled[static_cast<std::size_t>(c)];
    }
    return enabled.front();
  }

  std::size_t consumed() const { return next_; }

 private:
  std::vector<int> choices_;
  std::size_t next_ = 0;
};

// Picks a specific thread id whenever it is enabled, otherwise random; used
// to bias schedules in tests.
class PreferThreadPolicy final : public SchedulePolicy {
 public:
  explicit PreferThreadPolicy(ThreadId preferred) : preferred_(preferred) {}

  ThreadId pick(const std::vector<ThreadId>& enabled, Rng& rng) override {
    for (ThreadId t : enabled)
      if (t == preferred_) return t;
    return enabled[rng.index(enabled)];
  }

 private:
  ThreadId preferred_;
};

}  // namespace wolf::sim
