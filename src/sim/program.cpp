#include "sim/program.hpp"

#include <set>

#include "support/check.hpp"

namespace wolf::sim {

const char* to_string(OpCode code) {
  switch (code) {
    case OpCode::kLock:
      return "lock";
    case OpCode::kUnlock:
      return "unlock";
    case OpCode::kStart:
      return "start";
    case OpCode::kJoin:
      return "join";
    case OpCode::kCompute:
      return "compute";
    case OpCode::kSetFlag:
      return "setflag";
    case OpCode::kJumpIfFlag:
      return "jumpif";
    case OpCode::kJump:
      return "jump";
  }
  return "?";
}

LockId Program::add_lock(std::string lock_name, SiteId alloc_site) {
  WOLF_CHECK(!finalized_);
  locks_.push_back(LockDecl{std::move(lock_name), alloc_site});
  return static_cast<LockId>(locks_.size()) - 1;
}

ThreadId Program::add_thread(std::string thread_name) {
  WOLF_CHECK(!finalized_);
  threads_.push_back(ThreadDecl{});
  threads_.back().name = std::move(thread_name);
  return static_cast<ThreadId>(threads_.size()) - 1;
}

int Program::emit(ThreadId thread, Op op) {
  WOLF_CHECK(!finalized_);
  WOLF_CHECK_MSG(thread >= 0 && thread < thread_count(),
                 "bad thread id " << thread);
  auto& ops = threads_[static_cast<std::size_t>(thread)].ops;
  ops.push_back(op);
  return static_cast<int>(ops.size()) - 1;
}

int Program::lock(ThreadId t, LockId l, SiteId s) {
  Op op;
  op.code = OpCode::kLock;
  op.lock = l;
  op.site = s;
  return emit(t, op);
}

int Program::unlock(ThreadId t, LockId l, SiteId s) {
  Op op;
  op.code = OpCode::kUnlock;
  op.lock = l;
  op.site = s;
  return emit(t, op);
}

int Program::start(ThreadId t, ThreadId child, SiteId s) {
  Op op;
  op.code = OpCode::kStart;
  op.target_thread = child;
  op.site = s;
  return emit(t, op);
}

int Program::join(ThreadId t, ThreadId child, SiteId s) {
  Op op;
  op.code = OpCode::kJoin;
  op.target_thread = child;
  op.site = s;
  return emit(t, op);
}

int Program::compute(ThreadId t, SiteId s, int units) {
  Op op;
  op.code = OpCode::kCompute;
  op.units = units;
  op.site = s;
  return emit(t, op);
}

int Program::set_flag(ThreadId t, int flag, int value, SiteId s) {
  Op op;
  op.code = OpCode::kSetFlag;
  op.flag = flag;
  op.value = value;
  op.site = s;
  return emit(t, op);
}

int Program::jump_if_flag(ThreadId t, int flag, int value, int target_pc,
                          SiteId s) {
  Op op;
  op.code = OpCode::kJumpIfFlag;
  op.flag = flag;
  op.value = value;
  op.target_pc = target_pc;
  op.site = s;
  return emit(t, op);
}

int Program::jump(ThreadId t, int target_pc, SiteId s) {
  Op op;
  op.code = OpCode::kJump;
  op.target_pc = target_pc;
  op.site = s;
  return emit(t, op);
}

void Program::patch_jump(ThreadId t, int jump_pc, int target_pc) {
  WOLF_CHECK(!finalized_);
  WOLF_CHECK(t >= 0 && t < thread_count());
  auto& ops = threads_[static_cast<std::size_t>(t)].ops;
  WOLF_CHECK(jump_pc >= 0 && jump_pc < static_cast<int>(ops.size()));
  Op& op = ops[static_cast<std::size_t>(jump_pc)];
  WOLF_CHECK_MSG(
      op.code == OpCode::kJump || op.code == OpCode::kJumpIfFlag,
      "patch_jump on non-jump op at pc " << jump_pc);
  op.target_pc = target_pc;
}

const ThreadDecl& Program::thread(ThreadId t) const {
  WOLF_CHECK_MSG(t >= 0 && t < thread_count(), "bad thread id " << t);
  return threads_[static_cast<std::size_t>(t)];
}

const LockDecl& Program::lock_decl(LockId l) const {
  WOLF_CHECK_MSG(l >= 0 && l < lock_count(), "bad lock id " << l);
  return locks_[static_cast<std::size_t>(l)];
}

void Program::finalize() {
  if (finalized_) return;
  WOLF_CHECK_MSG(thread_count() > 0, "program has no threads");

  std::set<ThreadId> started;
  for (ThreadId t = 0; t < thread_count(); ++t) {
    const auto& decl = threads_[static_cast<std::size_t>(t)];
    const int n = static_cast<int>(decl.ops.size());
    for (int pc = 0; pc < n; ++pc) {
      const Op& op = decl.ops[static_cast<std::size_t>(pc)];
      switch (op.code) {
        case OpCode::kLock:
        case OpCode::kUnlock:
          WOLF_CHECK_MSG(op.lock >= 0 && op.lock < lock_count(),
                         "thread " << t << " pc " << pc << ": bad lock "
                                   << op.lock);
          break;
        case OpCode::kStart: {
          WOLF_CHECK_MSG(
              op.target_thread > 0 && op.target_thread < thread_count(),
              "thread " << t << " pc " << pc << ": bad start target "
                        << op.target_thread);
          WOLF_CHECK_MSG(started.insert(op.target_thread).second,
                         "thread " << op.target_thread
                                   << " started more than once");
          auto& child =
              threads_[static_cast<std::size_t>(op.target_thread)];
          child.create_site = op.site;
          child.parent = t;
          break;
        }
        case OpCode::kJoin:
          WOLF_CHECK_MSG(
              op.target_thread >= 0 && op.target_thread < thread_count() &&
                  op.target_thread != t,
              "thread " << t << " pc " << pc << ": bad join target "
                        << op.target_thread);
          break;
        case OpCode::kSetFlag:
        case OpCode::kJumpIfFlag:
          WOLF_CHECK_MSG(op.flag >= 0 && op.flag < flag_count_,
                         "thread " << t << " pc " << pc << ": bad flag "
                                   << op.flag);
          if (op.code == OpCode::kSetFlag) break;
          [[fallthrough]];
        case OpCode::kJump:
          WOLF_CHECK_MSG(op.target_pc >= 0 && op.target_pc <= n,
                         "thread " << t << " pc " << pc << ": bad jump target "
                                   << op.target_pc);
          break;
        case OpCode::kCompute:
          break;
      }
    }
  }
  // Every thread except thread 0 (main) must be started somewhere.
  for (ThreadId t = 1; t < thread_count(); ++t) {
    WOLF_CHECK_MSG(started.count(t) == 1,
                   "thread " << t << " (" << thread(t).name
                             << ") is never started");
  }
  finalized_ = true;
}

}  // namespace wolf::sim
