#include "sim/scheduler.hpp"

#include <algorithm>

#include "robust/fault.hpp"
#include "support/check.hpp"
#include "trace/sharded_recorder.hpp"

namespace wolf::sim {

Scheduler::Scheduler(const Program& program, SchedulerOptions options)
    : program_(&program), options_(options) {
  WOLF_CHECK_MSG(program.finalized(), "program must be finalized before run");
  threads_.resize(static_cast<std::size_t>(program.thread_count()));
  locks_.resize(static_cast<std::size_t>(program.lock_count()));
  flags_.assign(static_cast<std::size_t>(program.flag_count()), 0);
  for (auto& ts : threads_)
    ts.site_counts.assign(static_cast<std::size_t>(program.sites().size()), 0);
  if (options_.fault != nullptr)
    for (const auto& delay : options_.fault->delays)
      fault_delay_left_.push_back(delay.steps);
  // Thread 0 is the root and is immediately runnable.
  threads_[0].status = ThreadStatus::kEnabled;
}

bool Scheduler::fault_drops_force_releases() const {
  return options_.fault != nullptr && options_.fault->drop_force_releases;
}

void Scheduler::emit(Event e) {
  if (options_.sink != nullptr) options_.sink->on_event(e);
  if (options_.controller != nullptr) options_.controller->on_event(e);
}

void Scheduler::ensure_begun(ThreadId t) {
  auto& ts = threads_[static_cast<std::size_t>(t)];
  if (ts.begun) return;
  ts.begun = true;
  Event e;
  e.kind = EventKind::kThreadBegin;
  e.thread = t;
  emit(e);
}

std::int32_t Scheduler::occurrence_for(ThreadId t, int pc, SiteId site) {
  auto& ts = threads_[static_cast<std::size_t>(t)];
  if (ts.pending_pc == pc) return ts.pending_occ;
  ts.pending_pc = pc;
  ts.bypass_controller = false;
  std::int32_t& count = ts.site_counts[static_cast<std::size_t>(site)];
  ts.pending_occ = count++;
  return ts.pending_occ;
}

std::vector<ThreadId> Scheduler::enabled_threads() const {
  std::vector<ThreadId> out;
  for (ThreadId t = 0; t < static_cast<ThreadId>(threads_.size()); ++t)
    if (threads_[static_cast<std::size_t>(t)].status == ThreadStatus::kEnabled)
      out.push_back(t);
  return out;
}

std::vector<ThreadId> Scheduler::paused_threads() const {
  std::vector<ThreadId> out;
  for (ThreadId t = 0; t < static_cast<ThreadId>(threads_.size()); ++t)
    if (threads_[static_cast<std::size_t>(t)].status == ThreadStatus::kPaused)
      out.push_back(t);
  return out;
}

ThreadStatus Scheduler::status(ThreadId t) const {
  WOLF_CHECK(t >= 0 && static_cast<std::size_t>(t) < threads_.size());
  return threads_[static_cast<std::size_t>(t)].status;
}

int Scheduler::pc(ThreadId t) const {
  WOLF_CHECK(t >= 0 && static_cast<std::size_t>(t) < threads_.size());
  return threads_[static_cast<std::size_t>(t)].pc;
}

int Scheduler::flag_value(int flag) const {
  WOLF_CHECK(flag >= 0 && static_cast<std::size_t>(flag) < flags_.size());
  return flags_[static_cast<std::size_t>(flag)];
}

bool Scheduler::all_terminated() const {
  return std::all_of(threads_.begin(), threads_.end(), [](const ThreadState& ts) {
    return ts.status == ThreadStatus::kTerminated;
  });
}

bool Scheduler::finished() const {
  return deadlock_diagnosed_ || all_terminated();
}

void Scheduler::terminate_thread(ThreadId t) {
  auto& ts = threads_[static_cast<std::size_t>(t)];
  WOLF_CHECK_MSG(ts.held.empty(),
                 "thread " << t << " terminated holding "
                           << ts.held.size() << " lock(s)");
  ts.status = ThreadStatus::kTerminated;
  Event e;
  e.kind = EventKind::kThreadEnd;
  e.thread = t;
  emit(e);
  // Wake joiners.
  for (ThreadId w = 0; w < static_cast<ThreadId>(threads_.size()); ++w) {
    auto& ws = threads_[static_cast<std::size_t>(w)];
    if (ws.status == ThreadStatus::kBlockedOnJoin && ws.waiting_join == t) {
      ws.status = ThreadStatus::kEnabled;
      ws.waiting_join = kInvalidThread;
    }
  }
}

void Scheduler::wake_lock_waiters(LockId lock) {
  for (ThreadId w = 0; w < static_cast<ThreadId>(threads_.size()); ++w) {
    auto& ws = threads_[static_cast<std::size_t>(w)];
    if (ws.status == ThreadStatus::kBlockedOnLock && ws.waiting_lock == lock) {
      ws.status = ThreadStatus::kEnabled;
      ws.waiting_lock = kInvalidLock;
    }
  }
}

void Scheduler::drain_controller_releases() {
  if (options_.controller == nullptr) return;
  for (ThreadId t : options_.controller->take_released()) {
    if (t >= 0 && static_cast<std::size_t>(t) < threads_.size() &&
        threads_[static_cast<std::size_t>(t)].status == ThreadStatus::kPaused) {
      release_paused(t, /*bypass_controller=*/false);
    }
  }
}

void Scheduler::release_paused(ThreadId t, bool bypass_controller) {
  auto& ts = threads_[static_cast<std::size_t>(t)];
  WOLF_CHECK_MSG(ts.status == ThreadStatus::kPaused,
                 "thread " << t << " is not paused");
  ts.status = ThreadStatus::kEnabled;
  if (bypass_controller) ts.bypass_controller = true;
}

BlockedAt Scheduler::blocked_at(ThreadId t) const {
  const auto& ts = threads_[static_cast<std::size_t>(t)];
  const Op& op =
      program_->thread(t).ops[static_cast<std::size_t>(ts.pc)];
  BlockedAt b;
  b.thread = t;
  b.index = ExecIndex{t, op.site, ts.pending_occ};
  b.lock = ts.waiting_lock;
  return b;
}

void Scheduler::check_wait_cycle(ThreadId t) {
  // Each thread waits on at most one lock, so the wait-for graph restricted
  // to lock waits is a partial function; follow the chain from t.
  std::vector<ThreadId> chain;
  ThreadId cur = t;
  while (true) {
    const auto& ts = threads_[static_cast<std::size_t>(cur)];
    if (ts.status != ThreadStatus::kBlockedOnLock) return;
    chain.push_back(cur);
    ThreadId owner =
        locks_[static_cast<std::size_t>(ts.waiting_lock)].owner;
    if (owner == kInvalidThread) return;  // lock was released meanwhile
    if (owner == t) break;                // cycle closed back at t
    if (std::find(chain.begin(), chain.end(), owner) != chain.end())
      return;  // cycle exists but does not include t; it was (or will be)
               // diagnosed when its own members blocked
    cur = owner;
  }
  deadlock_diagnosed_ = true;
  deadlock_cycle_.clear();
  for (ThreadId c : chain) deadlock_cycle_.push_back(blocked_at(c));
}

void Scheduler::step(ThreadId t) {
  WOLF_CHECK(!finished());
  auto& ts = threads_[static_cast<std::size_t>(t)];
  WOLF_CHECK_MSG(ts.status == ThreadStatus::kEnabled,
                 "thread " << t << " is not enabled");
  ++steps_;
  ensure_begun(t);

  const auto& ops = program_->thread(t).ops;
  if (ts.pc >= static_cast<int>(ops.size())) {
    terminate_thread(t);
    return;
  }
  // Injected stall: the step is consumed without progress while the delay
  // budget for this (thread, pc) lasts — a virtual-time slow thread.
  if (options_.fault != nullptr) {
    for (std::size_t i = 0; i < options_.fault->delays.size(); ++i) {
      const auto& delay = options_.fault->delays[i];
      if (delay.thread == t && delay.at_op == ts.pc &&
          fault_delay_left_[i] > 0) {
        --fault_delay_left_[i];
        return;
      }
    }
  }
  const Op& op = ops[static_cast<std::size_t>(ts.pc)];
  const int cur_pc = ts.pc;

  auto advance = [&] {
    ts.pc = cur_pc + 1;
    ts.pending_pc = -1;
    ts.bypass_controller = false;
    if (ts.pc >= static_cast<int>(ops.size())) terminate_thread(t);
  };

  switch (op.code) {
    case OpCode::kLock: {
      auto& lock = locks_[static_cast<std::size_t>(op.lock)];
      if (lock.owner == t) {
        // Re-entrant acquisition: no event, no controller involvement.
        ++lock.depth;
        advance();
        break;
      }
      const std::int32_t occ = occurrence_for(t, cur_pc, op.site);
      const ExecIndex idx{t, op.site, occ};
      if (options_.controller != nullptr && !ts.bypass_controller &&
          options_.controller->before_lock(t, idx, op.lock)) {
        ts.status = ThreadStatus::kPaused;
        drain_controller_releases();
        break;
      }
      if (lock.owner != kInvalidThread) {
        ts.status = ThreadStatus::kBlockedOnLock;
        ts.waiting_lock = op.lock;
        check_wait_cycle(t);
        break;
      }
      lock.owner = t;
      lock.depth = 1;
      ts.held.emplace_back(op.lock, 1);
      Event e;
      e.kind = EventKind::kLockAcquire;
      e.thread = t;
      e.site = op.site;
      e.occurrence = occ;
      e.lock = op.lock;
      emit(e);
      advance();
      drain_controller_releases();
      break;
    }
    case OpCode::kUnlock: {
      auto& lock = locks_[static_cast<std::size_t>(op.lock)];
      WOLF_CHECK_MSG(lock.owner == t, "thread " << t << " unlocks lock "
                                                << op.lock
                                                << " it does not own");
      if (--lock.depth > 0) {
        advance();
        break;
      }
      lock.owner = kInvalidThread;
      auto it = std::find_if(ts.held.begin(), ts.held.end(),
                             [&](const auto& h) { return h.first == op.lock; });
      WOLF_CHECK(it != ts.held.end());
      ts.held.erase(it);
      Event e;
      e.kind = EventKind::kLockRelease;
      e.thread = t;
      e.site = op.site;
      e.occurrence = occurrence_for(t, cur_pc, op.site);
      e.lock = op.lock;
      emit(e);
      advance();
      wake_lock_waiters(op.lock);
      drain_controller_releases();
      break;
    }
    case OpCode::kStart: {
      auto& child = threads_[static_cast<std::size_t>(op.target_thread)];
      WOLF_CHECK_MSG(child.status == ThreadStatus::kNotStarted,
                     "thread " << op.target_thread << " already started");
      child.status = ThreadStatus::kEnabled;
      Event e;
      e.kind = EventKind::kThreadStart;
      e.thread = t;
      e.site = op.site;
      e.occurrence = occurrence_for(t, cur_pc, op.site);
      e.other = op.target_thread;
      emit(e);
      advance();
      break;
    }
    case OpCode::kJoin: {
      // Joining a thread that has not even started yet simply waits: the
      // start must happen elsewhere (finalize() guarantees it exists).
      auto& child = threads_[static_cast<std::size_t>(op.target_thread)];
      if (child.status != ThreadStatus::kTerminated) {
        ts.status = ThreadStatus::kBlockedOnJoin;
        ts.waiting_join = op.target_thread;
        break;
      }
      Event e;
      e.kind = EventKind::kThreadJoin;
      e.thread = t;
      e.site = op.site;
      e.occurrence = occurrence_for(t, cur_pc, op.site);
      e.other = op.target_thread;
      emit(e);
      advance();
      break;
    }
    case OpCode::kCompute:
      advance();
      break;
    case OpCode::kSetFlag:
      flags_[static_cast<std::size_t>(op.flag)] = op.value;
      advance();
      break;
    case OpCode::kJumpIfFlag:
      if (flags_[static_cast<std::size_t>(op.flag)] == op.value) {
        ts.pc = op.target_pc;
        ts.pending_pc = -1;
        ts.bypass_controller = false;
        if (ts.pc >= static_cast<int>(ops.size())) terminate_thread(t);
      } else {
        advance();
      }
      break;
    case OpCode::kJump:
      ts.pc = op.target_pc;
      ts.pending_pc = -1;
      ts.bypass_controller = false;
      if (ts.pc >= static_cast<int>(ops.size())) terminate_thread(t);
      break;
  }
}

RunResult Scheduler::result() const {
  RunResult r;
  r.steps = steps_;
  if (all_terminated()) {
    r.outcome = RunOutcome::kCompleted;
  } else if (deadlock_diagnosed_) {
    r.outcome = RunOutcome::kDeadlock;
    r.deadlock_cycle = deadlock_cycle_;
  } else {
    // Caller decides between a stall (join deadlock) and a step-limit abort;
    // default to deadlock when nothing is runnable.
    bool any_runnable = false;
    for (const auto& ts : threads_)
      if (ts.status == ThreadStatus::kEnabled ||
          ts.status == ThreadStatus::kPaused)
        any_runnable = true;
    r.outcome = any_runnable ? RunOutcome::kStepLimit : RunOutcome::kDeadlock;
  }
  for (ThreadId t = 0; t < static_cast<ThreadId>(threads_.size()); ++t)
    if (threads_[static_cast<std::size_t>(t)].status ==
        ThreadStatus::kBlockedOnLock)
      r.all_blocked.push_back(blocked_at(t));
  return r;
}

std::uint64_t Scheduler::state_hash() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= mix64(v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  };
  for (const auto& ts : threads_) {
    mix(static_cast<std::uint64_t>(ts.status));
    mix(static_cast<std::uint64_t>(ts.pc));
    mix(static_cast<std::uint64_t>(ts.waiting_lock + 1));
    mix(static_cast<std::uint64_t>(ts.waiting_join + 1));
    for (const auto& [lock, depth] : ts.held) {
      mix(static_cast<std::uint64_t>(lock));
      mix(static_cast<std::uint64_t>(depth));
    }
    mix(0xabcdefULL);
  }
  for (const auto& ls : locks_) {
    mix(static_cast<std::uint64_t>(ls.owner + 1));
    mix(static_cast<std::uint64_t>(ls.depth));
  }
  for (int f : flags_) mix(static_cast<std::uint64_t>(f));
  return h;
}

RunResult run(Scheduler& scheduler, SchedulePolicy& policy, Rng& rng) {
  bool fault_stalled = false;
  while (!scheduler.finished() &&
         scheduler.steps_executed() < scheduler.max_steps()) {
    // Apply any releases the controller granted since the last step.
    scheduler.drain_releases();
    auto enabled = scheduler.enabled_threads();
    if (enabled.empty()) {
      auto paused = scheduler.paused_threads();
      if (paused.empty()) break;  // stall: nothing is runnable at all
      // Injected fault: the force-release that would unwedge the run is
      // dropped. On real threads this run would hang until the watchdog
      // fires; in virtual time we end the trial immediately as a timeout.
      if (scheduler.fault_drops_force_releases()) {
        fault_stalled = true;
        break;
      }
      // Algorithm 4, lines 5–7: move a paused thread back to Enabled. The
      // controller may bias the choice; the default picks randomly.
      ThreadId victim =
          scheduler.controller() != nullptr
              ? scheduler.controller()->force_release(paused, rng)
              : paused[rng.index(paused)];
      scheduler.release_paused(victim, /*bypass_controller=*/true);
      continue;
    }
    ThreadId t = policy.pick(enabled, rng);
    scheduler.step(t);
  }
  RunResult result = scheduler.result();
  if (fault_stalled) result.outcome = RunOutcome::kTimeout;
  return result;
}

RunResult run_program(const Program& program, SchedulePolicy& policy, Rng& rng,
                      SchedulerOptions options) {
  Scheduler scheduler(program, options);
  return run(scheduler, policy, rng);
}

std::optional<Trace> record_trace(const Program& program, std::uint64_t seed,
                                  const robust::RetryPolicy& retry,
                                  std::uint64_t max_steps) {
  Rng rng(seed);
  robust::RetryState attempts(retry, seed);
  while (attempts.next_attempt()) {
    // The virtual-thread scheduler emits from one OS thread, so the sharded
    // recorder runs with a single shard and take() degenerates to a move —
    // same trace as the serial recorder, same sink as the rt substrate.
    ShardedTraceRecorder recorder;
    SchedulerOptions options;
    options.sink = &recorder;
    options.max_steps = max_steps;
    RandomPolicy policy;
    Rng run_rng = rng.fork();
    RunResult result = run_program(program, policy, run_rng, options);
    if (result.outcome == RunOutcome::kCompleted) return recorder.take();
  }
  return std::nullopt;
}

std::optional<Trace> record_trace(const Program& program, std::uint64_t seed,
                                  int max_attempts, std::uint64_t max_steps) {
  robust::RetryPolicy retry;
  retry.max_attempts = max_attempts;
  return record_trace(program, seed, retry, max_steps);
}

}  // namespace wolf::sim
