// The scripted-program model — this repo's substitute for Soot-instrumented
// Java programs (see DESIGN.md §2).
//
// A Program declares locks, flags and threads; each thread owns a small
// "bytecode" script of synchronization-relevant operations (exactly the
// operation alphabet of the paper's §3.1: Lock/Unlock/start/join, plus
// compute padding and flag-conditional branches that give workloads
// data-dependent control flow). The same Program runs on two substrates:
// the deterministic virtual-thread Scheduler (sim/scheduler.hpp) and the OS
// thread runtime (rt/executor.hpp).
//
// Thread ids are the declaration indices; because every Start op names its
// target thread statically, ids are stable across runs and schedules — the
// deterministic realization of the paper's cross-run thread identification.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/ids.hpp"

namespace wolf::sim {

enum class OpCode : std::uint8_t {
  kLock,        // acquire `lock` (re-entrant)
  kUnlock,      // release `lock`
  kStart,       // start thread `target_thread`
  kJoin,        // join thread `target_thread`
  kCompute,     // `units` of busy work (a scheduling point)
  kSetFlag,     // flags[flag] = value
  kJumpIfFlag,  // if flags[flag] == value then pc = target_pc
  kJump,        // pc = target_pc
};

const char* to_string(OpCode code);

struct Op {
  OpCode code = OpCode::kCompute;
  SiteId site = kInvalidSite;  // static source location of this operation
  LockId lock = kInvalidLock;
  ThreadId target_thread = kInvalidThread;
  int flag = -1;
  int value = 0;
  int target_pc = -1;
  int units = 1;
};

struct LockDecl {
  std::string name;            // e.g. "SC1.mutex"
  SiteId alloc_site = kInvalidSite;  // allocation site (lock abstraction)
};

struct ThreadDecl {
  std::string name;  // e.g. "client-1"
  std::vector<Op> ops;
  // Site of the Start op that spawns this thread; kInvalidSite for roots.
  // Derived by Program::finalize(); used by the DeadlockFuzzer baseline's
  // creation-site thread abstraction.
  SiteId create_site = kInvalidSite;
  ThreadId parent = kInvalidThread;
};

class Program {
 public:
  std::string name = "program";

  LockId add_lock(std::string lock_name, SiteId alloc_site = kInvalidSite);
  ThreadId add_thread(std::string thread_name);
  int add_flag() { return flag_count_++; }

  // Append an op to `thread`'s script; returns its pc.
  int emit(ThreadId thread, Op op);

  // Convenience emitters.
  int lock(ThreadId t, LockId l, SiteId site);
  int unlock(ThreadId t, LockId l, SiteId site);
  int start(ThreadId t, ThreadId child, SiteId site);
  int join(ThreadId t, ThreadId child, SiteId site);
  int compute(ThreadId t, SiteId site, int units = 1);
  int set_flag(ThreadId t, int flag, int value, SiteId site);
  int jump_if_flag(ThreadId t, int flag, int value, int target_pc,
                   SiteId site);
  int jump(ThreadId t, int target_pc, SiteId site);

  // Fixes up a forward jump emitted before its target pc was known. Only
  // valid before finalize().
  void patch_jump(ThreadId t, int jump_pc, int target_pc);

  // Validates the program (op operands in range, every non-root thread
  // started exactly once, jump targets valid) and derives create_site /
  // parent links. Must be called before execution; idempotent.
  void finalize();
  bool finalized() const { return finalized_; }

  int thread_count() const { return static_cast<int>(threads_.size()); }
  int lock_count() const { return static_cast<int>(locks_.size()); }
  int flag_count() const { return flag_count_; }

  const ThreadDecl& thread(ThreadId t) const;
  const LockDecl& lock_decl(LockId l) const;

  SiteTable& sites() { return sites_; }
  const SiteTable& sites() const { return sites_; }

  // Interns a site in this program's table.
  SiteId site(const std::string& function, int line) {
    return sites_.intern(function, line);
  }

 private:
  std::vector<LockDecl> locks_;
  std::vector<ThreadDecl> threads_;
  int flag_count_ = 0;
  SiteTable sites_;
  bool finalized_ = false;
};

}  // namespace wolf::sim
