// ScheduleController — the online hook interface through which replay tools
// steer an execution.
//
// Both substrates consult the controller at every top-level lock acquisition
// *attempt* and report completed acquisitions and other events back to it.
// The paper's Replayer (Algorithm 4) and the DeadlockFuzzer baseline are both
// implemented as ScheduleControllers, which is what lets one implementation
// drive virtual threads (sim) and OS threads (rt) identically.
#pragma once

#include <vector>

#include "support/rng.hpp"
#include "trace/event.hpp"
#include "trace/exec_index.hpp"
#include "trace/ids.hpp"

namespace wolf::sim {

class ScheduleController {
 public:
  virtual ~ScheduleController() = default;

  // Called before thread `t` performs the top-level acquisition of `lock` at
  // dynamic instruction `idx`. Returning true pauses the thread; the
  // substrate will ask again once the controller releases it.
  virtual bool before_lock(ThreadId t, const ExecIndex& idx, LockId lock) {
    (void)t;
    (void)idx;
    (void)lock;
    return false;
  }

  // Full instrumentation event stream (acquisitions, releases, start/join,
  // begin/end), in global order. kLockAcquire is reported right after the
  // acquisition succeeds.
  virtual void on_event(const Event& e) { (void)e; }

  // Threads the controller wants unpaused now. Called by the substrate after
  // every controller-visible transition; returned ids that are not currently
  // paused are ignored.
  virtual std::vector<ThreadId> take_released() { return {}; }

  // No runnable thread remains but `paused` is non-empty (Algorithm 4 lines
  // 5–7): pick one to force-release. Default: uniformly random.
  virtual ThreadId force_release(const std::vector<ThreadId>& paused,
                                 Rng& rng) {
    return paused[rng.index(paused)];
  }
};

}  // namespace wolf::sim
