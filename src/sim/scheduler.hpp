// Deterministic virtual-thread scheduler.
//
// Executes a sim::Program one operation at a time under an arbitrary
// scheduling policy, emitting the instrumentation event stream to a
// TraceSink and consulting an optional ScheduleController at lock
// acquisitions — i.e. it plays the role of the JVM + instrumentation in the
// paper's tool chain, with the scheduler choice made explicit (Algorithm 1's
// "tp ← a random thread from Enabled").
//
// Lock semantics are re-entrant (Java monitors). A wait-for cycle is
// diagnosed the moment it forms; the run then stops with RunOutcome::kDeadlock
// and the cycle's blocked positions, which is how the Replayer decides
// whether the execution "deadlocked at the exact location" (Algorithm 4
// line 33).
//
// Scheduler objects are copyable: the systematic explorer forks mid-run
// states to enumerate schedules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "robust/retry.hpp"
#include "sim/controller.hpp"
#include "sim/policy.hpp"
#include "sim/program.hpp"
#include "support/rng.hpp"
#include "trace/recorder.hpp"

namespace wolf::robust {
struct FaultPlan;
}

namespace wolf::sim {

enum class ThreadStatus : std::uint8_t {
  kNotStarted,
  kEnabled,
  kBlockedOnLock,
  kBlockedOnJoin,
  kPaused,      // held by the ScheduleController
  kTerminated,
};

struct BlockedAt {
  ThreadId thread = kInvalidThread;
  ExecIndex index;           // dynamic instruction of the blocked acquisition
  LockId lock = kInvalidLock;

  friend bool operator==(const BlockedAt&, const BlockedAt&) = default;
};

enum class RunOutcome : std::uint8_t {
  kCompleted,  // every thread terminated
  kDeadlock,   // wait-for cycle (or a start/join stall with nothing runnable)
  kStepLimit,  // max_steps exhausted
  kTimeout,    // wall-clock watchdog fired (rt) or a fault-injected stall
               // wedged the run (sim); the trial was aborted, not hung
};

struct RunResult {
  RunOutcome outcome = RunOutcome::kCompleted;
  // The lock wait-for cycle that was diagnosed (empty for join stalls).
  std::vector<BlockedAt> deadlock_cycle;
  // Every thread blocked on a lock when the run ended.
  std::vector<BlockedAt> all_blocked;
  std::uint64_t steps = 0;

  bool deadlocked() const { return outcome == RunOutcome::kDeadlock; }
};

struct SchedulerOptions {
  std::uint64_t max_steps = 2'000'000;
  TraceSink* sink = nullptr;                 // may be nullptr
  ScheduleController* controller = nullptr;  // may be nullptr
  // Injected faults (robust/fault.hpp): per-thread step delays and dropped
  // force-releases. nullptr = no faults. Not owned.
  const robust::FaultPlan* fault = nullptr;
};

class Scheduler {
 public:
  Scheduler(const Program& program, SchedulerOptions options);

  // --- stepping interface (used by run() and by the explorer) ---

  // Threads eligible to execute right now, ascending ids.
  std::vector<ThreadId> enabled_threads() const;
  std::vector<ThreadId> paused_threads() const;

  // Executes one operation (or one blocked/paused attempt) of an enabled
  // thread.
  void step(ThreadId t);

  // Moves a controller-paused thread back to the enabled set. When
  // `bypass_controller` is set the thread's pending acquisition will not
  // re-consult the controller (forced release, Algorithm 4 lines 5–7).
  void release_paused(ThreadId t, bool bypass_controller);

  // True when no further step can change anything: all threads terminated,
  // or a deadlock has been diagnosed.
  bool finished() const;
  bool deadlock_diagnosed() const { return deadlock_diagnosed_; }
  bool all_terminated() const;

  std::uint64_t steps_executed() const { return steps_; }
  std::uint64_t max_steps() const { return options_.max_steps; }
  ScheduleController* controller() const { return options_.controller; }
  // Repoints the controller consulted by subsequent steps. The batch
  // replayer forks a mid-run Scheduler copy per diverged member and hands
  // each copy that member's own controller (the copy inherits the shared
  // multiplexer pointer otherwise).
  void set_controller(ScheduleController* controller) {
    options_.controller = controller;
  }
  // True when an injected fault swallows Algorithm-4 force-releases; the run
  // loop then ends a wedged run with RunOutcome::kTimeout instead of looping.
  bool fault_drops_force_releases() const;

  // Applies all pending controller releases (take_released()).
  void drain_releases() { drain_controller_releases(); }

  // Builds the result for the current (finished or aborted) state.
  RunResult result() const;

  ThreadStatus status(ThreadId t) const;
  int pc(ThreadId t) const;
  int flag_value(int flag) const;

  // Structural fingerprint of the scheduler state (thread pcs/statuses, lock
  // ownership, flags). Two states with equal hashes are treated as identical
  // by the explorer; the hash ignores trace/controller bookkeeping, so it is
  // only meaningful for controller-free exploration.
  std::uint64_t state_hash() const;

  const Program& program() const { return *program_; }

 private:
  struct ThreadState {
    ThreadStatus status = ThreadStatus::kNotStarted;
    int pc = 0;
    bool begun = false;  // kThreadBegin emitted
    // Locks currently held (top-level), in acquisition order, with
    // re-entrancy depth.
    std::vector<std::pair<LockId, int>> held;
    LockId waiting_lock = kInvalidLock;    // kBlockedOnLock
    ThreadId waiting_join = kInvalidThread;  // kBlockedOnJoin
    // Occurrence bookkeeping for the op at `pending_pc` (stable across
    // repeated attempts of the same acquisition).
    int pending_pc = -1;
    std::int32_t pending_occ = 0;
    bool bypass_controller = false;
    // Per-site dynamic occurrence counters.
    std::vector<std::int32_t> site_counts;
  };

  struct LockState {
    ThreadId owner = kInvalidThread;
    int depth = 0;
  };

  void emit(Event e);
  void ensure_begun(ThreadId t);
  std::int32_t occurrence_for(ThreadId t, int pc, SiteId site);
  void terminate_thread(ThreadId t);
  void wake_lock_waiters(LockId lock);
  void drain_controller_releases();
  // Checks for a wait-for cycle through `t` (which just blocked); fills
  // deadlock state when found.
  void check_wait_cycle(ThreadId t);
  BlockedAt blocked_at(ThreadId t) const;

  const Program* program_;
  SchedulerOptions options_;
  std::vector<ThreadState> threads_;
  std::vector<LockState> locks_;
  std::vector<int> flags_;
  std::uint64_t steps_ = 0;
  bool deadlock_diagnosed_ = false;
  std::vector<BlockedAt> deadlock_cycle_;
  // Remaining injected-stall budget per FaultPlan delay entry (copyable so
  // the explorer can fork mid-run states).
  std::vector<int> fault_delay_left_;
};

// Policy-driven run loop, including the controller release protocol.
RunResult run(Scheduler& scheduler, SchedulePolicy& policy, Rng& rng);

// Convenience: build a scheduler and run the program once.
RunResult run_program(const Program& program, SchedulePolicy& policy, Rng& rng,
                      SchedulerOptions options = {});

// One random recording run: executes the program under RandomPolicy with the
// given seed, recording the trace. Retries with derived seeds if the run
// deadlocks (detection needs completed executions) under `retry`; returns
// nullopt if every attempt deadlocked.
std::optional<Trace> record_trace(const Program& program, std::uint64_t seed,
                                  const robust::RetryPolicy& retry,
                                  std::uint64_t max_steps = 2'000'000);

// Convenience: retry up to `max_attempts` times with no backoff.
std::optional<Trace> record_trace(const Program& program, std::uint64_t seed,
                                  int max_attempts = 20,
                                  std::uint64_t max_steps = 2'000'000);

}  // namespace wolf::sim
