#include "workloads/paper_examples.hpp"

namespace wolf::workloads {

Figure4 make_figure4() {
  Figure4 f;
  sim::Program& p = f.program;
  p.name = "figure4";

  f.l1 = p.add_lock("l1", p.site("Fig4.alloc", 1));
  f.l2 = p.add_lock("l2", p.site("Fig4.alloc", 2));
  f.l3 = p.add_lock("l3", p.site("Fig4.alloc", 3));

  ThreadId t1 = p.add_thread("t1");
  ThreadId t2 = p.add_thread("t2");
  ThreadId t3 = p.add_thread("t3");

  auto site = [&](int line) { return p.site("Fig4", line); };
  f.s11 = site(11);
  f.s12 = site(12);
  f.s15 = site(15);
  f.s16 = site(16);
  f.s18 = site(18);
  f.s19 = site(19);
  f.s21 = site(21);
  f.s31 = site(31);
  f.s32 = site(32);
  f.s33 = site(33);

  // t1: 11 Lock(l1); 12 Lock(l2); 13/14 releases; 15 t2.start();
  //     16 Lock(l3); 17 Unlock(l3); 18 Lock(l1); 19 Lock(l2); releases.
  p.lock(t1, f.l1, f.s11);
  p.lock(t1, f.l2, f.s12);
  p.unlock(t1, f.l2, site(13));
  p.unlock(t1, f.l1, site(14));
  p.start(t1, t2, f.s15);
  p.lock(t1, f.l3, f.s16);
  p.unlock(t1, f.l3, site(17));
  p.lock(t1, f.l1, f.s18);
  p.lock(t1, f.l2, f.s19);
  p.unlock(t1, f.l2, site(110));
  p.unlock(t1, f.l1, site(111));

  // t2: 21 t3.start().
  p.start(t2, t3, f.s21);

  // t3: 31 Lock(l3); 32 Lock(l2); 33 Lock(l1); 34-36 releases.
  p.lock(t3, f.l3, f.s31);
  p.lock(t3, f.l2, f.s32);
  p.lock(t3, f.l1, f.s33);
  p.unlock(t3, f.l1, site(34));
  p.unlock(t3, f.l2, site(35));
  p.unlock(t3, f.l3, site(36));

  p.finalize();
  return f;
}

Figure2 make_figure2() {
  Figure2 f;
  sim::Program& p = f.program;
  p.name = "figure2";

  // Both mutexes are created by the same wrapper code — one allocation site.
  SiteId alloc = p.site("Collections.synchronizedMap", 2001);
  f.sm1_mutex = p.add_lock("SM1.mutex", alloc);
  f.sm2_mutex = p.add_lock("SM2.mutex", alloc);

  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  ThreadId t2 = p.add_thread("t2");

  f.s2024 = p.site("SynchronizedMap.equals", 2024);
  f.s509 = p.site("AbstractMap.equals(size)", 509);
  f.s522 = p.site("AbstractMap.equals(get)", 522);

  // Shared equals() body, instantiated per thread on opposite receivers.
  auto equals = [&](ThreadId t, LockId mine, LockId other) {
    p.lock(t, mine, f.s2024);   // synchronized(mutex)
    p.lock(t, other, f.s509);   // t.size() — interim acquisition
    p.unlock(t, other, p.site("AbstractMap.equals(size-exit)", 510));
    p.lock(t, other, f.s522);   // value.equals(t.get())
    p.unlock(t, other, p.site("AbstractMap.equals(get-exit)", 523));
    p.unlock(t, mine, p.site("SynchronizedMap.equals(exit)", 2025));
  };
  equals(t1, f.sm1_mutex, f.sm2_mutex);
  equals(t2, f.sm2_mutex, f.sm1_mutex);

  SiteId spawn = p.site("Harness.spawn", 9001);
  SiteId joinsite = p.site("Harness.join", 9002);
  p.start(main, t1, spawn);
  p.start(main, t2, spawn);
  p.join(main, t1, joinsite);
  p.join(main, t2, joinsite);

  p.finalize();
  return f;
}

Figure1 make_figure1() {
  Figure1 f;
  sim::Program& p = f.program;
  p.name = "figure1";

  f.tc = p.add_lock("TC", p.site("ThreadCache.alloc", 1));
  f.ct = p.add_lock("CT", p.site("CachedThread.alloc", 2));

  ThreadId t1 = p.add_thread("t1");
  ThreadId t2 = p.add_thread("t2");

  f.s401 = p.site("ThreadCache.initialize", 401);
  f.s75 = p.site("CachedThread.start", 75);
  f.s24 = p.site("CachedThread.waitForRunner", 24);
  f.s175 = p.site("ThreadCache.isFree", 175);

  // t1 starts t2 *while holding* TC and CT — so t2 can never overlap the
  // deadlocking acquisitions.
  p.lock(t1, f.tc, f.s401);
  p.lock(t1, f.ct, f.s75);
  p.start(t1, t2, p.site("CachedThread.start(super.start)", 76));
  p.unlock(t1, f.ct, p.site("CachedThread.start(exit)", 78));
  p.unlock(t1, f.tc, p.site("ThreadCache.initialize(exit)", 417));

  p.lock(t2, f.ct, f.s24);
  p.lock(t2, f.tc, f.s175);
  p.unlock(t2, f.tc, p.site("ThreadCache.isFree(exit)", 201));
  p.unlock(t2, f.ct, p.site("CachedThread.waitForRunner(exit)", 56));

  p.finalize();
  return f;
}

Figure9 make_figure9() {
  Figure9 f;
  sim::Program& p = f.program;
  p.name = "figure9";

  SiteId alloc = p.site("Collections.synchronizedCollection", 1501);
  f.sc1_mutex = p.add_lock("SC1.mutex", alloc);
  f.sc2_mutex = p.add_lock("SC2.mutex", alloc);

  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("worker-1");
  ThreadId t2 = p.add_thread("worker-2");

  f.s1591 = p.site("SynchronizedCollection.addAll", 1591);
  f.s1570 = p.site("SynchronizedCollection.toArray", 1570);
  f.s1594 = p.site("SynchronizedCollection.removeAll", 1594);
  f.s1567 = p.site("SynchronizedCollection.contains", 1567);

  auto add_all = [&](ThreadId t, LockId mine, LockId other) {
    p.lock(t, mine, f.s1591);
    p.lock(t, other, f.s1570);
    p.unlock(t, other, p.site("SynchronizedCollection.toArray(exit)", 1571));
    p.unlock(t, mine, p.site("SynchronizedCollection.addAll(exit)", 1592));
  };
  auto remove_all = [&](ThreadId t, LockId mine, LockId other) {
    p.lock(t, mine, f.s1594);
    p.lock(t, other, f.s1567);
    p.unlock(t, other, p.site("SynchronizedCollection.contains(exit)", 1568));
    p.unlock(t, mine,
             p.site("SynchronizedCollection.removeAll(exit)", 1595));
  };

  // t1: addAll(SC1, SC2).
  add_all(t1, f.sc1_mutex, f.sc2_mutex);
  // t2 first runs the same addAll code path on the opposite receivers, then
  // the removeAll that closes the real deadlock with t1.
  add_all(t2, f.sc2_mutex, f.sc1_mutex);
  remove_all(t2, f.sc2_mutex, f.sc1_mutex);

  // Both workers spawned from one source location: identical DeadlockFuzzer
  // thread abstractions.
  SiteId spawn = p.site("Harness.spawnWorker", 7001);
  SiteId joinsite = p.site("Harness.joinWorker", 7002);
  p.start(main, t1, spawn);
  p.start(main, t2, spawn);
  p.join(main, t1, joinsite);
  p.join(main, t2, joinsite);

  p.finalize();
  return f;
}

Philosophers make_philosophers(int n) {
  WOLF_CHECK(n >= 2);
  Philosophers f;
  sim::Program& p = f.program;
  p.name = "philosophers-" + std::to_string(n);

  for (int i = 0; i < n; ++i)
    f.forks.push_back(
        p.add_lock("fork-" + std::to_string(i), p.site("Table.fork", i)));

  ThreadId main = p.add_thread("main");
  std::vector<ThreadId> phils;
  for (int i = 0; i < n; ++i)
    phils.push_back(p.add_thread("phil-" + std::to_string(i)));

  for (int i = 0; i < n; ++i) {
    ThreadId t = phils[static_cast<std::size_t>(i)];
    SiteId pick1 = p.site("Philosopher.pickLeft", i);
    SiteId pick2 = p.site("Philosopher.pickRight", i);
    f.first_pick.push_back(pick1);
    f.second_pick.push_back(pick2);
    LockId left = f.forks[static_cast<std::size_t>(i)];
    LockId right = f.forks[static_cast<std::size_t>((i + 1) % n)];
    p.lock(t, left, pick1);
    p.lock(t, right, pick2);
    p.compute(t, p.site("Philosopher.eat", i));
    p.unlock(t, right, p.site("Philosopher.dropRight", i));
    p.unlock(t, left, p.site("Philosopher.dropLeft", i));
  }

  SiteId spawn = p.site("Table.spawn", 1);
  SiteId joinsite = p.site("Table.join", 2);
  for (ThreadId t : phils) p.start(main, t, spawn);
  for (ThreadId t : phils) p.join(main, t, joinsite);

  p.finalize();
  return f;
}

}  // namespace wolf::workloads
