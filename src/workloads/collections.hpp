// Synthetic analogues of the paper's java.util.Collections benchmarks
// (§4.1): the synchronized-wrapper deadlocks among the three list-like
// classes (ArrayList, Stack, LinkedList) and the five map classes (HashMap,
// TreeMap, WeakHashMap, LinkedHashMap, IdentityHashMap).
//
// List family — two wrapped instances and two workers operating on them in
// opposite orders through three shared methods (equals / addAll /
// removeAll), each locking its receiver's mutex and then the argument's.
// This yields exactly 3×3 = 9 potential cycles collapsing to 6 source-
// location defects (the unordered method pairs), all real — the counts of
// Tables 1 and 2. Both wrapper mutexes share an allocation site and both
// workers a creation site, so DeadlockFuzzer's abstractions reliably confuse
// the off-diagonal pairs and it reproduces only the 3 "diagonal" defects.
//
// Map family — the Fig. 2 structure: equals() holds the receiver's mutex
// (line 2024) and acquires the argument's twice, once inside size() (509)
// and once inside get() (522). Four cycles, three defects; the (522, 522)
// cycle — θ4 — is infeasible and its Gs is cyclic, the Generator's
// elimination in Tables 1/2.
#pragma once

#include <string>

#include "sim/program.hpp"

namespace wolf::workloads {

struct CollectionsSites {
  // List family outer/inner sites per method (equals, addAll, removeAll).
  SiteId outer[3] = {kInvalidSite, kInvalidSite, kInvalidSite};
  SiteId inner[3] = {kInvalidSite, kInvalidSite, kInvalidSite};
  // Map family sites.
  SiteId s_equals = kInvalidSite;  // 2024
  SiteId s_size = kInvalidSite;    // 509
  SiteId s_get = kInvalidSite;     // 522
};

struct CollectionsWorkload {
  sim::Program program;
  CollectionsSites sites;
};

// `class_name` only changes the site naming (ArrayList vs Stack vs ...);
// `benign_ops` adds that many harmless single-lock calls around each method
// to vary trace length across the three list benchmarks.
CollectionsWorkload make_collections_list(const std::string& class_name,
                                          int benign_ops = 2);

CollectionsWorkload make_collections_map(const std::string& class_name,
                                         int benign_ops = 2);

}  // namespace wolf::workloads
