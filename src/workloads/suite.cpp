#include "workloads/suite.hpp"

#include "support/check.hpp"
#include "workloads/cache4j.hpp"
#include "workloads/collections.hpp"
#include "workloads/jigsaw.hpp"
#include "workloads/logging.hpp"
#include "workloads/slowdown.hpp"

namespace wolf::workloads {

namespace {

PaperRow cache4j_row() {
  PaperRow r;
  r.slowdown = 1.32;
  return r;
}

PaperRow jigsaw_row() {
  PaperRow r;
  r.detected = 30;
  r.fp_pruner = 7;
  r.fp_generator = 0;
  r.tp_wolf = 6;
  r.tp_df = 3;
  r.unknown_wolf = 17;
  r.unknown_df = 27;
  r.slowdown = 1.23;
  r.cycles = 265;
  r.cyc_fp_wolf = 83;
  r.cyc_tp_wolf = 97;
  r.cyc_tp_df = 35;
  r.cyc_unknown_wolf = 85;
  r.cyc_unknown_df = 230;
  return r;
}

PaperRow logging_row() {
  PaperRow r;
  r.detected = 2;
  r.tp_wolf = 2;
  r.tp_df = 1;
  r.unknown_df = 1;
  r.slowdown = 1.07;
  r.cycles = 2;
  r.cyc_tp_wolf = 2;
  r.cyc_tp_df = 1;
  r.cyc_unknown_df = 1;
  return r;
}

PaperRow list_row(double slowdown) {
  PaperRow r;
  r.detected = 6;
  r.tp_wolf = 6;
  r.tp_df = 3;
  r.unknown_df = 3;
  r.slowdown = slowdown;
  r.cycles = 9;
  r.cyc_tp_wolf = 9;
  r.cyc_tp_df = 3;
  r.cyc_unknown_df = 6;
  return r;
}

PaperRow map_row(double slowdown) {
  PaperRow r;
  r.detected = 3;
  r.fp_generator = 1;
  r.tp_wolf = 2;
  r.tp_df = 2;
  r.unknown_df = 1;
  r.slowdown = slowdown;
  r.cycles = 4;
  r.cyc_fp_wolf = 1;
  r.cyc_tp_wolf = 3;
  r.cyc_tp_df = 3;
  r.cyc_unknown_df = 1;
  return r;
}

Benchmark make(std::string name, sim::Program program, PaperRow row,
               const SlowdownProfile& slowdown_profile,
               std::uint64_t max_steps = 2'000'000) {
  Benchmark b;
  b.name = std::move(name);
  b.program = std::move(program);
  b.paper = row;
  b.max_steps = max_steps;
  b.slowdown_program = make_slowdown_mirror(b.name, slowdown_profile);
  return b;
}

// Per-benchmark lock/compute ratios for the slowdown mirrors: the
// lock-dense Collections wrappers sit near 2×, the compute-heavy logging
// benchmark near 1.1× (paper column 5).
SlowdownProfile dense() { return SlowdownProfile{2, 12000, 2}; }
SlowdownProfile medium() { return SlowdownProfile{2, 12000, 8}; }
SlowdownProfile light() { return SlowdownProfile{2, 12000, 20}; }

}  // namespace

std::vector<Benchmark> standard_suite() {
  std::vector<Benchmark> suite;
  suite.push_back(make("cache4j", make_cache4j(), cache4j_row(), medium()));
  suite.push_back(
      make("Jigsaw", make_jigsaw().program, jigsaw_row(), medium(), 400'000));
  suite.push_back(
      make("JavaLogging", make_logging().program, logging_row(), light()));
  suite.push_back(make("ArrayList",
                       make_collections_list("ArrayList", 2).program,
                       list_row(1.86), dense()));
  suite.push_back(make("Stack", make_collections_list("Stack", 3).program,
                       list_row(2.01), dense()));
  suite.push_back(make("LinkedList",
                       make_collections_list("LinkedList", 4).program,
                       list_row(1.98), dense()));
  suite.push_back(make("HashMap", make_collections_map("HashMap", 2).program,
                       map_row(2.19), dense()));
  suite.push_back(make("TreeMap", make_collections_map("TreeMap", 3).program,
                       map_row(2.17), dense()));
  suite.push_back(make("WeakHashMap",
                       make_collections_map("WeakHashMap", 4).program,
                       map_row(2.24), dense()));
  suite.push_back(make("LinkedHashMap",
                       make_collections_map("LinkedHashMap", 5).program,
                       map_row(2.32), dense()));
  suite.push_back(make("IdentityHashMap",
                       make_collections_map("IdentityHashMap", 6).program,
                       map_row(2.09), dense()));
  return suite;
}

const Benchmark& find_benchmark(const std::vector<Benchmark>& suite,
                                const std::string& name) {
  for (const Benchmark& b : suite)
    if (b.name == name) return b;
  WOLF_CHECK_MSG(false, "no benchmark named " << name);
  static Benchmark dummy;
  return dummy;
}

}  // namespace wolf::workloads
