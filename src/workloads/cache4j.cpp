#include "workloads/cache4j.hpp"

#include "support/check.hpp"

namespace wolf::workloads {

sim::Program make_cache4j(const Cache4jConfig& config) {
  WOLF_CHECK(config.stripes >= 1);
  sim::Program p;
  p.name = "cache4j";

  LockId global = p.add_lock("CacheConfig.lock", p.site("Cache.<init>", 10));
  std::vector<LockId> stripes;
  for (int s = 0; s < config.stripes; ++s)
    stripes.push_back(p.add_lock("Stripe-" + std::to_string(s),
                                 p.site("Stripe.<init>", 20)));

  ThreadId main = p.add_thread("main");
  std::vector<ThreadId> workers;

  SiteId s_put = p.site("Cache.put", 200);
  SiteId s_put_stripe = p.site("Cache.put(stripe)", 201);
  SiteId s_put_exit1 = p.site("Cache.put(stripe-exit)", 202);
  SiteId s_put_exit2 = p.site("Cache.put(exit)", 203);
  SiteId s_get = p.site("Cache.get", 210);
  SiteId s_get_exit = p.site("Cache.get(exit)", 211);
  SiteId pad = p.site("Cache.compute", 1);

  // Writers: put() takes the config lock, then the key's stripe — the same
  // global→stripe order everywhere, so the lock graph is acyclic.
  for (int wi = 0; wi < config.writers; ++wi) {
    ThreadId t = p.add_thread("writer-" + std::to_string(wi));
    workers.push_back(t);
    for (int op = 0; op < config.ops_per_thread; ++op) {
      LockId stripe =
          stripes[static_cast<std::size_t>((wi + op) % config.stripes)];
      p.lock(t, global, s_put);
      p.lock(t, stripe, s_put_stripe);
      p.compute(t, pad, 1);
      p.unlock(t, stripe, s_put_exit1);
      p.unlock(t, global, s_put_exit2);
    }
  }
  // Readers: get() touches only the stripe.
  for (int ri = 0; ri < config.readers; ++ri) {
    ThreadId t = p.add_thread("reader-" + std::to_string(ri));
    workers.push_back(t);
    for (int op = 0; op < config.ops_per_thread; ++op) {
      LockId stripe =
          stripes[static_cast<std::size_t>((ri + op) % config.stripes)];
      p.lock(t, stripe, s_get);
      p.compute(t, pad, 1);
      p.unlock(t, stripe, s_get_exit);
    }
  }
  // A cleaner sweeping every stripe under the config lock (still ordered).
  ThreadId cleaner = p.add_thread("cleaner");
  workers.push_back(cleaner);
  SiteId s_clean = p.site("CacheCleaner.clean", 300);
  SiteId s_clean_stripe = p.site("CacheCleaner.clean(stripe)", 301);
  p.lock(cleaner, global, s_clean);
  for (int s = 0; s < config.stripes; ++s) {
    p.lock(cleaner, stripes[static_cast<std::size_t>(s)], s_clean_stripe);
    p.compute(cleaner, pad, 1);
    p.unlock(cleaner, stripes[static_cast<std::size_t>(s)],
             p.site("CacheCleaner.clean(stripe-exit)", 302));
  }
  p.unlock(cleaner, global, p.site("CacheCleaner.clean(exit)", 303));

  SiteId spawn = p.site("CacheTest.spawn", 400);
  SiteId joinsite = p.site("CacheTest.join", 401);
  for (ThreadId t : workers) p.start(main, t, spawn);
  for (ThreadId t : workers) p.join(main, t, joinsite);

  p.finalize();
  return p;
}

}  // namespace wolf::workloads
