// Java Logging analogue (the paper's jakarta-log4j / java.util.logging
// benchmark, including the bug-24159 pattern): two real logger↔handler
// deadlocks.
//
//   Defect A — app thread publishes (logger lock → handler lock) while an
//   admin thread closes the handler (handler lock → logger lock). Plain
//   structure: both tools reproduce it.
//
//   Defect B — same shape on a second logger/handler pair, but the flushing
//   thread first acquires the handler lock *unnested* at the same source
//   site before the nested pass. DeadlockFuzzer's occurrence-blind
//   abstraction traps that first, harmless pass and never reproduces the
//   deadlock; WOLF's execution indices distinguish the two occurrences.
//
// Totals: 2 cycles, 2 defects, both real — WOLF reproduces 2, the baseline 1
// (the paper's Java Logging row).
#pragma once

#include "sim/program.hpp"

namespace wolf::workloads {

struct LoggingWorkload {
  sim::Program program;
  // Defect A deadlocking sites.
  SiteId s_publish_handler = kInvalidSite;  // t1 wants handler inside publish
  SiteId s_close_logger = kInvalidSite;     // t2 wants logger inside close
  // Defect B deadlocking sites.
  SiteId s_flush_handler = kInvalidSite;    // t3 wants handler inside flush
  SiteId s_reconf_logger = kInvalidSite;    // t4 wants logger inside reconfig
};

LoggingWorkload make_logging();

}  // namespace wolf::workloads
