// Jigsaw analogue — the large benchmark of the evaluation. A miniature web
// server whose locking structure reproduces the paper's Jigsaw taxonomy of
// 30 defects:
//
//   * `fig1_instances` ThreadCache start-order false positives (Fig. 1):
//     a pool thread locks (TC_k, CT_k) and starts its cached thread while
//     holding both — detected as cycles, eliminated by the Pruner.
//   * 6 real, reproducible defects: two request-handler threads run three
//     shared resource methods on opposite resource orders (the unordered
//     method pairs), each under `contexts` different session locks, which
//     multiplies the dynamic cycles per defect the way Jigsaw's deep call
//     contexts do.
//   * `data_dep_instances` data-dependency "unknown" defects (§4.4): a
//     producer publishes a flag after its nested (X, Y) section and the
//     consumer busy-waits on the flag before its reversed (Y, X) section.
//     The regions can never overlap, but neither the vector clocks nor Gs
//     can prove it, and replay cannot deadlock — WOLF leaves them unknown,
//     exactly the category the paper attributes its Jigsaw unknowns to.
//
// Defaults give 7 + 6 + 17 = 30 detected defects with the paper's
// classification split (7 Pruner FPs, 6 reproduced, 17 unknown; the baseline
// reproduces the 3 diagonal handler defects).
#pragma once

#include <vector>

#include "sim/program.hpp"

namespace wolf::workloads {

struct JigsawConfig {
  int fig1_instances = 7;
  int data_dep_instances = 17;
  int contexts = 2;  // session-lock contexts per handler pass
};

struct JigsawWorkload {
  sim::Program program;
  // Deadlocking sites of the three handler methods (defect signatures are
  // the unordered pairs of these inner sites).
  std::vector<SiteId> handler_inner;
  std::vector<SiteId> fig1_sites;     // child-side inner sites, per instance
  std::vector<SiteId> datadep_sites;  // consumer-side inner sites
};

JigsawWorkload make_jigsaw(const JigsawConfig& config = {});

}  // namespace wolf::workloads
