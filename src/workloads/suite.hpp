// The evaluation suite: the eleven benchmarks of Tables 1–2 with the
// paper's published numbers attached, so the bench harnesses can print
// paper-vs-measured side by side.
#pragma once

#include <string>
#include <vector>

#include "sim/program.hpp"

namespace wolf::workloads {

// Published per-benchmark numbers (Tables 1 and 2 of the paper).
struct PaperRow {
  // Table 1 (source-location defects).
  int detected = 0;
  int fp_pruner = 0;
  int fp_generator = 0;
  int tp_wolf = 0;
  int tp_df = 0;
  int unknown_wolf = 0;
  int unknown_df = 0;
  double slowdown = 0.0;  // detection slowdown vs uninstrumented
  // Table 2 (cycles).
  int cycles = 0;
  int cyc_fp_wolf = 0;
  int cyc_tp_wolf = 0;
  int cyc_tp_df = 0;
  int cyc_unknown_wolf = 0;
  int cyc_unknown_df = 0;
};

struct Benchmark {
  std::string name;
  sim::Program program;
  PaperRow paper;
  // Pipeline tuning: step budget for one (re-)execution of this program.
  std::uint64_t max_steps = 2'000'000;
  // Scaled deadlock-free mirror used for the Table-1 slowdown column (see
  // workloads/slowdown.hpp).
  sim::Program slowdown_program;
};

// All eleven benchmarks in the paper's row order: cache4j, Jigsaw,
// JavaLogging, ArrayList, Stack, LinkedList, HashMap, TreeMap, WeakHashMap,
// LinkedHashMap, IdentityHashMap.
std::vector<Benchmark> standard_suite();

// Convenience lookup; aborts when absent. The rvalue overload is deleted:
// binding the result to a member of a temporary suite would dangle.
const Benchmark& find_benchmark(const std::vector<Benchmark>& suite,
                                const std::string& name);
const Benchmark& find_benchmark(std::vector<Benchmark>&& suite,
                                const std::string& name) = delete;

}  // namespace wolf::workloads
