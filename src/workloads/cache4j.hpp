// cache4j analogue: a striped object cache with a consistent global→stripe
// lock order, concurrent reader/writer/cleaner threads, and no deadlocks —
// the paper's negative control (0 defects, Table 1 row 1). Exercises the
// detector on a lock-heavy but well-ordered trace and anchors the slowdown
// measurements.
#pragma once

#include "sim/program.hpp"

namespace wolf::workloads {

struct Cache4jConfig {
  int stripes = 4;
  int writers = 2;
  int readers = 2;
  int ops_per_thread = 8;  // put/get rounds (unrolled)
};

sim::Program make_cache4j(const Cache4jConfig& config = {});

}  // namespace wolf::workloads
