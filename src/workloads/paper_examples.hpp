// Literal encodings of the paper's illustrative examples, used by the test
// suite to pin the algorithms to the paper's exact figures and by the
// examples/benches as small canonical inputs.
#pragma once

#include "sim/program.hpp"

namespace wolf::workloads {

// Figure 4: threads t1/t2/t3 (ids 0/1/2), locks ℓ1/ℓ2/ℓ3 (ids 0/1/2).
// Site line numbers equal the paper's execution indices (11..19, 21, 31..36;
// releases not shown in the figure use lines 110+). Two cycles exist: θ1
// {η2, η5} (infeasible: t1 transitively starts t3 after releasing ℓ1ℓ2) and
// θ2 {η8, η5} (a real deadlock).
struct Figure4 {
  sim::Program program;
  LockId l1, l2, l3;
  // Sites by paper line number.
  SiteId s11, s12, s15, s16, s18, s19, s21, s31, s32, s33;
};
Figure4 make_figure4();

// Figure 2: two SynchronizedMap wrappers; both threads run the shared
// Collections.equals code (sites 2024, 509, 522), t1 on (SM1, SM2) and t2 on
// (SM2, SM1). Four cycles θ1..θ4 arise; θ4 — both threads blocking at 522 —
// is infeasible because of the interim size() acquisition at 509, and its Gs
// is cyclic (Fig. 7(b)).
struct Figure2 {
  sim::Program program;
  LockId sm1_mutex, sm2_mutex;
  SiteId s2024, s509, s522;
};
Figure2 make_figure2();

// Figure 1: the Jigsaw ThreadCache pattern. t1 locks TC (line 401) then CT
// (line 75) and, while holding both, starts t2 (line 76, inside
// CachedThread.start); t2 locks CT (line 24) then TC (line 175). The lock
// graph has a cycle but the deadlock is impossible: the Pruner eliminates it
// via the S component of the vector clock.
struct Figure1 {
  sim::Program program;
  LockId tc, ct;
  SiteId s401, s75, s24, s175;
};
Figure1 make_figure1();

// Figure 9: the Java Collections deadlock WOLF reproduces reliably and
// DeadlockFuzzer never did in 100 runs. Two worker threads are spawned at
// the *same* source site (equal DeadlockFuzzer abstractions) and both locks
// share an allocation site. t2 first executes the same addAll code path as
// t1 (sites 1591/1570) on the opposite collections, then the deadlocking
// removeAll (1594/1567); DeadlockFuzzer pauses t2 at its first pass through
// 1570 and misses the real interleaving.
struct Figure9 {
  sim::Program program;
  LockId sc1_mutex, sc2_mutex;
  SiteId s1591, s1570, s1594, s1567;
};
Figure9 make_figure9();

// Dining philosophers with N >= 2 philosophers and a clockwise fork order —
// one N-thread cycle; exercises k>2 cycle enumeration, generation and
// replay.
struct Philosophers {
  sim::Program program;
  std::vector<LockId> forks;
  std::vector<SiteId> first_pick, second_pick;
};
Philosophers make_philosophers(int n);

}  // namespace wolf::workloads
