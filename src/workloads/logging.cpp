#include "workloads/logging.hpp"

namespace wolf::workloads {

LoggingWorkload make_logging() {
  LoggingWorkload w;
  sim::Program& p = w.program;
  p.name = "JavaLogging";

  LockId logger_a = p.add_lock("LoggerA", p.site("Logger.<init>", 100));
  LockId handler_a = p.add_lock("HandlerA", p.site("Handler.<init>", 101));
  LockId logger_b = p.add_lock("LoggerB", p.site("Logger.<init>", 100));
  LockId handler_b = p.add_lock("HandlerB", p.site("Handler.<init>", 101));

  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("app");
  ThreadId t2 = p.add_thread("admin");
  ThreadId t3 = p.add_thread("flusher");
  ThreadId t4 = p.add_thread("reconfigurer");

  SiteId pad = p.site("Logging.compute", 1);

  // --- Defect A: Logger.log → Handler.publish vs Handler.close →
  // Logger.removeHandler (bug-24159 shape).
  SiteId s_log = p.site("Logger.log", 580);
  w.s_publish_handler = p.site("Handler.publish", 581);
  SiteId s_close = p.site("Handler.close", 620);
  w.s_close_logger = p.site("Logger.removeHandler", 621);

  p.compute(t1, pad, 2);
  p.lock(t1, logger_a, s_log);
  p.compute(t1, pad, 1);
  p.lock(t1, handler_a, w.s_publish_handler);
  p.unlock(t1, handler_a, p.site("Handler.publish(exit)", 582));
  p.unlock(t1, logger_a, p.site("Logger.log(exit)", 583));

  p.compute(t2, pad, 2);
  p.lock(t2, handler_a, s_close);
  p.compute(t2, pad, 1);
  p.lock(t2, logger_a, w.s_close_logger);
  p.unlock(t2, logger_a, p.site("Logger.removeHandler(exit)", 622));
  p.unlock(t2, handler_a, p.site("Handler.close(exit)", 623));

  // --- Defect B: Logger.flush → Handler.flush vs Handler.reconfigure →
  // Logger.setLevel. The flusher first calls Handler.flush directly (same
  // source site, no logger lock held) — the occurrence that confuses
  // DeadlockFuzzer's abstraction.
  SiteId s_flush = p.site("Logger.flush", 700);
  w.s_flush_handler = p.site("Handler.flush", 701);
  SiteId s_reconf = p.site("Handler.reconfigure", 720);
  w.s_reconf_logger = p.site("Logger.setLevel", 721);

  // Direct, unnested Handler.flush by the flusher (occurrence 0 of 701).
  p.lock(t3, handler_b, w.s_flush_handler);
  p.unlock(t3, handler_b, p.site("Handler.flush(exit)", 702));
  p.compute(t3, pad, 2);
  // Nested pass: Logger.flush → Handler.flush (occurrence 1 of 701).
  p.lock(t3, logger_b, s_flush);
  p.compute(t3, pad, 1);
  p.lock(t3, handler_b, w.s_flush_handler);
  p.unlock(t3, handler_b, p.site("Handler.flush(exit)", 702));
  p.unlock(t3, logger_b, p.site("Logger.flush(exit)", 703));

  p.compute(t4, pad, 2);
  p.lock(t4, handler_b, s_reconf);
  p.compute(t4, pad, 1);
  p.lock(t4, logger_b, w.s_reconf_logger);
  p.unlock(t4, logger_b, p.site("Logger.setLevel(exit)", 722));
  p.unlock(t4, handler_b, p.site("Handler.reconfigure(exit)", 723));

  SiteId spawn = p.site("Harness.spawn", 9001);
  SiteId joinsite = p.site("Harness.join", 9002);
  for (ThreadId t : {t1, t2, t3, t4}) p.start(main, t, spawn);
  for (ThreadId t : {t1, t2, t3, t4}) p.join(main, t, joinsite);

  p.finalize();
  return w;
}

}  // namespace wolf::workloads
