// Scaled, deadlock-free mirrors of each benchmark's locking profile, used
// exclusively for the Table-1 detection-slowdown measurement.
//
// The defect benchmarks themselves finish in well under a millisecond of
// OS-thread time, so an instrumented/uninstrumented ratio measured on them
// is pure noise. The paper's slowdown column is measured over full benchmark
// executions with millions of synchronization operations; these mirrors
// recreate that regime — the same nesting structure, thousands of lock
// operations, per-benchmark compute-to-locking ratios — while keeping a
// globally consistent lock order so the uninstrumented baseline cannot hang.
#pragma once

#include "sim/program.hpp"

namespace wolf::workloads {

struct SlowdownProfile {
  int threads = 4;
  int ops_per_thread = 1500;  // nested lock/unlock rounds
  // Busy-work units between rounds: higher means locking is a smaller share
  // of runtime and the measured slowdown shrinks toward 1.
  int compute_units = 1;
};

sim::Program make_slowdown_mirror(const std::string& name,
                                  const SlowdownProfile& profile);

}  // namespace wolf::workloads
