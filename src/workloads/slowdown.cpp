#include "workloads/slowdown.hpp"

#include "support/check.hpp"

namespace wolf::workloads {

sim::Program make_slowdown_mirror(const std::string& name,
                                  const SlowdownProfile& profile) {
  WOLF_CHECK(profile.threads >= 1);
  sim::Program p;
  p.name = name + "-slowdown";

  ThreadId main = p.add_thread("main");
  SiteId pad = p.site("Mirror.compute", 1);
  SiteId s_outer = p.site("Mirror.outer", 10);
  SiteId s_inner = p.site("Mirror.inner", 11);
  SiteId s_outer_x = p.site("Mirror.outer(exit)", 12);
  SiteId s_inner_x = p.site("Mirror.inner(exit)", 13);
  SiteId spawn = p.site("Mirror.spawn", 20);
  SiteId joinsite = p.site("Mirror.join", 21);

  // A shared lock (acquired first everywhere — consistent order, no
  // deadlock) plus one private lock per thread: contention on the recording
  // path without any cyclic dependency.
  LockId shared = p.add_lock("shared", p.site("Mirror.<init>", 2));

  std::vector<ThreadId> workers;
  for (int w = 0; w < profile.threads; ++w) {
    ThreadId t = p.add_thread("mirror-" + std::to_string(w));
    workers.push_back(t);
    LockId mine = p.add_lock("private-" + std::to_string(w),
                             p.site("Mirror.<init>", 3));
    LockId mine2 = p.add_lock("private2-" + std::to_string(w),
                              p.site("Mirror.<init>", 4));
    for (int op = 0; op < profile.ops_per_thread; ++op) {
      // Mostly-private nested round; every 16th round goes through the
      // shared lock to model cross-thread locking.
      LockId outer = (op % 16 == 0) ? shared : mine;
      p.lock(t, outer, s_outer);
      p.lock(t, mine2, s_inner);
      if (profile.compute_units > 0) p.compute(t, pad, profile.compute_units);
      p.unlock(t, mine2, s_inner_x);
      p.unlock(t, outer, s_outer_x);
    }
  }
  for (ThreadId t : workers) p.start(main, t, spawn);
  for (ThreadId t : workers) p.join(main, t, joinsite);

  p.finalize();
  return p;
}

}  // namespace wolf::workloads
