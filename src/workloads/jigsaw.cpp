#include "workloads/jigsaw.hpp"

#include "support/check.hpp"

namespace wolf::workloads {

JigsawWorkload make_jigsaw(const JigsawConfig& config) {
  WOLF_CHECK(config.contexts >= 1);
  JigsawWorkload w;
  sim::Program& p = w.program;
  p.name = "Jigsaw";

  ThreadId main = p.add_thread("main");
  SiteId pad = p.site("httpd.compute", 1);
  std::vector<ThreadId> to_join;

  // ------------------------------------------------------------------
  // (1) ThreadCache start-order false positives (Fig. 1), one per instance.
  // ------------------------------------------------------------------
  SiteId pool_spawn = p.site("ThreadCache.getCachedThread", 350);
  for (int k = 0; k < config.fig1_instances; ++k) {
    const int base = 400 + 40 * k;
    LockId tc = p.add_lock("TC-" + std::to_string(k),
                           p.site("ThreadCache.<init>", 2));
    LockId ct = p.add_lock("CT-" + std::to_string(k),
                           p.site("CachedThread.<init>", 3));
    ThreadId parent = p.add_thread("pool-" + std::to_string(k));
    ThreadId child = p.add_thread("cached-" + std::to_string(k));

    SiteId s_init = p.site("ThreadCache.initialize", base + 1);
    SiteId s_start = p.site("CachedThread.start", base + 2);
    SiteId s_wait = p.site("CachedThread.waitForRunner", base + 3);
    SiteId s_free = p.site("ThreadCache.isFree", base + 4);
    w.fig1_sites.push_back(s_free);

    p.lock(parent, tc, s_init);
    p.lock(parent, ct, s_start);
    p.start(parent, child, p.site("CachedThread.start(super)", base + 5));
    p.unlock(parent, ct, p.site("CachedThread.start(exit)", base + 6));
    p.unlock(parent, tc, p.site("ThreadCache.initialize(exit)", base + 7));

    p.lock(child, ct, s_wait);
    p.compute(child, pad, 1);
    p.lock(child, tc, s_free);
    p.unlock(child, tc, p.site("ThreadCache.isFree(exit)", base + 8));
    p.unlock(child, ct, p.site("CachedThread.waitForRunner(exit)", base + 9));

    p.start(main, parent, pool_spawn);
    to_join.push_back(parent);
    to_join.push_back(child);
  }

  // ------------------------------------------------------------------
  // (2) Real handler deadlocks: two request handlers, three shared resource
  // methods on opposite resource orders, each pass under a per-context
  // session lock.
  // ------------------------------------------------------------------
  SiteId handler_spawn = p.site("httpd.spawnHandler", 500);
  LockId res1 = p.add_lock("Resource-1", p.site("ResourceStore.load", 4));
  LockId res2 = p.add_lock("Resource-2", p.site("ResourceStore.load", 4));
  ThreadId h1 = p.add_thread("handler-1");
  ThreadId h2 = p.add_thread("handler-2");

  const char* methods[3] = {"lookup", "pipeline", "flushCache"};
  SiteId outer[3];
  for (int m = 0; m < 3; ++m) {
    const int base = 600 + 20 * m;
    outer[m] = p.site(std::string("HttpResource.") + methods[m], base);
    w.handler_inner.push_back(
        p.site(std::string("HttpResource.") + methods[m] + "(target)",
               base + 1));
  }

  // Heavy request-processing padding between the racy sections keeps the
  // reversed windows from aligning on most recorded schedules (real Jigsaw
  // runs rarely deadlock), while every section pair is still a genuine
  // deadlock some schedule can reach.
  auto pad_many = [&](ThreadId t, int n) {
    for (int i = 0; i < n; ++i) p.compute(t, pad, 1);
  };
  auto handler = [&](ThreadId t, LockId mine, LockId other, LockId session,
                     int passes, int initial_delay) {
    pad_many(t, initial_delay);
    for (int ctx = 0; ctx < passes; ++ctx) {
      SiteId ctx_site = p.site("Session.serve", 560 + ctx);
      SiteId ctx_exit = p.site("Session.serve(exit)", 570 + ctx);
      p.lock(t, session, ctx_site);
      for (int m = 0; m < 3; ++m) {
        pad_many(t, 14);
        p.lock(t, mine, outer[m]);
        p.lock(t, other, w.handler_inner[static_cast<std::size_t>(m)]);
        p.unlock(t, other,
                 p.site(std::string("HttpResource.") + methods[m] +
                            "(target-exit)",
                        602 + 20 * m));
        p.unlock(t, mine,
                 p.site(std::string("HttpResource.") + methods[m] + "(exit)",
                        603 + 20 * m));
      }
      p.unlock(t, session, ctx_exit);
    }
  };
  LockId sess1 = p.add_lock("Session-1", p.site("Session.<init>", 5));
  LockId sess2 = p.add_lock("Session-2", p.site("Session.<init>", 5));
  handler(h1, res1, res2, sess1, config.contexts, 0);
  handler(h2, res2, res1, sess2, 1, 8);
  p.start(main, h1, handler_spawn);
  p.start(main, h2, handler_spawn);
  to_join.push_back(h1);
  to_join.push_back(h2);

  // ------------------------------------------------------------------
  // (3) Data-dependency unknowns: producer/consumer pairs whose reversed
  // nested sections are serialized by a flag handshake.
  // ------------------------------------------------------------------
  SiteId worker_spawn = p.site("httpd.spawnWorker", 520);
  ThreadId producer = p.add_thread("indexer");
  ThreadId consumer = p.add_thread("publisher");
  for (int k = 0; k < config.data_dep_instances; ++k) {
    const int base = 800 + 40 * k;
    LockId x = p.add_lock("Index-" + std::to_string(k),
                          p.site("Index.<init>", 6));
    LockId y = p.add_lock("Digest-" + std::to_string(k),
                          p.site("Digest.<init>", 7));
    int flag = p.add_flag();

    SiteId s_px = p.site("Indexer.update", base + 1);
    SiteId s_py = p.site("Indexer.update(digest)", base + 2);
    SiteId s_cy = p.site("Publisher.publish", base + 3);
    SiteId s_cx = p.site("Publisher.publish(index)", base + 4);
    w.datadep_sites.push_back(s_cx);

    // Producer: nested (X, Y), then publish the flag.
    p.lock(producer, x, s_px);
    p.lock(producer, y, s_py);
    p.unlock(producer, y, p.site("Indexer.update(digest-exit)", base + 5));
    p.unlock(producer, x, p.site("Indexer.update(exit)", base + 6));
    p.set_flag(producer, flag, 1, p.site("Indexer.ready", base + 7));

    // Consumer: spin until the flag is up, then nested (Y, X) — regions can
    // never overlap, but nothing in the trace proves it.
    int loop_pc = p.compute(consumer, p.site("Publisher.poll", base + 8), 1);
    p.jump_if_flag(consumer, flag, 0, loop_pc,
                   p.site("Publisher.poll(check)", base + 9));
    p.lock(consumer, y, s_cy);
    p.lock(consumer, x, s_cx);
    p.unlock(consumer, x, p.site("Publisher.publish(index-exit)", base + 10));
    p.unlock(consumer, y, p.site("Publisher.publish(exit)", base + 11));
  }
  p.start(main, producer, worker_spawn);
  p.start(main, consumer, worker_spawn);
  to_join.push_back(producer);
  to_join.push_back(consumer);

  SiteId joinsite = p.site("httpd.join", 530);
  for (ThreadId t : to_join) p.join(main, t, joinsite);

  p.finalize();
  return w;
}

}  // namespace wolf::workloads
