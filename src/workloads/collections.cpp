#include "workloads/collections.hpp"

namespace wolf::workloads {

namespace {

// Method line-number bases mirroring Collections.java's synchronized
// wrappers; purely cosmetic but they make reports read like the paper's.
constexpr int kEqualsLine = 1566;
constexpr int kAddAllLine = 1590;
constexpr int kRemoveAllLine = 1593;
constexpr int kSizeLine = 1560;

}  // namespace

CollectionsWorkload make_collections_list(const std::string& class_name,
                                          int benign_ops) {
  CollectionsWorkload w;
  sim::Program& p = w.program;
  p.name = class_name;

  const std::string cls = "Synchronized" + class_name;
  SiteId alloc = p.site("Collections.synchronized" + class_name, 1501);
  LockId l1 = p.add_lock("C1.mutex", alloc);
  LockId l2 = p.add_lock("C2.mutex", alloc);

  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("worker-1");
  ThreadId t2 = p.add_thread("worker-2");

  const char* methods[3] = {"equals", "addAll", "removeAll"};
  const int lines[3] = {kEqualsLine, kAddAllLine, kRemoveAllLine};
  for (int m = 0; m < 3; ++m) {
    w.sites.outer[m] = p.site(cls + "." + methods[m], lines[m]);
    w.sites.inner[m] = p.site(cls + "." + methods[m] + "(arg)", lines[m] + 1);
  }
  SiteId benign = p.site(cls + ".size", kSizeLine);
  SiteId benign_exit = p.site(cls + ".size(exit)", kSizeLine + 1);
  SiteId pad = p.site(cls + ".compute", 1);

  // One worker: three two-lock methods on (mine, other), padded with benign
  // single-lock calls and compute so the workers genuinely overlap.
  auto worker = [&](ThreadId t, LockId mine, LockId other) {
    for (int m = 0; m < 3; ++m) {
      for (int b = 0; b < benign_ops; ++b) {
        p.lock(t, mine, benign);
        p.unlock(t, mine, benign_exit);
      }
      p.compute(t, pad, 2);
      p.lock(t, mine, w.sites.outer[m]);
      p.compute(t, pad, 1);
      p.lock(t, other, w.sites.inner[m]);
      p.unlock(t, other, p.site(cls + "." + methods[m] + "(arg-exit)",
                                lines[m] + 2));
      p.unlock(t, mine,
               p.site(cls + "." + methods[m] + "(exit)", lines[m] + 3));
    }
  };
  worker(t1, l1, l2);
  worker(t2, l2, l1);

  SiteId spawn = p.site("Harness.spawnWorker", 7001);
  SiteId joinsite = p.site("Harness.joinWorker", 7002);
  p.start(main, t1, spawn);
  p.start(main, t2, spawn);
  p.join(main, t1, joinsite);
  p.join(main, t2, joinsite);

  p.finalize();
  return w;
}

CollectionsWorkload make_collections_map(const std::string& class_name,
                                         int benign_ops) {
  CollectionsWorkload w;
  sim::Program& p = w.program;
  p.name = class_name;

  const std::string cls = "SynchronizedMap<" + class_name + ">";
  // Unlike the list driver (one wrapping call in a loop), the map test
  // driver wraps its two maps on two distinct source lines, so the two
  // mutexes carry distinguishable allocation-site abstractions — which is
  // why DeadlockFuzzer manages to reproduce the feasible map cycles.
  LockId m1 = p.add_lock(
      "SM1.mutex",
      p.site("Collections.synchronizedMap<" + class_name + ">", 2001));
  LockId m2 = p.add_lock(
      "SM2.mutex",
      p.site("Collections.synchronizedMap<" + class_name + ">", 2002));

  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("worker-1");
  ThreadId t2 = p.add_thread("worker-2");

  w.sites.s_equals = p.site(cls + ".equals", 2024);
  w.sites.s_size = p.site("AbstractMap.equals(size)", 509);
  w.sites.s_get = p.site("AbstractMap.equals(get)", 522);
  SiteId benign = p.site(cls + ".hashCode", 2030);
  SiteId benign_exit = p.site(cls + ".hashCode(exit)", 2031);
  SiteId pad = p.site(cls + ".compute", 1);

  // Worker-1 starts with extra warm-up (a cache-population phase in the
  // original harness), so worker-2 typically runs a method-phase ahead —
  // the interleaving variety that makes the (509, 522) deadlocks actually
  // occur in fuzzed re-executions.
  auto worker = [&](ThreadId t, LockId mine, LockId other, int lead_delay) {
    for (int d = 0; d < lead_delay; ++d) p.compute(t, pad, 1);
    for (int b = 0; b < benign_ops; ++b) {
      p.lock(t, mine, benign);
      p.unlock(t, mine, benign_exit);
    }
    p.compute(t, pad, 2);
    // equals(): synchronized(mutex) { if (t.size() != size()) ...
    //           if (!value.equals(t.get(key))) ... }
    p.lock(t, mine, w.sites.s_equals);
    p.compute(t, pad, 1);
    p.lock(t, other, w.sites.s_size);
    p.unlock(t, other, p.site("AbstractMap.equals(size-exit)", 510));
    p.compute(t, pad, 1);
    p.lock(t, other, w.sites.s_get);
    p.unlock(t, other, p.site("AbstractMap.equals(get-exit)", 523));
    p.unlock(t, mine, p.site(cls + ".equals(exit)", 2025));
  };
  worker(t1, m1, m2, /*lead_delay=*/3);
  worker(t2, m2, m1, /*lead_delay=*/0);

  SiteId spawn = p.site("Harness.spawnWorker", 7001);
  SiteId joinsite = p.site("Harness.joinWorker", 7002);
  p.start(main, t1, spawn);
  p.start(main, t2, spawn);
  p.join(main, t1, joinsite);
  p.join(main, t2, joinsite);

  p.finalize();
  return w;
}

}  // namespace wolf::workloads
