// ClockTracker — the timestamp bookkeeping of Algorithm 1 (Extended Dynamic
// Cycle Detector), factored out so that it can run either online inside a
// substrate or offline over a recorded trace.
//
// Maintains the two global states of §3.2:
//   τ : Thread -> Timestamp ∪ {⊥}
//   V : Thread -> VectorClock of (S, J) pairs
// with the update rules of Algorithm 1 for thread begin, t.start() and
// t.join().
#pragma once

#include <vector>

#include "clock/vector_clock.hpp"
#include "trace/event.hpp"
#include "trace/ids.hpp"

namespace wolf {

class ClockTracker {
 public:
  // τ_t; kTsBottom when t has not started.
  Timestamp timestamp(ThreadId t) const {
    if (t < 0 || static_cast<std::size_t>(t) >= tau_.size()) return kTsBottom;
    return tau_[static_cast<std::size_t>(t)];
  }

  // V_t(u); (⊥,⊥) when unknown.
  const SJPair& view(ThreadId t, ThreadId u) const {
    static const VectorClock kEmpty{};
    if (t < 0 || static_cast<std::size_t>(t) >= clocks_.size())
      return kEmpty.at(u);
    return clocks_[static_cast<std::size_t>(t)].at(u);
  }

  const VectorClock& clock(ThreadId t) const {
    static const VectorClock kEmpty{};
    if (t < 0 || static_cast<std::size_t>(t) >= clocks_.size()) return kEmpty;
    return clocks_[static_cast<std::size_t>(t)];
  }

  // Highest thread id ever observed (for sizing reports); -1 if none.
  ThreadId max_thread() const {
    return static_cast<ThreadId>(tau_.size()) - 1;
  }

  // Algorithm 1, line 11: a thread's timestamp becomes 1 when it first acts.
  void on_thread_begin(ThreadId t);

  // Algorithm 1, lines 13–21.
  void on_start(ThreadId parent, ThreadId child);

  // Algorithm 1, lines 22–28.
  void on_join(ThreadId parent, ThreadId child);

  // Dispatches one instrumentation event (begin/start/join affect clocks;
  // lock events only require that the acting thread has begun).
  void apply(const Event& e);

  // Runs a whole trace through a fresh tracker.
  static ClockTracker from_trace(const Trace& trace);

 private:
  void ensure(ThreadId t);

  std::vector<Timestamp> tau_;
  std::vector<VectorClock> clocks_;
};

}  // namespace wolf
