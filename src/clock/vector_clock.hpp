// (S, J)-pair vector clocks — the paper's §3.2 extension.
//
// Each thread t keeps a scalar timestamp τ_t (bumped on every start/join it
// performs) and a vector V_t of ordered pairs, one per thread t':
//
//   S = V_t(t').S : every operation of t' with timestamp < S always completes
//                   before t begins executing (no overlap possible).
//   J = V_t(t').J : every operation of t with timestamp >= J always executes
//                   after t' has been joined (no overlap possible).
//
// kTsBottom (⊥) marks unset entries. These clocks identify the maximal
// non-overlapping regions between thread pairs that follow from start/join
// edges; the Pruner consumes them.
#pragma once

#include <string>
#include <vector>

#include "trace/ids.hpp"

namespace wolf {

struct SJPair {
  Timestamp S = kTsBottom;
  Timestamp J = kTsBottom;

  friend bool operator==(const SJPair&, const SJPair&) = default;

  std::string to_string() const {
    auto fmt = [](Timestamp v) {
      return v == kTsBottom ? std::string("_") : std::to_string(v);
    };
    return "(" + fmt(S) + "," + fmt(J) + ")";
  }
};

// A growable vector of SJPairs indexed by ThreadId; entries default to (⊥,⊥).
class VectorClock {
 public:
  const SJPair& at(ThreadId t) const {
    static const SJPair kBottom{};
    if (t < 0 || static_cast<std::size_t>(t) >= pairs_.size()) return kBottom;
    return pairs_[static_cast<std::size_t>(t)];
  }

  SJPair& mutable_at(ThreadId t) {
    WOLF_CHECK(t >= 0);
    if (static_cast<std::size_t>(t) >= pairs_.size())
      pairs_.resize(static_cast<std::size_t>(t) + 1);
    return pairs_[static_cast<std::size_t>(t)];
  }

  std::size_t size() const { return pairs_.size(); }

  std::string to_string() const {
    std::string out = "<";
    for (std::size_t i = 0; i < pairs_.size(); ++i) {
      if (i != 0) out += ",";
      out += pairs_[i].to_string();
    }
    out += ">";
    return out;
  }

 private:
  std::vector<SJPair> pairs_;
};

}  // namespace wolf
