#include "clock/clock_tracker.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace wolf {

void ClockTracker::ensure(ThreadId t) {
  WOLF_CHECK_MSG(t >= 0, "negative thread id " << t);
  if (static_cast<std::size_t>(t) >= tau_.size()) {
    tau_.resize(static_cast<std::size_t>(t) + 1, kTsBottom);
    clocks_.resize(static_cast<std::size_t>(t) + 1);
  }
}

void ClockTracker::on_thread_begin(ThreadId t) {
  ensure(t);
  auto& tau = tau_[static_cast<std::size_t>(t)];
  if (tau == kTsBottom) tau = 1;
}

void ClockTracker::on_start(ThreadId parent, ThreadId child) {
  ensure(parent);
  ensure(child);
  on_thread_begin(parent);

  // τ_p ← τ_p + 1 ; τ_c ← 1
  Timestamp& tau_p = tau_[static_cast<std::size_t>(parent)];
  Timestamp& tau_c = tau_[static_cast<std::size_t>(child)];
  tau_p += 1;
  tau_c = 1;

  VectorClock& vp = clocks_[static_cast<std::size_t>(parent)];
  VectorClock& vc = clocks_[static_cast<std::size_t>(child)];
  const ThreadId known = static_cast<ThreadId>(tau_.size());
  for (ThreadId i = 0; i < known; ++i) {
    // Threads that can no longer overlap with the parent (because of some
    // join observed by the parent, possibly transitively) can never overlap
    // with the child either: every child instruction has timestamp >= 1.
    if (vp.at(i).J != kTsBottom) vc.mutable_at(i).J = tau_c;
    if (i == parent) {
      // Everything the parent did before this start (timestamp < τ_p)
      // happens before the child's first instruction.
      vc.mutable_at(parent).S = tau_p;
    } else {
      // Operations already in the past for the parent are in the past for
      // the child too.
      vc.mutable_at(i).S = vp.at(i).S;
    }
  }
}

void ClockTracker::on_join(ThreadId parent, ThreadId child) {
  ensure(parent);
  ensure(child);
  on_thread_begin(parent);

  Timestamp& tau_p = tau_[static_cast<std::size_t>(parent)];
  tau_p += 1;

  VectorClock& vp = clocks_[static_cast<std::size_t>(parent)];
  const VectorClock& vc = clocks_[static_cast<std::size_t>(child)];
  const ThreadId known = static_cast<ThreadId>(tau_.size());
  for (ThreadId i = 0; i < known; ++i) {
    // The joined child — and transitively every thread the child had already
    // observed as joined — can no longer overlap with the parent from
    // timestamp τ_p onward.
    if (i == child ||
        (vc.at(i).J != kTsBottom && vp.at(i).J == kTsBottom)) {
      vp.mutable_at(i).J = tau_p;
    }
  }
}

void ClockTracker::apply(const Event& e) {
  switch (e.kind) {
    case EventKind::kThreadBegin:
      on_thread_begin(e.thread);
      break;
    case EventKind::kThreadStart:
      on_start(e.thread, e.other);
      break;
    case EventKind::kThreadJoin:
      on_join(e.thread, e.other);
      break;
    case EventKind::kThreadEnd:
    case EventKind::kLockAcquire:
    case EventKind::kLockRelease:
      // Timestamps are unaffected; make sure the acting thread is known so
      // detectors can query its τ.
      on_thread_begin(e.thread);
      break;
  }
}

ClockTracker ClockTracker::from_trace(const Trace& trace) {
  ClockTracker tracker;
  for (const Event& e : trace.events) tracker.apply(e);
  return tracker;
}

}  // namespace wolf
