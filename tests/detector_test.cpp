// Tests for potential-deadlock cycle enumeration: the cyclic-request
// condition, guard-lock suppression, distinct threads, k-way cycles,
// canonical deduplication, cycle-length caps, and defect grouping.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/detector.hpp"
#include "sim/scheduler.hpp"
#include "workloads/collections.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

struct Step {
  EventKind kind;
  ThreadId thread;
  SiteId site;
  LockId lock;
};

Trace trace_of(std::initializer_list<Step> steps) {
  Trace trace;
  std::uint64_t seq = 0;
  std::map<std::pair<ThreadId, SiteId>, std::int32_t> occ;
  for (const Step& s : steps) {
    Event e;
    e.seq = seq++;
    e.kind = s.kind;
    e.thread = s.thread;
    e.site = s.site;
    e.occurrence = occ[{s.thread, s.site}]++;
    e.lock = s.lock;
    trace.events.push_back(e);
  }
  return trace;
}

constexpr EventKind A = EventKind::kLockAcquire;
constexpr EventKind R = EventKind::kLockRelease;

// t0: 10 then 11 nested; t1: 11 then 10 nested — the canonical AB/BA.
Trace abba_trace() {
  return trace_of({{A, 0, 1, 10}, {A, 0, 2, 11}, {R, 0, 3, 11}, {R, 0, 4, 10},
                   {A, 1, 5, 11}, {A, 1, 6, 10}, {R, 1, 7, 10},
                   {R, 1, 8, 11}});
}

TEST(DetectorTest, FindsTheAbbaCycle) {
  Detection det = detect(abba_trace());
  ASSERT_EQ(det.cycles.size(), 1u);
  const PotentialDeadlock& theta = det.cycles[0];
  ASSERT_EQ(theta.tuple_idx.size(), 2u);
  std::set<ThreadId> threads;
  for (std::size_t i : theta.tuple_idx)
    threads.insert(det.dep.tuples[i].thread);
  EXPECT_EQ(threads, (std::set<ThreadId>{0, 1}));
}

TEST(DetectorTest, ConsistentOrderHasNoCycle) {
  Trace trace = trace_of({{A, 0, 1, 10}, {A, 0, 2, 11}, {R, 0, 3, 11},
                          {R, 0, 4, 10}, {A, 1, 5, 10}, {A, 1, 6, 11},
                          {R, 1, 7, 11}, {R, 1, 8, 10}});
  EXPECT_TRUE(detect(trace).cycles.empty());
}

TEST(DetectorTest, GuardLockSuppressesCycle) {
  // Both nested regions are protected by common lock 9 — no deadlock.
  Trace trace = trace_of(
      {{A, 0, 0, 9}, {A, 0, 1, 10}, {A, 0, 2, 11}, {R, 0, 3, 11},
       {R, 0, 4, 10}, {R, 0, 5, 9},
       {A, 1, 6, 9}, {A, 1, 7, 11}, {A, 1, 8, 10}, {R, 1, 9, 10},
       {R, 1, 10, 11}, {R, 1, 11, 9}});
  EXPECT_TRUE(detect(trace).cycles.empty());
}

TEST(DetectorTest, SingleThreadNeverCycles) {
  // The same thread locks 10→11 and later 11→10: not a deadlock.
  Trace trace = trace_of({{A, 0, 1, 10}, {A, 0, 2, 11}, {R, 0, 3, 11},
                          {R, 0, 4, 10}, {A, 0, 5, 11}, {A, 0, 6, 10},
                          {R, 0, 7, 10}, {R, 0, 8, 11}});
  EXPECT_TRUE(detect(trace).cycles.empty());
}

TEST(DetectorTest, ThreeWayCycleDetected) {
  // t0: 10→11, t1: 11→12, t2: 12→10.
  Trace trace = trace_of(
      {{A, 0, 1, 10}, {A, 0, 2, 11}, {R, 0, 3, 11}, {R, 0, 4, 10},
       {A, 1, 5, 11}, {A, 1, 6, 12}, {R, 1, 7, 12}, {R, 1, 8, 11},
       {A, 2, 9, 12}, {A, 2, 10, 10}, {R, 2, 11, 10}, {R, 2, 12, 12}});
  Detection det = detect(trace);
  ASSERT_EQ(det.cycles.size(), 1u);
  EXPECT_EQ(det.cycles[0].tuple_idx.size(), 3u);
}

TEST(DetectorTest, CycleLengthCapExcludesLongCycles) {
  Trace trace = trace_of(
      {{A, 0, 1, 10}, {A, 0, 2, 11}, {R, 0, 3, 11}, {R, 0, 4, 10},
       {A, 1, 5, 11}, {A, 1, 6, 12}, {R, 1, 7, 12}, {R, 1, 8, 11},
       {A, 2, 9, 12}, {A, 2, 10, 10}, {R, 2, 11, 10}, {R, 2, 12, 12}});
  DetectorOptions options;
  options.max_cycle_length = 2;
  EXPECT_TRUE(detect(trace, options).cycles.empty());
}

TEST(DetectorTest, PhilosophersRingHasExactlyOneFullCycle) {
  auto w = workloads::make_philosophers(5);
  auto trace = sim::record_trace(w.program, 3);
  ASSERT_TRUE(trace.has_value());
  DetectorOptions options;
  options.max_cycle_length = 5;
  Detection det = detect(*trace, options);
  ASSERT_EQ(det.cycles.size(), 1u);
  EXPECT_EQ(det.cycles[0].tuple_idx.size(), 5u);
}

TEST(DetectorTest, NoDuplicateCyclesUnderRotation) {
  Detection det = detect(abba_trace());
  ASSERT_EQ(det.cycles.size(), 1u);
  // The canonical rotation starts at the minimal thread id.
  EXPECT_EQ(det.dep.tuples[det.cycles[0].tuple_idx[0]].thread, 0);
}

TEST(DetectorTest, MultipleDistinctCyclesEnumerated) {
  // Two independent AB/BA pairs on disjoint locks between the same threads.
  Trace trace = trace_of(
      {{A, 0, 1, 10}, {A, 0, 2, 11}, {R, 0, 3, 11}, {R, 0, 4, 10},
       {A, 0, 5, 20}, {A, 0, 6, 21}, {R, 0, 7, 21}, {R, 0, 8, 20},
       {A, 1, 11, 11}, {A, 1, 12, 10}, {R, 1, 13, 10}, {R, 1, 14, 11},
       {A, 1, 15, 21}, {A, 1, 16, 20}, {R, 1, 17, 20}, {R, 1, 18, 21}});
  Detection det = detect(trace);
  EXPECT_EQ(det.cycles.size(), 2u);
  EXPECT_EQ(det.defects.size(), 2u);
}

TEST(DetectorTest, DefectGroupingCollapsesSameSignature) {
  // The same AB/BA source sites executed twice by each thread: several
  // cycles, one defect.
  Trace trace = trace_of(
      {{A, 0, 1, 10}, {A, 0, 2, 11}, {R, 0, 3, 11}, {R, 0, 4, 10},
       {A, 1, 5, 11}, {A, 1, 6, 10}, {R, 1, 7, 10}, {R, 1, 8, 11},
       {A, 0, 1, 10}, {A, 0, 2, 11}, {R, 0, 3, 11}, {R, 0, 4, 10},
       {A, 1, 5, 11}, {A, 1, 6, 10}, {R, 1, 7, 10}, {R, 1, 8, 11}});
  Detection det = detect(trace);
  EXPECT_EQ(det.cycles.size(), 1u);  // deduplicated by context sites
  EXPECT_EQ(det.defects.size(), 1u);
}

TEST(DetectorTest, SignatureIsSortedSiteMultiset) {
  Detection det = detect(abba_trace());
  ASSERT_EQ(det.cycles.size(), 1u);
  DefectSignature sig = signature_of(det.cycles[0], det.dep);
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_LE(sig[0], sig[1]);
  EXPECT_EQ(sig, (DefectSignature{2, 6}));
}

TEST(DetectorTest, MaxCyclesCapStopsEnumeration) {
  auto w = workloads::make_collections_list("ArrayList");
  auto trace = sim::record_trace(w.program, 9);
  ASSERT_TRUE(trace.has_value());
  DetectorOptions options;
  options.max_cycles = 4;
  Detection det = detect(*trace, options);
  EXPECT_EQ(det.cycles.size(), 4u);
  EXPECT_TRUE(det.truncated);
  EXPECT_EQ(det.cycle_cap, 4u);

  // Without hitting the cap the detection reports itself complete.
  Detection full = detect(*trace);
  EXPECT_FALSE(full.truncated);
  EXPECT_EQ(full.cycle_cap, 0u);
}

TEST(DetectorTest, Figure1PatternIsDetectedAsCycle) {
  auto fig = workloads::make_figure1();
  auto trace = sim::record_trace(fig.program, 1);
  ASSERT_TRUE(trace.has_value());
  Detection det = detect(*trace);
  ASSERT_EQ(det.cycles.size(), 1u);  // trace-agnostic detection reports it
  EXPECT_EQ(signature_of(det.cycles[0], det.dep),
            (DefectSignature{std::min(fig.s75, fig.s175),
                             std::max(fig.s75, fig.s175)}));
}

TEST(DetectorTest, Figure2HasFourCyclesThreeDefects) {
  auto fig = workloads::make_figure2();
  auto trace = sim::record_trace(fig.program, 21);
  ASSERT_TRUE(trace.has_value());
  Detection det = detect(*trace);
  EXPECT_EQ(det.cycles.size(), 4u);
  EXPECT_EQ(det.defects.size(), 3u);
}

TEST(DetectorTest, ReentrantAcquisitionsProduceNoExtraTuples) {
  auto fig = workloads::make_figure4();
  // Append a re-entrant region to t1 of a copy: a thread locking a lock it
  // already holds must add nothing to D_σ. Here we simply check the sim
  // substrate + detector on a small re-entrant program.
  sim::Program p;
  LockId a = p.add_lock("A", p.site("alloc", 1));
  ThreadId t = p.add_thread("main");
  SiteId s1 = p.site("outer", 1);
  SiteId s2 = p.site("inner", 2);
  p.lock(t, a, s1);
  p.lock(t, a, s2);  // re-entrant
  p.unlock(t, a, p.site("x", 3));
  p.unlock(t, a, p.site("y", 4));
  p.finalize();
  auto trace = sim::record_trace(p, 1);
  ASSERT_TRUE(trace.has_value());
  Detection det = detect(*trace);
  EXPECT_EQ(det.dep.tuples.size(), 1u);
  (void)fig;
}

}  // namespace
}  // namespace wolf
