// Shared helpers for the WOLF test suite, most importantly a generator of
// random well-formed programs used by the property tests: every lock region
// is well nested, control flow is branch-free (so a completed trace covers
// every operation — the premise under which the detector is complete), and
// every operation gets a unique source site (so deadlock signatures identify
// operations exactly).
#pragma once

#include <string>
#include <vector>

#include "sim/program.hpp"
#include "sim/scheduler.hpp"
#include "support/rng.hpp"

namespace wolf::test {

struct RandomProgramConfig {
  int workers = 3;         // worker threads (thread 0 is always main)
  int locks = 3;
  int blocks_per_worker = 3;  // top-level lock regions per worker
  int max_nesting = 3;
  double nest_probability = 0.55;
  // Probability that a worker is started by the previous worker instead of
  // main, and that main joins a worker before starting the next one — both
  // create the start/join orderings the Pruner reasons about.
  double chained_start_probability = 0.3;
  double early_join_probability = 0.2;
};

// Builds a random program; deterministic in `rng`.
sim::Program random_program(Rng& rng, const RandomProgramConfig& config = {});

// Sorted site multiset of a run's deadlock cycle.
std::vector<SiteId> deadlock_signature(const sim::RunResult& result);

}  // namespace wolf::test
