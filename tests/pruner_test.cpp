// Tests for the Pruner (Algorithm 2): the S-based "thread hadn't started"
// elimination, the J-based "thread had already joined" elimination, and —
// via the systematic explorer — the soundness of every pruning decision.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pruner.hpp"
#include "explore/explorer.hpp"
#include "sim/scheduler.hpp"
#include "testutil.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

Detection detect_program(const sim::Program& program, std::uint64_t seed) {
  auto trace = sim::record_trace(program, seed);
  EXPECT_TRUE(trace.has_value());
  return detect(*trace);
}

TEST(PrunerTest, Figure1StartOrderCycleIsFalse) {
  auto fig = workloads::make_figure1();
  Detection det = detect_program(fig.program, 1);
  ASSERT_EQ(det.cycles.size(), 1u);
  EXPECT_EQ(prune_cycle(det.cycles[0], det.dep, det.clocks),
            PruneVerdict::kFalseNotStarted);
}

TEST(PrunerTest, ConcurrentWorkersAreNotPruned) {
  // main starts both workers before joining either: genuine overlap.
  sim::Program p;
  LockId a = p.add_lock("A", p.site("alloc", 1));
  LockId b = p.add_lock("B", p.site("alloc", 2));
  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  ThreadId t2 = p.add_thread("t2");
  p.lock(t1, a, p.site("t1.outer", 1));
  p.lock(t1, b, p.site("t1.inner", 2));
  p.unlock(t1, b, p.site("t1.x", 3));
  p.unlock(t1, a, p.site("t1.y", 4));
  p.lock(t2, b, p.site("t2.outer", 1));
  p.lock(t2, a, p.site("t2.inner", 2));
  p.unlock(t2, a, p.site("t2.x", 3));
  p.unlock(t2, b, p.site("t2.y", 4));
  p.start(main, t1, p.site("spawn", 1));
  p.start(main, t2, p.site("spawn", 1));
  p.join(main, t1, p.site("join", 1));
  p.join(main, t2, p.site("join", 1));
  p.finalize();

  Detection det = detect_program(p, 3);
  ASSERT_EQ(det.cycles.size(), 1u);
  EXPECT_EQ(prune_cycle(det.cycles[0], det.dep, det.clocks),
            PruneVerdict::kUnknown);
}

TEST(PrunerTest, SequentialWorkersViaJoinArePruned) {
  // main starts t1, joins it, then starts t2 — the J-based elimination.
  sim::Program p;
  LockId a = p.add_lock("A", p.site("alloc", 1));
  LockId b = p.add_lock("B", p.site("alloc", 2));
  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  ThreadId t2 = p.add_thread("t2");
  p.lock(t1, a, p.site("t1.outer", 1));
  p.lock(t1, b, p.site("t1.inner", 2));
  p.unlock(t1, b, p.site("t1.x", 3));
  p.unlock(t1, a, p.site("t1.y", 4));
  p.lock(t2, b, p.site("t2.outer", 1));
  p.lock(t2, a, p.site("t2.inner", 2));
  p.unlock(t2, a, p.site("t2.x", 3));
  p.unlock(t2, b, p.site("t2.y", 4));
  p.start(main, t1, p.site("spawn", 1));
  p.join(main, t1, p.site("join", 1));
  p.start(main, t2, p.site("spawn", 2));
  p.join(main, t2, p.site("join", 2));
  p.finalize();

  Detection det = detect_program(p, 3);
  ASSERT_EQ(det.cycles.size(), 1u);
  PruneVerdict verdict = prune_cycle(det.cycles[0], det.dep, det.clocks);
  EXPECT_TRUE(is_false(verdict));

  // And indeed no schedule can deadlock: the explorer agrees.
  explore::ExploreResult explored = explore::explore(p);
  ASSERT_TRUE(explored.exhausted);
  EXPECT_TRUE(explored.deadlock_signatures.empty());
}

TEST(PrunerTest, ChainedStartTransitivityIsUsed) {
  // Figure 4's θ1: t3 is started transitively (t1 → t2 → t3) after t1's
  // early acquisitions; the S value flows through the chain.
  auto fig = workloads::make_figure4();
  Detection det = detect_program(fig.program, 42);
  auto verdicts = prune(det);
  int pruned = 0;
  for (PruneVerdict v : verdicts)
    if (is_false(v)) ++pruned;
  EXPECT_EQ(pruned, 1);
}

TEST(PrunerTest, PruneBatchMatchesPerCycleCalls) {
  auto fig = workloads::make_figure4();
  Detection det = detect_program(fig.program, 42);
  auto verdicts = prune(det);
  ASSERT_EQ(verdicts.size(), det.cycles.size());
  for (std::size_t c = 0; c < det.cycles.size(); ++c)
    EXPECT_EQ(verdicts[c], prune_cycle(det.cycles[c], det.dep, det.clocks));
}

TEST(PrunerTest, VerdictNamesAreStable) {
  EXPECT_STREQ(to_string(PruneVerdict::kUnknown), "unknown");
  EXPECT_STREQ(to_string(PruneVerdict::kFalseNotStarted),
               "false(not-started)");
  EXPECT_STREQ(to_string(PruneVerdict::kFalseJoined), "false(joined)");
}

// ------------------------------------------------------------- soundness

// Pruner soundness over random programs: every cycle the Pruner eliminates
// must be unreachable in the exhaustive schedule space. Random programs use
// unique sites per operation, so signature equality identifies operations.
class PrunerSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(PrunerSoundnessTest, PrunedCyclesAreUnreachable) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  test::RandomProgramConfig config;
  config.workers = 2 + static_cast<int>(rng.below(2));
  config.locks = 2 + static_cast<int>(rng.below(2));
  config.blocks_per_worker = 2;
  sim::Program program = test::random_program(rng, config);

  auto trace = sim::record_trace(program, rng(), 30);
  if (!trace.has_value()) GTEST_SKIP() << "recording kept deadlocking";
  Detection det = detect(*trace);
  auto verdicts = prune(det);
  bool any_pruned = false;
  for (PruneVerdict v : verdicts) any_pruned |= is_false(v);
  if (!any_pruned) GTEST_SKIP() << "nothing pruned for this seed";

  explore::ExploreOptions explore_options;
  explore_options.max_states = 400000;
  explore::ExploreResult explored = explore::explore(program, explore_options);
  if (!explored.exhausted) GTEST_SKIP() << "state space too large";

  for (std::size_t c = 0; c < det.cycles.size(); ++c) {
    if (!is_false(verdicts[c])) continue;
    DefectSignature sig = signature_of(det.cycles[c], det.dep);
    EXPECT_FALSE(explored.deadlock_reachable_at(sig))
        << "pruned cycle " << det.cycles[c].to_string(det.dep)
        << " is actually reachable";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrunerSoundnessTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace wolf
