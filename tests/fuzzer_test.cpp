// Tests for the DeadlockFuzzer baseline: creation-site thread abstractions,
// target construction, and the Fig. 9 reliability separation vs WOLF.
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/deadlock_fuzzer.hpp"
#include "core/generator.hpp"
#include "sim/scheduler.hpp"
#include "workloads/collections.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

using baseline::df_targets;
using baseline::thread_abstraction;

Detection detect_program(const sim::Program& program, std::uint64_t seed) {
  auto trace = sim::record_trace(program, seed);
  EXPECT_TRUE(trace.has_value());
  return detect(*trace);
}

const PotentialDeadlock* cycle_with_signature(const Detection& det,
                                              std::vector<SiteId> sites) {
  std::sort(sites.begin(), sites.end());
  for (const PotentialDeadlock& c : det.cycles)
    if (signature_of(c, det.dep) == sites) return &c;
  return nullptr;
}

TEST(ThreadAbstractionTest, RootHasEmptyChain) {
  auto fig = workloads::make_figure9();
  EXPECT_TRUE(thread_abstraction(fig.program, 0).empty());
}

TEST(ThreadAbstractionTest, SameSpawnSiteCollides) {
  auto fig = workloads::make_figure9();
  // worker-1 and worker-2 are spawned at the same source site.
  EXPECT_EQ(thread_abstraction(fig.program, 1),
            thread_abstraction(fig.program, 2));
  EXPECT_FALSE(thread_abstraction(fig.program, 1).empty());
}

TEST(ThreadAbstractionTest, ChainIncludesAncestorSites) {
  // Figure 4: t3 is started by t2 which is started by t1 — chain length 2.
  auto fig = workloads::make_figure4();
  auto chain = thread_abstraction(fig.program, 2);
  EXPECT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0], fig.s15);
  EXPECT_EQ(chain[1], fig.s21);
}

TEST(DfTargetsTest, OnePerCycleTupleWithSitesAndAllocs) {
  auto fig = workloads::make_figure9();
  Detection det = detect_program(fig.program, 17);
  const PotentialDeadlock* target_cycle =
      cycle_with_signature(det, {fig.s1570, fig.s1567});
  ASSERT_NE(target_cycle, nullptr);
  auto targets = df_targets(fig.program, *target_cycle, det.dep);
  ASSERT_EQ(targets.size(), 2u);
  std::vector<SiteId> sites{targets[0].acquire_site, targets[1].acquire_site};
  std::sort(sites.begin(), sites.end());
  std::vector<SiteId> expected{fig.s1570, fig.s1567};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sites, expected);
  // Both locks were allocated by the same wrapper line.
  EXPECT_EQ(targets[0].lock_alloc_site, targets[1].lock_alloc_site);
}

TEST(FuzzerTest, Figure9TargetNeverReproducedByBaseline) {
  auto fig = workloads::make_figure9();
  Detection det = detect_program(fig.program, 17);
  const PotentialDeadlock* target =
      cycle_with_signature(det, {fig.s1570, fig.s1567});
  ASSERT_NE(target, nullptr);

  ReplayOptions options;
  options.attempts = 100;
  options.stop_on_first_hit = false;
  options.seed = 5;
  ReplayStats stats = baseline::fuzz(fig.program, *target, det.dep, options);
  EXPECT_EQ(stats.hits, 0) << "paper: DF never reproduced this in 100 runs";
}

TEST(FuzzerTest, Figure9TargetReproducedReliablyByWolf) {
  auto fig = workloads::make_figure9();
  Detection det = detect_program(fig.program, 17);
  const PotentialDeadlock* target =
      cycle_with_signature(det, {fig.s1570, fig.s1567});
  ASSERT_NE(target, nullptr);
  GeneratorResult gen = generate(*target, det.dep);
  ASSERT_TRUE(gen.feasible);

  ReplayOptions options;
  options.attempts = 50;
  options.stop_on_first_hit = false;
  options.seed = 5;
  ReplayStats stats = replay(fig.program, *target, det.dep, gen.gs, options);
  EXPECT_GT(stats.hit_rate(), 0.9);
}

TEST(FuzzerTest, SymmetricDeadlockIsReproducedByBaseline) {
  // The (1570, 1570) cycle of the same program has no occurrence ambiguity
  // the baseline cares about — it reproduces it.
  auto fig = workloads::make_figure9();
  Detection det = detect_program(fig.program, 17);
  const PotentialDeadlock* symmetric =
      cycle_with_signature(det, {fig.s1570, fig.s1570});
  ASSERT_NE(symmetric, nullptr);

  ReplayOptions options;
  options.attempts = 50;
  options.stop_on_first_hit = false;
  options.seed = 5;
  ReplayStats stats =
      baseline::fuzz(fig.program, *symmetric, det.dep, options);
  EXPECT_GT(stats.hits, 0);
}

TEST(FuzzerTest, DiagonalCollectionsDefectsReproduced) {
  auto w = workloads::make_collections_list("ArrayList");
  Detection det = detect_program(w.program, 11);
  int diagonal_hits = 0, diagonals = 0;
  for (const PotentialDeadlock& cycle : det.cycles) {
    DefectSignature sig = signature_of(cycle, det.dep);
    if (sig[0] != sig[1]) continue;  // only same-method pairs
    ++diagonals;
    ReplayOptions options;
    options.attempts = 20;
    options.seed = 7;
    if (baseline::fuzz(w.program, cycle, det.dep, options).reproduced())
      ++diagonal_hits;
  }
  EXPECT_EQ(diagonals, 3);
  EXPECT_EQ(diagonal_hits, 3);
}

TEST(FuzzerTest, FuzzSeriesCountsOutcomes) {
  auto fig = workloads::make_figure4();
  Detection det = detect_program(fig.program, 42);
  ASSERT_FALSE(det.cycles.empty());
  ReplayOptions options;
  options.attempts = 10;
  options.stop_on_first_hit = false;
  options.seed = 3;
  ReplayStats stats =
      baseline::fuzz(fig.program, det.cycles[0], det.dep, options);
  EXPECT_EQ(stats.attempts, 10);
  EXPECT_EQ(stats.hits + stats.other_deadlocks + stats.no_deadlocks +
                stats.step_limits,
            stats.attempts);
}

}  // namespace
}  // namespace wolf
