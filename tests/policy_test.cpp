// Tests for the scheduling policies and their interaction with the run loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "sim/policy.hpp"
#include "sim/scheduler.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

using sim::FixedChoicePolicy;
using sim::PreferThreadPolicy;
using sim::RandomPolicy;
using sim::RoundRobinPolicy;
using sim::RunToBlockPolicy;

const std::vector<ThreadId> kEnabled{0, 2, 5};

TEST(PolicyTest, RandomPolicyPicksFromEnabled) {
  RandomPolicy policy;
  Rng rng(3);
  std::set<ThreadId> seen;
  for (int i = 0; i < 200; ++i) {
    ThreadId t = policy.pick(kEnabled, rng);
    EXPECT_TRUE(std::count(kEnabled.begin(), kEnabled.end(), t) == 1);
    seen.insert(t);
  }
  EXPECT_EQ(seen.size(), kEnabled.size());  // all eventually picked
}

TEST(PolicyTest, RoundRobinCyclesThroughThreads) {
  RoundRobinPolicy policy;
  Rng rng(1);
  EXPECT_EQ(policy.pick(kEnabled, rng), 0);
  EXPECT_EQ(policy.pick(kEnabled, rng), 2);
  EXPECT_EQ(policy.pick(kEnabled, rng), 5);
  EXPECT_EQ(policy.pick(kEnabled, rng), 0);  // wraps
}

TEST(PolicyTest, RoundRobinSkipsDisabled) {
  RoundRobinPolicy policy;
  Rng rng(1);
  EXPECT_EQ(policy.pick({0, 1, 2}, rng), 0);
  EXPECT_EQ(policy.pick({0, 2}, rng), 2);  // 1 no longer enabled
}

TEST(PolicyTest, RunToBlockSticksWithCurrentThread) {
  RunToBlockPolicy policy;
  Rng rng(7);
  ThreadId first = policy.pick(kEnabled, rng);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(policy.pick(kEnabled, rng), first);
  // Once the thread disappears from the enabled set, another is chosen.
  std::vector<ThreadId> rest;
  for (ThreadId t : kEnabled)
    if (t != first) rest.push_back(t);
  ThreadId next = policy.pick(rest, rng);
  EXPECT_NE(next, first);
  EXPECT_EQ(policy.pick(rest, rng), next);
}

TEST(PolicyTest, FixedChoiceFollowsScriptThenFallsBack) {
  FixedChoicePolicy policy({2, 0, 1});
  Rng rng(1);
  EXPECT_EQ(policy.pick(kEnabled, rng), 5);  // index 2
  EXPECT_EQ(policy.pick(kEnabled, rng), 0);  // index 0
  EXPECT_EQ(policy.pick(kEnabled, rng), 2);  // index 1
  EXPECT_EQ(policy.consumed(), 3u);
  EXPECT_EQ(policy.pick(kEnabled, rng), 0);  // fallback: first enabled
}

TEST(PolicyTest, FixedChoiceOutOfRangeThrows) {
  FixedChoicePolicy policy({7});
  Rng rng(1);
  EXPECT_THROW(policy.pick(kEnabled, rng), CheckFailure);
}

TEST(PolicyTest, PreferThreadChoosesItWhenEnabled) {
  PreferThreadPolicy policy(5);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(policy.pick(kEnabled, rng), 5);
  ThreadId other = policy.pick({0, 2}, rng);
  EXPECT_TRUE(other == 0 || other == 2);
}

TEST(PolicyTest, BiasedPolicyStillCompletesPrograms) {
  auto fig = workloads::make_figure4();
  for (auto make_policy : {+[]() -> sim::SchedulePolicy* {
                             return new RoundRobinPolicy;
                           },
                           +[]() -> sim::SchedulePolicy* {
                             return new RunToBlockPolicy;
                           }}) {
    std::unique_ptr<sim::SchedulePolicy> policy(make_policy());
    Rng rng(4);
    sim::RunResult result = sim::run_program(fig.program, *policy, rng);
    EXPECT_NE(result.outcome, sim::RunOutcome::kStepLimit);
  }
}

}  // namespace
}  // namespace wolf
