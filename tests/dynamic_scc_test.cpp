// DynamicScc contract tests: the incremental decomposition must equal its
// own fresh-Tarjan oracle after EVERY mutation, the maintained order must
// stay topological over the condensation, and dirty marks must map to live
// labels across merges and splits (DESIGN.md §16).
#include "graph/dynamic_scc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace wolf {
namespace {

using Partition = std::set<std::vector<DynamicScc::Node>>;

Partition partition_from_oracle(const DynamicScc& scc) {
  Partition p;
  for (std::vector<DynamicScc::Node> comp : scc.tarjan_components()) {
    std::sort(comp.begin(), comp.end());
    p.insert(std::move(comp));
  }
  return p;
}

Partition partition_from_labels(const DynamicScc& scc) {
  Partition p;
  for (std::size_t c = 0; c < scc.component_capacity(); ++c) {
    if (!scc.component_alive(static_cast<int>(c))) continue;
    std::vector<DynamicScc::Node> comp = scc.members(static_cast<int>(c));
    std::sort(comp.begin(), comp.end());
    p.insert(std::move(comp));
  }
  return p;
}

// The differential contract plus the order invariant: every cross-component
// edge must go forward in the maintained topological order.
void expect_consistent(const DynamicScc& scc) {
  EXPECT_EQ(partition_from_labels(scc), partition_from_oracle(scc));
  EXPECT_EQ(scc.component_count(), partition_from_oracle(scc).size());
  for (const auto& comp : scc.tarjan_components())
    for (DynamicScc::Node v : comp)
      EXPECT_TRUE(scc.component_alive(scc.component_of(v)));
}

TEST(DynamicSccTest, SingletonsStartAlone) {
  DynamicScc scc;
  for (int i = 0; i < 5; ++i) scc.add_node();
  EXPECT_EQ(scc.component_count(), 5u);
  EXPECT_FALSE(scc.same_component(0, 4));
  expect_consistent(scc);
}

TEST(DynamicSccTest, ChainStaysAcyclicAndOrdered) {
  DynamicScc scc;
  for (int i = 0; i < 6; ++i) scc.add_node();
  // Insert in an order that forces reordering work (back-to-front).
  for (int i = 4; i >= 0; --i) EXPECT_FALSE(scc.add_edge(i, i + 1));
  EXPECT_EQ(scc.component_count(), 6u);
  for (int i = 0; i < 5; ++i)
    EXPECT_LT(scc.order_of(scc.component_of(i)),
              scc.order_of(scc.component_of(i + 1)));
  EXPECT_EQ(scc.merges(), 0u);
  expect_consistent(scc);
}

TEST(DynamicSccTest, BackEdgeCollapsesThePath) {
  DynamicScc scc;
  for (int i = 0; i < 5; ++i) scc.add_node();
  for (int i = 0; i < 4; ++i) scc.add_edge(i, i + 1);
  EXPECT_TRUE(scc.add_edge(4, 0));  // closes 0→1→2→3→4→0
  EXPECT_EQ(scc.component_count(), 1u);
  EXPECT_TRUE(scc.same_component(0, 4));
  EXPECT_EQ(scc.merges(), 1u);
  expect_consistent(scc);
}

TEST(DynamicSccTest, CollapseIsBoundedToThePath) {
  DynamicScc scc;
  for (int i = 0; i < 6; ++i) scc.add_node();
  // 0→1→2 and bystanders 3→4, 5 isolated; cycle only through 0..2.
  scc.add_edge(0, 1);
  scc.add_edge(1, 2);
  scc.add_edge(3, 4);
  EXPECT_TRUE(scc.add_edge(2, 0));
  EXPECT_EQ(scc.component_count(), 4u);  // {0,1,2}, {3}, {4}, {5}
  EXPECT_FALSE(scc.same_component(0, 3));
  expect_consistent(scc);
}

TEST(DynamicSccTest, RemovalSplitsLazilyButReadsStayConsistent) {
  DynamicScc scc;
  for (int i = 0; i < 3; ++i) scc.add_node();
  scc.add_edge(0, 1);
  scc.add_edge(1, 2);
  scc.add_edge(2, 0);
  ASSERT_EQ(scc.component_count(), 1u);
  scc.remove_edge(2, 0);  // queues the lazy rebuild
  // The very next read must already see the split decomposition.
  EXPECT_EQ(scc.component_count(), 3u);
  EXPECT_FALSE(scc.same_component(0, 2));
  EXPECT_EQ(scc.splits(), 1u);
  expect_consistent(scc);
}

TEST(DynamicSccTest, ChordKeepsSubcycleAliveAfterRemoval) {
  DynamicScc scc;
  for (int i = 0; i < 3; ++i) scc.add_node();
  scc.add_edge(0, 1);
  scc.add_edge(1, 2);
  scc.add_edge(2, 0);
  scc.add_edge(1, 0);  // chord: 0↔1 survives without 2
  ASSERT_EQ(scc.component_count(), 1u);
  scc.remove_edge(2, 0);
  EXPECT_EQ(scc.component_count(), 2u);  // {0,1}, {2}
  EXPECT_TRUE(scc.same_component(0, 1));
  EXPECT_FALSE(scc.same_component(0, 2));
  expect_consistent(scc);
}

TEST(DynamicSccTest, CrossComponentRemovalIsStructurallyFree) {
  DynamicScc scc;
  scc.add_node();
  scc.add_node();
  scc.add_edge(0, 1);
  const std::size_t splits_before = scc.splits();
  scc.remove_edge(0, 1);
  EXPECT_EQ(scc.splits(), splits_before);
  EXPECT_EQ(scc.component_count(), 2u);
  expect_consistent(scc);
}

TEST(DynamicSccTest, SelfLoopDoesNotMerge) {
  DynamicScc scc;
  scc.add_node();
  scc.add_node();
  EXPECT_FALSE(scc.add_edge(0, 0));
  EXPECT_EQ(scc.component_count(), 2u);
  scc.remove_edge(0, 0);
  expect_consistent(scc);
}

TEST(DynamicSccTest, DirtyMarksSurviveMergesAndMapToLiveLabels) {
  DynamicScc scc;
  for (int i = 0; i < 4; ++i) scc.add_node();
  (void)scc.drain_dirty();  // consume the add_node marks
  EXPECT_FALSE(scc.has_dirty());
  scc.mark_dirty(0);
  scc.add_edge(0, 1);
  scc.add_edge(1, 0);  // merge relabels node 0's component
  ASSERT_TRUE(scc.has_dirty());
  std::vector<int> dirty = scc.drain_dirty();
  // All marks (manual + merge-induced) fold onto the single live merged
  // label, delivered once.
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], scc.component_of(0));
  EXPECT_EQ(dirty[0], scc.component_of(1));
  EXPECT_FALSE(scc.has_dirty());
}

TEST(DynamicSccTest, SplitMarksEveryMemberDirty) {
  DynamicScc scc;
  for (int i = 0; i < 3; ++i) scc.add_node();
  scc.add_edge(0, 1);
  scc.add_edge(1, 2);
  scc.add_edge(2, 0);
  (void)scc.drain_dirty();
  scc.remove_edge(1, 2);
  EXPECT_TRUE(scc.has_dirty());  // pending split counts as dirt
  std::vector<int> dirty = scc.drain_dirty();
  std::set<int> labels(dirty.begin(), dirty.end());
  // After the split all three singleton components must be reported.
  EXPECT_EQ(labels.size(), 3u);
  expect_consistent(scc);
}

TEST(DynamicSccTest, ClearResetsEverything) {
  DynamicScc scc;
  scc.add_node();
  scc.add_node();
  scc.add_edge(0, 1);
  scc.clear();
  EXPECT_EQ(scc.node_count(), 0u);
  EXPECT_EQ(scc.component_count(), 0u);
  EXPECT_FALSE(scc.has_dirty());
  scc.add_node();  // usable again
  EXPECT_EQ(scc.component_count(), 1u);
}

// Randomized differential campaign: arbitrary insert/remove interleavings,
// checked against the Tarjan oracle after EVERY mutation. Seeds beyond the
// first few are the regression net for order-maintenance corner cases
// (reorder vs collapse vs lazy split interactions).
class DynamicSccFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DynamicSccFuzz, MatchesFreshTarjanAfterEveryMutation) {
  Rng rng(0xD15Cu + static_cast<std::uint64_t>(GetParam()) * 7919u);
  DynamicScc scc;
  const int nodes = 4 + static_cast<int>(rng.below(8));  // 4..11
  for (int i = 0; i < nodes; ++i) scc.add_node();
  std::vector<std::pair<int, int>> live_edges;
  const int steps = 120;
  for (int s = 0; s < steps; ++s) {
    const bool removal = !live_edges.empty() && rng.chance(0.35);
    if (removal) {
      const std::size_t pick = rng.below(live_edges.size());
      auto [u, v] = live_edges[pick];
      live_edges.erase(live_edges.begin() +
                       static_cast<std::ptrdiff_t>(pick));
      scc.remove_edge(u, v);
    } else {
      const int u = static_cast<int>(rng.below(static_cast<std::size_t>(nodes)));
      const int v = static_cast<int>(rng.below(static_cast<std::size_t>(nodes)));
      if (std::find(live_edges.begin(), live_edges.end(),
                    std::make_pair(u, v)) != live_edges.end())
        continue;  // caller contract: no parallel edges
      live_edges.emplace_back(u, v);
      scc.add_edge(u, v);
    }
    ASSERT_EQ(partition_from_labels(scc), partition_from_oracle(scc))
        << "seed " << GetParam() << " step " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicSccFuzz, ::testing::Range(0, 60));

}  // namespace
}  // namespace wolf
