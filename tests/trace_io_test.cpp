// Cross-layer trace substrate tests: the guarantees that tie recording,
// serialization and consumption together.
//
//   * The sharded recorder's merged trace is byte-identical to the serial
//     TraceRecorder's when both observe the same emission stream (a tee off
//     one real rt::execute run — the rt monitor serializes emission, so the
//     two sinks see identical ordered events).
//   * Detection is bit-identical whether the trace is consumed in memory
//     (detect), streamed from v2 text, or streamed from v3 binary
//     (detect_reader) — the acceptance bar for the streaming refactor.
//   * analyze_reader produces the same classification-level report as
//     analyze_trace.
//   * PipelinedTraceReader (DESIGN.md §17) delivers the same events in the
//     same blocks as its wrapped source, propagates producer exceptions to
//     the consumer, and shuts down cleanly when abandoned mid-stream.
//   * Converting v2 -> v3 -> v2 reproduces the original file byte for byte.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "obs/counters.hpp"
#include "rt/executor.hpp"
#include "sim/scheduler.hpp"
#include "trace/recorder.hpp"
#include "trace/serialize.hpp"
#include "trace/sharded_recorder.hpp"
#include "trace/trace_reader.hpp"
#include "workloads/suite.hpp"

namespace wolf {
namespace {

// Duplicates every event to two sinks, in order.
class TeeSink final : public TraceSink {
 public:
  TeeSink(TraceSink* a, TraceSink* b) : a_(a), b_(b) {}
  void on_event(Event e) override {
    a_->on_event(e);
    b_->on_event(e);
  }

 private:
  TraceSink* a_;
  TraceSink* b_;
};

TEST(ShardedVsSerialTest, MergedTraceIsByteIdenticalToSerialSink) {
  // One run, both recorders: any divergence is the recorders' fault, not
  // schedule noise.
  const auto suite = workloads::standard_suite();
  for (const char* name : {"ArrayList", "HashMap"}) {
    const workloads::Benchmark& bench =
        workloads::find_benchmark(suite, name);
    TraceRecorder serial;
    ShardedTraceRecorder sharded;
    TeeSink tee(&serial, &sharded);
    rt::ExecutorOptions options;
    options.sink = &tee;
    options.seed = 42;
    rt::execute(bench.slowdown_program, options);

    Trace from_serial = serial.take();
    Trace from_sharded = sharded.take();
    ASSERT_FALSE(from_serial.empty()) << name;
    EXPECT_EQ(from_sharded.events, from_serial.events) << name;
    EXPECT_EQ(trace_to_string(from_sharded, TraceFormat::kV3),
              trace_to_string(from_serial, TraceFormat::kV3))
        << name;
  }
}

// Everything a Detection asserts, flattened; equal strings = bit-identical
// detection results.
std::string detection_fingerprint(const Detection& d) {
  std::ostringstream os;
  os << d.dep.tuples.size() << '/' << d.dep.unique.size() << '\n';
  for (const LockTuple& t : d.dep.tuples) {
    os << t.thread << ':' << t.lock << ':' << t.tau << ':' << t.trace_pos
       << ':';
    for (LockId l : t.lockset) os << l << ',';
    os << ':';
    for (const ExecIndex& e : t.context)
      os << e.thread << '.' << e.site << '.' << e.occurrence << ',';
    os << '\n';
  }
  for (const PotentialDeadlock& c : d.cycles) {
    os << "cycle:";
    for (std::size_t t : c.tuple_idx) os << t << ',';
    os << '\n';
  }
  for (const Defect& def : d.defects) {
    os << "defect:";
    for (SiteId s : def.signature) os << s << ',';
    os << '=';
    for (std::size_t c : def.cycle_idx) os << c << ',';
    os << '\n';
  }
  return os.str();
}

TEST(StreamingDetectionTest, IdenticalAcrossAllFormatAndPathCombos) {
  const auto suite = workloads::standard_suite();
  const workloads::Benchmark& bench =
      workloads::find_benchmark(suite, "HashMap");
  auto trace = sim::record_trace(bench.program, 7, 20, bench.max_steps);
  ASSERT_TRUE(trace.has_value());

  const std::string baseline = detection_fingerprint(detect(*trace));
  ASSERT_FALSE(baseline.empty());

  {  // In-memory reader.
    VectorTraceReader reader(*trace);
    EXPECT_EQ(detection_fingerprint(detect_reader(reader)), baseline);
  }
  for (TraceFormat format : {TraceFormat::kV1, TraceFormat::kV2,
                             TraceFormat::kV3}) {  // streamed from disk bytes
    std::istringstream is{trace_to_string(*trace, format)};
    StreamTraceReader reader(is);
    EXPECT_EQ(detection_fingerprint(detect_reader(reader)), baseline)
        << to_string(format);
    EXPECT_TRUE(reader.ok()) << reader.error();
  }
}

TEST(StreamingDetectionTest, StreamingDetectorIngestsIncrementally) {
  const auto suite = workloads::standard_suite();
  const workloads::Benchmark& bench =
      workloads::find_benchmark(suite, "ArrayList");
  auto trace = sim::record_trace(bench.program, 3, 20, bench.max_steps);
  ASSERT_TRUE(trace.has_value());

  StreamingDetector streaming;
  for (const Event& e : trace->events) streaming.add(e);
  EXPECT_EQ(streaming.events_seen(), trace->events.size());
  EXPECT_EQ(detection_fingerprint(streaming.finish()),
            detection_fingerprint(detect(*trace)));
}

// The classification-level content of a report (mirrors the equivalence
// fingerprint the perf_pipeline harness checks).
std::string report_fingerprint(const WolfReport& report) {
  std::ostringstream os;
  for (const CycleReport& c : report.cycles)
    os << c.cycle_index << ':' << to_string(c.classification) << ':'
       << c.gs_vertices << ':' << c.replay_stats.attempts << ','
       << c.replay_stats.hits << '\n';
  for (const DefectReport& d : report.defects) {
    os << "defect:";
    for (SiteId s : d.signature) os << s << ',';
    os << to_string(d.classification) << '\n';
  }
  return os.str();
}

TEST(AnalyzeReaderTest, MatchesAnalyzeTraceOnV3Stream) {
  const auto suite = workloads::standard_suite();
  const workloads::Benchmark& bench =
      workloads::find_benchmark(suite, "ArrayList");
  auto trace = sim::record_trace(bench.program, 11, 20, bench.max_steps);
  ASSERT_TRUE(trace.has_value());

  WolfOptions options;
  options.seed = 5;
  options.replay.attempts = 4;
  options.max_steps = bench.max_steps;
  WolfReport batch = analyze_trace(bench.program, *trace, options);

  std::istringstream is{trace_to_string(*trace, TraceFormat::kV3)};
  StreamTraceReader reader(is);
  WolfReport streamed = analyze_reader(bench.program, reader, options);
  EXPECT_TRUE(reader.ok()) << reader.error();

  EXPECT_EQ(report_fingerprint(streamed), report_fingerprint(batch));
  EXPECT_EQ(streamed.cycles.size(), batch.cycles.size());
  EXPECT_EQ(streamed.defects.size(), batch.defects.size());
}

// ---------------------------------------------------- PipelinedTraceReader

// All events from a reader, drained block by block — the shape every
// consumer of the reader interface uses.
std::vector<Event> drain(TraceReader& reader) {
  std::vector<Event> all;
  std::vector<Event> block;
  while (reader.next_block(block))
    all.insert(all.end(), block.begin(), block.end());
  return all;
}

TEST(PipelinedTraceReaderTest, DeliversIdenticalEventsFromVectorSource) {
  const auto suite = workloads::standard_suite();
  const workloads::Benchmark& bench =
      workloads::find_benchmark(suite, "HashMap");
  auto trace = sim::record_trace(bench.program, 7, 20, bench.max_steps);
  ASSERT_TRUE(trace.has_value());

  VectorTraceReader direct(*trace);
  const std::vector<Event> expected = drain(direct);
  ASSERT_FALSE(expected.empty());

  VectorTraceReader source(*trace);
  PipelinedTraceReader piped(source, /*depth=*/4);
  EXPECT_EQ(drain(piped), expected);
  EXPECT_GT(piped.stats().decode_seconds, 0.0);
}

TEST(PipelinedTraceReaderTest, DeliversIdenticalEventsFromV3Stream) {
  const auto suite = workloads::standard_suite();
  const workloads::Benchmark& bench =
      workloads::find_benchmark(suite, "ArrayList");
  auto trace = sim::record_trace(bench.program, 3, 20, bench.max_steps);
  ASSERT_TRUE(trace.has_value());
  const std::string v3 = trace_to_string(*trace, TraceFormat::kV3);

  std::istringstream direct_is{v3};
  StreamTraceReader direct(direct_is);
  const std::vector<Event> expected = drain(direct);
  ASSERT_TRUE(direct.ok()) << direct.error();

  std::istringstream piped_is{v3};
  StreamTraceReader source(piped_is);
  PipelinedTraceReader piped(source, /*depth=*/2);
  EXPECT_EQ(drain(piped), expected);
  EXPECT_TRUE(source.ok()) << source.error();
}

TEST(PipelinedTraceReaderTest, DetectionIsBitIdenticalThroughThePipeline) {
  const auto suite = workloads::standard_suite();
  const workloads::Benchmark& bench =
      workloads::find_benchmark(suite, "HashMap");
  auto trace = sim::record_trace(bench.program, 7, 20, bench.max_steps);
  ASSERT_TRUE(trace.has_value());

  const std::string baseline = detection_fingerprint(detect(*trace));
  VectorTraceReader source(*trace);
  PipelinedTraceReader piped(source, /*depth=*/8);
  EXPECT_EQ(detection_fingerprint(detect_reader(piped)), baseline);
}

// A reader that yields a few blocks, then throws from the producer thread.
class ThrowingTraceReader final : public TraceReader {
 public:
  explicit ThrowingTraceReader(int good_blocks) : remaining_(good_blocks) {}
  bool next_block(std::vector<Event>& out) override {
    if (remaining_-- <= 0) throw std::runtime_error("decode exploded");
    out.assign(1, Event{});
    return true;
  }

 private:
  int remaining_;
};

TEST(PipelinedTraceReaderTest, ProducerExceptionSurfacesOnConsumer) {
  ThrowingTraceReader source(/*good_blocks=*/3);
  PipelinedTraceReader piped(source, /*depth=*/2);
  std::vector<Event> block;
  std::size_t delivered = 0;
  EXPECT_THROW(
      {
        while (piped.next_block(block)) delivered += block.size();
      },
      std::runtime_error);
  EXPECT_EQ(delivered, 3u);  // everything decoded before the throw arrives
}

TEST(PipelinedTraceReaderTest, AbandonedProducerErrorIsCountedNotSwallowed) {
  // Regression: an in-flight producer exception during early destruction
  // used to vanish without a trace. It must land in the
  // trace.pipeline_abandoned_errors counter — and only when the consumer
  // never saw it; a delivered (rethrown) error is not "abandoned".
  obs::set_counters_enabled(true);
  const auto before = obs::CounterRegistry::instance().snapshot();
  {
    ThrowingTraceReader source(/*good_blocks=*/0);  // throws immediately
    PipelinedTraceReader piped(source, /*depth=*/2);
    // Destroyed without a single next_block(): the error is never delivered.
  }
  auto d = obs::delta(obs::CounterRegistry::instance().snapshot(), before);
  EXPECT_EQ(d.value("trace.pipeline_abandoned_errors"), 1u);

  // The delivered path: the consumer rethrow marks the error as seen, so
  // the abandoned counter must NOT move.
  const auto before2 = obs::CounterRegistry::instance().snapshot();
  {
    ThrowingTraceReader source(/*good_blocks=*/0);
    PipelinedTraceReader piped(source, /*depth=*/2);
    std::vector<Event> block;
    EXPECT_THROW(piped.next_block(block), std::runtime_error);
  }
  auto d2 = obs::delta(obs::CounterRegistry::instance().snapshot(), before2);
  EXPECT_EQ(d2.value("trace.pipeline_abandoned_errors"), 0u);
}

TEST(PipelinedTraceReaderTest, EarlyDestructionDoesNotHangOrLeak) {
  // The consumer abandons the stream mid-way; the destructor must close the
  // ring, unblock the producer, and join it.
  const auto suite = workloads::standard_suite();
  const workloads::Benchmark& bench =
      workloads::find_benchmark(suite, "HashMap");
  auto trace = sim::record_trace(bench.program, 7, 20, bench.max_steps);
  ASSERT_TRUE(trace.has_value());
  VectorTraceReader source(*trace);
  {
    PipelinedTraceReader piped(source, /*depth=*/2);
    std::vector<Event> block;
    ASSERT_TRUE(piped.next_block(block));
  }  // destructor runs with blocks still queued and the producer possibly blocked
  SUCCEED();
}

TEST(ConvertTest, V2ToV3AndBackIsByteIdentical) {
  const auto suite = workloads::standard_suite();
  const workloads::Benchmark& bench =
      workloads::find_benchmark(suite, "ArrayList");
  auto trace = sim::record_trace(bench.program, 1, 20, bench.max_steps);
  ASSERT_TRUE(trace.has_value());

  const std::string v2 = trace_to_string(*trace, TraceFormat::kV2);
  auto decoded_v2 = trace_from_string(v2);
  ASSERT_TRUE(decoded_v2.has_value());
  const std::string v3 = trace_to_string(*decoded_v2, TraceFormat::kV3);
  auto decoded_v3 = trace_from_string(v3);
  ASSERT_TRUE(decoded_v3.has_value());
  EXPECT_EQ(trace_to_string(*decoded_v3, TraceFormat::kV2), v2);
  EXPECT_EQ(trace_checksum(*decoded_v3), trace_checksum(*trace));
  EXPECT_LE(v3.size() * 2, v2.size());  // the size win convert exists for
}

}  // namespace
}  // namespace wolf
