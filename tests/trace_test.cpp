// Tests for the trace layer: ids, execution indices, events, recording and
// serialization.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/str.hpp"
#include "trace/event.hpp"
#include "trace/exec_index.hpp"
#include "trace/ids.hpp"
#include "trace/recorder.hpp"
#include "trace/serialize.hpp"
#include "trace/sharded_recorder.hpp"
#include "trace/trace_reader.hpp"
#include "trace/wire.hpp"

namespace wolf {
namespace {

Event make_event(EventKind kind, ThreadId t, SiteId site = 0,
                 std::int32_t occ = 0, LockId lock = kInvalidLock,
                 ThreadId other = kInvalidThread) {
  Event e;
  e.kind = kind;
  e.thread = t;
  e.site = site;
  e.occurrence = occ;
  e.lock = lock;
  e.other = other;
  return e;
}

// ---------------------------------------------------------------- SiteTable

TEST(SiteTableTest, InternDeduplicates) {
  SiteTable sites;
  SiteId a = sites.intern("Foo.bar", 10);
  SiteId b = sites.intern("Foo.bar", 10);
  SiteId c = sites.intern("Foo.bar", 11);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(sites.size(), 2);
}

TEST(SiteTableTest, NameFormatsFunctionAndLine) {
  SiteTable sites;
  SiteId a = sites.intern("Foo.bar", 10);
  EXPECT_EQ(sites.name(a), "Foo.bar:10");
  EXPECT_EQ(sites.name(kInvalidSite), "<none>");
}

TEST(SiteTableTest, BadIdThrows) {
  SiteTable sites;
  EXPECT_THROW(sites.loc(0), CheckFailure);
}

TEST(SiteTableTest, InternAssignsDenseIdsInFirstSeenOrder) {
  // The hash-indexed intern must number sites exactly like the linear scan
  // it replaced: dense ids, in order of first appearance.
  SiteTable sites;
  EXPECT_EQ(sites.intern("A.a", 1), 0);
  EXPECT_EQ(sites.intern("B.b", 2), 1);
  EXPECT_EQ(sites.intern("A.a", 3), 2);   // same function, new line
  EXPECT_EQ(sites.intern("B.b", 2), 1);   // repeat hits the old id
  EXPECT_EQ(sites.intern("C.c", 1), 3);
  EXPECT_EQ(sites.intern("A.a", 1), 0);
  EXPECT_EQ(sites.size(), 4);
  EXPECT_EQ(sites.loc(2).function, "A.a");
  EXPECT_EQ(sites.loc(2).line, 3);
}

// ---------------------------------------------------------------- ExecIndex

TEST(ExecIndexTest, EqualityAndOrdering) {
  ExecIndex a{1, 5, 0};
  ExecIndex b{1, 5, 0};
  ExecIndex c{1, 5, 1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(ExecIndexTest, HashDistinguishesFields) {
  ExecIndexHash hash;
  EXPECT_EQ(hash(ExecIndex{1, 2, 3}), hash(ExecIndex{1, 2, 3}));
  EXPECT_NE(hash(ExecIndex{1, 2, 3}), hash(ExecIndex{1, 3, 2}));
  EXPECT_NE(hash(ExecIndex{1, 2, 3}), hash(ExecIndex{2, 2, 3}));
}

TEST(ExecIndexTest, ToStringMentionsOccurrenceOnlyWhenNonZero) {
  EXPECT_EQ((ExecIndex{1, 2, 0}).to_string(), "t1@s2");
  EXPECT_EQ((ExecIndex{1, 2, 3}).to_string(), "t1@s2#3");
}

TEST(ExecIndexTest, Validity) {
  EXPECT_FALSE(ExecIndex{}.valid());
  EXPECT_TRUE((ExecIndex{0, 0, 0}).valid());
}

// ---------------------------------------------------------------- Trace

TEST(TraceTest, ThreadsCollectsActorsAndTargets) {
  Trace trace;
  trace.events.push_back(make_event(EventKind::kThreadBegin, 0));
  trace.events.push_back(
      make_event(EventKind::kThreadStart, 0, 1, 0, kInvalidLock, 2));
  auto threads = trace.threads();
  EXPECT_EQ(threads, (std::vector<ThreadId>{0, 2}));
  EXPECT_EQ(trace.max_thread_id(), 2);
}

TEST(TraceTest, EmptyTraceDefaults) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.max_thread_id(), -1);
  EXPECT_TRUE(trace.threads().empty());
}

TEST(EventTest, ToStringIsInformative) {
  Event e = make_event(EventKind::kLockAcquire, 3, 7, 1, 9);
  e.seq = 12;
  std::string s = e.to_string();
  EXPECT_NE(s.find("#12"), std::string::npos);
  EXPECT_NE(s.find("t3"), std::string::npos);
  EXPECT_NE(s.find("acquire"), std::string::npos);
  EXPECT_NE(s.find("lock=9"), std::string::npos);
}

// ---------------------------------------------------------------- Recorder

TEST(RecorderTest, AssignsMonotonicSequence) {
  TraceRecorder recorder;
  for (int i = 0; i < 5; ++i)
    recorder.on_event(make_event(EventKind::kThreadBegin, i));
  const Trace& trace = recorder.trace();
  ASSERT_EQ(trace.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(trace.events[i].seq, i);
}

TEST(RecorderTest, TakeResetsSequence) {
  TraceRecorder recorder;
  recorder.on_event(make_event(EventKind::kThreadBegin, 0));
  Trace first = recorder.take();
  EXPECT_EQ(first.size(), 1u);
  recorder.on_event(make_event(EventKind::kThreadBegin, 1));
  EXPECT_EQ(recorder.trace().events[0].seq, 0u);
}

TEST(RecorderTest, NullSinkDiscards) {
  NullSink sink;
  sink.on_event(make_event(EventKind::kThreadBegin, 0));  // no crash
}

// ---------------------------------------------------------------- Serialize

Trace sample_trace() {
  Trace trace;
  std::uint64_t seq = 0;
  auto push = [&](Event e) {
    e.seq = seq++;
    trace.events.push_back(e);
  };
  push(make_event(EventKind::kThreadBegin, 0));
  push(make_event(EventKind::kThreadStart, 0, 1, 0, kInvalidLock, 1));
  push(make_event(EventKind::kThreadBegin, 1));
  push(make_event(EventKind::kLockAcquire, 1, 2, 0, 5));
  push(make_event(EventKind::kLockRelease, 1, 3, 0, 5));
  push(make_event(EventKind::kThreadEnd, 1));
  push(make_event(EventKind::kThreadJoin, 0, 4, 0, kInvalidLock, 1));
  push(make_event(EventKind::kThreadEnd, 0));
  return trace;
}

TEST(SerializeTest, RoundTripsExactly) {
  Trace original = sample_trace();
  std::string text = trace_to_string(original);
  std::string error;
  auto parsed = trace_from_string(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->events, original.events);
}

TEST(SerializeTest, HeaderIsRequired) {
  std::string error;
  EXPECT_EQ(trace_from_string("0 begin 0 0 0 -1 -1\n", &error), std::nullopt);
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(SerializeTest, MalformedLineReportsLineNumber) {
  std::string text = "# wolf-trace v1\n0 begin 0 0 0 -1 -1\nnot an event\n";
  std::string error;
  EXPECT_EQ(trace_from_string(text, &error), std::nullopt);
  EXPECT_NE(error.find("line 3"), std::string::npos);
}

TEST(SerializeTest, UnknownKindRejected) {
  std::string text = "# wolf-trace v1\n0 frobnicate 0 0 0 -1 -1\n";
  std::string error;
  EXPECT_EQ(trace_from_string(text, &error), std::nullopt);
  EXPECT_NE(error.find("frobnicate"), std::string::npos);
}

TEST(SerializeTest, CommentsAndBlankLinesIgnored) {
  std::string text =
      "# wolf-trace v1\n\n# a comment\n0 begin 0 0 0 -1 -1\n";
  auto parsed = trace_from_string(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(SerializeTest, EmptyTraceRoundTrips) {
  Trace empty;
  auto parsed = trace_from_string(trace_to_string(empty));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

// ------------------------------------------------------------ v2 format ----

TEST(SerializeV2Test, DefaultFormatCarriesFooter) {
  std::string text = trace_to_string(sample_trace());
  EXPECT_NE(text.find("# wolf-trace v2"), std::string::npos);
  EXPECT_NE(text.find("# wolf-trace-end 8 "), std::string::npos);
}

TEST(SerializeV2Test, V1FormatStillWritesAndLoads) {
  Trace original = sample_trace();
  std::string text = trace_to_string(original, TraceFormat::kV1);
  EXPECT_NE(text.find("# wolf-trace v1"), std::string::npos);
  EXPECT_EQ(text.find("wolf-trace-end"), std::string::npos);
  auto parsed = trace_from_string(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->events, original.events);
}

TEST(SerializeV2Test, MissingFooterRejected) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  lines.erase(lines.end() - 2);  // drop the footer, keep trailing blank
  std::string error;
  EXPECT_EQ(trace_from_string(join(lines, "\n"), &error), std::nullopt);
  EXPECT_NE(error.find("footer"), std::string::npos);
}

TEST(SerializeV2Test, TamperedEventFailsChecksum) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  // Event line 4 is "3 acquire 1 2 0 5 -1"; move the acquisition to lock 6.
  lines[4] = "3 acquire 1 2 0 6 -1";
  std::string error;
  EXPECT_EQ(trace_from_string(join(lines, "\n"), &error), std::nullopt);
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos);
}

TEST(SerializeV2Test, CountMismatchRejected) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  lines.erase(lines.begin() + 8);  // drop the last event, keep the footer
  std::string error;
  EXPECT_EQ(trace_from_string(join(lines, "\n"), &error), std::nullopt);
  EXPECT_NE(error.find("count mismatch"), std::string::npos);
}

TEST(SerializeV2Test, EventAfterFooterRejected) {
  std::string text = trace_to_string(sample_trace());
  text += "8 begin 2 0 0 -1 -1\n";
  std::string error;
  EXPECT_EQ(trace_from_string(text, &error), std::nullopt);
  EXPECT_NE(error.find("after wolf-trace footer"), std::string::npos);
}

TEST(SerializeV2Test, NonMonotonicSeqRejected) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  std::swap(lines[3], lines[4]);
  std::string error;
  EXPECT_EQ(trace_from_string(join(lines, "\n"), &error), std::nullopt);
  EXPECT_NE(error.find("non-monotonic"), std::string::npos);
  EXPECT_NE(error.find("line 5"), std::string::npos);
}

// ----------------------------------------------- malformed-trace corpus ----
//
// Each damaged input goes through the strict reader (which must name the
// defect and its line) and through the salvaging reader (which must recover
// exactly the longest valid event prefix).

TEST(SalvageCorpusTest, TruncatedMidLine) {
  std::string text = trace_to_string(sample_trace());
  // Cut inside event line 6 (events 0..4 remain intact, no footer survives).
  std::size_t cut = text.find("5 end");
  ASSERT_NE(cut, std::string::npos);
  std::string damaged = text.substr(0, cut + 3);

  std::string error;
  EXPECT_EQ(trace_from_string(damaged, &error), std::nullopt);
  EXPECT_NE(error.find("line 7"), std::string::npos);

  SalvageReport report = salvage_trace_from_string(damaged);
  EXPECT_EQ(report.version, 2);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.trace.size(), 5u);
  EXPECT_EQ(report.events_dropped, 1u);
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("line 7"), std::string::npos);
  EXPECT_NE(report.summary().find("salvaged 5 event(s)"), std::string::npos);
}

TEST(SalvageCorpusTest, ReorderedSequenceNumbers) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  std::swap(lines[3], lines[4]);  // seq order becomes 0,1,3,2,...
  SalvageReport report = salvage_trace_from_string(join(lines, "\n"));
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.trace.size(), 3u);  // seq 0,1,3
  EXPECT_EQ(report.events_dropped, 5u);
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("non-monotonic"), std::string::npos);
  EXPECT_NE(report.diagnostics[0].find("line 5"), std::string::npos);
}

TEST(SalvageCorpusTest, UnknownEventKind) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  lines[4] = "3 acquqire 1 2 0 5 -1";

  std::string error;
  EXPECT_EQ(trace_from_string(join(lines, "\n"), &error), std::nullopt);
  EXPECT_NE(error.find("acquqire"), std::string::npos);
  EXPECT_NE(error.find("line 5"), std::string::npos);

  SalvageReport report = salvage_trace_from_string(join(lines, "\n"));
  EXPECT_EQ(report.trace.size(), 3u);
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("acquqire"), std::string::npos);
}

TEST(SalvageCorpusTest, BadIntegerField) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  lines[2] = "1 start 0 xx 0 -1 1";

  std::string error;
  EXPECT_EQ(trace_from_string(join(lines, "\n"), &error), std::nullopt);
  EXPECT_NE(error.find("malformed event"), std::string::npos);
  EXPECT_NE(error.find("line 3"), std::string::npos);

  SalvageReport report = salvage_trace_from_string(join(lines, "\n"));
  EXPECT_EQ(report.trace.size(), 1u);
  EXPECT_FALSE(report.complete);
}

TEST(SalvageCorpusTest, MissingHeaderStillSalvagesEvents) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  lines.erase(lines.begin());  // header lost
  SalvageReport report = salvage_trace_from_string(join(lines, "\n"));
  EXPECT_EQ(report.version, 0);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.trace.size(), 8u);  // all events recovered
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("header"), std::string::npos);
}

TEST(SalvageCorpusTest, IntactTraceIsComplete) {
  SalvageReport report =
      salvage_trace_from_string(trace_to_string(sample_trace()));
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.version, 2);
  EXPECT_EQ(report.trace.size(), 8u);
  EXPECT_EQ(report.events_dropped, 0u);
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_NE(report.summary().find("complete"), std::string::npos);
}

// ------------------------------------------------------------ v3 format ----

// A dense trace spanning `blocks` full v3 blocks (wire::kBlockEvents each).
Trace block_trace(std::size_t blocks, std::size_t extra = 0) {
  Trace trace;
  const std::size_t n = blocks * wire::kBlockEvents + extra;
  for (std::size_t i = 0; i < n; ++i) {
    // Adjacent acquire/release pairs on the same (thread, lock): salvage
    // validates lock discipline, so any prefix must be consistent.
    Event e = make_event(
        (i & 1) == 0 ? EventKind::kLockAcquire : EventKind::kLockRelease,
        static_cast<ThreadId>((i / 2) % 3), static_cast<SiteId>(i % 11),
        static_cast<std::int32_t>(i / 11), static_cast<LockId>((i / 2) % 5));
    e.seq = i;
    trace.events.push_back(e);
  }
  return trace;
}

// Byte offset just past block `index`'s trailing checksum in v3 bytes.
// Walks the real framing, so it stays correct if the encoding evolves.
std::size_t end_of_block(const std::string& bytes, std::size_t index) {
  std::size_t off = sizeof wire::kMagicV3;
  for (std::size_t b = 0;; ++b) {
    EXPECT_EQ(bytes[off], wire::kBlockTag);
    ++off;
    auto varint = [&]() {
      std::uint64_t v = 0;
      for (int shift = 0;; shift += 7) {
        const auto c = static_cast<unsigned char>(bytes[off++]);
        v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
        if ((c & 0x80) == 0) return v;
      }
    };
    varint();  // event count
    const std::uint64_t payload = varint();
    off += static_cast<std::size_t>(payload) + 8;  // payload + checksum
    if (b == index) return off;
  }
}

TEST(SerializeV3Test, RoundTripsExactly) {
  Trace original = sample_trace();
  std::string bytes = trace_to_string(original, TraceFormat::kV3);
  EXPECT_EQ(bytes.compare(0, sizeof wire::kMagicV3, wire::kMagicV3,
                          sizeof wire::kMagicV3),
            0);
  std::string error;
  auto parsed = trace_from_string(bytes, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->events, original.events);
}

TEST(SerializeV3Test, EmptyTraceRoundTrips) {
  auto parsed = trace_from_string(trace_to_string(Trace{}, TraceFormat::kV3));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(SerializeV3Test, MultiBlockTraceRoundTripsExactly) {
  Trace original = block_trace(2, 17);
  auto parsed = trace_from_string(trace_to_string(original, TraceFormat::kV3));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->events, original.events);
}

TEST(SerializeV3Test, SparseSequenceNumbersRoundTrip) {
  // Delta coding must not assume dense seqs (a salvaged source trace keeps
  // the survivors' original numbering).
  Trace original = sample_trace();
  for (std::size_t i = 0; i < original.events.size(); ++i)
    original.events[i].seq = 10 + 7 * i;
  auto parsed = trace_from_string(trace_to_string(original, TraceFormat::kV3));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->events, original.events);
}

TEST(SerializeV3Test, SmallerThanV2) {
  Trace trace = block_trace(1);
  const std::size_t v2 = trace_to_string(trace, TraceFormat::kV2).size();
  const std::size_t v3 = trace_to_string(trace, TraceFormat::kV3).size();
  EXPECT_LE(v3 * 2, v2);  // the advertised >= 2x size win
}

TEST(SerializeV3Test, ChecksumIdenticalAcrossFormats) {
  Trace trace = sample_trace();
  const std::string hex = wire::to_hex(trace_checksum(trace));
  // The v2 footer carries the checksum in hex; the v3 footer carries the
  // same value in binary.
  EXPECT_NE(trace_to_string(trace, TraceFormat::kV2).find(hex),
            std::string::npos);
  std::string bytes = trace_to_string(trace, TraceFormat::kV3);
  auto u64le_at = [&](std::size_t at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(
               bytes[at + static_cast<std::size_t>(i)]))
           << (8 * i);
    return v;
  };
  // The file ends with the block-index trailer (u64le section offset +
  // index magic); the 'E' footer's checksum is the 8 bytes right before
  // the index section.
  ASSERT_EQ(bytes.compare(bytes.size() - 8, 8,
                          std::string(wire::kIndexMagic, 8)),
            0);
  const std::size_t index_offset =
      static_cast<std::size_t>(u64le_at(bytes.size() - 16));
  EXPECT_EQ(u64le_at(index_offset - 8), trace_checksum(trace));
  // An index-free v3 file ends directly with the footer checksum.
  std::string plain =
      trace_to_string(trace, TraceFormat::kV3, {.index = false});
  std::uint64_t v3_footer = 0;
  for (int i = 0; i < 8; ++i)
    v3_footer |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                     plain[plain.size() - 8 + static_cast<std::size_t>(i)]))
                 << (8 * i);
  EXPECT_EQ(v3_footer, trace_checksum(trace));
}

// --------------------------------------------- v3 malformed-trace corpus ----

TEST(SalvageCorpusV3Test, BadMagicRejected) {
  std::string bytes = trace_to_string(sample_trace(), TraceFormat::kV3);
  bytes[3] ^= 0x20;  // damage the magic
  std::string error;
  EXPECT_EQ(trace_from_string(bytes, &error), std::nullopt);
  EXPECT_NE(error.find("magic"), std::string::npos);

  SalvageReport report = salvage_trace_from_string(bytes);
  EXPECT_EQ(report.version, 0);
  EXPECT_FALSE(report.complete);
  EXPECT_TRUE(report.trace.empty());
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("magic"), std::string::npos);
}

TEST(SalvageCorpusV3Test, CorruptBlockChecksumNamesTheBlock) {
  Trace original = block_trace(3);
  std::string bytes = trace_to_string(original, TraceFormat::kV3);
  // Flip one payload byte inside block 1.
  bytes[end_of_block(bytes, 0) + 20] ^= 0x01;

  std::string error;
  EXPECT_EQ(trace_from_string(bytes, &error), std::nullopt);
  EXPECT_NE(error.find("block 1"), std::string::npos);

  // Salvage drops exactly block 1; blocks 0 and 2 survive.
  SalvageReport report = salvage_trace_from_string(bytes);
  EXPECT_EQ(report.version, 3);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.trace.size(), 2 * wire::kBlockEvents);
  EXPECT_EQ(report.events_dropped, wire::kBlockEvents);
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("block 1"), std::string::npos);
  for (std::size_t i = 0; i < wire::kBlockEvents; ++i) {
    EXPECT_EQ(report.trace.events[i].seq, i);
    EXPECT_EQ(report.trace.events[wire::kBlockEvents + i].seq,
              2 * wire::kBlockEvents + i);
  }
}

TEST(SalvageCorpusV3Test, CorruptStoredChecksumNamesTheBlock) {
  Trace original = block_trace(2);
  std::string bytes = trace_to_string(original, TraceFormat::kV3);
  bytes[end_of_block(bytes, 0) - 1] ^= 0xff;  // block 0's stored checksum
  std::string error;
  EXPECT_EQ(trace_from_string(bytes, &error), std::nullopt);
  EXPECT_NE(error.find("block 0: checksum mismatch"), std::string::npos);

  SalvageReport report = salvage_trace_from_string(bytes);
  EXPECT_EQ(report.trace.size(), wire::kBlockEvents);  // block 1 survives
  EXPECT_EQ(report.trace.events.front().seq, wire::kBlockEvents);
}

TEST(SalvageCorpusV3Test, TruncatedFooterDetected) {
  std::string bytes = trace_to_string(sample_trace(), TraceFormat::kV3);
  bytes.resize(bytes.size() - 4);  // cut inside the footer checksum
  std::string error;
  EXPECT_EQ(trace_from_string(bytes, &error), std::nullopt);
  EXPECT_NE(error.find("footer"), std::string::npos);

  SalvageReport report = salvage_trace_from_string(bytes);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.trace.size(), 8u);  // the events themselves survive
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("footer"), std::string::npos);
}

TEST(SalvageCorpusV3Test, MissingFooterDetected) {
  Trace original = block_trace(1);
  std::string bytes = trace_to_string(original, TraceFormat::kV3);
  bytes.resize(end_of_block(bytes, 0));  // clean cut after block 0
  std::string error;
  EXPECT_EQ(trace_from_string(bytes, &error), std::nullopt);
  EXPECT_NE(error.find("missing wolf-trace v3 footer"), std::string::npos);

  SalvageReport report = salvage_trace_from_string(bytes);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.trace.size(), wire::kBlockEvents);
}

TEST(SalvageCorpusV3Test, TruncatedPayloadDetected) {
  Trace original = block_trace(2);
  std::string bytes = trace_to_string(original, TraceFormat::kV3);
  bytes.resize(end_of_block(bytes, 1) - 30);  // cut inside block 1
  std::string error;
  EXPECT_EQ(trace_from_string(bytes, &error), std::nullopt);
  EXPECT_NE(error.find("block 1"), std::string::npos);

  SalvageReport report = salvage_trace_from_string(bytes);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.trace.size(), wire::kBlockEvents);  // block 0 intact
  EXPECT_EQ(report.events_dropped, wire::kBlockEvents);
}

TEST(SalvageCorpusV3Test, DataAfterFooterRejected) {
  std::string bytes = trace_to_string(sample_trace(), TraceFormat::kV3);
  bytes.push_back('B');
  std::string error;
  EXPECT_EQ(trace_from_string(bytes, &error), std::nullopt);
  EXPECT_NE(error.find("after wolf-trace v3 footer"), std::string::npos);
}

TEST(SalvageCorpusV3Test, IntactV3TraceIsComplete) {
  SalvageReport report = salvage_trace_from_string(
      trace_to_string(sample_trace(), TraceFormat::kV3));
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.version, 3);
  EXPECT_EQ(report.trace.size(), 8u);
  EXPECT_EQ(report.events_dropped, 0u);
  EXPECT_NE(report.summary().find("v3"), std::string::npos);
}

// ---------------------------------------------------- streaming reader ----

TEST(StreamTraceReaderTest, DeliversBlocksIncrementally) {
  Trace original = block_trace(2, 5);
  std::istringstream is{trace_to_string(original, TraceFormat::kV3)};
  StreamTraceReader reader(is, StreamTraceReader::Mode::kStrict);
  std::vector<Event> block;
  std::vector<std::size_t> sizes;
  std::size_t total = 0;
  while (reader.next_block(block)) {
    sizes.push_back(block.size());
    for (const Event& e : block) EXPECT_EQ(e.seq, total++);
  }
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.complete());
  EXPECT_EQ(reader.version(), 3);
  EXPECT_EQ(total, original.events.size());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{wire::kBlockEvents,
                                             wire::kBlockEvents, 5}));
}

TEST(StreamTraceReaderTest, TextStreamsInBlocksToo) {
  Trace original = block_trace(1, 3);
  std::istringstream is{trace_to_string(original, TraceFormat::kV2)};
  StreamTraceReader reader(is, StreamTraceReader::Mode::kStrict);
  std::vector<Event> block;
  std::size_t total = 0, calls = 0;
  while (reader.next_block(block)) {
    ++calls;
    total += block.size();
  }
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.version(), 2);
  EXPECT_EQ(total, original.events.size());
  EXPECT_EQ(calls, 2u);
}

TEST(VectorTraceReaderTest, ChunksABorrowedTrace) {
  Trace trace = block_trace(1, 1);
  VectorTraceReader reader(trace);
  std::vector<Event> block;
  std::size_t total = 0;
  while (reader.next_block(block)) total += block.size();
  EXPECT_EQ(total, trace.events.size());
}

// ------------------------------------------------------ sharded recorder ----

TEST(ShardedRecorderTest, SingleThreadMatchesSerialRecorderExactly) {
  TraceRecorder serial;
  ShardedTraceRecorder sharded;
  for (int i = 0; i < 100; ++i) {
    Event e = make_event(EventKind::kLockAcquire, i % 4,
                         static_cast<SiteId>(i % 7), i / 7, i % 3);
    serial.on_event(e);
    sharded.on_event(e);
  }
  Trace merged = sharded.take();
  EXPECT_EQ(merged.events, serial.take().events);
  EXPECT_EQ(sharded.shard_count(), 1u);
}

TEST(ShardedRecorderTest, ConcurrentMergePreservesPerThreadOrder) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  ShardedTraceRecorder recorder;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&recorder, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        Event e = make_event(EventKind::kLockAcquire,
                             static_cast<ThreadId>(t), 0,
                             static_cast<std::int32_t>(i), 1);
        recorder.on_event(e);
      }
    });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(recorder.shard_count(), static_cast<std::size_t>(kThreads));

  Trace merged = recorder.take();
  ASSERT_EQ(merged.events.size(), kThreads * kPerThread);
  // Tickets are a dense permutation; the merge restores global seq order.
  std::vector<std::int32_t> next_occ(kThreads, 0);
  for (std::size_t i = 0; i < merged.events.size(); ++i) {
    const Event& e = merged.events[i];
    EXPECT_EQ(e.seq, i);
    // Each thread's own events come back in its emission order.
    EXPECT_EQ(e.occurrence, next_occ[static_cast<std::size_t>(e.thread)]++);
  }
}

TEST(ShardedRecorderTest, TakeLeavesRecorderReusable) {
  ShardedTraceRecorder recorder;
  recorder.on_event(make_event(EventKind::kThreadBegin, 0));
  EXPECT_EQ(recorder.take().size(), 1u);
  recorder.on_event(make_event(EventKind::kThreadBegin, 1));
  Trace second = recorder.take();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second.events[0].seq, 0u);  // ticket restarted
  EXPECT_EQ(second.events[0].thread, 1);
}

TEST(ShardedRecorderTest, ClearDropsEverything) {
  ShardedTraceRecorder recorder;
  recorder.on_event(make_event(EventKind::kThreadBegin, 0));
  recorder.clear();
  EXPECT_TRUE(recorder.take().empty());
}

TEST(ShardedRecorderTest, TwoRecordersOnOneThreadStayIndependent) {
  // The thread-local shard cache must re-resolve when the same thread
  // alternates between recorders.
  ShardedTraceRecorder a, b;
  a.on_event(make_event(EventKind::kThreadBegin, 0));
  b.on_event(make_event(EventKind::kThreadBegin, 1));
  a.on_event(make_event(EventKind::kThreadEnd, 0));
  EXPECT_EQ(a.take().size(), 2u);
  EXPECT_EQ(b.take().size(), 1u);
}

// --------------------------------------- v3 footer index + mmap readers ----

// Writes trace bytes to a real file so the path-based reader can exercise
// mmap, the footer index, and parallel decode.
struct TraceFile {
  std::filesystem::path dir;
  std::string path;

  explicit TraceFile(const std::string& bytes, const char* name = "t.v3") {
    dir = std::filesystem::temp_directory_path() /
          ("wolf-trace-test-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    path = (dir / name).string();
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ~TraceFile() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

std::vector<Event> drain(StreamTraceReader& reader) {
  std::vector<Event> all, block;
  while (reader.next_block(block))
    all.insert(all.end(), block.begin(), block.end());
  return all;
}

TEST(TraceIndexTest, StreamWriterMatchesBatchWriterByteForByte) {
  Trace trace = block_trace(2, 7);
  for (TraceFormat format :
       {TraceFormat::kV1, TraceFormat::kV2, TraceFormat::kV3}) {
    std::ostringstream incremental;
    StreamTraceWriter writer(incremental, format);
    for (const Event& e : trace.events) writer.write(e);
    writer.finish();
    EXPECT_EQ(incremental.str(), trace_to_string(trace, format))
        << to_string(format);
  }
}

TEST(TraceIndexTest, IndexRoundTripsAcrossEveryDecodePath) {
  Trace trace = block_trace(5, 7);
  TraceFile file(trace_to_string(trace, TraceFormat::kV3));
  for (bool allow_mmap : {false, true}) {
    for (int jobs : {1, 2, 4}) {
      StreamTraceReader::Options options;
      options.allow_mmap = allow_mmap;
      options.jobs = jobs;
      StreamTraceReader reader(file.path, StreamTraceReader::Mode::kStrict,
                               options);
      EXPECT_EQ(drain(reader), trace.events)
          << "mmap=" << allow_mmap << " jobs=" << jobs;
      EXPECT_TRUE(reader.ok()) << reader.error();
      EXPECT_EQ(reader.mmap_used(), allow_mmap);
      EXPECT_TRUE(reader.index_present());
      EXPECT_EQ(reader.parallel_decode(), allow_mmap && jobs > 1);
    }
  }
}

TEST(TraceIndexTest, UnindexedFileLoadsOnEveryPathToo) {
  Trace trace = block_trace(3, 1);
  TraceFile file(
      trace_to_string(trace, TraceFormat::kV3, {.index = false}));
  for (bool allow_mmap : {false, true}) {
    for (int jobs : {1, 4}) {
      StreamTraceReader::Options options;
      options.allow_mmap = allow_mmap;
      options.jobs = jobs;
      StreamTraceReader reader(file.path, StreamTraceReader::Mode::kStrict,
                               options);
      EXPECT_EQ(drain(reader), trace.events);
      EXPECT_TRUE(reader.ok()) << reader.error();
      EXPECT_FALSE(reader.index_present());
      EXPECT_FALSE(reader.parallel_decode());  // no index to parallelize on
    }
  }
}

TEST(TraceIndexTest, TextTraceThroughPathReaderFallsBackToBuffered) {
  Trace trace = sample_trace();
  TraceFile file(trace_to_string(trace, TraceFormat::kV2), "t.v2");
  StreamTraceReader::Options options;
  options.jobs = 4;
  StreamTraceReader reader(file.path, StreamTraceReader::Mode::kStrict,
                           options);
  EXPECT_EQ(drain(reader), trace.events);
  EXPECT_TRUE(reader.ok()) << reader.error();
  EXPECT_FALSE(reader.mmap_used());
  EXPECT_EQ(reader.version(), 2);
}

TEST(TraceIndexTest, MissingFileReportsCleanly) {
  StreamTraceReader reader("/nonexistent-dir-for-wolf-tests/absent.v3",
                           StreamTraceReader::Mode::kStrict);
  std::vector<Event> block;
  EXPECT_FALSE(reader.next_block(block));
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("cannot open"), std::string::npos);
}

TEST(TraceIndexTest, CorruptBlockSalvagesIdenticallyAtEveryJobsLevel) {
  Trace trace = block_trace(4);
  std::string bytes = trace_to_string(trace, TraceFormat::kV3);
  bytes[end_of_block(bytes, 1) + 20] ^= 0x01;  // damage block 2's payload
  TraceFile file(bytes);

  std::vector<std::vector<Event>> events;
  std::vector<std::vector<std::string>> diags;
  std::vector<std::size_t> dropped;
  for (int jobs : {1, 2, 4}) {
    StreamTraceReader::Options options;
    options.jobs = jobs;
    StreamTraceReader reader(file.path, StreamTraceReader::Mode::kSalvage,
                             options);
    events.push_back(drain(reader));
    diags.push_back(reader.diagnostics());
    dropped.push_back(reader.events_dropped());
    EXPECT_FALSE(reader.complete());
  }
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i], events[0]);
    EXPECT_EQ(diags[i], diags[0]);
    EXPECT_EQ(dropped[i], dropped[0]);
  }
  EXPECT_EQ(events[0].size(), 3 * wire::kBlockEvents);
  EXPECT_EQ(dropped[0], wire::kBlockEvents);
  ASSERT_FALSE(diags[0].empty());
  EXPECT_NE(diags[0][0].find("block 2"), std::string::npos);
}

TEST(TraceIndexTest, TruncationAtEveryByteOffsetNeverPassesStrict) {
  Trace trace = block_trace(1, 3);
  const std::string bytes = trace_to_string(trace, TraceFormat::kV3);
  const std::string plain =
      trace_to_string(trace, TraceFormat::kV3, {.index = false});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::string prefix = bytes.substr(0, cut);
    if (prefix == plain) {
      // The one self-delimiting prefix: cutting exactly after the 'E'
      // footer yields a complete, valid, index-free trace.
      EXPECT_NE(trace_from_string(prefix), std::nullopt);
      continue;
    }
    std::string error;
    EXPECT_EQ(trace_from_string(prefix, &error), std::nullopt)
        << "a " << cut << "-byte prefix must not load strict";
    EXPECT_FALSE(error.empty());
    // Salvage must never crash and never invent events.
    SalvageReport report = salvage_trace_from_string(prefix);
    EXPECT_FALSE(report.complete);
    EXPECT_LE(report.trace.size(), trace.events.size());
    for (std::size_t i = 0; i < report.trace.size(); ++i)
      EXPECT_EQ(report.trace.events[i], trace.events[i]);
  }
}

TEST(TraceIndexTest, TruncatedIndexFallsBackToSequentialLoad) {
  Trace trace = block_trace(2, 5);
  const std::string bytes = trace_to_string(trace, TraceFormat::kV3);
  const std::string plain =
      trace_to_string(trace, TraceFormat::kV3, {.index = false});
  // Every cut strictly inside the footer-index region (the bytes the
  // index-free encoding does not have) leaves the events and the 'E'
  // footer intact: salvage through the path reader must still deliver the
  // complete event list, with the damage named, at every jobs level. (A
  // cut at exactly plain.size() is a complete unindexed trace, so start
  // one byte past it.)
  for (std::size_t cut = plain.size() + 1; cut < bytes.size(); ++cut) {
    TraceFile file(bytes.substr(0, cut));
    for (int jobs : {1, 4}) {
      StreamTraceReader::Options options;
      options.jobs = jobs;
      StreamTraceReader reader(file.path, StreamTraceReader::Mode::kSalvage,
                               options);
      EXPECT_EQ(drain(reader), trace.events) << "cut=" << cut;
      EXPECT_EQ(reader.events_dropped(), 0u);
      EXPECT_FALSE(reader.complete());
      ASSERT_FALSE(reader.diagnostics().empty());
      EXPECT_NE(reader.diagnostics()[0].find("footer"), std::string::npos);
    }
  }
}

TEST(TraceIndexTest, CorruptIndexChecksumFallsBackAndIsNamed) {
  Trace trace = block_trace(1);
  std::string bytes = trace_to_string(trace, TraceFormat::kV3);
  // Flip a bit inside the index section (after the footer, before the
  // trailer) — the entry checksum must catch it.
  bytes[bytes.size() - wire::kIndexTrailerBytes - 4] ^= 0x01;
  TraceFile file(bytes);
  StreamTraceReader::Options options;
  options.jobs = 4;
  StreamTraceReader reader(file.path, StreamTraceReader::Mode::kSalvage,
                           options);
  EXPECT_EQ(drain(reader), trace.events);  // events still load sequentially
  EXPECT_FALSE(reader.parallel_decode());
  EXPECT_FALSE(reader.complete());

  std::string error;
  EXPECT_EQ(trace_from_string(bytes, &error), std::nullopt);
  EXPECT_NE(error.find("footer"), std::string::npos);
}

}  // namespace
}  // namespace wolf
