// Tests for the trace layer: ids, execution indices, events, recording and
// serialization.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/str.hpp"
#include "trace/event.hpp"
#include "trace/exec_index.hpp"
#include "trace/ids.hpp"
#include "trace/recorder.hpp"
#include "trace/serialize.hpp"

namespace wolf {
namespace {

Event make_event(EventKind kind, ThreadId t, SiteId site = 0,
                 std::int32_t occ = 0, LockId lock = kInvalidLock,
                 ThreadId other = kInvalidThread) {
  Event e;
  e.kind = kind;
  e.thread = t;
  e.site = site;
  e.occurrence = occ;
  e.lock = lock;
  e.other = other;
  return e;
}

// ---------------------------------------------------------------- SiteTable

TEST(SiteTableTest, InternDeduplicates) {
  SiteTable sites;
  SiteId a = sites.intern("Foo.bar", 10);
  SiteId b = sites.intern("Foo.bar", 10);
  SiteId c = sites.intern("Foo.bar", 11);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(sites.size(), 2);
}

TEST(SiteTableTest, NameFormatsFunctionAndLine) {
  SiteTable sites;
  SiteId a = sites.intern("Foo.bar", 10);
  EXPECT_EQ(sites.name(a), "Foo.bar:10");
  EXPECT_EQ(sites.name(kInvalidSite), "<none>");
}

TEST(SiteTableTest, BadIdThrows) {
  SiteTable sites;
  EXPECT_THROW(sites.loc(0), CheckFailure);
}

// ---------------------------------------------------------------- ExecIndex

TEST(ExecIndexTest, EqualityAndOrdering) {
  ExecIndex a{1, 5, 0};
  ExecIndex b{1, 5, 0};
  ExecIndex c{1, 5, 1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(ExecIndexTest, HashDistinguishesFields) {
  ExecIndexHash hash;
  EXPECT_EQ(hash(ExecIndex{1, 2, 3}), hash(ExecIndex{1, 2, 3}));
  EXPECT_NE(hash(ExecIndex{1, 2, 3}), hash(ExecIndex{1, 3, 2}));
  EXPECT_NE(hash(ExecIndex{1, 2, 3}), hash(ExecIndex{2, 2, 3}));
}

TEST(ExecIndexTest, ToStringMentionsOccurrenceOnlyWhenNonZero) {
  EXPECT_EQ((ExecIndex{1, 2, 0}).to_string(), "t1@s2");
  EXPECT_EQ((ExecIndex{1, 2, 3}).to_string(), "t1@s2#3");
}

TEST(ExecIndexTest, Validity) {
  EXPECT_FALSE(ExecIndex{}.valid());
  EXPECT_TRUE((ExecIndex{0, 0, 0}).valid());
}

// ---------------------------------------------------------------- Trace

TEST(TraceTest, ThreadsCollectsActorsAndTargets) {
  Trace trace;
  trace.events.push_back(make_event(EventKind::kThreadBegin, 0));
  trace.events.push_back(
      make_event(EventKind::kThreadStart, 0, 1, 0, kInvalidLock, 2));
  auto threads = trace.threads();
  EXPECT_EQ(threads, (std::vector<ThreadId>{0, 2}));
  EXPECT_EQ(trace.max_thread_id(), 2);
}

TEST(TraceTest, EmptyTraceDefaults) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.max_thread_id(), -1);
  EXPECT_TRUE(trace.threads().empty());
}

TEST(EventTest, ToStringIsInformative) {
  Event e = make_event(EventKind::kLockAcquire, 3, 7, 1, 9);
  e.seq = 12;
  std::string s = e.to_string();
  EXPECT_NE(s.find("#12"), std::string::npos);
  EXPECT_NE(s.find("t3"), std::string::npos);
  EXPECT_NE(s.find("acquire"), std::string::npos);
  EXPECT_NE(s.find("lock=9"), std::string::npos);
}

// ---------------------------------------------------------------- Recorder

TEST(RecorderTest, AssignsMonotonicSequence) {
  TraceRecorder recorder;
  for (int i = 0; i < 5; ++i)
    recorder.on_event(make_event(EventKind::kThreadBegin, i));
  const Trace& trace = recorder.trace();
  ASSERT_EQ(trace.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(trace.events[i].seq, i);
}

TEST(RecorderTest, TakeResetsSequence) {
  TraceRecorder recorder;
  recorder.on_event(make_event(EventKind::kThreadBegin, 0));
  Trace first = recorder.take();
  EXPECT_EQ(first.size(), 1u);
  recorder.on_event(make_event(EventKind::kThreadBegin, 1));
  EXPECT_EQ(recorder.trace().events[0].seq, 0u);
}

TEST(RecorderTest, NullSinkDiscards) {
  NullSink sink;
  sink.on_event(make_event(EventKind::kThreadBegin, 0));  // no crash
}

// ---------------------------------------------------------------- Serialize

Trace sample_trace() {
  Trace trace;
  std::uint64_t seq = 0;
  auto push = [&](Event e) {
    e.seq = seq++;
    trace.events.push_back(e);
  };
  push(make_event(EventKind::kThreadBegin, 0));
  push(make_event(EventKind::kThreadStart, 0, 1, 0, kInvalidLock, 1));
  push(make_event(EventKind::kThreadBegin, 1));
  push(make_event(EventKind::kLockAcquire, 1, 2, 0, 5));
  push(make_event(EventKind::kLockRelease, 1, 3, 0, 5));
  push(make_event(EventKind::kThreadEnd, 1));
  push(make_event(EventKind::kThreadJoin, 0, 4, 0, kInvalidLock, 1));
  push(make_event(EventKind::kThreadEnd, 0));
  return trace;
}

TEST(SerializeTest, RoundTripsExactly) {
  Trace original = sample_trace();
  std::string text = trace_to_string(original);
  std::string error;
  auto parsed = trace_from_string(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->events, original.events);
}

TEST(SerializeTest, HeaderIsRequired) {
  std::string error;
  EXPECT_EQ(trace_from_string("0 begin 0 0 0 -1 -1\n", &error), std::nullopt);
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(SerializeTest, MalformedLineReportsLineNumber) {
  std::string text = "# wolf-trace v1\n0 begin 0 0 0 -1 -1\nnot an event\n";
  std::string error;
  EXPECT_EQ(trace_from_string(text, &error), std::nullopt);
  EXPECT_NE(error.find("line 3"), std::string::npos);
}

TEST(SerializeTest, UnknownKindRejected) {
  std::string text = "# wolf-trace v1\n0 frobnicate 0 0 0 -1 -1\n";
  std::string error;
  EXPECT_EQ(trace_from_string(text, &error), std::nullopt);
  EXPECT_NE(error.find("frobnicate"), std::string::npos);
}

TEST(SerializeTest, CommentsAndBlankLinesIgnored) {
  std::string text =
      "# wolf-trace v1\n\n# a comment\n0 begin 0 0 0 -1 -1\n";
  auto parsed = trace_from_string(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(SerializeTest, EmptyTraceRoundTrips) {
  Trace empty;
  auto parsed = trace_from_string(trace_to_string(empty));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

// ------------------------------------------------------------ v2 format ----

TEST(SerializeV2Test, DefaultFormatCarriesFooter) {
  std::string text = trace_to_string(sample_trace());
  EXPECT_NE(text.find("# wolf-trace v2"), std::string::npos);
  EXPECT_NE(text.find("# wolf-trace-end 8 "), std::string::npos);
}

TEST(SerializeV2Test, V1FormatStillWritesAndLoads) {
  Trace original = sample_trace();
  std::string text = trace_to_string(original, TraceFormat::kV1);
  EXPECT_NE(text.find("# wolf-trace v1"), std::string::npos);
  EXPECT_EQ(text.find("wolf-trace-end"), std::string::npos);
  auto parsed = trace_from_string(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->events, original.events);
}

TEST(SerializeV2Test, MissingFooterRejected) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  lines.erase(lines.end() - 2);  // drop the footer, keep trailing blank
  std::string error;
  EXPECT_EQ(trace_from_string(join(lines, "\n"), &error), std::nullopt);
  EXPECT_NE(error.find("footer"), std::string::npos);
}

TEST(SerializeV2Test, TamperedEventFailsChecksum) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  // Event line 4 is "3 acquire 1 2 0 5 -1"; move the acquisition to lock 6.
  lines[4] = "3 acquire 1 2 0 6 -1";
  std::string error;
  EXPECT_EQ(trace_from_string(join(lines, "\n"), &error), std::nullopt);
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos);
}

TEST(SerializeV2Test, CountMismatchRejected) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  lines.erase(lines.begin() + 8);  // drop the last event, keep the footer
  std::string error;
  EXPECT_EQ(trace_from_string(join(lines, "\n"), &error), std::nullopt);
  EXPECT_NE(error.find("count mismatch"), std::string::npos);
}

TEST(SerializeV2Test, EventAfterFooterRejected) {
  std::string text = trace_to_string(sample_trace());
  text += "8 begin 2 0 0 -1 -1\n";
  std::string error;
  EXPECT_EQ(trace_from_string(text, &error), std::nullopt);
  EXPECT_NE(error.find("after wolf-trace footer"), std::string::npos);
}

TEST(SerializeV2Test, NonMonotonicSeqRejected) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  std::swap(lines[3], lines[4]);
  std::string error;
  EXPECT_EQ(trace_from_string(join(lines, "\n"), &error), std::nullopt);
  EXPECT_NE(error.find("non-monotonic"), std::string::npos);
  EXPECT_NE(error.find("line 5"), std::string::npos);
}

// ----------------------------------------------- malformed-trace corpus ----
//
// Each damaged input goes through the strict reader (which must name the
// defect and its line) and through the salvaging reader (which must recover
// exactly the longest valid event prefix).

TEST(SalvageCorpusTest, TruncatedMidLine) {
  std::string text = trace_to_string(sample_trace());
  // Cut inside event line 6 (events 0..4 remain intact, no footer survives).
  std::size_t cut = text.find("5 end");
  ASSERT_NE(cut, std::string::npos);
  std::string damaged = text.substr(0, cut + 3);

  std::string error;
  EXPECT_EQ(trace_from_string(damaged, &error), std::nullopt);
  EXPECT_NE(error.find("line 7"), std::string::npos);

  SalvageReport report = salvage_trace_from_string(damaged);
  EXPECT_EQ(report.version, 2);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.trace.size(), 5u);
  EXPECT_EQ(report.events_dropped, 1u);
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("line 7"), std::string::npos);
  EXPECT_NE(report.summary().find("salvaged 5 event(s)"), std::string::npos);
}

TEST(SalvageCorpusTest, ReorderedSequenceNumbers) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  std::swap(lines[3], lines[4]);  // seq order becomes 0,1,3,2,...
  SalvageReport report = salvage_trace_from_string(join(lines, "\n"));
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.trace.size(), 3u);  // seq 0,1,3
  EXPECT_EQ(report.events_dropped, 5u);
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("non-monotonic"), std::string::npos);
  EXPECT_NE(report.diagnostics[0].find("line 5"), std::string::npos);
}

TEST(SalvageCorpusTest, UnknownEventKind) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  lines[4] = "3 acquqire 1 2 0 5 -1";

  std::string error;
  EXPECT_EQ(trace_from_string(join(lines, "\n"), &error), std::nullopt);
  EXPECT_NE(error.find("acquqire"), std::string::npos);
  EXPECT_NE(error.find("line 5"), std::string::npos);

  SalvageReport report = salvage_trace_from_string(join(lines, "\n"));
  EXPECT_EQ(report.trace.size(), 3u);
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("acquqire"), std::string::npos);
}

TEST(SalvageCorpusTest, BadIntegerField) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  lines[2] = "1 start 0 xx 0 -1 1";

  std::string error;
  EXPECT_EQ(trace_from_string(join(lines, "\n"), &error), std::nullopt);
  EXPECT_NE(error.find("malformed event"), std::string::npos);
  EXPECT_NE(error.find("line 3"), std::string::npos);

  SalvageReport report = salvage_trace_from_string(join(lines, "\n"));
  EXPECT_EQ(report.trace.size(), 1u);
  EXPECT_FALSE(report.complete);
}

TEST(SalvageCorpusTest, MissingHeaderStillSalvagesEvents) {
  std::vector<std::string> lines = split(trace_to_string(sample_trace()), '\n');
  lines.erase(lines.begin());  // header lost
  SalvageReport report = salvage_trace_from_string(join(lines, "\n"));
  EXPECT_EQ(report.version, 0);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.trace.size(), 8u);  // all events recovered
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("header"), std::string::npos);
}

TEST(SalvageCorpusTest, IntactTraceIsComplete) {
  SalvageReport report =
      salvage_trace_from_string(trace_to_string(sample_trace()));
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.version, 2);
  EXPECT_EQ(report.trace.size(), 8u);
  EXPECT_EQ(report.events_dropped, 0u);
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_NE(report.summary().find("complete"), std::string::npos);
}

}  // namespace
}  // namespace wolf
