// Tests for the paper's discussed extensions: defect ranking (§4.4),
// MagicFuzzer-style tuple pruning (§5), and multi-input analysis (§4.4).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/magic_prune.hpp"
#include "core/multi.hpp"
#include "core/ranking.hpp"
#include "sim/scheduler.hpp"
#include "workloads/cache4j.hpp"
#include "workloads/collections.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

// ---------------------------------------------------------------- ranking

TEST(RankingTest, TiersOrderClassifications) {
  auto w = workloads::make_collections_map("HashMap");
  WolfOptions options;
  options.seed = 2014;
  options.replay.attempts = 8;
  WolfReport report = run_wolf(w.program, options);
  ASSERT_EQ(report.defects.size(), 3u);

  auto ranking = rank_defects(report);
  ASSERT_EQ(ranking.size(), 3u);
  // Two reproduced defects first, the Generator-eliminated θ4 last.
  EXPECT_EQ(report.defects[ranking[0].defect_index].classification,
            Classification::kReproduced);
  EXPECT_EQ(report.defects[ranking[1].defect_index].classification,
            Classification::kReproduced);
  EXPECT_EQ(report.defects[ranking[2].defect_index].classification,
            Classification::kFalseByGenerator);
  EXPECT_GT(ranking[0].score, ranking[2].score);
}

TEST(RankingTest, PrunerFalseRanksBelowGeneratorFalse) {
  // Build a report by hand with one defect of each elimination kind.
  WolfReport report;
  CycleReport pruner_cycle;
  pruner_cycle.classification = Classification::kFalseByPruner;
  CycleReport generator_cycle;
  generator_cycle.classification = Classification::kFalseByGenerator;
  report.cycles = {pruner_cycle, generator_cycle};
  DefectReport d0;
  d0.signature = {1, 2};
  d0.classification = Classification::kFalseByPruner;
  d0.cycle_indices = {0};
  DefectReport d1;
  d1.signature = {3, 4};
  d1.classification = Classification::kFalseByGenerator;
  d1.cycle_indices = {1};
  report.defects = {d0, d1};

  auto ranking = rank_defects(report);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].defect_index, 1u);  // generator-false first
  EXPECT_EQ(ranking[1].defect_index, 0u);  // pruner-false last
}

TEST(RankingTest, FormatListsEveryDefectOnce) {
  auto w = workloads::make_collections_list("Stack");
  WolfOptions options;
  options.seed = 9;
  options.replay.attempts = 6;
  WolfReport report = run_wolf(w.program, options);
  std::string text = format_ranking(report, w.program.sites());
  // Six ranked lines.
  EXPECT_NE(text.find("1. ["), std::string::npos);
  EXPECT_NE(text.find("6. ["), std::string::npos);
  EXPECT_EQ(text.find("7. ["), std::string::npos);
}

TEST(RankingTest, EmptyReportYieldsEmptyRanking) {
  WolfReport report;
  EXPECT_TRUE(rank_defects(report).empty());
}

// ---------------------------------------------------------------- magic prune

TEST(MagicPruneTest, PreservesCycleSetExactly) {
  for (const char* kind : {"ArrayList", "HashMap"}) {
    auto w = std::string(kind) == "ArrayList"
                 ? workloads::make_collections_list(kind)
                 : workloads::make_collections_map(kind);
    auto trace = sim::record_trace(w.program, 7);
    ASSERT_TRUE(trace.has_value());

    DetectorOptions plain;
    DetectorOptions pruned;
    pruned.magic_prune = true;
    Detection a = detect(*trace, plain);
    Detection b = detect(*trace, pruned);

    auto signatures = [](const Detection& det) {
      std::multiset<DefectSignature> sigs;
      for (const PotentialDeadlock& c : det.cycles)
        sigs.insert(signature_of(c, det.dep));
      return sigs;
    };
    EXPECT_EQ(signatures(a), signatures(b)) << kind;
  }
}

TEST(MagicPruneTest, RemovesIrrelevantTuples) {
  // cache4j has plenty of acquisitions and no cycles: everything prunes.
  auto trace = sim::record_trace(workloads::make_cache4j(), 3);
  ASSERT_TRUE(trace.has_value());
  LockDependency dep = LockDependency::from_trace(*trace);
  MagicPruneStats stats;
  auto alive = magic_prune(dep, &stats);
  EXPECT_TRUE(alive.empty());
  EXPECT_EQ(stats.after, 0u);
  EXPECT_GT(stats.before, 0u);
  EXPECT_DOUBLE_EQ(stats.reduction(), 1.0);
}

TEST(MagicPruneTest, KeepsCycleTuplesOnMixedTraces) {
  // A deadlocking pair buried in a pile of benign single-lock traffic: the
  // cycle tuples survive, the noise goes.
  sim::Program p;
  LockId a = p.add_lock("A", p.site("alloc", 1));
  LockId b = p.add_lock("B", p.site("alloc", 2));
  LockId noise = p.add_lock("N", p.site("alloc", 3));
  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  ThreadId t2 = p.add_thread("t2");
  for (int i = 0; i < 10; ++i) {
    p.lock(t1, noise, p.site("t1.noise", 10 + i));
    p.unlock(t1, noise, p.site("t1.noise.x", 30 + i));
  }
  p.lock(t1, a, p.site("t1.a", 1));
  p.lock(t1, b, p.site("t1.b", 2));
  p.unlock(t1, b, p.site("t1.ub", 3));
  p.unlock(t1, a, p.site("t1.ua", 4));
  p.lock(t2, b, p.site("t2.b", 1));
  p.lock(t2, a, p.site("t2.a", 2));
  p.unlock(t2, a, p.site("t2.ua", 3));
  p.unlock(t2, b, p.site("t2.ub", 4));
  p.start(main, t1, p.site("spawn", 1));
  p.start(main, t2, p.site("spawn", 1));
  p.join(main, t1, p.site("join", 1));
  p.join(main, t2, p.site("join", 1));
  p.finalize();

  auto trace = sim::record_trace(p, 5);
  ASSERT_TRUE(trace.has_value());
  LockDependency dep = LockDependency::from_trace(*trace);
  MagicPruneStats stats;
  auto alive = magic_prune(dep, &stats);
  EXPECT_EQ(alive.size(), 2u);  // exactly the two nested cycle tuples
  EXPECT_GT(stats.reduction(), 0.5);
}

TEST(MagicPruneTest, FixpointNeedsMultipleRounds) {
  // t1 requests B while holding A; t2 holds B but requests C, which nobody
  // holds — after t2's tuple dies, t1's must die in a second round.
  sim::Program p;
  LockId a = p.add_lock("A", p.site("alloc", 1));
  LockId b = p.add_lock("B", p.site("alloc", 2));
  LockId c = p.add_lock("C", p.site("alloc", 3));
  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  ThreadId t2 = p.add_thread("t2");
  p.lock(t1, a, p.site("t1.a", 1));
  p.lock(t1, b, p.site("t1.b", 2));
  p.unlock(t1, b, p.site("t1.ub", 3));
  p.unlock(t1, a, p.site("t1.ua", 4));
  p.lock(t2, b, p.site("t2.b", 1));
  p.lock(t2, c, p.site("t2.c", 2));
  p.unlock(t2, c, p.site("t2.uc", 3));
  p.unlock(t2, b, p.site("t2.ub", 4));
  p.start(main, t1, p.site("spawn", 1));
  p.start(main, t2, p.site("spawn", 1));
  p.join(main, t1, p.site("join", 1));
  p.join(main, t2, p.site("join", 1));
  p.finalize();

  auto trace = sim::record_trace(p, 5);
  ASSERT_TRUE(trace.has_value());
  LockDependency dep = LockDependency::from_trace(*trace);
  MagicPruneStats stats;
  auto alive = magic_prune(dep, &stats);
  EXPECT_TRUE(alive.empty());
  EXPECT_GE(stats.iterations, 2);
}

TEST(MagicPruneTest, WithMagicPruneWrapper) {
  auto w = workloads::make_collections_list("ArrayList");
  auto trace = sim::record_trace(w.program, 7);
  ASSERT_TRUE(trace.has_value());
  LockDependency dep = LockDependency::from_trace(*trace);
  LockDependency reduced = with_magic_prune(dep);
  EXPECT_LE(reduced.unique.size(), dep.unique.size());
  EXPECT_EQ(reduced.tuples.size(), dep.tuples.size());
}

// ---------------------------------------------------------------- multi-run

// A program whose control flow depends on a race: t1 runs one of two
// deadlock-prone code paths depending on whether the helper's flag write
// wins. Different recording seeds expose different defects.
sim::Program racy_branch_program() {
  sim::Program p;
  LockId x = p.add_lock("X", p.site("alloc", 1));
  LockId y = p.add_lock("Y", p.site("alloc", 2));
  int flag = p.add_flag();
  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  ThreadId t2 = p.add_thread("t2");
  ThreadId helper = p.add_thread("helper");

  // t1: if (flag) pathA else pathB — same locks, different sites. A pad
  // before the check keeps the race with the helper close to even.
  p.compute(t1, p.site("t1.pad", 0));
  int jmp = p.jump_if_flag(t1, flag, 1, 0, p.site("t1.check", 1));
  // path B (flag still 0)
  p.lock(t1, x, p.site("t1.pathB.outer", 10));
  p.lock(t1, y, p.site("t1.pathB.inner", 11));
  p.unlock(t1, y, p.site("t1.pathB.iy", 12));
  p.unlock(t1, x, p.site("t1.pathB.ix", 13));
  int end_jump = p.jump(t1, 0, p.site("t1.skipA", 14));
  // path A
  int path_a = p.lock(t1, x, p.site("t1.pathA.outer", 20));
  p.lock(t1, y, p.site("t1.pathA.inner", 21));
  p.unlock(t1, y, p.site("t1.pathA.iy", 22));
  int done = p.unlock(t1, x, p.site("t1.pathA.ix", 23));
  p.patch_jump(t1, jmp, path_a);
  p.patch_jump(t1, end_jump, done + 1);

  // t2: reversed order — closes a cycle with whichever path t1 took.
  p.lock(t2, y, p.site("t2.outer", 1));
  p.lock(t2, x, p.site("t2.inner", 2));
  p.unlock(t2, x, p.site("t2.ix", 3));
  p.unlock(t2, y, p.site("t2.iy", 4));

  // helper races to set the flag (padded so both outcomes are likely).
  p.compute(helper, p.site("helper.pad", 1));
  p.compute(helper, p.site("helper.pad2", 3));
  p.set_flag(helper, flag, 1, p.site("helper.set", 2));

  SiteId spawn = p.site("spawn", 1);
  SiteId joinsite = p.site("join", 1);
  for (ThreadId t : {helper, t1, t2}) p.start(main, t, spawn);
  for (ThreadId t : {helper, t1, t2}) p.join(main, t, joinsite);
  p.finalize();
  return p;
}

TEST(MultiRunTest, UnionsDefectsAcrossSchedules) {
  sim::Program p = racy_branch_program();
  MultiRunOptions options;
  options.runs = 12;
  options.seed = 5;
  options.wolf.replay.attempts = 4;
  MultiRunReport report = run_wolf_multi(p, options);

  // Across a dozen schedules both paths should have been observed; a single
  // run can only ever see one of them.
  std::set<DefectSignature> merged;
  for (const MergedDefect& d : report.defects) merged.insert(d.signature);
  EXPECT_EQ(merged.size(), 2u);
  for (const WolfReport& run : report.runs)
    if (run.trace_recorded) {
      EXPECT_LE(run.defects.size(), 1u);
    }
}

TEST(MultiRunTest, MostAlarmingClassificationWins) {
  EXPECT_TRUE(overrides(Classification::kReproduced,
                        Classification::kUnknown));
  EXPECT_TRUE(overrides(Classification::kUnknown,
                        Classification::kFalseByGenerator));
  EXPECT_TRUE(overrides(Classification::kFalseByGenerator,
                        Classification::kFalseByPruner));
  EXPECT_FALSE(overrides(Classification::kFalseByPruner,
                         Classification::kReproduced));
  EXPECT_FALSE(overrides(Classification::kUnknown,
                         Classification::kUnknown));
}

TEST(MultiRunTest, CountsRunsDetected) {
  auto w = workloads::make_collections_map("HashMap");
  MultiRunOptions options;
  options.runs = 3;
  options.seed = 2;
  options.wolf.replay.attempts = 4;
  MultiRunReport report = run_wolf_multi(w.program, options);
  ASSERT_EQ(report.defects.size(), 3u);  // structural: same defects each run
  for (const MergedDefect& d : report.defects)
    EXPECT_EQ(d.runs_detected, 3);
  EXPECT_EQ(report.count(Classification::kReproduced), 2);
  EXPECT_EQ(report.count(Classification::kFalseByGenerator), 1);
}

}  // namespace
}  // namespace wolf
