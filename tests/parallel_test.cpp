// The parallel analysis engine (DESIGN.md §10): thread-pool contract tests
// and end-to-end determinism — the report must not depend on how many
// workers classified it.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/multi.hpp"
#include "core/pipeline.hpp"
#include "obs/counters.hpp"
#include "obs/progress.hpp"
#include "robust/fault.hpp"
#include "support/thread_pool.hpp"
#include "workloads/collections.hpp"
#include "workloads/logging.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for_each(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  pool.parallel_for_each(kCount, [&](std::size_t i) { visits[i]++; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPoolTest, SingleJobRunsInlineOnTheCallingThread) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.parallel_for_each(64, [&](std::size_t) {
    seen.insert(std::this_thread::get_id());  // serial: no synchronization
  });
  EXPECT_EQ(seen, std::set<std::thread::id>{caller});
}

TEST(ThreadPoolTest, AutoJobsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_jobs(), 1);
  ThreadPool pool(0);
  EXPECT_GE(pool.jobs(), 1);
}

TEST(ThreadPoolTest, RethrowsLowestIndexException) {
  for (int jobs : {1, 4}) {
    ThreadPool pool(jobs);
    std::atomic<int> ran{0};
    try {
      pool.parallel_for_each(100, [&](std::size_t i) {
        ran++;
        if (i == 7 || i == 40 || i == 99)
          throw std::runtime_error("boom at " + std::to_string(i));
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 7") << "jobs=" << jobs;
    }
    // An exception does not abort the batch: every index still ran.
    EXPECT_EQ(ran.load(), 100) << "jobs=" << jobs;
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for_each(10, [&](std::size_t i) {
      sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 45);
  }
}

// ---------------------------------------------------------- determinism

// Everything the report asserts must be independent of the jobs level:
// classifications, prune verdicts, replay trial statistics, defect grouping,
// cycle order, and the rendered summary.
void expect_identical_reports(const WolfReport& a, const WolfReport& b,
                              const SiteTable& sites) {
  ASSERT_EQ(a.trace_recorded, b.trace_recorded);
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  for (std::size_t c = 0; c < a.cycles.size(); ++c) {
    SCOPED_TRACE("cycle " + std::to_string(c));
    EXPECT_EQ(a.cycles[c].cycle_index, b.cycles[c].cycle_index);
    EXPECT_EQ(a.cycles[c].classification, b.cycles[c].classification);
    EXPECT_EQ(a.cycles[c].prune_verdict, b.cycles[c].prune_verdict);
    EXPECT_EQ(a.cycles[c].gs_vertices, b.cycles[c].gs_vertices);
    EXPECT_EQ(a.cycles[c].failure_reason, b.cycles[c].failure_reason);
    EXPECT_EQ(a.cycles[c].replay_stats.attempts,
              b.cycles[c].replay_stats.attempts);
    EXPECT_EQ(a.cycles[c].replay_stats.hits, b.cycles[c].replay_stats.hits);
    EXPECT_EQ(a.cycles[c].replay_stats.other_deadlocks,
              b.cycles[c].replay_stats.other_deadlocks);
    EXPECT_EQ(a.cycles[c].replay_stats.no_deadlocks,
              b.cycles[c].replay_stats.no_deadlocks);
    EXPECT_EQ(a.cycles[c].replay_stats.timeouts,
              b.cycles[c].replay_stats.timeouts);
    // Same detected cycle in the same canonical order.
    EXPECT_EQ(a.detection.cycles[c].tuple_idx, b.detection.cycles[c].tuple_idx);
  }
  ASSERT_EQ(a.defects.size(), b.defects.size());
  for (std::size_t d = 0; d < a.defects.size(); ++d) {
    SCOPED_TRACE("defect " + std::to_string(d));
    EXPECT_EQ(a.defects[d].signature, b.defects[d].signature);
    EXPECT_EQ(a.defects[d].classification, b.defects[d].classification);
    EXPECT_EQ(a.defects[d].cycle_indices, b.defects[d].cycle_indices);
  }
  EXPECT_EQ(a.summary(sites), b.summary(sites));
}

void expect_jobs_invariant(const sim::Program& program,
                           WolfOptions options = {}) {
  options.seed = 2014;
  options.replay.attempts = 8;
  options.jobs = 1;
  WolfReport serial = run_wolf(program, options);
  EXPECT_EQ(serial.jobs_used, 1);
  options.jobs = 8;
  WolfReport parallel = run_wolf(program, options);
  EXPECT_EQ(parallel.jobs_used, 8);
  expect_identical_reports(serial, parallel, program.sites());
}

TEST(ParallelDeterminismTest, PaperExamples) {
  expect_jobs_invariant(workloads::make_figure1().program);
  expect_jobs_invariant(workloads::make_figure2().program);
  expect_jobs_invariant(workloads::make_figure4().program);
  expect_jobs_invariant(workloads::make_philosophers(4).program);
}

TEST(ParallelDeterminismTest, CollectionsLists) {
  expect_jobs_invariant(workloads::make_collections_list("ArrayList").program);
  expect_jobs_invariant(workloads::make_collections_list("Stack").program);
}

TEST(ParallelDeterminismTest, CollectionsMaps) {
  // Includes the θ4 generator false positive: the pruner/generator verdicts
  // must survive parallel classification unchanged.
  expect_jobs_invariant(workloads::make_collections_map("HashMap").program);
  expect_jobs_invariant(workloads::make_collections_map("TreeMap").program);
}

TEST(ParallelDeterminismTest, FaultInjectionIsolationIsJobsInvariant) {
  // A cycle whose classification stage crashes degrades the same way at any
  // jobs level — and only that cycle.
  auto w = workloads::make_collections_list("ArrayList");
  robust::FaultPlan fault;
  fault.classify_throw_cycle = 2;
  WolfOptions options;
  options.fault = &fault;
  expect_jobs_invariant(w.program, options);
}

TEST(ParallelDeterminismTest, AnalyzeTraceJobsInvariant) {
  auto w = workloads::make_logging();
  auto trace = sim::record_trace(w.program, 77);
  ASSERT_TRUE(trace.has_value());
  WolfOptions options;
  options.replay.attempts = 8;
  options.jobs = 1;
  WolfReport serial = analyze_trace(w.program, *trace, options);
  options.jobs = 8;
  WolfReport parallel = analyze_trace(w.program, *trace, options);
  expect_identical_reports(serial, parallel, w.program.sites());
}

TEST(ParallelDeterminismTest, ObservabilityOnOrOffDoesNotPerturbReports) {
  // The obs layer only observes: with counters and progress enabled, every
  // jobs level must still produce the identical report it produces with
  // them off (the cross-check inside expect_jobs_invariant), and the
  // enabled/disabled runs must agree with each other.
  auto w = workloads::make_collections_map("HashMap");
  WolfOptions options;
  options.seed = 2014;
  options.replay.attempts = 8;
  options.jobs = 8;

  obs::set_counters_enabled(false);
  WolfReport off = run_wolf(w.program, options);

  obs::set_counters_enabled(true);
  obs::set_progress_enabled(true);
  obs::set_progress_writer([](const char*) {});  // swallow heartbeats
  expect_jobs_invariant(w.program);
  WolfReport on = run_wolf(w.program, options);
  obs::set_progress_writer(nullptr);
  obs::set_progress_enabled(false);
  obs::set_counters_enabled(false);

  expect_identical_reports(off, on, w.program.sites());
}

TEST(ParallelDeterminismTest, MultiRunMergeIsJobsInvariant) {
  auto w = workloads::make_collections_map("HashMap");
  MultiRunOptions options;
  options.runs = 4;
  options.wolf.replay.attempts = 6;
  options.jobs = 1;
  MultiRunReport serial = run_wolf_multi(w.program, options);
  options.jobs = 4;
  MultiRunReport parallel = run_wolf_multi(w.program, options);
  ASSERT_EQ(serial.defects.size(), parallel.defects.size());
  for (std::size_t d = 0; d < serial.defects.size(); ++d) {
    EXPECT_EQ(serial.defects[d].signature, parallel.defects[d].signature);
    EXPECT_EQ(serial.defects[d].classification,
              parallel.defects[d].classification);
    EXPECT_EQ(serial.defects[d].runs_detected,
              parallel.defects[d].runs_detected);
    EXPECT_EQ(serial.defects[d].first_seen_run,
              parallel.defects[d].first_seen_run);
  }
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t r = 0; r < serial.runs.size(); ++r)
    expect_identical_reports(serial.runs[r], parallel.runs[r],
                             w.program.sites());
}

}  // namespace
}  // namespace wolf
