// Pins the whole pipeline to the paper's running example (Figures 4–7):
// the D_σ tuples of Fig. 5, the clock evolution of Fig. 6, the two detected
// cycles, the Pruner verdicts, the exact Gs edge set of Fig. 7(a), and the
// Replayer's deterministic reproduction of θ′2. The schedule space is also
// exhausted with the systematic explorer to prove θ′1 is unreachable.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/deadlock_fuzzer.hpp"
#include "core/pipeline.hpp"
#include "explore/explorer.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

using workloads::Figure4;
using workloads::make_figure4;

class RunningExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = make_figure4();
    auto trace = sim::record_trace(fig_.program, /*seed=*/42);
    ASSERT_TRUE(trace.has_value()) << "no completed recording run";
    trace_ = std::move(*trace);
    detection_ = detect(trace_);
  }

  // Finds the unique tuple acquiring at `site`; fails the test if absent.
  const LockTuple& tuple_at(SiteId site) {
    for (const LockTuple& t : detection_.dep.tuples)
      if (t.acquire_index().site == site) return t;
    ADD_FAILURE() << "no tuple at site " << site;
    static LockTuple dummy;
    return dummy;
  }

  // The cycle whose deadlocking acquisitions sit at exactly `sites`.
  const PotentialDeadlock* cycle_at(std::vector<SiteId> sites) {
    std::sort(sites.begin(), sites.end());
    for (const PotentialDeadlock& c : detection_.cycles)
      if (signature_of(c, detection_.dep) == sites) return &c;
    return nullptr;
  }

  Figure4 fig_;
  Trace trace_;
  Detection detection_;
};

TEST_F(RunningExampleTest, DSigmaHasTheEightTuplesOfFigure5) {
  EXPECT_EQ(detection_.dep.tuples.size(), 8u);
  EXPECT_EQ(detection_.dep.unique.size(), 8u);

  // η1 = (1, {}, l1, {11}, 1)
  {
    const LockTuple& eta = tuple_at(fig_.s11);
    EXPECT_EQ(eta.thread, 0);
    EXPECT_TRUE(eta.lockset.empty());
    EXPECT_EQ(eta.lock, fig_.l1);
    ASSERT_EQ(eta.context.size(), 1u);
    EXPECT_EQ(eta.context[0].site, fig_.s11);
    EXPECT_EQ(eta.tau, 1);
  }
  // η2 = (1, {l1}, l2, {11,12}, 1)
  {
    const LockTuple& eta = tuple_at(fig_.s12);
    EXPECT_EQ(eta.thread, 0);
    ASSERT_EQ(eta.lockset.size(), 1u);
    EXPECT_EQ(eta.lockset[0], fig_.l1);
    EXPECT_EQ(eta.lock, fig_.l2);
    ASSERT_EQ(eta.context.size(), 2u);
    EXPECT_EQ(eta.context[0].site, fig_.s11);
    EXPECT_EQ(eta.context[1].site, fig_.s12);
    EXPECT_EQ(eta.tau, 1);
  }
  // η5 = (3, {l3,l2}, l1, {31,32,33}, 1)
  {
    const LockTuple& eta = tuple_at(fig_.s33);
    EXPECT_EQ(eta.thread, 2);
    ASSERT_EQ(eta.lockset.size(), 2u);
    EXPECT_EQ(eta.lockset[0], fig_.l3);
    EXPECT_EQ(eta.lockset[1], fig_.l2);
    EXPECT_EQ(eta.lock, fig_.l1);
    EXPECT_EQ(eta.tau, 1);
  }
  // η6 = (1, {}, l3, {16}, 2) — after t2.start() bumped τ1.
  {
    const LockTuple& eta = tuple_at(fig_.s16);
    EXPECT_EQ(eta.thread, 0);
    EXPECT_TRUE(eta.lockset.empty());
    EXPECT_EQ(eta.lock, fig_.l3);
    EXPECT_EQ(eta.tau, 2);
  }
  // η8 = (1, {l1}, l2, {18,19}, 2)
  {
    const LockTuple& eta = tuple_at(fig_.s19);
    EXPECT_EQ(eta.thread, 0);
    ASSERT_EQ(eta.lockset.size(), 1u);
    EXPECT_EQ(eta.lockset[0], fig_.l1);
    EXPECT_EQ(eta.lock, fig_.l2);
    ASSERT_EQ(eta.context.size(), 2u);
    EXPECT_EQ(eta.context[0].site, fig_.s18);
    EXPECT_EQ(eta.context[1].site, fig_.s19);
    EXPECT_EQ(eta.tau, 2);
  }
}

TEST_F(RunningExampleTest, ClocksMatchFigure6) {
  const ClockTracker& clocks = detection_.clocks;
  // τ at end: τ1 = 2 (one start), τ2 = 2 (one start), τ3 = 1.
  EXPECT_EQ(clocks.timestamp(0), 2);
  EXPECT_EQ(clocks.timestamp(1), 2);
  EXPECT_EQ(clocks.timestamp(2), 1);

  // V1 = <⊥, ⊥, ⊥>
  for (ThreadId u = 0; u < 3; ++u) {
    EXPECT_EQ(clocks.view(0, u).S, kTsBottom);
    EXPECT_EQ(clocks.view(0, u).J, kTsBottom);
  }
  // V2 = <(2,⊥), ⊥, ⊥>
  EXPECT_EQ(clocks.view(1, 0).S, 2);
  EXPECT_EQ(clocks.view(1, 0).J, kTsBottom);
  EXPECT_EQ(clocks.view(1, 1).S, kTsBottom);
  EXPECT_EQ(clocks.view(1, 2).S, kTsBottom);
  // V3 = <(2,⊥), (2,⊥), ⊥>
  EXPECT_EQ(clocks.view(2, 0).S, 2);
  EXPECT_EQ(clocks.view(2, 0).J, kTsBottom);
  EXPECT_EQ(clocks.view(2, 1).S, 2);
  EXPECT_EQ(clocks.view(2, 1).J, kTsBottom);
  EXPECT_EQ(clocks.view(2, 2).S, kTsBottom);
}

TEST_F(RunningExampleTest, DetectorFindsExactlyTheTwoCycles) {
  ASSERT_EQ(detection_.cycles.size(), 2u);
  EXPECT_NE(cycle_at({fig_.s12, fig_.s33}), nullptr);  // θ′1
  EXPECT_NE(cycle_at({fig_.s19, fig_.s33}), nullptr);  // θ′2
  EXPECT_EQ(detection_.defects.size(), 2u);
}

TEST_F(RunningExampleTest, PrunerEliminatesTheta1AndKeepsTheta2) {
  const PotentialDeadlock* theta1 = cycle_at({fig_.s12, fig_.s33});
  const PotentialDeadlock* theta2 = cycle_at({fig_.s19, fig_.s33});
  ASSERT_NE(theta1, nullptr);
  ASSERT_NE(theta2, nullptr);
  EXPECT_EQ(prune_cycle(*theta1, detection_.dep, detection_.clocks),
            PruneVerdict::kFalseNotStarted);
  EXPECT_EQ(prune_cycle(*theta2, detection_.dep, detection_.clocks),
            PruneVerdict::kUnknown);
}

TEST_F(RunningExampleTest, GsForTheta2MatchesFigure7a) {
  const PotentialDeadlock* theta2 = cycle_at({fig_.s19, fig_.s33});
  ASSERT_NE(theta2, nullptr);
  GeneratorResult gen = generate(*theta2, detection_.dep);
  EXPECT_TRUE(gen.feasible);
  EXPECT_EQ(gen.gs.vertex_count(), 8);

  using EdgeKey = std::tuple<SiteId, SiteId, GsEdgeKind>;
  std::set<EdgeKey> edges;
  for (const GsEdge& e : gen.gs.edges())
    edges.insert({e.from.site, e.to.site, e.kind});

  const std::set<EdgeKey> expected{
      // type-D
      {fig_.s18, fig_.s33, GsEdgeKind::kTypeD},
      {fig_.s32, fig_.s19, GsEdgeKind::kTypeD},
      // type-C
      {fig_.s16, fig_.s31, GsEdgeKind::kTypeC},
      {fig_.s12, fig_.s32, GsEdgeKind::kTypeC},
      {fig_.s11, fig_.s33, GsEdgeKind::kTypeC},
      // type-P
      {fig_.s11, fig_.s12, GsEdgeKind::kTypeP},
      {fig_.s12, fig_.s16, GsEdgeKind::kTypeP},
      {fig_.s16, fig_.s18, GsEdgeKind::kTypeP},
      {fig_.s18, fig_.s19, GsEdgeKind::kTypeP},
      {fig_.s31, fig_.s32, GsEdgeKind::kTypeP},
      {fig_.s32, fig_.s33, GsEdgeKind::kTypeP},
  };
  EXPECT_EQ(edges, expected);
}

TEST_F(RunningExampleTest, ReplayerReproducesTheta2Deterministically) {
  const PotentialDeadlock* theta2 = cycle_at({fig_.s19, fig_.s33});
  ASSERT_NE(theta2, nullptr);
  GeneratorResult gen = generate(*theta2, detection_.dep);
  ASSERT_TRUE(gen.feasible);

  ReplayOptions options;
  options.attempts = 25;
  options.stop_on_first_hit = false;
  options.seed = 7;
  ReplayStats stats =
      replay(fig_.program, *theta2, detection_.dep, gen.gs, options);
  EXPECT_EQ(stats.hits, stats.attempts) << "expected a hit rate of 1";
}

TEST_F(RunningExampleTest, ExplorerProvesTheta1UnreachableAndTheta2Reachable) {
  explore::ExploreResult result = explore::explore(fig_.program);
  ASSERT_TRUE(result.exhausted);
  std::vector<SiteId> theta1_sig{fig_.s12, fig_.s33};
  std::vector<SiteId> theta2_sig{fig_.s19, fig_.s33};
  std::sort(theta1_sig.begin(), theta1_sig.end());
  std::sort(theta2_sig.begin(), theta2_sig.end());
  EXPECT_FALSE(result.deadlock_reachable_at(theta1_sig));
  EXPECT_TRUE(result.deadlock_reachable_at(theta2_sig));
  // θ2 is the only reachable deadlock in the whole schedule space.
  EXPECT_EQ(result.deadlock_signatures.size(), 1u);
}

TEST_F(RunningExampleTest, FullPipelineClassifiesBothCycles) {
  WolfOptions options;
  options.seed = 11;
  options.replay.attempts = 10;
  WolfReport report = run_wolf(fig_.program, options);
  ASSERT_TRUE(report.trace_recorded);
  ASSERT_EQ(report.cycles.size(), 2u);
  EXPECT_EQ(report.count_cycles(Classification::kFalseByPruner), 1);
  EXPECT_EQ(report.count_cycles(Classification::kReproduced), 1);
  EXPECT_EQ(report.count_defects(Classification::kFalseByPruner), 1);
  EXPECT_EQ(report.count_defects(Classification::kReproduced), 1);
}

TEST_F(RunningExampleTest, DeadlockFuzzerCanAlsoReproduceTheta2) {
  // θ2 has no abstraction collisions, so the baseline should succeed at
  // least sometimes — the separation appears on Figure 9/2-style inputs.
  const PotentialDeadlock* theta2 = cycle_at({fig_.s19, fig_.s33});
  ASSERT_NE(theta2, nullptr);
  ReplayOptions options;
  options.attempts = 100;
  options.stop_on_first_hit = false;
  options.seed = 3;
  ReplayStats stats =
      baseline::fuzz(fig_.program, *theta2, detection_.dep, options);
  EXPECT_GT(stats.hits, 0);
}

}  // namespace
}  // namespace wolf
