// Observability layer (DESIGN.md §13): span trees, sharded counters,
// progress heartbeats, the versioned JSON run report, and the wolf::Config
// facade. The load-bearing properties: enabling obs never changes pipeline
// output, PhaseTimings is an exact view of the span tree, and the stable
// report is byte-identical at every jobs level.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.hpp"
#include "obs/counters.hpp"
#include "obs/progress.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "wolf.hpp"
#include "workloads/collections.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

// ---------------------------------------------------------------- spans

TEST(SpanSinkTest, RecordsNestedSpans) {
  obs::SpanSink sink;
  obs::SpanId outer = sink.begin("phase/detect");
  obs::SpanId inner = sink.begin("cycle/prune", outer, 7);
  sink.end(inner);
  sink.end(outer);

  std::vector<obs::SpanRecord> spans = sink.take();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "phase/detect");
  EXPECT_EQ(spans[0].parent, obs::kNoSpan);
  EXPECT_EQ(spans[1].name, "cycle/prune");
  EXPECT_EQ(spans[1].parent, outer);
  EXPECT_EQ(spans[1].tag, 7u);
  EXPECT_GE(spans[1].start_seconds, spans[0].start_seconds);
  EXPECT_GE(spans[0].duration_seconds, spans[1].duration_seconds);
  EXPECT_TRUE(sink.take().empty()) << "take() must clear the sink";
}

TEST(SpanSinkTest, RaiiSpanEndsOnUnwind) {
  obs::SpanSink sink;
  try {
    obs::Span span(&sink, "phase/feasibility");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  std::vector<obs::SpanRecord> spans = sink.take();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GT(spans[0].duration_seconds, 0.0) << "span must close on unwind";
}

TEST(SpanSinkTest, NullSinkSpanIsANoOp) {
  obs::Span span(nullptr, "phase/detect");
  EXPECT_EQ(span.id(), obs::kNoSpan);
}

// -------------------------------------------------------------- counters

TEST(CounterRegistryTest, ShardedAddsSumAcrossThreads) {
  obs::set_counters_enabled(true);
  const obs::Counter counter("test.sharded_adds");
  obs::CounterSnapshot before = obs::CounterRegistry::instance().snapshot();

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) counter.add();
    });
  for (std::thread& t : threads) t.join();

  obs::CounterSnapshot delta =
      obs::delta(obs::CounterRegistry::instance().snapshot(), before);
  EXPECT_EQ(delta.value("test.sharded_adds"), 8000u);
  obs::set_counters_enabled(false);
}

TEST(CounterRegistryTest, DisabledAddsAreDropped) {
  obs::set_counters_enabled(false);
  const obs::Counter counter("test.disabled_adds");
  obs::CounterSnapshot before = obs::CounterRegistry::instance().snapshot();
  counter.add(100);
  obs::CounterSnapshot delta =
      obs::delta(obs::CounterRegistry::instance().snapshot(), before);
  EXPECT_EQ(delta.value("test.disabled_adds"), 0u);
}

TEST(CounterRegistryTest, InternIsIdempotent) {
  const obs::Counter a("test.intern_twice");
  const obs::Counter b("test.intern_twice");
  EXPECT_EQ(a.id(), b.id());
}

TEST(CounterRegistryTest, DeltaKeepsZeroValuedCounters) {
  obs::CounterSnapshot before, after;
  before.samples.push_back({"x", 3, true});
  after.samples.push_back({"x", 3, true});
  after.samples.push_back({"y", 5, false});
  obs::CounterSnapshot d = obs::delta(after, before);
  ASSERT_EQ(d.samples.size(), 2u);
  EXPECT_EQ(d.value("x"), 0u) << "zero deltas are kept, not dropped";
  EXPECT_EQ(d.value("y"), 5u);
  EXPECT_FALSE(d.samples[1].stable);
}

// -------------------------------------------------------------- progress

std::string& progress_buffer() {
  static std::string buffer;
  return buffer;
}
void capture_progress(const char* line) {
  progress_buffer() += line;
  progress_buffer() += '\n';
}

TEST(ProgressTest, TicksOnlyWhenEnabled) {
  obs::set_progress_writer(&capture_progress);
  obs::set_progress_interval_ms(0);  // every tick prints

  progress_buffer().clear();
  obs::progress_tick("detect", 1, 10);
  EXPECT_TRUE(progress_buffer().empty()) << "disabled ticks must not print";

  obs::set_progress_enabled(true);
  obs::progress_tick("detect", 1, 10);
  obs::progress_tick("detect", 10, 10);
  EXPECT_NE(progress_buffer().find("wolf: detect 1/10"), std::string::npos);
  EXPECT_NE(progress_buffer().find("wolf: detect 10/10"), std::string::npos);

  obs::set_progress_enabled(false);
  obs::set_progress_interval_ms(500);
  obs::set_progress_writer(nullptr);
}

// ------------------------------------------------- pipeline span tree

std::vector<const obs::SpanRecord*> spans_named(
    const std::vector<obs::SpanRecord>& spans, const std::string& name) {
  std::vector<const obs::SpanRecord*> out;
  for (const obs::SpanRecord& s : spans)
    if (s.name == name) out.push_back(&s);
  return out;
}

TEST(PipelineSpanTest, SpanTreeShapeOnHashMap) {
  auto w = workloads::make_collections_map("HashMap");
  WolfOptions options;
  options.seed = 2014;
  options.replay.attempts = 8;
  WolfReport report = run_wolf(w.program, options);
  ASSERT_TRUE(report.trace_recorded);
  ASSERT_EQ(report.cycles.size(), 4u);

  // Exactly one span per phase, all roots.
  for (const char* phase : {"phase/record", "phase/detect",
                            "phase/feasibility", "phase/replay"}) {
    auto found = spans_named(report.spans, phase);
    ASSERT_EQ(found.size(), 1u) << phase;
    EXPECT_EQ(found[0]->parent, obs::kNoSpan) << phase;
    EXPECT_GT(found[0]->duration_seconds, 0.0) << phase;
  }
  const obs::SpanId feasibility_id =
      spans_named(report.spans, "phase/feasibility")[0]->id;
  const obs::SpanId replay_id =
      spans_named(report.spans, "phase/replay")[0]->id;

  // One prune and one generate span per cycle, parented under feasibility,
  // tagged with the cycle index (HashMap: the pruner kills nothing).
  for (const char* stage : {"cycle/prune", "cycle/generate"}) {
    auto found = spans_named(report.spans, stage);
    ASSERT_EQ(found.size(), 4u) << stage;
    std::vector<std::uint64_t> tags;
    for (const obs::SpanRecord* s : found) {
      EXPECT_EQ(s->parent, feasibility_id) << stage;
      tags.push_back(s->tag);
    }
    std::sort(tags.begin(), tags.end());
    EXPECT_EQ(tags, (std::vector<std::uint64_t>{0, 1, 2, 3})) << stage;
  }

  // Replay spans only for the three feasible cycles (θ4 is the generator
  // false positive), parented under phase/replay.
  auto replays = spans_named(report.spans, "cycle/replay");
  ASSERT_EQ(replays.size(), 3u);
  for (const obs::SpanRecord* s : replays)
    EXPECT_EQ(s->parent, replay_id);
}

TEST(PipelineSpanTest, PhaseTimingsAreAViewOfTheSpans) {
  auto w = workloads::make_figure2();
  WolfReport report = run_wolf(w.program, {});
  ASSERT_TRUE(report.trace_recorded);
  PhaseTimings recomputed = PhaseTimings::from_spans(report.spans);
  EXPECT_EQ(report.timings.record_seconds, recomputed.record_seconds);
  EXPECT_EQ(report.timings.detect_seconds, recomputed.detect_seconds);
  EXPECT_EQ(report.timings.prune_seconds, recomputed.prune_seconds);
  EXPECT_EQ(report.timings.generate_seconds, recomputed.generate_seconds);
  EXPECT_EQ(report.timings.replay_seconds, recomputed.replay_seconds);
  EXPECT_GT(report.timings.detect_seconds, 0.0);
}

// ------------------------------------------------- pipeline counters

TEST(PipelineCounterTest, FunnelCountersMatchTheReport) {
  auto w = workloads::make_collections_map("HashMap");
  auto trace = sim::record_trace(w.program, 2014);
  ASSERT_TRUE(trace.has_value());

  obs::set_counters_enabled(true);
  obs::CounterSnapshot before = obs::CounterRegistry::instance().snapshot();
  WolfOptions options;
  options.replay.attempts = 8;
  WolfReport report = analyze_trace(w.program, *trace, options);
  obs::CounterSnapshot counters =
      obs::delta(obs::CounterRegistry::instance().snapshot(), before);
  obs::set_counters_enabled(false);

  EXPECT_EQ(counters.value("trace.events"), trace->size());
  EXPECT_EQ(counters.value("detector.tuples"),
            report.detection.dep.tuples.size());
  EXPECT_EQ(counters.value("detector.cycles"),
            report.detection.cycles.size());
  EXPECT_EQ(counters.value("pruner.cycles_in"), report.cycles.size());
  EXPECT_EQ(counters.value("pruner.cycles_killed"),
            static_cast<std::uint64_t>(
                report.count_cycles(Classification::kFalseByPruner)));
  EXPECT_EQ(counters.value("generator.cyclic_verdicts"),
            static_cast<std::uint64_t>(
                report.count_cycles(Classification::kFalseByGenerator)));

  std::uint64_t total_trials = 0, total_hits = 0;
  for (const CycleReport& c : report.cycles) {
    total_trials += static_cast<std::uint64_t>(c.replay_stats.attempts);
    total_hits += static_cast<std::uint64_t>(c.replay_stats.hits);
  }
  EXPECT_EQ(counters.value("replayer.trials"), total_trials);
  EXPECT_EQ(counters.value("replayer.confirmations"), total_hits);
}

TEST(PipelineCounterTest, EnablingObsDoesNotChangeTheReport) {
  auto w = workloads::make_collections_list("ArrayList");
  auto trace = sim::record_trace(w.program, 2014);
  ASSERT_TRUE(trace.has_value());
  WolfOptions options;
  options.replay.attempts = 8;

  obs::set_counters_enabled(false);
  WolfReport off = analyze_trace(w.program, *trace, options);
  obs::set_counters_enabled(true);
  obs::set_progress_enabled(true);
  obs::set_progress_writer(&capture_progress);
  WolfReport on = analyze_trace(w.program, *trace, options);
  obs::set_progress_writer(nullptr);
  obs::set_progress_enabled(false);
  obs::set_counters_enabled(false);

  EXPECT_EQ(off.summary(w.program.sites()), on.summary(w.program.sites()));
  ASSERT_EQ(off.cycles.size(), on.cycles.size());
  for (std::size_t c = 0; c < off.cycles.size(); ++c) {
    EXPECT_EQ(off.cycles[c].classification, on.cycles[c].classification);
    EXPECT_EQ(off.cycles[c].replay_stats.attempts,
              on.cycles[c].replay_stats.attempts);
  }
}

// ------------------------------------------------------------ JSON report

obs::RunMetrics metrics_for(const sim::Program& program, const Trace& trace,
                            int jobs) {
  obs::set_counters_enabled(true);
  obs::CounterSnapshot before = obs::CounterRegistry::instance().snapshot();
  WolfOptions options;
  options.replay.attempts = 8;
  options.jobs = jobs;
  WolfReport report = analyze_trace(program, trace, options);
  obs::RunMetrics metrics = collect_metrics(report);
  metrics.counters =
      obs::delta(obs::CounterRegistry::instance().snapshot(), before);
  obs::set_counters_enabled(false);
  return metrics;
}

TEST(MetricsJsonTest, FullReportRoundTripsByteExactly) {
  auto w = workloads::make_collections_map("HashMap");
  auto trace = sim::record_trace(w.program, 2014);
  ASSERT_TRUE(trace.has_value());
  obs::RunMetrics metrics = metrics_for(w.program, *trace, 1);
  ASSERT_FALSE(metrics.spans.empty());
  ASSERT_FALSE(metrics.funnel.empty());

  const std::string text = obs::to_json(metrics);
  obs::RunMetrics parsed;
  ASSERT_TRUE(obs::from_json(text, &parsed));
  EXPECT_EQ(parsed.schema_version, obs::kMetricsSchemaVersion);
  EXPECT_EQ(obs::to_json(parsed), text);
}

TEST(MetricsJsonTest, RejectsMalformedInput) {
  obs::RunMetrics parsed;
  EXPECT_FALSE(obs::from_json("", &parsed));
  EXPECT_FALSE(obs::from_json("{\"schema_version\": }", &parsed));
  EXPECT_FALSE(obs::from_json("[1, 2, 3]", &parsed));
}

TEST(MetricsJsonTest, StableReportIsByteIdenticalAcrossJobs) {
  auto w = workloads::make_collections_map("HashMap");
  auto trace = sim::record_trace(w.program, 2014);
  ASSERT_TRUE(trace.has_value());
  const std::string serial =
      obs::to_json(metrics_for(w.program, *trace, 1), /*stable=*/true);
  const std::string parallel =
      obs::to_json(metrics_for(w.program, *trace, 4), /*stable=*/true);
  EXPECT_EQ(serial, parallel);
  // The stable mode must carry no scheduling-dependent fields.
  EXPECT_EQ(serial.find("duration"), std::string::npos);
  EXPECT_EQ(serial.find("pool."), std::string::npos);
  EXPECT_NE(serial.find("\"funnel\""), std::string::npos);
}

// ------------------------------------------------------- wolf::Config

TEST(ConfigTest, DefaultConfigValidatesClean) {
  Config config;
  EXPECT_TRUE(config.validate().empty());
  EXPECT_FALSE(config.fatal());
}

TEST(ConfigTest, ReferenceEngineWithJobsIsANonFatalConflict) {
  Config config;
  config.detector.engine = CycleEngine::kReference;
  config.jobs = 4;
  auto issues = config.validate();
  ASSERT_FALSE(issues.empty());
  EXPECT_FALSE(config.fatal()) << "conflicts warn, they do not reject";
}

TEST(ConfigTest, NonsenseValuesAreFatal) {
  Config config;
  config.jobs = -1;
  config.runs = 0;
  config.detector.max_cycle_length = 1;
  config.replay.attempts = 0;
  int fatal_count = 0;
  for (const ConfigIssue& issue : config.validate())
    if (issue.fatal) ++fatal_count;
  EXPECT_EQ(fatal_count, 4);
  EXPECT_TRUE(config.fatal());
}

TEST(ConfigTest, ExplodersFoldTheSharedScalars) {
  Config config;
  config.seed = 99;
  config.jobs = 3;
  config.deadline_ms = 1234;

  WolfOptions wolf = config.wolf_options();
  EXPECT_EQ(wolf.seed, 99u);
  EXPECT_EQ(wolf.jobs, 3);
  EXPECT_EQ(wolf.detector.jobs, 3);
  EXPECT_EQ(wolf.replay.retry.attempt_deadline_ms, 1234);

  MultiRunOptions multi = config.multi_options();
  EXPECT_EQ(multi.seed, 99u);
  EXPECT_EQ(multi.jobs, 3);
  EXPECT_EQ(multi.wolf.detector.jobs, 3);

  rt::ExecutorOptions executor = config.executor_options();
  EXPECT_EQ(executor.seed, 99u);
  EXPECT_EQ(executor.deadline_ms, 1234);

  baseline::DfOptions df = config.df_options();
  EXPECT_EQ(df.seed, 99u);
  EXPECT_EQ(df.replay.retry.attempt_deadline_ms, 1234);
}

TEST(ConfigTest, FacadeRunMatchesExplodedRun) {
  auto w = workloads::make_figure2();
  Config config;
  config.jobs = 1;
  config.replay.attempts = 8;
  WolfReport via_facade = run(w.program, config);
  WolfReport via_structs = run_wolf(w.program, config.wolf_options());
  EXPECT_EQ(via_facade.summary(w.program.sites()),
            via_structs.summary(w.program.sites()));
}

}  // namespace
}  // namespace wolf
