// Chaos campaign: the whole analysis stack under randomized fault
// schedules (ISSUE: robustness tentpole).
//
// Each seed drives one schedule: a random program is recorded, serialized
// in a random format, corrupted by a random combination of byte-level
// faults (torn write, bit flips, text garbling, fractional truncation),
// salvage-read, and finally analyzed by the governed detector under random
// memory budgets, window sizes, deadlines, parallelism levels
// (GovernorOptions::jobs ∈ {1, 2, 4}) and injected detection faults —
// per-window throws and thread-pool task faults included.
//
// The invariant under EVERY schedule:
//
//     never crash, never emit silently-wrong output — either the verdict
//     claims complete coverage and the defect signatures equal batch
//     analysis of the same (salvaged) event stream, or the verdict is
//     structurally degraded and says why.
//
// The differential reference is batch detection over the salvaged prefix:
// corruption upstream of the reader is allowed to lose suffix events (the
// salvage contract, tested byte-by-byte in property_test), but whatever
// events the reader delivered must be analyzed correctly or flagged.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "core/detector.hpp"
#include "core/governor.hpp"
#include "robust/fault.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "testutil.hpp"
#include "trace/serialize.hpp"

namespace wolf {
namespace {

std::set<DefectSignature> signatures_of(const Detection& det) {
  std::set<DefectSignature> sigs;
  for (const PotentialDeadlock& cycle : det.cycles)
    sigs.insert(signature_of(cycle, det.dep));
  return sigs;
}

struct Schedule {
  TraceFormat format = TraceFormat::kV3;
  robust::FaultPlan corruption;  // applied to the serialized bytes
  robust::FaultPlan detection;   // applied inside the governed detector
  GovernorOptions governor;
  bool pool_fault = false;
};

// Draws one randomized fault schedule. Every knob is independent, so the
// campaign covers the cross product: clean bytes under memory pressure,
// torn writes with detection faults, bit flips with tiny windows, …
Schedule draw_schedule(Rng& rng, std::size_t trace_bytes) {
  Schedule s;
  const TraceFormat formats[] = {TraceFormat::kV1, TraceFormat::kV2,
                                 TraceFormat::kV3};
  s.format = formats[rng.below(3)];

  if (rng.chance(0.3))
    s.corruption.io_tear_after =
        static_cast<std::int64_t>(rng.below(trace_bytes + 1));
  if (rng.chance(0.3))
    s.corruption.bitflip_count = 1 + static_cast<int>(rng.below(4));
  if (rng.chance(0.2))
    s.corruption.garble_line = static_cast<int>(rng.below(40));
  if (rng.chance(0.2))
    s.corruption.truncate_fraction =
        static_cast<double>(rng.below(100)) / 100.0;

  if (rng.chance(0.4))
    s.detection.detect_throw_window = static_cast<int>(rng.below(8));
  s.pool_fault = rng.chance(0.15);

  s.governor.window_events = 8 + rng.below(120);
  if (rng.chance(0.4))
    s.governor.memory_budget_mb = 1;  // tiny: forces compaction/aging
  if (rng.chance(0.3)) s.governor.window_deadline_ms = 1 + rng.below(20);
  s.governor.detector.jobs = rng.chance(0.3) ? 2 : 1;
  // Governed-ingestion parallelism (DESIGN.md §17): the per-SCC window
  // fan-out must uphold the honesty contract under every fault schedule,
  // so the campaign randomizes it across {1, 2, 4}.
  const int jobs_levels[] = {1, 2, 4};
  s.governor.jobs = jobs_levels[rng.below(3)];
  // Half the campaign runs the incremental dirty-SCC enumeration path, half
  // the legacy full-recompute path — the honesty contract must hold on both.
  s.governor.incremental_scc = rng.chance(0.5);
  // NOTE: governor.fault is wired by the caller — pointing it at s.detection
  // here would dangle once the Schedule is returned by value.
  return s;
}

class ChaosTest : public ::testing::TestWithParam<int> {};

TEST_P(ChaosTest, NeverCrashesNeverLiesUnderRandomFaultSchedules) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ULL + 5);

  test::RandomProgramConfig config;
  config.workers = 2 + static_cast<int>(rng.below(3));
  config.locks = 2 + static_cast<int>(rng.below(3));
  sim::Program program = test::random_program(rng, config);
  auto trace = sim::record_trace(program, rng(), 40);
  if (!trace.has_value()) GTEST_SKIP() << "recording deadlocked";

  // Serialize, corrupt, salvage. The reader must survive arbitrary
  // corruption (property_test covers the byte-by-byte guarantees); what it
  // hands back is the event stream the detectors actually see.
  std::string bytes = trace_to_string(*trace, TraceFormat::kV3);
  Schedule schedule = draw_schedule(rng, bytes.size());
  schedule.governor.fault = &schedule.detection;
  bytes = trace_to_string(*trace, schedule.format);
  if (schedule.corruption.garble_line >= 0 ||
      schedule.corruption.truncate_fraction >= 0.0)
    bytes = robust::corrupt_trace_text(std::move(bytes), schedule.corruption);
  bytes = robust::corrupt_trace_bytes(std::move(bytes), schedule.corruption,
                                      rng());
  SalvageReport salvaged = salvage_trace_from_string(bytes);

  // Differential reference: plain batch detection over the salvaged
  // events, same engine configuration, no faults.
  DetectorOptions reference_options = schedule.governor.detector;
  Detection reference = detect(salvaged.trace, reference_options);

  // Governed run under the full fault schedule.
  if (schedule.pool_fault) ThreadPool::inject_task_fault(0);
  GovernedStreamingDetector governed(schedule.governor);
  for (const Event& e : salvaged.trace.events) governed.add(e);
  Detection detection = governed.finish();
  ThreadPool::clear_task_fault();
  GovernorVerdict verdict = governed.verdict();

  // Structural consistency of the verdict, under every schedule.
  EXPECT_EQ(verdict.windows, governed.windows().size());
  std::size_t evicted = 0, degraded = 0;
  for (const WindowReport& w : governed.windows()) {
    evicted += w.tuples_evicted;
    if (w.degraded()) ++degraded;
    if (w.tuples_evicted > 0) {
      EXPECT_EQ(w.level, DetectionLevel::kShedding) << w.index;
    }
    if (schedule.governor.memory_budget_mb > 0) {
      EXPECT_LE(w.store_bytes, schedule.governor.memory_budget_mb << 20)
          << "window " << w.index << " blew the memory budget";
    }
  }
  EXPECT_EQ(evicted, verdict.tuples_evicted);
  EXPECT_EQ(degraded, verdict.degraded_windows);
  // Eviction is always lossy. (A pool fault is NOT asserted here: it only
  // fires when enumeration actually engages the pool — jobs>1 and several
  // nontrivial SCC starts — which depends on the random graph.)
  if (verdict.tuples_evicted > 0) {
    EXPECT_FALSE(verdict.coverage_complete);
  }

  // The honesty contract: complete coverage means the answer IS the batch
  // answer; anything less must be declared.
  if (verdict.coverage_complete) {
    EXPECT_EQ(signatures_of(detection), signatures_of(reference))
        << "governed run claimed complete coverage but diverged from batch "
           "analysis (seed "
        << GetParam() << ")";
    EXPECT_EQ(detection.cycles.size(), reference.cycles.size());
  } else {
    EXPECT_TRUE(verdict.degraded());
    EXPECT_FALSE(verdict.notes.empty())
        << "incomplete coverage must carry an explanation";
    // Degraded output never *invents* defects: every reported signature
    // exists in the reference enumeration over the same events. (Eviction
    // and faults can only lose cycles — tuples are dropped, never altered.)
    std::set<DefectSignature> ref = signatures_of(reference);
    for (const DefectSignature& sig : signatures_of(detection))
      EXPECT_TRUE(ref.count(sig) != 0)
          << "degraded run fabricated a defect signature";
  }
}

// 120 randomized schedules (the ISSUE floor is 100).
INSTANTIATE_TEST_SUITE_P(Schedules, ChaosTest, ::testing::Range(0, 120));

// Expiry-heavy family: streams built to churn the tuple store — mostly
// fresh canonical tuples (eviction fodder), some duplicates (compaction
// fodder) — under a 1 MiB budget and small windows, so nearly every window
// runs the compaction/eviction removal hooks that drive DynamicScc edge
// expiry. Each schedule runs BOTH enumeration paths on the same stream:
// they must produce the same finish() and the same honesty verdict, and a
// live subscriber must have seen every committed cycle.
class ExpiryChaosTest : public ::testing::TestWithParam<int> {};

TEST_P(ExpiryChaosTest, ChurnUnderBudgetKeepsBothPathsHonestAndEqual) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0xbf58476d1ce4e5b9ULL + 11);

  Trace trace;
  SiteId next_site = 1;
  std::uint64_t seq = 0;
  auto push = [&](EventKind kind, ThreadId t, LockId l, SiteId site) {
    Event e;
    e.kind = kind;
    e.thread = t;
    e.lock = l;
    e.site = site;
    e.occurrence = 1;
    e.seq = seq++;
    trace.events.push_back(e);
  };
  // Sized to overflow 1 MiB of tuple store with margin, so the tail windows
  // all run the eviction/compaction removal hooks. Fresh reps are depth-4
  // nests: every tuple is canonical (eviction fodder) and carries a fat
  // lockset/context. The recurring AB/BA pair at recurring sites mixes in
  // compaction work and keeps a real defect alive through the churn.
  const int reps = 3200 + static_cast<int>(rng.below(400));
  for (int rep = 0; rep < reps; ++rep) {
    const ThreadId t = static_cast<ThreadId>(1 + rng.below(3));
    if (rng.chance(0.8)) {
      LockId nest[4];
      SiteId site[4];
      for (int d = 0; d < 4; ++d) {
        nest[d] = static_cast<LockId>(1000 + 4 * rep + d);
        site[d] = next_site++;
        push(EventKind::kLockAcquire, t, nest[d], site[d]);
      }
      for (int d = 3; d >= 0; --d)
        push(EventKind::kLockRelease, t, nest[d], site[d]);
    } else {
      const bool ba = rng.chance(0.5);
      const LockId a = ba ? 20 : 10, b = ba ? 10 : 20;
      const SiteId sa = ba ? 3 : 1, sb = ba ? 4 : 2;
      push(EventKind::kLockAcquire, t, a, sa);
      push(EventKind::kLockAcquire, t, b, sb);
      push(EventKind::kLockRelease, t, b, sb);
      push(EventKind::kLockRelease, t, a, sa);
    }
  }

  GovernorOptions options;
  options.window_events = 16 + rng.below(112);
  options.memory_budget_mb = 1;
  options.detector.jobs = rng.chance(0.3) ? 2 : 1;
  // Churn + eviction + per-SCC fan-out together: the store renumbering
  // between windows must stay invisible at every jobs level.
  const int jobs_levels[] = {1, 2, 4};
  options.jobs = jobs_levels[rng.below(3)];

  Detection reference = detect(trace, options.detector);

  std::size_t delivered = 0;
  options.incremental_scc = true;
  options.on_cycle = [&](const LiveCycle&) { ++delivered; };
  GovernedStreamingDetector inc(options);
  for (const Event& e : trace.events) inc.add(e);
  Detection inc_det = inc.finish();
  EXPECT_EQ(delivered, inc.cycles_surfaced_live());

  options.incremental_scc = false;
  options.on_cycle = nullptr;
  GovernedStreamingDetector rec(options);
  for (const Event& e : trace.events) rec.add(e);
  Detection rec_det = rec.finish();

  // Path differential: identical output and identical honesty bookkeeping.
  EXPECT_EQ(signatures_of(inc_det), signatures_of(rec_det));
  EXPECT_EQ(inc_det.cycles.size(), rec_det.cycles.size());
  EXPECT_EQ(inc.verdict().coverage_complete, rec.verdict().coverage_complete);
  EXPECT_EQ(inc.verdict().tuples_evicted, rec.verdict().tuples_evicted);
  EXPECT_EQ(inc.verdict().tuples_compacted, rec.verdict().tuples_compacted);

  // The budget genuinely bit (that is the point of this family), so the
  // verdict must say so — and degraded output never fabricates defects.
  const GovernorVerdict verdict = inc.verdict();
  EXPECT_GT(verdict.tuples_evicted, 0u) << "schedule failed to force churn";
  EXPECT_FALSE(verdict.coverage_complete);
  EXPECT_FALSE(verdict.notes.empty());
  std::set<DefectSignature> ref = signatures_of(reference);
  for (const DefectSignature& sig : signatures_of(inc_det))
    EXPECT_TRUE(ref.count(sig) != 0)
        << "churned run fabricated a defect signature";
}

INSTANTIATE_TEST_SUITE_P(Schedules, ExpiryChaosTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace wolf
