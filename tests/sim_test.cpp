// Tests for the virtual-thread scheduler: program validation, lock
// semantics (re-entrancy, blocking, waking), start/join, flags and jumps,
// wait-for-cycle diagnosis, determinism, controller interaction, and the
// step limit.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "sim/scheduler.hpp"
#include "support/check.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

using sim::OpCode;
using sim::Program;
using sim::RunOutcome;
using sim::RunResult;
using sim::Scheduler;
using sim::SchedulerOptions;
using sim::ThreadStatus;

// ---------------------------------------------------------------- Program

TEST(ProgramTest, FinalizeRejectsUnstartedThread) {
  Program p;
  p.add_thread("main");
  p.add_thread("orphan");
  EXPECT_THROW(p.finalize(), CheckFailure);
}

TEST(ProgramTest, FinalizeRejectsDoubleStart) {
  Program p;
  ThreadId main = p.add_thread("main");
  ThreadId child = p.add_thread("child");
  SiteId s = p.site("spawn", 1);
  p.start(main, child, s);
  p.start(main, child, s);
  EXPECT_THROW(p.finalize(), CheckFailure);
}

TEST(ProgramTest, FinalizeRejectsBadLock) {
  Program p;
  ThreadId main = p.add_thread("main");
  sim::Op op;
  op.code = OpCode::kLock;
  op.lock = 7;  // no such lock
  op.site = p.site("bad", 1);
  p.emit(main, op);
  EXPECT_THROW(p.finalize(), CheckFailure);
}

TEST(ProgramTest, FinalizeRejectsBadJumpTarget) {
  Program p;
  ThreadId main = p.add_thread("main");
  p.jump(main, 99, p.site("jump", 1));
  EXPECT_THROW(p.finalize(), CheckFailure);
}

TEST(ProgramTest, FinalizeDerivesParentAndCreateSite) {
  Program p;
  ThreadId main = p.add_thread("main");
  ThreadId child = p.add_thread("child");
  SiteId s = p.site("spawn", 1);
  p.start(main, child, s);
  p.join(main, child, p.site("join", 1));
  p.finalize();
  EXPECT_EQ(p.thread(child).parent, main);
  EXPECT_EQ(p.thread(child).create_site, s);
  EXPECT_EQ(p.thread(main).parent, kInvalidThread);
}

TEST(ProgramTest, PatchJumpValidatesOpKind) {
  Program p;
  ThreadId main = p.add_thread("main");
  p.compute(main, p.site("c", 1));
  EXPECT_THROW(p.patch_jump(main, 0, 0), CheckFailure);
}

// ---------------------------------------------------------------- Scheduler

Program two_thread_abba() {
  Program p;
  LockId a = p.add_lock("A", p.site("alloc", 1));
  LockId b = p.add_lock("B", p.site("alloc", 2));
  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  ThreadId t2 = p.add_thread("t2");
  p.lock(t1, a, p.site("t1.a", 1));
  p.lock(t1, b, p.site("t1.b", 2));
  p.unlock(t1, b, p.site("t1.ub", 3));
  p.unlock(t1, a, p.site("t1.ua", 4));
  p.lock(t2, b, p.site("t2.b", 1));
  p.lock(t2, a, p.site("t2.a", 2));
  p.unlock(t2, a, p.site("t2.ua", 3));
  p.unlock(t2, b, p.site("t2.ub", 4));
  p.start(main, t1, p.site("spawn", 1));
  p.start(main, t2, p.site("spawn", 1));
  p.join(main, t1, p.site("join", 1));
  p.join(main, t2, p.site("join", 1));
  p.finalize();
  return p;
}

TEST(SchedulerTest, RunsSingleThreadToCompletion) {
  Program p;
  LockId a = p.add_lock("A", p.site("alloc", 1));
  ThreadId main = p.add_thread("main");
  p.lock(main, a, p.site("l", 1));
  p.compute(main, p.site("c", 2));
  p.unlock(main, a, p.site("u", 3));
  p.finalize();

  sim::RoundRobinPolicy policy;
  Rng rng(1);
  RunResult result = sim::run_program(p, policy, rng);
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
}

TEST(SchedulerTest, EmitsWellFormedTrace) {
  Program p = two_thread_abba();
  auto trace = sim::record_trace(p, 3);
  ASSERT_TRUE(trace.has_value());
  // Begin precedes every other event of a thread; acquire/release balance.
  std::map<ThreadId, bool> begun;
  std::map<std::pair<ThreadId, LockId>, int> depth;
  for (const Event& e : trace->events) {
    if (e.kind == EventKind::kThreadBegin) {
      EXPECT_FALSE(begun[e.thread]);
      begun[e.thread] = true;
    } else {
      EXPECT_TRUE(begun[e.thread]) << e.to_string();
    }
    if (e.kind == EventKind::kLockAcquire)
      ++depth[std::make_pair(e.thread, e.lock)];
    if (e.kind == EventKind::kLockRelease) {
      int& d = depth[std::make_pair(e.thread, e.lock)];
      --d;
      EXPECT_GE(d, 0);
    }
  }
  for (const auto& [key, d] : depth) EXPECT_EQ(d, 0);
}

TEST(SchedulerTest, SameSeedSameTrace) {
  Program p = two_thread_abba();
  auto t1 = sim::record_trace(p, 12345);
  auto t2 = sim::record_trace(p, 12345);
  ASSERT_TRUE(t1.has_value());
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(t1->events, t2->events);
}

TEST(SchedulerTest, DeadlockDiagnosedWithCycleDetails) {
  Program p = two_thread_abba();
  // Force the deadlock with a fixed interleaving: t1 locks A, t2 locks B,
  // then both block.
  SchedulerOptions options;
  Scheduler sched(p, options);
  // main: spawn t1, spawn t2 (threads 1 and 2 become enabled).
  sched.step(0);
  sched.step(0);
  sched.step(1);  // t1 locks A
  sched.step(2);  // t2 locks B
  sched.step(1);  // t1 blocks on B
  EXPECT_FALSE(sched.deadlock_diagnosed());
  sched.step(2);  // t2 blocks on A -> cycle
  EXPECT_TRUE(sched.deadlock_diagnosed());
  RunResult result = sched.result();
  EXPECT_EQ(result.outcome, RunOutcome::kDeadlock);
  ASSERT_EQ(result.deadlock_cycle.size(), 2u);
  std::set<ThreadId> blocked;
  for (const auto& b : result.deadlock_cycle) blocked.insert(b.thread);
  EXPECT_EQ(blocked, (std::set<ThreadId>{1, 2}));
  EXPECT_EQ(result.all_blocked.size(), 2u);
}

TEST(SchedulerTest, BlockedThreadWakesOnRelease) {
  Program p;
  LockId a = p.add_lock("A", p.site("alloc", 1));
  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  p.lock(main, a, p.site("m.l", 1));
  p.start(main, t1, p.site("m.s", 2));
  p.compute(main, p.site("m.c", 3));
  p.unlock(main, a, p.site("m.u", 4));
  p.join(main, t1, p.site("m.j", 5));
  p.lock(t1, a, p.site("t1.l", 1));
  p.unlock(t1, a, p.site("t1.u", 2));
  p.finalize();

  Scheduler sched(p, {});
  sched.step(0);  // main locks A
  sched.step(0);  // main starts t1
  sched.step(1);  // t1 blocks on A
  EXPECT_EQ(sched.status(1), ThreadStatus::kBlockedOnLock);
  sched.step(0);  // compute
  sched.step(0);  // unlock -> t1 wakes
  EXPECT_EQ(sched.status(1), ThreadStatus::kEnabled);
  while (!sched.finished()) {
    auto enabled = sched.enabled_threads();
    ASSERT_FALSE(enabled.empty());
    sched.step(enabled.front());
  }
  EXPECT_TRUE(sched.all_terminated());
}

TEST(SchedulerTest, ReentrantLockNeverBlocksAndEmitsOnce) {
  Program p;
  LockId a = p.add_lock("A", p.site("alloc", 1));
  ThreadId main = p.add_thread("main");
  p.lock(main, a, p.site("outer", 1));
  p.lock(main, a, p.site("inner", 2));
  p.unlock(main, a, p.site("iu", 3));
  p.unlock(main, a, p.site("ou", 4));
  p.finalize();

  TraceRecorder recorder;
  SchedulerOptions options;
  options.sink = &recorder;
  sim::RoundRobinPolicy policy;
  Rng rng(1);
  RunResult result = sim::run_program(p, policy, rng, options);
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  int acquires = 0, releases = 0;
  for (const Event& e : recorder.trace().events) {
    acquires += e.kind == EventKind::kLockAcquire;
    releases += e.kind == EventKind::kLockRelease;
  }
  EXPECT_EQ(acquires, 1);
  EXPECT_EQ(releases, 1);
}

TEST(SchedulerTest, UnlockingUnownedLockThrows) {
  Program p;
  LockId a = p.add_lock("A", p.site("alloc", 1));
  ThreadId main = p.add_thread("main");
  p.unlock(main, a, p.site("u", 1));
  p.finalize();
  Scheduler sched(p, {});
  EXPECT_THROW(sched.step(0), CheckFailure);
}

TEST(SchedulerTest, TerminatingWhileHoldingLockThrows) {
  Program p;
  LockId a = p.add_lock("A", p.site("alloc", 1));
  ThreadId main = p.add_thread("main");
  p.lock(main, a, p.site("l", 1));
  p.finalize();
  Scheduler sched(p, {});
  EXPECT_THROW(sched.step(0), CheckFailure);
}

TEST(SchedulerTest, FlagsAndJumpsImplementLoops) {
  Program p;
  int flag = p.add_flag();
  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  // t1 spins until the flag is set.
  int loop = p.compute(t1, p.site("spin", 1));
  p.jump_if_flag(t1, flag, 0, loop, p.site("check", 2));
  // main sets it after starting t1.
  p.start(main, t1, p.site("spawn", 1));
  p.compute(main, p.site("pad", 2));
  p.set_flag(main, flag, 1, p.site("set", 3));
  p.join(main, t1, p.site("join", 4));
  p.finalize();

  sim::RandomPolicy policy;
  Rng rng(9);
  RunResult result = sim::run_program(p, policy, rng);
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
}

TEST(SchedulerTest, StepLimitReported) {
  Program p;
  ThreadId main = p.add_thread("main");
  int loop = p.compute(main, p.site("spin", 1));
  p.jump(main, loop, p.site("again", 2));
  p.finalize();

  SchedulerOptions options;
  options.max_steps = 100;
  sim::RoundRobinPolicy policy;
  Rng rng(1);
  RunResult result = sim::run_program(p, policy, rng, options);
  EXPECT_EQ(result.outcome, RunOutcome::kStepLimit);
}

TEST(SchedulerTest, JoinStallWithoutLockCycleIsDeadlock) {
  // Two threads joining each other: no lock cycle, but nothing can run.
  Program p;
  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  ThreadId t2 = p.add_thread("t2");
  p.join(t1, t2, p.site("t1.join", 1));
  p.join(t2, t1, p.site("t2.join", 1));
  p.start(main, t1, p.site("spawn", 1));
  p.start(main, t2, p.site("spawn", 2));
  p.join(main, t1, p.site("join", 3));
  p.finalize();

  sim::RandomPolicy policy;
  Rng rng(4);
  RunResult result = sim::run_program(p, policy, rng);
  EXPECT_EQ(result.outcome, RunOutcome::kDeadlock);
  EXPECT_TRUE(result.deadlock_cycle.empty());
}

TEST(SchedulerTest, StateHashDistinguishesProgress) {
  Program p = two_thread_abba();
  Scheduler a(p, {});
  Scheduler b(p, {});
  EXPECT_EQ(a.state_hash(), b.state_hash());
  a.step(0);
  EXPECT_NE(a.state_hash(), b.state_hash());
  b.step(0);
  EXPECT_EQ(a.state_hash(), b.state_hash());
}

TEST(SchedulerTest, CopiedSchedulerDivergesIndependently) {
  Program p = two_thread_abba();
  Scheduler a(p, {});
  a.step(0);
  a.step(0);
  Scheduler fork = a;  // explorer-style branch
  a.step(1);
  EXPECT_NE(a.pc(1), fork.pc(1));
  fork.step(2);
  EXPECT_EQ(fork.pc(1), 0);
}

// Controller interaction: a controller that pauses the first acquisition of
// a given thread until another thread has acquired once.
class OneShotPause final : public sim::ScheduleController {
 public:
  explicit OneShotPause(ThreadId victim) : victim_(victim) {}
  bool before_lock(ThreadId t, const ExecIndex&, LockId) override {
    if (t == victim_ && !released_once_) {
      paused_ = true;
      return true;
    }
    return false;
  }
  void on_event(const Event& e) override {
    if (e.kind == EventKind::kLockAcquire && e.thread != victim_ && paused_) {
      released_once_ = true;
      release_ = true;
    }
  }
  std::vector<ThreadId> take_released() override {
    if (!release_) return {};
    release_ = false;
    return {victim_};
  }

 private:
  ThreadId victim_;
  bool paused_ = false;
  bool released_once_ = false;
  bool release_ = false;
};

TEST(SchedulerTest, ControllerPauseAndReleaseRoundTrip) {
  Program p = two_thread_abba();
  OneShotPause controller(1);
  SchedulerOptions options;
  options.controller = &controller;
  sim::RandomPolicy policy;
  Rng rng(8);
  Scheduler sched(p, options);
  RunResult result = sim::run(sched, policy, rng);
  // The run must finish one way or the other; pausing t1 until t2 acquired
  // makes the AB/BA deadlock very likely but scheduling may avoid it.
  EXPECT_NE(result.outcome, RunOutcome::kStepLimit);
}

TEST(SchedulerTest, AllPausedForceReleasesOne) {
  // A controller that pauses every first acquisition forever; the run-loop
  // must force-release threads rather than wedge.
  class PauseAll final : public sim::ScheduleController {
   public:
    bool before_lock(ThreadId, const ExecIndex&, LockId) override {
      return true;
    }
  };
  Program p = two_thread_abba();
  PauseAll controller;
  SchedulerOptions options;
  options.controller = &controller;
  sim::RandomPolicy policy;
  Rng rng(8);
  RunResult result = sim::run_program(p, policy, rng, options);
  EXPECT_NE(result.outcome, RunOutcome::kStepLimit);
}

TEST(SchedulerTest, Figure4RunsToCompletionOrDiagnosedDeadlock) {
  auto fig = workloads::make_figure4();
  int completed = 0, deadlocked = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    sim::RandomPolicy policy;
    Rng rng(seed);
    RunResult result = sim::run_program(fig.program, policy, rng);
    completed += result.outcome == RunOutcome::kCompleted;
    deadlocked += result.outcome == RunOutcome::kDeadlock;
  }
  EXPECT_EQ(completed + deadlocked, 30);
  EXPECT_GT(completed, 0);  // θ2 is timing-dependent
}

}  // namespace
}  // namespace wolf
