// Tests for the Replayer (Algorithm 4): pause/release mechanics, skipped-
// vertex handling under divergent control flow, forced release, trial
// classification and reliability.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.hpp"
#include "core/replayer.hpp"
#include "sim/scheduler.hpp"
#include "workloads/collections.hpp"
#include "workloads/paper_examples.hpp"

namespace wolf {
namespace {

Detection detect_program(const sim::Program& program, std::uint64_t seed) {
  auto trace = sim::record_trace(program, seed);
  EXPECT_TRUE(trace.has_value());
  return detect(*trace);
}

const PotentialDeadlock* cycle_with_signature(const Detection& det,
                                              std::vector<SiteId> sites) {
  std::sort(sites.begin(), sites.end());
  for (const PotentialDeadlock& c : det.cycles)
    if (signature_of(c, det.dep) == sites) return &c;
  return nullptr;
}

TEST(ReplayerTest, ReproducesEveryCollectionsCycle) {
  auto w = workloads::make_collections_list("ArrayList");
  Detection det = detect_program(w.program, 11);
  ASSERT_EQ(det.cycles.size(), 9u);
  for (const PotentialDeadlock& cycle : det.cycles) {
    GeneratorResult gen = generate(cycle, det.dep);
    ASSERT_TRUE(gen.feasible);
    ReplayOptions options;
    options.attempts = 10;
    options.seed = 17;
    ReplayStats stats = replay(w.program, cycle, det.dep, gen.gs, options);
    EXPECT_TRUE(stats.reproduced())
        << "failed to reproduce " << cycle.to_string(det.dep);
  }
}

TEST(ReplayerTest, ExpectedSitesAreSorted) {
  auto fig = workloads::make_figure4();
  Detection det = detect_program(fig.program, 42);
  for (const PotentialDeadlock& cycle : det.cycles) {
    auto sites = expected_sites(cycle, det.dep);
    EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
    EXPECT_EQ(sites.size(), cycle.tuple_idx.size());
  }
}

TEST(ReplayerTest, ClassifyRunDistinguishesOutcomes) {
  std::vector<SiteId> expected{3, 7};

  sim::RunResult completed;
  completed.outcome = sim::RunOutcome::kCompleted;
  EXPECT_EQ(classify_run(completed, expected), ReplayOutcome::kNoDeadlock);

  sim::RunResult limited;
  limited.outcome = sim::RunOutcome::kStepLimit;
  EXPECT_EQ(classify_run(limited, expected), ReplayOutcome::kStepLimit);

  sim::RunResult hit;
  hit.outcome = sim::RunOutcome::kDeadlock;
  hit.deadlock_cycle = {sim::BlockedAt{0, ExecIndex{0, 7, 0}, 1},
                        sim::BlockedAt{1, ExecIndex{1, 3, 0}, 2}};
  EXPECT_EQ(classify_run(hit, expected), ReplayOutcome::kReproduced);

  sim::RunResult miss = hit;
  miss.deadlock_cycle[0].index.site = 9;
  EXPECT_EQ(classify_run(miss, expected), ReplayOutcome::kOtherDeadlock);

  // A deadlock involving extra threads at other sites is not a hit either.
  sim::RunResult wider = hit;
  wider.deadlock_cycle.push_back(sim::BlockedAt{2, ExecIndex{2, 5, 0}, 3});
  EXPECT_EQ(classify_run(wider, expected), ReplayOutcome::kOtherDeadlock);
}

TEST(ReplayerTest, ControllerPausesOnCrossThreadInEdge) {
  // Hand-built Gs: thread 1's acquisition at idx B depends on thread 0's at
  // idx A. before_lock must pause thread 1 at B until A retires.
  SyncDependencyGraph gs;
  ExecIndex a{0, 1, 0}, b{1, 2, 0};
  Digraph::Node na = gs.intern(GsVertex{0, a, 5});
  Digraph::Node nb = gs.intern(GsVertex{1, b, 5});
  gs.add_edge(na, nb, GsEdgeKind::kTypeC);

  ReplayController controller(gs, {0, 1});
  EXPECT_TRUE(controller.before_lock(1, b, 5));
  EXPECT_TRUE(controller.take_released().empty());

  // Thread 0 acquires at A: vertex retires, thread 1 is released.
  Event acquire;
  acquire.kind = EventKind::kLockAcquire;
  acquire.thread = 0;
  acquire.site = 1;
  acquire.occurrence = 0;
  acquire.lock = 5;
  controller.on_event(acquire);
  auto released = controller.take_released();
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], 1);
  // Re-asked, the controller now lets it through.
  EXPECT_FALSE(controller.before_lock(1, b, 5));
}

TEST(ReplayerTest, UnmonitoredThreadsAreNeverPaused) {
  SyncDependencyGraph gs;
  ExecIndex a{0, 1, 0}, b{1, 2, 0};
  Digraph::Node na = gs.intern(GsVertex{0, a, 5});
  Digraph::Node nb = gs.intern(GsVertex{1, b, 5});
  gs.add_edge(na, nb, GsEdgeKind::kTypeC);
  ReplayController controller(gs, /*monitored=*/{0});
  EXPECT_FALSE(controller.before_lock(1, b, 5));
}

TEST(ReplayerTest, ThreadEndRetiresItsRemainingVertices) {
  SyncDependencyGraph gs;
  ExecIndex a{0, 1, 0}, b{1, 2, 0};
  Digraph::Node na = gs.intern(GsVertex{0, a, 5});
  Digraph::Node nb = gs.intern(GsVertex{1, b, 5});
  gs.add_edge(na, nb, GsEdgeKind::kTypeC);
  ReplayController controller(gs, {0, 1});
  EXPECT_TRUE(controller.before_lock(1, b, 5));

  // Thread 0 terminates without ever acquiring at A (skipped path): its
  // vertex must retire so thread 1 can proceed.
  Event end;
  end.kind = EventKind::kThreadEnd;
  end.thread = 0;
  controller.on_event(end);
  auto released = controller.take_released();
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], 1);
}

TEST(ReplayerTest, SkippedIndexHandledViaAncestorRetirement) {
  // A program with a flag-controlled branch: during recording thread takes
  // the branch containing an acquisition; during replay another thread sets
  // the flag first and the acquisition is skipped — Algorithm 4's ancestor
  // retirement must keep the replay from wedging forever.
  sim::Program p;
  LockId a = p.add_lock("A", p.site("alloc", 1));
  LockId b = p.add_lock("B", p.site("alloc", 2));
  int flag = p.add_flag();
  ThreadId main = p.add_thread("main");
  ThreadId t1 = p.add_thread("t1");
  ThreadId t2 = p.add_thread("t2");

  // t1: if (!flag) { lock A; unlock A; }  lock A; lock B; unlock; unlock.
  int jump_pc = p.jump_if_flag(t1, flag, 1, /*target placeholder*/ 0,
                               p.site("t1.check", 1));
  p.lock(t1, a, p.site("t1.maybe", 2));
  p.unlock(t1, a, p.site("t1.maybe.x", 3));
  int after = p.lock(t1, a, p.site("t1.outer", 4));
  p.lock(t1, b, p.site("t1.inner", 5));
  p.unlock(t1, b, p.site("t1.ix", 6));
  p.unlock(t1, a, p.site("t1.ox", 7));
  p.patch_jump(t1, jump_pc, after);

  // t2: set the flag, then lock B; lock A (reverse order).
  p.set_flag(t2, flag, 1, p.site("t2.set", 1));
  p.lock(t2, b, p.site("t2.outer", 2));
  p.lock(t2, a, p.site("t2.inner", 3));
  p.unlock(t2, a, p.site("t2.ix", 4));
  p.unlock(t2, b, p.site("t2.ox", 5));

  p.start(main, t1, p.site("spawn", 1));
  p.start(main, t2, p.site("spawn", 1));
  p.join(main, t1, p.site("join", 1));
  p.join(main, t2, p.site("join", 1));
  p.finalize();

  // Record with a schedule where t1 sees flag == 0 (takes the maybe-branch).
  std::optional<Trace> trace;
  for (std::uint64_t seed = 0; seed < 64 && !trace; ++seed) {
    auto candidate = sim::record_trace(p, seed);
    if (!candidate) continue;
    LockDependency dep = LockDependency::from_trace(*candidate);
    if (dep.thread_prefix(t1, candidate->size()).size() == 3)
      trace = candidate;  // maybe-branch taken: t1 has 3 acquisitions
  }
  ASSERT_TRUE(trace.has_value()) << "never recorded the maybe-branch";

  Detection det = detect(*trace);
  ASSERT_FALSE(det.cycles.empty());
  const PotentialDeadlock& cycle = det.cycles[0];
  GeneratorResult gen = generate(cycle, det.dep);
  ASSERT_TRUE(gen.feasible);

  // Replay many times: some replays will have t2 set the flag early, making
  // t1 skip the vertex the Gs references. The run must always terminate
  // (deadlock or completion), never hit the step limit.
  ReplayOptions options;
  options.attempts = 50;
  options.stop_on_first_hit = false;
  options.seed = 23;
  options.max_steps = 100000;
  ReplayStats stats = replay(p, cycle, det.dep, gen.gs, options);
  EXPECT_EQ(stats.step_limits, 0);
  EXPECT_GT(stats.hits, 0);
}

TEST(ReplayerTest, ForceReleaseClearsBookkeeping) {
  SyncDependencyGraph gs;
  ExecIndex a{0, 1, 0}, b{1, 2, 0};
  Digraph::Node na = gs.intern(GsVertex{0, a, 5});
  Digraph::Node nb = gs.intern(GsVertex{1, b, 5});
  gs.add_edge(na, nb, GsEdgeKind::kTypeC);
  ReplayController controller(gs, {0, 1});
  EXPECT_TRUE(controller.before_lock(1, b, 5));
  Rng rng(1);
  EXPECT_EQ(controller.force_release({1}, rng), 1);
  // After a forced release the thread is no longer tracked as blocked; a
  // later retirement must not re-release it.
  Event acquire;
  acquire.kind = EventKind::kLockAcquire;
  acquire.thread = 0;
  acquire.site = 1;
  acquire.occurrence = 0;
  acquire.lock = 5;
  controller.on_event(acquire);
  EXPECT_TRUE(controller.take_released().empty());
}

TEST(ReplayerTest, StopOnFirstHitShortens) {
  auto fig = workloads::make_figure4();
  Detection det = detect_program(fig.program, 42);
  const PotentialDeadlock* theta2 =
      cycle_with_signature(det, {fig.s19, fig.s33});
  ASSERT_NE(theta2, nullptr);
  GeneratorResult gen = generate(*theta2, det.dep);
  ReplayOptions options;
  options.attempts = 50;
  options.stop_on_first_hit = true;
  options.seed = 5;
  ReplayStats stats = replay(fig.program, *theta2, det.dep, gen.gs, options);
  EXPECT_EQ(stats.attempts, 1);  // θ′2 replays deterministically
  EXPECT_EQ(stats.hits, 1);
}

TEST(ReplayerTest, ReproducesKWayPhilosopherCycle) {
  auto w = workloads::make_philosophers(4);
  auto trace = sim::record_trace(w.program, 3);
  ASSERT_TRUE(trace.has_value());
  DetectorOptions det_options;
  det_options.max_cycle_length = 4;
  Detection det = detect(*trace, det_options);
  ASSERT_EQ(det.cycles.size(), 1u);
  ASSERT_EQ(det.cycles[0].tuple_idx.size(), 4u);
  GeneratorResult gen = generate(det.cycles[0], det.dep);
  ASSERT_TRUE(gen.feasible);
  ReplayOptions options;
  options.attempts = 10;
  options.seed = 77;
  ReplayStats stats =
      replay(w.program, det.cycles[0], det.dep, gen.gs, options);
  EXPECT_TRUE(stats.reproduced());
}

TEST(ReplayerTest, OutcomeNamesAreStable) {
  EXPECT_STREQ(to_string(ReplayOutcome::kReproduced), "reproduced");
  EXPECT_STREQ(to_string(ReplayOutcome::kOtherDeadlock), "other-deadlock");
  EXPECT_STREQ(to_string(ReplayOutcome::kNoDeadlock), "no-deadlock");
  EXPECT_STREQ(to_string(ReplayOutcome::kStepLimit), "step-limit");
}

}  // namespace
}  // namespace wolf
